//! Offline stand-in for the `crossbeam` crate (0.8 API subset).
//!
//! The workspace only uses `crossbeam::thread::scope` with spawned
//! closures of the form `|_| { .. }`. Since Rust 1.63 the standard
//! library provides scoped threads, so this shim is a thin adapter that
//! keeps the crossbeam calling convention (closures receive a `&Scope`
//! argument, `scope` returns a `Result` capturing child panics) on top
//! of `std::thread::scope`.

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Handle passed to the `scope` closure and to each spawned closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope handle
        /// (crossbeam convention); the workspace always ignores it (`|_|`).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope in which threads borrowing from the
    /// environment can be spawned. All threads are joined before this
    /// returns; a panic in any child surfaces as `Err(payload)`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        // std::thread::scope joins every child and re-panics if one
        // panicked; catching here converts that into crossbeam's
        // Err(payload) contract.
        catch_unwind(AssertUnwindSafe(move || {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = vec![1, 2, 3];
        let sum = std::sync::Mutex::new(0);
        let r = crate::thread::scope(|scope| {
            for &v in &data {
                let sum = &sum;
                scope.spawn(move |_| {
                    *sum.lock().unwrap() += v;
                });
            }
            "done"
        })
        .unwrap();
        assert_eq!(r, "done");
        assert_eq!(*sum.lock().unwrap(), 6);
    }

    #[test]
    fn child_panic_becomes_err() {
        let r = crate::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
