//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: [`rngs::StdRng`],
//! [`SeedableRng`] (`seed_from_u64` / `from_seed`), and the [`Rng`]
//! extension trait with `gen` and `gen_range`. The generator is
//! SplitMix64 — statistically solid for test-data generation and fully
//! deterministic, which is all the workspace asks of it. It is *not* the
//! same stream as upstream `StdRng` (ChaCha12), so seeds produce
//! different values than the real crate would; every use in this repo
//! only relies on determinism, not on a specific stream.

/// Core RNG interface: raw random words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-width byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let bytes = seed.as_mut();
        let mut s = state;
        for chunk in bytes.chunks_mut(8) {
            // SplitMix64 expansion, as upstream rand does for small seeds.
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, v) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = v;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from the generator's raw words.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges `gen_range` accepts (half-open and inclusive primitive ranges).
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128) - (self.start as i128);
                let v = (rng.next_u64() as i128).rem_euclid(span);
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128) - (lo as i128) + 1;
                let v = (rng.next_u64() as i128).rem_euclid(span);
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}

float_range!(f32, f64);

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator (SplitMix64 behind the 0.8 API).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut state = 0u64;
            for chunk in seed.chunks(8) {
                let mut w = [0u8; 8];
                w[..chunk.len()].copy_from_slice(chunk);
                state ^= u64::from_le_bytes(w).rotate_left(17);
            }
            StdRng {
                state: state ^ 0xD6E8_FEB8_6659_FD93,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let f = r.gen_range(-2.5f32..2.5);
            assert!((-2.5..2.5).contains(&f));
            let u = r.gen_range(3usize..=9);
            assert!((3..=9).contains(&u));
        }
    }

    #[test]
    fn unit_floats_are_in_range_and_vary() {
        let mut r = StdRng::seed_from_u64(1);
        let xs: Vec<f32> = (0..100).map(|_| r.gen::<f32>()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f32>() / xs.len() as f32;
        assert!((0.3..0.7).contains(&mean), "mean {mean}");
    }
}
