//! Offline stand-in for the `criterion` crate (0.5 API subset).
//!
//! Implements the workspace's benchmark surface — `criterion_group!` /
//! `criterion_main!`, `Criterion::{bench_function, benchmark_group}`,
//! `BenchmarkGroup::{sample_size, bench_function, bench_with_input,
//! finish}`, `BenchmarkId`, `Bencher::iter`, and `black_box` — with a
//! simple wall-clock harness: per sample, run the closure in batches
//! until a minimum measurement window is exceeded, then report the
//! mean/min per-iteration time. No statistics, plots, or baselines.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Passed to benchmark closures; `iter` times the routine.
pub struct Bencher {
    samples: usize,
    /// Mean per-iteration time of the best (minimum) sample.
    best: Duration,
}

impl Bencher {
    /// Time `routine`, keeping the fastest sample's mean iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + batch sizing: grow the batch until one batch takes
        // at least ~5ms so Instant overhead is amortised.
        let mut batch = 1u64;
        let window = Duration::from_millis(5);
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let took = start.elapsed();
            if took >= window || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let mut best = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let took = start.elapsed() / batch as u32;
            if took < best {
                best = took;
            }
        }
        self.best = best;
    }
}

fn run_bench(id: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        best: Duration::ZERO,
    };
    f(&mut b);
    println!("{id:<48} {:>12.3?}/iter ({samples} samples)", b.best);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Benchmark `f` under `id` within this group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id), self.samples, f);
        self
    }

    /// Benchmark `f` with an input value threaded through.
    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id), self.samples, |b| {
            f(b, input)
        });
        self
    }

    /// End the group (upstream flushes reports here; a no-op for us).
    pub fn finish(&mut self) {}
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    default_samples: usize,
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.samples();
        BenchmarkGroup {
            name: name.into(),
            samples,
            _criterion: self,
        }
    }

    /// Benchmark `f` as a standalone function.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let samples = self.samples();
        run_bench(id, samples, f);
        self
    }

    fn samples(&self) -> usize {
        if self.default_samples == 0 {
            20
        } else {
            self.default_samples
        }
    }
}

/// Define a benchmark group runner (upstream-compatible subset).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("direct", |b| b.iter(|| black_box(2 + 2)));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
