//! Offline stand-in for the `parking_lot` crate (0.12 API subset).
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` / `read()` / `write()` return guards directly rather than
//! `Result`s. Poisoning is handled by recovering the inner guard — if a
//! thread panicked while holding the lock the data may be mid-update,
//! which matches parking_lot's own (non-poisoning) semantics.

use std::sync;

/// Mutual exclusion lock with a poison-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock with poison-free `read()` / `write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_lock_and_into_inner() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(7);
        assert_eq!(*l.read(), 7);
        *l.write() = 9;
        assert_eq!(l.into_inner(), 9);
    }
}
