//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements exactly the subset of proptest the workspace's tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`],
//! * strategies: primitive ranges, `any::<T>()`, tuples, `prop_map`,
//!   [`collection::vec`], and [`array::uniform8`].
//!
//! Differences from upstream: cases are generated from a fixed
//! deterministic seed (reproducible across runs and machines) and there
//! is **no shrinking** — a failing case panics with its inputs printed,
//! un-minimised. That trade-off keeps the vendored crate dependency-free.

use std::fmt;

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed: the property is violated.
    Fail(String),
    /// `prop_assume!` rejected the inputs: try another case.
    Reject(String),
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection (filtered inputs).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`ProptestConfig` subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Maximum rejected (assumed-away) cases before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// The deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for one named test; `case` varies the stream per case.
    pub fn new(test_name: &str, case: u64) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in [lo, hi).
    pub fn below(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty size range");
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

/// A value generator. Upstream proptest separates strategies from value
/// trees to support shrinking; without shrinking a strategy is just a
/// deterministic function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Strategy yielding exactly one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategies {
    ($($t:ty => $any:expr),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128) - (self.start as i128);
                let v = (rng.next_u64() as i128).rem_euclid(span);
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128) - (lo as i128) + 1;
                let v = (rng.next_u64() as i128).rem_euclid(span);
                (lo as i128 + v) as $t
            }
        }
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                $any(rng)
            }
        }
    )*};
}

int_strategies!(
    i8 => |r: &mut TestRng| r.next_u32() as i8,
    i16 => |r: &mut TestRng| r.next_u32() as i16,
    i32 => |r: &mut TestRng| r.next_u32() as i32,
    i64 => |r: &mut TestRng| r.next_u64() as i64,
    isize => |r: &mut TestRng| r.next_u64() as isize,
    u8 => |r: &mut TestRng| r.next_u32() as u8,
    u16 => |r: &mut TestRng| r.next_u32() as u16,
    u32 => |r: &mut TestRng| r.next_u32(),
    u64 => |r: &mut TestRng| r.next_u64(),
    usize => |r: &mut TestRng| r.next_u64() as usize,
);

macro_rules! float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Full-spectrum finite floats are rarely what a test wants
                // bare; mirror proptest's any::<f32>() by sampling from a
                // wide but finite range.
                ((rng.unit_f64() - 0.5) * 2e12) as $t
            }
        }
    )*};
}

float_strategies!(f32, f64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Draw a canonical arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Canonical strategy for `T` (upstream `any::<T>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategies {
    ($(($($n:ident $i:tt),+)),* $(,)?) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.gen_value(rng),)+)
            }
        }
    )*};
}

tuple_strategies!(
    (A 0, B 1),
    (A 0, B 1, C 2),
    (A 0, B 1, C 2, D 3),
    (A 0, B 1, C 2, D 3, E 4),
    (A 0, B 1, C 2, D 3, E 4, F 5),
);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Sizes accepted by [`vec`]: an exact count or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.below(self.size.lo, self.size.hi);
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Fixed-size array strategies (`proptest::array`).
pub mod array {
    use super::{Strategy, TestRng};

    macro_rules! uniform {
        ($($name:ident $n:literal),* $(,)?) => {$(
            /// Strategy for `[S::Value; N]`, every element from `element`.
            pub fn $name<S: Strategy>(element: S) -> Uniform<S, $n> {
                Uniform { element }
            }
        )*};
    }

    uniform!(uniform2 2, uniform3 3, uniform4 4, uniform8 8, uniform16 16, uniform32 32);

    /// Strategy returned by the `uniformN` constructors.
    #[derive(Debug, Clone)]
    pub struct Uniform<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for Uniform<S, N> {
        type Value = [S::Value; N];

        fn gen_value(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.gen_value(rng))
        }
    }
}

/// Drive one property: generate cases until `config.cases` pass,
/// panicking on the first failure. Used by the [`proptest!`] expansion.
pub fn run_property(
    config: &ProptestConfig,
    test_name: &str,
    mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut stream = 0u64;
    while passed < config.cases {
        let mut rng = TestRng::new(test_name, stream);
        stream += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "property '{test_name}': too many rejected cases \
                         ({rejected}) before reaching {} passes",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property '{test_name}' failed at case #{} (seed stream {}): {msg}",
                    passed + 1,
                    stream - 1
                );
            }
        }
    }
}

/// Everything a test file needs (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Assert inside a property body; failure aborts only this case set.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "{}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "{} == {} ({:?} vs {:?})",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "{} != {} (both {:?})",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)*);
    }};
}

/// Reject the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(format!($($fmt)*)));
        }
    };
}

/// Define property tests. Supports the upstream shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0i32..10, v in proptest::collection::vec(any::<bool>(), 1..4)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // Internal rules first: the public catch-all would otherwise
    // re-wrap `@cfg ...` recursively.
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_property(&config, stringify!($name), |prop_rng| {
                $(let $arg = $crate::Strategy::gen_value(&($strat), prop_rng);)+
                let case = || -> $crate::TestCaseResult {
                    $body
                    ::core::result::Result::Ok(())
                };
                case()
            });
        }
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(x in -5i32..5, u in 1usize..=4) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!((1..=4).contains(&u));
        }

        #[test]
        fn tuples_and_map_compose(v in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(v < 19);
        }

        #[test]
        fn vec_and_array_strategies(
            xs in crate::collection::vec(0i64..100, 2..6),
            arr in crate::array::uniform8(-1.0f32..1.0),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(arr.iter().all(|&v| (-1.0..1.0).contains(&v)));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0i32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = crate::TestRng::new("t", 3);
        let mut b = crate::TestRng::new("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_context() {
        crate::run_property(&ProptestConfig::with_cases(4), "always_fails", |_| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
