//! The fast-path equivalence contract, property-tested: the packed serial
//! kernel, the block-row-parallel kernel, the naive reference kernel, and
//! the `bfp-pu` cycle simulator must produce bit-identical `f32` outputs
//! on the same quantized operands — for every shape (including
//! non-multiples of the block size) and every mix of block exponents.
//! The `MixedEngine` weight-plan cache must likewise never change a bit.

use bfp_arith::abft::AbftPacked;
use bfp_arith::matrix::MatF32;
use bfp_arith::packed::PackedBfp;
use bfp_arith::quant::{Quantizer, RoundMode};
use bfp_core::{packed_matmul, ParallelPolicy};
use bfp_pu::unit::{grid_from_matrix, Fidelity, ProcessingUnit, UnitConfig};
use bfp_transformer::{Engine, MixedEngine, VitConfig, VitModel};
use proptest::prelude::*;

/// Deterministic pseudo-random matrix whose 8×8 tiles land on very
/// different block exponents (`spread` decades apart), so the exponent
/// alignment chain truncates — the path where any evaluation-order
/// difference between kernels would surface as a bit difference.
fn tiered(rows: usize, cols: usize, seed: u64, spread: u32) -> MatF32 {
    MatF32::from_fn(rows, cols, |i, j| {
        let mut z = seed
            .wrapping_add((i * cols + j + 1) as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 31;
        let base = (z % 8192) as f32 / 1024.0 - 4.0;
        let tier = ((i / 8) + (j / 8)) % (spread as usize + 1);
        base * (tier as f32 * 6.0).exp2()
    })
}

fn bits_eq(a: &MatF32, b: &MatF32) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// The cycle simulator's answer: quantize, run the stepped (per-DSP-clock)
/// simulation on one processing unit, convert the wide output grid to f32
/// exactly the way the platform layer does.
fn cycle_sim_product(qa: &bfp_arith::quant::BfpMatrix, qb: &bfp_arith::quant::BfpMatrix, rows: usize, cols: usize) -> MatF32 {
    let mut unit = ProcessingUnit::new(UnitConfig {
        fidelity: Fidelity::Stepped,
        ..Default::default()
    });
    let grid = unit.matmul_grid(&grid_from_matrix(qa), &grid_from_matrix(qb));
    MatF32::from_fn(rows, cols, |i, j| {
        let w = &grid[i / 8][j / 8];
        (w.man[i % 8][j % 8] as f64 * (w.exp as f64).exp2()) as f32
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// naive == packed serial == packed parallel == cycle simulator,
    /// bit-for-bit, across ragged shapes and mixed block exponents.
    #[test]
    fn all_gemm_paths_agree_bitwise(
        m in 1usize..34,
        k in 1usize..34,
        n in 1usize..34,
        seed in any::<u64>(),
        spread in 0u32..3,
    ) {
        let a = tiered(m, k, seed, spread);
        let b = tiered(k, n, seed ^ 0x5DEE_CE66, spread);
        let q = Quantizer::paper();
        let (qa, qb) = (q.quantize(&a).unwrap(), q.quantize(&b).unwrap());

        let naive = qa.try_matmul(&qb).unwrap();
        let (pa, pb) = (PackedBfp::pack_lhs(&qa), PackedBfp::pack_rhs(&qb));
        let packed = pa.matmul(&pb).unwrap();
        prop_assert!(bits_eq(&packed, &naive), "packed kernel diverged");

        for policy in [ParallelPolicy::Serial, ParallelPolicy::Threads(3)] {
            let par = packed_matmul(&pa, &pb, policy).unwrap();
            prop_assert!(bits_eq(&par, &naive), "parallel kernel diverged ({policy:?})");
        }

        let sim = cycle_sim_product(&qa, &qb, m, n);
        prop_assert!(bits_eq(&sim, &naive), "cycle simulator diverged");
    }

    /// The ABFT-checked kernel is part of the same contract: bit-identical
    /// to the unchecked packed kernel on healthy hardware for every shape,
    /// every rounding mode, and every scale regime — operands scaled down
    /// into the subnormal range and up to the edge of f32 overflow — with
    /// the checksum invariant verifying clean throughout. This is the
    /// "no false positives, no silent drift" half of the ABFT story; the
    /// fault_tolerance suite covers the detection half.
    #[test]
    fn abft_kernel_is_bit_exact_and_provably_clean(
        m in 1usize..34,
        k in 1usize..34,
        n in 1usize..34,
        seed in any::<u64>(),
        spread in 0u32..3,
        round_ix in 0usize..3,
        scale_exp in -140i32..57,
    ) {
        let round = [
            RoundMode::NearestEven,
            RoundMode::Truncate,
            RoundMode::Stochastic,
        ][round_ix];
        let scale = (scale_exp as f32).exp2();
        let mut a = tiered(m, k, seed, spread);
        let mut b = tiered(k, n, seed ^ 0x0DD_BA11, spread);
        for v in a.data_mut().iter_mut().chain(b.data_mut().iter_mut()) {
            *v *= scale;
        }
        let q = Quantizer {
            round,
            ..Quantizer::paper()
        };
        let (qa, qb) = (q.quantize(&a).unwrap(), q.quantize(&b).unwrap());

        let packed = PackedBfp::pack_lhs(&qa).matmul(&PackedBfp::pack_rhs(&qb)).unwrap();
        let (ca, cb) = (AbftPacked::pack_lhs(&qa), AbftPacked::pack_rhs(&qb));
        let (checked, report) = ca.matmul(&cb).unwrap();

        prop_assert!(report.clean(), "healthy hardware flagged: {report:?}");
        prop_assert_eq!(report.chains, (m.div_ceil(8) * n.div_ceil(8)) as u64);
        prop_assert!(report.checks >= report.chains, "every chain ends in a verify");
        prop_assert!(bits_eq(&checked, &packed), "checked kernel diverged");
    }

    /// The weight-plan cache is invisible to numerics: a cache-enabled
    /// engine and a cache-disabled engine produce bit-identical GEMMs,
    /// warm or cold.
    #[test]
    fn weight_plan_cache_never_changes_bits(
        m in 1usize..20,
        k in 1usize..20,
        n in 1usize..20,
        seed in any::<u64>(),
    ) {
        let a = tiered(m, k, seed, 2);
        let b = tiered(k, n, seed ^ 0xA5A5, 2);
        let mut cached = MixedEngine::new();
        let mut uncached = MixedEngine::without_weight_cache();
        let cold = cached.matmul(&a, &b);
        prop_assert!(bits_eq(&cold, &uncached.matmul(&a, &b)));
        // Second pass hits the plan cache; the bits must not move.
        let warm = cached.matmul(&a, &b);
        prop_assert!(bits_eq(&warm, &cold));
    }
}

/// Whole-model determinism under the cache: the same ViT forward pass on a
/// shared cache-enabled engine matches a fresh cache-disabled engine, run
/// after run.
#[test]
fn cached_engine_model_forward_is_bit_stable() {
    let model = VitModel::new_random(VitConfig::tiny_test(), 7);
    let x = model.synthetic_input(9);
    let mut cached = MixedEngine::new();
    let first = model.forward(&mut cached, &x);
    for _ in 0..2 {
        let again = model.forward(&mut cached, &x);
        assert!(bits_eq(&again, &first), "warm forward drifted");
        let mut fresh = MixedEngine::without_weight_cache();
        let reference = model.forward(&mut fresh, &x);
        assert!(bits_eq(&reference, &first), "cache changed model output");
    }
    let stats = cached.plan_cache_stats();
    assert!(stats.hits > 0, "expected plan-cache hits, got {stats:?}");
}
