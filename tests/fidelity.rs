//! Numerical-fidelity integration tests: the paper's accuracy argument is
//! that bfp8 linear + fp32 non-linear preserves pre-trained fp32 model
//! behaviour without retraining. With no ImageNet checkpoints available,
//! we verify the numerical backbone of that claim: bounded datapath error
//! at every level, from scalars to whole encoders.

use bfp_arith::fpadd::{AddVariant, HwFp32Add};
use bfp_arith::fpmul::{HwFp32Mul, MulVariant};
use bfp_arith::matrix::MatF32;
use bfp_arith::stats::ErrorStats;
use bfp_arith::ulp::ulp_distance;
use bfp_transformer::{MixedEngine, RefEngine, VitConfig, VitModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn scalar_datapaths_stay_within_two_ulp() {
    let mul = HwFp32Mul::new(MulVariant::DropLsp);
    let add = HwFp32Add::new(AddVariant::Exact48);
    let mut rng = StdRng::seed_from_u64(123);
    for _ in 0..50_000 {
        let x: f32 = rng.gen_range(-1e6..1e6);
        let y: f32 = rng.gen_range(-1e6..1e6);
        if (x * y).is_finite() && (x * y).abs() > 1e-20 {
            assert!(ulp_distance(mul.mul(x, y), x * y) <= 2, "{x} * {y}");
        }
        let s = x + y;
        if s != 0.0 && s.abs() > 1e-20 {
            assert!(ulp_distance(add.add(x, y), s) <= 1, "{x} + {y}");
        }
    }
}

#[test]
fn deeper_models_degrade_gracefully() {
    // Quantization noise compounds across blocks but must not explode:
    // SQNR decreases roughly linearly in depth, not catastrophically.
    let mut prev_sqnr = f64::INFINITY;
    for depth in [1usize, 2, 4] {
        let cfg = VitConfig {
            depth,
            ..VitConfig::tiny_test()
        };
        let model = VitModel::new_random(cfg, 31);
        let x = model.synthetic_input(17);
        let want = model.forward(&mut RefEngine, &x);
        let got = model.forward(&mut MixedEngine::new(), &x);
        let mut s = ErrorStats::new();
        s.push_slices(got.data(), want.data());
        assert!(
            s.sqnr_db() > 10.0,
            "depth {depth}: SQNR {:.1} dB must stay usable",
            s.sqnr_db()
        );
        assert!(
            s.sqnr_db() < prev_sqnr + 3.0,
            "fidelity should not improve with depth (depth {depth})"
        );
        prev_sqnr = s.sqnr_db();
    }
}

#[test]
fn logit_ranking_is_preserved() {
    // Argmax agreement between fp32 and mixed outputs on many random
    // inputs — the proxy for "no accuracy loss without retraining".
    let model = VitModel::new_random(VitConfig::tiny_test(), 77);
    let mut agree = 0;
    let total = 20;
    for seed in 0..total {
        let x = model.synthetic_input(seed as u64);
        let want = model.forward(&mut RefEngine, &x);
        let got = model.forward(&mut MixedEngine::new(), &x);
        // Use the class-token row (row 0) as the logit vector.
        let argmax = |m: &MatF32| {
            m.row(0)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0
        };
        if argmax(&want) == argmax(&got) {
            agree += 1;
        }
    }
    assert!(
        agree >= total - 1,
        "argmax agreement {agree}/{total}; mixed precision must track fp32"
    );
}

#[test]
fn attention_probabilities_remain_normalized() {
    // After bfp8 QK^T noise and the VPU softmax, attention rows must still
    // be valid probability distributions.
    let mut vpu = bfp_transformer::Vpu::new();
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..200 {
        let mut row: Vec<f32> = (0..64).map(|_| rng.gen_range(-8.0..8.0)).collect();
        vpu.softmax_row(&mut row);
        let sum: f64 = row.iter().map(|&v| v as f64).sum();
        assert!((sum - 1.0).abs() < 1e-4, "softmax sum {sum}");
        assert!(row.iter().all(|&v| (0.0..=1.0001).contains(&v)));
    }
}

#[test]
fn block_size_ablation_monotone_on_heterogeneous_data() {
    // Smaller blocks isolate outliers better: SQNR(4) >= SQNR(8) >= SQNR(16)
    // on data with strong local dynamic range.
    use bfp_arith::quant::Quantizer;
    let m = MatF32::from_fn(64, 64, |i, j| {
        let v = ((i * 13 + j * 29) % 101) as f32 / 101.0 - 0.5;
        if (i / 4) % 3 == 0 {
            v * 200.0
        } else {
            v
        }
    });
    let sqnr = |b: usize| {
        Quantizer::with_block(b)
            .quantize(&m)
            .unwrap()
            .fidelity(&m)
            .sqnr_db()
    };
    let (s4, s8, s16) = (sqnr(4), sqnr(8), sqnr(16));
    assert!(s4 >= s8 && s8 >= s16, "SQNR {s4:.1} / {s8:.1} / {s16:.1}");
}
