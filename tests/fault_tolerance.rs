//! Fault-injection properties and the end-to-end degradation story.
//!
//! Everything here needs the injection hooks compiled in:
//!
//! ```text
//! cargo test --features faults --test fault_tolerance
//! ```
#![cfg(feature = "faults")]

use std::sync::Mutex;

use bfp_arith::matrix::MatF32;
use bfp_arith::quant::Quantizer;
use bfp_core::resilient::{resilient_matmul, RecoveryPolicy, VerifyMode};
use bfp_core::Accelerator;
use bfp_faults::{FaultPlan, FaultSpec};
use bfp_pu::unit::{grid_from_matrix, Fidelity, ProcessingUnit, UnitConfig};
use proptest::prelude::*;

/// Serialises every test in this binary: baseline (no-session) runs must
/// not observe another test's installed plan. Lock order is always this
/// mutex first, then the crate's session lock via `install`.
static EXCLUSIVE: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Deterministic pseudo-random matrix from a seed (SplitMix64 mix).
fn seeded(rows: usize, cols: usize, seed: u64) -> MatF32 {
    MatF32::from_fn(rows, cols, |i, j| {
        let mut z = seed
            .wrapping_add((i * cols + j + 1) as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 31;
        // Uniform in [-4, 4).
        (z % 8192) as f32 / 1024.0 - 4.0
    })
}

/// Quantize and multiply on one processing unit at the given fidelity,
/// dequantizing the wide output — the raw datapath, no recovery.
fn unit_product(a: &MatF32, b: &MatF32, fidelity: Fidelity) -> MatF32 {
    let q = Quantizer::paper();
    let ga = grid_from_matrix(&q.quantize(a).unwrap());
    let gb = grid_from_matrix(&q.quantize(b).unwrap());
    let mut unit = ProcessingUnit::new(UnitConfig {
        fidelity,
        ..UnitConfig::default()
    });
    let wide = unit.matmul_grid(&ga, &gb);
    MatF32::from_fn(a.rows(), b.cols(), |i, j| {
        let w = &wide[i / 8][j / 8];
        (w.man[i % 8][j % 8] as f64 * (w.exp as f64).exp2()) as f32
    })
}

fn bits_eq(x: &MatF32, y: &MatF32) -> bool {
    x.rows() == y.rows()
        && x.cols() == y.cols()
        && x.data()
            .iter()
            .zip(y.data())
            .all(|(p, q)| p.to_bits() == q.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The empty plan is bit-identical to an uninstrumented run: the
    /// hooks are live (`active()` is true) but must not perturb a single
    /// bit, and the counters must stay at zero.
    #[test]
    fn none_plan_is_bit_identical(
        m in 1usize..20, k in 1usize..20, n in 1usize..20, seed in any::<u64>(),
    ) {
        let _x = lock();
        let a = seeded(m, k, seed);
        let b = seeded(k, n, seed ^ 0xDEAD_BEEF);
        let baseline = unit_product(&a, &b, Fidelity::Stepped);

        let guard = bfp_faults::install(FaultPlan::none());
        let faulted = unit_product(&a, &b, Fidelity::Stepped);
        let counters = bfp_faults::counters();
        drop(guard);

        prop_assert!(bits_eq(&baseline, &faulted));
        prop_assert_eq!(counters.injected, 0);
    }

    /// A single flipped codeword bit in an operand BRAM is always
    /// repaired by the SECDED model: numerics are unchanged and no
    /// uncorrected event is ever reported.
    #[test]
    fn corrected_ecc_never_changes_numerics(
        m in 1usize..20, k in 1usize..20, n in 1usize..20, seed in any::<u64>(),
        bram in 0usize..16, addr in 0usize..16, bit in 0u8..13,
    ) {
        let _x = lock();
        let a = seeded(m, k, seed);
        let b = seeded(k, n, seed ^ 0x5A5A_5A5A);
        let baseline = unit_product(&a, &b, Fidelity::Stepped);

        let plan = FaultPlan::new().with(FaultSpec::BramFlip {
            bram,
            addr,
            bits: vec![bit],
        });
        let guard = bfp_faults::install(plan);
        let faulted = unit_product(&a, &b, Fidelity::Stepped);
        let counters = bfp_faults::counters();
        drop(guard);

        prop_assert!(bits_eq(&baseline, &faulted));
        prop_assert_eq!(counters.ecc_uncorrected, 0);
        // If the upset cell was ever read, the correction was counted.
        prop_assert_eq!(counters.injected > 0, counters.ecc_corrected > 0);
    }

    /// A double-bit (uncorrectable) BRAM upset is always either detected
    /// by the recovery pipeline or harmless (the cell was never read);
    /// either way the final output stays inside the bfp8 quantization
    /// error envelope of the fp32 product.
    #[test]
    fn uncorrected_faults_detected_or_bounded(
        m in 1usize..20, k in 1usize..20, n in 1usize..20, seed in any::<u64>(),
        bram in 0usize..16, addr in 0usize..16, b1 in 0u8..13, b2 in 0u8..13,
    ) {
        prop_assume!(b1 != b2);
        let _x = lock();
        let a = seeded(m, k, seed);
        let b = seeded(k, n, seed ^ 0x0F0F_0F0F);
        let q = Quantizer::paper();
        let exact = a.matmul(&b);
        // Envelope: the healthy datapath's worst elementwise error.
        let healthy = q.quantize(&a).unwrap().matmul(&q.quantize(&b).unwrap());
        let envelope = exact
            .data()
            .iter()
            .zip(healthy.data())
            .map(|(x, y)| (x - y).abs())
            .fold(0f32, f32::max);

        let plan = FaultPlan::new().with(FaultSpec::BramFlip {
            bram,
            addr,
            bits: vec![b1, b2],
        });
        let guard = bfp_faults::install(plan);
        let policy = RecoveryPolicy {
            fidelity: Fidelity::Stepped,
            ..RecoveryPolicy::default()
        };
        let outcome = resilient_matmul(&a, &b, &q, &policy).unwrap();
        drop(guard);

        // Detected whenever it actually perturbed a read…
        if outcome.report.counters.ecc_uncorrected > 0 {
            prop_assert!(outcome.report.detected > 0, "{}", outcome.report);
        }
        // …and bounded regardless: degraded tiles are fp32-exact, clean
        // tiles carry ordinary quantization error.
        for (got, want) in outcome.out.data().iter().zip(exact.data()) {
            prop_assert!(
                (got - want).abs() <= envelope + 1e-4,
                "error {} exceeds envelope {envelope}",
                (got - want).abs()
            );
        }
    }
}

/// The acceptance story: an uncorrectable BRAM upset during a DeiT-shaped
/// GEMM (one attention-head projection, 197×384 × 384×64) is detected by
/// the ECC model, the tile is retried with backoff, the persistent fault
/// defeats every retry, the layer degrades to fp32, every step lands in
/// the `FaultReport`, and the output stays within the bfp8 envelope.
#[test]
fn deit_layer_survives_uncorrected_bram_fault() {
    let _x = lock();
    let (m, k, n) = (197, 384, 64);
    let a = seeded(m, k, 0xD1E7);
    let b = seeded(k, n, 0xD1E7 ^ 0xFFFF);
    let exact = a.matmul(&b);
    let q = Quantizer::paper();
    let healthy = q.quantize(&a).unwrap().matmul(&q.quantize(&b).unwrap());
    let envelope = exact
        .data()
        .iter()
        .zip(healthy.data())
        .map(|(x, y)| (x - y).abs())
        .fold(0f32, f32::max);

    // Two flipped bits in the word every Y-preload reads: detected by
    // SECDED on every access but never correctable.
    let plan = FaultPlan::new().with(FaultSpec::BramFlip {
        bram: 0,
        addr: 0,
        bits: vec![3, 7],
    });
    let guard = bfp_faults::install(plan);
    let acc = Accelerator::u280();
    let policy = RecoveryPolicy {
        fidelity: Fidelity::Stepped,
        ..RecoveryPolicy::default()
    };
    let (out, report) = acc.gemm_resilient(&a, &b, &policy).unwrap();
    drop(guard);

    let f = &report.stats.faults;
    assert!(f.counters.ecc_uncorrected > 0, "{f}");
    assert!(f.detected > 0, "{f}");
    assert!(f.retries > 0, "{f}");
    assert!(f.backoff_cycles > 0, "{f}");
    assert!(f.fp32_fallbacks > 0, "{f}");
    assert_eq!(f.counters.silent(), f.counters.ecc_corrected, "all ECC");

    for (got, want) in out.data().iter().zip(exact.data()) {
        assert!(
            (got - want).abs() <= envelope + 1e-4,
            "degraded output must stay in the bfp8 envelope"
        );
    }
}

/// Under the legacy stepped cross-check (`VerifyMode::Stepped`), a
/// transient PSU upset is caught by re-execution and healed by a single
/// retry — no fp32 degradation needed.
#[test]
fn transient_psu_flip_heals_with_one_retry() {
    let _x = lock();
    let a = seeded(24, 16, 0xBEEF);
    let b = seeded(16, 16, 0xFEED);
    let q = Quantizer::paper();

    let plan = FaultPlan::new().with(FaultSpec::PsuFlip {
        nth: 0,
        row: 0,
        col: 0,
        bit: 44,
    });
    let guard = bfp_faults::install(plan);
    let policy = RecoveryPolicy {
        verify: VerifyMode::Stepped,
        ..RecoveryPolicy::default()
    };
    let outcome = resilient_matmul(&a, &b, &q, &policy).unwrap();
    drop(guard);

    let r = &outcome.report;
    assert!(r.stepped_crosschecks > 0, "{r}");
    assert!(r.detected > 0, "{r}");
    assert!(r.retries > 0, "{r}");
    assert_eq!(r.fp32_fallbacks, 0, "transient faults heal in place: {r}");

    // Healed means the output equals the healthy quantized product.
    let healthy = q.quantize(&a).unwrap().matmul(&q.quantize(&b).unwrap());
    assert!(bits_eq(&outcome.out, &healthy));
}

/// Under the default ABFT mode, the same transient PSU upset never needs
/// a retry: the checksum invariant localizes the flipped accumulator
/// element via the row×column intersection and repairs it in place,
/// cheaper than the stepped cross-check by a full re-execution.
#[test]
fn abft_corrects_transient_psu_flip_in_place() {
    let _x = lock();
    let a = seeded(24, 16, 0xBEEF);
    let b = seeded(16, 16, 0xFEED);
    let q = Quantizer::paper();

    let plan = FaultPlan::new().with(FaultSpec::PsuFlip {
        nth: 0,
        row: 0,
        col: 0,
        bit: 44,
    });
    let guard = bfp_faults::install(plan);
    let outcome = resilient_matmul(&a, &b, &q, &RecoveryPolicy::default()).unwrap();
    drop(guard);

    let r = &outcome.report;
    assert!(r.abft_detections > 0, "{r}");
    assert!(r.abft_corrections > 0, "{r}");
    assert_eq!(r.detected, r.abft_detections, "{r}");
    assert_eq!(r.uncorrected_detections(), 0, "corrected output is servable: {r}");
    assert_eq!(r.retries, 0, "in-place repair needs no re-execution: {r}");
    assert_eq!(r.stepped_crosschecks, 0, "{r}");
    assert_eq!(r.fp32_fallbacks, 0, "{r}");

    let healthy = q.quantize(&a).unwrap().matmul(&q.quantize(&b).unwrap());
    assert!(bits_eq(&outcome.out, &healthy), "repair restores the exact bits");
}

/// A persistent multi-bit BRAM defect defeats ABFT's single-fault
/// correction model, so the default mode walks the full ladder: detect,
/// retry with backoff, and finally degrade the affected rows to fp32 —
/// with the output still inside the bfp8 quantization envelope.
#[test]
fn abft_escalates_persistent_bram_fault_to_fp32() {
    let _x = lock();
    let a = seeded(24, 16, 0xB4A0);
    let b = seeded(16, 16, 0xB4A0 ^ 0xFFFF);
    let q = Quantizer::paper();
    let exact = a.matmul(&b);
    let healthy = q.quantize(&a).unwrap().matmul(&q.quantize(&b).unwrap());
    let envelope = exact
        .data()
        .iter()
        .zip(healthy.data())
        .map(|(x, y)| (x - y).abs())
        .fold(0f32, f32::max);

    // Double-bit upset in the first word of BRAM 0: SECDED flags it on
    // every read, the corrupted payload breaks the checksum invariant
    // across multiple columns, and no retry can outlast it.
    let plan = FaultPlan::new().with(FaultSpec::BramFlip {
        bram: 0,
        addr: 0,
        bits: vec![3, 7],
    });
    let guard = bfp_faults::install(plan);
    let outcome = resilient_matmul(&a, &b, &q, &RecoveryPolicy::default()).unwrap();
    drop(guard);

    let r = &outcome.report;
    assert!(r.counters.ecc_uncorrected > 0, "{r}");
    assert!(r.detected > 0, "{r}");
    assert!(r.retries > 0, "{r}");
    assert!(r.backoff_cycles > 0, "{r}");
    assert!(r.fp32_fallbacks > 0, "{r}");

    for (got, want) in outcome.out.data().iter().zip(exact.data()) {
        assert!(
            (got - want).abs() <= envelope + 1e-4,
            "degraded output must stay in the bfp8 envelope"
        );
    }
}

/// `System::matmul_blocks` snapshots the fault counters into
/// `SystemStats`, so even the plain (non-resilient) parallel path reports
/// what it absorbed.
#[test]
fn system_stats_carry_fault_counters() {
    let _x = lock();
    let sys = bfp_platform::System::paper();
    let a = seeded(32, 16, 0xACE);
    let b = seeded(16, 16, 0xCAFE);

    // Corrected-only plan: numerics stay exact, counters still tick. The
    // functional path reads PSU words through the drain hook, so use a
    // low-bit PSU flip — visible in counters, negligible numerically…
    let plan = FaultPlan::new().with(FaultSpec::PsuFlip {
        nth: 0,
        row: 0,
        col: 0,
        bit: 0,
    });
    let guard = bfp_faults::install(plan);
    let (_, stats) = sys.matmul_f32(&a, &b);
    drop(guard);

    assert!(stats.faults.counters.injected > 0);
}
