//! The paper's headline numbers, asserted as tests: if a refactor breaks a
//! reproduction target, CI catches it here.

use bfp_core::LatencyModel;
use bfp_platform::{paper_ours_row, DesignVariant, PuCostModel, System, U280};
use bfp_pu::throughput;
use bfp_transformer::{analytical_census, VitConfig};

const F300: f64 = 300.0e6;

#[test]
fn abstract_claim_2_052_tops_bfp8() {
    let sys = System::paper();
    let gops = sys.measured_bfp_gops(64);
    assert!(
        (gops - 2052.06).abs() / 2052.06 < 0.005,
        "measured {gops} GOPS"
    );
}

#[test]
fn abstract_claim_33_88_gflops_fp32() {
    let sys = System::paper();
    assert!((sys.theoretical_fp32_gflops(128) - 33.88).abs() < 0.005);
}

#[test]
fn abstract_claim_over_95_percent_of_8bit_peak() {
    // "over 95% of the theoretical maximum 8-bit throughput": Eqn. 9 at
    // N_X = 64 sustains 97.15% of the allocated arrays' peak.
    let u = throughput::bfp_throughput(64, F300) / throughput::bfp_peak_ops(F300);
    assert!(u > 0.95, "utilization {u}");
}

#[test]
fn abstract_claim_1_19x_ff_vs_int8() {
    let int8 = DesignVariant::Int8.assessed_usage();
    let bfp8 = DesignVariant::Bfp8Only.assessed_usage();
    assert_eq!(int8.dsp, bfp8.dsp, "same number of DSPs");
    assert!(
        (bfp8.ff / int8.ff - 1.19).abs() < 0.01,
        "1.19x more flip-flops"
    );
}

#[test]
fn abstract_claim_savings_vs_individual_units() {
    let multi = DesignVariant::MultiMode.assessed_usage();
    let indiv = DesignVariant::Individual.assessed_usage();
    assert!(
        (1.0 - multi.dsp / indiv.dsp - 0.200).abs() < 1e-3,
        "20.0% DSP saving"
    );
    assert!(
        (1.0 - multi.ff / indiv.ff - 0.612).abs() < 1e-3,
        "61.2% FF saving"
    );
    assert!(
        (1.0 - multi.lut / indiv.lut - 0.436).abs() < 1e-3,
        "43.6% LUT saving"
    );
}

#[test]
fn table2_unit_totals() {
    let t = PuCostModel::unit_total(Default::default());
    assert_eq!((t.lut, t.ff, t.bram, t.dsp), (7348.0, 10329.0, 57.5, 72.0));
}

#[test]
fn table3_ours_row() {
    let ours = System::paper().table3_row();
    let paper = paper_ours_row();
    assert_eq!(ours.dsp, paper.dsp, "2163 DSPs");
    assert!((ours.lut_k - paper.lut_k).abs() < 0.5);
    assert!((ours.ff_k.unwrap() - paper.ff_k.unwrap()).abs() < 0.5);
    assert!((ours.bram.unwrap() - paper.bram.unwrap()).abs() < 0.5);
    assert!((ours.gops_per_dsp() - 0.95).abs() < 0.01, "0.95 GOPS/DSP");
}

#[test]
fn section_iid_quoted_utilization_97_15_percent() {
    let ratio: f64 = 8.0 * 64.0 / (8.0 * 64.0 + 15.0);
    assert!((ratio - 0.9715).abs() < 1e-4);
    let model = throughput::bfp_throughput(64, F300) / throughput::bfp_peak_ops(F300);
    assert!((model - ratio).abs() < 1e-12);
}

#[test]
fn table4_latency_column_reproduces_from_paper_ops() {
    use bfp_transformer::flops::paper_table4 as p;
    let m = LatencyModel::paper();
    // bfp8 row: 2465M OPs / 2052.06 GOPS = 1.201 ms.
    let bfp_ms = p::BFP8_MATMUL_OPS / m.bfp_ops_per_sec * 1e3;
    assert!((bfp_ms - p::LATENCY_MS[0]).abs() < 0.001, "{bfp_ms}");
    // Non-linear rows: FLOPs / 15 GFLOPS.
    for (flops, want_ms) in [
        (p::LAYERNORM_FLOPS, p::LATENCY_MS[1]),
        (p::SOFTMAX_FLOPS, p::LATENCY_MS[2]),
        (p::GELU_FLOPS, p::LATENCY_MS[3]),
    ] {
        let ms = flops / m.fp32_flops_per_sec * 1e3;
        assert!((ms - want_ms).abs() / want_ms < 0.002, "{ms} vs {want_ms}");
    }
}

#[test]
fn table4_conclusion_fp32_dominates_latency() {
    let census = analytical_census(&VitConfig::deit_small());
    let b = LatencyModel::paper().breakdown(&census);
    // Paper: 1.35% of ops -> 92.45% of latency. Ours (richer kernels):
    // low-percent ops share, strong-majority latency share.
    assert!(b.fp32_ops_percent() < 5.0);
    assert!(b.fp32_latency_percent() > 60.0);
    assert!(b.latency_percent(0) < 35.0, "bfp8 latency share is small");
}

#[test]
fn fig7_shapes() {
    let sys = System::paper();
    // Monotone rising curves, measured under theoretical, bfp8 gap small,
    // fp32 gap large.
    let mut prev = 0.0;
    for nx in [8, 16, 32, 64] {
        let m = sys.measured_bfp_gops(nx);
        assert!(m > prev);
        assert!(m <= sys.theoretical_bfp_gops(nx));
        prev = m;
    }
    assert!(sys.measured_bfp_gops(64) / sys.theoretical_bfp_gops(64) > 0.85);
    assert!(sys.measured_fp32_gflops(128) / sys.theoretical_fp32_gflops(128) < 0.55);
}

#[test]
fn footnote_hbm_channel_budget() {
    // "Each multi-mode unit has 2 256-bit AXI channels connected to HBM":
    // 15 units x 2 = 30 channels <= the U280's 32.
    let cfg = System::paper().cfg;
    assert_eq!(cfg.units * cfg.arrays_per_unit, 30);
    assert!(cfg.units * 2 <= U280::HBM_CHANNELS);
}
