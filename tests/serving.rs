//! Serving-runtime properties: admission accounting (fleet-wide, per
//! tenant, and per priority class), tenant quotas, priority-aware
//! shedding, drain semantics, deadline enforcement, and the
//! quarantine → probe → re-admit cycle.
//!
//! These tests drive `bfp-serve`'s scripted per-array fault injection,
//! so they need no cargo feature (the hook-based injector in
//! `bfp-faults` is process-global and unrelated).

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use bfp_arith::matrix::MatF32;
use bfp_arith::quant::Quantizer;
use bfp_serve::{
    ArrayFaultPlan, ArrayHealth, Backpressure, BrownoutPolicy, HealthPolicy, Priority,
    ServeConfig, ServeError, ServeRequest, ServeStats, Server, TenantId, TenantQuota,
};
use proptest::prelude::*;

/// Deterministic pseudo-random matrix from a seed (SplitMix64 mix).
fn seeded(rows: usize, cols: usize, seed: u64) -> MatF32 {
    MatF32::from_fn(rows, cols, |i, j| {
        let mut z = seed
            .wrapping_add((i * cols + j + 1) as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 31;
        (z % 8192) as f32 / 1024.0 - 4.0
    })
}

fn request(seed: u64) -> ServeRequest {
    ServeRequest::new(seeded(16, 16, seed), seeded(16, 16, seed ^ 0xABCD_EF01))
}

/// The fault-free bfp8 reference bits for a request's GEMM.
fn reference(seed: u64) -> MatF32 {
    let q = Quantizer::paper();
    let a = q.quantize(&seeded(16, 16, seed)).unwrap();
    let b = q.quantize(&seeded(16, 16, seed ^ 0xABCD_EF01)).unwrap();
    a.try_matmul(&b).unwrap()
}

fn bits_eq(x: &MatF32, y: &MatF32) -> bool {
    x.rows() == y.rows()
        && x.cols() == y.cols()
        && x.data()
            .iter()
            .zip(y.data())
            .all(|(p, q)| p.to_bits() == q.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Admission accounting is exact under random storms and policies:
    /// no request is both rejected and completed, every admitted ticket
    /// resolves exactly once, and the counter identities hold.
    #[test]
    fn no_request_is_both_rejected_and_completed(
        seed in any::<u64>(),
        capacity in 1usize..8,
        arrays in 1usize..4,
        storm in 8usize..40,
        policy in 0u8..2,
    ) {
        let backpressure = if policy == 0 {
            Backpressure::Reject
        } else {
            Backpressure::ShedOldest
        };
        let cfg = ServeConfig {
            queue_capacity: capacity,
            backpressure,
            ..Default::default()
        };
        let server = Server::simulated(cfg, vec![ArrayFaultPlan::None; arrays]);
        let mut tickets = Vec::new();
        let mut refused = 0u64;
        for s in 0..storm as u64 {
            match server.submit(request(seed ^ s)) {
                Ok(t) => tickets.push((seed ^ s, t)),
                Err(ServeError::QueueFull) => refused += 1,
                Err(e) => panic!("unexpected refusal: {e}"),
            }
        }
        server.drain();
        let st = server.stats();
        // A rejected submission never got a ticket, so it cannot also
        // complete; the ledger identities pin this down fleet-wide.
        prop_assert_eq!(st.submitted, storm as u64);
        prop_assert_eq!(st.rejected, refused);
        prop_assert_eq!(st.admitted + st.rejected, st.submitted);
        prop_assert_eq!(st.completed + st.failed, st.admitted);
        prop_assert_eq!(st.admitted, tickets.len() as u64);
        let mut completed = 0u64;
        for (s, t) in &tickets {
            let first = t.wait();
            // Resolution is stable: waiting again returns the same answer.
            prop_assert_eq!(&t.wait(), &first);
            match first {
                Ok(resp) => {
                    completed += 1;
                    prop_assert!(bits_eq(&resp.out, &reference(*s)));
                }
                Err(ServeError::Shed) => {}
                Err(e) => panic!("unexpected failure: {e}"),
            }
        }
        prop_assert_eq!(completed, st.completed);
    }
}

/// Brownout thresholds no storm can reach, so a test exercises only the
/// mechanism it targets.
fn no_brownout() -> BrownoutPolicy {
    BrownoutPolicy {
        tier1_pressure: 1e9,
        tier2_pressure: 2e9,
        ..Default::default()
    }
}

/// The accounting identity, at every level the snapshot reports.
fn assert_identities(s: &ServeStats) {
    assert_eq!(
        s.admitted,
        s.completed + s.failed + s.queued as u64 + s.in_flight as u64,
        "fleet identity broken"
    );
    assert_eq!(s.submitted, s.admitted + s.rejected, "fleet admission split");
    for ts in &s.per_tenant {
        assert_eq!(
            ts.admitted,
            ts.completed + ts.failed + ts.queued as u64 + ts.in_flight as u64,
            "tenant {} identity broken",
            ts.tenant
        );
        assert_eq!(ts.submitted, ts.admitted + ts.rejected);
    }
    for (i, ps) in s.per_priority.iter().enumerate() {
        assert_eq!(
            ps.admitted,
            ps.completed + ps.failed + ps.queued as u64 + ps.in_flight as u64,
            "priority class {i} identity broken"
        );
    }
}

#[test]
fn tenant_and_priority_identities_hold_under_concurrent_snapshots() {
    // Two tenants, all three priorities, a faulty array keeping the
    // retry path hot, and a snapshot thread hammering stats() the whole
    // time: the identity must hold in EVERY observation, not just at
    // quiescence — per tenant and per class as well as fleet-wide.
    let cfg = ServeConfig {
        queue_capacity: 256,
        max_attempts: 6,
        quotas: vec![
            (TenantId(1), TenantQuota { weight: 3, ..Default::default() }),
            (TenantId(2), TenantQuota { weight: 1, ..Default::default() }),
        ],
        brownout: no_brownout(),
        ..Default::default()
    };
    let server = Server::simulated(
        cfg,
        vec![ArrayFaultPlan::transient(12), ArrayFaultPlan::None],
    );
    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let snapshots = scope.spawn({
            let server = &server;
            let done = &done;
            move || {
                let mut seen = 0u64;
                while !done.load(Ordering::Relaxed) {
                    assert_identities(&server.stats());
                    seen += 1;
                    std::thread::yield_now();
                }
                seen
            }
        });
        let mut tickets = Vec::new();
        for s in 0..60u64 {
            let r = request(s)
                .for_tenant(TenantId(1 + s % 2))
                .with_priority(Priority::ALL[(s % 3) as usize]);
            tickets.push(server.submit(r).unwrap());
            assert_identities(&server.stats());
        }
        for t in tickets {
            t.wait().unwrap();
        }
        server.drain();
        done.store(true, Ordering::Relaxed);
        assert!(snapshots.join().unwrap() > 0, "snapshot thread observed nothing");
    });
    let s = server.stats();
    assert_identities(&s);
    assert_eq!(s.completed, 60);
    // The rollups partition the fleet totals exactly.
    let tenant_admitted: u64 = s.per_tenant.iter().map(|t| t.admitted).sum();
    let prio_admitted: u64 = s.per_priority.iter().map(|p| p.admitted).sum();
    assert_eq!(tenant_admitted, s.admitted);
    assert_eq!(prio_admitted, s.admitted);
    let tenant_completed: u64 = s.per_tenant.iter().map(|t| t.completed).sum();
    assert_eq!(tenant_completed, s.completed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Token-bucket quotas are never exceeded: however fast a tenant
    /// submits, its admissions stay within burst + rate × elapsed.
    #[test]
    fn quotas_are_never_exceeded(
        seed in any::<u64>(),
        rate in 20.0f64..400.0,
        burst in 1.0f64..6.0,
        storm in 30usize..90,
    ) {
        let burst = burst.floor();
        let cfg = ServeConfig {
            queue_capacity: 512,
            quotas: vec![(TenantId(9), TenantQuota { weight: 1, rate_rps: rate, burst })],
            brownout: no_brownout(),
            ..Default::default()
        };
        let server = Server::simulated(cfg, vec![ArrayFaultPlan::None; 2]);
        let t0 = Instant::now();
        let mut admitted = 0u64;
        let mut quota_rejected = 0u64;
        for s in 0..storm as u64 {
            match server.submit(request(seed ^ s).for_tenant(TenantId(9))) {
                Ok(_) => admitted += 1,
                Err(ServeError::QuotaExceeded) => quota_rejected += 1,
                Err(e) => panic!("unexpected refusal: {e}"),
            }
        }
        let elapsed = t0.elapsed().as_secs_f64();
        server.drain();
        // The bucket held `burst` tokens at first submit and refilled at
        // `rate` thereafter; +1.0 absorbs a refill racing the last take.
        let ceiling = burst + rate * elapsed + 1.0;
        prop_assert!(
            (admitted as f64) <= ceiling,
            "{admitted} admissions exceed the quota ceiling {ceiling:.1}"
        );
        let st = server.stats();
        prop_assert_eq!(st.quota_rejected, quota_rejected);
        let ts = st.tenant(TenantId(9)).unwrap();
        prop_assert_eq!(ts.quota_rejected, quota_rejected);
        prop_assert_eq!(ts.admitted, admitted);
        assert_identities(&st);
    }
}

#[test]
fn critical_work_survives_storms_that_shed_bulk() {
    // A shed-oldest storm of mixed priorities over a tiny queue: Bulk
    // and Standard get evicted under pressure, Critical never does —
    // every admitted Critical request completes.
    let cfg = ServeConfig {
        queue_capacity: 2,
        backpressure: Backpressure::ShedOldest,
        brownout: no_brownout(),
        ..Default::default()
    };
    let server = Server::simulated(cfg, vec![ArrayFaultPlan::None]);
    let mut critical = Vec::new();
    let mut other = Vec::new();
    for s in 0..120u64 {
        let prio = Priority::ALL[(s % 3) as usize];
        match server.submit(request(s).with_priority(prio)) {
            Ok(t) if prio == Priority::Critical => critical.push(t),
            Ok(t) => other.push(t),
            Err(ServeError::QueueFull) => {}
            Err(e) => panic!("unexpected refusal: {e}"),
        }
    }
    server.drain();
    for t in &critical {
        assert!(
            t.wait().is_ok(),
            "an admitted Critical request must complete, never shed"
        );
    }
    let shed_seen = other
        .iter()
        .filter(|t| t.wait() == Err(ServeError::Shed))
        .count() as u64;
    let s = server.stats();
    assert_identities(&s);
    assert_eq!(s.per_priority[Priority::Critical.index()].shed, 0);
    assert_eq!(s.shed, shed_seen);
    assert!(
        s.shed > 0,
        "the storm must actually shed lower-priority work"
    );
    assert_eq!(
        s.per_priority[Priority::Bulk.index()].shed
            + s.per_priority[Priority::Standard.index()].shed,
        s.shed
    );
}

#[test]
fn drain_returns_only_after_all_admitted_requests_resolve() {
    let server = Server::simulated(
        ServeConfig {
            queue_capacity: 256,
            ..Default::default()
        },
        vec![ArrayFaultPlan::None; 3],
    );
    let tickets: Vec<_> = (0..48)
        .map(|s| server.submit(request(s)).unwrap())
        .collect();
    server.drain();
    // Every admitted request must already be resolved — no blocking wait.
    for t in &tickets {
        assert!(
            t.try_get().is_some(),
            "drain returned with request {} still unresolved",
            t.id()
        );
    }
    let st = server.stats();
    assert_eq!(st.completed, 48);
    assert_eq!(st.failed, 0);
}

#[test]
fn deadline_missed_requests_never_occupy_an_array() {
    // Zero-budget requests expire while queued; the dispatcher must
    // resolve them without ever running the GEMM, so no array sees any
    // user work (zero completions, zero modelled busy time).
    let server = Server::simulated(ServeConfig::default(), vec![ArrayFaultPlan::None; 2]);
    let tickets: Vec<_> = (0..16)
        .map(|s| {
            server
                .submit(ServeRequest::with_budget(
                    seeded(16, 16, s),
                    seeded(16, 16, s ^ 99),
                    Duration::ZERO,
                ))
                .unwrap()
        })
        .collect();
    server.drain();
    for t in &tickets {
        assert_eq!(t.wait(), Err(ServeError::DeadlineExceeded));
    }
    let st = server.stats();
    assert_eq!(st.deadline_missed, 16);
    assert_eq!(st.completed, 0);
    for (i, a) in st.per_array.iter().enumerate() {
        assert_eq!(a.completed, 0, "array {i} completed an expired request");
        assert_eq!(
            a.modelled_busy_s, 0.0,
            "array {i} burned time on expired requests"
        );
    }
}

#[test]
fn generous_deadlines_complete_and_count_nothing_missed() {
    let server = Server::simulated(ServeConfig::default(), vec![ArrayFaultPlan::None; 2]);
    let tickets: Vec<_> = (0..8)
        .map(|s| {
            server
                .submit(ServeRequest::with_budget(
                    seeded(16, 16, s),
                    seeded(16, 16, s ^ 7),
                    Duration::from_secs(30),
                ))
                .unwrap()
        })
        .collect();
    for t in &tickets {
        assert!(t.wait().is_ok());
    }
    assert_eq!(server.stats().deadline_missed, 0);
}

/// Aggressive health policy so the quarantine cycle runs in test time.
fn fast_health() -> HealthPolicy {
    HealthPolicy {
        degrade_strikes: 1,
        quarantine_strikes: 2,
        clean_streak: 4,
        probe_interval: Duration::from_millis(5),
        probe_interval_cap: Duration::from_millis(40),
        probes_to_readmit: 2,
    }
}

fn wait_for_health(server: &Server, array: usize, want: ArrayHealth, timeout: Duration) -> bool {
    let gate = Instant::now() + timeout;
    while Instant::now() < gate {
        if server.stats().per_array[array].health == want {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

#[test]
fn quarantine_probe_readmit_restores_full_throughput() {
    let (plan, heal) = ArrayFaultPlan::latched();
    let cfg = ServeConfig {
        queue_capacity: 256,
        health: fast_health(),
        ..Default::default()
    };
    let server = Server::simulated(cfg, vec![ArrayFaultPlan::None, plan]);

    // Phase 1: a storm under the fault. Every response must still carry
    // the fault-free reference bits (suspect executions are discarded,
    // retried on the clean array).
    let tickets: Vec<_> = (0..32)
        .map(|s| (s, server.submit(request(s)).unwrap()))
        .collect();
    server.drain();
    for (s, t) in &tickets {
        let resp = t.wait().expect("request survives a faulty array");
        assert!(
            bits_eq(&resp.out, &reference(*s)),
            "wrong bits in a completed response"
        );
        assert_eq!(resp.array, 0, "only the clean array may answer");
    }
    assert!(
        wait_for_health(&server, 1, ArrayHealth::Quarantined, Duration::from_secs(5))
            || server.stats().per_array[1].health == ArrayHealth::Probing,
        "latched faults must drive the array into quarantine"
    );
    let st = server.stats();
    assert!(st.retries > 0, "faulted executions must be retried");
    assert!(st.per_array[1].faulted_executions >= 2);
    assert_eq!(
        st.per_array[1].completed, 0,
        "a latched-faulty array must never complete a request"
    );

    // While latched, probes keep failing: the array stays out.
    std::thread::sleep(Duration::from_millis(60));
    let st = server.stats();
    assert!(st.per_array[1].probes_run > 0, "quarantine must probe");
    assert_eq!(st.per_array[1].probes_passed, 0);
    assert!(!st.per_array[1].health.serves());

    // Phase 2: repair the defect; consecutive probe passes re-admit.
    heal.store(false, Ordering::Relaxed);
    assert!(
        wait_for_health(&server, 1, ArrayHealth::Healthy, Duration::from_secs(5)),
        "healed array must be re-admitted by passing probes"
    );
    let readmitted = server.stats();
    assert!(readmitted.per_array[1].probes_passed >= 2);

    // Full throughput restored: both arrays complete fresh work.
    let before: Vec<u64> = readmitted.per_array.iter().map(|a| a.completed).collect();
    let tickets: Vec<_> = (100..164)
        .map(|s| (s, server.submit(request(s)).unwrap()))
        .collect();
    server.drain();
    for (s, t) in &tickets {
        let resp = t.wait().expect("healthy fleet completes everything");
        assert!(bits_eq(&resp.out, &reference(*s)));
    }
    let after = server.stats();
    for (i, b) in before.iter().enumerate() {
        assert!(
            after.per_array[i].completed > *b,
            "array {i} must share the load after re-admission"
        );
    }
    // The health history tells the whole round trip.
    let hist = &after.per_array[1].history;
    assert!(hist
        .iter()
        .any(|e| e.to == ArrayHealth::Quarantined));
    assert!(hist
        .iter()
        .any(|e| e.from == ArrayHealth::Probing && e.to == ArrayHealth::Healthy));
}

#[test]
fn transient_burst_degrades_without_quarantine_loss() {
    // A short burst strikes the array but clean executions forgive it:
    // the request stream never sees an error.
    let cfg = ServeConfig {
        queue_capacity: 256,
        health: fast_health(),
        ..Default::default()
    };
    let server = Server::simulated(
        cfg,
        vec![ArrayFaultPlan::None, ArrayFaultPlan::transient(1)],
    );
    let tickets: Vec<_> = (0..32)
        .map(|s| (s, server.submit(request(s)).unwrap()))
        .collect();
    server.drain();
    for (s, t) in &tickets {
        let resp = t.wait().expect("transient faults are absorbed");
        assert!(bits_eq(&resp.out, &reference(*s)));
    }
    let st = server.stats();
    assert_eq!(st.completed, 32);
    assert!(st.degraded_executions <= 1);
}
