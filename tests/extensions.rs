//! Integration tests for the beyond-the-paper extensions (DESIGN.md's
//! extension inventory): each one exercised across crate boundaries.

use bfp_arith::matrix::MatF32;
use bfp_arith::quant::Quantizer;
use bfp_arith::stats::ErrorStats;
use bfp_core::{lower_vit, schedule, Accelerator};
use bfp_platform::{bfp8_pass_intensity, fp32_stream_intensity, Roofline, System};
use bfp_pu::trace::trace_pass;
use bfp_transformer::{
    DeitConfig, DeitModel, Image, Int8Engine, MixedEngine, RefEngine, VitConfig, VitModel,
};

#[test]
fn full_deit_pipeline_on_the_accelerator() {
    // image -> patches -> bfp8 GEMMs -> VPU non-linearities -> logits.
    let cfg = DeitConfig::tiny_test();
    let model = DeitModel::new_random(cfg, 5);
    let img = Image::synthetic(3, cfg.img, cfg.img, 2);
    let mut mixed = MixedEngine::new();
    let logits = model.forward(&mut mixed, &img);
    assert_eq!(logits.len(), cfg.classes);
    let census = mixed.take_census();
    assert!(census.matmul_macs > 0);
    assert!(
        census.softmax.host_div > 0,
        "prototype softmax divides on the host"
    );
}

#[test]
fn three_engines_rank_as_the_paper_argues() {
    // fp32 reference > bfp8 mixed ≈ close; per-tensor int8 trails on
    // outlier-heavy models.
    let mut model = VitModel::new_random(VitConfig::tiny_test(), 13);
    for blk in &mut model.blocks {
        for i in 0..blk.fc1.w.rows() {
            for j in (0..blk.fc1.w.cols()).step_by(17) {
                let v = blk.fc1.w.get(i, j);
                blk.fc1.w.set(i, j, v * 24.0);
            }
        }
    }
    let x = model.synthetic_input(3);
    let want = model.forward(&mut RefEngine, &x);
    let sqnr = |got: &MatF32| {
        let mut s = ErrorStats::new();
        s.push_slices(got.data(), want.data());
        s.sqnr_db()
    };
    let bfp = sqnr(&model.forward(&mut MixedEngine::new(), &x));
    let int8 = sqnr(&model.forward(&mut Int8Engine::new(), &x));
    assert!(bfp > int8, "bfp8 {bfp:.1} dB vs int8 {int8:.1} dB");
}

#[test]
fn host_free_inference_through_the_accelerator_stack() {
    let model = VitModel::new_random(VitConfig::tiny_test(), 8);
    let x = model.synthetic_input(1);
    let mut chip = MixedEngine::host_free();
    let _ = model.forward(&mut chip, &x);
    assert_eq!(chip.take_census().host_ops(), 0);
}

#[test]
fn requantized_chain_matches_reference_shape() {
    // (A·B)·C with the on-chip requantizer between layers.
    let a = MatF32::from_fn(24, 16, |i, j| ((i + j) as f32 * 0.1).sin());
    let b = MatF32::from_fn(16, 24, |i, j| ((i * 2 + j) as f32 * 0.07).cos());
    let c = MatF32::from_fn(24, 8, |i, j| ((i as f32 - j as f32) * 0.05).sin());
    let q = Quantizer::paper();
    let chained = q
        .quantize(&a)
        .unwrap()
        .matmul_requant(&q.quantize(&b).unwrap())
        .matmul(&q.quantize(&c).unwrap());
    let want = a.matmul(&b).matmul(&c);
    let mut s = ErrorStats::new();
    s.push_slices(chained.data(), want.data());
    assert!(s.sqnr_db() > 20.0, "{s}");
}

#[test]
fn roofline_agrees_with_the_memory_model_regime() {
    // The roofline's verdicts (bfp8 compute bound, fp32 memory bound)
    // must match what the calibrated HBM model measures.
    let sys = System::paper();
    let rb = Roofline::bfp8(sys.cfg, sys.freq_hz);
    let rf = Roofline::fp32(sys.cfg, sys.freq_hz);
    // bfp8: measured within 15% of compute peak at Nx=64.
    let bfp_meas = sys.measured_bfp_gops(64) * 1e9;
    assert!(bfp_meas > 0.85 * rb.attainable(bfp8_pass_intensity(64)));
    // fp32: measured well below the compute peak, consistent with a
    // memory-bound mode.
    let fp_meas = sys.measured_fp32_gflops(128) * 1e9;
    assert!(fp_meas < 0.5 * rf.peak_ops_per_sec);
    assert!(fp_meas <= rf.attainable(fp32_stream_intensity()) * 4.0);
}

#[test]
fn trace_outputs_agree_with_the_untraced_pass() {
    use bfp_arith::bfp::BfpBlock;
    use bfp_pu::array::{stream_pass, SystolicArray};
    let x = BfpBlock {
        exp: 0,
        man: [[3; 8]; 8],
    };
    let y = BfpBlock {
        exp: 0,
        man: [[-2; 8]; 8],
    };
    let trace = trace_pass(&y, &y, &[x]);
    let mut arr = SystolicArray::new();
    arr.load_y(&y, &y);
    let (res, cycles) = stream_pass(&mut arr, &[x]);
    assert_eq!(trace.cycles.len() as u64, cycles);
    // Z[i][c] appears at the bottom of column c at cycle i + 7 + c:
    // Z[7][7] lands at cycle 21 (and is overwritten by drain zeros after).
    let want = res[0].0[7][7];
    let got = trace.cycles[21].bottom[7].lane1;
    assert_eq!(got, want);
}

#[test]
fn scheduler_and_batch_latencies_are_consistent() {
    let acc = Accelerator::u280();
    let cfg = DeitConfig::tiny_test();
    let model = DeitModel::new_random(cfg, 77);
    let images: Vec<Image> = (0..4)
        .map(|s| Image::synthetic(3, cfg.img, cfg.img, s))
        .collect();
    let res = acc.infer_batch(&model, &images);
    // The batch module's tile-parallel per-image time is the scheduler's
    // makespan for the same encoder.
    let s = schedule(&lower_vit(&cfg.vit), acc.system());
    let expect = s.seconds(acc.system().freq_hz);
    assert!((res.latency.tile_parallel_image_s - expect).abs() < 1e-12);
}
