//! Cross-crate integration: the same GEMM computed along every path the
//! repository offers must agree bit-for-bit, and the full accelerator
//! pipeline must hold its fidelity and accounting invariants.

use bfp_core::prelude::*;
use bfp_core::{compile_gemm, Accelerator};
use bfp_pu::isa::Interpreter;
use bfp_pu::unit::{grid_from_matrix, Fidelity, UnitConfig};
use bfp_transformer::{Engine, MixedEngine};

fn smooth(rows: usize, cols: usize, phase: f32) -> MatF32 {
    MatF32::from_fn(rows, cols, |i, j| {
        ((i as f32 * 0.19 + j as f32 * 0.41 + phase).sin()) * 1.5
    })
}

/// Every execution path — functional block matmul, single-unit controller,
/// stepped DSP-clock simulation, ISA program, and the 30-array parallel
/// card — produces the *identical* f32 output.
#[test]
fn five_execution_paths_agree_bitwise() {
    let a = smooth(40, 24, 0.0);
    let b = smooth(24, 32, 1.0);
    let q = Quantizer::paper();
    let (qa, qb) = (q.quantize(&a).unwrap(), q.quantize(&b).unwrap());

    // Path 1: functional blocked matmul.
    let p1 = qa.matmul(&qb);

    // Path 2: single processing unit, functional fidelity.
    let mut unit = ProcessingUnit::default();
    let grid = unit.matmul_grid(&grid_from_matrix(&qa), &grid_from_matrix(&qb));
    let p2 = MatF32::from_fn(40, 32, |i, j| {
        let w = &grid[i / 8][j / 8];
        (w.man[i % 8][j % 8] as f64 * (w.exp as f64).exp2()) as f32
    });

    // Path 3: stepped (per-DSP-clock) simulation.
    let mut unit = ProcessingUnit::new(UnitConfig {
        fidelity: Fidelity::Stepped,
        ..Default::default()
    });
    let grid = unit.matmul_grid(&grid_from_matrix(&qa), &grid_from_matrix(&qb));
    let p3 = MatF32::from_fn(40, 32, |i, j| {
        let w = &grid[i / 8][j / 8];
        (w.man[i % 8][j % 8] as f64 * (w.exp as f64).exp2()) as f32
    });

    // Path 4: compiled ISA program through the interpreter.
    let compiled = compile_gemm(&a, &b);
    let mut env = compiled.env.clone();
    let res = Interpreter::new(ProcessingUnit::default()).run(&compiled.program, &mut env);
    let p4 = compiled.assemble(&res.drained);

    // Path 5: the parallel card.
    let (p5, _) = System::paper().matmul_f32(&a, &b);

    assert_eq!(p1, p2, "functional vs unit");
    assert_eq!(p2, p3, "functional vs stepped");
    assert_eq!(p3, p4, "stepped vs compiled ISA");
    assert_eq!(p4, p5, "ISA vs parallel card");
}

#[test]
fn mixed_engine_matmul_equals_unit_matmul() {
    // The transformer engine and the PU controller share one datapath.
    let a = smooth(16, 40, 2.0);
    let b = smooth(40, 16, 3.0);
    let mut engine = MixedEngine::new();
    let from_engine = engine.matmul(&a, &b);

    let q = Quantizer::paper();
    let (qa, qb) = (q.quantize(&a).unwrap(), q.quantize(&b).unwrap());
    assert_eq!(from_engine, qa.matmul(&qb));
}

#[test]
fn accelerator_inference_is_deterministic_and_accounted() {
    let acc = Accelerator::u280();
    let model = VitModel::new_random(VitConfig::tiny_test(), 99);
    let x = model.synthetic_input(5);
    let (out1, rep1) = acc.infer(&model, &x);
    let (out2, rep2) = acc.infer(&model, &x);
    assert_eq!(out1, out2, "simulation must be deterministic");
    assert_eq!(rep1.census, rep2.census);
    // Census cross-checks the analytical model.
    let analytic = bfp_transformer::analytical_census(&model.cfg);
    assert_eq!(rep1.census.matmul_macs, analytic.matmul_macs);
    assert_eq!(rep1.census.softmax, analytic.softmax);
}

#[test]
fn gemm_report_throughput_is_bounded_by_peak() {
    let acc = Accelerator::u280();
    let a = smooth(512, 128, 0.5);
    let b = smooth(128, 256, 1.5);
    let (_, report) = acc.gemm(&a, &b);
    let peak = 30.0 * 76.8; // 30 arrays x Eqn. 7 peak
    assert!(report.gops() > 0.0);
    assert!(
        report.gops() < peak,
        "measured {} must stay under peak {peak}",
        report.gops()
    );
}

#[test]
fn fp32_streams_on_unit_match_vpu_scalars() {
    // The unit's vector mode and the VPU's scalar ops share the multiplier.
    let xs: Vec<f32> = (0..97).map(|k| (k as f32 * 0.21).sin() * 3.0).collect();
    let ys: Vec<f32> = (0..97).map(|k| (k as f32 * 0.17).cos() * 2.0).collect();
    let mut unit = ProcessingUnit::default();
    let stream = unit.fp_mul_stream(&xs, &ys);
    let mut vpu = bfp_transformer::Vpu::new();
    for k in 0..97 {
        assert_eq!(
            stream[k].to_bits(),
            vpu.m(xs[k], ys[k]).to_bits(),
            "element {k}"
        );
    }
}
