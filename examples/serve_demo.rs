//! Fault-storm serving demo: one array of a four-array fleet develops a
//! latched defect mid-service. The runtime quarantines it, keeps
//! answering every request with fault-free bits, and re-admits the
//! array once repair (modelled as clearing the latch) makes its golden
//! probes pass again.
//!
//! ```text
//! cargo run --example serve_demo
//! ```

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use bfp_arith::matrix::MatF32;
use bfp_arith::quant::Quantizer;
use bfp_serve::{ArrayFaultPlan, ArrayHealth, HealthPolicy, ServeConfig, ServeRequest, Server};

const ARRAYS: usize = 4;
const STORM: u64 = 144;

fn seeded(rows: usize, cols: usize, seed: u64) -> MatF32 {
    MatF32::from_fn(rows, cols, |i, j| {
        let mut z = seed
            .wrapping_add((i * cols + j + 1) as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 31;
        (z % 8192) as f32 / 1024.0 - 4.0
    })
}

fn request(seed: u64) -> ServeRequest {
    ServeRequest::new(seeded(32, 32, seed), seeded(32, 32, seed ^ 0x5151))
}

/// Fault-free reference bits for `request(seed)`.
fn reference(seed: u64) -> MatF32 {
    let q = Quantizer::paper();
    q.quantize(&seeded(32, 32, seed))
        .unwrap()
        .try_matmul(&q.quantize(&seeded(32, 32, seed ^ 0x5151)).unwrap())
        .unwrap()
}

fn config() -> ServeConfig {
    ServeConfig {
        queue_capacity: 256,
        health: HealthPolicy {
            degrade_strikes: 1,
            quarantine_strikes: 2,
            clean_streak: 4,
            probe_interval: Duration::from_millis(5),
            probe_interval_cap: Duration::from_millis(40),
            probes_to_readmit: 2,
        },
        ..Default::default()
    }
}

/// Run one storm, asserting every completed response is bit-identical
/// to the fault-free reference. Returns (completed, modelled fleet
/// seconds): the total modelled busy time the storm added, spread over
/// the arrays that were serving — i.e. the time an ideally-balanced
/// fleet of that size needs for the work. Using the modelled clock
/// (not host wall time) keeps the throughput comparison deterministic:
/// it measures capacity lost to quarantine, not OS scheduling noise.
fn storm(server: &Server, base_seed: u64) -> (u64, f64) {
    let busy_before: f64 = server
        .stats()
        .per_array
        .iter()
        .map(|a| a.modelled_busy_s)
        .sum();
    let tickets: Vec<_> = (0..STORM)
        .map(|s| (base_seed + s, server.submit(request(base_seed + s)).unwrap()))
        .collect();
    server.drain();
    let mut completed = 0;
    for (s, t) in &tickets {
        let resp = t.wait().expect("fleet keeps serving through the storm");
        let want = reference(*s);
        assert!(
            resp.out
                .data()
                .iter()
                .zip(want.data())
                .all(|(g, w)| g.to_bits() == w.to_bits()),
            "wrong-bit response for request {s}"
        );
        completed += 1;
    }
    let st = server.stats();
    let added: f64 = st.per_array.iter().map(|a| a.modelled_busy_s).sum::<f64>() - busy_before;
    let fleet_s = added / st.serving_arrays().max(1) as f64;
    (completed, fleet_s)
}

/// Give the worker threads time to start, so the first storm is shared
/// by the whole fleet instead of whoever spawned first.
fn spin_up(server: &Server, warm_seed: u64) {
    std::thread::sleep(Duration::from_millis(50));
    let _ = storm(server, warm_seed);
}

fn main() {
    println!("=== bfp-serve demo: fault storm, quarantine, re-admission ===\n");
    let mut wrong_bit_checked = 0u64;

    // --- Baseline: a clean fleet, for the throughput comparison. ---
    let clean = Server::simulated(config(), vec![ArrayFaultPlan::None; ARRAYS]);
    spin_up(&clean, 10_000);
    let (done, clean_makespan) = storm(&clean, 0);
    wrong_bit_checked += 2 * done;
    let clean_tput = done as f64 / clean_makespan;
    println!(
        "clean fleet   : {done} requests, modelled makespan {:.3} ms, {:.0} req/s (modelled)",
        clean_makespan * 1e3,
        clean_tput
    );

    // --- Same card, array 3 latched-faulty. ---
    let (plan, heal) = ArrayFaultPlan::latched();
    let mut plans = vec![ArrayFaultPlan::None; ARRAYS - 1];
    plans.push(plan);
    let server = Server::simulated(config(), plans);
    std::thread::sleep(Duration::from_millis(50));

    // Keep serving until the strikes drive the faulty array out (every
    // round also bit-checks all of its responses).
    let mut rounds = 0u64;
    while server.stats().per_array[ARRAYS - 1].health.serves() {
        rounds += 1;
        assert!(rounds <= 50, "array never quarantined under latched faults");
        let (done, _) = storm(&server, 1000 + rounds * STORM);
        wrong_bit_checked += done;
    }
    let st = server.stats();
    println!("\nafter {rounds} storm round(s) under the latched fault:\n{st}");
    assert!(
        matches!(
            st.per_array[ARRAYS - 1].health,
            ArrayHealth::Quarantined | ArrayHealth::Probing
        ),
        "the faulty array must be quarantined"
    );
    assert_eq!(
        st.per_array[ARRAYS - 1].completed,
        0,
        "a latched-faulty array must never answer"
    );
    assert_eq!(st.completed, rounds * STORM, "every request must complete");
    assert!(st.retries > 0, "faulted executions must be retried elsewhere");

    // With the bad array drained, the fleet of N-1 may lose at most 1/N
    // of its throughput (small slack for the modelled probe overhead).
    let (done, degraded_makespan) = storm(&server, 20_000);
    wrong_bit_checked += done;
    let degraded_tput = done as f64 / degraded_makespan;
    let floor = clean_tput * (1.0 - 1.0 / ARRAYS as f64) * 0.85;
    assert!(
        degraded_tput >= floor,
        "throughput under quarantine degraded too far: {degraded_tput:.0} < {floor:.0} req/s"
    );
    println!(
        "quarantined   : {done} requests, {:.0} req/s (modelled) — {:.0}% of clean \
         (floor {:.0}%)",
        degraded_tput,
        100.0 * degraded_tput / clean_tput,
        100.0 * floor / clean_tput,
    );

    // --- Repair: clear the latch; golden probes re-admit the array. ---
    heal.store(false, Ordering::Relaxed);
    let gate = Instant::now() + Duration::from_secs(10);
    while server.stats().per_array[ARRAYS - 1].health != ArrayHealth::Healthy {
        assert!(Instant::now() < gate, "re-admission timed out");
        std::thread::sleep(Duration::from_millis(5));
    }
    let st = server.stats();
    println!(
        "\nrepaired: array {} re-admitted after {} probes ({} passed)",
        ARRAYS - 1,
        st.per_array[ARRAYS - 1].probes_run,
        st.per_array[ARRAYS - 1].probes_passed,
    );

    // The healed fleet is back to N arrays, and the repaired array must
    // pick up fresh work again (thread scheduling decides *which* storm
    // hands it a request, so keep serving until it does).
    let before = st.per_array[ARRAYS - 1].completed;
    let (done, healed_makespan) = storm(&server, 30_000);
    wrong_bit_checked += done;
    let healed_tput = done as f64 / healed_makespan;
    let mut rounds = 0u64;
    while server.stats().per_array[ARRAYS - 1].completed == before {
        rounds += 1;
        assert!(rounds <= 50, "re-admitted array never served again");
        let (done, _) = storm(&server, 40_000 + rounds * STORM);
        wrong_bit_checked += done;
    }
    assert!(
        healed_tput >= clean_tput * 0.85,
        "full throughput must return after re-admission"
    );
    println!(
        "healed fleet  : {done} requests, {:.0} req/s (modelled) — {:.0}% of clean",
        healed_tput,
        100.0 * healed_tput / clean_tput
    );
    let after = server.stats();
    println!("\nhealth history of the faulty array:");
    for e in &after.per_array[ARRAYS - 1].history {
        println!("  {e}");
    }
    println!("\nOK: zero wrong-bit responses across {wrong_bit_checked} requests");
}
