//! Inject → detect → retry → degrade, end to end.
//!
//! Installs an uncorrectable two-bit BRAM upset plus a transient PSU
//! flip, runs a DeiT-shaped GEMM through the resilient executor, and
//! prints the resulting `FaultReport`.
//!
//! ```text
//! cargo run --release --features faults --example fault_demo
//! ```

use bfp_arith::matrix::MatF32;
use bfp_core::resilient::RecoveryPolicy;
use bfp_core::Accelerator;
use bfp_faults::{FaultPlan, FaultSpec};
use bfp_pu::unit::Fidelity;

fn main() {
    let (m, k, n) = (197, 384, 64); // one DeiT-Small attention-head projection
    let a = MatF32::from_fn(m, k, |i, j| (((i * 31 + j * 7) % 1024) as f32 / 128.0) - 4.0);
    let b = MatF32::from_fn(k, n, |i, j| (((i * 13 + j * 17) % 1024) as f32 / 128.0) - 4.0);
    let exact = a.matmul(&b);

    // A latched double-bit upset in the operand BRAM word every Y preload
    // reads (SECDED detects it on every access but cannot repair it), and
    // a one-shot flip of a high PSU accumulator bit.
    let plan = FaultPlan::new()
        .with(FaultSpec::BramFlip {
            bram: 0,
            addr: 0,
            bits: vec![3, 7],
        })
        .with(FaultSpec::PsuFlip {
            nth: 0,
            row: 0,
            col: 0,
            bit: 44,
        });

    let _session = bfp_faults::install(plan);
    let acc = Accelerator::u280();
    let policy = RecoveryPolicy {
        fidelity: Fidelity::Stepped,
        ..RecoveryPolicy::default()
    };
    let (out, report) = acc
        .gemm_resilient(&a, &b, &policy)
        .expect("recovery handles every injected fault");

    let worst = out
        .data()
        .iter()
        .zip(exact.data())
        .map(|(x, y)| (x - y).abs())
        .fold(0f32, f32::max);

    println!("{}", report.stats.faults);
    println!(
        "output: {}x{}, worst |error| vs fp32 = {worst:.4} \
         (within the bfp8 quantization envelope)",
        out.rows(),
        out.cols()
    );
    assert!(report.stats.faults.fp32_fallbacks > 0);
}
