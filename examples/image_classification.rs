//! End-to-end image classification on the modelled accelerator: synthetic
//! image → patch embedding (bfp8 GEMM) → DeiT encoder (bfp8 + fp32 VPU) →
//! classifier, comparing the mixed-precision prediction to the fp32
//! reference on a batch of inputs.
//!
//! ```sh
//! cargo run --release --example image_classification
//! ```

use bfp_transformer::{DeitConfig, DeitModel, Image, MixedEngine, RefEngine};

fn main() {
    // A reduced DeiT (96-dim, 4 blocks, 96x96 images) keeps the bit-exact
    // simulation fast while exercising the complete pipeline.
    let cfg = DeitConfig {
        vit: bfp_transformer::VitConfig {
            dim: 96,
            depth: 4,
            heads: 3,
            mlp_ratio: 4,
            seq: 37,
        },
        patch: 16,
        channels: 3,
        img: 96,
        classes: 10,
    };
    cfg.validate().expect("consistent configuration");
    println!(
        "DeiT-style classifier: {} patches + cls, dim {}, {} blocks, {} classes",
        cfg.num_patches(),
        cfg.vit.dim,
        cfg.vit.depth,
        cfg.classes
    );

    let model = DeitModel::new_random(cfg, 1234);
    let batch = 16;
    let mut agree = 0;
    let mut census_total = bfp_transformer::OpCensus::default();

    for seed in 0..batch {
        let img = Image::synthetic(3, cfg.img, cfg.img, seed);
        let want = model.predict(&mut RefEngine, &img);
        let mut mixed = MixedEngine::new();
        let got = model.predict(&mut mixed, &img);
        census_total.merge(&mixed.take_census());
        let mark = if want == got { "ok " } else { "DIFF" };
        println!("  image {seed:2}: fp32 -> class {want:2}, mixed -> class {got:2}  [{mark}]");
        if want == got {
            agree += 1;
        }
    }

    println!("\ntop-1 agreement: {agree}/{batch} (the 'no retraining needed' claim)");
    println!(
        "per-batch census: {:.2} G bfp8 ops, {:.2} M fp32 flops, {:.2} M host divisions",
        census_total.bfp_ops() as f64 / 1e9,
        census_total.fp32_flops() as f64 / 1e6,
        census_total.host_ops() as f64 / 1e6,
    );
    assert!(
        agree as f64 >= batch as f64 * 0.8,
        "mixed precision must track fp32"
    );
}
