//! DeiT inference in mixed precision: run a randomly initialised DeiT
//! encoder through the accelerator's execution model (bfp8 GEMMs + fp32 VPU
//! non-linearities) and print the Table IV-style report.
//!
//! ```sh
//! cargo run --release --example deit_inference          # DeiT-Tiny, executed
//! cargo run --release --example deit_inference -- small # DeiT-Small, executed (slower)
//! ```

use bfp_core::{fmt_si, Accelerator, Table};
use bfp_transformer::{VitConfig, VitModel};

fn main() {
    let variant = std::env::args().nth(1).unwrap_or_else(|| "tiny".into());
    let cfg = match variant.as_str() {
        "small" => VitConfig::deit_small(),
        "tiny" => VitConfig::deit_tiny(),
        other => {
            eprintln!("unknown variant '{other}', expected 'tiny' or 'small'");
            std::process::exit(1);
        }
    };
    println!(
        "DeiT-{variant}: dim {}, depth {}, heads {}, seq {}",
        cfg.dim, cfg.depth, cfg.heads, cfg.seq
    );

    let model = VitModel::new_random(cfg, 2024);
    let input = model.synthetic_input(7);
    let acc = Accelerator::u280();

    println!("running mixed-precision forward pass (bit-exact simulation)...");
    let start = std::time::Instant::now();
    let (_output, report) = acc.infer(&model, &input);
    println!(
        "simulation wall time: {:.1} s\n",
        start.elapsed().as_secs_f64()
    );

    let b = &report.breakdown;
    let mut t = Table::new(
        "Workload split (Table IV shape)",
        &["Partition", "OPs/FLOPs", "Ops %", "Latency ms", "Lat %"],
    );
    for (i, row) in b.rows.iter().enumerate() {
        t.row(&[
            row.name.to_string(),
            fmt_si(row.ops),
            format!("{:.3}", b.ops_percent(i)),
            format!("{:.4}", row.latency_s * 1e3),
            format!("{:.3}", b.latency_percent(i)),
        ]);
    }
    print!("{}", t.render());

    println!(
        "\nfp32 share: {:.2}% of ops, {:.2}% of latency",
        b.fp32_ops_percent(),
        b.fp32_latency_percent()
    );
    println!("host divisions/sqrts: {}", fmt_si(b.host_ops));
    println!(
        "modelled accelerator latency: {:.3} ms",
        b.total_latency_s() * 1e3
    );
    println!("\noutput fidelity vs fp32 reference: {}", report.fidelity);
    println!("(the paper's claim: pre-trained fp32 Transformers deploy without retraining)");
}
