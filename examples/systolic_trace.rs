//! Dump a cycle-by-cycle trace of the systolic array — the textual
//! equivalent of the paper's Fig. 5(a) dataflow illustration: watch the
//! skewed X wavefront enter on the left and completed partial sums emerge
//! from the column bottoms 15 cycles later.
//!
//! ```sh
//! cargo run --release --example systolic_trace
//! ```

use bfp_arith::bfp::BfpBlock;
use bfp_pu::trace::trace_pass;

fn main() {
    // Distinct, readable operands: X counts rows, Y is an identity-ish
    // pattern so the products are easy to eyeball.
    let mut x = BfpBlock::ZERO;
    for i in 0..8 {
        for j in 0..8 {
            x.man[i][j] = (i + 1) as i8;
        }
    }
    let mut y1 = BfpBlock::ZERO;
    let mut y2 = BfpBlock::ZERO;
    for i in 0..8 {
        y1.man[i][i] = 1; // identity: lane1 output = row sums of X pattern
        for j in 0..8 {
            y2.man[i][j] = 2; // all twos: lane2 output = 2 * sum of X column
        }
    }

    let trace = trace_pass(&y1, &y2, &[x]);
    println!("Y-stationary bfp8 pass: one X block through the 8x8 array\n");
    print!("{}", trace.render());

    println!("\nreading the trace:");
    println!("  cycles 0-7  : the skewed X wavefront enters (row r starts at cycle r)");
    println!(
        "  cycle  {}   : first complete output at column 0 (the pipeline fill)",
        trace.first_output_cycle().unwrap()
    );
    println!("  cycles 7-14 : one finished 8-element dot product per column per cycle");
    println!(
        "  total {} cycles = 8 x 1 block + 15 fill (Eqn. 9's denominator)",
        trace.cycles.len()
    );

    // Cross-check one value in front of the user.
    let want: i64 = (0..8).map(|k| x.man[0][k] as i64).sum::<i64>() * 2;
    println!(
        "\nspot check: Z2[0][0] = 2 * sum(X row 0) = {want}; trace shows {}",
        trace.cycles[7].bottom[0].lane2
    );
}
