//! Throughput sweep (the data behind Fig. 7), plus a live parallel GEMM on
//! the 30-array card model to show measured throughput emerging from the
//! cycle counts rather than from the closed-form equations.
//!
//! ```sh
//! cargo run --release --example throughput_sweep
//! ```

use bfp_arith::matrix::MatF32;
use bfp_arith::packed::PackedBfp;
use bfp_arith::quant::Quantizer;
use bfp_core::{packed_matmul, ParallelPolicy, Table};
use bfp_platform::{PowerMode, PowerModel, System};

fn main() {
    let sys = System::paper();

    let mut t = Table::new(
        "bfp8 MatMul: stream length vs throughput (GOPS, 30 arrays)",
        &[
            "N_X",
            "theoretical (Eqn 9)",
            "measured (incl. HBM)",
            "ratio",
        ],
    );
    for nx in [4usize, 8, 16, 32, 48, 64] {
        let theo = sys.theoretical_bfp_gops(nx);
        let meas = sys.measured_bfp_gops(nx);
        t.row(&[
            nx.to_string(),
            format!("{theo:.1}"),
            format!("{meas:.1}"),
            format!("{:.1}%", 100.0 * meas / theo),
        ]);
    }
    print!("{}", t.render());

    let mut t = Table::new(
        "\nfp32 ops: stream length vs throughput (GFLOPS, 30 arrays)",
        &[
            "L_fp",
            "theoretical (Eqn 10)",
            "measured (incl. HBM)",
            "ratio",
        ],
    );
    for l in [4usize, 8, 16, 32, 64, 96, 128] {
        let theo = sys.theoretical_fp32_gflops(l);
        let meas = sys.measured_fp32_gflops(l);
        t.row(&[
            l.to_string(),
            format!("{theo:.2}"),
            format!("{meas:.2}"),
            format!("{:.1}%", 100.0 * meas / theo),
        ]);
    }
    print!("{}", t.render());

    // A real GEMM through the parallel card simulation.
    println!("\nlive parallel GEMM (1024 x 384 x 768) across 30 simulated arrays...");
    let a = MatF32::from_fn(1024, 384, |i, j| ((i + j) as f32 * 0.001).sin());
    let b = MatF32::from_fn(384, 768, |i, j| ((i * 3 + j) as f32 * 0.002).cos());
    let start = std::time::Instant::now();
    let (_, stats) = sys.matmul_f32(&a, &b);
    let host = start.elapsed().as_secs_f64();
    let modelled = stats.seconds(sys.freq_hz);
    println!("  simulation wall time : {host:.2} s");
    println!("  modelled device time : {:.1} us", modelled * 1e6);
    println!(
        "  modelled throughput  : {:.1} GOPS (critical path {} cycles)",
        stats.total_bfp_ops() as f64 / modelled / 1e9,
        stats.critical_cycles() as u64,
    );

    // The same GEMM on the host's fast functional path: naive reference
    // kernel vs the packed (and optionally threaded) kernel. Outputs are
    // bit-identical; only the wall clock moves.
    println!("\nhost functional kernels on the same 1024 x 384 x 768 GEMM:");
    let q = Quantizer::paper();
    let (qa, qb) = (q.quantize(&a).unwrap(), q.quantize(&b).unwrap());
    let start = std::time::Instant::now();
    let naive = qa.try_matmul(&qb).unwrap();
    let naive_s = start.elapsed().as_secs_f64();
    let (pa, pb) = (PackedBfp::pack_lhs(&qa), PackedBfp::pack_rhs(&qb));
    let start = std::time::Instant::now();
    let fast = packed_matmul(&pa, &pb, ParallelPolicy::Auto).unwrap();
    let fast_s = start.elapsed().as_secs_f64();
    assert!(
        naive
            .data()
            .iter()
            .zip(fast.data())
            .all(|(x, y)| x.to_bits() == y.to_bits()),
        "kernels must agree bit-for-bit"
    );
    println!("  naive reference kernel: {:.1} ms", naive_s * 1e3);
    println!(
        "  packed kernel         : {:.1} ms — {:.1}x wall-clock speedup, bit-identical",
        fast_s * 1e3,
        naive_s / fast_s
    );

    // Energy estimates for the two modes.
    let p = PowerModel::default();
    println!("\npower model (illustrative):");
    println!(
        "  bfp8 mode : {:.1} W",
        p.system_power_w(sys.cfg, PowerMode::Bfp8)
    );
    println!(
        "  fp32 mode : {:.1} W (half the columns asleep)",
        p.system_power_w(sys.cfg, PowerMode::Fp32)
    );
    println!(
        "  idle      : {:.1} W",
        p.system_power_w(sys.cfg, PowerMode::Idle)
    );
    println!(
        "  efficiency at the paper's operating point: {:.1} GOPS/W",
        p.gops_per_watt(sys.cfg, PowerMode::Bfp8, sys.measured_bfp_gops(64) * 1e9)
    );
}
