//! Batched inference: latency vs throughput across mapping strategies.
//!
//! ```sh
//! cargo run --release --example batch_throughput
//! ```

use bfp_core::Accelerator;
use bfp_transformer::{DeitConfig, DeitModel, Image, MixedEngine, VitConfig};

fn main() {
    // A small DeiT so the bit-exact simulation of a 32-image batch is quick.
    let cfg = DeitConfig {
        vit: VitConfig {
            dim: 64,
            depth: 3,
            heads: 2,
            mlp_ratio: 4,
            seq: 17,
        },
        patch: 16,
        channels: 3,
        img: 64,
        classes: 10,
    };
    cfg.validate().unwrap();
    let model = DeitModel::new_random(cfg, 7);
    let acc = Accelerator::u280();

    let images: Vec<Image> = (0..32)
        .map(|s| Image::synthetic(3, cfg.img, cfg.img, s))
        .collect();

    println!("classifying a 32-image batch (bit-exact, sharded across threads)...");
    let start = std::time::Instant::now();
    let res = acc.infer_batch(&model, &images);
    println!(
        "simulation wall time: {:.2} s",
        start.elapsed().as_secs_f64()
    );

    let hist = res.predictions.iter().fold([0usize; 10], |mut h, &p| {
        h[p] += 1;
        h
    });
    println!("prediction histogram: {hist:?}");
    println!(
        "batch census: {:.2} G bfp8 ops, {:.1} M fp32 flops\n",
        res.census.bfp_ops() as f64 / 1e9,
        res.census.fp32_flops() as f64 / 1e6
    );

    let l = &res.latency;
    println!("modelled deployment latency ({} arrays):", l.arrays);
    println!(
        "  tile-parallel : {:.3} ms/image, batch {:.3} ms  (lowest latency)",
        l.tile_parallel_image_s * 1e3,
        l.tile_parallel_batch_s * 1e3
    );
    println!(
        "  image-parallel: {:.3} ms/image, batch {:.3} ms  (highest throughput)",
        l.image_parallel_image_s * 1e3,
        l.image_parallel_batch_s * 1e3
    );
    println!(
        "  best for this batch: {} at {:.0} images/s",
        l.best_strategy(),
        l.best_throughput()
    );

    // Host-side execution: the same batch through the functional engine,
    // with the weight-plan cache off (every GEMM re-quantizes and re-packs
    // its weights) and on (each weight matrix is planned once, then reused
    // across all images).
    println!("\nhost execution, weight-plan cache off vs on:");
    let mut naive = MixedEngine::without_weight_cache();
    let start = std::time::Instant::now();
    let cold: Vec<usize> = images.iter().map(|im| model.predict(&mut naive, im)).collect();
    let naive_s = start.elapsed().as_secs_f64();

    let mut cached = MixedEngine::new();
    model.predict(&mut cached, &images[0]); // warm the plans once
    let start = std::time::Instant::now();
    let warm: Vec<usize> = images.iter().map(|im| model.predict(&mut cached, im)).collect();
    let cached_s = start.elapsed().as_secs_f64();

    assert_eq!(cold, warm, "the plan cache must not change predictions");
    let stats = cached.plan_cache_stats();
    println!(
        "  uncached: {:.2} s ({:.1} images/s)",
        naive_s,
        images.len() as f64 / naive_s
    );
    println!(
        "  cached  : {:.2} s ({:.1} images/s) — {:.2}x wall-clock speedup",
        cached_s,
        images.len() as f64 / cached_s,
        naive_s / cached_s
    );
    println!(
        "  plan cache: {} entries, {} hits, {} misses, {:.1} KiB",
        stats.entries,
        stats.hits,
        stats.misses,
        stats.bytes as f64 / 1024.0
    );
}
