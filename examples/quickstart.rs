//! Quickstart: quantize two matrices to bfp8, multiply them on the modelled
//! accelerator, and compare against the f32 reference.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bfp_core::prelude::*;
use bfp_core::Accelerator;

fn main() {
    // A pair of smooth test matrices (stand-ins for an activation and a
    // weight tile).
    let a = MatF32::from_fn(256, 192, |i, j| {
        ((i as f32 * 0.11 + j as f32 * 0.07).sin()) * 2.0
    });
    let b = MatF32::from_fn(192, 128, |i, j| {
        ((i as f32 * 0.05 - j as f32 * 0.13).cos()) * 0.5
    });

    // The paper's deployment: 15 units x 2 arrays on an Alveo U280.
    let acc = Accelerator::u280();
    let (product, report) = acc.gemm(&a, &b);

    // Fidelity against IEEE f32.
    let reference = a.matmul(&b);
    let mut stats = ErrorStats::new();
    stats.push_slices(product.data(), reference.data());

    println!("bfp8 GEMM on the modelled U280");
    println!(
        "  shape              : {}x{} * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    println!("  modelled wall time : {:.3} us", report.seconds * 1e6);
    println!("  achieved throughput: {:.1} GOPS", report.gops());
    println!("  arrays used        : {}", report.stats.per_array.len());
    println!("  fidelity vs f32    : {stats}");
    assert!(
        stats.sqnr_db() > 30.0,
        "bfp8 should stay above 30 dB on smooth data"
    );

    // Quantization round-trip on its own.
    let q = Quantizer::paper();
    let qa = q.quantize(&a).expect("finite input");
    println!(
        "\nquantization only  : {} ({} blocks of 8x8)",
        qa.fidelity(&a),
        qa.grid().0 * qa.grid().1
    );
    println!("\nok: see DESIGN.md for the full experiment index");
}
