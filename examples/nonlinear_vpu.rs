//! The programmable fp32 vector unit in action: softmax, GELU and
//! LayerNorm built from nothing but hardware multiply/add (sliced,
//! truncating) plus host-side division — and a custom non-linearity (SiLU)
//! to demonstrate the run-time programmability the paper argues for.
//!
//! ```sh
//! cargo run --release --example nonlinear_vpu
//! ```

use bfp_arith::matrix::MatF32;
use bfp_transformer::reference;
use bfp_transformer::Vpu;

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

fn main() {
    let mut vpu = Vpu::new();

    // --- softmax -----------------------------------------------------
    let logits: Vec<f32> = (0..197).map(|k| (k as f32 * 0.37).sin() * 6.0).collect();
    let mut hw = logits.clone();
    vpu.softmax_row(&mut hw);
    let mut reference_row = MatF32::from_vec(1, logits.len(), logits.clone());
    reference::softmax_rows(&mut reference_row);
    let c = vpu.take_count();
    println!("softmax over {} logits:", logits.len());
    println!(
        "  max |hw - ref| = {:.2e}",
        max_abs_diff(&hw, reference_row.data())
    );
    println!(
        "  ops: {} hw muls, {} hw adds, {} comparator ops, {} HOST divisions",
        c.fp_mul, c.fp_add, c.cmp, c.host_div
    );

    // --- GELU ----------------------------------------------------------
    let xs: Vec<f32> = (-40..=40).map(|k| k as f32 * 0.1).collect();
    let hw: Vec<f32> = xs.iter().map(|&x| vpu.gelu(x)).collect();
    let rf: Vec<f32> = xs.iter().map(|&x| reference::gelu_tanh(x)).collect();
    let c = vpu.take_count();
    println!("\nGELU over {} points:", xs.len());
    println!("  max |hw - ref| = {:.2e}", max_abs_diff(&hw, &rf));
    println!(
        "  ops: {} hw muls, {} hw adds, {} HOST divisions",
        c.fp_mul, c.fp_add, c.host_div
    );

    // --- LayerNorm -------------------------------------------------------
    let n = 384;
    let gamma = vec![1.0f32; n];
    let beta = vec![0.0f32; n];
    let src: Vec<f32> = (0..n)
        .map(|j| (j as f32 * 0.21).sin() * 3.0 + 1.0)
        .collect();
    let mut hw = src.clone();
    vpu.layernorm_row(&mut hw, &gamma, &beta, 1e-6);
    let mut rf = MatF32::from_vec(1, n, src);
    reference::layernorm_rows(&mut rf, &gamma, &beta, 1e-6);
    let c = vpu.take_count();
    println!("\nLayerNorm over a {n}-wide row:");
    println!("  max |hw - ref| = {:.2e}", max_abs_diff(&hw, rf.data()));
    println!(
        "  ops: {} hw muls, {} hw adds, {} HOST div, {} HOST sqrt",
        c.fp_mul, c.fp_add, c.host_div, c.host_sqrt
    );

    // --- a NEW non-linearity, programmed after "tape-out" ---------------
    // SiLU(x) = x * sigmoid(x) — the paper's motivation: new activations
    // (GLU variants, LLaMA's SiLU) keep appearing, so the unit must be
    // programmable rather than hard-wired.
    let silu = |vpu: &mut Vpu, x: f32| -> f32 {
        let e = vpu.exp(-x);
        let d = vpu.a(e, 1.0);
        let s = vpu.div_host(1.0, d);
        vpu.m(x, s)
    };
    let hw: Vec<f32> = xs.iter().map(|&x| silu(&mut vpu, x)).collect();
    let rf: Vec<f32> = xs.iter().map(|&x| x * (1.0 / (1.0 + (-x).exp()))).collect();
    println!("\nSiLU (programmed post-hoc from the same primitive ops):");
    println!("  max |hw - ref| = {:.2e}", max_abs_diff(&hw, &rf));
    println!("\nok: every value above came off the sliced/truncating datapath models");
}
