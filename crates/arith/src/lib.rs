//! # bfp-arith — bit-accurate low-bitwidth floating-point arithmetic
//!
//! This crate implements the two number systems used by the multi-mode
//! processing unit of *"A Case for Low Bitwidth Floating Point Arithmetic on
//! FPGA for Transformer Based DNN Inference"* (IPDPS-W 2024):
//!
//! * **bfp8** — 8-bit block floating point: an 8×8 block of values shares a
//!   single 8-bit two's-complement exponent while every element carries its
//!   own 8-bit two's-complement mantissa (paper Eqn. 1). Block matrix
//!   multiplication reduces to an int8 exponent addition plus an int8 matrix
//!   multiply (Eqn. 2); block addition aligns mantissas by the exponent
//!   difference (Eqn. 3).
//! * **sliced fp32** — IEEE-754 single precision with the sign fused into a
//!   24-bit signed-magnitude mantissa. Multiplication decomposes the mantissa
//!   into three 8-bit slices and sums nine int8 partial products with shifts
//!   (Eqn. 5); the hardware drops the least-significant partial product to
//!   fit the 8-row systolic array. Addition aligns, adds, and renormalises
//!   (Eqn. 6). Results are truncated, not rounded, as in the paper.
//!
//! Everything here is *functional* (value-level) and bit-exact with respect
//! to the datapaths modelled in `bfp-dsp48` and simulated cycle-by-cycle in
//! `bfp-pu`: the processing-unit simulator cross-checks its outputs against
//! this crate.
//!
//! ## Quick example
//!
//! ```
//! use bfp_arith::{BfpBlock, HwFp32Mul, MulVariant};
//!
//! // Quantize an 8x8 tile to bfp8 and multiply two blocks exactly.
//! let a = [[1.0f32; 8]; 8];
//! let b = [[0.5f32; 8]; 8];
//! let xa = BfpBlock::quantize(&a);
//! let xb = BfpBlock::quantize(&b);
//! let prod = xa.matmul(&xb);
//! assert!((prod.to_f32()[0][0] - 4.0).abs() < 1e-3);
//!
//! // Multiply two fp32 numbers the way the hardware does it.
//! let hw = HwFp32Mul::new(MulVariant::DropLsp);
//! let z = hw.mul(1.5f32, -2.25f32);
//! assert_eq!(z, -3.375);
//! ```

// Index-based loops mirror the paper's (i, j, k) matrix notation and are
// clearer than iterator chains for the hardware datapath descriptions.
#![allow(clippy::needless_range_loop)]

pub mod abft;
pub mod bfp;
pub mod cancel;
pub mod error;
pub mod fpadd;
pub mod guard;
pub mod fpmul;
pub mod halffp;
pub mod int8;
pub mod int8quant;
pub mod lmul;
pub mod matrix;
pub mod packed;
pub mod quant;
pub mod redfp;
pub mod softfp;
pub mod stats;
pub mod telemetry;
pub mod ulp;

pub use abft::{AbftOptions, AbftPacked, AbftReport, TamperFn};
pub use bfp::{BfpBlock, BlockAcc, WideBlock, BLOCK};
pub use cancel::CancelToken;
pub use error::ArithError;
pub use fpadd::{AddVariant, HwFp32Add};
pub use guard::{GuardFlags, SaturationPolicy};
pub use fpmul::{HwFp32Mul, MulVariant, PartialProduct};
pub use int8quant::Int8Tensor;
pub use matrix::MatF32;
pub use packed::{PackSide, PackedBfp};
pub use quant::{BfpMatrix, Quantizer, RoundMode};
pub use redfp::RedFp;
pub use softfp::SoftFp32;
pub use stats::ErrorStats;
pub use ulp::ulp_distance;
