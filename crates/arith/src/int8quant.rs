//! Per-tensor symmetric int8 quantization — the baseline the paper's int8
//! design variant (Fig. 6) would compute, and the scheme whose accuracy
//! shortfalls on Transformers motivate bfp8 in the first place
//! (§I: non-linear layers and outlier-heavy activations "are highly
//! susceptible to quantization error").
//!
//! One scale for the whole tensor means a single outlier crushes the
//! resolution of everything else; bfp8's per-8×8-block exponents localise
//! that damage. The `motivation` reproduction binary quantifies the gap.

use crate::error::ArithError;
use crate::int8::round_i8_rne;
use crate::matrix::MatF32;
use crate::stats::ErrorStats;

/// A per-tensor symmetrically quantized int8 matrix: `value ≈ scale × q`.
#[derive(Debug, Clone)]
pub struct Int8Tensor {
    rows: usize,
    cols: usize,
    /// Dequantization scale (`max|x| / 127`).
    pub scale: f32,
    data: Vec<i8>,
}

impl Int8Tensor {
    /// Quantize with the symmetric per-tensor scheme.
    pub fn quantize(m: &MatF32) -> Result<Int8Tensor, ArithError> {
        let mut max_abs = 0f32;
        for (idx, &v) in m.data().iter().enumerate() {
            if !v.is_finite() {
                return Err(ArithError::NonFinite {
                    at: (idx / m.cols(), idx % m.cols()),
                });
            }
            max_abs = max_abs.max(v.abs());
        }
        let scale = if max_abs == 0.0 { 1.0 } else { max_abs / 127.0 };
        let data = m
            .data()
            .iter()
            .map(|&v| round_i8_rne((v / scale) as f64))
            .collect();
        Ok(Int8Tensor {
            rows: m.rows(),
            cols: m.cols(),
            scale,
            data,
        })
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Quantized element.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> i8 {
        self.data[i * self.cols + j]
    }

    /// Dequantize back to f32.
    pub fn dequantize(&self) -> MatF32 {
        MatF32::from_fn(self.rows, self.cols, |i, j| {
            self.get(i, j) as f32 * self.scale
        })
    }

    /// int8 GEMM with i32 accumulation, rescaled to f32 — what the int8
    /// systolic design computes.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Int8Tensor) -> MatF32 {
        assert_eq!(self.cols, rhs.rows, "matmul inner dimensions");
        let s = self.scale * rhs.scale;
        let mut out = MatF32::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for j in 0..rhs.cols {
                let mut acc = 0i32;
                for k in 0..self.cols {
                    acc += self.get(i, k) as i32 * rhs.get(k, j) as i32;
                }
                out.set(i, j, acc as f32 * s);
            }
        }
        out
    }

    /// Quantization fidelity against the original.
    pub fn fidelity(&self, original: &MatF32) -> ErrorStats {
        let mut s = ErrorStats::new();
        s.push_slices(self.dequantize().data(), original.data());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::Quantizer;

    fn uniform(rows: usize, cols: usize) -> MatF32 {
        MatF32::from_fn(rows, cols, |i, j| ((i * cols + j) % 255) as f32 - 127.0)
    }

    /// A Transformer-like activation: mostly small values, with a few
    /// channels carrying large outliers (the pattern Bondarenko et al.
    /// document). The outliers are *localised*, which is precisely what
    /// per-block exponents exploit and per-tensor scales cannot.
    fn outliers(rows: usize, cols: usize) -> MatF32 {
        MatF32::from_fn(rows, cols, |i, j| {
            let base = ((i * 31 + j * 7) % 89) as f32 / 89.0 - 0.5;
            if i < 8 {
                base * 80.0
            } else {
                base
            }
        })
    }

    #[test]
    fn exact_for_integer_range() {
        let m = uniform(16, 16);
        let q = Int8Tensor::quantize(&m).unwrap();
        assert_eq!(q.dequantize(), m);
    }

    #[test]
    fn matmul_matches_reference_for_exact_inputs() {
        let a = uniform(8, 12);
        let b = uniform(12, 8);
        let (qa, qb) = (
            Int8Tensor::quantize(&a).unwrap(),
            Int8Tensor::quantize(&b).unwrap(),
        );
        let got = qa.matmul(&qb);
        let want = a.matmul(&b);
        for i in 0..8 {
            for j in 0..8 {
                let rel = (got.get(i, j) - want.get(i, j)).abs() / want.get(i, j).abs().max(1.0);
                assert!(
                    rel < 1e-5,
                    "({i},{j}): {} vs {}",
                    got.get(i, j),
                    want.get(i, j)
                );
            }
        }
    }

    #[test]
    fn zero_matrix() {
        let q = Int8Tensor::quantize(&MatF32::zeros(4, 4)).unwrap();
        assert_eq!(q.dequantize(), MatF32::zeros(4, 4));
    }

    #[test]
    fn rejects_non_finite() {
        let mut m = uniform(4, 4);
        m.set(1, 2, f32::NAN);
        assert!(Int8Tensor::quantize(&m).is_err());
    }

    #[test]
    fn outliers_crush_per_tensor_int8_but_not_bfp8() {
        // The paper's motivation, as a test: on outlier-heavy activations
        // per-block bfp8 keeps much more signal than per-tensor int8.
        // Whole-tensor SQNR is dominated by the (well-quantized) outlier
        // energy under both schemes, so the discriminating measurement is
        // fidelity over the *small-valued* region, where per-tensor int8
        // has spent all its resolution on the outliers.
        let m = outliers(64, 64);
        let di = Int8Tensor::quantize(&m).unwrap().dequantize();
        let db = Quantizer::paper().quantize(&m).unwrap().dequantize();
        let mut int8 = crate::stats::ErrorStats::new();
        let mut bfp8 = crate::stats::ErrorStats::new();
        for i in 8..64 {
            for j in 0..64 {
                int8.push(di.get(i, j), m.get(i, j));
                bfp8.push(db.get(i, j), m.get(i, j));
            }
        }
        assert!(
            bfp8.sqnr_db() > int8.sqnr_db() + 20.0,
            "bfp8 {:.1} dB must crush int8 {:.1} dB on the non-outlier region",
            bfp8.sqnr_db(),
            int8.sqnr_db()
        );
    }

    #[test]
    fn smooth_data_is_comparable_for_both() {
        // Without outliers the two schemes are close — int8 is fine for
        // the workloads it was designed for.
        let m = MatF32::from_fn(32, 32, |i, j| ((i + j) as f32 * 0.13).sin());
        let int8 = Int8Tensor::quantize(&m).unwrap().fidelity(&m);
        let bfp8 = Quantizer::paper().quantize(&m).unwrap().fidelity(&m);
        assert!((bfp8.sqnr_db() - int8.sqnr_db()).abs() < 12.0);
    }
}
