//! Algorithm-based fault tolerance (ABFT) for the packed bfp8 fast path.
//!
//! The classic Huang–Abraham scheme augments a matmul `C = A·B` with a
//! checksum row/column: carry `eᵀA` and `B·e` (`e` the all-ones vector)
//! through the multiply and compare against the row/column sums of `C`
//! — O(n²) checking on an O(n³) kernel. The bfp8 datapath complicates
//! this in one way: the exponent-alignment chain **truncates** the wide
//! accumulator element-wise ([`shift_right_trunc`]), and truncation does
//! not commute with summation, so a checksum carried naively through the
//! chain drifts away from the data for perfectly healthy hardware.
//!
//! This module therefore keeps the invariant *exact* (no ULP tolerance
//! anywhere) by checking and resynchronising at every truncation event:
//!
//! * Pack time: each operand tile gets a `b`-entry checksum lane —
//!   column sums of an LHS tile, row sums of an RHS tile (`i16`; at
//!   `b ≤ 16` the sums cannot overflow). Because the lanes are computed
//!   at pack time, later corruption of the stored mantissa plane breaks
//!   the invariant and **is** detected.
//! * Per tile-product step, the checksum products
//!   `cp[j] = Σₖ xc[k]·y[k,j]` and `rp[i] = Σₖ x[i,k]·yc[k]` equal the
//!   column/row sums of the exact integer tile product, so while the
//!   chain stays at one exponent the running sums `chk`/`rchk` track the
//!   accumulator exactly.
//! * At a truncation event the accumulator (or the incoming product) is
//!   verified **before** the shift — full precision, before evidence is
//!   truncated away — then the sums are resynchronised from the
//!   truncated values, which is exact by construction.
//! * After the last step the committed accumulator is verified again, so
//!   drain-path upsets are caught too.
//!
//! On a mismatch, the row×column intersection localizes the fault: one
//! bad row sum `i*` and one bad column sum `j*` with equal deltas is a
//! single corrupted element, repaired algebraically in place
//! (`acc[i*,j*] -= Δ`). Consistent rows with inconsistent columns (or
//! vice versa) means the checksum words themselves took the hit — the
//! data is clean and the sums are resynchronised. Anything else is
//! uncorrectable under the single-fault model and the chain is reported
//! so the caller can retry / fall back (`bfp_core::resilient`).
//!
//! ## Coverage
//!
//! The checksums cover the integer datapath: stored mantissas, tile
//! products, accumulators, the drain path. They are **blind to shared-
//! exponent faults** — a corrupted exponent is used consistently by both
//! the data and the checksum path, so both move together. Exponent
//! storage and alignment are covered by the SECDED/TMR models one rung
//! down the detection ladder (see DESIGN.md "Detection ladder").
//!
//! With the `faults` feature the kernel routes operand/exponent/product/
//! accumulator accesses through the `bfp-faults` hooks whenever a
//! session is installed (one relaxed atomic load per GEMM otherwise), so
//! the same deterministic `FaultPlan`s that drive the cycle simulator
//! drive this kernel. The serving runtime instead scripts *per-array*
//! faults through [`AbftOptions::tamper`], a seam invoked once per
//! output chain between accumulation and the final verify.

use crate::bfp::shift_right_trunc;
use crate::error::ArithError;
use crate::matrix::MatF32;
use crate::packed::{dot_i8, select_tile8, EpilogueCtx, PackedBfp};
use crate::quant::{BfpMatrix, Quantizer};

/// Fused per-tile epilogue for the checked kernel: applied to an output
/// tile at drain time, after the chain's final verify, and **only** when
/// the chain is clean or repaired — an uncorrected chain's bits are
/// suspect and stay raw (the caller discards/retries them anyway).
pub type AbftEpilogue<'a> = &'a mut dyn FnMut(&mut [f32], &EpilogueCtx);

/// Map a packed-plane element to its modelled BRAM site, so fault
/// campaigns can aim at real storage positions: tiles stripe across the
/// 16 mantissa BRAMs, consecutive tiles on one BRAM occupy consecutive
/// `bb`-byte lines. Both operand planes read through the same modelled
/// pool (as on the device, where X and Y buffers share the BRAM stacks).
pub fn plane_site(tile: usize, elem: usize, bb: usize) -> (usize, usize) {
    (tile % 16, (tile / 16) * bb + elem)
}

/// What one checked GEMM (or block-row shard) observed and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AbftReport {
    /// Output chains (bi, bj) that ran to completion.
    pub chains: u64,
    /// Checksum-invariant verifications performed (checkpoints at
    /// truncation events plus the final per-chain check).
    pub checks: u64,
    /// Invariant mismatches observed (corrected or not).
    pub detections: u64,
    /// Single-element faults repaired algebraically in place.
    pub corrected_elements: u64,
    /// Checksum words resynchronised because the data proved clean.
    pub corrected_checksums: u64,
    /// Elements perturbed through [`AbftOptions::tamper`].
    pub tampered: u64,
    /// Chains whose mismatch could not be localized/corrected; their
    /// output is suspect and the caller must retry or fall back.
    pub uncorrected: Vec<(usize, usize)>,
}

impl AbftReport {
    /// No mismatch anywhere: output provably satisfies the invariant.
    pub fn clean(&self) -> bool {
        self.detections == 0 && self.uncorrected.is_empty()
    }

    /// Mismatches repaired in place (elements + checksum resyncs).
    pub fn corrections(&self) -> u64 {
        self.corrected_elements + self.corrected_checksums
    }

    /// Accumulate a shard's report into a whole-GEMM report.
    pub fn merge(&mut self, other: &AbftReport) {
        self.chains += other.chains;
        self.checks += other.checks;
        self.detections += other.detections;
        self.corrected_elements += other.corrected_elements;
        self.corrected_checksums += other.corrected_checksums;
        self.tampered += other.tampered;
        self.uncorrected.extend_from_slice(&other.uncorrected);
    }
}

/// Scripted corruption callback: receives `(bi, bj, acc_tile)` and
/// returns how many elements it perturbed.
pub type TamperFn<'a> = &'a mut dyn FnMut(usize, usize, &mut [i64]) -> u64;

/// Per-call knobs for the checked kernel.
#[derive(Default)]
pub struct AbftOptions<'a> {
    /// `false` skips all checksum maintenance — the unprotected
    /// baseline a chaos campaign measures silent corruption against.
    /// Inverted default via [`AbftOptions::default`]: verification on.
    pub no_verify: bool,
    /// Scripted corruption seam: called once per (bi, bj) chain after
    /// accumulation and before the committed-value verify, receiving the
    /// wide accumulator tile; returns how many elements it perturbed.
    /// This is how the serving runtime models *per-array* faults, which
    /// the process-global hook session cannot express.
    pub tamper: Option<TamperFn<'a>>,
}

impl AbftOptions<'_> {
    /// Verification disabled (baseline / unprotected runs).
    pub fn unverified() -> Self {
        AbftOptions {
            no_verify: true,
            tamper: None,
        }
    }
}

/// A packed operand carrying per-tile checksum lanes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbftPacked {
    packed: PackedBfp,
    /// `csum[tile·b + k] = Σ_idx man[tile·b² + idx·b + k]` — column sums
    /// of an LHS tile, row sums of a (block-transposed) RHS tile. `i16`
    /// cannot overflow for `b ≤ 256`.
    csum: Vec<i16>,
}

impl AbftPacked {
    /// Wrap an already-packed operand, computing its checksum lanes.
    pub fn from_packed(packed: PackedBfp) -> AbftPacked {
        let b = packed.block();
        let bb = b * b;
        let man = packed.man_plane();
        let tiles = man.len() / bb;
        let mut csum = vec![0i16; tiles * b];
        for t in 0..tiles {
            let tile = &man[t * bb..][..bb];
            let lane = &mut csum[t * b..][..b];
            for idx in 0..b {
                for k in 0..b {
                    lane[k] += tile[idx * b + k] as i16;
                }
            }
        }
        AbftPacked { packed, csum }
    }

    /// Pack a quantized matrix as a checksummed left operand.
    pub fn pack_lhs(m: &BfpMatrix) -> AbftPacked {
        Self::from_packed(PackedBfp::pack_lhs(m))
    }

    /// Pack a quantized matrix as a checksummed right operand.
    pub fn pack_rhs(m: &BfpMatrix) -> AbftPacked {
        Self::from_packed(PackedBfp::pack_rhs(m))
    }

    /// Fused quantize-pack-checksum for the left operand.
    pub fn quantize_pack_lhs(q: &Quantizer, m: &MatF32) -> Result<AbftPacked, ArithError> {
        Ok(Self::from_packed(PackedBfp::quantize_pack_lhs(q, m)?))
    }

    /// Fused quantize-pack-checksum for the right operand.
    pub fn quantize_pack_rhs(q: &Quantizer, m: &MatF32) -> Result<AbftPacked, ArithError> {
        Ok(Self::from_packed(PackedBfp::quantize_pack_rhs(q, m)?))
    }

    /// The underlying packed operand.
    pub fn packed(&self) -> &PackedBfp {
        &self.packed
    }

    /// Extra storage the checksum lanes cost, in bytes (2/b of the
    /// mantissa plane).
    pub fn checksum_bytes(&self) -> usize {
        self.csum.len() * 2
    }

    /// Checked GEMM with default options (verification on, no tamper).
    pub fn matmul(&self, rhs: &AbftPacked) -> Result<(MatF32, AbftReport), ArithError> {
        self.matmul_with(rhs, &mut AbftOptions::default())
    }

    /// Checked GEMM: bit-identical to [`PackedBfp::matmul`] on healthy
    /// hardware, with the checksum invariant enforced per output chain.
    pub fn matmul_with(
        &self,
        rhs: &AbftPacked,
        opts: &mut AbftOptions,
    ) -> Result<(MatF32, AbftReport), ArithError> {
        self.packed.check_compatible(&rhs.packed)?;
        let mut out = MatF32::zeros(self.packed.rows(), rhs.packed.cols());
        let (mb, _) = self.packed.grid();
        let report = self.matmul_rows_into(rhs, 0, mb, out.data_mut(), opts);
        Ok((out, report))
    }

    /// Checked GEMM with a fused per-tile epilogue applied while the
    /// drained tile is hot (see [`AbftEpilogue`]). For verified-clean
    /// chains the epilogue sees exactly the bits [`AbftPacked::matmul_with`]
    /// would have written, so an element-wise epilogue (bias, GELU) is
    /// bit-identical to running the same pass over the materialised
    /// output; uncorrected chains bypass it and keep their raw bits.
    /// `K = 0` chains run the epilogue over their zero tile, matching the
    /// composed path's pass over the zero region.
    pub fn matmul_with_epilogue(
        &self,
        rhs: &AbftPacked,
        opts: &mut AbftOptions,
        epi: AbftEpilogue,
    ) -> Result<(MatF32, AbftReport), ArithError> {
        self.packed.check_compatible(&rhs.packed)?;
        let b = self.packed.block();
        let mut out = MatF32::zeros(self.packed.rows(), rhs.packed.cols());
        let (mb, _) = self.packed.grid();
        let mut report = AbftReport::default();
        let mut epi = Some(epi);
        if b == 8 {
            self.rows_checked_b8(rhs, 0, mb, out.data_mut(), opts, &mut report, &mut epi);
        } else {
            self.rows_checked_generic(rhs, 0, mb, out.data_mut(), opts, &mut report, &mut epi);
        }
        Ok((out, report))
    }

    /// Compute output block-rows `bi_lo..bi_hi` into `out_rows` (same
    /// contract as [`PackedBfp::matmul_rows_into`]) under the checksum
    /// invariant. Callers shard retries at this granularity.
    ///
    /// # Panics
    /// Panics on inconsistent range/buffer; validate operands first with
    /// [`PackedBfp::check_compatible`].
    pub fn matmul_rows_into(
        &self,
        rhs: &AbftPacked,
        bi_lo: usize,
        bi_hi: usize,
        out_rows: &mut [f32],
        opts: &mut AbftOptions,
    ) -> AbftReport {
        let b = self.packed.block();
        debug_assert!(self.packed.check_compatible(&rhs.packed).is_ok());
        let (mb, _) = self.packed.grid();
        assert!(bi_lo <= bi_hi && bi_hi <= mb, "block-row range");
        let r0 = bi_lo * b;
        let rows_here = (bi_hi * b).min(self.packed.rows()).saturating_sub(r0);
        assert_eq!(
            out_rows.len(),
            rows_here * rhs.packed.cols(),
            "output shard must cover its block rows exactly"
        );
        let mut report = AbftReport::default();
        if b == 8 {
            self.rows_checked_b8(rhs, bi_lo, bi_hi, out_rows, opts, &mut report, &mut None);
        } else {
            self.rows_checked_generic(rhs, bi_lo, bi_hi, out_rows, opts, &mut report, &mut None);
        }
        report
    }

    /// The paper-shaped `b == 8` checked kernel: fixed-size tiles, the
    /// runtime-dispatched 8×8 product micro-kernel, checksum maintenance
    /// as documented at module level.
    #[allow(clippy::too_many_arguments)]
    fn rows_checked_b8(
        &self,
        rhs: &AbftPacked,
        bi_lo: usize,
        bi_hi: usize,
        out_rows: &mut [f32],
        opts: &mut AbftOptions,
        report: &mut AbftReport,
        epi: &mut Option<AbftEpilogue>,
    ) {
        const B: usize = 8;
        const BB: usize = 64;
        let mut etile = [0f32; BB];
        let tile8 = select_tile8();
        let verify = !opts.no_verify;
        let inject = injecting();
        let r0 = bi_lo * B;
        let out_cols = rhs.packed.cols();
        let (_, kb) = self.packed.grid();
        let (_, nb) = rhs.packed.grid();
        let (xman, xexp) = (self.packed.man_plane(), self.packed.exp_plane());
        let (yman, yexp) = (rhs.packed.man_plane(), rhs.packed.exp_plane());
        let mut prod = [0i32; BB];
        let mut prod64 = [0i64; BB];
        let mut acc = [0i64; BB];
        let mut chk = [0i64; B];
        let mut rchk = [0i64; B];
        let mut cp = [0i64; B];
        let mut rp = [0i64; B];
        let mut xbuf = [0i8; BB];
        let mut ybuf = [0i8; BB];
        for bi in bi_lo..bi_hi {
            let imax = B.min(self.packed.rows() - bi * B);
            for bj in 0..nb {
                let jmax = B.min(rhs.packed.cols() - bj * B);
                let mut acc_exp = 0i32;
                let mut first = true;
                // Set once a mismatch defeats localization; checksum
                // maintenance stops (the chain is already condemned).
                let mut dirty = false;
                for bk in 0..kb {
                    let xt = bi * kb + bk;
                    let yt = bk * nb + bj;
                    let x: &[i8; BB] = tile_src(xman, xt, BB, inject, &mut xbuf)
                        .try_into()
                        .unwrap();
                    let y: &[i8; BB] = tile_src(yman, yt, BB, inject, &mut ybuf)
                        .try_into()
                        .unwrap();
                    let pexp = exp_src(xexp, xt, inject) as i32 + exp_src(yexp, yt, inject) as i32;
                    tile8(x, y, &mut prod);
                    if inject {
                        for t in 0..BB {
                            prod64[t] = commit_prod(prod[t] as i64);
                        }
                    } else {
                        for t in 0..BB {
                            prod64[t] = prod[t] as i64;
                        }
                    }
                    if verify && !dirty {
                        // Checksum products of the exact integer tile
                        // product, from the pack-time lanes. i32 is
                        // ample: |cp| ≤ 8·(8·127)·127 < 2^21.
                        let xc = &self.csum[xt * B..][..B];
                        let yc = &rhs.csum[yt * B..][..B];
                        for j in 0..B {
                            let yr = &y[j * B..][..B];
                            let mut s = 0i32;
                            for k in 0..B {
                                s += xc[k] as i32 * yr[k] as i32;
                            }
                            cp[j] = s as i64;
                        }
                        for i in 0..B {
                            let xr = &x[i * B..][..B];
                            let mut s = 0i32;
                            for k in 0..B {
                                s += xr[k] as i32 * yc[k] as i32;
                            }
                            rp[i] = s as i64;
                        }
                    }
                    if first {
                        first = false;
                        acc_exp = pexp;
                        acc = prod64;
                        if verify {
                            chk = cp;
                            rchk = rp;
                        }
                    } else if pexp >= acc_exp {
                        let sh = (pexp - acc_exp) as u32;
                        acc_exp = pexp;
                        if sh == 0 {
                            for t in 0..BB {
                                acc[t] += prod64[t];
                            }
                            if verify && !dirty {
                                for j in 0..B {
                                    chk[j] += cp[j];
                                    rchk[j] += rp[j];
                                }
                            }
                        } else if verify && !dirty {
                            // Truncation event: checkpoint-verify the
                            // accumulator at full precision, truncate,
                            // resync the sums exactly, then fold in the
                            // new product.
                            if !verify_correct(&mut acc, B, &mut chk, &mut rchk, report) {
                                dirty = true;
                            }
                            for t in 0..BB {
                                acc[t] = shift_right_trunc(acc[t], sh);
                            }
                            if !dirty {
                                sums_of(&acc, B, &mut rchk, &mut chk);
                            }
                            for t in 0..BB {
                                acc[t] += prod64[t];
                            }
                            if !dirty {
                                for j in 0..B {
                                    chk[j] += cp[j];
                                    rchk[j] += rp[j];
                                }
                            }
                        } else {
                            for t in 0..BB {
                                acc[t] = shift_right_trunc(acc[t], sh) + prod64[t];
                            }
                        }
                    } else {
                        let sh = (acc_exp - pexp) as u32;
                        if verify && !dirty {
                            // The incoming product is about to lose
                            // bits: verify it first (its sums are cp/rp
                            // exactly), then accumulate the truncated
                            // values and their exact sums.
                            if !verify_correct(&mut prod64, B, &mut cp, &mut rp, report) {
                                dirty = true;
                                for t in 0..BB {
                                    acc[t] += shift_right_trunc(prod64[t], sh);
                                }
                            } else {
                                for i in 0..B {
                                    for j in 0..B {
                                        let tp = shift_right_trunc(prod64[i * B + j], sh);
                                        acc[i * B + j] += tp;
                                        chk[j] += tp;
                                        rchk[i] += tp;
                                    }
                                }
                            }
                        } else {
                            for t in 0..BB {
                                acc[t] += shift_right_trunc(prod64[t], sh);
                            }
                        }
                    }
                }
                let ctx = EpilogueCtx {
                    r0: bi * B,
                    c0: bj * B,
                    imax,
                    jmax,
                    b: B,
                };
                if first {
                    // K = 0: the reference kernel leaves zeros; a fused
                    // epilogue still runs over the zero tile, as the
                    // composed path's element pass covers the zero region.
                    if let Some(e) = epi.as_mut() {
                        for i in 0..imax {
                            etile[i * B..][..jmax].fill(0.0);
                        }
                        e(&mut etile, &ctx);
                        for i in 0..imax {
                            out_rows[(bi * B + i - r0) * out_cols + bj * B..][..jmax]
                                .copy_from_slice(&etile[i * B..][..jmax]);
                        }
                    } else {
                        for i in 0..imax {
                            out_rows[(bi * B + i - r0) * out_cols + bj * B..][..jmax].fill(0.0);
                        }
                    }
                    continue;
                }
                report.chains += 1;
                if let Some(t) = opts.tamper.as_mut() {
                    report.tampered += t(bi, bj, &mut acc);
                }
                if inject {
                    for i in 0..B {
                        for j in 0..B {
                            acc[i * B + j] = commit_acc(i, j, acc[i * B + j]);
                        }
                    }
                }
                let mut chain_ok = true;
                if verify {
                    chain_ok = !dirty && verify_correct(&mut acc, B, &mut chk, &mut rchk, report);
                    if !chain_ok {
                        report.uncorrected.push((bi, bj));
                    }
                }
                let scale = (acc_exp as f64).exp2();
                match epi.as_mut() {
                    Some(e) if chain_ok => {
                        for i in 0..imax {
                            let ar = &acc[i * B..][..B];
                            let tr = &mut etile[i * B..][..jmax];
                            for (o, &a) in tr.iter_mut().zip(ar.iter()) {
                                *o = (a as f64 * scale) as f32;
                            }
                        }
                        e(&mut etile, &ctx);
                        for i in 0..imax {
                            out_rows[(bi * B + i - r0) * out_cols + bj * B..][..jmax]
                                .copy_from_slice(&etile[i * B..][..jmax]);
                        }
                    }
                    _ => {
                        for i in 0..imax {
                            let ar = &acc[i * B..][..B];
                            let dst =
                                &mut out_rows[(bi * B + i - r0) * out_cols + bj * B..][..jmax];
                            for (o, &a) in dst.iter_mut().zip(ar.iter()) {
                                *o = (a as f64 * scale) as f32;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Generic-block checked kernel (slices and heap scratch); same
    /// invariant, used for `b != 8`.
    #[allow(clippy::too_many_arguments)]
    fn rows_checked_generic(
        &self,
        rhs: &AbftPacked,
        bi_lo: usize,
        bi_hi: usize,
        out_rows: &mut [f32],
        opts: &mut AbftOptions,
        report: &mut AbftReport,
        epi: &mut Option<AbftEpilogue>,
    ) {
        let b = self.packed.block();
        let bb = b * b;
        let mut etile = vec![0f32; bb];
        let verify = !opts.no_verify;
        let inject = injecting();
        let r0 = bi_lo * b;
        let out_cols = rhs.packed.cols();
        let (_, kb) = self.packed.grid();
        let (_, nb) = rhs.packed.grid();
        let (xman, xexp) = (self.packed.man_plane(), self.packed.exp_plane());
        let (yman, yexp) = (rhs.packed.man_plane(), rhs.packed.exp_plane());
        let mut prod64 = vec![0i64; bb];
        let mut acc = vec![0i64; bb];
        let mut chk = vec![0i64; b];
        let mut rchk = vec![0i64; b];
        let mut cp = vec![0i64; b];
        let mut rp = vec![0i64; b];
        let mut xbuf = vec![0i8; bb];
        let mut ybuf = vec![0i8; bb];
        for bi in bi_lo..bi_hi {
            let imax = b.min(self.packed.rows() - bi * b);
            for bj in 0..nb {
                let jmax = b.min(rhs.packed.cols() - bj * b);
                let mut acc_exp = 0i32;
                let mut first = true;
                let mut dirty = false;
                for bk in 0..kb {
                    let xt = bi * kb + bk;
                    let yt = bk * nb + bj;
                    let x = tile_src(xman, xt, bb, inject, &mut xbuf);
                    let y = tile_src(yman, yt, bb, inject, &mut ybuf);
                    let pexp = exp_src(xexp, xt, inject) as i32 + exp_src(yexp, yt, inject) as i32;
                    for i in 0..b {
                        let xr = &x[i * b..][..b];
                        for j in 0..b {
                            let p = dot_i8(xr, &y[j * b..][..b]) as i64;
                            prod64[i * b + j] = if inject { commit_prod(p) } else { p };
                        }
                    }
                    if verify && !dirty {
                        let xc = &self.csum[xt * b..][..b];
                        let yc = &rhs.csum[yt * b..][..b];
                        for j in 0..b {
                            let yr = &y[j * b..][..b];
                            let mut s = 0i64;
                            for k in 0..b {
                                s += xc[k] as i64 * yr[k] as i64;
                            }
                            cp[j] = s;
                        }
                        for i in 0..b {
                            let xr = &x[i * b..][..b];
                            let mut s = 0i64;
                            for k in 0..b {
                                s += xr[k] as i64 * yc[k] as i64;
                            }
                            rp[i] = s;
                        }
                    }
                    if first {
                        first = false;
                        acc_exp = pexp;
                        acc.copy_from_slice(&prod64);
                        if verify {
                            chk.copy_from_slice(&cp);
                            rchk.copy_from_slice(&rp);
                        }
                    } else if pexp >= acc_exp {
                        let sh = (pexp - acc_exp) as u32;
                        acc_exp = pexp;
                        if sh == 0 {
                            for t in 0..bb {
                                acc[t] += prod64[t];
                            }
                            if verify && !dirty {
                                for j in 0..b {
                                    chk[j] += cp[j];
                                    rchk[j] += rp[j];
                                }
                            }
                        } else if verify && !dirty {
                            if !verify_correct(&mut acc, b, &mut chk, &mut rchk, report) {
                                dirty = true;
                            }
                            for t in 0..bb {
                                acc[t] = shift_right_trunc(acc[t], sh);
                            }
                            if !dirty {
                                sums_of(&acc, b, &mut rchk, &mut chk);
                            }
                            for t in 0..bb {
                                acc[t] += prod64[t];
                            }
                            if !dirty {
                                for j in 0..b {
                                    chk[j] += cp[j];
                                    rchk[j] += rp[j];
                                }
                            }
                        } else {
                            for t in 0..bb {
                                acc[t] = shift_right_trunc(acc[t], sh) + prod64[t];
                            }
                        }
                    } else {
                        let sh = (acc_exp - pexp) as u32;
                        if verify && !dirty {
                            if !verify_correct(&mut prod64, b, &mut cp, &mut rp, report) {
                                dirty = true;
                                for t in 0..bb {
                                    acc[t] += shift_right_trunc(prod64[t], sh);
                                }
                            } else {
                                for i in 0..b {
                                    for j in 0..b {
                                        let tp = shift_right_trunc(prod64[i * b + j], sh);
                                        acc[i * b + j] += tp;
                                        chk[j] += tp;
                                        rchk[i] += tp;
                                    }
                                }
                            }
                        } else {
                            for t in 0..bb {
                                acc[t] += shift_right_trunc(prod64[t], sh);
                            }
                        }
                    }
                }
                let ctx = EpilogueCtx {
                    r0: bi * b,
                    c0: bj * b,
                    imax,
                    jmax,
                    b,
                };
                if first {
                    if let Some(e) = epi.as_mut() {
                        for i in 0..imax {
                            etile[i * b..][..jmax].fill(0.0);
                        }
                        e(&mut etile, &ctx);
                        for i in 0..imax {
                            out_rows[(bi * b + i - r0) * out_cols + bj * b..][..jmax]
                                .copy_from_slice(&etile[i * b..][..jmax]);
                        }
                    } else {
                        for i in 0..imax {
                            out_rows[(bi * b + i - r0) * out_cols + bj * b..][..jmax].fill(0.0);
                        }
                    }
                    continue;
                }
                report.chains += 1;
                if let Some(t) = opts.tamper.as_mut() {
                    report.tampered += t(bi, bj, &mut acc);
                }
                if inject {
                    for i in 0..b {
                        for j in 0..b {
                            acc[i * b + j] = commit_acc(i, j, acc[i * b + j]);
                        }
                    }
                }
                let mut chain_ok = true;
                if verify {
                    chain_ok = !dirty && verify_correct(&mut acc, b, &mut chk, &mut rchk, report);
                    if !chain_ok {
                        report.uncorrected.push((bi, bj));
                    }
                }
                let scale = (acc_exp as f64).exp2();
                match epi.as_mut() {
                    Some(e) if chain_ok => {
                        for i in 0..imax {
                            let ar = &acc[i * b..][..b];
                            let tr = &mut etile[i * b..][..jmax];
                            for (o, &a) in tr.iter_mut().zip(ar.iter()) {
                                *o = (a as f64 * scale) as f32;
                            }
                        }
                        e(&mut etile, &ctx);
                        for i in 0..imax {
                            out_rows[(bi * b + i - r0) * out_cols + bj * b..][..jmax]
                                .copy_from_slice(&etile[i * b..][..jmax]);
                        }
                    }
                    _ => {
                        for i in 0..imax {
                            let ar = &acc[i * b..][..b];
                            let dst =
                                &mut out_rows[(bi * b + i - r0) * out_cols + bj * b..][..jmax];
                            for (o, &a) in dst.iter_mut().zip(ar.iter()) {
                                *o = (a as f64 * scale) as f32;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Recompute `rows[i] = Σⱼ data[i,j]`, `cols[j] = Σᵢ data[i,j]`.
fn sums_of(data: &[i64], b: usize, rows: &mut [i64], cols: &mut [i64]) {
    rows[..b].fill(0);
    cols[..b].fill(0);
    for i in 0..b {
        let dr = &data[i * b..][..b];
        for (j, &v) in dr.iter().enumerate() {
            rows[i] += v;
            cols[j] += v;
        }
    }
}

/// Verify `chk`/`rchk` against the actual column/row sums of `data`;
/// on mismatch, localize via the row×column intersection and repair.
/// Returns `true` when the invariant holds on exit (possibly after an
/// in-place correction), `false` when the mismatch is uncorrectable
/// under the single-fault model.
fn verify_correct(
    data: &mut [i64],
    b: usize,
    chk: &mut [i64],
    rchk: &mut [i64],
    report: &mut AbftReport,
) -> bool {
    report.checks += 1;
    let mut rows = [0i64; 16];
    let mut cols = [0i64; 16];
    let mut rows_v;
    let mut cols_v;
    let (rows, cols): (&mut [i64], &mut [i64]) = if b <= 16 {
        (&mut rows[..b], &mut cols[..b])
    } else {
        rows_v = vec![0i64; b];
        cols_v = vec![0i64; b];
        (&mut rows_v, &mut cols_v)
    };
    for i in 0..b {
        let dr = &data[i * b..][..b];
        for (j, &v) in dr.iter().enumerate() {
            rows[i] += v;
            cols[j] += v;
        }
    }
    let mut bad_i = None;
    let mut ni = 0usize;
    let mut bad_j = None;
    let mut nj = 0usize;
    for i in 0..b {
        if rows[i] != rchk[i] {
            ni += 1;
            bad_i = Some(i);
        }
        if cols[i] != chk[i] {
            nj += 1;
            bad_j = Some(i);
        }
    }
    if ni == 0 && nj == 0 {
        return true;
    }
    report.detections += 1;
    match (bad_i, bad_j) {
        // One bad row crossing one bad column with equal deltas: a
        // single corrupted element; subtract the delta to repair it.
        (Some(i), Some(j)) if ni == 1 && nj == 1 && rows[i] - rchk[i] == cols[j] - chk[j] => {
            data[i * b + j] -= rows[i] - rchk[i];
            report.corrected_elements += 1;
            true
        }
        // Rows all consistent but columns not (or vice versa): data is
        // vouched for by the clean dimension, so the checksum words
        // themselves took the hit — resynchronise them.
        (None, Some(_)) => {
            chk[..b].copy_from_slice(&cols[..b]);
            report.corrected_checksums += 1;
            true
        }
        (Some(_), None) => {
            rchk[..b].copy_from_slice(&rows[..b]);
            report.corrected_checksums += 1;
            true
        }
        // Multiple intersections or inconsistent deltas: more than one
        // fault landed; not correctable here.
        _ => false,
    }
}

/// Whether a fault-injection session is live (one relaxed load). The
/// per-access hooks below are only consulted when it is.
#[inline(always)]
fn injecting() -> bool {
    #[cfg(feature = "faults")]
    {
        bfp_faults::active()
    }
    #[cfg(not(feature = "faults"))]
    {
        false
    }
}

/// Read a tile out of a mantissa plane, through the modelled operand
/// BRAMs when injecting.
#[inline(always)]
fn tile_src<'a>(
    man: &'a [i8],
    tile: usize,
    bb: usize,
    inject: bool,
    buf: &'a mut [i8],
) -> &'a [i8] {
    #[cfg(feature = "faults")]
    if inject {
        let src = &man[tile * bb..][..bb];
        for (e, (d, &s)) in buf.iter_mut().zip(src).enumerate() {
            let (bram, addr) = plane_site(tile, e, bb);
            *d = bfp_faults::hook::bram_read(bram, addr, s as u8) as i8;
        }
        return &buf[..bb];
    }
    let _ = (inject, buf);
    &man[tile * bb..][..bb]
}

/// Read a tile's shared exponent, through the modelled exponent BRAM
/// when injecting.
#[inline(always)]
fn exp_src(exps: &[i8], tile: usize, inject: bool) -> i8 {
    #[cfg(feature = "faults")]
    if inject {
        return bfp_faults::hook::exp_read(tile, exps[tile] as u8) as i8;
    }
    let _ = inject;
    exps[tile]
}

/// One tile-product element through the DSP48 P-register commit hook.
#[inline(always)]
fn commit_prod(p: i64) -> i64 {
    #[cfg(feature = "faults")]
    {
        bfp_faults::hook::dsp_p_commit(p)
    }
    #[cfg(not(feature = "faults"))]
    {
        p
    }
}

/// One accumulator element through the PSU read hook at drain time.
#[inline(always)]
fn commit_acc(row: usize, col: usize, v: i64) -> i64 {
    #[cfg(feature = "faults")]
    {
        bfp_faults::hook::psu_read(row, col, v)
    }
    #[cfg(not(feature = "faults"))]
    {
        let _ = (row, col);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spiky(rows: usize, cols: usize) -> MatF32 {
        MatF32::from_fn(rows, cols, |i, j| {
            let base = ((i * 31 + j * 7) % 13) as f32 - 6.0;
            match (i / 8 + j / 8) % 3 {
                0 => base * 1024.0,
                1 => base * 0.001,
                _ => base,
            }
        })
    }

    fn assert_bits_eq(a: &MatF32, b: &MatF32) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                assert_eq!(
                    a.get(i, j).to_bits(),
                    b.get(i, j).to_bits(),
                    "({i},{j}): {} vs {}",
                    a.get(i, j),
                    b.get(i, j)
                );
            }
        }
    }

    #[test]
    fn checked_kernel_is_bit_identical_and_clean_when_healthy() {
        let q = Quantizer::paper();
        for (m, k, n) in [(16, 16, 16), (24, 40, 8), (11, 13, 7), (40, 24, 17)] {
            let a = spiky(m, k);
            let b = spiky(k, n);
            let pa = AbftPacked::quantize_pack_lhs(&q, &a).unwrap();
            let pb = AbftPacked::quantize_pack_rhs(&q, &b).unwrap();
            let want = pa.packed().matmul(pb.packed()).unwrap();
            let (got, report) = pa.matmul(&pb).unwrap();
            assert_bits_eq(&got, &want);
            assert!(report.clean(), "{report:?}");
            assert!(report.checks >= report.chains);
        }
    }

    #[test]
    fn generic_block_sizes_hold_the_invariant() {
        for blk in [4usize, 16] {
            let q = Quantizer::with_block(blk);
            let a = spiky(19, 21);
            let b = spiky(21, 10);
            let pa = AbftPacked::quantize_pack_lhs(&q, &a).unwrap();
            let pb = AbftPacked::quantize_pack_rhs(&q, &b).unwrap();
            let want = pa.packed().matmul(pb.packed()).unwrap();
            let (got, report) = pa.matmul(&pb).unwrap();
            assert_bits_eq(&got, &want);
            assert!(report.clean(), "b={blk}: {report:?}");
        }
    }

    #[test]
    fn unverified_mode_matches_packed_kernel_and_skips_checks() {
        let q = Quantizer::paper();
        let a = spiky(24, 32);
        let b = spiky(32, 16);
        let pa = AbftPacked::quantize_pack_lhs(&q, &a).unwrap();
        let pb = AbftPacked::quantize_pack_rhs(&q, &b).unwrap();
        let want = pa.packed().matmul(pb.packed()).unwrap();
        let (got, report) = pa
            .matmul_with(&pb, &mut AbftOptions::unverified())
            .unwrap();
        assert_bits_eq(&got, &want);
        assert_eq!(report.checks, 0);
        assert!(report.clean());
    }

    #[test]
    fn tamper_single_element_is_detected_and_corrected_in_place() {
        let q = Quantizer::paper();
        let a = spiky(16, 32);
        let b = spiky(32, 16);
        let pa = AbftPacked::quantize_pack_lhs(&q, &a).unwrap();
        let pb = AbftPacked::quantize_pack_rhs(&q, &b).unwrap();
        let want = pa.packed().matmul(pb.packed()).unwrap();
        let mut fired = false;
        let mut tamper = |bi: usize, bj: usize, acc: &mut [i64]| -> u64 {
            if bi == 0 && bj == 1 && !fired {
                fired = true;
                acc[27] ^= 1 << 17;
                1
            } else {
                0
            }
        };
        let mut opts = AbftOptions {
            no_verify: false,
            tamper: Some(&mut tamper),
        };
        let (got, report) = pa.matmul_with(&pb, &mut opts).unwrap();
        assert_bits_eq(&got, &want);
        assert_eq!(report.tampered, 1);
        assert_eq!(report.detections, 1);
        assert_eq!(report.corrected_elements, 1);
        assert!(report.uncorrected.is_empty());
    }

    #[test]
    fn tamper_multi_element_is_detected_but_uncorrectable() {
        let q = Quantizer::paper();
        let a = spiky(16, 16);
        let b = spiky(16, 16);
        let pa = AbftPacked::quantize_pack_lhs(&q, &a).unwrap();
        let pb = AbftPacked::quantize_pack_rhs(&q, &b).unwrap();
        let mut tamper = |bi: usize, bj: usize, acc: &mut [i64]| -> u64 {
            if bi == 0 && bj == 0 {
                // Three elements across distinct rows and columns:
                // defeats single-element localization.
                acc[0] += 1 << 12;
                acc[9] += 1 << 13;
                acc[18] += 1 << 14;
                3
            } else {
                0
            }
        };
        let mut opts = AbftOptions {
            no_verify: false,
            tamper: Some(&mut tamper),
        };
        let (_, report) = pa.matmul_with(&pb, &mut opts).unwrap();
        assert_eq!(report.tampered, 3);
        assert!(report.detections > 0);
        assert_eq!(report.corrected_elements, 0);
        assert_eq!(report.uncorrected, vec![(0, 0)]);
    }

    #[test]
    fn corrupted_checksum_words_resync_without_touching_data() {
        let mut report = AbftReport::default();
        let b = 4usize;
        let mut data = vec![3i64; b * b];
        let mut chk = vec![12i64; b];
        let mut rchk = vec![12i64; b];
        // Corrupt two column-checksum words; rows stay consistent.
        chk[1] += 7;
        chk[3] -= 2;
        assert!(verify_correct(&mut data, b, &mut chk, &mut rchk, &mut report));
        assert_eq!(report.corrected_checksums, 1);
        assert_eq!(chk, vec![12i64; b]);
        assert!(data.iter().all(|&v| v == 3));
        // And the symmetric case for the row lane.
        rchk[0] += 1;
        assert!(verify_correct(&mut data, b, &mut chk, &mut rchk, &mut report));
        assert_eq!(report.corrected_checksums, 2);
    }

    #[test]
    fn inconsistent_intersection_is_uncorrectable() {
        let mut report = AbftReport::default();
        let b = 4usize;
        let mut data = vec![1i64; b * b];
        let mut chk = vec![4i64; b];
        let mut rchk = vec![4i64; b];
        // Two corrupted elements in the same row, different columns:
        // one bad row, two bad columns.
        data[1] += 5;
        data[2] += 9;
        assert!(!verify_correct(&mut data, b, &mut chk, &mut rchk, &mut report));
        assert_eq!(report.detections, 1);
        assert_eq!(report.corrections(), 0);
    }

    #[test]
    fn epilogue_on_clean_chains_matches_composed_pass() {
        let q = Quantizer::paper();
        for (m, k, n) in [(16, 32, 16), (11, 13, 7), (40, 24, 17)] {
            let a = spiky(m, k);
            let b = spiky(k, n);
            let pa = AbftPacked::quantize_pack_lhs(&q, &a).unwrap();
            let pb = AbftPacked::quantize_pack_rhs(&q, &b).unwrap();
            let (raw, _) = pa.matmul(&pb).unwrap();
            let want = MatF32::from_fn(raw.rows(), raw.cols(), |i, j| {
                (raw.get(i, j) * 0.25).tanh()
            });
            let mut epi = |tile: &mut [f32], ctx: &EpilogueCtx| {
                for i in 0..ctx.imax {
                    for v in &mut tile[i * ctx.b..][..ctx.jmax] {
                        *v = (*v * 0.25).tanh();
                    }
                }
            };
            let (got, report) = pa
                .matmul_with_epilogue(&pb, &mut AbftOptions::default(), &mut epi)
                .unwrap();
            assert!(report.clean(), "{report:?}");
            assert_bits_eq(&got, &want);
        }
    }

    #[test]
    fn epilogue_skips_uncorrected_chains_and_runs_on_repaired_ones() {
        let q = Quantizer::paper();
        let a = spiky(16, 32);
        let b = spiky(32, 16);
        let pa = AbftPacked::quantize_pack_lhs(&q, &a).unwrap();
        let pb = AbftPacked::quantize_pack_rhs(&q, &b).unwrap();
        let (raw, _) = pa.matmul(&pb).unwrap();
        // Chain (0,0): 3-element smear — uncorrectable, epilogue must not
        // run there. Chain (1,1): single-bit flip — repaired, epilogue
        // sees the corrected bits.
        let mut tamper = |bi: usize, bj: usize, acc: &mut [i64]| -> u64 {
            if (bi, bj) == (0, 0) {
                acc[0] += 1 << 12;
                acc[9] += 1 << 13;
                acc[18] += 1 << 14;
                3
            } else if (bi, bj) == (1, 1) {
                acc[27] ^= 1 << 17;
                1
            } else {
                0
            }
        };
        let mut opts = AbftOptions {
            no_verify: false,
            tamper: Some(&mut tamper),
        };
        let mut applied = 0u64;
        let mut epi = |tile: &mut [f32], ctx: &EpilogueCtx| {
            for i in 0..ctx.imax {
                for v in &mut tile[i * ctx.b..][..ctx.jmax] {
                    *v += 1.0;
                    applied += 1;
                }
            }
        };
        let (got, report) = pa.matmul_with_epilogue(&pb, &mut opts, &mut epi).unwrap();
        assert_eq!(report.uncorrected, vec![(0, 0)]);
        assert_eq!(report.corrected_elements, 1);
        // Epilogue covered every tile except the condemned one.
        assert_eq!(applied, 16 * 16 - 64);
        for i in 0..16 {
            for j in 0..16 {
                if i < 8 && j < 8 {
                    continue; // condemned chain: raw (tampered) bits.
                }
                assert_eq!(
                    got.get(i, j).to_bits(),
                    (raw.get(i, j) + 1.0).to_bits(),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn plane_site_stripes_tiles_across_brams() {
        assert_eq!(plane_site(0, 0, 64), (0, 0));
        assert_eq!(plane_site(5, 63, 64), (5, 63));
        assert_eq!(plane_site(16, 0, 64), (0, 64));
        assert_eq!(plane_site(37, 10, 64), (5, 2 * 64 + 10));
    }

    #[test]
    fn checksum_lanes_cost_a_quarter_of_mantissa_bytes_at_b8() {
        let q = Quantizer::paper();
        let p = AbftPacked::quantize_pack_lhs(&q, &spiky(16, 16)).unwrap();
        // 4 tiles × 8 lanes × 2 bytes = 64 bytes vs 256 mantissas.
        assert_eq!(p.checksum_bytes(), 64);
    }
}
