//! L-Mul: the addition-based approximate floating-point multiplier
//! ("Addition is All You Need"; hardware implementation in "A
//! Power-Efficient Hardware Implementation of L-Mul").
//!
//! For `x = (1 + x_m) · 2^{x_e}` and `y = (1 + y_m) · 2^{y_e}` the exact
//! product mantissa is `1 + x_m + y_m + x_m·y_m`; L-Mul drops the
//! `x_m·y_m` cross term and replaces it with a constant offset `2^{-l(m)}`
//! (its expected value, `l(m) = 4` for mantissas wider than 4 bits):
//!
//! ```text
//! x · y ≈ (1 + x_m + y_m + 2^{-l(m)}) · 2^{x_e + y_e}
//! ```
//!
//! On packed IEEE-754 bit patterns this whole expression is **one integer
//! addition**: adding the exponent|mantissa fields adds the exponents and
//! the mantissa fractions, and a mantissa-field carry lands exactly on the
//! exponent increment the `≥ 2` renormalisation case needs. No partial
//! products, no DSP multiplier — which is why the VPU cost model prices an
//! L-Mul lane like an integer adder (see `bfp-platform`'s nonlinear-unit
//! model).
//!
//! This module is the *numerical* model of that multiplier, used to
//! characterise what the fast nonlinear kernels would lose if their
//! polynomial multiplies ran on L-Mul lanes instead of fp32 DSP lanes.
//! The measured error envelope lives in the tests below: the relative
//! error is bounded by ~2^-3.4 worst-case (the dropped `x_m·y_m` term
//! reaches 1 as both mantissas approach 2), with a near-zero mean.

/// The L-Mul mantissa offset exponent `l(m)` for fp32 (mantissa m = 23:
/// the paper's rule gives `l = 4` for all m > 4).
pub const L_FP32: u32 = 4;

/// The packed-field offset: bias correction plus the `2^{-l}` mantissa
/// offset, applied in one constant. Subtracting one bias (`127 << 23`)
/// re-centres the summed exponents; adding `1 << (23 - L)` injects the
/// expected value of the dropped cross term.
const LMUL_OFFSET: i64 = -(127i64 << 23) + (1i64 << (23 - L_FP32));

/// Approximate `a * b` with the L-Mul integer-addition algorithm.
///
/// Gate conditions mirror a hardware implementation: a zero or subnormal
/// operand flushes to a (signed) zero result, infinities and NaNs
/// propagate, and exponent overflow/underflow of the sum saturates to
/// infinity / flushes to zero. The core path is the single addition
/// `bits(a) + bits(b) + OFFSET` on the magnitude fields with the sign
/// handled by XOR.
pub fn lmul(a: f32, b: f32) -> f32 {
    let sign = (a.to_bits() ^ b.to_bits()) & 0x8000_0000;
    if a.is_nan() || b.is_nan() {
        return f32::NAN;
    }
    let ka = (a.to_bits() & 0x7fff_ffff) as i64;
    let kb = (b.to_bits() & 0x7fff_ffff) as i64;
    let inf = 0x7f80_0000i64;
    if ka >= inf || kb >= inf {
        // inf * 0 is NaN; inf * finite is a signed inf.
        if ka == 0 || kb == 0 {
            return f32::NAN;
        }
        return f32::from_bits(sign | inf as u32);
    }
    // Zero and subnormal operands flush: the adder datapath carries no
    // implicit-one for them, and FTZ matches the rest of the datapath.
    if ka < (1 << 23) || kb < (1 << 23) {
        return f32::from_bits(sign);
    }
    let sum = ka + kb + LMUL_OFFSET;
    if sum >= inf {
        return f32::from_bits(sign | inf as u32);
    }
    if sum < (1 << 23) {
        return f32::from_bits(sign); // exponent underflow: FTZ
    }
    f32::from_bits(sign | sum as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ulp::rel_error;

    #[test]
    fn exact_on_powers_of_two_up_to_offset() {
        // 2^a * 2^b has zero mantissa on both sides; the only deviation is
        // the injected 2^-l offset on the result mantissa.
        let got = lmul(4.0, 8.0);
        let want = 32.0 * (1.0 + (0.5f32).powi(L_FP32 as i32));
        assert_eq!(got, want, "offset lands on the mantissa: {got} vs {want}");
    }

    #[test]
    fn relative_error_is_bounded_and_small_on_average() {
        // Deterministic sweep over mantissa/exponent space. The worst case
        // of the dropped x_m·y_m cross term is bounded by 2^-3.4 ≈ 0.095
        // relative; the mean signed error is near zero by construction of
        // the 2^-l offset.
        let mut max_rel = 0.0f64;
        let mut sum_signed = 0.0f64;
        let mut n = 0u64;
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200_000 {
            let a = f32::from_bits(0x3f80_0000 | (next() as u32 & 0x007f_ffff))
                * (((next() % 17) as i32 - 8) as f32).exp2();
            let b = f32::from_bits(0x3f80_0000 | (next() as u32 & 0x007f_ffff))
                * (((next() % 17) as i32 - 8) as f32).exp2();
            let got = lmul(a, b) as f64;
            let want = a as f64 * b as f64;
            let rel = (got - want) / want;
            max_rel = max_rel.max(rel.abs());
            sum_signed += rel;
            n += 1;
        }
        assert!(max_rel < 0.096, "worst relative error {max_rel}");
        assert!(max_rel > 0.05, "sweep must reach the known worst region");
        let mean = sum_signed / n as f64;
        assert!(mean.abs() < 0.01, "offset keeps the error centred: {mean}");
    }

    #[test]
    fn signs_specials_and_range_edges() {
        assert_eq!(lmul(-3.0, 2.0), -lmul(3.0, 2.0));
        assert_eq!(lmul(-3.0, -2.0), lmul(3.0, 2.0));
        assert_eq!(lmul(0.0, 55.0), 0.0);
        assert!(lmul(0.0, -55.0).is_sign_negative());
        assert_eq!(lmul(f32::INFINITY, 2.0), f32::INFINITY);
        assert_eq!(lmul(f32::NEG_INFINITY, 2.0), f32::NEG_INFINITY);
        assert!(lmul(f32::INFINITY, 0.0).is_nan());
        assert!(lmul(f32::NAN, 1.0).is_nan());
        // Exponent overflow saturates; underflow flushes.
        assert_eq!(lmul(f32::MAX, f32::MAX), f32::INFINITY);
        assert_eq!(lmul(f32::MIN_POSITIVE, f32::MIN_POSITIVE), 0.0);
        // Subnormal operands flush to zero.
        assert_eq!(lmul(f32::from_bits(1), 1.0), 0.0);
    }

    #[test]
    fn tracks_true_product_within_ten_percent_everywhere_normal() {
        for ea in (-20..=20).step_by(5) {
            for eb in (-20..=20).step_by(5) {
                for ma in 0..8u32 {
                    for mb in 0..8u32 {
                        let a = f32::from_bits(0x3f80_0000 | (ma << 20)) * (ea as f32).exp2();
                        let b = f32::from_bits(0x3f80_0000 | (mb << 20)) * (eb as f32).exp2();
                        let rel = rel_error(lmul(a, b), a * b);
                        assert!(rel < 0.096, "lmul({a}, {b}) rel {rel}");
                    }
                }
            }
        }
    }
}
