//! fp32 multiplication built from int8 partial products (paper Eqn. 5).
//!
//! The 24-bit signed-magnitude mantissas of the two operands are split into
//! three unsigned 8-bit slices each. Their product is the sum of nine partial
//! products `man_x(i) * man_y(j) << 8(i+j)`. To fit the 8-row systolic array
//! the hardware **omits the least-significant partial product** (`i = j = 0`,
//! shift 0) and accumulates the remaining eight down the DSP cascade, one per
//! PE row (Fig. 5 b). The final mantissa is renormalised and truncated.
//!
//! [`MulVariant::Exact`] keeps all nine products (reference behaviour);
//! [`MulVariant::DropLsp`] reproduces the hardware. The difference is bounded
//! by tests and characterised by the `ablation` bench.

use crate::softfp::{SoftFp32, BIAS, FRAC_BITS};

/// Which partial products enter the sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MulVariant {
    /// All nine `slice × slice` products: bit-exact integer mantissa product.
    Exact,
    /// Drop the `i = j = 0` product, as the 8-row array does (paper §II-D).
    #[default]
    DropLsp,
}

/// How the 48-bit product is reduced back to a 24-bit mantissa.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NormRound {
    /// Truncate the shifted-out bits (what the paper's hardware does).
    #[default]
    Truncate,
    /// Round to nearest, ties to even (IEEE-like; ablation only).
    NearestEven,
}

/// One `slice × slice` term of the mantissa product, for introspection and
/// for mapping onto PE rows in the cycle simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartialProduct {
    /// Slice index of the X operand (0 = least significant).
    pub i: u8,
    /// Slice index of the Y operand.
    pub j: u8,
    /// The raw 16-bit product `man_x(i) * man_y(j)`.
    pub value: u16,
    /// Left shift applied before summation: `8 * (i + j)`.
    pub shift: u8,
}

impl PartialProduct {
    /// The term's contribution to the 48-bit product.
    pub fn contribution(self) -> u64 {
        (self.value as u64) << self.shift
    }
}

/// Hardware-faithful fp32 multiplier.
///
/// ```
/// use bfp_arith::fpmul::{HwFp32Mul, MulVariant};
/// use bfp_arith::ulp::ulp_distance;
///
/// let hw = HwFp32Mul::new(MulVariant::DropLsp);   // the 8-row datapath
/// assert_eq!(hw.mul(1.5, -2.0), -3.0);            // exact when exact
/// let (x, y) = (1.234_5678f32, 7.654_321f32);
/// assert!(ulp_distance(hw.mul(x, y), x * y) <= 2); // ≤2 ulp always
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct HwFp32Mul {
    /// Partial-product selection.
    pub variant: MulVariant,
    /// Mantissa reduction rounding.
    pub round: NormRound,
}

impl HwFp32Mul {
    /// A multiplier with the given variant and hardware truncation.
    pub fn new(variant: MulVariant) -> Self {
        HwFp32Mul {
            variant,
            round: NormRound::Truncate,
        }
    }

    /// All nine partial products of two unpacked operands, LSB-first by
    /// shift. This is exactly the set of terms the PE rows compute.
    pub fn partial_products(a: SoftFp32, b: SoftFp32) -> Vec<PartialProduct> {
        let xs = a.slices();
        let ys = b.slices();
        let mut out = Vec::with_capacity(9);
        for i in 0..3u8 {
            for j in 0..3u8 {
                out.push(PartialProduct {
                    i,
                    j,
                    value: (xs[i as usize] as u16) * (ys[j as usize] as u16),
                    shift: 8 * (i + j),
                });
            }
        }
        out.sort_by_key(|p| (p.shift, p.i));
        out
    }

    /// Multiply two unpacked values on the sliced datapath.
    ///
    /// The nine partial products of Eqn. 5 sum to the exact 48-bit integer
    /// mantissa product, and `u64` addition is associative — so instead of
    /// materialising (and sorting) the term list per call, the fast path
    /// computes the full product with one widening multiply and, for
    /// [`MulVariant::DropLsp`], subtracts the single omitted `i = j = 0`
    /// term. Bit-identical to summing [`HwFp32Mul::partial_products`]
    /// (pinned by [`HwFp32Mul::mul_soft_via_partials`] and its proptest),
    /// but free of the per-multiply heap allocation that dominated the VPU
    /// kernels' wall clock.
    #[inline]
    pub fn mul_soft(&self, a: SoftFp32, b: SoftFp32) -> SoftFp32 {
        let sign = a.sign ^ b.sign; // the one XOR gate of §II-B
        if a.is_zero() || b.is_zero() {
            return SoftFp32 {
                sign,
                exp: 0,
                man: 0,
            };
        }
        let mut full: u64 = a.man as u64 * b.man as u64;
        if self.variant == MulVariant::DropLsp {
            // The omitted partial product is man_x(0)·man_y(0) at shift 0.
            full -= (a.man & 0xff) as u64 * (b.man & 0xff) as u64;
        }
        self.normalise_product(sign, a.exp, b.exp, full)
    }

    /// The introspective twin of [`HwFp32Mul::mul_soft`]: enumerate the
    /// partial-product terms the PE rows compute (the pre-optimisation
    /// implementation) and sum them. Kept as the per-row oracle for the
    /// fast path and as the scalar-baseline op for perf comparisons.
    pub fn mul_soft_via_partials(&self, a: SoftFp32, b: SoftFp32) -> SoftFp32 {
        let sign = a.sign ^ b.sign;
        if a.is_zero() || b.is_zero() {
            return SoftFp32 {
                sign,
                exp: 0,
                man: 0,
            };
        }
        let mut full: u64 = 0;
        for p in Self::partial_products(a, b) {
            if self.variant == MulVariant::DropLsp && p.i == 0 && p.j == 0 {
                continue;
            }
            full += p.contribution();
        }
        self.normalise_product(sign, a.exp, b.exp, full)
    }

    /// Shared renormalisation tail of the two product paths.
    #[inline]
    fn normalise_product(&self, sign: bool, ea: i32, eb: i32, full: u64) -> SoftFp32 {
        debug_assert!(
            full >= 1 << 46,
            "product of normalised mantissas below 2^46"
        );
        debug_assert!(full < 1 << 48);

        // Renormalise the [2^46, 2^48) product into a 24-bit mantissa.
        let mut exp = ea + eb - BIAS;
        let shift = if full >> 47 != 0 {
            exp += 1;
            FRAC_BITS + 1
        } else {
            FRAC_BITS
        };
        let mut man = (full >> shift) as u32;
        if self.round == NormRound::NearestEven {
            let rem = full & ((1u64 << shift) - 1);
            let half = 1u64 << (shift - 1);
            if rem > half || (rem == half && man & 1 == 1) {
                man += 1;
                if man >> 24 != 0 {
                    man >>= 1;
                    exp += 1;
                }
            }
        }
        SoftFp32 { sign, exp, man }
    }

    /// Multiply two `f32` values via [`HwFp32Mul::mul_soft_via_partials`]
    /// (the pre-optimisation scalar path; baseline benchmarking only).
    pub fn mul_via_partials(&self, x: f32, y: f32) -> f32 {
        if x.is_nan() || y.is_nan() {
            return f32::NAN;
        }
        let sign = (x.is_sign_negative()) ^ (y.is_sign_negative());
        if x.is_infinite() || y.is_infinite() {
            if x == 0.0 || y == 0.0 {
                return f32::NAN;
            }
            return if sign {
                f32::NEG_INFINITY
            } else {
                f32::INFINITY
            };
        }
        self.mul_soft_via_partials(SoftFp32::unpack(x), SoftFp32::unpack(y))
            .pack()
    }

    /// Multiply two `f32` values. IEEE special cases (NaN, inf, zero) are
    /// resolved by control logic before the array is engaged, exactly like
    /// the hardware's controller short-circuits them.
    #[inline]
    pub fn mul(&self, x: f32, y: f32) -> f32 {
        // One finiteness gate on the hot path; NaN/inf resolution stays
        // out of line (see `mul_special`).
        if x.is_finite() && y.is_finite() {
            return self
                .mul_soft(SoftFp32::unpack(x), SoftFp32::unpack(y))
                .pack();
        }
        Self::mul_special(x, y)
    }

    /// NaN/infinity resolution, exactly as the original inline checks did.
    #[cold]
    fn mul_special(x: f32, y: f32) -> f32 {
        if x.is_nan() || y.is_nan() {
            return f32::NAN;
        }
        // At least one operand is infinite here.
        if x == 0.0 || y == 0.0 {
            return f32::NAN; // inf × 0
        }
        if (x.is_sign_negative()) ^ (y.is_sign_negative()) {
            f32::NEG_INFINITY
        } else {
            f32::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ulp::ulp_distance;

    fn exact() -> HwFp32Mul {
        HwFp32Mul::new(MulVariant::Exact)
    }
    fn hw() -> HwFp32Mul {
        HwFp32Mul::new(MulVariant::DropLsp)
    }

    #[test]
    fn exact_products_match_ieee_when_representable() {
        // Products of small powers of two and short mantissas are exact in
        // fp32, so truncation never fires and the result must equal IEEE.
        let cases = [
            (1.5f32, -2.25f32, -3.375f32),
            (0.5, 0.5, 0.25),
            (3.0, 7.0, 21.0),
            (1024.0, -0.125, -128.0),
            (1.0, 1.0, 1.0),
        ];
        for (x, y, want) in cases {
            assert_eq!(exact().mul(x, y), want, "{x} * {y}");
            assert_eq!(hw().mul(x, y), want, "{x} * {y} (DropLsp)");
        }
    }

    #[test]
    fn fast_product_path_matches_partial_product_enumeration() {
        // The optimised mul_soft must agree bit-for-bit with the term-list
        // oracle for both variants and both rounding modes, across a spread
        // of mantissa patterns (incl. all-ones low slices, where the
        // DropLsp subtraction is largest).
        let mut state = 0x243F_6A88_85A3_08D3u64; // deterministic LCG
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 32) as u32
        };
        let muls = [
            HwFp32Mul::new(MulVariant::Exact),
            HwFp32Mul::new(MulVariant::DropLsp),
            HwFp32Mul {
                variant: MulVariant::DropLsp,
                round: NormRound::NearestEven,
            },
        ];
        for _ in 0..20_000 {
            let x = f32::from_bits(next() & 0x7fff_ffff | ((next() & 1) << 31));
            let y = f32::from_bits(next() & 0x7fff_ffff | ((next() & 1) << 31));
            if !x.is_finite() || !y.is_finite() {
                continue;
            }
            for m in &muls {
                let fast = m.mul(x, y);
                let slow = m.mul_via_partials(x, y);
                assert_eq!(
                    fast.to_bits(),
                    slow.to_bits(),
                    "{x} * {y} ({:?}/{:?}): {fast} vs {slow}",
                    m.variant,
                    m.round
                );
            }
        }
        // Edge mantissas: hidden-bit-only, all-ones, low-slice extremes.
        for &xb in &[0x3f80_0000u32, 0x3fff_ffff, 0x3f80_00ff, 0x7f7f_ffff, 0x0080_0000] {
            for &yb in &[0x3f80_0000u32, 0x3fff_ffff, 0x3f80_00ff, 0x7f7f_ffff, 0x0080_0000] {
                let (x, y) = (f32::from_bits(xb), f32::from_bits(yb));
                for m in &muls {
                    assert_eq!(m.mul(x, y).to_bits(), m.mul_via_partials(x, y).to_bits());
                }
            }
        }
    }

    #[test]
    fn nine_partial_products_reconstruct_integer_product() {
        let a = SoftFp32::unpack(1.234_567_8e3);
        let b = SoftFp32::unpack(-9.876_543e-4);
        let sum: u64 = HwFp32Mul::partial_products(a, b)
            .into_iter()
            .map(|p| p.contribution())
            .sum();
        assert_eq!(sum, a.man as u64 * b.man as u64);
    }

    #[test]
    fn partial_products_are_nine_with_expected_shifts() {
        let a = SoftFp32::unpack(1.5);
        let b = SoftFp32::unpack(2.5);
        let pps = HwFp32Mul::partial_products(a, b);
        assert_eq!(pps.len(), 9);
        let mut shifts: Vec<u8> = pps.iter().map(|p| p.shift).collect();
        shifts.dedup();
        assert_eq!(shifts, vec![0, 8, 16, 24, 32]);
    }

    #[test]
    fn truncation_is_within_one_ulp_of_ieee() {
        // Deterministic pseudo-random sweep (no rand dependency needed here).
        let mut state = 0x1234_5678_u32;
        let mut next = || {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            f32::from_bits(0x3f00_0000 | (state >> 9)) * if state & 1 == 0 { 1.0 } else { -1.0 }
        };
        for _ in 0..20_000 {
            let (x, y) = (next(), next());
            let ieee = x * y;
            let got = exact().mul(x, y);
            assert!(
                ulp_distance(got, ieee) <= 1,
                "{x} * {y}: got {got}, ieee {ieee}"
            );
        }
    }

    #[test]
    fn drop_lsp_is_within_two_ulp_of_ieee() {
        let mut state = 0x8765_4321_u32;
        let mut next = || {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            f32::from_bits(0x3f00_0000 | (state >> 9)) * if state & 1 == 0 { 1.0 } else { -1.0 }
        };
        for _ in 0..20_000 {
            let (x, y) = (next(), next());
            let ieee = x * y;
            let got = hw().mul(x, y);
            assert!(
                ulp_distance(got, ieee) <= 2,
                "{x} * {y}: got {got}, ieee {ieee}"
            );
        }
    }

    #[test]
    fn nearest_even_matches_ieee_on_exact_datapath() {
        let m = HwFp32Mul {
            variant: MulVariant::Exact,
            round: NormRound::NearestEven,
        };
        let mut state = 0xdead_beef_u32;
        let mut next = || {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            f32::from_bits(0x3f00_0000 | (state >> 9)) * if state & 1 == 0 { 1.0 } else { -1.0 }
        };
        for _ in 0..20_000 {
            let (x, y) = (next(), next());
            // With all nine products and RNE, the sliced multiplier *is* an
            // IEEE multiplier (for normal/normal -> normal cases).
            let ieee = x * y;
            if ieee.is_finite() && ieee != 0.0 && ieee.abs() >= f32::MIN_POSITIVE {
                assert_eq!(m.mul(x, y), ieee, "{x} * {y}");
            }
        }
    }

    #[test]
    fn special_cases() {
        assert!(hw().mul(f32::NAN, 1.0).is_nan());
        assert!(hw().mul(f32::INFINITY, 0.0).is_nan());
        assert_eq!(hw().mul(f32::INFINITY, -2.0), f32::NEG_INFINITY);
        assert_eq!(hw().mul(0.0, -3.5).to_bits(), (-0.0f32).to_bits());
        assert_eq!(hw().mul(-0.0, -3.5), 0.0);
    }

    #[test]
    fn overflow_saturates_underflow_flushes() {
        assert_eq!(hw().mul(f32::MAX, 2.0), f32::INFINITY);
        assert_eq!(hw().mul(f32::MAX, -2.0), f32::NEG_INFINITY);
        assert_eq!(hw().mul(f32::MIN_POSITIVE, 0.5), 0.0);
    }

    #[test]
    fn signs_combine_via_xor() {
        assert!(hw().mul(2.0, 3.0) > 0.0);
        assert!(hw().mul(-2.0, 3.0) < 0.0);
        assert!(hw().mul(2.0, -3.0) < 0.0);
        assert!(hw().mul(-2.0, -3.0) > 0.0);
    }
}
