//! Parameterised reduced-precision floating point: the design-space the
//! paper's conclusion opens ("the fp32 format is often overly precise for
//! many machine learning systems ... we plan to delve deeper into
//! high-precision floating-point optimization").
//!
//! A [`RedFp`] format keeps `exp_bits` of exponent range and `man_bits` of
//! explicit mantissa; values are emulated by rounding every operation
//! result back into the format (round-to-nearest-even, saturate to ±inf on
//! exponent overflow, flush to zero on underflow). Presets cover the
//! industry formats between fp16 and fp32, so the `futurework` binary can
//! sweep "how much precision do the non-linear layers actually need?".

/// A floating-point format with reduced exponent/mantissa widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RedFp {
    /// Exponent field width in bits (≤ 8).
    pub exp_bits: u32,
    /// Explicit mantissa (fraction) bits (≤ 23).
    pub man_bits: u32,
}

impl RedFp {
    /// IEEE single precision (identity).
    pub const FP32: RedFp = RedFp {
        exp_bits: 8,
        man_bits: 23,
    };
    /// NVIDIA TF32: fp32 range, 10-bit mantissa.
    pub const TF32: RedFp = RedFp {
        exp_bits: 8,
        man_bits: 10,
    };
    /// bfloat16: fp32 range, 7-bit mantissa.
    pub const BF16: RedFp = RedFp {
        exp_bits: 8,
        man_bits: 7,
    };
    /// IEEE half precision.
    pub const FP16: RedFp = RedFp {
        exp_bits: 5,
        man_bits: 10,
    };
    /// A "fp24"-style middle ground: fp32 range, 16-bit mantissa.
    pub const FP24: RedFp = RedFp {
        exp_bits: 8,
        man_bits: 16,
    };

    /// All presets, widest first (for sweeps).
    pub const PRESETS: [(&'static str, RedFp); 5] = [
        ("fp32", RedFp::FP32),
        ("fp24", RedFp::FP24),
        ("tf32", RedFp::TF32),
        ("bf16", RedFp::BF16),
        ("fp16", RedFp::FP16),
    ];

    /// Largest finite magnitude of the format.
    pub fn max_value(&self) -> f32 {
        let e_max = (1i32 << (self.exp_bits - 1)) - 1; // unbiased
        let frac = 2.0 - 2f32.powi(-(self.man_bits as i32));
        frac * (e_max as f32).exp2()
    }

    /// Smallest positive *normal* magnitude.
    pub fn min_normal(&self) -> f32 {
        let e_min = 2 - (1i32 << (self.exp_bits - 1));
        (e_min as f32).exp2()
    }

    /// Round a value into the format: RNE on the mantissa, saturate on
    /// exponent overflow, flush to (signed) zero below the normal range.
    pub fn quantize(&self, x: f32) -> f32 {
        if x.is_nan() || x.is_infinite() || x == 0.0 {
            return x;
        }
        // Mantissa rounding via bit arithmetic (exact RNE at any width).
        let bits = x.to_bits();
        let drop = 23 - self.man_bits;
        let rounded = if drop == 0 {
            bits
        } else {
            let half = 1u32 << (drop - 1);
            let mask = (1u32 << drop) - 1;
            let rem = bits & mask;
            let base = bits & !mask;
            if rem > half || (rem == half && (base >> drop) & 1 == 1) {
                // May carry into the exponent field, which is exactly the
                // right behaviour.
                base + (1 << drop)
            } else {
                base
            }
        };
        let v = f32::from_bits(rounded);
        // Exponent clamping.
        if v.abs() > self.max_value() {
            return if v > 0.0 {
                f32::INFINITY
            } else {
                f32::NEG_INFINITY
            };
        }
        if v.abs() < self.min_normal() {
            return if v.is_sign_negative() { -0.0 } else { 0.0 };
        }
        v
    }

    /// Addition in the format.
    pub fn add(&self, a: f32, b: f32) -> f32 {
        self.quantize(self.quantize(a) + self.quantize(b))
    }

    /// Multiplication in the format.
    pub fn mul(&self, a: f32, b: f32) -> f32 {
        self.quantize(self.quantize(a) * self.quantize(b))
    }

    /// Exponential in the format.
    pub fn exp(&self, a: f32) -> f32 {
        self.quantize(self.quantize(a).exp())
    }

    /// Division in the format.
    pub fn div(&self, a: f32, b: f32) -> f32 {
        self.quantize(self.quantize(a) / self.quantize(b))
    }

    /// Numerically-standard row softmax computed entirely in this format
    /// (with max subtraction — the *well-implemented* kernel, so failures
    /// are inherent to the format, not to a naive implementation).
    pub fn softmax_row(&self, row: &mut [f32]) {
        if row.is_empty() {
            return;
        }
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = self.exp(self.add(*v, -max));
            sum = self.add(sum, *v);
        }
        for v in row.iter_mut() {
            *v = self.div(*v, sum);
        }
    }

    /// Row LayerNorm computed entirely in this format.
    ///
    /// # Panics
    /// Panics if `gamma`/`beta` lengths differ from the row length.
    pub fn layernorm_row(&self, row: &mut [f32], gamma: &[f32], beta: &[f32], eps: f32) {
        let n = row.len();
        assert_eq!(gamma.len(), n);
        assert_eq!(beta.len(), n);
        if n == 0 {
            return;
        }
        let inv_n = self.quantize(1.0 / n as f32);
        let mut sum = 0.0;
        for &v in row.iter() {
            sum = self.add(sum, v);
        }
        let mean = self.mul(sum, inv_n);
        let mut var_sum = 0.0;
        for v in row.iter_mut() {
            let d = self.add(*v, -mean);
            *v = d;
            var_sum = self.add(var_sum, self.mul(d, d));
        }
        let var = self.mul(var_sum, inv_n);
        let inv = self.quantize(1.0 / self.quantize(self.add(var, eps)).sqrt());
        for (j, v) in row.iter_mut().enumerate() {
            *v = self.add(self.mul(self.mul(*v, inv), gamma[j]), beta[j]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp32_preset_is_identity() {
        for &x in &[1.0f32, -3.25159, 6.02e23, 1.6e-19] {
            assert_eq!(RedFp::FP32.quantize(x), x);
        }
    }

    #[test]
    fn bf16_keeps_seven_fraction_bits() {
        let f = RedFp::BF16;
        // 1 + 2^-7 survives; 1 + 2^-8 rounds to the even neighbour (1.0).
        assert_eq!(f.quantize(1.0 + 2f32.powi(-7)), 1.0 + 2f32.powi(-7));
        assert_eq!(f.quantize(1.0 + 2f32.powi(-8)), 1.0);
        // 1 + 3·2^-8 ties between mantissa 0x01 (odd) and 0x02 (even):
        // RNE picks the even side, 1 + 2^-6.
        assert_eq!(f.quantize(1.0 + 3.0 * 2f32.powi(-8)), 1.0 + 2f32.powi(-6));
    }

    #[test]
    fn fp16_preset_matches_halffp_on_normals() {
        let f = RedFp::FP16;
        for k in 1..500 {
            let x = (k as f32 * 0.37).sin() * 100.0;
            if x.abs() >= f.min_normal() {
                assert_eq!(
                    f.quantize(x),
                    crate::halffp::as_f16(x),
                    "RedFp fp16 must agree with the bit-level fp16 model at {x}"
                );
            }
        }
    }

    #[test]
    fn range_limits() {
        assert_eq!(RedFp::FP16.max_value(), 65504.0);
        assert_eq!(RedFp::FP16.min_normal(), 2f32.powi(-14));
        assert_eq!(RedFp::FP16.quantize(70000.0), f32::INFINITY);
        // bf16 shares fp32's exponent range: huge values survive.
        assert!(RedFp::BF16.quantize(1e38).is_finite());
        assert!((RedFp::BF16.quantize(1e38) - 1e38).abs() < 1e36);
    }

    #[test]
    fn softmax_quality_degrades_monotonically_with_mantissa() {
        let logits: Vec<f32> = (0..64).map(|k| (k as f32 * 0.41).sin() * 5.0).collect();
        let mut reference = logits.clone();
        RedFp::FP32.softmax_row(&mut reference);
        let mut prev_err = 0.0f32;
        for (name, f) in [
            ("fp24", RedFp::FP24),
            ("tf32", RedFp::TF32),
            ("bf16", RedFp::BF16),
        ] {
            let mut row = logits.clone();
            f.softmax_row(&mut row);
            let err = row
                .iter()
                .zip(&reference)
                .map(|(a, b)| (a - b).abs())
                .fold(0f32, f32::max);
            assert!(
                err >= prev_err,
                "{name}: error must not shrink with fewer bits"
            );
            prev_err = err;
        }
        // bf16 softmax stays *usable* on in-range logits (range matters
        // more than mantissa here) ...
        assert!(prev_err < 1e-2);
    }

    #[test]
    fn fp16_softmax_breaks_where_bf16_survives() {
        // The dynamic-range story: logits ~ 15 (e^15 = 3.3e6) overflow
        // fp16's 65504 even after a *shifted* kernel? No — shifted values
        // are <= 0, so exp <= 1. The failure is underflow: shifted logits
        // below ln(2^-14) ~ -9.7 flush to zero and lose all tail mass.
        let mut row: Vec<f32> = (0..32).map(|k| -(k as f32)).collect(); // 0..-31
        let mut reference = row.clone();
        RedFp::FP32.softmax_row(&mut reference);
        let mut f16row = row.clone();
        RedFp::FP16.softmax_row(&mut f16row);
        RedFp::BF16.softmax_row(&mut row);
        // In fp16 every entry beyond position ~10 is exactly zero.
        assert_eq!(f16row[20], 0.0);
        assert!(reference[20] > 0.0);
        // bf16 keeps the tail alive thanks to its 8-bit exponent.
        assert!(row[20] > 0.0, "bf16 preserves tail mass");
    }

    #[test]
    fn layernorm_needs_mantissa_not_range() {
        // Complementary story: LayerNorm accuracy tracks mantissa width.
        let n = 384;
        let gamma = vec![1.0f32; n];
        let beta = vec![0.0f32; n];
        let src: Vec<f32> = (0..n)
            .map(|j| (j as f32 * 0.17).sin() * 2.0 + 0.3)
            .collect();
        let run = |f: RedFp| {
            let mut row = src.clone();
            f.layernorm_row(&mut row, &gamma, &beta, 1e-6);
            row
        };
        let reference = run(RedFp::FP32);
        let err = |row: &[f32]| {
            row.iter()
                .zip(&reference)
                .map(|(a, b)| (a - b).abs())
                .fold(0f32, f32::max)
        };
        let e_fp24 = err(&run(RedFp::FP24));
        let e_bf16 = err(&run(RedFp::BF16));
        assert!(e_fp24 < e_bf16, "more mantissa -> better LayerNorm");
        assert!(
            e_bf16 < 0.2,
            "bf16 LayerNorm is degraded but not broken: {e_bf16}"
        );
    }
}
