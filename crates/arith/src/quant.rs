//! Matrix-level bfp quantization: tile an arbitrary `f32` matrix into
//! square bfp blocks, and run full matrix multiplies through the block
//! datapath (quantize → int8 block MatMul → aligned accumulation).
//!
//! The paper fixes the block at 8×8; other sizes (4, 16, …) are supported
//! here for the block-size ablation bench, since the accuracy-vs-hardware
//! trade-off of the block size is one of the design choices DESIGN.md calls
//! out.

use crate::bfp::{shift_right_trunc, BfpBlock, BLOCK};
use crate::error::ArithError;
use crate::guard::SaturationPolicy;
use crate::int8::{mix_hash, round_i8_rne, round_i8_stochastic, round_i8_trunc};
use crate::matrix::MatF32;
use crate::stats::ErrorStats;

/// Mantissa rounding used during quantization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoundMode {
    /// Round to nearest, ties to even (the quantizer unit's default).
    #[default]
    NearestEven,
    /// Truncate toward zero (cheaper hardware; ablation).
    Truncate,
    /// Stochastic rounding: round up with probability equal to the
    /// fractional part (deterministic hash source) — unbiased in
    /// expectation.
    Stochastic,
}

/// Configurable bfp quantizer.
///
/// ```
/// use bfp_arith::matrix::MatF32;
/// use bfp_arith::quant::Quantizer;
///
/// let m = MatF32::from_fn(16, 16, |i, j| (i as f32 - j as f32) * 0.25);
/// let q = Quantizer::paper().quantize(&m).unwrap();
/// assert_eq!(q.grid(), (2, 2));                    // 8x8 tiles
/// assert!(q.fidelity(&m).sqnr_db() > 40.0);        // 8-bit mantissas
/// let back = q.dequantize();
/// assert_eq!(back.rows(), 16);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Quantizer {
    /// Square block side length (8 in the paper).
    pub block: usize,
    /// Mantissa rounding mode.
    pub round: RoundMode,
    /// Mantissa width in bits, 2..=8 (8 in the paper's bfp8; smaller
    /// widths support the SqueezeBlock-style bitwidth ablation).
    pub man_bits: u32,
    /// What to do when rounding pushes a mantissa past the clamp.
    pub saturation: SaturationPolicy,
}

impl Default for Quantizer {
    fn default() -> Self {
        Quantizer {
            block: BLOCK,
            round: RoundMode::NearestEven,
            man_bits: 8,
            saturation: SaturationPolicy::Saturate,
        }
    }
}

impl Quantizer {
    /// The paper's configuration: 8×8 blocks, 8-bit mantissas, RNE.
    pub fn paper() -> Self {
        Self::default()
    }

    /// A quantizer with a custom block size.
    ///
    /// # Panics
    /// Panics if `block` is 0.
    pub fn with_block(block: usize) -> Self {
        assert!(block > 0, "block size must be positive");
        Quantizer {
            block,
            ..Self::default()
        }
    }

    /// A quantizer with a custom mantissa width (still stored in i8).
    ///
    /// # Panics
    /// Panics unless `2 <= man_bits <= 8`.
    pub fn with_man_bits(man_bits: u32) -> Self {
        assert!(
            (2..=8).contains(&man_bits),
            "mantissa width must be 2..=8 bits"
        );
        Quantizer {
            man_bits,
            ..Self::default()
        }
    }

    /// Largest representable mantissa magnitude (symmetric clamp).
    pub fn max_mag(&self) -> i32 {
        (1 << (self.man_bits - 1)) - 1
    }

    /// Quantize a matrix, zero-padding the bottom/right edges to a whole
    /// number of blocks (padding mantissas are exactly zero, so they never
    /// perturb products).
    pub fn quantize(&self, m: &MatF32) -> Result<BfpMatrix, ArithError> {
        self.quantize_with(m, false)
    }

    /// [`Quantizer::quantize`] through the reference tile scan
    /// (`Quantizer::tile_exp_reference`). Bit-identical output; this is
    /// the measured pre-optimisation epilogue the e2e baseline replays.
    pub fn quantize_reference(&self, m: &MatF32) -> Result<BfpMatrix, ArithError> {
        self.quantize_with(m, true)
    }

    fn quantize_with(&self, m: &MatF32, reference_scan: bool) -> Result<BfpMatrix, ArithError> {
        let b = self.block;
        let block_rows = m.rows().div_ceil(b);
        let block_cols = m.cols().div_ceil(b);
        let mut blocks = Vec::with_capacity(block_rows * block_cols);
        for bi in 0..block_rows {
            for bj in 0..block_cols {
                blocks.push(self.quantize_tile(m, bi * b, bj * b, reference_scan)?);
            }
        }
        Ok(BfpMatrix {
            rows: m.rows(),
            cols: m.cols(),
            block: b,
            block_rows,
            block_cols,
            blocks,
        })
    }

    /// Scan the `block × block` tile anchored at `(r0, c0)` (clipped to the
    /// matrix) and derive its shared exponent. `Ok(None)` means an all-zero
    /// tile (canonical exponent 0, zero mantissas). This is the single
    /// source of truth shared by [`Quantizer::quantize`] and the fused
    /// quantize-and-pack epilogue in [`crate::packed`], so the two paths
    /// cannot drift apart bit-wise.
    pub(crate) fn tile_exp(&self, m: &MatF32, r0: usize, c0: usize) -> Result<Option<i8>, ArithError> {
        let b = self.block;
        let cols = m.cols();
        let imax = b.min(m.rows().saturating_sub(r0));
        let jmax = b.min(cols.saturating_sub(c0));
        let data = m.data();
        // Row-slice scan in the same (i, j) order as the per-element loop
        // it replaced, so the first non-finite error is identical; the f32
        // max converts exactly to f64, so the exponent search is too.
        let mut max_abs = 0f32;
        for i in 0..imax {
            let r = r0 + i;
            let row = &data[r * cols + c0..][..jmax];
            for (j, &v) in row.iter().enumerate() {
                if !v.is_finite() {
                    return Err(ArithError::NonFinite { at: (r, c0 + j) });
                }
                max_abs = max_abs.max(v.abs());
            }
        }
        let max_abs = max_abs as f64;
        if max_abs == 0.0 {
            return Ok(None);
        }
        self.exp_for_max_abs(max_abs).map(Some)
    }

    /// [`Quantizer::tile_exp`] for a tile that lives in a local `b×b`
    /// row-major buffer instead of a full matrix: scan the valid
    /// `imax × jmax` region in the same (i, j) order and derive the shared
    /// exponent. `(r0, c0)` is the tile's anchor in the logical output
    /// matrix, used only to report the absolute position of a non-finite
    /// element — so a fused GEMM epilogue that never materialises the f32
    /// matrix still errors with the coordinates the composed path reports.
    pub(crate) fn tile_exp_slice(
        &self,
        tile: &[f32],
        r0: usize,
        c0: usize,
        imax: usize,
        jmax: usize,
    ) -> Result<Option<i8>, ArithError> {
        let b = self.block;
        let mut max_abs = 0f32;
        for i in 0..imax {
            let row = &tile[i * b..][..jmax];
            for (j, &v) in row.iter().enumerate() {
                if !v.is_finite() {
                    return Err(ArithError::NonFinite { at: (r0 + i, c0 + j) });
                }
                max_abs = max_abs.max(v.abs());
            }
        }
        let max_abs = max_abs as f64;
        if max_abs == 0.0 {
            return Ok(None);
        }
        self.exp_for_max_abs(max_abs).map(Some)
    }

    /// The pre-optimisation tile scan: per-element `get` with bounds
    /// branches and an f64 running max. Kept runnable as the oracle
    /// [`Quantizer::tile_exp`] is pinned against and as the epilogue the
    /// e2e baseline engine replays, so "before" numbers stay measurable on
    /// today's tree. Bit-identical to the slice scan (the f32 max converts
    /// exactly to f64 and the (i, j) error order matches).
    pub(crate) fn tile_exp_reference(
        &self,
        m: &MatF32,
        r0: usize,
        c0: usize,
    ) -> Result<Option<i8>, ArithError> {
        let b = self.block;
        let mut max_abs = 0f64;
        for i in 0..b {
            for j in 0..b {
                let (r, c) = (r0 + i, c0 + j);
                if r < m.rows() && c < m.cols() {
                    let v = m.get(r, c);
                    if !v.is_finite() {
                        return Err(ArithError::NonFinite { at: (r, c) });
                    }
                    max_abs = max_abs.max((v as f64).abs());
                }
            }
        }
        if max_abs == 0.0 {
            return Ok(None);
        }
        self.exp_for_max_abs(max_abs).map(Some)
    }

    /// Shared exponent for a tile whose largest magnitude is `max_abs`
    /// (non-zero): the smallest exponent whose rounded mantissa for
    /// `max_abs` still fits the symmetric clamp.
    fn exp_for_max_abs(&self, max_abs: f64) -> Result<i8, ArithError> {
        let mag = self.max_mag() as f64;
        let mut exp = (max_abs.log2().floor() as i32) - (self.man_bits as i32 - 2);
        while (max_abs * (-exp as f64).exp2()).round() > mag {
            exp += 1;
        }
        while exp > i8::MIN as i32 + 1 && (max_abs * (-(exp - 1) as f64).exp2()).round() <= mag {
            exp -= 1;
        }
        if exp > i8::MAX as i32 {
            return Err(ArithError::ExponentOverflow { exp });
        }
        Ok(exp.max(i8::MIN as i32) as i8)
    }

    /// Round one element at absolute position `(r, c)` against a tile scale;
    /// returns the clamped mantissa and whether the clamp fired. Shared by
    /// both quantization paths (see [`Quantizer::tile_exp`]).
    #[inline]
    pub(crate) fn round_elem(&self, v: f32, scale: f64, r: usize, c: usize, clamp: i8) -> (i8, bool) {
        let scaled = v as f64 * scale;
        let q = match self.round {
            RoundMode::NearestEven => round_i8_rne(scaled),
            RoundMode::Truncate => round_i8_trunc(scaled),
            RoundMode::Stochastic => {
                round_i8_stochastic(scaled, mix_hash(r, c, (scaled as f32).to_bits()))
            }
        };
        (q.clamp(-clamp, clamp), q < -clamp || q > clamp)
    }

    fn quantize_tile(
        &self,
        m: &MatF32,
        r0: usize,
        c0: usize,
        reference_scan: bool,
    ) -> Result<GenBlock, ArithError> {
        let b = self.block;
        let scanned = if reference_scan {
            self.tile_exp_reference(m, r0, c0)?
        } else {
            self.tile_exp(m, r0, c0)?
        };
        let exp = match scanned {
            None => {
                return Ok(GenBlock {
                    exp: 0,
                    man: vec![0; b * b],
                })
            }
            Some(exp) => exp,
        };
        let scale = (-(exp as i32) as f64).exp2();
        let clamp = self.max_mag() as i8;
        let mut man = vec![0i8; b * b];
        let mut saturated = 0u64;
        for i in 0..b {
            for j in 0..b {
                let (r, c) = (r0 + i, c0 + j);
                if r < m.rows() && c < m.cols() {
                    let (q, sat) = self.round_elem(m.get(r, c), scale, r, c, clamp);
                    saturated += sat as u64;
                    man[i * b + j] = q;
                }
            }
        }
        crate::telemetry::note_saturated(saturated);
        self.saturation.check(saturated)?;
        Ok(GenBlock { exp, man })
    }
}

/// One quantized tile of generic side length (mantissas row-major).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenBlock {
    /// Shared exponent.
    pub exp: i8,
    /// `block × block` row-major int8 mantissas.
    pub man: Vec<i8>,
}

/// A matrix quantized into a grid of bfp blocks.
#[derive(Debug, Clone)]
pub struct BfpMatrix {
    rows: usize,
    cols: usize,
    block: usize,
    block_rows: usize,
    block_cols: usize,
    /// Row-major grid of blocks.
    blocks: Vec<GenBlock>,
}

impl BfpMatrix {
    /// Logical (unpadded) row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical (unpadded) column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Block side length.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Grid dimensions in blocks `(block_rows, block_cols)`.
    pub fn grid(&self) -> (usize, usize) {
        (self.block_rows, self.block_cols)
    }

    /// Access a block of the grid.
    pub fn block_at(&self, bi: usize, bj: usize) -> &GenBlock {
        assert!(
            bi < self.block_rows && bj < self.block_cols,
            "block index out of range"
        );
        &self.blocks[bi * self.block_cols + bj]
    }

    /// Convert one grid tile to the hardware's fixed 8×8 [`BfpBlock`].
    ///
    /// # Panics
    /// Panics if this matrix was not quantized with `block == 8`.
    pub fn block8_at(&self, bi: usize, bj: usize) -> BfpBlock {
        assert_eq!(self.block, BLOCK, "block8_at requires 8x8 quantization");
        let g = self.block_at(bi, bj);
        let mut man = [[0i8; BLOCK]; BLOCK];
        for i in 0..BLOCK {
            man[i].copy_from_slice(&g.man[i * BLOCK..(i + 1) * BLOCK]);
        }
        BfpBlock { exp: g.exp, man }
    }

    /// Dequantize back to `f32` (padding is discarded).
    ///
    /// Walks the grid once per *block*, not per element: each tile's
    /// exponent is decoded to a scale a single time and its `b×b` mantissas
    /// are written in one pass per row segment.
    pub fn dequantize(&self) -> MatF32 {
        let b = self.block;
        let cols = self.cols;
        let mut out = MatF32::zeros(self.rows, self.cols);
        let data = out.data_mut();
        for bi in 0..self.block_rows {
            let imax = b.min(self.rows - bi * b);
            for bj in 0..self.block_cols {
                let jmax = b.min(self.cols - bj * b);
                let g = &self.blocks[bi * self.block_cols + bj];
                let scale = (g.exp as f64).exp2();
                for i in 0..imax {
                    let src = &g.man[i * b..][..jmax];
                    let dst = &mut data[(bi * b + i) * cols + bj * b..][..jmax];
                    for (o, &m) in dst.iter_mut().zip(src.iter()) {
                        *o = (m as f64 * scale) as f32;
                    }
                }
            }
        }
        out
    }

    /// Full matrix multiply through the bfp datapath: per-tile int8 MatMul
    /// with exponent addition, partial tiles combined by aligned wide
    /// accumulation (the shifter + ACC path), final result dequantized.
    ///
    /// This is the functional twin of what the cycle simulator in `bfp-pu`
    /// computes; the two are cross-checked in integration tests.
    ///
    /// # Panics
    /// Panics on dimension or block-size mismatch; production callers
    /// should prefer [`BfpMatrix::try_matmul`].
    pub fn matmul(&self, rhs: &BfpMatrix) -> MatF32 {
        self.try_matmul(rhs)
            .unwrap_or_else(|e| panic!("matmul: {e}"))
    }

    /// Fallible twin of [`BfpMatrix::matmul`]: dimension and block-size
    /// mismatches come back as typed errors instead of panics.
    pub fn try_matmul(&self, rhs: &BfpMatrix) -> Result<MatF32, ArithError> {
        self.check_compatible(rhs)?;
        let b = self.block;
        let mut out = MatF32::zeros(self.rows, rhs.cols);
        let mut wide = vec![0i64; b * b];
        for bi in 0..self.block_rows {
            for bj in 0..rhs.block_cols {
                // Accumulate over the K dimension with exponent alignment.
                let mut acc_exp = 0i32;
                let mut acc: Vec<i64> = vec![0; b * b];
                let mut first = true;
                for bk in 0..self.block_cols {
                    let x = self.block_at(bi, bk);
                    let y = rhs.block_at(bk, bj);
                    let pexp = x.exp as i32 + y.exp as i32;
                    // int8 tile MatMul into the wide buffer.
                    for i in 0..b {
                        for j in 0..b {
                            let mut s = 0i32;
                            for k in 0..b {
                                s += x.man[i * b + k] as i32 * y.man[k * b + j] as i32;
                            }
                            wide[i * b + j] = s as i64;
                        }
                    }
                    if first {
                        acc.copy_from_slice(&wide);
                        acc_exp = pexp;
                        first = false;
                    } else if pexp >= acc_exp {
                        let sh = (pexp - acc_exp) as u32;
                        for (a, &w) in acc.iter_mut().zip(wide.iter()) {
                            *a = shift_right_trunc(*a, sh) + w;
                        }
                        acc_exp = pexp;
                    } else {
                        let sh = (acc_exp - pexp) as u32;
                        for (a, &w) in acc.iter_mut().zip(wide.iter()) {
                            *a += shift_right_trunc(w, sh);
                        }
                    }
                }
                let scale = (acc_exp as f64).exp2();
                for i in 0..b {
                    for j in 0..b {
                        let (r, c) = (bi * b + i, bj * b + j);
                        if r < out.rows() && c < out.cols() {
                            out.set(r, c, (acc[i * b + j] as f64 * scale) as f32);
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    fn check_compatible(&self, rhs: &BfpMatrix) -> Result<(), ArithError> {
        if self.cols != rhs.rows {
            return Err(ArithError::DimensionMismatch {
                got: format!(
                    "lhs {}x{}, rhs {}x{}",
                    self.rows, self.cols, rhs.rows, rhs.cols
                ),
                expected: "lhs cols == rhs rows".into(),
            });
        }
        if self.block != rhs.block {
            return Err(ArithError::DimensionMismatch {
                got: format!("block {} vs {}", self.block, rhs.block),
                expected: "matching block sizes".into(),
            });
        }
        Ok(())
    }

    /// Flip `mask` bits of one block's shared exponent — the observable
    /// effect of an uncorrected upset in the exponent BRAM. Exposed so
    /// fault-injection demos and guardrail tests can corrupt a quantized
    /// matrix without reaching into its representation.
    pub fn corrupt_block_exp_for_test(&mut self, bi: usize, bj: usize, mask: u8) {
        assert!(bi < self.block_rows && bj < self.block_cols);
        let g = &mut self.blocks[bi * self.block_cols + bj];
        g.exp = (g.exp as u8 ^ mask) as i8;
    }

    /// Quantization fidelity against the original matrix.
    pub fn fidelity(&self, original: &MatF32) -> ErrorStats {
        let deq = self.dequantize();
        let mut stats = ErrorStats::new();
        stats.push_slices(deq.data(), original.data());
        stats
    }

    /// Chained matrix multiply: like [`BfpMatrix::matmul`], but the output
    /// stays in the bfp8 domain — each output tile is requantized by the
    /// on-chip quantizer unit (round-half-away shift of the wide mantissas)
    /// instead of being dequantized to f32. This is the path a compiler
    /// uses between back-to-back linear layers.
    ///
    /// # Panics
    /// Panics on dimension or block-size mismatch; production callers
    /// should prefer [`BfpMatrix::try_matmul_requant`].
    pub fn matmul_requant(&self, rhs: &BfpMatrix) -> BfpMatrix {
        self.try_matmul_requant(rhs)
            .unwrap_or_else(|e| panic!("matmul_requant: {e}"))
    }

    /// Fallible twin of [`BfpMatrix::matmul_requant`].
    pub fn try_matmul_requant(&self, rhs: &BfpMatrix) -> Result<BfpMatrix, ArithError> {
        self.check_compatible(rhs)?;
        let b = self.block;
        let mut blocks = Vec::with_capacity(self.block_rows * rhs.block_cols);
        let mut wide = vec![0i64; b * b];
        for bi in 0..self.block_rows {
            for bj in 0..rhs.block_cols {
                let mut acc_exp = 0i32;
                let mut acc: Vec<i64> = vec![0; b * b];
                let mut first = true;
                for bk in 0..self.block_cols {
                    let x = self.block_at(bi, bk);
                    let y = rhs.block_at(bk, bj);
                    let pexp = x.exp as i32 + y.exp as i32;
                    for i in 0..b {
                        for j in 0..b {
                            let mut s = 0i32;
                            for k in 0..b {
                                s += x.man[i * b + k] as i32 * y.man[k * b + j] as i32;
                            }
                            wide[i * b + j] = s as i64;
                        }
                    }
                    if first {
                        acc.copy_from_slice(&wide);
                        acc_exp = pexp;
                        first = false;
                    } else if pexp >= acc_exp {
                        let sh = (pexp - acc_exp) as u32;
                        for (a, &w) in acc.iter_mut().zip(wide.iter()) {
                            *a = shift_right_trunc(*a, sh) + w;
                        }
                        acc_exp = pexp;
                    } else {
                        let sh = (acc_exp - pexp) as u32;
                        for (a, &w) in acc.iter_mut().zip(wide.iter()) {
                            *a += shift_right_trunc(w, sh);
                        }
                    }
                }
                blocks.push(requantize_wide(&acc, acc_exp, b));
            }
        }
        Ok(BfpMatrix {
            rows: self.rows,
            cols: rhs.cols,
            block: b,
            block_rows: self.block_rows,
            block_cols: rhs.block_cols,
            blocks,
        })
    }
}

/// Requantize a wide-mantissa tile into a [`GenBlock`] (the quantizer
/// unit's shift-and-round datapath, mirroring `WideBlock::requantize`).
fn requantize_wide(man: &[i64], exp: i32, b: usize) -> GenBlock {
    let max_abs = man.iter().map(|&v| v.abs()).max().unwrap_or(0);
    if max_abs == 0 {
        return GenBlock {
            exp: 0,
            man: vec![0; b * b],
        };
    }
    let mut s = 0u32;
    while rounded_shift_i64(max_abs, s) > 127 {
        s += 1;
    }
    let out_exp = (exp + s as i32).clamp(i8::MIN as i32, i8::MAX as i32) as i8;
    GenBlock {
        exp: out_exp,
        man: man
            .iter()
            .map(|&v| rounded_shift_i64(v, s).clamp(-127, 127) as i8)
            .collect(),
    }
}

/// `round(v / 2^s)`, half away from zero (the quantizer's shift-round).
fn rounded_shift_i64(v: i64, s: u32) -> i64 {
    if s == 0 {
        return v;
    }
    if s >= 62 {
        return 0;
    }
    let half = 1i64 << (s - 1);
    if v >= 0 {
        (v + half) >> s
    } else {
        -((-v + half) >> s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(rows: usize, cols: usize) -> MatF32 {
        MatF32::from_fn(rows, cols, |i, j| ((i * cols + j) % 23) as f32 - 11.0)
    }

    #[test]
    fn reference_and_slice_tile_scans_agree() {
        // The optimized row-slice scan must match the kept reference scan
        // on every tile — exponents, mantissas, and the position of the
        // first non-finite error.
        let q = Quantizer::paper();
        for (rows, cols) in [(16, 16), (17, 23), (1, 7), (8, 64), (3, 3)] {
            let m = MatF32::from_fn(rows, cols, |i, j| {
                ((i * 31 + j * 7) as f32 * 0.37).sin() * ((i + j) as f32).exp2().min(1e30)
            });
            let fast = q.quantize(&m).unwrap();
            let reference = q.quantize_reference(&m).unwrap();
            assert_eq!(fast.dequantize(), reference.dequantize());
        }
        // Zero tiles and non-finite errors behave identically too.
        let mut m = MatF32::from_fn(20, 20, |_, _| 0.0);
        m.set(13, 17, f32::NAN);
        let fast = q.quantize(&m).unwrap_err();
        let reference = q.quantize_reference(&m).unwrap_err();
        assert_eq!(format!("{fast:?}"), format!("{reference:?}"));
    }

    #[test]
    fn quantize_dequantize_exact_for_small_integers() {
        let m = ramp(16, 16);
        let q = Quantizer::paper().quantize(&m).unwrap();
        assert_eq!(q.dequantize(), m, "integers within ±127 are exact at exp 0");
    }

    #[test]
    fn grid_shape_includes_padding() {
        let m = ramp(10, 13);
        let q = Quantizer::paper().quantize(&m).unwrap();
        assert_eq!(q.grid(), (2, 2));
        assert_eq!(q.rows(), 10);
        assert_eq!(q.cols(), 13);
    }

    #[test]
    fn padded_region_is_zero_mantissa() {
        let m = ramp(9, 9);
        let q = Quantizer::paper().quantize(&m).unwrap();
        let edge = q.block_at(1, 1);
        // Only element (0,0) of the bottom-right block is real data.
        for idx in 1..64 {
            if idx % 8 != 0 && idx / 8 != 0 {
                assert_eq!(edge.man[idx], 0);
            }
        }
    }

    #[test]
    fn matmul_matches_reference_for_exact_inputs() {
        let a = ramp(16, 24);
        let b = ramp(24, 8);
        let qa = Quantizer::paper().quantize(&a).unwrap();
        let qb = Quantizer::paper().quantize(&b).unwrap();
        let got = qa.matmul(&qb);
        let want = a.matmul(&b);
        // Inputs are exact under quantization; per-tile products are exact;
        // alignment may truncate only when exponents differ — here all
        // blocks share exp 0, so the result is exact.
        assert_eq!(got, want);
    }

    #[test]
    fn matmul_non_multiple_dimensions() {
        let a = ramp(11, 13);
        let b = ramp(13, 7);
        let qa = Quantizer::paper().quantize(&a).unwrap();
        let qb = Quantizer::paper().quantize(&b).unwrap();
        let got = qa.matmul(&qb);
        assert_eq!(got.rows(), 11);
        assert_eq!(got.cols(), 7);
        let want = a.matmul(&b);
        for i in 0..11 {
            for j in 0..7 {
                assert_eq!(got.get(i, j), want.get(i, j), "({i},{j})");
            }
        }
    }

    #[test]
    fn matmul_quantization_noise_is_bounded() {
        // Smooth random-ish values: the bfp8 result should track the f32
        // reference within the usual 8-bit SQNR envelope (> 30 dB).
        let a = MatF32::from_fn(32, 32, |i, j| (i as f32 * 0.37 + j as f32 * 0.11).sin());
        let b = MatF32::from_fn(32, 32, |i, j| (i as f32 * 0.13 - j as f32 * 0.29).cos());
        let qa = Quantizer::paper().quantize(&a).unwrap();
        let qb = Quantizer::paper().quantize(&b).unwrap();
        let got = qa.matmul(&qb);
        let want = a.matmul(&b);
        let mut stats = ErrorStats::new();
        stats.push_slices(got.data(), want.data());
        assert!(stats.sqnr_db() > 30.0, "SQNR too low: {stats}");
    }

    #[test]
    fn smaller_blocks_quantize_more_accurately() {
        // A matrix with strong per-region dynamic range: smaller blocks
        // isolate the outliers and get better SQNR.
        let m = MatF32::from_fn(32, 32, |i, j| {
            let base = ((i * 31 + j * 17) % 97) as f32 / 97.0 - 0.5;
            if (i / 4 + j / 4) % 5 == 0 {
                base * 100.0
            } else {
                base
            }
        });
        let q4 = Quantizer::with_block(4).quantize(&m).unwrap().fidelity(&m);
        let q16 = Quantizer::with_block(16).quantize(&m).unwrap().fidelity(&m);
        assert!(
            q4.sqnr_db() > q16.sqnr_db(),
            "4x4 ({:.1} dB) should beat 16x16 ({:.1} dB)",
            q4.sqnr_db(),
            q16.sqnr_db()
        );
    }

    #[test]
    fn truncate_mode_never_beats_rne() {
        let m = MatF32::from_fn(24, 24, |i, j| ((i * j) as f32 * 0.013).sin() * 3.0);
        let rne = Quantizer {
            round: RoundMode::NearestEven,
            ..Quantizer::default()
        }
        .quantize(&m)
        .unwrap()
        .fidelity(&m);
        let trunc = Quantizer {
            round: RoundMode::Truncate,
            ..Quantizer::default()
        }
        .quantize(&m)
        .unwrap()
        .fidelity(&m);
        assert!(rne.sqnr_db() >= trunc.sqnr_db());
    }

    #[test]
    fn non_finite_input_is_reported_with_position() {
        let mut m = ramp(8, 8);
        m.set(2, 5, f32::INFINITY);
        let err = Quantizer::paper().quantize(&m).unwrap_err();
        assert_eq!(err, ArithError::NonFinite { at: (2, 5) });
    }

    #[test]
    fn block8_view_matches_generic_block() {
        let m = ramp(8, 8);
        let q = Quantizer::paper().quantize(&m).unwrap();
        let b8 = q.block8_at(0, 0);
        let g = q.block_at(0, 0);
        assert_eq!(b8.exp, g.exp);
        assert_eq!(b8.man[3][4], g.man[3 * 8 + 4]);
    }

    #[test]
    #[should_panic(expected = "8x8")]
    fn block8_view_requires_block_eight() {
        let m = ramp(8, 8);
        let q = Quantizer::with_block(4).quantize(&m).unwrap();
        let _ = q.block8_at(0, 0);
    }

    #[test]
    fn narrower_mantissas_monotonically_lose_sqnr() {
        let m = MatF32::from_fn(32, 32, |i, j| ((i * 3 + j * 5) as f32 * 0.07).sin() * 2.0);
        let mut prev = f64::INFINITY;
        for bits in (3..=8).rev() {
            let s = Quantizer::with_man_bits(bits)
                .quantize(&m)
                .unwrap()
                .fidelity(&m);
            assert!(
                s.sqnr_db() < prev,
                "{bits}-bit SQNR {:.1} should be below the next width up",
                s.sqnr_db()
            );
            // Roughly 6 dB per bit: sanity-check the envelope.
            assert!(
                s.sqnr_db() > 6.0 * (bits as f64 - 2.0) - 6.0,
                "{bits} bits: {s}"
            );
            prev = s.sqnr_db();
        }
    }

    #[test]
    fn mantissa_clamp_respects_width() {
        let m = MatF32::from_fn(8, 8, |i, j| (i * 8 + j) as f32 - 31.0);
        let q = Quantizer::with_man_bits(4).quantize(&m).unwrap();
        let max = q
            .block_at(0, 0)
            .man
            .iter()
            .map(|&v| (v as i32).abs())
            .max()
            .unwrap();
        assert!(max <= 7, "4-bit mantissas stay within ±7, got {max}");
        assert!(max >= 4, "range should be used");
    }

    #[test]
    #[should_panic(expected = "2..=8")]
    fn mantissa_width_bounds_checked() {
        Quantizer::with_man_bits(9);
    }

    #[test]
    fn stochastic_rounding_is_unbiased_where_rne_is_not() {
        // A constant tile at 30% of a quantization step: RNE collapses
        // every element the same way (systematic bias); stochastic rounding
        // preserves the mean. Values ~100.3 give a step of 1 (exp 0).
        let step_frac = 0.3f32;
        let m = MatF32::from_fn(64, 64, |_, _| 100.0 + step_frac);
        let rne = Quantizer {
            round: RoundMode::NearestEven,
            ..Quantizer::default()
        }
        .quantize(&m)
        .unwrap()
        .dequantize();
        let sto = Quantizer {
            round: RoundMode::Stochastic,
            ..Quantizer::default()
        }
        .quantize(&m)
        .unwrap()
        .dequantize();

        let mean = |x: &MatF32| x.data().iter().map(|&v| v as f64).sum::<f64>() / 4096.0;
        let rne_bias = (mean(&rne) - (100.0 + step_frac as f64)).abs();
        let sto_bias = (mean(&sto) - (100.0 + step_frac as f64)).abs();
        assert!(
            rne_bias > 0.25,
            "RNE is systematically biased here: {rne_bias}"
        );
        assert!(
            sto_bias < 0.05,
            "stochastic rounding stays unbiased: {sto_bias}"
        );
        // And it is deterministic (hash-based, not RNG-state-based).
        let sto2 = Quantizer {
            round: RoundMode::Stochastic,
            ..Quantizer::default()
        }
        .quantize(&m)
        .unwrap()
        .dequantize();
        assert_eq!(sto, sto2);
    }

    #[test]
    fn stochastic_rounding_stays_within_one_step() {
        let m = MatF32::from_fn(16, 16, |i, j| ((i * 16 + j) as f32 * 0.37).sin() * 5.0);
        let q = Quantizer {
            round: RoundMode::Stochastic,
            ..Quantizer::default()
        }
        .quantize(&m)
        .unwrap();
        let step = (q.block_at(0, 0).exp as f64).exp2();
        let back = q.dequantize();
        for (a, b) in back.data().iter().zip(m.data()) {
            assert!((*a as f64 - *b as f64).abs() <= step + 1e-9);
        }
    }

    #[test]
    fn requantized_chain_tracks_f32_chain() {
        // A*B*C with on-chip requantization between the GEMMs stays close
        // to the f32 reference chain.
        let a = MatF32::from_fn(16, 16, |i, j| ((i * 3 + j) as f32 * 0.11).sin());
        let b = MatF32::from_fn(16, 16, |i, j| ((i + j * 5) as f32 * 0.07).cos());
        let c = MatF32::from_fn(16, 16, |i, j| ((i as f32 * 2.0 - j as f32) * 0.05).sin());
        let q = Quantizer::paper();
        let (qa, qb, qc) = (
            q.quantize(&a).unwrap(),
            q.quantize(&b).unwrap(),
            q.quantize(&c).unwrap(),
        );
        let chained = qa.matmul_requant(&qb).matmul(&qc);
        let reference = a.matmul(&b).matmul(&c);
        let mut s = ErrorStats::new();
        s.push_slices(chained.data(), reference.data());
        assert!(s.sqnr_db() > 25.0, "chained requantized GEMM: {s}");
    }

    #[test]
    fn requantize_roundtrip_is_stable() {
        // Requantizing exact small-integer products loses nothing.
        let a = ramp(16, 16);
        let b = ramp(16, 16);
        let q = Quantizer::paper();
        let (qa, qb) = (q.quantize(&a).unwrap(), q.quantize(&b).unwrap());
        let exact = qa.matmul(&qb);
        let req = qa.matmul_requant(&qb).dequantize();
        // Requantization keeps 8 bits per block: the step is at most
        // 2·max/127, so the half-step rounding error is ≤ max/127 — use a
        // two-step margin.
        let bound = exact.max_abs() / 63.0;
        for i in 0..16 {
            for j in 0..16 {
                assert!(
                    (req.get(i, j) - exact.get(i, j)).abs() <= bound,
                    "({i},{j}): {} vs {}",
                    req.get(i, j),
                    exact.get(i, j)
                );
            }
        }
    }

    #[test]
    fn matmul_with_mixed_block_exponents_aligns() {
        // Left half large values, right half small values: different K-tiles
        // produce different product exponents, exercising the alignment path.
        let a = MatF32::from_fn(8, 16, |_, j| if j < 8 { 1000.0 } else { 0.001 });
        let b = MatF32::from_fn(16, 8, |i, _| if i < 8 { 0.5 } else { 2.0 });
        let qa = Quantizer::paper().quantize(&a).unwrap();
        let qb = Quantizer::paper().quantize(&b).unwrap();
        let got = qa.matmul(&qb);
        let want = a.matmul(&b); // 8*1000*0.5 + 8*0.001*2 = 4000.016
        for i in 0..8 {
            for j in 0..8 {
                let rel = (got.get(i, j) - want.get(i, j)).abs() / want.get(i, j);
                assert!(
                    rel < 0.01,
                    "({i},{j}): got {} want {}",
                    got.get(i, j),
                    want.get(i, j)
                );
            }
        }
    }
}
