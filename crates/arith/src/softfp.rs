//! Software decomposition of IEEE-754 single precision the way the hardware
//! sees it: sign fused into a signed-magnitude 24-bit mantissa (hidden bit
//! made explicit) plus an 8-bit biased exponent.
//!
//! The paper's processing unit stores each fp32 operand in four byte-wide
//! BRAMs: three mantissa slices `man(0..3)` of 8 bits each and one exponent
//! byte (Fig. 4). [`SoftFp32`] is exactly that representation.
//!
//! Subnormal inputs are flushed to zero (FTZ), which matches the behaviour of
//! the modelled datapath: the exponent unit has no gradual-underflow path.
//! Infinities and NaNs are propagated symbolically by the operations in
//! [`crate::fpmul`] / [`crate::fpadd`] before the sliced datapath is entered.

/// Number of explicit mantissa bits in fp32 (not counting the hidden bit).
pub const FRAC_BITS: u32 = 23;
/// Full mantissa width once the hidden bit is made explicit.
pub const MAN_BITS: u32 = 24;
/// IEEE-754 single precision exponent bias.
pub const BIAS: i32 = 127;

/// An unpacked fp32 value in the hardware's buffer layout: signed-magnitude
/// 24-bit mantissa + biased exponent.
///
/// Invariants (checked in debug builds):
/// * `man == 0` iff the value is zero, in which case `exp == 0`;
/// * otherwise `man` has bit 23 set (normalised) and `1 <= exp <= 254`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftFp32 {
    /// Sign bit; `true` means negative.
    pub sign: bool,
    /// Biased exponent, `0..=254` (255 ⇒ inf/NaN never reaches here).
    pub exp: i32,
    /// 24-bit magnitude with explicit hidden bit, or 0 for zero.
    pub man: u32,
}

impl SoftFp32 {
    /// The canonical +0.0 encoding.
    pub const ZERO: SoftFp32 = SoftFp32 {
        sign: false,
        exp: 0,
        man: 0,
    };

    /// Unpack a finite `f32`. Subnormals are flushed to (signed) zero.
    ///
    /// # Panics
    /// Panics if `x` is infinite or NaN; callers handle those before the
    /// sliced datapath (as the hardware's control logic would).
    #[inline]
    pub fn unpack(x: f32) -> Self {
        assert!(
            x.is_finite(),
            "SoftFp32::unpack requires a finite input, got {x}"
        );
        let bits = x.to_bits();
        let sign = bits >> 31 == 1;
        let exp = ((bits >> FRAC_BITS) & 0xff) as i32;
        let frac = bits & 0x7f_ffff;
        if exp == 0 {
            // Zero or subnormal: flush to zero, preserving the sign.
            return SoftFp32 {
                sign,
                exp: 0,
                man: 0,
            };
        }
        SoftFp32 {
            sign,
            exp,
            man: (1 << FRAC_BITS) | frac,
        }
    }

    /// Pack back into an `f32`. Exponent overflow saturates to ±inf and
    /// underflow flushes to ±0, mirroring the hardware's clamping.
    #[inline]
    pub fn pack(self) -> f32 {
        if self.man == 0 {
            return if self.sign { -0.0 } else { 0.0 };
        }
        debug_assert!(
            self.man >> FRAC_BITS == 1,
            "mantissa not normalised: {:#x}",
            self.man
        );
        if self.exp >= 255 {
            return if self.sign {
                f32::NEG_INFINITY
            } else {
                f32::INFINITY
            };
        }
        if self.exp <= 0 {
            // FTZ on underflow.
            return if self.sign { -0.0 } else { 0.0 };
        }
        let bits =
            ((self.sign as u32) << 31) | ((self.exp as u32) << FRAC_BITS) | (self.man & 0x7f_ffff);
        f32::from_bits(bits)
    }

    /// The three 8-bit mantissa slices, least-significant first:
    /// `man(i) = man[8i+7 : 8i]` (paper Eqn. 5).
    #[inline]
    pub fn slices(self) -> [u8; 3] {
        [
            (self.man & 0xff) as u8,
            ((self.man >> 8) & 0xff) as u8,
            ((self.man >> 16) & 0xff) as u8,
        ]
    }

    /// Rebuild the 24-bit mantissa from its slices (inverse of [`slices`]).
    ///
    /// [`slices`]: SoftFp32::slices
    pub fn from_slices(sign: bool, exp: i32, s: [u8; 3]) -> Self {
        let man = (s[0] as u32) | ((s[1] as u32) << 8) | ((s[2] as u32) << 16);
        SoftFp32 { sign, exp, man }
    }

    /// True if this encodes (signed) zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.man == 0
    }

    /// The real value as `f64` (useful for exact reference computations).
    pub fn to_f64(self) -> f64 {
        if self.man == 0 {
            return 0.0;
        }
        let mag = self.man as f64 * (self.exp - BIAS - FRAC_BITS as i32).exp2_f64();
        if self.sign {
            -mag
        } else {
            mag
        }
    }
}

/// Small helper: exact power-of-two scaling for `f64` reference math.
trait Exp2F64 {
    fn exp2_f64(self) -> f64;
}

impl Exp2F64 for i32 {
    fn exp2_f64(self) -> f64 {
        (self as f64).exp2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple_values() {
        for &x in &[
            0.0f32,
            1.0,
            -1.0,
            1.5,
            -2.25,
            3.375e8,
            -7.25e-12,
            f32::MAX,
            f32::MIN_POSITIVE,
        ] {
            assert_eq!(SoftFp32::unpack(x).pack(), x, "roundtrip failed for {x}");
        }
    }

    #[test]
    fn subnormals_flush_to_zero() {
        let sub = f32::from_bits(0x0000_0001); // smallest positive subnormal
        let u = SoftFp32::unpack(sub);
        assert!(u.is_zero());
        assert_eq!(u.pack(), 0.0);
        let neg_sub = f32::from_bits(0x8000_0001);
        let u = SoftFp32::unpack(neg_sub);
        assert!(u.is_zero());
        assert!(u.sign);
        assert_eq!(u.pack().to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn hidden_bit_is_explicit() {
        let u = SoftFp32::unpack(1.0);
        assert_eq!(u.man, 1 << 23);
        assert_eq!(u.exp, 127);
        assert!(!u.sign);
    }

    #[test]
    fn slices_reassemble() {
        for &x in &[1.0f32, -123.456, 9.87e20, 1.1754944e-38] {
            let u = SoftFp32::unpack(x);
            let s = u.slices();
            let r = SoftFp32::from_slices(u.sign, u.exp, s);
            assert_eq!(r, u);
        }
    }

    #[test]
    fn slice_order_is_little_endian() {
        // mantissa 0xABCDEF -> slices [0xEF, 0xCD, 0xAB]
        let u = SoftFp32 {
            sign: false,
            exp: 127,
            man: 0xABCDEF,
        };
        assert_eq!(u.slices(), [0xEF, 0xCD, 0xAB]);
    }

    #[test]
    fn pack_saturates_exponent_overflow() {
        let u = SoftFp32 {
            sign: false,
            exp: 300,
            man: 1 << 23,
        };
        assert_eq!(u.pack(), f32::INFINITY);
        let u = SoftFp32 {
            sign: true,
            exp: 255,
            man: 1 << 23,
        };
        assert_eq!(u.pack(), f32::NEG_INFINITY);
    }

    #[test]
    fn pack_flushes_exponent_underflow() {
        let u = SoftFp32 {
            sign: false,
            exp: 0,
            man: 1 << 23,
        };
        assert_eq!(u.pack(), 0.0);
        let u = SoftFp32 {
            sign: true,
            exp: -5,
            man: 1 << 23,
        };
        assert_eq!(u.pack().to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn unpack_rejects_nan() {
        SoftFp32::unpack(f32::NAN);
    }

    #[test]
    fn to_f64_matches_f32_value() {
        for &x in &[1.0f32, -0.375, 6.02e23, -1.6e-19] {
            let u = SoftFp32::unpack(x);
            assert_eq!(u.to_f64(), x as f64);
        }
    }
}
