//! 8-bit block floating point (bfp8) blocks and their arithmetic
//! (paper Eqns. 1–3).
//!
//! A [`BfpBlock`] is an 8×8 tile whose 64 elements share one 8-bit
//! two's-complement exponent; each element stores its own 8-bit
//! two's-complement mantissa. `val_ij = 2^exp × man_ij`.
//!
//! * Block MatMul ([`BfpBlock::matmul`]) adds exponents and performs an int8
//!   matrix multiply, yielding a [`WideBlock`] whose mantissas are at most
//!   18 bits — exactly what the systolic array's column cascade produces.
//! * Partial blocks are combined with exponent alignment in a [`BlockAcc`],
//!   mirroring the shifter + PSU-buffer + ACC path at the bottom of each
//!   column.

use crate::error::ArithError;
use crate::int8::round_i8_rne;

/// Side length of the two-dimensional bfp block (the paper fixes 8×8, which
/// also sets the systolic array to 8 rows × 8 columns).
pub const BLOCK: usize = 8;

/// Width of the PSU/ACC accumulator datapath in bits (the DSP48E2 P register).
pub const ACC_BITS: u32 = 48;

/// One 8×8 bfp8 block: shared exponent + int8 mantissas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BfpBlock {
    /// Shared exponent (8-bit two's complement in hardware).
    pub exp: i8,
    /// Row-major 8-bit mantissas; `man[i][j]` is row `i`, column `j`.
    pub man: [[i8; BLOCK]; BLOCK],
}

impl BfpBlock {
    /// The all-zero block.
    pub const ZERO: BfpBlock = BfpBlock {
        exp: 0,
        man: [[0; BLOCK]; BLOCK],
    };

    /// Quantize an 8×8 tile of finite `f32` values to bfp8 with
    /// round-to-nearest-even mantissas.
    ///
    /// The shared exponent is the smallest `e` such that every
    /// `round(v / 2^e)` fits in `[-127, 127]` (symmetric clamp, so the
    /// round-trip is sign-symmetric, as the paper's quantizer unit does).
    ///
    /// # Panics
    /// Panics on non-finite input; use [`BfpBlock::try_quantize`] to get an
    /// error instead.
    pub fn quantize(tile: &[[f32; BLOCK]; BLOCK]) -> BfpBlock {
        Self::try_quantize(tile).expect("bfp8 quantization failed")
    }

    /// Fallible version of [`BfpBlock::quantize`].
    pub fn try_quantize(tile: &[[f32; BLOCK]; BLOCK]) -> Result<BfpBlock, ArithError> {
        let mut max_abs = 0f64;
        for (i, row) in tile.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if !v.is_finite() {
                    return Err(ArithError::NonFinite { at: (i, j) });
                }
                max_abs = max_abs.max((v as f64).abs());
            }
        }
        if max_abs == 0.0 {
            return Ok(BfpBlock::ZERO);
        }
        // Initial guess: place max_abs around the top of the mantissa range.
        let mut exp = (max_abs.log2().floor() as i32) - 6;
        // log2/floor can be off by one at binade edges; fix up exactly.
        while (max_abs * pow2(-exp)).round() > 127.0 {
            exp += 1;
        }
        while exp > i8::MIN as i32 + 1 && (max_abs * pow2(-(exp - 1))).round() <= 127.0 {
            exp -= 1;
        }
        if exp > i8::MAX as i32 {
            return Err(ArithError::ExponentOverflow { exp });
        }
        let exp = exp.max(i8::MIN as i32) as i8;
        let scale = pow2(-(exp as i32));
        let mut man = [[0i8; BLOCK]; BLOCK];
        for i in 0..BLOCK {
            for j in 0..BLOCK {
                man[i][j] = round_i8_rne(tile[i][j] as f64 * scale);
            }
        }
        Ok(BfpBlock { exp, man })
    }

    /// Decode back to `f32` values.
    pub fn to_f32(&self) -> [[f32; BLOCK]; BLOCK] {
        let scale = pow2(self.exp as i32);
        let mut out = [[0f32; BLOCK]; BLOCK];
        for i in 0..BLOCK {
            for j in 0..BLOCK {
                out[i][j] = (self.man[i][j] as f64 * scale) as f32;
            }
        }
        out
    }

    /// Block matrix multiply (paper Eqn. 2): int8 exponent addition plus an
    /// int8 8×8×8 MatMul. Exact — the wide mantissas are ≤ 2^17 in magnitude.
    pub fn matmul(&self, rhs: &BfpBlock) -> WideBlock {
        let mut man = [[0i32; BLOCK]; BLOCK];
        for i in 0..BLOCK {
            for j in 0..BLOCK {
                let mut acc = 0i32;
                for k in 0..BLOCK {
                    acc += self.man[i][k] as i32 * rhs.man[k][j] as i32;
                }
                man[i][j] = acc;
            }
        }
        WideBlock {
            exp: self.exp as i32 + rhs.exp as i32,
            man: man.map(|r| r.map(|v| v as i64)),
        }
    }

    /// Element-wise block addition with exponent alignment (paper Eqn. 3).
    /// The smaller-exponent operand's mantissas are shifted right
    /// (truncating), exactly like the column shifter.
    pub fn add(&self, rhs: &BfpBlock) -> WideBlock {
        let (hi, lo) = if self.exp >= rhs.exp {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let shift = (hi.exp - lo.exp) as u32;
        let mut man = [[0i64; BLOCK]; BLOCK];
        for i in 0..BLOCK {
            for j in 0..BLOCK {
                let aligned = shift_right_trunc(lo.man[i][j] as i64, shift);
                man[i][j] = hi.man[i][j] as i64 + aligned;
            }
        }
        WideBlock {
            exp: hi.exp as i32,
            man,
        }
    }
}

/// A block with wide (accumulator-width) mantissas: the product of a block
/// MatMul or the running value inside the PSU buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WideBlock {
    /// Exponent of the wide mantissas (sum of operand exponents for MatMul).
    pub exp: i32,
    /// Row-major wide mantissas.
    pub man: [[i64; BLOCK]; BLOCK],
}

impl WideBlock {
    /// The all-zero wide block.
    pub const ZERO: WideBlock = WideBlock {
        exp: 0,
        man: [[0; BLOCK]; BLOCK],
    };

    /// Decode to `f32` values.
    pub fn to_f32(&self) -> [[f32; BLOCK]; BLOCK] {
        let scale = pow2(self.exp);
        let mut out = [[0f32; BLOCK]; BLOCK];
        for i in 0..BLOCK {
            for j in 0..BLOCK {
                out[i][j] = (self.man[i][j] as f64 * scale) as f32;
            }
        }
        out
    }

    /// Requantize the wide mantissas back into a bfp8 block (what the
    /// quantizer unit does before results re-enter the X/Y buffers).
    pub fn requantize(&self) -> BfpBlock {
        let mut max_abs = 0i64;
        for row in &self.man {
            for &v in row {
                max_abs = max_abs.max(v.abs());
            }
        }
        if max_abs == 0 {
            return BfpBlock::ZERO;
        }
        // Smallest extra shift s with round(max_abs / 2^s) <= 127.
        let mut s = 0u32;
        while rounded_shift(max_abs, s) > 127 {
            s += 1;
        }
        let exp = (self.exp + s as i32).clamp(i8::MIN as i32, i8::MAX as i32) as i8;
        let mut man = [[0i8; BLOCK]; BLOCK];
        for i in 0..BLOCK {
            for j in 0..BLOCK {
                man[i][j] = rounded_shift(self.man[i][j], s).clamp(-127, 127) as i8;
            }
        }
        BfpBlock { exp, man }
    }
}

/// Accumulator over a stream of [`WideBlock`] partial products: the shifter +
/// PSU buffer + ACC at the bottom of the systolic columns.
///
/// Alignment keeps the larger exponent and shifts the smaller operand right,
/// truncating — the hardware shifter does not keep guard bits. Overflow
/// beyond the 48-bit datapath is reported, never silently wrapped.
#[derive(Debug, Clone, Copy)]
pub struct BlockAcc {
    value: WideBlock,
    any: bool,
}

impl Default for BlockAcc {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockAcc {
    /// An empty accumulator.
    pub fn new() -> Self {
        BlockAcc {
            value: WideBlock::ZERO,
            any: false,
        }
    }

    /// Add one partial block, aligning exponents (Eqn. 3 applied to the wide
    /// datapath).
    pub fn add(&mut self, block: &WideBlock) -> Result<(), ArithError> {
        if !self.any {
            self.value = *block;
            self.any = true;
            return Ok(());
        }
        let (hi_exp, shift_self, shift_other) = if self.value.exp >= block.exp {
            (self.value.exp, 0u32, (self.value.exp - block.exp) as u32)
        } else {
            (block.exp, (block.exp - self.value.exp) as u32, 0u32)
        };
        let limit = 1i64 << (ACC_BITS - 1);
        for i in 0..BLOCK {
            for j in 0..BLOCK {
                let a = shift_right_trunc(self.value.man[i][j], shift_self);
                let b = shift_right_trunc(block.man[i][j], shift_other);
                let sum = a + b;
                if sum >= limit || sum < -limit {
                    return Err(ArithError::AccumulatorOverflow);
                }
                self.value.man[i][j] = sum;
            }
        }
        self.value.exp = hi_exp;
        Ok(())
    }

    /// The accumulated block so far.
    pub fn value(&self) -> WideBlock {
        self.value
    }

    /// Whether anything has been accumulated.
    pub fn is_empty(&self) -> bool {
        !self.any
    }

    /// Reset to empty (new output tile).
    pub fn clear(&mut self) {
        *self = BlockAcc::new();
    }
}

/// Arithmetic shift right with truncation toward negative infinity for
/// non-negative shifts; shifts ≥ 63 collapse to the sign.
#[inline]
pub fn shift_right_trunc(v: i64, shift: u32) -> i64 {
    if shift >= 63 {
        if v < 0 {
            -1 // arithmetic shift keeps the sign bit
        } else {
            0
        }
    } else {
        v >> shift
    }
}

/// Exact `2^e` as `f64` for block scaling.
#[inline]
fn pow2(e: i32) -> f64 {
    (e as f64).exp2()
}

/// `round(v / 2^s)` with round-half-away semantics on the integer grid,
/// matching the quantizer's shift-and-round datapath.
#[inline]
fn rounded_shift(v: i64, s: u32) -> i64 {
    if s == 0 {
        return v;
    }
    if s >= 62 {
        return 0;
    }
    let half = 1i64 << (s - 1);
    if v >= 0 {
        (v + half) >> s
    } else {
        -((-v + half) >> s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile(f: impl Fn(usize, usize) -> f32) -> [[f32; BLOCK]; BLOCK] {
        let mut t = [[0f32; BLOCK]; BLOCK];
        for (i, row) in t.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = f(i, j);
            }
        }
        t
    }

    #[test]
    fn zero_tile_quantizes_to_zero_block() {
        let b = BfpBlock::quantize(&[[0.0; 8]; 8]);
        assert_eq!(b, BfpBlock::ZERO);
        assert_eq!(b.to_f32(), [[0.0; 8]; 8]);
    }

    #[test]
    fn quantize_uses_full_mantissa_range() {
        let t = tile(|i, j| (i * 8 + j) as f32 - 32.0);
        let b = BfpBlock::quantize(&t);
        let max_man = b
            .man
            .iter()
            .flatten()
            .map(|&m| (m as i32).abs())
            .max()
            .unwrap();
        assert!(
            max_man >= 64,
            "mantissa range underused: max |man| = {max_man}"
        );
        assert!(max_man <= 127);
    }

    #[test]
    fn quantize_roundtrip_error_is_half_step() {
        let t = tile(|i, j| (i as f32 * 1.7 - j as f32 * 0.3).sin() * 5.0);
        let b = BfpBlock::quantize(&t);
        let step = (b.exp as f64).exp2();
        let back = b.to_f32();
        for i in 0..8 {
            for j in 0..8 {
                let err = (back[i][j] as f64 - t[i][j] as f64).abs();
                assert!(
                    err <= step / 2.0 + 1e-12,
                    "err {err} > step/2 {}",
                    step / 2.0
                );
            }
        }
    }

    #[test]
    fn quantize_exact_for_representable_values() {
        // Integers up to 127 are exactly representable with exp = 0.
        let t = tile(|i, j| (i as f32) * (j as f32));
        let b = BfpBlock::quantize(&t);
        assert_eq!(b.to_f32(), t);
    }

    #[test]
    fn quantize_rejects_nan() {
        let mut t = [[1.0f32; 8]; 8];
        t[3][4] = f32::NAN;
        assert_eq!(
            BfpBlock::try_quantize(&t).unwrap_err(),
            ArithError::NonFinite { at: (3, 4) }
        );
    }

    #[test]
    fn quantize_handles_full_f32_range() {
        // The 8-bit shared exponent covers all of fp32's dynamic range
        // (2^127 / 2^7 = 2^120 <= 127), so even f32::MAX quantizes cleanly.
        let t = [[f32::MAX; 8]; 8];
        let b = BfpBlock::quantize(&t);
        // Decode in f64: rounding up at the top binade (man 128 -> exp+1,
        // man 64) can land one step above f32::MAX, which is fine for the
        // exponent range but saturates an f32 decode.
        let back = b.man[0][0] as f64 * (b.exp as f64).exp2();
        assert!((back - f32::MAX as f64).abs() / (f32::MAX as f64) < 0.01);
        let t = [[f32::MIN_POSITIVE; 8]; 8];
        let b = BfpBlock::quantize(&t);
        // Tiny values may flush toward zero but must never blow up.
        assert!(b.to_f32()[0][0].abs() <= f32::MIN_POSITIVE * 2.0);
    }

    #[test]
    fn matmul_matches_float_reference_for_exact_inputs() {
        // Small integers are exact under quantization, so the block product
        // must match the real product exactly.
        let ta = tile(|i, j| ((i + j) % 5) as f32 - 2.0);
        let tb = tile(|i, j| ((i * 3 + j) % 7) as f32 - 3.0);
        let (a, b) = (BfpBlock::quantize(&ta), BfpBlock::quantize(&tb));
        let prod = a.matmul(&b).to_f32();
        for i in 0..8 {
            for j in 0..8 {
                let want: f32 = (0..8).map(|k| ta[i][k] * tb[k][j]).sum();
                assert_eq!(prod[i][j], want, "({i},{j})");
            }
        }
    }

    #[test]
    fn matmul_exponents_add() {
        let a = BfpBlock {
            exp: 3,
            man: [[1; 8]; 8],
        };
        let b = BfpBlock {
            exp: -5,
            man: [[1; 8]; 8],
        };
        let w = a.matmul(&b);
        assert_eq!(w.exp, -2);
        assert_eq!(w.man[0][0], 8);
    }

    #[test]
    fn matmul_worst_case_fits_wide_mantissa() {
        let a = BfpBlock {
            exp: 0,
            man: [[-128; 8]; 8],
        };
        let b = BfpBlock {
            exp: 0,
            man: [[-128; 8]; 8],
        };
        let w = a.matmul(&b);
        assert_eq!(w.man[0][0], 131072);
        assert!(w.man[0][0] < 1 << 18);
    }

    #[test]
    fn block_add_aligns_exponents() {
        let a = BfpBlock {
            exp: 2,
            man: [[16; 8]; 8],
        }; // 64.0 each
        let b = BfpBlock {
            exp: 0,
            man: [[12; 8]; 8],
        }; // 12.0 each
        let s = a.add(&b);
        assert_eq!(s.exp, 2);
        // 12 >> 2 = 3 -> 16 + 3 = 19 -> 19 * 4 = 76 = 64 + 12 exactly here.
        assert_eq!(s.man[0][0], 19);
        assert_eq!(s.to_f32()[0][0], 76.0);
    }

    #[test]
    fn block_add_truncates_shifted_bits() {
        let a = BfpBlock {
            exp: 3,
            man: [[1; 8]; 8],
        };
        let b = BfpBlock {
            exp: 0,
            man: [[7; 8]; 8],
        }; // 7 >> 3 = 0: lost
        let s = a.add(&b);
        assert_eq!(s.man[0][0], 1, "shifted-out bits must truncate");
    }

    #[test]
    fn block_add_is_commutative() {
        let a = BfpBlock {
            exp: 1,
            man: [[-7; 8]; 8],
        };
        let b = BfpBlock {
            exp: 4,
            man: [[9; 8]; 8],
        };
        assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn accumulator_sums_partial_products() {
        // Simulate C = A1*B1 + A2*B2 with exact integer tiles.
        let ta = tile(|i, j| ((i + 2 * j) % 4) as f32);
        let tb = tile(|i, j| ((3 * i + j) % 4) as f32 - 1.0);
        let (a, b) = (BfpBlock::quantize(&ta), BfpBlock::quantize(&tb));
        let mut acc = BlockAcc::new();
        acc.add(&a.matmul(&b)).unwrap();
        acc.add(&a.matmul(&b)).unwrap();
        let got = acc.value().to_f32();
        for i in 0..8 {
            for j in 0..8 {
                let want: f32 = (0..8).map(|k| ta[i][k] * tb[k][j]).sum::<f32>() * 2.0;
                assert_eq!(got[i][j], want);
            }
        }
    }

    #[test]
    fn accumulator_alignment_across_exponents() {
        let mut acc = BlockAcc::new();
        acc.add(&WideBlock {
            exp: 0,
            man: [[100; 8]; 8],
        })
        .unwrap();
        acc.add(&WideBlock {
            exp: 2,
            man: [[5; 8]; 8],
        })
        .unwrap();
        let v = acc.value();
        assert_eq!(v.exp, 2);
        assert_eq!(v.man[0][0], 100 / 4 + 5);
    }

    #[test]
    fn accumulator_detects_overflow() {
        // 2^46 + 2^46 = 2^47 exceeds the signed 48-bit range [-2^47, 2^47).
        let mut acc = BlockAcc::new();
        let big = WideBlock {
            exp: 0,
            man: [[(1i64 << 46); 8]; 8],
        };
        acc.add(&big).unwrap();
        assert_eq!(acc.add(&big).unwrap_err(), ArithError::AccumulatorOverflow);

        // 2^45 + 2^45 = 2^46 still fits.
        let mut acc = BlockAcc::new();
        let mid = WideBlock {
            exp: 0,
            man: [[(1i64 << 45); 8]; 8],
        };
        acc.add(&mid).unwrap();
        acc.add(&mid).unwrap();
        assert_eq!(acc.value().man[0][0], 1i64 << 46);
    }

    #[test]
    fn accumulator_clear_resets() {
        let mut acc = BlockAcc::new();
        acc.add(&WideBlock {
            exp: 0,
            man: [[1; 8]; 8],
        })
        .unwrap();
        assert!(!acc.is_empty());
        acc.clear();
        assert!(acc.is_empty());
        assert_eq!(acc.value(), WideBlock::ZERO);
    }

    #[test]
    fn requantize_recovers_block_scale() {
        let w = WideBlock {
            exp: -3,
            man: [[1000; 8]; 8],
        };
        let b = w.requantize();
        let back = b.to_f32();
        let want = 1000.0 * 0.125;
        assert!((back[0][0] - want).abs() / want < 0.01);
    }

    #[test]
    fn requantize_zero() {
        assert_eq!(WideBlock::ZERO.requantize(), BfpBlock::ZERO);
    }

    #[test]
    fn requantize_negative_values_round_symmetrically() {
        let mut man = [[0i64; 8]; 8];
        man[0][0] = 1000;
        man[0][1] = -1000;
        let b = WideBlock { exp: 0, man }.requantize();
        assert_eq!(b.man[0][0], -b.man[0][1]);
    }

    #[test]
    fn shift_right_trunc_extremes() {
        assert_eq!(shift_right_trunc(-1, 100), -1);
        assert_eq!(shift_right_trunc(12345, 100), 0);
        assert_eq!(shift_right_trunc(-8, 3), -1);
        assert_eq!(shift_right_trunc(8, 3), 1);
    }
}
