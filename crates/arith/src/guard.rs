//! Numeric guardrails: the detection half of the fault story.
//!
//! The hardware cannot observe a flipped bit directly, but corruption
//! leaves numeric fingerprints: NaN/Inf where the datapath only produces
//! finite values, mantissa saturation beyond what quantization allows,
//! and block round-trip errors exceeding the analytic bound for the
//! mantissa width. This module surfaces those fingerprints as typed
//! [`ArithError`]s so the recovery layer in `bfp-core` can retry tiles
//! or degrade a layer to fp32 instead of panicking.

use crate::error::ArithError;
use crate::matrix::MatF32;
use crate::quant::BfpMatrix;

/// Summary flags from scanning a matrix, hardware status-register style.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GuardFlags {
    /// Number of NaN elements.
    pub nan: u64,
    /// Number of ±Inf elements.
    pub inf: u64,
    /// Position of the first NaN, if any.
    pub first_nan: Option<(usize, usize)>,
    /// Position of the first ±Inf, if any.
    pub first_inf: Option<(usize, usize)>,
    /// Largest finite magnitude seen (overflow watermark).
    pub max_abs: f32,
}

impl GuardFlags {
    /// Whether the scan saw only finite values.
    pub fn clean(&self) -> bool {
        self.nan == 0 && self.inf == 0
    }

    /// Convert the flags into a typed error (NaN reported ahead of Inf,
    /// matching the severity order of the hardware status register).
    pub fn check(&self) -> Result<(), ArithError> {
        if let Some(at) = self.first_nan {
            return Err(ArithError::NaN { at });
        }
        if let Some(at) = self.first_inf {
            return Err(ArithError::NonFinite { at });
        }
        Ok(())
    }
}

/// Scan a matrix for NaN/Inf and the overflow watermark.
pub fn scan(m: &MatF32) -> GuardFlags {
    let mut flags = GuardFlags::default();
    for i in 0..m.rows() {
        for j in 0..m.cols() {
            let v = m.get(i, j);
            if v.is_nan() {
                flags.nan += 1;
                flags.first_nan.get_or_insert((i, j));
            } else if v.is_infinite() {
                flags.inf += 1;
                flags.first_inf.get_or_insert((i, j));
            } else {
                flags.max_abs = flags.max_abs.max(v.abs());
            }
        }
    }
    flags
}

/// Require every element of `m` to be finite.
pub fn check_finite(m: &MatF32) -> Result<(), ArithError> {
    scan(m).check()
}

/// How the quantizer treats mantissas that exceed the representable
/// range after rounding.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SaturationPolicy {
    /// Clamp silently to ±max (the hardware's behaviour).
    #[default]
    Saturate,
    /// Clamp, but fail with [`ArithError::Saturated`] if more than the
    /// given number of elements needed clamping — a cheap tripwire for
    /// corrupted shared exponents, which saturate whole blocks at once.
    Limit(u64),
}

impl SaturationPolicy {
    /// Apply the policy to a block's clamp count.
    pub fn check(&self, count: u64) -> Result<(), ArithError> {
        match self {
            SaturationPolicy::Saturate => Ok(()),
            SaturationPolicy::Limit(max) if count <= *max => Ok(()),
            SaturationPolicy::Limit(_) => Err(ArithError::Saturated { count }),
        }
    }
}

/// Verify every block of `q` reproduces `original` within the analytic
/// round-trip bound for its mantissa width: half a quantization step
/// (one full step for truncating modes), scaled by `slack`.
///
/// A healthy quantizer satisfies this by construction, so a violation
/// means the block was corrupted after quantization — typically a flipped
/// shared-exponent bit, which rescales all 64 elements at once.
pub fn check_block_bounds(
    q: &BfpMatrix,
    original: &MatF32,
    slack: f64,
) -> Result<(), ArithError> {
    let b = q.block();
    let (gbr, gbc) = q.grid();
    let deq = q.dequantize();
    for bi in 0..gbr {
        for bj in 0..gbc {
            // One quantization step at this block's shared exponent.
            let step = (q.block_at(bi, bj).exp as f64).exp2();
            let bound = step * slack;
            let mut worst = 0f64;
            for i in bi * b..((bi + 1) * b).min(original.rows()) {
                for j in bj * b..((bj + 1) * b).min(original.cols()) {
                    let err = (deq.get(i, j) as f64 - original.get(i, j) as f64).abs();
                    worst = worst.max(err);
                }
            }
            if worst > bound {
                return Err(ArithError::QuantBoundExceeded {
                    block: (bi, bj),
                    observed: worst,
                    bound,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::Quantizer;

    fn ramp(rows: usize, cols: usize) -> MatF32 {
        MatF32::from_fn(rows, cols, |i, j| ((i * cols + j) % 23) as f32 - 11.0)
    }

    #[test]
    fn scan_flags_nan_and_inf_with_positions() {
        let mut m = ramp(8, 8);
        m.set(1, 2, f32::NAN);
        m.set(3, 4, f32::INFINITY);
        let flags = scan(&m);
        assert!(!flags.clean());
        assert_eq!(flags.nan, 1);
        assert_eq!(flags.inf, 1);
        assert_eq!(flags.first_nan, Some((1, 2)));
        assert_eq!(flags.first_inf, Some((3, 4)));
        assert_eq!(flags.check(), Err(ArithError::NaN { at: (1, 2) }));
    }

    #[test]
    fn clean_scan_passes() {
        let flags = scan(&ramp(8, 8));
        assert!(flags.clean());
        assert!(flags.check().is_ok());
        assert_eq!(flags.max_abs, 11.0);
        assert!(check_finite(&ramp(4, 4)).is_ok());
    }

    #[test]
    fn saturation_policy_limits() {
        assert!(SaturationPolicy::Saturate.check(1_000_000).is_ok());
        assert!(SaturationPolicy::Limit(3).check(3).is_ok());
        assert_eq!(
            SaturationPolicy::Limit(3).check(4),
            Err(ArithError::Saturated { count: 4 })
        );
    }

    #[test]
    fn healthy_quantization_meets_block_bounds() {
        let m = MatF32::from_fn(16, 16, |i, j| ((i * 7 + j * 3) as f32 * 0.21).sin() * 4.2);
        let q = Quantizer::paper().quantize(&m).unwrap();
        // RNE: worst-case error is half a step; allow exactly that.
        assert!(check_block_bounds(&q, &m, 0.5).is_ok());
    }

    #[test]
    fn corrupted_exponent_trips_block_bound() {
        let m = MatF32::from_fn(16, 16, |i, j| ((i * 7 + j * 3) as f32 * 0.21).sin() * 4.2);
        let mut q = Quantizer::paper().quantize(&m).unwrap();
        // Flip a high bit of one block's shared exponent (what an
        // uncorrected BRAM upset does).
        q.corrupt_block_exp_for_test(1, 0, 0b0001_0000);
        let err = check_block_bounds(&q, &m, 0.5).unwrap_err();
        assert!(
            matches!(err, ArithError::QuantBoundExceeded { block: (1, 0), .. }),
            "{err}"
        );
    }
}
