//! IEEE-754 half precision (fp16) emulation — the comparison format for the
//! paper's premise that non-linear Transformer operations "require large
//! dynamic range and high precision" (§I), and the format of the ViA
//! accelerator in Table III.
//!
//! fp16 has a 5-bit exponent (max finite value 65504) and an 11-bit
//! significand. The `motivation` reproduction binary shows exactly how that
//! fails a softmax: `e^x` overflows fp16 for logits above ~11, while fp32
//! shrugs. Conversions round to nearest-even; subnormals are supported on
//! conversion (they matter for the underflow behaviour of `exp`).

/// Convert `f32` to fp16 bits (round-to-nearest-even, IEEE semantics).
pub fn f16_from_f32(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let frac = bits & 0x7f_ffff;

    if exp == 0xff {
        // Inf / NaN.
        return sign | 0x7c00 | if frac != 0 { 0x200 } else { 0 };
    }
    // Unbiased exponent.
    let e = exp - 127;
    if e > 15 {
        return sign | 0x7c00; // overflow -> inf
    }
    if e >= -14 {
        // Normal fp16: 10 fraction bits from 23, RNE.
        let mut h = ((e + 15) as u32) << 10 | (frac >> 13);
        let rem = frac & 0x1fff;
        if rem > 0x1000 || (rem == 0x1000 && h & 1 == 1) {
            h += 1; // may carry into the exponent, which is correct
        }
        return sign | h as u16;
    }
    if e >= -25 {
        // Subnormal fp16.
        let sig = 0x80_0000 | frac; // explicit hidden bit
        let shift = (-14 - e + 13) as u32;
        let mut h = sig >> shift;
        let rem = sig & ((1 << shift) - 1);
        let half = 1u32 << (shift - 1);
        if rem > half || (rem == half && h & 1 == 1) {
            h += 1;
        }
        return sign | h as u16;
    }
    sign // underflow -> signed zero
}

/// Convert fp16 bits to `f32` (exact).
pub fn f32_from_f16(h: u16) -> f32 {
    let sign = ((h as u32) & 0x8000) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let frac = (h & 0x3ff) as u32;
    let bits = if exp == 0x1f {
        sign | 0x7f80_0000 | (frac << 13) // inf / nan
    } else if exp == 0 {
        if frac == 0 {
            sign
        } else {
            // Subnormal: shift the MSB up to the hidden-bit position
            // (bit 10) and rebias.
            let lead = frac.leading_zeros() - 21;
            let e = 127 - 14 - lead;
            sign | (e << 23) | (((frac << lead) & 0x3ff) << 13)
        }
    } else {
        sign | ((exp + 127 - 15) << 23) | (frac << 13)
    };
    f32::from_bits(bits)
}

/// Round-trip an `f32` through fp16 (the "compute in fp16" model: every
/// intermediate value is stored at half precision).
#[inline]
pub fn as_f16(x: f32) -> f32 {
    f32_from_f16(f16_from_f32(x))
}

/// fp16 arithmetic by convert–compute–convert (correct for single ops
/// because fp32 is more than twice as precise as fp16).
pub mod ops {
    use super::as_f16;

    /// fp16 addition.
    pub fn add(a: f32, b: f32) -> f32 {
        as_f16(as_f16(a) + as_f16(b))
    }

    /// fp16 multiplication.
    pub fn mul(a: f32, b: f32) -> f32 {
        as_f16(as_f16(a) * as_f16(b))
    }

    /// fp16 exponential.
    pub fn exp(a: f32) -> f32 {
        as_f16(as_f16(a).exp())
    }

    /// fp16 division.
    pub fn div(a: f32, b: f32) -> f32 {
        as_f16(as_f16(a) / as_f16(b))
    }
}

/// Row softmax computed entirely in fp16 (no max subtraction — the naive
/// kernel that overflows, and even with max subtraction, loses mass).
pub fn softmax_row_f16(row: &mut [f32]) {
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = ops::exp(*v);
        sum = ops::add(sum, *v);
    }
    for v in row.iter_mut() {
        *v = ops::div(*v, sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exact_fp16_values() {
        for &x in &[0.0f32, 1.0, -1.0, 0.5, 2.0, 65504.0, -0.09375, 1024.0] {
            assert_eq!(as_f16(x), x, "fp16-exact value {x} must round-trip");
        }
    }

    #[test]
    fn conversion_rounds_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next fp16; RNE
        // picks the even (1.0).
        let x = 1.0 + 2f32.powi(-11);
        assert_eq!(as_f16(x), 1.0);
        // 1 + 3*2^-11 is halfway between 1+2^-10 (odd mantissa) and
        // 1+2^-9 (even mantissa); RNE picks the even side.
        let x = 1.0 + 3.0 * 2f32.powi(-11);
        assert_eq!(as_f16(x), 1.0 + 2f32.powi(-9));
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert_eq!(as_f16(70000.0), f32::INFINITY);
        assert_eq!(as_f16(-1e8), f32::NEG_INFINITY);
        assert_eq!(as_f16(65504.0), 65504.0, "largest finite fp16");
    }

    #[test]
    fn subnormals_convert_both_ways() {
        let tiny = 2f32.powi(-24); // smallest positive subnormal fp16
        assert_eq!(as_f16(tiny), tiny);
        // Exactly halfway between 0 and the smallest subnormal: RNE picks
        // the even side (zero).
        assert_eq!(as_f16(tiny / 2.0), 0.0);
        assert_eq!(as_f16(tiny * 0.75), tiny, "above halfway rounds up");
        assert_eq!(as_f16(2f32.powi(-26)), 0.0, "below half-subnormal flushes");
    }

    #[test]
    fn nan_propagates() {
        assert!(as_f16(f32::NAN).is_nan());
    }

    #[test]
    fn exhaustive_f16_roundtrip() {
        // Every finite fp16 bit pattern must round-trip bit-exactly
        // through f32 and back.
        for h in 0u16..=0xffff {
            let exp = (h >> 10) & 0x1f;
            if exp == 0x1f {
                continue; // inf/nan compare differently
            }
            let x = f32_from_f16(h);
            let back = f16_from_f32(x);
            // -0 and +0 keep their signs; everything else is exact.
            assert_eq!(back, h, "pattern {h:#06x} -> {x} -> {back:#06x}");
        }
    }

    #[test]
    fn softmax_overflows_in_fp16_for_large_logits() {
        // Logits of magnitude ~12 are routine in attention; e^12 = 162k
        // overflows fp16 -> the naive fp16 softmax produces NaN (inf/inf).
        let mut row = vec![12.0f32, 11.0, 10.0];
        softmax_row_f16(&mut row);
        assert!(
            row.iter().any(|v| v.is_nan()),
            "fp16 softmax must break on large logits: {row:?}"
        );
        // The fp32 reference handles the same row fine.
        let mut m = crate::matrix::MatF32::from_vec(1, 3, vec![12.0, 11.0, 10.0]);
        let mut sum = 0f64;
        for j in 0..3 {
            sum += (m.get(0, j) as f64).exp();
        }
        for j in 0..3 {
            let v = ((m.get(0, j) as f64).exp() / sum) as f32;
            m.set(0, j, v);
            assert!(v.is_finite());
        }
    }

    #[test]
    fn fp16_ops_roundtrip_through_the_format() {
        // Single ops computed in f32 then rounded are correctly-rounded
        // fp16 results (f32 is more than 2x as precise).
        assert_eq!(ops::add(1.0, 1.0), 2.0);
        assert_eq!(ops::mul(1.5, 2.0), 3.0);
        assert_eq!(ops::div(1.0, 3.0), as_f16(1.0 / 3.0));
        // Results land exactly on fp16 grid points.
        let v = ops::mul(1.2345, 6.789);
        assert_eq!(as_f16(v), v);
        let e = ops::exp(2.0);
        assert_eq!(as_f16(e), e);
    }

    #[test]
    fn fp16_ops_lose_precision_vs_fp32() {
        // Accumulating 2048 values of 1.0 in fp16 stalls at 2048 (ulp = 2
        // there), demonstrating the accumulation error LayerNorm suffers.
        let mut acc = 0.0f32;
        for _ in 0..4096 {
            acc = ops::add(acc, 1.0);
        }
        assert!(acc < 4096.0 / 2.0 + 100.0, "fp16 sum stalls: {acc}");
    }
}
