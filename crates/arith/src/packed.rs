//! Packed-layout bfp GEMM: the fast execution path of the bfp8 datapath.
//!
//! [`crate::quant::BfpMatrix`] keeps its tiles as a `Vec` of per-block
//! heap allocations and its reference kernel re-walks that grid on every
//! one of the O((M/b)·(K/b)·(N/b)) block visits. [`PackedBfp`] stores the
//! same quantized data in two flat, contiguous buffers:
//!
//! * one `i8` mantissa plane, **block-contiguous** — all `b×b` mantissas
//!   of a tile sit next to each other, tiles laid out row-major over the
//!   grid;
//! * one `i8` shared-exponent plane, one entry per tile.
//!
//! The right-hand operand is additionally stored **block-transposed**
//! (within every tile, column `j` of the original becomes a contiguous
//! run), so the innermost int8 dot product of the kernel reads both
//! operands at unit stride — exactly the access pattern the systolic
//! array's column cascade realises in hardware, and the pattern LLVM
//! auto-vectorises.
//!
//! The kernel itself ([`PackedBfp::matmul`]) fuses the per-(bi, bj)
//! exponent-alignment chain into the dot-product loop: no wide scratch
//! tile is written and re-read, and no block is ever copied out of the
//! grid. It is **bit-identical** to [`crate::quant::BfpMatrix::try_matmul`]
//! and therefore to the `bfp-pu` cycle simulator — the integer tile
//! products are exact, so fusing changes evaluation order only where
//! integer addition is associative. The equivalence is pinned by unit
//! tests here and by the cross-check proptests at the workspace root.
//!
//! Shard-level parallelism lives one layer up (`bfp_core::fastgemm`):
//! every (bi, bj) accumulation chain is independent, so block-rows can be
//! computed concurrently through [`PackedBfp::matmul_rows_into`] without
//! changing a single output bit.

use crate::bfp::shift_right_trunc;
use crate::error::ArithError;
use crate::matrix::MatF32;
use crate::quant::{BfpMatrix, Quantizer};

/// Which operand side a [`PackedBfp`] is laid out for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackSide {
    /// Left operand: tiles stored row-major (rows contiguous).
    Lhs,
    /// Right operand: tiles stored block-transposed (columns contiguous).
    Rhs,
}

/// A quantized matrix in the packed, kernel-ready layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedBfp {
    rows: usize,
    cols: usize,
    block: usize,
    block_rows: usize,
    block_cols: usize,
    side: PackSide,
    /// Per-tile shared exponents, grid row-major.
    exps: Vec<i8>,
    /// Block-contiguous mantissa plane; tile `(bi, bj)` occupies
    /// `[(bi·block_cols + bj)·b², …)`. Within a tile: row-major for
    /// [`PackSide::Lhs`], transposed (column-major) for [`PackSide::Rhs`].
    man: Vec<i8>,
}

impl PackedBfp {
    /// Pack a quantized matrix as a left operand.
    pub fn pack_lhs(m: &BfpMatrix) -> PackedBfp {
        Self::pack(m, PackSide::Lhs)
    }

    /// Pack a quantized matrix as a right operand (block-transposed).
    pub fn pack_rhs(m: &BfpMatrix) -> PackedBfp {
        Self::pack(m, PackSide::Rhs)
    }

    /// Quantize and pack in one step.
    pub fn quantize_lhs(q: &Quantizer, m: &MatF32) -> Result<PackedBfp, ArithError> {
        Ok(Self::pack_lhs(&q.quantize(m)?))
    }

    /// Quantize and pack the right operand in one step.
    pub fn quantize_rhs(q: &Quantizer, m: &MatF32) -> Result<PackedBfp, ArithError> {
        Ok(Self::pack_rhs(&q.quantize(m)?))
    }

    /// Fused quantize-and-pack for the left operand: f32 straight to the
    /// block-major i8 mantissa plane, no intermediate [`BfpMatrix`].
    ///
    /// Bit-identical (including error values and which error fires first)
    /// to [`PackedBfp::quantize_lhs`]: both paths share
    /// `Quantizer::tile_exp` / `Quantizer::round_elem` and walk tiles
    /// and elements in the same order. The composed path stays as the
    /// reference the equivalence tests pin this one against.
    pub fn quantize_pack_lhs(q: &Quantizer, m: &MatF32) -> Result<PackedBfp, ArithError> {
        Self::quantize_pack(q, m, PackSide::Lhs)
    }

    /// Fused quantize-and-pack for the right operand (block-transposed);
    /// see [`PackedBfp::quantize_pack_lhs`].
    pub fn quantize_pack_rhs(q: &Quantizer, m: &MatF32) -> Result<PackedBfp, ArithError> {
        Self::quantize_pack(q, m, PackSide::Rhs)
    }

    fn quantize_pack(q: &Quantizer, m: &MatF32, side: PackSide) -> Result<PackedBfp, ArithError> {
        let b = q.block;
        let br = m.rows().div_ceil(b);
        let bc = m.cols().div_ceil(b);
        let bb = b * b;
        let clamp = q.max_mag() as i8;
        let cols = m.cols();
        let data = m.data();
        let mut exps = Vec::with_capacity(br * bc);
        let mut man = vec![0i8; br * bc * bb];
        for bi in 0..br {
            let r0 = bi * b;
            let imax = b.min(m.rows().saturating_sub(r0));
            for bj in 0..bc {
                let c0 = bj * b;
                let exp = match q.tile_exp(m, r0, c0)? {
                    // All-zero tile: canonical exponent 0, mantissas stay 0.
                    None => {
                        exps.push(0);
                        continue;
                    }
                    Some(exp) => exp,
                };
                exps.push(exp);
                let scale = (-(exp as i32) as f64).exp2();
                let jmax = b.min(cols.saturating_sub(c0));
                let dst = &mut man[(bi * bc + bj) * bb..][..bb];
                let mut saturated = 0u64;
                for i in 0..imax {
                    let src = &data[(r0 + i) * cols + c0..][..jmax];
                    for (j, &v) in src.iter().enumerate() {
                        let (qv, sat) = q.round_elem(v, scale, r0 + i, c0 + j, clamp);
                        saturated += sat as u64;
                        dst[match side {
                            PackSide::Lhs => i * b + j,
                            PackSide::Rhs => j * b + i,
                        }] = qv;
                    }
                }
                crate::telemetry::note_saturated(saturated);
                q.saturation.check(saturated)?;
            }
        }
        Ok(PackedBfp {
            rows: m.rows(),
            cols: m.cols(),
            block: b,
            block_rows: br,
            block_cols: bc,
            side,
            exps,
            man,
        })
    }

    fn pack(m: &BfpMatrix, side: PackSide) -> PackedBfp {
        let b = m.block();
        let (br, bc) = m.grid();
        let bb = b * b;
        let mut exps = Vec::with_capacity(br * bc);
        let mut man = vec![0i8; br * bc * bb];
        for bi in 0..br {
            for bj in 0..bc {
                let g = m.block_at(bi, bj);
                exps.push(g.exp);
                let dst = &mut man[(bi * bc + bj) * bb..(bi * bc + bj + 1) * bb];
                match side {
                    PackSide::Lhs => dst.copy_from_slice(&g.man),
                    PackSide::Rhs => {
                        // Block-transpose: column j becomes run j.
                        for j in 0..b {
                            for i in 0..b {
                                dst[j * b + i] = g.man[i * b + j];
                            }
                        }
                    }
                }
            }
        }
        PackedBfp {
            rows: m.rows(),
            cols: m.cols(),
            block: b,
            block_rows: br,
            block_cols: bc,
            side,
            exps,
            man,
        }
    }

    /// Logical (unpadded) row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical (unpadded) column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Block side length.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Grid dimensions in blocks `(block_rows, block_cols)`.
    pub fn grid(&self) -> (usize, usize) {
        (self.block_rows, self.block_cols)
    }

    /// Which side this packing is for.
    pub fn side(&self) -> PackSide {
        self.side
    }

    /// Approximate heap footprint in bytes (mantissas + exponents).
    pub fn bytes(&self) -> usize {
        self.man.len() + self.exps.len()
    }

    /// The block-contiguous mantissa plane (see struct docs for layout).
    /// Exposed for the checksum-augmented kernel in [`crate::abft`].
    pub(crate) fn man_plane(&self) -> &[i8] {
        &self.man
    }

    /// The per-tile shared-exponent plane, grid row-major.
    pub(crate) fn exp_plane(&self) -> &[i8] {
        &self.exps
    }

    /// Dequantize back to `f32`, one pass per block (padding discarded).
    /// Bit-identical to [`BfpMatrix::dequantize`] on the same data.
    pub fn dequantize(&self) -> MatF32 {
        let b = self.block;
        let bb = b * b;
        let cols = self.cols;
        let mut out = MatF32::zeros(self.rows, self.cols);
        let data = out.data_mut();
        for bi in 0..self.block_rows {
            let imax = b.min(self.rows - bi * b);
            for bj in 0..self.block_cols {
                let jmax = b.min(self.cols - bj * b);
                let tile = &self.man[(bi * self.block_cols + bj) * bb..][..bb];
                let scale = (self.exps[bi * self.block_cols + bj] as f64).exp2();
                for i in 0..imax {
                    let dst = &mut data[(bi * b + i) * cols + bj * b..][..jmax];
                    match self.side {
                        PackSide::Lhs => {
                            for (j, o) in dst.iter_mut().enumerate() {
                                *o = (tile[i * b + j] as f64 * scale) as f32;
                            }
                        }
                        PackSide::Rhs => {
                            for (j, o) in dst.iter_mut().enumerate() {
                                *o = (tile[j * b + i] as f64 * scale) as f32;
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Validate that `self · rhs` is a well-formed packed GEMM.
    pub fn check_compatible(&self, rhs: &PackedBfp) -> Result<(), ArithError> {
        if self.side != PackSide::Lhs || rhs.side != PackSide::Rhs {
            return Err(ArithError::DimensionMismatch {
                got: format!("lhs packed {:?}, rhs packed {:?}", self.side, rhs.side),
                expected: "lhs packed Lhs, rhs packed Rhs".into(),
            });
        }
        if self.cols != rhs.rows {
            return Err(ArithError::DimensionMismatch {
                got: format!(
                    "lhs {}x{}, rhs {}x{}",
                    self.rows, self.cols, rhs.rows, rhs.cols
                ),
                expected: "lhs cols == rhs rows".into(),
            });
        }
        if self.block != rhs.block {
            return Err(ArithError::DimensionMismatch {
                got: format!("block {} vs {}", self.block, rhs.block),
                expected: "matching block sizes".into(),
            });
        }
        Ok(())
    }

    /// Packed GEMM: bit-identical to [`BfpMatrix::try_matmul`] on the same
    /// quantized operands, with zero per-block copies.
    pub fn matmul(&self, rhs: &PackedBfp) -> Result<MatF32, ArithError> {
        self.check_compatible(rhs)?;
        let mut out = MatF32::zeros(self.rows, rhs.cols);
        self.matmul_rows_into(rhs, 0, self.block_rows, out.data_mut());
        Ok(out)
    }

    /// Packed GEMM with block-rows sharded across up to `threads` scoped
    /// threads. Pure mechanism: no size heuristics — callers decide when
    /// forking is worth it (`bfp_core::fastgemm` applies a MAC threshold,
    /// the transformer engine its own policy). `threads <= 1` runs the
    /// serial kernel.
    ///
    /// Every (bi, bj) exponent-alignment chain is independent and each
    /// shard writes a disjoint slice of the output, so the result is
    /// bit-identical to [`PackedBfp::matmul`] for any thread count.
    pub fn matmul_parallel(&self, rhs: &PackedBfp, threads: usize) -> Result<MatF32, ArithError> {
        self.check_compatible(rhs)?;
        let mb = self.block_rows;
        let threads = threads.min(mb.max(1));
        if threads <= 1 {
            let mut out = MatF32::zeros(self.rows, rhs.cols);
            self.matmul_rows_into(rhs, 0, mb, out.data_mut());
            return Ok(out);
        }
        let b = self.block;
        let rows = self.rows;
        let cols = rhs.cols;
        let mut out = MatF32::zeros(rows, cols);
        // Carve the output into per-shard row slices up front; the shards
        // are disjoint, so the scoped threads can write them concurrently.
        let per = mb.div_ceil(threads);
        let mut shards: Vec<(usize, usize, &mut [f32])> = Vec::with_capacity(threads);
        let mut rest = out.data_mut();
        let mut consumed = 0usize;
        for t in 0..threads {
            let lo = (t * per).min(mb);
            let hi = ((t + 1) * per).min(mb);
            if lo >= hi {
                break;
            }
            let shard_rows = (hi * b).min(rows) - lo * b;
            let (head, tail) = rest.split_at_mut(shard_rows * cols);
            shards.push((lo, hi, head));
            rest = tail;
            consumed += shard_rows;
        }
        debug_assert_eq!(consumed, rows, "shards must tile the output");
        crossbeam::thread::scope(|scope| {
            for (lo, hi, buf) in shards {
                scope.spawn(move |_| self.matmul_rows_into(rhs, lo, hi, buf));
            }
        })
        .expect("GEMM shard thread panicked");
        Ok(out)
    }

    /// Compute output block-rows `bi_lo..bi_hi` into `out_rows`, the
    /// row-major `f32` buffer covering exactly output rows
    /// `bi_lo·b .. min(bi_hi·b, rows)` (full logical width).
    ///
    /// Each (bi, bj) exponent-alignment chain is independent, so disjoint
    /// block-row ranges can run on different threads and still produce
    /// bit-identical results to the serial kernel — `bfp_core::fastgemm`
    /// builds the deterministic parallel GEMM on top of this.
    ///
    /// # Panics
    /// Panics if the range or buffer length is inconsistent; call
    /// [`PackedBfp::check_compatible`] first for operand validation.
    pub fn matmul_rows_into(&self, rhs: &PackedBfp, bi_lo: usize, bi_hi: usize, out_rows: &mut [f32]) {
        let b = self.block;
        let bb = b * b;
        debug_assert!(self.check_compatible(rhs).is_ok());
        assert!(bi_lo <= bi_hi && bi_hi <= self.block_rows, "block-row range");
        let r0 = bi_lo * b;
        let rows_here = (bi_hi * b).min(self.rows).saturating_sub(r0);
        let out_cols = rhs.cols;
        assert_eq!(
            out_rows.len(),
            rows_here * out_cols,
            "output shard must cover its block rows exactly"
        );
        if b == 8 {
            return self.matmul_rows_into_b8(rhs, bi_lo, bi_hi, out_rows);
        }
        let kb = self.block_cols;
        // Per-chain wide accumulator, reused across (bi, bj) tiles.
        let mut acc = vec![0i64; bb];
        for bi in bi_lo..bi_hi {
            let imax = b.min(self.rows - bi * b);
            for bj in 0..rhs.block_cols {
                let jmax = b.min(rhs.cols - bj * b);
                let mut acc_exp = 0i32;
                let mut first = true;
                for bk in 0..kb {
                    let x = &self.man[(bi * kb + bk) * bb..][..bb];
                    let y = &rhs.man[(bk * rhs.block_cols + bj) * bb..][..bb];
                    let pexp =
                        self.exps[bi * kb + bk] as i32 + rhs.exps[bk * rhs.block_cols + bj] as i32;
                    // The wide tile product is folded straight into the
                    // accumulator chain — same shift/truncate semantics as
                    // the reference kernel, applied element-wise.
                    if first {
                        first = false;
                        acc_exp = pexp;
                        for i in 0..b {
                            let xr = &x[i * b..][..b];
                            let ar = &mut acc[i * b..][..b];
                            for (j, a) in ar.iter_mut().enumerate() {
                                *a = dot_i8(xr, &y[j * b..][..b]) as i64;
                            }
                        }
                    } else if pexp >= acc_exp {
                        let sh = (pexp - acc_exp) as u32;
                        acc_exp = pexp;
                        for i in 0..b {
                            let xr = &x[i * b..][..b];
                            let ar = &mut acc[i * b..][..b];
                            for (j, a) in ar.iter_mut().enumerate() {
                                *a = shift_right_trunc(*a, sh) + dot_i8(xr, &y[j * b..][..b]) as i64;
                            }
                        }
                    } else {
                        let sh = (acc_exp - pexp) as u32;
                        for i in 0..b {
                            let xr = &x[i * b..][..b];
                            let ar = &mut acc[i * b..][..b];
                            for (j, a) in ar.iter_mut().enumerate() {
                                *a += shift_right_trunc(dot_i8(xr, &y[j * b..][..b]) as i64, sh);
                            }
                        }
                    }
                }
                if first {
                    // K = 0: the reference kernel leaves zeros.
                    for i in 0..imax {
                        let dst = &mut out_rows[(bi * b + i - r0) * out_cols + bj * b..][..jmax];
                        dst.fill(0.0);
                    }
                    continue;
                }
                let scale = (acc_exp as f64).exp2();
                for i in 0..imax {
                    let ar = &acc[i * b..][..b];
                    let dst = &mut out_rows[(bi * b + i - r0) * out_cols + bj * b..][..jmax];
                    for (o, &a) in dst.iter_mut().zip(ar.iter()) {
                        *o = (a as f64 * scale) as f32;
                    }
                }
            }
        }
    }

    /// The paper-shaped `b == 8` kernel: whole 8×8 tile products through a
    /// runtime-dispatched micro-kernel (AVX2 when the host has it), merged
    /// into the alignment chain with the same shift/truncate semantics as
    /// the generic path. Integer tile products are exact, so the result is
    /// bit-identical to the generic kernel and the reference.
    fn matmul_rows_into_b8(&self, rhs: &PackedBfp, bi_lo: usize, bi_hi: usize, out_rows: &mut [f32]) {
        const B: usize = 8;
        const BB: usize = 64;
        let tile8 = select_tile8();
        let r0 = bi_lo * B;
        let out_cols = rhs.cols;
        let kb = self.block_cols;
        let nb = rhs.block_cols;
        let mut prod = [0i32; BB];
        let mut acc = [0i64; BB];
        for bi in bi_lo..bi_hi {
            let imax = B.min(self.rows - bi * B);
            for bj in 0..nb {
                let jmax = B.min(rhs.cols - bj * B);
                let mut acc_exp = 0i32;
                let mut first = true;
                for bk in 0..kb {
                    let x: &[i8; BB] = self.man[(bi * kb + bk) * BB..][..BB].try_into().unwrap();
                    let y: &[i8; BB] = rhs.man[(bk * nb + bj) * BB..][..BB].try_into().unwrap();
                    let pexp = self.exps[bi * kb + bk] as i32 + rhs.exps[bk * nb + bj] as i32;
                    tile8(x, y, &mut prod);
                    if first {
                        first = false;
                        acc_exp = pexp;
                        for t in 0..BB {
                            acc[t] = prod[t] as i64;
                        }
                    } else if pexp >= acc_exp {
                        let sh = (pexp - acc_exp) as u32;
                        acc_exp = pexp;
                        for t in 0..BB {
                            acc[t] = shift_right_trunc(acc[t], sh) + prod[t] as i64;
                        }
                    } else {
                        let sh = (acc_exp - pexp) as u32;
                        for t in 0..BB {
                            acc[t] += shift_right_trunc(prod[t] as i64, sh);
                        }
                    }
                }
                if first {
                    for i in 0..imax {
                        out_rows[(bi * B + i - r0) * out_cols + bj * B..][..jmax].fill(0.0);
                    }
                    continue;
                }
                let scale = (acc_exp as f64).exp2();
                for i in 0..imax {
                    let ar = &acc[i * B..][..B];
                    let dst = &mut out_rows[(bi * B + i - r0) * out_cols + bj * B..][..jmax];
                    for (o, &a) in dst.iter_mut().zip(ar.iter()) {
                        *o = (a as f64 * scale) as f32;
                    }
                }
            }
        }
    }
}

/// Geometry of one hot output tile as seen by a fused epilogue: the tile
/// is anchored at `(r0, c0)` of the logical output matrix and only its
/// `imax × jmax` top-left region holds real (unpadded) elements.
#[derive(Debug, Clone, Copy)]
pub struct EpilogueCtx {
    /// Absolute output row of the tile's first element.
    pub r0: usize,
    /// Absolute output column of the tile's first element.
    pub c0: usize,
    /// Valid rows in this tile (`<= block`).
    pub imax: usize,
    /// Valid columns in this tile (`<= block`).
    pub jmax: usize,
    /// Block side length; the tile buffer is `block × block` row-major.
    pub b: usize,
}

impl PackedBfp {
    /// Packed GEMM with a fused per-tile epilogue: each output tile is
    /// dequantized into a `b×b` scratch buffer, handed to `epi` while
    /// still register/L1-hot, and only then written to the f32 output.
    ///
    /// The GEMM bits entering the epilogue are identical to
    /// [`PackedBfp::matmul`]'s output (same accumulation chain, same
    /// `(acc · 2^exp) as f32` dequantize), so an element-wise epilogue —
    /// bias add, activation, residual add — produces exactly the bits the
    /// composed GEMM-then-separate-pass pipeline produces, without
    /// materialising the intermediate matrix twice. Tiles are visited in
    /// the same `(bi, bj)` row-major order as the serial kernel.
    ///
    /// `K = 0` chains still run the epilogue over an all-zero tile, just
    /// as the composed path applies its element passes to the zero matrix.
    pub fn matmul_epilogue<E>(&self, rhs: &PackedBfp, mut epi: E) -> Result<MatF32, ArithError>
    where
        E: FnMut(&mut [f32], &EpilogueCtx),
    {
        self.check_compatible(rhs)?;
        let b = self.block;
        let mut out = MatF32::zeros(self.rows, rhs.cols);
        let out_cols = rhs.cols;
        let data = out.data_mut();
        self.fused_rows(rhs, 0, self.block_rows, &mut epi, &mut |tile: &mut [f32],
                                                                 ctx: &EpilogueCtx| {
            for i in 0..ctx.imax {
                let src = &tile[i * b..][..ctx.jmax];
                let dst = &mut data[(ctx.r0 + i) * out_cols + ctx.c0..][..ctx.jmax];
                dst.copy_from_slice(src);
            }
            Ok(())
        })?;
        Ok(out)
    }

    /// [`PackedBfp::matmul_epilogue`] with block-row shards on scoped
    /// threads. `epis` supplies one independent epilogue per shard (so
    /// stateful epilogues — op-counting VPU emulations — never race);
    /// fewer shards than epilogues is fine, the extras stay unused.
    /// Bit-identical to the serial fused kernel for any thread count
    /// because every `(bi, bj)` chain is independent and each shard owns a
    /// disjoint output slice.
    pub fn matmul_epilogue_parallel<E>(
        &self,
        rhs: &PackedBfp,
        threads: usize,
        epis: &mut [E],
    ) -> Result<MatF32, ArithError>
    where
        E: FnMut(&mut [f32], &EpilogueCtx) + Send,
    {
        self.check_compatible(rhs)?;
        let b = self.block;
        let mb = self.block_rows;
        let threads = threads.min(mb.max(1)).min(epis.len().max(1));
        let mut out = MatF32::zeros(self.rows, rhs.cols);
        if threads <= 1 {
            let epi = epis.first_mut().expect("at least one epilogue");
            let out_cols = rhs.cols;
            let data = out.data_mut();
            self.fused_rows(rhs, 0, mb, epi, &mut |tile: &mut [f32], ctx: &EpilogueCtx| {
                for i in 0..ctx.imax {
                    let src = &tile[i * b..][..ctx.jmax];
                    let dst = &mut data[(ctx.r0 + i) * out_cols + ctx.c0..][..ctx.jmax];
                    dst.copy_from_slice(src);
                }
                Ok(())
            })?;
            return Ok(out);
        }
        let rows = self.rows;
        let cols = rhs.cols;
        let per = mb.div_ceil(threads);
        let mut shards: Vec<(usize, usize, &mut [f32], &mut E)> = Vec::with_capacity(threads);
        let mut rest = out.data_mut();
        let mut epi_rest = epis;
        for t in 0..threads {
            let lo = (t * per).min(mb);
            let hi = ((t + 1) * per).min(mb);
            if lo >= hi {
                break;
            }
            let shard_rows = (hi * b).min(rows) - lo * b;
            let (head, tail) = rest.split_at_mut(shard_rows * cols);
            let (epi, etail) = epi_rest.split_first_mut().expect("one epilogue per shard");
            rest = tail;
            epi_rest = etail;
            shards.push((lo, hi, head, epi));
        }
        let mut results: Vec<Result<(), ArithError>> = Vec::new();
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .into_iter()
                .map(|(lo, hi, buf, epi)| {
                    scope.spawn(move |_| {
                        let r0 = lo * b;
                        self.fused_rows(rhs, lo, hi, epi, &mut |tile: &mut [f32],
                                                                ctx: &EpilogueCtx| {
                            for i in 0..ctx.imax {
                                let src = &tile[i * b..][..ctx.jmax];
                                let dst =
                                    &mut buf[(ctx.r0 + i - r0) * cols + ctx.c0..][..ctx.jmax];
                                dst.copy_from_slice(src);
                            }
                            Ok(())
                        })
                    })
                })
                .collect();
            results = handles.into_iter().map(|h| h.join().expect("shard")).collect();
        })
        .expect("fused GEMM shard thread panicked");
        // Errors resolve in shard (block-row) order, matching the serial
        // kernel's first-error semantics.
        for r in results {
            r?;
        }
        Ok(out)
    }

    /// Packed GEMM with a fused epilogue whose output is **requantized in
    /// place** into a fresh left-operand [`PackedBfp`]: each post-epilogue
    /// tile runs the quantizer's tile scan (`Quantizer::tile_exp` order and
    /// semantics, via its slice twin) and mantissa rounding while still
    /// hot, writing straight into the block-major mantissa plane the next
    /// GEMM consumes. The f32 materialize → re-scan → re-pack round trip
    /// of the composed path disappears, yet the result is bit-identical to
    /// `matmul` → epilogue over the full matrix → `quantize_pack_lhs` —
    /// including which non-finite/saturation error fires first, because
    /// tiles are visited in the same row-major order and the rounding
    /// helpers are shared.
    pub fn matmul_epilogue_requant<E>(
        &self,
        rhs: &PackedBfp,
        q: &Quantizer,
        mut epi: E,
    ) -> Result<PackedBfp, ArithError>
    where
        E: FnMut(&mut [f32], &EpilogueCtx),
    {
        self.check_compatible(rhs)?;
        if q.block != self.block {
            return Err(ArithError::DimensionMismatch {
                got: format!("quantizer block {} vs operand block {}", q.block, self.block),
                expected: "matching block sizes".into(),
            });
        }
        let b = self.block;
        let bb = b * b;
        let br = self.block_rows;
        let bc = rhs.block_cols;
        let clamp = q.max_mag() as i8;
        let mut exps = vec![0i8; br * bc];
        let mut man = vec![0i8; br * bc * bb];
        {
            let exps = &mut exps[..];
            let man = &mut man[..];
            self.fused_rows(rhs, 0, br, &mut epi, &mut |tile: &mut [f32], ctx: &EpilogueCtx| {
                let (bi, bj) = (ctx.r0 / b, ctx.c0 / b);
                requant_tile(q, tile, ctx, clamp, &mut exps[bi * bc + bj], &mut man
                    [(bi * bc + bj) * bb..][..bb])
            })?;
        }
        Ok(PackedBfp {
            rows: self.rows,
            cols: rhs.cols,
            block: b,
            block_rows: br,
            block_cols: bc,
            side: PackSide::Lhs,
            exps,
            man,
        })
    }

    /// [`PackedBfp::matmul_epilogue_requant`] with block-row shards on
    /// scoped threads (one epilogue per shard, like
    /// [`PackedBfp::matmul_epilogue_parallel`]). The output mantissa plane
    /// is tile-major, so a block-row shard owns a contiguous disjoint
    /// slice of it; errors resolve in shard order, so the first-error
    /// semantics match the serial kernel.
    #[allow(clippy::type_complexity)]
    pub fn matmul_epilogue_requant_parallel<E>(
        &self,
        rhs: &PackedBfp,
        q: &Quantizer,
        threads: usize,
        epis: &mut [E],
    ) -> Result<PackedBfp, ArithError>
    where
        E: FnMut(&mut [f32], &EpilogueCtx) + Send,
    {
        self.check_compatible(rhs)?;
        let b = self.block;
        let mb = self.block_rows;
        let threads = threads.min(mb.max(1)).min(epis.len().max(1));
        if threads <= 1 {
            let epi = epis.first_mut().expect("at least one epilogue");
            return self.matmul_epilogue_requant(rhs, q, epi);
        }
        if q.block != self.block {
            return Err(ArithError::DimensionMismatch {
                got: format!("quantizer block {} vs operand block {}", q.block, self.block),
                expected: "matching block sizes".into(),
            });
        }
        let bb = b * b;
        let bc = rhs.block_cols;
        let clamp = q.max_mag() as i8;
        let mut exps = vec![0i8; mb * bc];
        let mut man = vec![0i8; mb * bc * bb];
        let per = mb.div_ceil(threads);
        let mut shards: Vec<(usize, usize, &mut [i8], &mut [i8], &mut E)> = Vec::new();
        let mut exp_rest = &mut exps[..];
        let mut man_rest = &mut man[..];
        let mut epi_rest = epis;
        for t in 0..threads {
            let lo = (t * per).min(mb);
            let hi = ((t + 1) * per).min(mb);
            if lo >= hi {
                break;
            }
            let tiles = (hi - lo) * bc;
            let (ehead, etail) = exp_rest.split_at_mut(tiles);
            let (mhead, mtail) = man_rest.split_at_mut(tiles * bb);
            let (epi, epitail) = epi_rest.split_first_mut().expect("one epilogue per shard");
            exp_rest = etail;
            man_rest = mtail;
            epi_rest = epitail;
            shards.push((lo, hi, ehead, mhead, epi));
        }
        let mut results: Vec<Result<(), ArithError>> = Vec::new();
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .into_iter()
                .map(|(lo, hi, exps_s, man_s, epi)| {
                    scope.spawn(move |_| {
                        self.fused_rows(rhs, lo, hi, epi, &mut |tile: &mut [f32],
                                                                ctx: &EpilogueCtx| {
                            let (bi, bj) = (ctx.r0 / b, ctx.c0 / b);
                            let t = (bi - lo) * bc + bj;
                            requant_tile(
                                q,
                                tile,
                                ctx,
                                clamp,
                                &mut exps_s[t],
                                &mut man_s[t * bb..][..bb],
                            )
                        })
                    })
                })
                .collect();
            results = handles.into_iter().map(|h| h.join().expect("shard")).collect();
        })
        .expect("fused GEMM shard thread panicked");
        for r in results {
            r?;
        }
        Ok(PackedBfp {
            rows: self.rows,
            cols: rhs.cols,
            block: b,
            block_rows: mb,
            block_cols: bc,
            side: PackSide::Lhs,
            exps,
            man,
        })
    }

    /// Shared fused-kernel driver: computes output tiles `bi_lo..bi_hi` in
    /// `(bi, bj)` row-major order, dequantizes each into a `b×b` scratch
    /// buffer, applies `epi` to the hot tile, then hands it to `sink`.
    /// The accumulation chain is the same shift/truncate chain as
    /// [`PackedBfp::matmul_rows_into`], so the pre-epilogue bits match the
    /// unfused kernel exactly.
    fn fused_rows<E, S>(
        &self,
        rhs: &PackedBfp,
        bi_lo: usize,
        bi_hi: usize,
        epi: &mut E,
        sink: &mut S,
    ) -> Result<(), ArithError>
    where
        E: FnMut(&mut [f32], &EpilogueCtx),
        S: FnMut(&mut [f32], &EpilogueCtx) -> Result<(), ArithError>,
    {
        if self.block == 8 {
            return self.fused_rows_b8(rhs, bi_lo, bi_hi, epi, sink);
        }
        let b = self.block;
        let bb = b * b;
        let kb = self.block_cols;
        let nb = rhs.block_cols;
        let tile8 = if b == 8 { Some(select_tile8()) } else { None };
        let mut prod32 = [0i32; 64];
        let mut acc = vec![0i64; bb];
        let mut tile = vec![0f32; bb];
        for bi in bi_lo..bi_hi {
            let imax = b.min(self.rows - bi * b);
            for bj in 0..nb {
                let jmax = b.min(rhs.cols - bj * b);
                let mut acc_exp = 0i32;
                let mut first = true;
                for bk in 0..kb {
                    let x = &self.man[(bi * kb + bk) * bb..][..bb];
                    let y = &rhs.man[(bk * nb + bj) * bb..][..bb];
                    let pexp = self.exps[bi * kb + bk] as i32 + rhs.exps[bk * nb + bj] as i32;
                    if let Some(t8) = tile8 {
                        t8(
                            x.try_into().expect("b==8 tile"),
                            y.try_into().expect("b==8 tile"),
                            &mut prod32,
                        );
                        if first {
                            first = false;
                            acc_exp = pexp;
                            for t in 0..64 {
                                acc[t] = prod32[t] as i64;
                            }
                        } else if pexp >= acc_exp {
                            let sh = (pexp - acc_exp) as u32;
                            acc_exp = pexp;
                            for t in 0..64 {
                                acc[t] = shift_right_trunc(acc[t], sh) + prod32[t] as i64;
                            }
                        } else {
                            let sh = (acc_exp - pexp) as u32;
                            for t in 0..64 {
                                acc[t] += shift_right_trunc(prod32[t] as i64, sh);
                            }
                        }
                    } else if first {
                        first = false;
                        acc_exp = pexp;
                        for i in 0..b {
                            let xr = &x[i * b..][..b];
                            for j in 0..b {
                                acc[i * b + j] = dot_i8(xr, &y[j * b..][..b]) as i64;
                            }
                        }
                    } else if pexp >= acc_exp {
                        let sh = (pexp - acc_exp) as u32;
                        acc_exp = pexp;
                        for i in 0..b {
                            let xr = &x[i * b..][..b];
                            for j in 0..b {
                                let a = &mut acc[i * b + j];
                                *a = shift_right_trunc(*a, sh) + dot_i8(xr, &y[j * b..][..b]) as i64;
                            }
                        }
                    } else {
                        let sh = (acc_exp - pexp) as u32;
                        for i in 0..b {
                            let xr = &x[i * b..][..b];
                            for j in 0..b {
                                acc[i * b + j] +=
                                    shift_right_trunc(dot_i8(xr, &y[j * b..][..b]) as i64, sh);
                            }
                        }
                    }
                }
                let ctx = EpilogueCtx {
                    r0: bi * b,
                    c0: bj * b,
                    imax,
                    jmax,
                    b,
                };
                if first {
                    // K = 0: the unfused kernel leaves zeros; the epilogue
                    // still runs, as the composed path applies its element
                    // passes to the zero matrix.
                    for i in 0..imax {
                        tile[i * b..][..jmax].fill(0.0);
                    }
                } else {
                    let scale = (acc_exp as f64).exp2();
                    for i in 0..imax {
                        let ar = &acc[i * b..][..b];
                        let tr = &mut tile[i * b..][..jmax];
                        for (o, &a) in tr.iter_mut().zip(ar.iter()) {
                            *o = (a as f64 * scale) as f32;
                        }
                    }
                }
                epi(&mut tile, &ctx);
                sink(&mut tile, &ctx)?;
            }
        }
        Ok(())
    }

    /// The paper-shaped `b == 8` fused drain: same fixed-size stack
    /// accumulators and runtime-dispatched 8×8 micro-kernel as
    /// [`PackedBfp::matmul_rows_into`]'s specialized path, so carrying an
    /// epilogue costs only the epilogue itself — not a slower GEMM.
    /// Bit-identical to the generic drain (integer tile products are
    /// exact; the alignment chain is shared).
    fn fused_rows_b8<E, S>(
        &self,
        rhs: &PackedBfp,
        bi_lo: usize,
        bi_hi: usize,
        epi: &mut E,
        sink: &mut S,
    ) -> Result<(), ArithError>
    where
        E: FnMut(&mut [f32], &EpilogueCtx),
        S: FnMut(&mut [f32], &EpilogueCtx) -> Result<(), ArithError>,
    {
        const B: usize = 8;
        const BB: usize = 64;
        let tile8 = select_tile8();
        let kb = self.block_cols;
        let nb = rhs.block_cols;
        let mut prod = [0i32; BB];
        let mut acc = [0i64; BB];
        let mut tile = [0f32; BB];
        for bi in bi_lo..bi_hi {
            let imax = B.min(self.rows - bi * B);
            for bj in 0..nb {
                let jmax = B.min(rhs.cols - bj * B);
                let mut acc_exp = 0i32;
                let mut first = true;
                for bk in 0..kb {
                    let x: &[i8; BB] = self.man[(bi * kb + bk) * BB..][..BB].try_into().unwrap();
                    let y: &[i8; BB] = rhs.man[(bk * nb + bj) * BB..][..BB].try_into().unwrap();
                    let pexp = self.exps[bi * kb + bk] as i32 + rhs.exps[bk * nb + bj] as i32;
                    tile8(x, y, &mut prod);
                    if first {
                        first = false;
                        acc_exp = pexp;
                        for t in 0..BB {
                            acc[t] = prod[t] as i64;
                        }
                    } else if pexp >= acc_exp {
                        let sh = (pexp - acc_exp) as u32;
                        acc_exp = pexp;
                        for t in 0..BB {
                            acc[t] = shift_right_trunc(acc[t], sh) + prod[t] as i64;
                        }
                    } else {
                        let sh = (acc_exp - pexp) as u32;
                        for t in 0..BB {
                            acc[t] += shift_right_trunc(prod[t] as i64, sh);
                        }
                    }
                }
                let ctx = EpilogueCtx {
                    r0: bi * B,
                    c0: bj * B,
                    imax,
                    jmax,
                    b: B,
                };
                if first {
                    // K = 0: the unfused kernel leaves zeros; the epilogue
                    // still runs, as the composed path applies its element
                    // passes to the zero matrix.
                    tile[..imax * B].fill(0.0);
                } else {
                    let scale = (acc_exp as f64).exp2();
                    for t in 0..imax * B {
                        tile[t] = (acc[t] as f64 * scale) as f32;
                    }
                }
                epi(&mut tile, &ctx);
                sink(&mut tile, &ctx)?;
            }
        }
        Ok(())
    }
}

/// Requantize one hot post-epilogue tile into its slot of a packed LHS
/// plane: the quantizer's tile scan + rounding, per-tile saturation
/// accounting included, exactly as `PackedBfp::quantize_pack` does for a
/// materialised matrix tile.
fn requant_tile(
    q: &Quantizer,
    tile: &[f32],
    ctx: &EpilogueCtx,
    clamp: i8,
    exp_out: &mut i8,
    man_out: &mut [i8],
) -> Result<(), ArithError> {
    let b = ctx.b;
    let exp = match q.tile_exp_slice(tile, ctx.r0, ctx.c0, ctx.imax, ctx.jmax)? {
        // All-zero tile: canonical exponent 0, mantissas stay 0.
        None => {
            *exp_out = 0;
            return Ok(());
        }
        Some(exp) => exp,
    };
    *exp_out = exp;
    let scale = (-(exp as i32) as f64).exp2();
    let mut saturated = 0u64;
    for i in 0..ctx.imax {
        let src = &tile[i * b..][..ctx.jmax];
        for (j, &v) in src.iter().enumerate() {
            let (qv, sat) = q.round_elem(v, scale, ctx.r0 + i, ctx.c0 + j, clamp);
            saturated += sat as u64;
            man_out[i * b + j] = qv;
        }
    }
    crate::telemetry::note_saturated(saturated);
    q.saturation.check(saturated)
}

/// 8×8 tile-product micro-kernel signature: `out[i·8+j] = Σₖ x[i·8+k]·y[j·8+k]`
/// (both operands unit-stride in `k` thanks to the block-transposed RHS).
pub(crate) type Tile8Fn = fn(&[i8; 64], &[i8; 64], &mut [i32; 64]);

/// Portable micro-kernel body. Widening to `i16` first keeps the inner
/// products in the shape SIMD integer-MAC instructions (`pmaddwd` and
/// friends) digest, so the auto-vectoriser can use them when the target
/// features allow.
#[inline(always)]
fn tile8_product(x: &[i8; 64], y: &[i8; 64], out: &mut [i32; 64]) {
    let mut yw = [0i16; 64];
    for (w, &v) in yw.iter_mut().zip(y.iter()) {
        *w = v as i16;
    }
    for i in 0..8 {
        let mut xr = [0i16; 8];
        for (w, &v) in xr.iter_mut().zip(&x[i * 8..i * 8 + 8]) {
            *w = v as i16;
        }
        for j in 0..8 {
            let yr = &yw[j * 8..j * 8 + 8];
            let mut s = 0i32;
            for k in 0..8 {
                s += xr[k] as i32 * yr[k] as i32;
            }
            out[i * 8 + j] = s;
        }
    }
}

/// Hand-scheduled AVX2 kernel: widen the eight RHS runs to i16 once, then
/// per LHS row one `vpmaddwd` against each run pair and a three-level
/// `vphaddd` reduction tree. Every sum is an exact i32 addition of the
/// same i16×i16 products the portable body computes (peak magnitude
/// 8·127·127 ≪ 2³¹), and integer addition is associative — so the result
/// is bit-identical to [`tile8_product`] by construction, and the
/// equivalence tests pin it.
///
/// # Safety
/// Callers must have verified AVX2 support (see [`select_tile8`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn tile8_product_avx2(x: &[i8; 64], y: &[i8; 64], out: &mut [i32; 64]) {
    use std::arch::x86_64::*;
    // SAFETY: all loads/stores are unaligned-width intrinsics inside the
    // fixed 64-element arrays.
    unsafe {
        let yp = y.as_ptr();
        // y runs 2a (lower 128-bit lane) and 2a+1 (upper lane) as i16.
        let y01 = _mm256_cvtepi8_epi16(_mm_loadu_si128(yp as *const __m128i));
        let y23 = _mm256_cvtepi8_epi16(_mm_loadu_si128(yp.add(16) as *const __m128i));
        let y45 = _mm256_cvtepi8_epi16(_mm_loadu_si128(yp.add(32) as *const __m128i));
        let y67 = _mm256_cvtepi8_epi16(_mm_loadu_si128(yp.add(48) as *const __m128i));
        // Interleave fix-up for the hadd tree: [d0 d2 d4 d6 | d1 d3 d5 d7]
        // back to natural j order.
        let unshuffle = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
        for i in 0..8 {
            let xr = _mm_cvtepi8_epi16(_mm_loadl_epi64(x.as_ptr().add(i * 8) as *const __m128i));
            let xx = _mm256_set_m128i(xr, xr);
            // Lane half k of t_ab: pairwise i32 sums of x·y_{a or b}.
            let t01 = _mm256_madd_epi16(xx, y01);
            let t23 = _mm256_madd_epi16(xx, y23);
            let t45 = _mm256_madd_epi16(xx, y45);
            let t67 = _mm256_madd_epi16(xx, y67);
            let h1 = _mm256_hadd_epi32(t01, t23);
            let h2 = _mm256_hadd_epi32(t45, t67);
            let h3 = _mm256_hadd_epi32(h1, h2);
            let row = _mm256_permutevar8x32_epi32(h3, unshuffle);
            _mm256_storeu_si256(out.as_mut_ptr().add(i * 8) as *mut __m256i, row);
        }
    }
}

/// Pick the fastest micro-kernel the host supports. Every variant computes
/// the same exact integer products, so the choice never changes output bits.
pub(crate) fn select_tile8() -> Tile8Fn {
    #[cfg(target_arch = "x86_64")]
    if is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        return |x, y, out| unsafe { tile8_product_avx2(x, y, out) };
    }
    tile8_product
}

/// Unit-stride int8 dot product; the paper-shaped 8-element case lowers to
/// a fixed-size loop LLVM fully vectorises.
#[inline(always)]
pub(crate) fn dot_i8(x: &[i8], y: &[i8]) -> i32 {
    if let (Ok(x8), Ok(y8)) = (
        <&[i8; 8]>::try_from(x),
        <&[i8; 8]>::try_from(y),
    ) {
        let mut s = 0i32;
        for k in 0..8 {
            s += x8[k] as i32 * y8[k] as i32;
        }
        s
    } else {
        x.iter()
            .zip(y.iter())
            .map(|(&a, &b)| a as i32 * b as i32)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(rows: usize, cols: usize, seed: u32) -> MatF32 {
        let s = seed as f32;
        MatF32::from_fn(rows, cols, |i, j| {
            ((i as f32 * 0.37 + j as f32 * 0.23 + s).sin()) * (1.0 + ((i * cols + j) % 11) as f32)
        })
    }

    /// A matrix whose tiles land on very different block exponents, so the
    /// alignment chain truncates (the path where evaluation-order bugs
    /// would show up as bit differences).
    fn spiky(rows: usize, cols: usize) -> MatF32 {
        MatF32::from_fn(rows, cols, |i, j| {
            let base = ((i * 31 + j * 7) % 13) as f32 - 6.0;
            match (i / 8 + j / 8) % 3 {
                0 => base * 1024.0,
                1 => base * 0.001,
                _ => base,
            }
        })
    }

    fn assert_bits_eq(a: &MatF32, b: &MatF32) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                assert_eq!(
                    a.get(i, j).to_bits(),
                    b.get(i, j).to_bits(),
                    "({i},{j}): {} vs {}",
                    a.get(i, j),
                    b.get(i, j)
                );
            }
        }
    }

    #[test]
    fn packed_matmul_is_bit_identical_to_reference_kernel() {
        let q = Quantizer::paper();
        for (m, k, n, seed) in [(16, 16, 16, 1), (24, 40, 8, 2), (64, 32, 48, 3)] {
            let a = wave(m, k, seed);
            let b = wave(k, n, seed + 10);
            let (qa, qb) = (q.quantize(&a).unwrap(), q.quantize(&b).unwrap());
            let want = qa.try_matmul(&qb).unwrap();
            let got = PackedBfp::pack_lhs(&qa)
                .matmul(&PackedBfp::pack_rhs(&qb))
                .unwrap();
            assert_bits_eq(&got, &want);
        }
    }

    #[test]
    fn packed_matmul_non_multiple_of_block_shapes() {
        let q = Quantizer::paper();
        for (m, k, n) in [(11, 13, 7), (1, 9, 17), (8, 1, 1), (23, 24, 25)] {
            let a = wave(m, k, 5);
            let b = wave(k, n, 6);
            let (qa, qb) = (q.quantize(&a).unwrap(), q.quantize(&b).unwrap());
            let got = PackedBfp::pack_lhs(&qa)
                .matmul(&PackedBfp::pack_rhs(&qb))
                .unwrap();
            assert_bits_eq(&got, &qa.try_matmul(&qb).unwrap());
        }
    }

    #[test]
    fn packed_matmul_mixed_block_exponents_truncate_identically() {
        let q = Quantizer::paper();
        let a = spiky(24, 32);
        let b = spiky(32, 16);
        let (qa, qb) = (q.quantize(&a).unwrap(), q.quantize(&b).unwrap());
        let got = PackedBfp::pack_lhs(&qa)
            .matmul(&PackedBfp::pack_rhs(&qb))
            .unwrap();
        assert_bits_eq(&got, &qa.try_matmul(&qb).unwrap());
    }

    #[test]
    fn packed_matmul_generic_block_sizes() {
        for blk in [4usize, 8, 16] {
            let q = Quantizer::with_block(blk);
            let a = spiky(19, 21);
            let b = spiky(21, 10);
            let (qa, qb) = (q.quantize(&a).unwrap(), q.quantize(&b).unwrap());
            let got = PackedBfp::pack_lhs(&qa)
                .matmul(&PackedBfp::pack_rhs(&qb))
                .unwrap();
            assert_bits_eq(&got, &qa.try_matmul(&qb).unwrap());
        }
    }

    #[test]
    fn matmul_rows_into_shards_agree_with_full_kernel() {
        let q = Quantizer::paper();
        let a = spiky(40, 24);
        let b = spiky(24, 17);
        let (qa, qb) = (q.quantize(&a).unwrap(), q.quantize(&b).unwrap());
        let (pa, pb) = (PackedBfp::pack_lhs(&qa), PackedBfp::pack_rhs(&qb));
        let full = pa.matmul(&pb).unwrap();
        // Recompute in three uneven shards.
        let mut out = MatF32::zeros(40, 17);
        let cols = out.cols();
        for (lo, hi) in [(0usize, 2usize), (2, 3), (3, 5)] {
            let r0 = lo * 8;
            let r1 = (hi * 8).min(40);
            pa.matmul_rows_into(&pb, lo, hi, &mut out.data_mut()[r0 * cols..r1 * cols]);
        }
        assert_bits_eq(&out, &full);
    }

    #[test]
    fn dequantize_matches_grid_dequantize() {
        let q = Quantizer::paper();
        let m = spiky(27, 13);
        let qm = q.quantize(&m).unwrap();
        let want = qm.dequantize();
        assert_bits_eq(&PackedBfp::pack_lhs(&qm).dequantize(), &want);
        assert_bits_eq(&PackedBfp::pack_rhs(&qm).dequantize(), &want);
    }

    #[test]
    fn side_and_shape_mismatches_are_typed_errors() {
        let q = Quantizer::paper();
        let a = PackedBfp::quantize_lhs(&q, &wave(16, 16, 1)).unwrap();
        let b = PackedBfp::quantize_rhs(&q, &wave(16, 16, 2)).unwrap();
        // Wrong sides.
        assert!(matches!(
            b.matmul(&b),
            Err(ArithError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            a.matmul(&a.clone()),
            Err(ArithError::DimensionMismatch { .. })
        ));
        // Inner-dimension mismatch.
        let skinny = PackedBfp::quantize_rhs(&q, &wave(8, 8, 3)).unwrap();
        assert!(matches!(
            a.matmul(&skinny),
            Err(ArithError::DimensionMismatch { .. })
        ));
        // Block-size mismatch.
        let other = PackedBfp::quantize_rhs(&Quantizer::with_block(4), &wave(16, 8, 4)).unwrap();
        assert!(matches!(
            a.matmul(&other),
            Err(ArithError::DimensionMismatch { .. })
        ));
        // And the happy path still works.
        assert!(a.matmul(&b).is_ok());
    }

    #[test]
    fn fused_quantize_pack_matches_composed_path() {
        use crate::quant::RoundMode;
        for round in [RoundMode::NearestEven, RoundMode::Truncate, RoundMode::Stochastic] {
            let q = Quantizer {
                round,
                ..Quantizer::paper()
            };
            for (r, c, seed) in [(16, 16, 1), (11, 29, 2), (8, 8, 3), (1, 1, 4), (40, 7, 5)] {
                let m = wave(r, c, seed);
                assert_eq!(
                    PackedBfp::quantize_pack_lhs(&q, &m).unwrap(),
                    PackedBfp::quantize_lhs(&q, &m).unwrap(),
                    "lhs {r}x{c} {round:?}"
                );
                assert_eq!(
                    PackedBfp::quantize_pack_rhs(&q, &m).unwrap(),
                    PackedBfp::quantize_rhs(&q, &m).unwrap(),
                    "rhs {r}x{c} {round:?}"
                );
            }
        }
    }

    #[test]
    fn fused_quantize_pack_handles_zero_tiles_and_spiky_exponents() {
        let q = Quantizer::paper();
        let mut m = spiky(24, 24);
        // Zero out a whole tile plus a partial edge region.
        for i in 8..16 {
            for j in 0..8 {
                m.set(i, j, 0.0);
            }
        }
        assert_eq!(
            PackedBfp::quantize_pack_lhs(&q, &m).unwrap(),
            PackedBfp::quantize_lhs(&q, &m).unwrap()
        );
        assert_eq!(
            PackedBfp::quantize_pack_rhs(&q, &m).unwrap(),
            PackedBfp::quantize_rhs(&q, &m).unwrap()
        );
    }

    #[test]
    fn fused_quantize_pack_reports_identical_errors() {
        let q = Quantizer::paper();
        let mut m = wave(17, 19, 7);
        m.set(9, 13, f32::NAN);
        let want = format!("{:?}", q.quantize(&m).unwrap_err());
        assert_eq!(
            format!("{:?}", PackedBfp::quantize_pack_lhs(&q, &m).unwrap_err()),
            want
        );
        assert_eq!(
            format!("{:?}", PackedBfp::quantize_pack_rhs(&q, &m).unwrap_err()),
            want
        );
    }

    #[test]
    fn fused_quantize_pack_matmul_is_bit_identical() {
        let q = Quantizer::paper();
        let a = spiky(40, 24);
        let b = spiky(24, 17);
        let got = PackedBfp::quantize_pack_lhs(&q, &a)
            .unwrap()
            .matmul(&PackedBfp::quantize_pack_rhs(&q, &b).unwrap())
            .unwrap();
        let want = q
            .quantize(&a)
            .unwrap()
            .try_matmul(&q.quantize(&b).unwrap())
            .unwrap();
        assert_bits_eq(&got, &want);
    }

    #[test]
    fn matmul_parallel_is_bit_identical_for_any_thread_count() {
        let q = Quantizer::paper();
        let a = spiky(40, 24);
        let b = spiky(24, 17);
        let pa = PackedBfp::quantize_pack_lhs(&q, &a).unwrap();
        let pb = PackedBfp::quantize_pack_rhs(&q, &b).unwrap();
        let want = pa.matmul(&pb).unwrap();
        for threads in [0usize, 1, 2, 3, 5, 64] {
            assert_bits_eq(&pa.matmul_parallel(&pb, threads).unwrap(), &want);
        }
        assert!(matches!(
            pb.matmul_parallel(&pb, 4),
            Err(ArithError::DimensionMismatch { .. })
        ));
    }

    /// The composed oracle for the fused kernels: full GEMM, then the same
    /// element-wise epilogue applied over the materialised matrix.
    fn composed_epilogue(
        pa: &PackedBfp,
        pb: &PackedBfp,
        epi: impl Fn(f32, usize, usize) -> f32,
    ) -> MatF32 {
        let out = pa.matmul(pb).unwrap();
        MatF32::from_fn(out.rows(), out.cols(), |i, j| epi(out.get(i, j), i, j))
    }

    #[test]
    fn fused_epilogue_matches_composed_pass() {
        let q = Quantizer::paper();
        let bias: Vec<f32> = (0..17).map(|j| (j as f32 * 0.3).sin()).collect();
        for (m, k, n) in [(40, 24, 17), (8, 8, 8), (11, 13, 7), (1, 9, 16)] {
            let a = spiky(m, k);
            let b = spiky(k, n);
            let pa = PackedBfp::quantize_pack_lhs(&q, &a).unwrap();
            let pb = PackedBfp::quantize_pack_rhs(&q, &b).unwrap();
            let want = composed_epilogue(&pa, &pb, |v, _i, j| (v + bias[j]).tanh());
            let got = pa
                .matmul_epilogue(&pb, |tile: &mut [f32], ctx: &EpilogueCtx| {
                    for i in 0..ctx.imax {
                        let row = &mut tile[i * ctx.b..][..ctx.jmax];
                        for (j, v) in row.iter_mut().enumerate() {
                            *v = (*v + bias[ctx.c0 + j]).tanh();
                        }
                    }
                })
                .unwrap();
            assert_bits_eq(&got, &want);
        }
    }

    #[test]
    fn fused_epilogue_parallel_is_bit_identical() {
        let q = Quantizer::paper();
        let a = spiky(40, 24);
        let b = spiky(24, 17);
        let pa = PackedBfp::quantize_pack_lhs(&q, &a).unwrap();
        let pb = PackedBfp::quantize_pack_rhs(&q, &b).unwrap();
        let epi = |tile: &mut [f32], ctx: &EpilogueCtx| {
            for i in 0..ctx.imax {
                for v in &mut tile[i * ctx.b..][..ctx.jmax] {
                    *v = v.mul_add(0.5, 1.0);
                }
            }
        };
        let want = pa.matmul_epilogue(&pb, epi).unwrap();
        for threads in [1usize, 2, 3, 5, 64] {
            let mut epis: Vec<_> = (0..threads).map(|_| epi).collect();
            let got = pa.matmul_epilogue_parallel(&pb, threads, &mut epis).unwrap();
            assert_bits_eq(&got, &want);
        }
    }

    #[test]
    fn fused_requant_matches_composed_quantize_pack_across_round_modes() {
        use crate::quant::RoundMode;
        let bias: Vec<f32> = (0..32).map(|j| (j as f32 * 0.7).cos() * 0.1).collect();
        for round in [RoundMode::NearestEven, RoundMode::Truncate, RoundMode::Stochastic] {
            let q = Quantizer {
                round,
                ..Quantizer::paper()
            };
            for (m, k, n) in [(40, 24, 17), (8, 8, 8), (23, 16, 32), (1, 8, 9)] {
                let a = spiky(m, k);
                let b = spiky(k, n);
                let pa = PackedBfp::quantize_pack_lhs(&q, &a).unwrap();
                let pb = PackedBfp::quantize_pack_rhs(&q, &b).unwrap();
                let epi = |tile: &mut [f32], ctx: &EpilogueCtx| {
                    for i in 0..ctx.imax {
                        let row = &mut tile[i * ctx.b..][..ctx.jmax];
                        for (j, v) in row.iter_mut().enumerate() {
                            *v += bias[ctx.c0 + j];
                        }
                    }
                };
                let composed = composed_epilogue(&pa, &pb, |v, _i, j| v + bias[j]);
                let want = PackedBfp::quantize_pack_lhs(&q, &composed).unwrap();
                let got = pa.matmul_epilogue_requant(&pb, &q, epi).unwrap();
                assert_eq!(got, want, "{round:?} {m}x{k}x{n}");
                // Parallel fused requant: same bits for any shard count.
                for threads in [2usize, 3, 8] {
                    let mut epis: Vec<_> = (0..threads).map(|_| epi).collect();
                    let gp = pa
                        .matmul_epilogue_requant_parallel(&pb, &q, threads, &mut epis)
                        .unwrap();
                    assert_eq!(gp, want, "{round:?} {m}x{k}x{n} {threads}t");
                }
            }
        }
    }

    #[test]
    fn fused_requant_handles_zero_tiles_and_extreme_scales() {
        let q = Quantizer::paper();
        // Near-overflow and subnormal-ish scales in the same operand, plus
        // an epilogue that zeroes a whole tile column band.
        let a = MatF32::from_fn(24, 16, |i, j| {
            let base = ((i * 7 + j * 3) % 11) as f32 - 5.0;
            if i < 8 {
                base * 3.0e35
            } else if i < 16 {
                base * 1.0e-38
            } else {
                base
            }
        });
        let b = MatF32::from_fn(16, 24, |i, j| ((i + 2 * j) % 7) as f32 - 3.0);
        let pa = PackedBfp::quantize_pack_lhs(&q, &a).unwrap();
        let pb = PackedBfp::quantize_pack_rhs(&q, &b).unwrap();
        let epi = |tile: &mut [f32], ctx: &EpilogueCtx| {
            for i in 0..ctx.imax {
                let row = &mut tile[i * ctx.b..][..ctx.jmax];
                for (j, v) in row.iter_mut().enumerate() {
                    if ctx.c0 + j >= 8 && ctx.c0 + j < 16 {
                        *v = 0.0;
                    }
                }
            }
        };
        let composed = composed_epilogue(&pa, &pb, |v, _i, j| if (8..16).contains(&j) { 0.0 } else { v });
        let want = PackedBfp::quantize_pack_lhs(&q, &composed).unwrap();
        let got = pa.matmul_epilogue_requant(&pb, &q, epi).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn fused_requant_reports_identical_first_error() {
        let q = Quantizer::paper();
        let a = spiky(24, 16);
        let b = spiky(16, 24);
        let pa = PackedBfp::quantize_pack_lhs(&q, &a).unwrap();
        let pb = PackedBfp::quantize_pack_rhs(&q, &b).unwrap();
        // An epilogue that plants NaNs in two different tiles: the fused
        // path must report the same (first, row-major) position as the
        // composed scan of the materialised matrix.
        let poison = |tile: &mut [f32], ctx: &EpilogueCtx| {
            for i in 0..ctx.imax {
                let row = &mut tile[i * ctx.b..][..ctx.jmax];
                for (j, v) in row.iter_mut().enumerate() {
                    if (ctx.r0 + i, ctx.c0 + j) == (9, 13) || (ctx.r0 + i, ctx.c0 + j) == (2, 20) {
                        *v = f32::NAN;
                    }
                }
            }
        };
        let composed = composed_epilogue(&pa, &pb, |v, i, j| {
            if (i, j) == (9, 13) || (i, j) == (2, 20) {
                f32::NAN
            } else {
                v
            }
        });
        let want = format!("{:?}", PackedBfp::quantize_pack_lhs(&q, &composed).unwrap_err());
        let got = format!("{:?}", pa.matmul_epilogue_requant(&pb, &q, poison).unwrap_err());
        assert_eq!(got, want);
    }

    #[test]
    fn fused_requant_output_feeds_next_gemm_bit_identically() {
        // The fused kernel's whole point: its packed output, used as the
        // next GEMM's LHS, matches packing the composed f32 intermediate.
        let q = Quantizer::paper();
        let a = spiky(40, 24);
        let b = spiky(24, 32);
        let c = spiky(32, 16);
        let pa = PackedBfp::quantize_pack_lhs(&q, &a).unwrap();
        let pb = PackedBfp::quantize_pack_rhs(&q, &b).unwrap();
        let pc = PackedBfp::quantize_pack_rhs(&q, &c).unwrap();
        let epi = |tile: &mut [f32], ctx: &EpilogueCtx| {
            for i in 0..ctx.imax {
                for v in &mut tile[i * ctx.b..][..ctx.jmax] {
                    *v = v.max(0.0); // relu-shaped, cheap stand-in
                }
            }
        };
        let mid_fused = pa.matmul_epilogue_requant(&pb, &q, epi).unwrap();
        let mid_f32 = composed_epilogue(&pa, &pb, |v, _, _| v.max(0.0));
        let mid_composed = PackedBfp::quantize_pack_lhs(&q, &mid_f32).unwrap();
        assert_eq!(mid_fused, mid_composed);
        assert_bits_eq(
            &mid_fused.matmul(&pc).unwrap(),
            &mid_composed.matmul(&pc).unwrap(),
        );
    }

    #[test]
    fn fused_generic_block_sizes_match_composed() {
        for blk in [4usize, 16] {
            let q = Quantizer::with_block(blk);
            let a = spiky(19, 21);
            let b = spiky(21, 10);
            let pa = PackedBfp::quantize_pack_lhs(&q, &a).unwrap();
            let pb = PackedBfp::quantize_pack_rhs(&q, &b).unwrap();
            let epi = |tile: &mut [f32], ctx: &EpilogueCtx| {
                for i in 0..ctx.imax {
                    for v in &mut tile[i * ctx.b..][..ctx.jmax] {
                        *v *= 2.0;
                    }
                }
            };
            let composed = composed_epilogue(&pa, &pb, |v, _, _| v * 2.0);
            let got = pa.matmul_epilogue(&pb, epi).unwrap();
            assert_bits_eq(&got, &composed);
            let want_q = PackedBfp::quantize_pack_lhs(&q, &composed).unwrap();
            assert_eq!(pa.matmul_epilogue_requant(&pb, &q, epi).unwrap(), want_q);
        }
    }

    #[test]
    fn accessors_report_layout() {
        let q = Quantizer::paper();
        let p = PackedBfp::quantize_rhs(&q, &wave(10, 20, 9)).unwrap();
        assert_eq!((p.rows(), p.cols()), (10, 20));
        assert_eq!(p.block(), 8);
        assert_eq!(p.grid(), (2, 3));
        assert_eq!(p.side(), PackSide::Rhs);
        assert_eq!(p.bytes(), 2 * 3 * 64 + 6);
    }
}
