//! Error types shared across the arithmetic crate.

use std::fmt;

/// Errors produced by quantization and block arithmetic.
#[derive(Debug, Clone, PartialEq)]
pub enum ArithError {
    /// A matrix dimension did not match what the operation required.
    DimensionMismatch {
        /// What the caller supplied, e.g. `"lhs 16x8, rhs 16x8"`.
        got: String,
        /// What the operation expected.
        expected: String,
    },
    /// The shared exponent of a block fell outside the 8-bit range
    /// representable by the hardware's exponent BRAM.
    ExponentOverflow {
        /// The unclamped exponent value.
        exp: i32,
    },
    /// A value that must be finite (input to quantization) was NaN or ±inf.
    NonFinite {
        /// Row/column position of the offending element.
        at: (usize, usize),
    },
    /// The 48-bit accumulator datapath would have overflowed.
    AccumulatorOverflow,
    /// A NaN was produced or encountered where the guardrails forbid it.
    NaN {
        /// Row/column position of the first NaN.
        at: (usize, usize),
    },
    /// Mantissa saturation exceeded the configured policy: more elements
    /// clamped to the representable range than the caller allows.
    Saturated {
        /// Number of elements that hit the clamp.
        count: u64,
    },
    /// The operation was abandoned at a cooperative checkpoint because
    /// its [`crate::cancel::CancelToken`] fired.
    Cancelled {
        /// `true` when a deadline expired, `false` for an explicit cancel
        /// (shutdown, shed).
        expired: bool,
    },
    /// A quantized block's round-trip error exceeded the analytic bound
    /// for its mantissa width — the signature of a corrupted shared
    /// exponent or mantissa word.
    QuantBoundExceeded {
        /// Grid position `(block_row, block_col)` of the offending block.
        block: (usize, usize),
        /// Worst observed absolute error in the block.
        observed: f64,
        /// The bound the block was required to meet.
        bound: f64,
    },
}

impl fmt::Display for ArithError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArithError::DimensionMismatch { got, expected } => {
                write!(f, "dimension mismatch: got {got}, expected {expected}")
            }
            ArithError::ExponentOverflow { exp } => {
                write!(
                    f,
                    "shared exponent {exp} exceeds the 8-bit hardware range [-128, 127]"
                )
            }
            ArithError::NonFinite { at } => {
                write!(
                    f,
                    "non-finite value at ({}, {}); quantization requires finite inputs",
                    at.0, at.1
                )
            }
            ArithError::AccumulatorOverflow => {
                write!(f, "48-bit accumulator overflow")
            }
            ArithError::NaN { at } => {
                write!(f, "NaN at ({}, {})", at.0, at.1)
            }
            ArithError::Saturated { count } => {
                write!(f, "{count} elements saturated beyond the configured policy")
            }
            ArithError::Cancelled { expired } => {
                if *expired {
                    write!(f, "deadline expired before the operation completed")
                } else {
                    write!(f, "operation cancelled")
                }
            }
            ArithError::QuantBoundExceeded {
                block,
                observed,
                bound,
            } => {
                write!(
                    f,
                    "block ({}, {}) round-trip error {observed:.3e} exceeds bound {bound:.3e}",
                    block.0, block.1
                )
            }
        }
    }
}

impl std::error::Error for ArithError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ArithError::DimensionMismatch {
            got: "3x4".into(),
            expected: "8x8".into(),
        };
        assert!(e.to_string().contains("3x4"));
        assert!(e.to_string().contains("8x8"));

        let e = ArithError::ExponentOverflow { exp: 200 };
        assert!(e.to_string().contains("200"));

        let e = ArithError::NonFinite { at: (1, 2) };
        assert!(e.to_string().contains("(1, 2)"));

        assert!(ArithError::AccumulatorOverflow
            .to_string()
            .contains("48-bit"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            ArithError::AccumulatorOverflow,
            ArithError::AccumulatorOverflow
        );
        assert_ne!(
            ArithError::ExponentOverflow { exp: 1 },
            ArithError::ExponentOverflow { exp: 2 }
        );
    }
}
