//! ULP (units in the last place) distance between `f32` values.
//!
//! Used throughout the test suite and the fidelity benches to bound how far
//! the hardware datapaths stray from IEEE-754 round-to-nearest results.

/// Map an `f32` to a monotonically ordered signed integer so that the
/// absolute difference of two mapped values is their ULP distance.
fn ordered(x: f32) -> i64 {
    let bits = x.to_bits() as i32;
    // Negative floats order in reverse of their bit pattern; flip them onto
    // the same lattice as positives (-0.0 maps to 0, like +0.0).
    if bits < 0 {
        (i32::MIN as i64) - (bits as i64)
    } else {
        bits as i64
    }
}

/// ULP distance between two finite floats. `0` means bit-identical (or
/// `+0.0` vs `-0.0`, which are numerically equal and treated as distance 0).
///
/// # Panics
/// Panics if either input is NaN; callers compare NaN-ness separately.
pub fn ulp_distance(a: f32, b: f32) -> u64 {
    assert!(
        !a.is_nan() && !b.is_nan(),
        "ulp_distance is undefined for NaN"
    );
    if a == b {
        return 0; // catches +0 == -0 as well
    }
    (ordered(a) - ordered(b)).unsigned_abs()
}

/// A tested error envelope for an approximate kernel against its exact
/// oracle: a ULP bound with an absolute floor. A sample is admitted when
/// **either** bound holds.
///
/// The floor is not a loophole — it is how cancellation regions are stated
/// honestly. Where the oracle itself cancels (e.g. `1 + tanh(u)` for very
/// negative `u`, where both paths compute a result of size `2^-20` with an
/// absolute rounding error of `2^-24`), the *relative* divergence between
/// two faithful evaluations is unbounded while the *absolute* divergence
/// stays at a few ulps **of the cancelled operands' scale**. The envelope
/// therefore reads: "within `max_ulp` of the oracle, except where both
/// values are within `abs_floor` of each other".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UlpEnvelope {
    /// Maximum admitted ULP distance.
    pub max_ulp: u64,
    /// Absolute-difference floor admitting cancellation regions.
    pub abs_floor: f32,
}

impl UlpEnvelope {
    /// An envelope with the given bounds.
    pub const fn new(max_ulp: u64, abs_floor: f32) -> Self {
        UlpEnvelope { max_ulp, abs_floor }
    }

    /// A pure ULP bound (zero absolute floor).
    pub const fn ulp_only(max_ulp: u64) -> Self {
        UlpEnvelope {
            max_ulp,
            abs_floor: 0.0,
        }
    }

    /// Whether `got` is admitted against the oracle value `want`.
    ///
    /// Non-finite values must match exactly: NaN admits only NaN, and an
    /// infinity admits only the same infinity (hardware clamp regions are
    /// part of the kernel contract, not of its rounding error).
    pub fn admits(&self, got: f32, want: f32) -> bool {
        if got.is_nan() || want.is_nan() {
            return got.is_nan() && want.is_nan();
        }
        if got.is_infinite() || want.is_infinite() {
            return got == want;
        }
        ulp_distance(got, want) <= self.max_ulp || (got - want).abs() <= self.abs_floor
    }
}

/// Running worst-case tracker for an approximate-vs-oracle comparison:
/// feeds a bench report or an envelope assertion with the observed maxima.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnvelopeStats {
    /// Samples recorded.
    pub samples: u64,
    /// Samples rejected by the envelope passed to [`Self::record`].
    pub violations: u64,
    /// Largest finite ULP distance observed.
    pub max_ulp: u64,
    /// Largest finite absolute difference observed.
    pub max_abs: f32,
    /// Sum of squared oracle values (for SQNR).
    sig: f64,
    /// Sum of squared differences (for SQNR).
    noise: f64,
}

impl EnvelopeStats {
    /// A fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one `(got, want)` pair, returning whether `env` admits it.
    /// Non-finite mismatches count as violations with saturated maxima.
    pub fn record(&mut self, got: f32, want: f32, env: &UlpEnvelope) -> bool {
        self.samples += 1;
        let ok = env.admits(got, want);
        if !ok {
            self.violations += 1;
        }
        if got.is_finite() && want.is_finite() {
            self.max_ulp = self.max_ulp.max(ulp_distance(got, want));
            self.max_abs = self.max_abs.max((got - want).abs());
            self.sig += (want as f64) * (want as f64);
            self.noise += (got as f64 - want as f64) * (got as f64 - want as f64);
        } else if !ok {
            self.max_ulp = u64::MAX;
            self.max_abs = f32::INFINITY;
        }
        ok
    }

    /// Signal-to-quantization-noise ratio of the recorded finite pairs, in
    /// dB (`inf` when no noise was observed).
    pub fn sqnr_db(&self) -> f64 {
        if self.noise == 0.0 {
            f64::INFINITY
        } else {
            10.0 * (self.sig / self.noise).log10()
        }
    }
}

/// Relative error `|got - want| / |want|`, computed in `f64`. Returns 0 when
/// both are zero and infinity when only `want` is zero.
pub fn rel_error(got: f32, want: f32) -> f64 {
    let (g, w) = (got as f64, want as f64);
    if w == 0.0 {
        return if g == 0.0 { 0.0 } else { f64::INFINITY };
    }
    ((g - w) / w).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_values_are_zero_apart() {
        assert_eq!(ulp_distance(1.5, 1.5), 0);
        assert_eq!(ulp_distance(0.0, -0.0), 0);
    }

    #[test]
    fn adjacent_floats_are_one_apart() {
        let x = 1.0f32;
        let next = f32::from_bits(x.to_bits() + 1);
        assert_eq!(ulp_distance(x, next), 1);
        let nx = -1.0f32;
        let next = f32::from_bits(nx.to_bits() + 1); // toward zero
        assert_eq!(ulp_distance(nx, next), 1);
    }

    #[test]
    fn distance_crosses_zero_correctly() {
        let tiny_pos = f32::from_bits(1);
        let tiny_neg = f32::from_bits(0x8000_0001);
        assert_eq!(ulp_distance(tiny_pos, tiny_neg), 2);
        assert_eq!(ulp_distance(tiny_pos, 0.0), 1);
        assert_eq!(ulp_distance(tiny_neg, 0.0), 1);
    }

    #[test]
    fn symmetric() {
        assert_eq!(ulp_distance(1.0, 1.0000001), ulp_distance(1.0000001, 1.0));
    }

    #[test]
    fn larger_gaps_grow() {
        assert!(ulp_distance(1.0, 2.0) > ulp_distance(1.0, 1.5));
    }

    #[test]
    fn rel_error_basics() {
        assert_eq!(rel_error(1.0, 1.0), 0.0);
        assert!((rel_error(1.01, 1.0) - 0.01).abs() < 1e-6);
        assert_eq!(rel_error(0.0, 0.0), 0.0);
        assert_eq!(rel_error(1.0, 0.0), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_panics() {
        ulp_distance(f32::NAN, 1.0);
    }

    #[test]
    fn envelope_admits_by_ulp_or_abs_floor() {
        let env = UlpEnvelope::new(4, 1e-9);
        assert!(env.admits(1.0, 1.0));
        assert!(env.admits(1.0, f32::from_bits(1.0f32.to_bits() + 4)));
        assert!(!env.admits(1.0, f32::from_bits(1.0f32.to_bits() + 5)));
        // Far apart in ULP terms but inside the absolute floor.
        assert!(env.admits(1.0e-20, 9.0e-21));
        // The pure-ULP envelope rejects the same pair.
        assert!(!UlpEnvelope::ulp_only(4).admits(1.0e-20, 9.0e-21));
    }

    #[test]
    fn envelope_non_finite_must_match_exactly() {
        let env = UlpEnvelope::new(u64::MAX, f32::INFINITY);
        assert!(env.admits(f32::INFINITY, f32::INFINITY));
        assert!(!env.admits(f32::INFINITY, f32::NEG_INFINITY));
        assert!(!env.admits(f32::INFINITY, 1.0));
        assert!(env.admits(f32::NAN, f32::NAN));
        assert!(!env.admits(f32::NAN, 0.0));
    }

    #[test]
    fn envelope_stats_track_worst_case_and_sqnr() {
        let env = UlpEnvelope::new(2, 0.0);
        let mut s = EnvelopeStats::new();
        assert!(s.record(1.0, 1.0, &env));
        let off = f32::from_bits(1.0f32.to_bits() + 8);
        assert!(!s.record(off, 1.0, &env));
        assert_eq!(s.samples, 2);
        assert_eq!(s.violations, 1);
        assert_eq!(s.max_ulp, 8);
        assert!(s.max_abs > 0.0);
        assert!(s.sqnr_db() > 100.0, "{}", s.sqnr_db());
    }
}
