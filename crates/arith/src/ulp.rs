//! ULP (units in the last place) distance between `f32` values.
//!
//! Used throughout the test suite and the fidelity benches to bound how far
//! the hardware datapaths stray from IEEE-754 round-to-nearest results.

/// Map an `f32` to a monotonically ordered signed integer so that the
/// absolute difference of two mapped values is their ULP distance.
fn ordered(x: f32) -> i64 {
    let bits = x.to_bits() as i32;
    // Negative floats order in reverse of their bit pattern; flip them onto
    // the same lattice as positives (-0.0 maps to 0, like +0.0).
    if bits < 0 {
        (i32::MIN as i64) - (bits as i64)
    } else {
        bits as i64
    }
}

/// ULP distance between two finite floats. `0` means bit-identical (or
/// `+0.0` vs `-0.0`, which are numerically equal and treated as distance 0).
///
/// # Panics
/// Panics if either input is NaN; callers compare NaN-ness separately.
pub fn ulp_distance(a: f32, b: f32) -> u64 {
    assert!(
        !a.is_nan() && !b.is_nan(),
        "ulp_distance is undefined for NaN"
    );
    if a == b {
        return 0; // catches +0 == -0 as well
    }
    (ordered(a) - ordered(b)).unsigned_abs()
}

/// Relative error `|got - want| / |want|`, computed in `f64`. Returns 0 when
/// both are zero and infinity when only `want` is zero.
pub fn rel_error(got: f32, want: f32) -> f64 {
    let (g, w) = (got as f64, want as f64);
    if w == 0.0 {
        return if g == 0.0 { 0.0 } else { f64::INFINITY };
    }
    ((g - w) / w).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_values_are_zero_apart() {
        assert_eq!(ulp_distance(1.5, 1.5), 0);
        assert_eq!(ulp_distance(0.0, -0.0), 0);
    }

    #[test]
    fn adjacent_floats_are_one_apart() {
        let x = 1.0f32;
        let next = f32::from_bits(x.to_bits() + 1);
        assert_eq!(ulp_distance(x, next), 1);
        let nx = -1.0f32;
        let next = f32::from_bits(nx.to_bits() + 1); // toward zero
        assert_eq!(ulp_distance(nx, next), 1);
    }

    #[test]
    fn distance_crosses_zero_correctly() {
        let tiny_pos = f32::from_bits(1);
        let tiny_neg = f32::from_bits(0x8000_0001);
        assert_eq!(ulp_distance(tiny_pos, tiny_neg), 2);
        assert_eq!(ulp_distance(tiny_pos, 0.0), 1);
        assert_eq!(ulp_distance(tiny_neg, 0.0), 1);
    }

    #[test]
    fn symmetric() {
        assert_eq!(ulp_distance(1.0, 1.0000001), ulp_distance(1.0000001, 1.0));
    }

    #[test]
    fn larger_gaps_grow() {
        assert!(ulp_distance(1.0, 2.0) > ulp_distance(1.0, 1.5));
    }

    #[test]
    fn rel_error_basics() {
        assert_eq!(rel_error(1.0, 1.0), 0.0);
        assert!((rel_error(1.01, 1.0) - 0.01).abs() < 1e-6);
        assert_eq!(rel_error(0.0, 0.0), 0.0);
        assert_eq!(rel_error(1.0, 0.0), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_panics() {
        ulp_distance(f32::NAN, 1.0);
    }
}
