//! A minimal row-major `f32` matrix used as the reference datatype across
//! the workspace (quantizer input, transformer activations, benchmarks).
//!
//! Deliberately small: just the operations the reproduction needs, with
//! dimension checks that panic early instead of producing garbage.

use std::sync::atomic::{AtomicU64, Ordering};

/// Row-major `f32` matrix.
#[derive(Debug)]
pub struct MatF32 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
    /// Memoized [`MatF32::content_hash`] (0 = not yet computed). Interior
    /// mutability lets read-only users memoize; both `&mut` accessors
    /// ([`MatF32::set`], [`MatF32::data_mut`]) clear it, so a stale hash
    /// can never outlive a mutation. Atomic (not `Cell`) so shared
    /// references stay `Sync` for the parallel kernel epilogues.
    hash_memo: AtomicU64,
}

impl Clone for MatF32 {
    fn clone(&self) -> Self {
        MatF32 {
            rows: self.rows,
            cols: self.cols,
            data: self.data.clone(),
            // Identical content ⇒ the memo stays valid for the clone.
            hash_memo: AtomicU64::new(self.hash_memo.load(Ordering::Relaxed)),
        }
    }
}

impl PartialEq for MatF32 {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.data == other.data
    }
}

impl MatF32 {
    /// An `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        MatF32 {
            rows,
            cols,
            data: vec![0.0; rows * cols],
            hash_memo: AtomicU64::new(0),
        }
    }

    /// Build from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self::from_vec(rows, cols, data)
    }

    /// Wrap an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length must equal rows*cols"
        );
        MatF32 {
            rows,
            cols,
            data,
            hash_memo: AtomicU64::new(0),
        }
    }

    /// 64-bit content hash over shape and exact `f32` bit patterns
    /// (NaN-payload sensitive), memoized until the next mutation.
    ///
    /// Weight matrices are hashed on every GEMM to key the engine-level
    /// plan cache; before the memo that rescan of every weight byte per
    /// token was a measurable slice of the quantize/pack phase. The hash
    /// only gates caches — a collision can repeat work or (jointly with
    /// an equal shape) alias a plan, never change kernel arithmetic.
    pub fn content_hash(&self) -> u64 {
        let memo = self.hash_memo.load(Ordering::Relaxed);
        if memo != 0 {
            return memo;
        }
        // Word-at-a-time rotate-xor-multiply mixing: one 64-bit multiply
        // per two f32s.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |v: u64| {
            h = (h.rotate_left(5) ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
        };
        eat(self.rows as u64);
        eat(self.cols as u64);
        let mut chunks = self.data.chunks_exact(2);
        for pair in &mut chunks {
            eat((pair[0].to_bits() as u64) << 32 | pair[1].to_bits() as u64);
        }
        if let [last] = chunks.remainder() {
            eat(last.to_bits() as u64);
        }
        // Reserve 0 as the "unset" sentinel.
        let h = if h == 0 { 1 } else { h };
        self.hash_memo.store(h, Ordering::Relaxed);
        h
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat data slice (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data slice (row-major). Invalidates the content-hash
    /// memo (the borrow rules guarantee no hash can be taken while the
    /// returned borrow is live, so clearing up front is sufficient).
    pub fn data_mut(&mut self) -> &mut [f32] {
        *self.hash_memo.get_mut() = 0;
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element setter. Invalidates the content-hash memo.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        debug_assert!(i < self.rows && j < self.cols);
        *self.hash_memo.get_mut() = 0;
        self.data[i * self.cols + j] = v;
    }

    /// One row as a slice.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Reference (IEEE f32) matrix multiply, used as ground truth in the
    /// fidelity experiments. Accumulates in `f64` to keep the reference
    /// itself from dominating the error budget.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &MatF32) -> MatF32 {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul inner dimensions: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = MatF32::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for j in 0..rhs.cols {
                let mut acc = 0f64;
                for k in 0..self.cols {
                    acc += self.get(i, k) as f64 * rhs.get(k, j) as f64;
                }
                out.set(i, j, acc as f32);
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> MatF32 {
        MatF32::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = MatF32::from_fn(2, 3, |i, j| (i * 3 + j) as f32);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = MatF32::from_fn(3, 3, |i, j| (i * 3 + j) as f32 + 1.0);
        let id = MatF32::from_fn(3, 3, |i, j| if i == j { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&id), a);
        assert_eq!(id.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = MatF32::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = MatF32::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = MatF32::from_fn(2, 4, |i, j| (i + j) as f32);
        let b = MatF32::from_fn(4, 3, |i, j| (i as f32) - (j as f32));
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 3);
        // c[0][0] = sum_k a[0][k]*b[k][0] = 0*0 + 1*1 + 2*2 + 3*3 = 14
        assert_eq!(c.get(0, 0), 14.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_dimension_mismatch_panics() {
        let a = MatF32::zeros(2, 3);
        let b = MatF32::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = MatF32::from_fn(3, 5, |i, j| (i * 7 + j * 13) as f32);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(4, 2), a.get(2, 4));
    }

    #[test]
    fn norms() {
        let m = MatF32::from_vec(1, 2, vec![3.0, -4.0]);
        assert_eq!(m.max_abs(), 4.0);
        assert_eq!(m.frobenius(), 5.0);
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn from_vec_checks_length() {
        MatF32::from_vec(2, 2, vec![1.0; 3]);
    }
}
