//! Aggregate error statistics for quantization- and datapath-fidelity
//! experiments (SQNR, max/mean ULP, element-wise comparisons).

use crate::ulp::{rel_error, ulp_distance};

/// Running comparison between a "got" stream (hardware datapath) and a
/// "want" stream (reference).
#[derive(Debug, Clone, Default)]
pub struct ErrorStats {
    /// Number of element pairs observed.
    pub count: usize,
    /// Largest ULP distance seen.
    pub max_ulp: u64,
    /// Sum of ULP distances (for the mean).
    pub sum_ulp: u128,
    /// Largest relative error seen (f64).
    pub max_rel: f64,
    /// Σ want², for SQNR.
    pub signal_energy: f64,
    /// Σ (got − want)², for SQNR.
    pub noise_energy: f64,
    /// Pairs that were not bit-identical.
    pub mismatches: usize,
}

impl ErrorStats {
    /// Fresh, empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one pair.
    pub fn push(&mut self, got: f32, want: f32) {
        self.count += 1;
        let d = ulp_distance(got, want);
        self.max_ulp = self.max_ulp.max(d);
        self.sum_ulp += d as u128;
        if d != 0 {
            self.mismatches += 1;
        }
        let r = rel_error(got, want);
        if r.is_finite() {
            self.max_rel = self.max_rel.max(r);
        }
        let (g, w) = (got as f64, want as f64);
        self.signal_energy += w * w;
        self.noise_energy += (g - w) * (g - w);
    }

    /// Record every pair from two equal-length slices.
    ///
    /// # Panics
    /// Panics if the slices differ in length.
    pub fn push_slices(&mut self, got: &[f32], want: &[f32]) {
        assert_eq!(got.len(), want.len(), "slice length mismatch");
        for (&g, &w) in got.iter().zip(want) {
            self.push(g, w);
        }
    }

    /// Mean ULP distance over all pairs (0 if empty).
    pub fn mean_ulp(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ulp as f64 / self.count as f64
        }
    }

    /// Signal-to-quantization-noise ratio in dB. `+inf` for a perfect match.
    pub fn sqnr_db(&self) -> f64 {
        if self.noise_energy == 0.0 {
            return f64::INFINITY;
        }
        10.0 * (self.signal_energy / self.noise_energy).log10()
    }

    /// Fraction of pairs that were bit-identical.
    pub fn exact_fraction(&self) -> f64 {
        if self.count == 0 {
            1.0
        } else {
            1.0 - self.mismatches as f64 / self.count as f64
        }
    }

    /// Merge another statistics block into this one (parallel reduction).
    pub fn merge(&mut self, other: &ErrorStats) {
        self.count += other.count;
        self.max_ulp = self.max_ulp.max(other.max_ulp);
        self.sum_ulp += other.sum_ulp;
        self.max_rel = self.max_rel.max(other.max_rel);
        self.signal_energy += other.signal_energy;
        self.noise_energy += other.noise_energy;
        self.mismatches += other.mismatches;
    }
}

impl std::fmt::Display for ErrorStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} max_ulp={} mean_ulp={:.3} max_rel={:.3e} sqnr={:.2} dB exact={:.1}%",
            self.count,
            self.max_ulp,
            self.mean_ulp(),
            self.max_rel,
            self.sqnr_db(),
            self.exact_fraction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_match_has_infinite_sqnr() {
        let mut s = ErrorStats::new();
        s.push_slices(&[1.0, 2.0, -3.0], &[1.0, 2.0, -3.0]);
        assert_eq!(s.max_ulp, 0);
        assert_eq!(s.mismatches, 0);
        assert_eq!(s.sqnr_db(), f64::INFINITY);
        assert_eq!(s.exact_fraction(), 1.0);
    }

    #[test]
    fn detects_single_ulp_deviation() {
        let mut s = ErrorStats::new();
        let x = 1.0f32;
        s.push(f32::from_bits(x.to_bits() + 1), x);
        assert_eq!(s.max_ulp, 1);
        assert_eq!(s.mismatches, 1);
        assert!(s.sqnr_db() > 100.0); // tiny noise
    }

    #[test]
    fn sqnr_for_known_noise() {
        // signal 1.0, noise 0.1 -> SQNR = 10*log10(1/0.01) = 20 dB
        let mut s = ErrorStats::new();
        s.push(1.1, 1.0);
        assert!((s.sqnr_db() - 20.0).abs() < 0.1);
    }

    #[test]
    fn merge_combines_counts_and_maxima() {
        let mut a = ErrorStats::new();
        a.push(1.0, 1.0);
        let mut b = ErrorStats::new();
        b.push(2.5, 2.0);
        a.merge(&b);
        assert_eq!(a.count, 2);
        assert_eq!(a.mismatches, 1);
        assert!(a.max_rel > 0.2);
    }

    #[test]
    fn mean_ulp_averages() {
        let mut s = ErrorStats::new();
        let x = 1.0f32;
        s.push(x, x);
        s.push(f32::from_bits(x.to_bits() + 2), x);
        assert_eq!(s.mean_ulp(), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_slices_panic() {
        let mut s = ErrorStats::new();
        s.push_slices(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn display_is_readable() {
        let mut s = ErrorStats::new();
        s.push(1.0, 1.0);
        let text = format!("{s}");
        assert!(text.contains("n=1"));
        assert!(text.contains("sqnr"));
    }
}
