//! int8 primitives underlying both bfp8 MatMul and sliced fp32 arithmetic.
//!
//! Everything the systolic array computes bottoms out in these operations:
//! an 8-bit multiply, a widening accumulate, and float→int8 rounding for the
//! quantizer. The DSP48E2 packing tricks live in `bfp-dsp48`; this module is
//! the pure integer semantics they must match.

/// Multiply-accumulate: `acc + x * y` with full-width (i32) products, the
/// semantics of one PE issue slot.
#[inline]
pub fn mac8(acc: i32, x: i8, y: i8) -> i32 {
    acc + (x as i32) * (y as i32)
}

/// Dot product of two length-8 int8 vectors — one column-worth of systolic
/// accumulation. The sum of eight `i8 × i8` products is at most
/// `8 × 128 × 128 = 131072`, well inside 18 bits, which is why the paper's
/// 8-row array never overflows the packed-MAC low lanes.
#[inline]
pub fn dot8(x: &[i8; 8], y: &[i8; 8]) -> i32 {
    let mut acc = 0i32;
    for k in 0..8 {
        acc = mac8(acc, x[k], y[k]);
    }
    acc
}

/// Maximum possible magnitude of [`dot8`]: the headroom bound the combined
/// MAC optimisation relies on (§II-B: "accumulation of up to 7 product terms
/// without overflow ... configuring the row numbers as 8").
pub const DOT8_MAX_MAG: i32 = 8 * 128 * 128;

/// Round a finite `f64` to the nearest `i8`, ties to even, saturating.
///
/// This is the per-element body of every quantize-pack and fused
/// requantize loop, so it uses the double-rounding magic constant
/// (`1.5·2^52`): adding and subtracting it rounds to the nearest integer
/// under the default FPU mode, which IS ties-to-even — branch-free and
/// exact for `|x| < 2^51`. Larger magnitudes (already integral at that
/// spacing, and far past the clamp) skip the trick; the result at the
/// `i8` level is bit-identical to `round_ties_even` + clamp for every
/// input including ties, NaN, and infinities.
#[inline]
pub fn round_i8_rne(x: f64) -> i8 {
    const MAGIC: f64 = 6755399441055744.0; // 1.5 * 2^52
    let r = if x.abs() < 2251799813685248.0 {
        // 2^51
        (x + MAGIC) - MAGIC
    } else {
        x
    };
    r.clamp(i8::MIN as f64, i8::MAX as f64) as i8
}

/// Round a finite `f64` toward zero to `i8`, saturating (ablation mode).
#[inline]
pub fn round_i8_trunc(x: f64) -> i8 {
    x.trunc().clamp(i8::MIN as f64, i8::MAX as f64) as i8
}

/// Stochastic rounding to `i8`: round up with probability equal to the
/// fractional part, using the caller-supplied hash as the (deterministic)
/// random source. Unbiased in expectation — the property quantization-aware
/// training pipelines care about.
#[inline]
pub fn round_i8_stochastic(x: f64, hash: u32) -> i8 {
    let floor = x.floor();
    let frac = x - floor; // in [0, 1)
    let threshold = hash as f64 / (u32::MAX as f64 + 1.0);
    let v = if threshold < frac { floor + 1.0 } else { floor };
    v.clamp(i8::MIN as f64, i8::MAX as f64) as i8
}

/// A tiny deterministic mixer for per-element stochastic-rounding hashes
/// (splitmix-style; position + value bits in, well-spread 32 bits out).
#[inline]
pub fn mix_hash(row: usize, col: usize, value_bits: u32) -> u32 {
    let mut z = (row as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((col as u64) << 32)
        .wrapping_add(value_bits as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) as u32
}

/// Round-half-to-even on `f64`. Delegates to [`f64::round_ties_even`],
/// which lowers to a single rounding instruction on x86/ARM — this sits
/// in the per-element quantization loop of every pack and requantize, so
/// the branchy open-coded tie check it replaced showed up in profiles.
#[inline]
pub fn round_ties_even(x: f64) -> f64 {
    x.round_ties_even()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac8_is_widening() {
        assert_eq!(mac8(0, -128, -128), 16384);
        assert_eq!(mac8(100, 127, 127), 100 + 16129);
        assert_eq!(mac8(0, -128, 127), -16256);
    }

    #[test]
    fn dot8_matches_naive() {
        let x = [1i8, -2, 3, -4, 5, -6, 7, -8];
        let y = [8i8, 7, -6, 5, -4, 3, -2, 1];
        let want: i32 = x.iter().zip(&y).map(|(&a, &b)| a as i32 * b as i32).sum();
        assert_eq!(dot8(&x, &y), want);
    }

    #[test]
    fn dot8_extremes_stay_in_18_bits() {
        // The unclamped -128 x -128 corner is exactly 2^17, one past the
        // signed 18-bit maximum — which is why the quantizer clamps
        // mantissas to the symmetric range [-127, 127].
        let x = [-128i8; 8];
        let y = [-128i8; 8];
        assert_eq!(dot8(&x, &y), DOT8_MAX_MAG);
        assert_eq!(DOT8_MAX_MAG, 1 << 17);
        // Symmetric-quantized worst case does fit signed 18 bits.
        let x = [127i8; 8];
        let y = [-127i8; 8];
        let v = dot8(&x, &y);
        assert_eq!(v, -8 * 127 * 127);
        assert!(v.abs() < 1 << 17);
    }

    #[test]
    fn rne_rounds_ties_to_even() {
        assert_eq!(round_i8_rne(0.5), 0);
        assert_eq!(round_i8_rne(1.5), 2);
        assert_eq!(round_i8_rne(2.5), 2);
        assert_eq!(round_i8_rne(-0.5), 0);
        assert_eq!(round_i8_rne(-1.5), -2);
        assert_eq!(round_i8_rne(-2.5), -2);
    }

    #[test]
    fn rne_rounds_non_ties_to_nearest() {
        assert_eq!(round_i8_rne(1.4), 1);
        assert_eq!(round_i8_rne(1.6), 2);
        assert_eq!(round_i8_rne(-1.4), -1);
        assert_eq!(round_i8_rne(-1.6), -2);
    }

    #[test]
    fn rounding_saturates() {
        assert_eq!(round_i8_rne(1000.0), 127);
        assert_eq!(round_i8_rne(-1000.0), -128);
        assert_eq!(round_i8_trunc(127.9), 127);
        assert_eq!(round_i8_trunc(-128.9), -128);
    }

    #[test]
    fn trunc_rounds_toward_zero() {
        assert_eq!(round_i8_trunc(1.9), 1);
        assert_eq!(round_i8_trunc(-1.9), -1);
        assert_eq!(round_i8_trunc(0.99), 0);
    }
}
