//! Numeric-health counters for the quantize paths.
//!
//! The quantizer already tallies shared-exponent saturation per tile to
//! enforce its [`crate::SaturationPolicy`]; with the `telemetry` cargo
//! feature enabled, those tallies also accumulate into one process-wide
//! counter so an end-to-end run can report how often the bfp8 dynamic
//! range clipped. Without the feature, the hook compiles to nothing
//! and [`saturation_count`] reports 0.

#[cfg(feature = "telemetry")]
use std::sync::atomic::{AtomicU64, Ordering};

#[cfg(feature = "telemetry")]
static SATURATED: AtomicU64 = AtomicU64::new(0);

/// Note `n` saturated elements from one quantized tile.
#[inline]
pub(crate) fn note_saturated(n: u64) {
    #[cfg(feature = "telemetry")]
    if n > 0 {
        SATURATED.fetch_add(n, Ordering::Relaxed);
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = n;
}

/// Total elements clamped to the bfp8 mantissa range since process
/// start (or the last [`reset_saturation_count`]). Always 0 without the
/// `telemetry` feature.
pub fn saturation_count() -> u64 {
    #[cfg(feature = "telemetry")]
    {
        SATURATED.load(Ordering::Relaxed)
    }
    #[cfg(not(feature = "telemetry"))]
    {
        0
    }
}

/// Reset the global saturation tally (tests and per-run deltas).
pub fn reset_saturation_count() {
    #[cfg(feature = "telemetry")]
    SATURATED.store(0, Ordering::Relaxed);
}

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_and_reset() {
        reset_saturation_count();
        note_saturated(0);
        note_saturated(3);
        note_saturated(2);
        assert_eq!(saturation_count(), 5);
        reset_saturation_count();
        assert_eq!(saturation_count(), 0);
    }
}
