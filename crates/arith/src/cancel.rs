//! Cooperative cancellation and deadline propagation.
//!
//! The serving runtime hands every request a [`CancelToken`]; long-running
//! execution paths (the resilient tile loop, the Transformer block loop)
//! poll it at natural checkpoints and abandon the work with
//! [`ArithError::Cancelled`] instead of occupying an array past the
//! request's budget. Tokens are cheap to clone (one `Arc`) and safe to
//! poll from any thread.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::ArithError;

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A shared cancel/deadline flag polled by cooperative execution loops.
///
/// A token is *cancelled* once [`CancelToken::cancel`] has been called or
/// its deadline (if any) has passed; cancellation is sticky and can never
/// be undone.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A token with no deadline that only cancels explicitly.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that expires at `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// A token that expires `budget` from now.
    pub fn with_budget(budget: Duration) -> Self {
        Self::with_deadline(Instant::now() + budget)
    }

    /// Request cancellation. Idempotent; all clones observe it.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether the deadline (if any) has passed. Explicit cancellation
    /// does not make a token "expired" — only the clock does.
    pub fn expired(&self) -> bool {
        self.inner.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Whether work under this token should stop (explicitly cancelled or
    /// past its deadline).
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire) || self.expired()
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Time left before the deadline; `None` means unbounded, and an
    /// expired token reports `Some(ZERO)`.
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Checkpoint: `Err(ArithError::Cancelled { .. })` once the token is
    /// cancelled, `Ok(())` otherwise. `expired` in the error records
    /// whether the deadline (rather than an explicit cancel) fired.
    pub fn check(&self) -> Result<(), ArithError> {
        if self.inner.cancelled.load(Ordering::Acquire) {
            Err(ArithError::Cancelled {
                expired: self.expired(),
            })
        } else if self.expired() {
            Err(ArithError::Cancelled { expired: true })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(!t.expired());
        assert_eq!(t.remaining(), None);
        assert!(t.check().is_ok());
    }

    #[test]
    fn explicit_cancel_is_sticky_and_shared() {
        let t = CancelToken::new();
        let clone = t.clone();
        t.cancel();
        assert!(clone.is_cancelled());
        assert!(!clone.expired(), "no deadline: cancel is not expiry");
        assert_eq!(clone.check(), Err(ArithError::Cancelled { expired: false }));
    }

    #[test]
    fn past_deadline_expires() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.expired());
        assert!(t.is_cancelled());
        assert_eq!(t.remaining(), Some(Duration::ZERO));
        assert_eq!(t.check(), Err(ArithError::Cancelled { expired: true }));
    }

    #[test]
    fn future_deadline_is_live_with_budget() {
        let t = CancelToken::with_budget(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        let rem = t.remaining().expect("bounded");
        assert!(rem > Duration::from_secs(3500));
    }
}
