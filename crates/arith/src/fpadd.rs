//! fp32 addition on the align–add–normalise datapath (paper Eqn. 6).
//!
//! In `fpadd` mode the DSP blocks stay idle: only the exponent unit (which
//! compares the exponents), the column shifter (which aligns the smaller
//! operand) and the PSU accumulator (which adds the signed-magnitude
//! mantissas) are engaged. The mantissa is processed as a single 24-bit unit,
//! not sliced.
//!
//! Two datapath widths are modelled:
//!
//! * [`AddVariant::Exact48`] — alignment happens inside the 48-bit PSU/ACC
//!   window (the DSP-P-register width), so at most one truncation occurs at
//!   the final normalise. This is the default and matches the modelled
//!   hardware, whose accumulator is 48 bits wide.
//! * [`AddVariant::Truncate24`] — the literal Eqn. 6: the aligned mantissa is
//!   truncated to 24 bits *before* the add. Kept as an ablation; it shows the
//!   classic guard-bit-free cancellation error.

use crate::fpmul::NormRound;
use crate::softfp::{SoftFp32, FRAC_BITS};

/// Alignment datapath width for fp32 addition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AddVariant {
    /// Align within the 48-bit accumulator window; truncate once at the end.
    #[default]
    Exact48,
    /// Truncate the aligned mantissa to 24 bits before adding (literal Eqn 6).
    Truncate24,
}

/// Hardware-faithful fp32 adder.
#[derive(Debug, Clone, Copy, Default)]
pub struct HwFp32Add {
    /// Datapath width selection.
    pub variant: AddVariant,
    /// Rounding at the final normalise.
    pub round: NormRound,
}

impl HwFp32Add {
    /// An adder with the given variant and hardware truncation.
    pub fn new(variant: AddVariant) -> Self {
        HwFp32Add {
            variant,
            round: NormRound::Truncate,
        }
    }

    /// Add two unpacked values.
    #[inline]
    pub fn add_soft(&self, a: SoftFp32, b: SoftFp32) -> SoftFp32 {
        if a.is_zero() {
            return if b.is_zero() {
                // (+0) + (-0) = +0; equal signed zeros keep their sign.
                SoftFp32 {
                    sign: a.sign && b.sign,
                    exp: 0,
                    man: 0,
                }
            } else {
                b
            };
        }
        if b.is_zero() {
            return a;
        }
        // The exponent unit routes the larger-exponent operand to X
        // ("we assume exp_x >= exp_y ... a comparator is necessary").
        // Both operands are non-zero normals here (1 ≤ exp ≤ 254,
        // man < 2^24), so the lexicographic (exp, man) order is a single
        // compare of the fused keys.
        let ka = ((a.exp as u64) << 24) | a.man as u64;
        let kb = ((b.exp as u64) << 24) | b.man as u64;
        let (x, y) = if ka >= kb { (a, b) } else { (b, a) };
        let shift = (x.exp - y.exp) as u32;

        match self.variant {
            AddVariant::Exact48 => self.add_exact48(x, y, shift),
            AddVariant::Truncate24 => self.add_trunc24(x, y, shift),
        }
    }

    #[inline]
    fn add_exact48(&self, x: SoftFp32, y: SoftFp32, shift: u32) -> SoftFp32 {
        // Place the hidden bit of X at bit 47 of the accumulator window.
        let mx = (x.man as i64) << 24;
        let my_mag = if shift >= 48 {
            0
        } else {
            ((y.man as u64) << 24) >> shift
        };
        let tx = if x.sign { -mx } else { mx };
        let ty_mag = my_mag as i64;
        let sum = tx + if y.sign { -ty_mag } else { ty_mag };
        if sum == 0 {
            return SoftFp32::ZERO;
        }
        let sign = sum < 0;
        let mag = sum.unsigned_abs(); // <= 2^49
        let h = 63 - mag.leading_zeros() as i32; // index of the top set bit
                                                 // value = mag * 2^(x.exp - BIAS - 23 - 24); renormalise so the top
                                                 // bit lands at mantissa position 23.
        let exp = x.exp + (h - 47);
        let man = normalize_to_24(mag, h, self.round);
        finish(sign, exp, man)
    }

    #[inline]
    fn add_trunc24(&self, x: SoftFp32, y: SoftFp32, shift: u32) -> SoftFp32 {
        let my = if shift >= 32 { 0 } else { y.man >> shift }; // pre-truncated
        let sx = if x.sign { -1i64 } else { 1 };
        let sy = if y.sign { -1i64 } else { 1 };
        let sum = sx * x.man as i64 + sy * my as i64;
        if sum == 0 {
            return SoftFp32::ZERO;
        }
        let sign = sum < 0;
        let mag = sum.unsigned_abs(); // <= 2^25
        let h = 63 - mag.leading_zeros() as i32;
        let exp = x.exp + (h - 23);
        let man = normalize_to_24(mag, h, self.round);
        finish(sign, exp, man)
    }

    /// Add two `f32` values; special cases short-circuit in control logic.
    #[inline]
    pub fn add(&self, x: f32, y: f32) -> f32 {
        // One finiteness gate on the hot path; NaN/inf resolution is
        // control logic, not datapath, and stays out of line.
        if x.is_finite() && y.is_finite() {
            return self
                .add_soft(SoftFp32::unpack(x), SoftFp32::unpack(y))
                .pack();
        }
        Self::add_special(x, y)
    }

    /// NaN/infinity resolution, exactly as the original inline checks did.
    #[cold]
    fn add_special(x: f32, y: f32) -> f32 {
        if x.is_nan() || y.is_nan() {
            return f32::NAN;
        }
        match (x.is_infinite(), y.is_infinite()) {
            (true, true) => {
                if x.is_sign_positive() == y.is_sign_positive() {
                    x
                } else {
                    f32::NAN
                }
            }
            (true, false) => x,
            (false, true) => y,
            // Unreachable: the caller only routes here when at least one
            // operand is non-finite.
            (false, false) => unreachable!("add_special on finite operands"),
        }
    }

    /// Subtract (`x - y`) by flipping the sign through the XOR gate.
    #[inline]
    pub fn sub(&self, x: f32, y: f32) -> f32 {
        self.add(x, -y)
    }
}

/// Shift `mag` so its top set bit (at index `h`) lands at bit 23.
#[inline]
fn normalize_to_24(mag: u64, h: i32, round: NormRound) -> u32 {
    if h <= 23 {
        return (mag << (23 - h)) as u32; // exact left shift
    }
    let s = (h - 23) as u32;
    let mut man = (mag >> s) as u32;
    if round == NormRound::NearestEven {
        let rem = mag & ((1u64 << s) - 1);
        let half = 1u64 << (s - 1);
        if rem > half || (rem == half && man & 1 == 1) {
            man += 1;
            if man >> 24 != 0 {
                man >>= 1;
                // A carry out of bit 23 bumps the exponent; the caller's
                // `finish` sees the already-normalised mantissa, so we fold
                // the bump here by returning the 24-bit form. The exponent
                // adjustment is handled by re-deriving `h` below.
                return man | (1 << 31); // flag: exponent += 1
            }
        }
    }
    man
}

/// Clamp the exponent and pack, honouring the carry flag from rounding.
#[inline]
fn finish(sign: bool, mut exp: i32, man: u32) -> SoftFp32 {
    let man = if man & (1 << 31) != 0 {
        exp += 1;
        man & !(1 << 31)
    } else {
        man
    };
    debug_assert!(
        man >> FRAC_BITS == 1,
        "normalised mantissa expected, got {man:#x}"
    );
    SoftFp32 { sign, exp, man }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ulp::ulp_distance;

    fn hw() -> HwFp32Add {
        HwFp32Add::new(AddVariant::Exact48)
    }
    fn t24() -> HwFp32Add {
        HwFp32Add::new(AddVariant::Truncate24)
    }

    #[test]
    fn exact_sums_match_ieee() {
        let cases = [
            (1.0f32, 2.0f32, 3.0f32),
            (1.5, -0.25, 1.25),
            (-4.0, -8.0, -12.0),
            (1024.0, 0.5, 1024.5),
            (0.1, 0.0, 0.1),
            (0.0, -0.7, -0.7),
        ];
        for (x, y, want) in cases {
            assert_eq!(hw().add(x, y), want, "{x} + {y}");
            assert_eq!(t24().add(x, y), want, "{x} + {y} (t24)");
        }
    }

    #[test]
    fn exact48_within_one_ulp_of_ieee() {
        let mut state = 0x42u32;
        let mut next = |range_exp: u32| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            let e = 0x3f00_0000u32.wrapping_add((state % range_exp) << 23);
            f32::from_bits(e | ((state >> 9) & 0x7f_ffff)) * if state & 1 == 0 { 1.0 } else { -1.0 }
        };
        for _ in 0..20_000 {
            let x = next(12);
            let y = next(12);
            let ieee = x + y;
            let got = hw().add(x, y);
            if ieee == 0.0 {
                assert_eq!(got, 0.0);
            } else {
                assert!(
                    ulp_distance(got, ieee) <= 1,
                    "{x} + {y}: got {got}, ieee {ieee}"
                );
            }
        }
    }

    #[test]
    fn truncate24_absolute_error_bounded_by_operand_ulp() {
        // Pre-truncating the aligned mantissa loses at most 1 ulp of the
        // *larger* operand; verify that hardware bound.
        let mut state = 0x777u32;
        let mut next = || {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            let e = 0x3e00_0000u32.wrapping_add((state % 6) << 23);
            f32::from_bits(e | ((state >> 9) & 0x7f_ffff)) * if state & 1 == 0 { 1.0 } else { -1.0 }
        };
        for _ in 0..20_000 {
            let (x, y) = (next(), next());
            let got = t24().add(x, y) as f64;
            let exact = x as f64 + y as f64;
            let big = x.abs().max(y.abs());
            let ulp_big = (big as f64) * 2f64.powi(-23);
            assert!(
                (got - exact).abs() <= ulp_big + f64::EPSILON,
                "{x} + {y}: got {got}, exact {exact}"
            );
        }
    }

    #[test]
    fn cancellation_is_exact_when_exponents_are_close() {
        // Sterbenz: if y/2 <= x <= 2y the subtraction is exact even in
        // 24-bit hardware.
        let cases = [(1.0000001f32, 1.0f32), (3.5, 3.25), (1000.25, 999.75)];
        for (x, y) in cases {
            assert_eq!(hw().sub(x, y), x - y);
            assert_eq!(t24().sub(x, y), x - y);
        }
    }

    #[test]
    fn total_cancellation_returns_positive_zero() {
        assert_eq!(hw().add(1.5, -1.5).to_bits(), 0.0f32.to_bits());
        assert_eq!(t24().add(1.5, -1.5).to_bits(), 0.0f32.to_bits());
    }

    #[test]
    fn zero_operands() {
        assert_eq!(hw().add(0.0, 5.5), 5.5);
        assert_eq!(hw().add(-3.25, 0.0), -3.25);
        assert_eq!(hw().add(0.0, -0.0), 0.0);
        assert_eq!(hw().add(-0.0, -0.0).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn special_cases() {
        assert!(hw().add(f32::NAN, 1.0).is_nan());
        assert!(hw().add(f32::INFINITY, f32::NEG_INFINITY).is_nan());
        assert_eq!(hw().add(f32::INFINITY, 5.0), f32::INFINITY);
        assert_eq!(hw().add(-1.0, f32::NEG_INFINITY), f32::NEG_INFINITY);
        assert_eq!(hw().add(f32::INFINITY, f32::INFINITY), f32::INFINITY);
    }

    #[test]
    fn large_alignment_shift_keeps_larger_operand() {
        // When the exponent gap exceeds the datapath width the small operand
        // vanishes entirely.
        let big = 1.0e30f32;
        let tiny = 1.0e-30f32;
        assert_eq!(hw().add(big, tiny), big);
        assert_eq!(t24().add(big, tiny), big);
    }

    #[test]
    fn overflow_saturates() {
        assert_eq!(hw().add(f32::MAX, f32::MAX), f32::INFINITY);
        assert_eq!(hw().add(f32::MIN, f32::MIN), f32::NEG_INFINITY);
    }

    #[test]
    fn commutativity() {
        let mut state = 0x99u32;
        let mut next = || {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            f32::from_bits(0x3f00_0000 | (state >> 9)) * if state & 1 == 0 { 1.0 } else { -1.0 }
        };
        for _ in 0..5_000 {
            let (x, y) = (next(), next());
            assert_eq!(hw().add(x, y).to_bits(), hw().add(y, x).to_bits());
            assert_eq!(t24().add(x, y).to_bits(), t24().add(y, x).to_bits());
        }
    }
}
