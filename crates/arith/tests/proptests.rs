//! Property-based tests for the core arithmetic invariants.

use bfp_arith::bfp::{BfpBlock, BlockAcc, BLOCK};
use bfp_arith::fpadd::{AddVariant, HwFp32Add};
use bfp_arith::fpmul::{HwFp32Mul, MulVariant, NormRound};
use bfp_arith::matrix::MatF32;
use bfp_arith::packed::PackedBfp;
use bfp_arith::quant::{Quantizer, RoundMode};
use bfp_arith::softfp::SoftFp32;
use bfp_arith::stats::ErrorStats;
use bfp_arith::ulp::ulp_distance;
use proptest::prelude::*;

/// Finite, normal-range f32 values (the domain the FTZ datapath covers).
fn normal_f32() -> impl Strategy<Value = f32> {
    // Exponent range chosen so products and sums stay normal.
    (any::<u32>(), -30i32..30, any::<bool>()).prop_map(|(frac, e, neg)| {
        let bits = (((e + 127) as u32) << 23) | (frac & 0x7f_ffff);
        let v = f32::from_bits(bits);
        if neg {
            -v
        } else {
            v
        }
    })
}

fn tile() -> impl Strategy<Value = [[f32; BLOCK]; BLOCK]> {
    proptest::array::uniform8(proptest::array::uniform8(-100.0f32..100.0))
}

/// The full finite-input domain the quantizer must handle identically on
/// both epilogues: ordinary values, exact zeros, subnormals (FTZ'd by the
/// datapath but legal quantizer inputs), and values adjacent to the f32
/// overflow boundary (stressing the shared-exponent search).
fn quantizable_f32() -> impl Strategy<Value = f32> {
    (0u32..8, any::<u32>(), any::<bool>()).prop_map(|(kind, bits, neg)| {
        let v = match kind {
            // Ordinary magnitudes across a wide exponent span.
            0..=4 => {
                let e = 67 + (bits >> 23) % 120; // biased exponents 67..187
                f32::from_bits((e << 23) | (bits & 0x7f_ffff))
            }
            5 => 0.0,
            // Subnormal (or zero) bit patterns — FTZ'd by the datapath but
            // legal quantizer inputs.
            6 => f32::from_bits(bits & 0x7f_ffff),
            // Non-finite-adjacent magnitudes near the f32 overflow bound.
            _ => f32::MAX * (0.25 + (bits % 1024) as f32 / 1365.0),
        };
        if neg {
            -v
        } else {
            v
        }
    })
}

fn round_mode() -> impl Strategy<Value = RoundMode> {
    (0u32..3).prop_map(|k| match k {
        0 => RoundMode::NearestEven,
        1 => RoundMode::Truncate,
        _ => RoundMode::Stochastic,
    })
}

proptest! {
    #[test]
    fn softfp_roundtrip_is_identity(x in normal_f32()) {
        prop_assert_eq!(SoftFp32::unpack(x).pack().to_bits(), x.to_bits());
    }

    #[test]
    fn slices_always_reassemble(x in normal_f32()) {
        let u = SoftFp32::unpack(x);
        let r = SoftFp32::from_slices(u.sign, u.exp, u.slices());
        prop_assert_eq!(r, u);
    }

    #[test]
    fn exact_mul_with_rne_is_ieee(x in normal_f32(), y in normal_f32()) {
        let m = HwFp32Mul { variant: MulVariant::Exact, round: NormRound::NearestEven };
        let ieee = x * y;
        // Stay away from overflow/underflow where FTZ semantics differ.
        prop_assume!(ieee.is_finite() && ieee.abs() >= 1e-30 && ieee.abs() <= 1e30);
        prop_assert_eq!(m.mul(x, y).to_bits(), ieee.to_bits());
    }

    #[test]
    fn hw_mul_truncation_within_two_ulp(x in normal_f32(), y in normal_f32()) {
        let m = HwFp32Mul::new(MulVariant::DropLsp);
        let ieee = x * y;
        prop_assume!(ieee.is_finite() && ieee.abs() >= 1e-30 && ieee.abs() <= 1e30);
        prop_assert!(ulp_distance(m.mul(x, y), ieee) <= 2);
    }

    #[test]
    fn hw_mul_sign_symmetry(x in normal_f32(), y in normal_f32()) {
        let m = HwFp32Mul::new(MulVariant::DropLsp);
        prop_assert_eq!(m.mul(x, y).to_bits(), m.mul(-x, -y).to_bits());
        prop_assert_eq!(m.mul(-x, y).to_bits(), (-m.mul(x, y)).to_bits());
    }

    #[test]
    fn hw_mul_commutes(x in normal_f32(), y in normal_f32()) {
        let m = HwFp32Mul::new(MulVariant::DropLsp);
        prop_assert_eq!(m.mul(x, y).to_bits(), m.mul(y, x).to_bits());
    }

    #[test]
    fn hw_add_within_one_ulp(x in normal_f32(), y in normal_f32()) {
        let a = HwFp32Add::new(AddVariant::Exact48);
        let ieee = x + y;
        prop_assume!(ieee.is_finite());
        if ieee == 0.0 {
            prop_assert_eq!(a.add(x, y), 0.0);
        } else {
            prop_assume!(ieee.abs() >= 1e-30);
            prop_assert!(ulp_distance(a.add(x, y), ieee) <= 1,
                "{} + {} = {} (hw {})", x, y, ieee, a.add(x, y));
        }
    }

    #[test]
    fn hw_add_commutes(x in normal_f32(), y in normal_f32()) {
        let a = HwFp32Add::new(AddVariant::Exact48);
        prop_assert_eq!(a.add(x, y).to_bits(), a.add(y, x).to_bits());
    }

    #[test]
    fn hw_add_identity(x in normal_f32()) {
        let a = HwFp32Add::new(AddVariant::Exact48);
        prop_assert_eq!(a.add(x, 0.0).to_bits(), x.to_bits());
        let t = HwFp32Add::new(AddVariant::Truncate24);
        prop_assert_eq!(t.add(x, 0.0).to_bits(), x.to_bits());
    }

    #[test]
    fn hw_sub_self_is_zero(x in normal_f32()) {
        let a = HwFp32Add::new(AddVariant::Exact48);
        prop_assert_eq!(a.sub(x, x), 0.0);
    }

    #[test]
    fn bfp_quantize_error_bounded_by_half_step(t in tile()) {
        let b = BfpBlock::quantize(&t);
        let step = (b.exp as f64).exp2();
        let back = b.to_f32();
        for i in 0..BLOCK {
            for j in 0..BLOCK {
                let err = (back[i][j] as f64 - t[i][j] as f64).abs();
                prop_assert!(err <= step / 2.0 + 1e-9,
                    "({},{}) err {} > {}", i, j, err, step / 2.0);
            }
        }
    }

    #[test]
    fn bfp_quantize_mantissas_in_symmetric_range(t in tile()) {
        let b = BfpBlock::quantize(&t);
        for row in &b.man {
            for &m in row {
                prop_assert!((-127..=127).contains(&(m as i32)));
            }
        }
    }

    #[test]
    fn bfp_matmul_tracks_f64_reference(ta in tile(), tb in tile()) {
        let (a, b) = (BfpBlock::quantize(&ta), BfpBlock::quantize(&tb));
        // Reference product of the *quantized* inputs is exact in f64.
        let da = a.to_f32();
        let db = b.to_f32();
        let got = a.matmul(&b).to_f32();
        for i in 0..BLOCK {
            for j in 0..BLOCK {
                let want: f64 = (0..BLOCK).map(|k| da[i][k] as f64 * db[k][j] as f64).sum();
                prop_assert!((got[i][j] as f64 - want).abs() <= want.abs() * 1e-6 + 1e-6);
            }
        }
    }

    #[test]
    fn bfp_accumulation_order_alignment_is_monotone(ta in tile(), tb in tile(), tc in tile()) {
        // Accumulating does not lose more than alignment truncation allows:
        // result within 1 LSB-of-largest-exponent per added block.
        let a = BfpBlock::quantize(&ta).matmul(&BfpBlock::quantize(&tb));
        let c = BfpBlock::quantize(&tc).matmul(&BfpBlock::quantize(&tb));
        let mut acc = BlockAcc::new();
        acc.add(&a).unwrap();
        acc.add(&c).unwrap();
        let got = acc.value().to_f32();
        let fa = a.to_f32();
        let fc = c.to_f32();
        let lsb = (acc.value().exp as f64).exp2();
        for i in 0..BLOCK {
            for j in 0..BLOCK {
                let want = fa[i][j] as f64 + fc[i][j] as f64;
                prop_assert!((got[i][j] as f64 - want).abs() <= 2.0 * lsb + want.abs() * 1e-6);
            }
        }
    }

    #[test]
    fn matrix_quantized_matmul_sqnr_floor(
        seed in 0u64..1000,
        rows in 1usize..24,
        inner in 1usize..24,
        cols in 1usize..24,
    ) {
        // Smooth inputs: the bfp8 pipeline keeps > 25 dB SQNR vs f32.
        let a = MatF32::from_fn(rows, inner, |i, j| {
            ((seed as f32) * 0.01 + i as f32 * 0.31 + j as f32 * 0.17).sin()
        });
        let b = MatF32::from_fn(inner, cols, |i, j| {
            ((seed as f32) * 0.02 - i as f32 * 0.23 + j as f32 * 0.11).cos()
        });
        let q = Quantizer::paper();
        let got = q.quantize(&a).unwrap().matmul(&q.quantize(&b).unwrap());
        let want = a.matmul(&b);
        let mut s = ErrorStats::new();
        s.push_slices(got.data(), want.data());
        // Cancellation-dominated outputs (RMS far below the operand scale)
        // legitimately lose *relative* accuracy — absolute noise is set by
        // the inputs, not the output. Enforce the SQNR floor only where the
        // output carries signal at the operand scale.
        let rms = (s.signal_energy / s.count as f64).sqrt();
        if rms > 0.5 {
            prop_assert!(s.sqnr_db() > 25.0, "SQNR {} at rms {rms}", s.sqnr_db());
        }
    }

    #[test]
    fn fused_quantize_pack_equals_composed_path(
        rows in 1usize..22,
        cols in 1usize..22,
        round in round_mode(),
        values in proptest::collection::vec(quantizable_f32(), 22 * 22),
    ) {
        // The fused f32 → block-major epilogue must be indistinguishable
        // from quantize-then-pack for BOTH sides, on every rounding mode,
        // across the whole finite input domain (subnormals, zero tiles,
        // near-overflow magnitudes) — including which error it reports.
        let m = MatF32::from_fn(rows, cols, |i, j| values[i * 22 + j]);
        let q = Quantizer { round, ..Quantizer::paper() };
        let fused = PackedBfp::quantize_pack_lhs(&q, &m);
        let composed = q.quantize(&m).map(|qm| PackedBfp::pack_lhs(&qm));
        match (fused, composed) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert_eq!(format!("{:?}", a.err()), format!("{:?}", b.err())),
        }
        let fused = PackedBfp::quantize_pack_rhs(&q, &m);
        let composed = q.quantize(&m).map(|qm| PackedBfp::pack_rhs(&qm));
        match (fused, composed) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert_eq!(format!("{:?}", a.err()), format!("{:?}", b.err())),
        }
    }

    #[test]
    fn reference_tile_scan_matches_optimized_scan(
        rows in 1usize..22,
        cols in 1usize..22,
        values in proptest::collection::vec(quantizable_f32(), 22 * 22),
    ) {
        // The kept pre-optimisation scan (`quantize_reference`, replayed by
        // the e2e baseline engine) and the row-slice scan must agree on
        // every tile of every finite input.
        let m = MatF32::from_fn(rows, cols, |i, j| values[i * 22 + j]);
        let q = Quantizer::paper();
        match (q.quantize(&m), q.quantize_reference(&m)) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(PackedBfp::pack_lhs(&a), PackedBfp::pack_lhs(&b));
            }
            (a, b) => prop_assert_eq!(format!("{:?}", a.err()), format!("{:?}", b.err())),
        }
    }
}
