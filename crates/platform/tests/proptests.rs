//! Property tests for the platform models: monotonicity and conservation
//! laws the resource/memory/roofline models must obey.

use bfp_arith::matrix::MatF32;
use bfp_platform::{
    bfp8_pass_intensity, ArrayParams, MemParams, PuCostModel, Roofline, System, SystemConfig,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn resource_model_is_monotone_in_array_size(r in 1usize..32, c in 1usize..32) {
        let small = PuCostModel::unit_total(ArrayParams { rows: r, cols: c });
        let big = PuCostModel::unit_total(ArrayParams { rows: r + 1, cols: c + 1 });
        prop_assert!(big.lut >= small.lut);
        prop_assert!(big.ff >= small.ff);
        prop_assert!(big.dsp > small.dsp);
    }

    #[test]
    fn measured_throughput_is_monotone_and_bounded(nx in 1usize..=64) {
        let m = MemParams::paper_calibrated();
        let t = m.measured_bfp_ops(nx, 300.0e6);
        prop_assert!(t > 0.0);
        prop_assert!(t <= bfp_pu::throughput::bfp_throughput(nx, 300.0e6));
        if nx > 1 {
            prop_assert!(t > m.measured_bfp_ops(nx - 1, 300.0e6));
        }
    }

    #[test]
    fn fp32_measured_bounded_by_eqn10(l in 1usize..=128) {
        let m = MemParams::paper_calibrated();
        let t = m.measured_fp32_flops(l, 300.0e6);
        prop_assert!(t > 0.0);
        prop_assert!(t <= bfp_pu::throughput::fp32_throughput(l, 300.0e6));
    }

    #[test]
    fn roofline_attainable_never_exceeds_either_ceiling(
        intensity in 0.001f64..1000.0,
    ) {
        let r = Roofline::bfp8(SystemConfig::paper(), 300.0e6);
        let a = r.attainable(intensity);
        prop_assert!(a <= r.peak_ops_per_sec + 1e-6);
        prop_assert!(a <= r.mem_bytes_per_sec * intensity + 1e-6);
        // And it is exactly the binding constraint.
        prop_assert!(
            (a - r.peak_ops_per_sec.min(r.mem_bytes_per_sec * intensity)).abs() < 1e-6
        );
    }

    #[test]
    fn pass_intensity_monotone(nx in 2usize..=64) {
        prop_assert!(bfp8_pass_intensity(nx) > bfp8_pass_intensity(nx - 1));
    }

    #[test]
    fn system_gemm_matches_reference_for_small_integers(
        m in 1usize..20,
        k in 1usize..20,
        n in 1usize..20,
        seed in 0u64..100,
    ) {
        // Integer-valued inputs within +-10 are exact under bfp8, so the
        // parallel card must reproduce the f32 product exactly for any
        // shard split.
        let a = MatF32::from_fn(m, k, |i, j| (((i * 7 + j * 3 + seed as usize) % 21) as f32) - 10.0);
        let b = MatF32::from_fn(k, n, |i, j| (((i * 5 + j * 11 + seed as usize) % 19) as f32) - 9.0);
        let (got, stats) = System::paper().matmul_f32(&a, &b);
        prop_assert_eq!(got, a.matmul(&b));
        prop_assert!(stats.total_bfp_ops() > 0);
    }

    #[test]
    fn shell_plus_units_never_exceed_the_device(units in 1usize..=15) {
        use bfp_platform::U280;
        let sys = System {
            cfg: SystemConfig { units, arrays_per_unit: 2 },
            ..System::paper()
        };
        let r = sys.resources();
        prop_assert!(r.lut <= U280::LUT as f64);
        prop_assert!(r.ff <= U280::FF as f64);
        prop_assert!(r.dsp <= U280::DSP as f64);
    }
}
