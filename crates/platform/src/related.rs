//! The related-work comparison dataset behind Table III.
//!
//! Rows for prior accelerators are transcribed from the paper (they are
//! published results, not something we can re-measure); the "Ours" row is
//! **computed** by the system model in [`crate::system`] so the comparison
//! binary regenerates the table rather than hard-coding our own numbers.

/// One accelerator in the comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct RelatedWork {
    /// Citation label as printed in the paper.
    pub work: &'static str,
    /// Arithmetic format(s).
    pub data_format: &'static str,
    /// Target workload family.
    pub application: &'static str,
    /// Whether deployment requires quantization-aware retraining.
    pub needs_retraining: bool,
    /// FPGA device.
    pub platform: &'static str,
    /// LUTs, in thousands.
    pub lut_k: f64,
    /// Flip-flops, in thousands (None where the paper prints "-").
    pub ff_k: Option<f64>,
    /// BRAM count (None where unreported).
    pub bram: Option<f64>,
    /// DSP count.
    pub dsp: u32,
    /// Clock frequency in MHz.
    pub freq_mhz: u32,
    /// Reported throughput in GOPS.
    pub gops: f64,
}

impl RelatedWork {
    /// DSP efficiency in GOPS per DSP (the paper's last column).
    pub fn gops_per_dsp(&self) -> f64 {
        self.gops / self.dsp as f64
    }
}

/// The seven prior works of Table III, in the paper's row order.
pub fn prior_works() -> Vec<RelatedWork> {
    vec![
        RelatedWork {
            work: "Lian et al. [17]",
            data_format: "bfp8",
            application: "CNN",
            needs_retraining: false,
            platform: "VX690T",
            lut_k: 231.8,
            ff_k: Some(141.0),
            bram: Some(913.0),
            dsp: 1027,
            freq_mhz: 200,
            gops: 760.83,
        },
        RelatedWork {
            work: "Wu et al. [18]",
            data_format: "fp8",
            application: "CNN",
            needs_retraining: false,
            platform: "XC7K325T",
            lut_k: 154.6,
            ff_k: Some(180.6),
            bram: Some(234.5),
            dsp: 768,
            freq_mhz: 200,
            gops: 1086.8,
        },
        RelatedWork {
            work: "Fan et al. [19]",
            data_format: "bfp8",
            application: "CNN",
            needs_retraining: false,
            platform: "Intel GX1150",
            lut_k: 437.2,
            ff_k: Some(170.9),
            bram: Some(2713.0),
            dsp: 1518,
            freq_mhz: 220,
            gops: 1667.0,
        },
        RelatedWork {
            work: "Wong et al. [20]",
            data_format: "bfp10",
            application: "CNN",
            needs_retraining: false,
            platform: "KU115",
            lut_k: 386.3,
            ff_k: Some(425.6),
            bram: Some(1426.0),
            dsp: 4492,
            freq_mhz: 125,
            gops: 794.0,
        },
        RelatedWork {
            work: "Auto-ViT-Acc [21]",
            data_format: "int4 & int8",
            application: "Transformer",
            needs_retraining: true,
            platform: "ZCU102",
            lut_k: 185.0,
            ff_k: None,
            bram: None,
            dsp: 1152,
            freq_mhz: 150,
            gops: 907.8,
        },
        RelatedWork {
            work: "ViA [22]",
            data_format: "fp16",
            application: "Transformer",
            needs_retraining: false,
            platform: "Alveo U50",
            lut_k: 258.0,
            ff_k: Some(257.0),
            bram: Some(1002.0),
            dsp: 2420,
            freq_mhz: 300,
            gops: 309.6,
        },
        RelatedWork {
            work: "Ye et al. [23]",
            data_format: "int8 & int16",
            application: "Transformer",
            needs_retraining: true,
            platform: "Alveo U250",
            lut_k: 736.0,
            ff_k: None,
            bram: Some(1781.0),
            dsp: 4189,
            freq_mhz: 300,
            gops: 1800.0,
        },
    ]
}

/// The paper's reported numbers for its own system (the bottom row of
/// Table III) — used by tests to check our *computed* row lands close.
pub fn paper_ours_row() -> RelatedWork {
    RelatedWork {
        work: "Ours",
        data_format: "bfp8 & fp32",
        application: "Transformer",
        needs_retraining: false,
        platform: "Alveo U280",
        lut_k: 410.6,
        ff_k: Some(602.7),
        bram: Some(1353.0),
        dsp: 2163,
        freq_mhz: 300,
        gops: 2052.06,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_prior_rows() {
        assert_eq!(prior_works().len(), 7);
    }

    #[test]
    fn efficiency_column_matches_paper() {
        // Spot-check the GOPS/DSP values the paper prints.
        let rows = prior_works();
        let eff: Vec<f64> = rows.iter().map(|r| r.gops_per_dsp()).collect();
        let paper = [0.74, 1.42, 1.24, 0.18, 0.79, 0.13, 0.43];
        for (i, (&got, &want)) in eff.iter().zip(paper.iter()).enumerate() {
            // Two printed efficiency entries don't match their own row's
            // GOPS/DSP quotient (Fan et al.: 1667/1518 = 1.10, printed
            // 1.24; Auto-ViT-Acc: 907.8/1152 = 0.79, printed 0.59). We
            // keep the computed values and note the discrepancy in
            // EXPERIMENTS.md.
            if i == 2 || i == 4 {
                continue;
            }
            assert!((got - want).abs() < 0.01, "row {i}: {got} vs {want}");
        }
    }

    #[test]
    fn ours_row_efficiency_is_0_95() {
        let ours = paper_ours_row();
        assert!((ours.gops_per_dsp() - 0.95).abs() < 0.005);
    }

    #[test]
    fn only_retraining_free_transformer_designs_are_ola_and_ours() {
        let rows = prior_works();
        let transformer_no_retrain: Vec<&str> = rows
            .iter()
            .filter(|r| r.application == "Transformer" && !r.needs_retraining)
            .map(|r| r.work)
            .collect();
        assert_eq!(transformer_no_retrain, vec!["ViA [22]"]);
    }
}
