//! Transaction-level AXI/HBM timing: a first-principles derivation of the
//! per-pass overheads that [`crate::hbm::MemParams`] carries as calibrated
//! constants.
//!
//! The model captures what the paper describes about its own memory path:
//!
//! * In **bfp8 MatMul** mode the X stream is long and sequential, so the
//!   DMA engine keeps it ahead of the systolic array (streaming overlap);
//!   what remains exposed per pass is the serialized Y-pair fetch — one
//!   request latency plus a handful of data beats — and the pass
//!   handshake.
//! * In **fp32 vector** mode "the fp32 operations have more random memory
//!   access" and the compiler has not "enabled larger burst lengths", so
//!   operand fetches issue as short bursts whose request latencies cannot
//!   be hidden behind the (much shorter) compute; only a small number of
//!   outstanding requests overlap each other.
//!
//! With one set of physically-plausible parameters (40-cycle HBM read
//! latency at 300 MHz, 32-byte beats, 64-beat max bursts, 2 outstanding
//! requests) the model lands on the same per-pass overheads the
//! calibration fitted — the tests pin that agreement, closing the loop
//! between "fitted to the paper's two operating points" and "derivable
//! from transaction timing".

/// AXI/HBM channel timing parameters (cycles at the kernel clock).
#[derive(Debug, Clone, Copy)]
pub struct AxiParams {
    /// Request-to-first-beat read latency (HBM2 ≈ 130 ns ≈ 40 cycles at
    /// 300 MHz through the switch).
    pub read_latency: u64,
    /// Payload bytes per data beat (256-bit AXI).
    pub bytes_per_beat: usize,
    /// Maximum beats per burst the interconnect accepts.
    pub max_burst_beats: usize,
    /// Read requests the master keeps in flight.
    pub outstanding: usize,
}

impl Default for AxiParams {
    fn default() -> Self {
        AxiParams {
            read_latency: 40,
            bytes_per_beat: 32,
            max_burst_beats: 64,
            outstanding: 2,
        }
    }
}

impl AxiParams {
    /// Cycles to move `bytes` as one sequential stream: per-burst request
    /// latencies (pipelined `outstanding`-deep) plus the data beats.
    pub fn sequential_transfer_cycles(&self, bytes: usize) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let beats = bytes.div_ceil(self.bytes_per_beat);
        let bursts = beats.div_ceil(self.max_burst_beats) as u64;
        // With deep bursts, only the first request latency is exposed; the
        // rest pipeline behind data return.
        self.read_latency + bursts.saturating_sub(1) + beats as u64
    }

    /// Cycles to move `total_elems` fp32 values fetched as short bursts of
    /// `elems_per_burst` (the unoptimised access pattern): request
    /// latencies dominate and only `outstanding` of them overlap.
    pub fn scattered_transfer_cycles(&self, total_elems: usize, elems_per_burst: usize) -> u64 {
        if total_elems == 0 {
            return 0;
        }
        let bursts = total_elems.div_ceil(elems_per_burst) as u64;
        let beats_per_burst = (elems_per_burst * 4).div_ceil(self.bytes_per_beat) as u64;
        let per_burst = self.read_latency + beats_per_burst;
        // `outstanding` requests overlap; the stream completes in waves.
        bursts.div_ceil(self.outstanding as u64) * per_burst
    }

    /// Modelled exposed overhead of one bfp8 pass: the Y-pair fetch
    /// serialises with compute (the X stream overlaps), plus a pass
    /// handshake of a few control cycles.
    pub fn bfp8_pass_exposed_cycles(&self) -> u64 {
        let y_bytes = 2 * 65; // two blocks: 64 mantissas + exponent each
        self.sequential_transfer_cycles(y_bytes) + 4
    }

    /// Modelled exposed overhead of one fp32 burst of per-lane length `l`:
    /// two operand streams fetched as short transactions of
    /// `elems_per_txn` values per lane (the crossbar gathers all four
    /// lanes per transaction), minus the compute they can hide under.
    pub fn fp32_burst_exposed_cycles(&self, l: usize, elems_per_txn: usize) -> u64 {
        let bursts = (2 * l.div_ceil(elems_per_txn)) as u64;
        let bytes_per_txn = elems_per_txn * 4 /* lanes */ * 4 /* B */;
        let beats = bytes_per_txn.div_ceil(self.bytes_per_beat) as u64;
        let per_burst = self.read_latency + beats;
        let fetch = bursts.div_ceil(self.outstanding as u64) * per_burst;
        let compute = (l + 8) as u64;
        fetch.saturating_sub(compute.min(fetch)) + self.read_latency.min(fetch) // the first wave is never hidden
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hbm::MemParams;

    #[test]
    fn sequential_streams_amortise_latency() {
        let p = AxiParams::default();
        let small = p.sequential_transfer_cycles(65);
        let big = p.sequential_transfer_cycles(65 * 64);
        // 64x the data costs far less than 64x the cycles.
        assert!(big < small * 8, "big {big} vs small {small}");
    }

    #[test]
    fn scattered_access_is_latency_dominated() {
        let p = AxiParams::default();
        let scattered = p.scattered_transfer_cycles(1024, 32);
        let sequential = p.sequential_transfer_cycles(1024 * 4);
        assert!(
            scattered > 2 * sequential,
            "scattered {scattered} vs sequential {sequential}"
        );
    }

    #[test]
    fn bfp8_exposed_overhead_matches_the_calibrated_constant() {
        // First-principles transaction timing lands on the overhead that
        // was fitted to the paper's 2052.06 GOPS point (≈ 48 cycles/pass).
        let modelled = AxiParams::default().bfp8_pass_exposed_cycles() as f64;
        let calibrated = MemParams::paper_calibrated().bfp_pass_overhead(64);
        let rel = (modelled - calibrated).abs() / calibrated;
        assert!(
            rel < 0.15,
            "modelled {modelled:.1} vs calibrated {calibrated:.1} cycles"
        );
    }

    #[test]
    fn fp32_exposed_overhead_matches_the_calibrated_constant() {
        // Same check for the fp32 operating point (≈ 171 cycles/burst at
        // L = 128, implied by Table IV's 15 GFLOPS).
        let modelled = AxiParams::default().fp32_burst_exposed_cycles(128, 32) as f64;
        let calibrated = MemParams::paper_calibrated().fp_burst_overhead(128);
        let rel = (modelled - calibrated).abs() / calibrated;
        assert!(
            rel < 0.35,
            "modelled {modelled:.1} vs calibrated {calibrated:.1} cycles"
        );
    }

    #[test]
    fn larger_bursts_would_close_the_fp32_gap() {
        // The paper's future-work claim: "larger burst lengths for fp32"
        // recover throughput. Quadrupling the burst size cuts the exposed
        // overhead by more than half.
        let p = AxiParams::default();
        let short = p.fp32_burst_exposed_cycles(128, 32);
        let long = p.fp32_burst_exposed_cycles(128, 128);
        assert!(
            long * 2 < short,
            "128-elem bursts: {long} vs 32-elem bursts: {short}"
        );
    }

    #[test]
    fn zero_traffic_costs_nothing() {
        let p = AxiParams::default();
        assert_eq!(p.sequential_transfer_cycles(0), 0);
        assert_eq!(p.scattered_transfer_cycles(0, 32), 0);
    }
}
