//! The full-card system: 15 processing units × 2 arrays running in
//! parallel, fed by HBM.
//!
//! GEMM workloads are sharded across arrays by output block-rows (each
//! array owns its PSU bank, so M-tiles are the natural parallel axis) and
//! simulated concurrently with scoped threads — the simulation itself is a
//! parallel program, one thread per modelled array.

use std::fmt;

use bfp_arith::error::ArithError;
use bfp_arith::matrix::MatF32;
use bfp_arith::quant::Quantizer;
use bfp_pu::unit::{grid_from_matrix, BlockGrid, CycleStats, ProcessingUnit, UnitConfig};
use bfp_telemetry::{fmt_si, Registry, Table};
use parking_lot::Mutex;

use crate::hbm::MemParams;
use crate::related::RelatedWork;
use crate::resources::{ArrayParams, PuCostModel, ResourceVec};
use crate::u280::{SystemConfig, U280};

/// The Vitis platform shell + HBM switch occupancy, calibrated as the
/// residual between Table III's reported totals and 15 × our per-unit
/// model (see DESIGN.md: published synthesis numbers cannot be re-derived
/// in Rust, so the shell absorbs the difference explicitly).
pub const SHELL: ResourceVec = ResourceVec::new(265_070.0, 412_140.0, 490.5, 3.0);

/// System-level execution statistics.
#[derive(Debug, Clone, Default)]
pub struct SystemStats {
    /// Per-array cycle statistics.
    pub per_array: Vec<CycleStats>,
    /// Memory overhead cycles added to the critical path.
    pub mem_overhead_cycles: f64,
    /// Fault events observed during this execution and what the recovery
    /// layer did about them. Clean (all zeros) when no fault session is
    /// installed.
    pub faults: bfp_faults::FaultReport,
    /// Serving-runtime snapshot, when this statistic block was produced
    /// by a serving fleet rather than a single GEMM (`None` otherwise).
    pub serve: Option<crate::serving::ServeStats>,
}

impl SystemStats {
    /// The critical path in cycles: slowest array plus memory overhead.
    pub fn critical_cycles(&self) -> f64 {
        self.per_array.iter().map(|s| s.cycles).max().unwrap_or(0) as f64 + self.mem_overhead_cycles
    }

    /// Wall-clock seconds at `freq` Hz.
    pub fn seconds(&self, freq: f64) -> f64 {
        self.critical_cycles() / freq
    }

    /// Total bfp8 ops across arrays.
    pub fn total_bfp_ops(&self) -> u64 {
        self.per_array.iter().map(|s| s.bfp_ops).sum()
    }

    /// Achieved system throughput in OPS.
    pub fn bfp_ops_per_sec(&self, freq: f64) -> f64 {
        let s = self.seconds(freq);
        if s == 0.0 {
            0.0
        } else {
            self.total_bfp_ops() as f64 / s
        }
    }

    /// Publish the snapshot into a metrics [`Registry`] as gauges
    /// (idempotent: re-publishing a newer snapshot overwrites). Includes
    /// the fault counters and, when present, the serving snapshot.
    pub fn publish(&self, reg: &Registry) {
        reg.gauge("system_arrays").set(self.per_array.len() as f64);
        reg.gauge("system_critical_cycles")
            .set(self.critical_cycles());
        reg.gauge("system_mem_overhead_cycles")
            .set(self.mem_overhead_cycles);
        reg.gauge("system_bfp_ops").set(self.total_bfp_ops() as f64);
        let c = &self.faults.counters;
        reg.gauge("faults_injected").set(c.injected as f64);
        reg.gauge("faults_ecc_corrected").set(c.ecc_corrected as f64);
        reg.gauge("faults_ecc_uncorrected")
            .set(c.ecc_uncorrected as f64);
        reg.gauge("faults_tmr_corrected").set(c.tmr_corrected as f64);
        reg.gauge("faults_tmr_uncorrected")
            .set(c.tmr_uncorrected as f64);
        reg.gauge("faults_stuck_lane_hits")
            .set(c.stuck_lane_hits as f64);
        reg.gauge("faults_dropped_partials")
            .set(c.dropped_partials as f64);
        reg.gauge("faults_detected").set(self.faults.detected as f64);
        reg.gauge("faults_retries").set(self.faults.retries as f64);
        reg.gauge("faults_fp32_fallbacks")
            .set(self.faults.fp32_fallbacks as f64);
        if let Some(serve) = &self.serve {
            serve.publish(reg);
        }
    }
}

impl fmt::Display for SystemStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "system execution",
            &["arrays", "critical cycles", "mem overhead", "bfp8 ops"],
        );
        t.row(&[
            self.per_array.len().to_string(),
            fmt_si(self.critical_cycles()),
            fmt_si(self.mem_overhead_cycles),
            fmt_si(self.total_bfp_ops() as f64),
        ]);
        write!(f, "{}", t.render())?;
        if !self.faults.is_clean() {
            write!(f, "{}", self.faults)?;
        }
        if let Some(serve) = &self.serve {
            write!(f, "{serve}")?;
        }
        Ok(())
    }
}

/// The modelled accelerator card.
///
/// ```
/// use bfp_platform::System;
///
/// let sys = System::paper();
/// // The paper's two headline throughput numbers fall out of the model:
/// assert!((sys.measured_bfp_gops(64) - 2052.06).abs() < 10.0);
/// assert!((sys.theoretical_fp32_gflops(128) - 33.88).abs() < 0.01);
/// ```
#[derive(Debug, Clone)]
pub struct System {
    /// Unit/array configuration.
    pub cfg: SystemConfig,
    /// Memory-system timing.
    pub mem: MemParams,
    /// Kernel clock in Hz.
    pub freq_hz: f64,
    /// Per-array execution settings.
    pub unit_cfg: UnitConfig,
}

impl Default for System {
    fn default() -> Self {
        Self::paper()
    }
}

impl System {
    /// The paper's deployment: 30 arrays at 300 MHz with the calibrated
    /// memory model.
    pub fn paper() -> Self {
        System {
            cfg: SystemConfig::paper(),
            mem: MemParams::paper_calibrated(),
            freq_hz: U280::FREQ_HZ,
            unit_cfg: UnitConfig::default(),
        }
    }

    /// Quantize two f32 matrices and multiply them across all arrays.
    /// Returns the dequantized result and system statistics.
    ///
    /// # Panics
    /// Panics where [`System::try_matmul_f32`] would return an error:
    /// non-finite inputs or an inner-dimension mismatch.
    pub fn matmul_f32(&self, a: &MatF32, b: &MatF32) -> (MatF32, SystemStats) {
        self.try_matmul_f32(a, b)
            .unwrap_or_else(|e| panic!("matmul_f32: {e}"))
    }

    /// Fallible [`System::matmul_f32`]: reports non-finite inputs and
    /// dimension mismatches as typed errors so a scheduler can degrade
    /// instead of crashing the simulation.
    pub fn try_matmul_f32(
        &self,
        a: &MatF32,
        b: &MatF32,
    ) -> Result<(MatF32, SystemStats), ArithError> {
        if a.cols() != b.rows() {
            return Err(ArithError::DimensionMismatch {
                got: format!("lhs {}x{}, rhs {}x{}", a.rows(), a.cols(), b.rows(), b.cols()),
                expected: "lhs cols == rhs rows".into(),
            });
        }
        let q = Quantizer::paper();
        let qa = q.quantize(a)?;
        let qb = q.quantize(b)?;
        let ga = grid_from_matrix(&qa);
        let gb = grid_from_matrix(&qb);
        let (grid, stats) = self.matmul_blocks(&ga, &gb);

        let out = MatF32::from_fn(a.rows(), b.cols(), |i, j| {
            let w = &grid[i / 8][j / 8];
            (w.man[i % 8][j % 8] as f64 * (w.exp as f64).exp2()) as f32
        });
        Ok((out, stats))
    }

    /// Multiply two block grids, sharding output block-rows across arrays.
    pub fn matmul_blocks(
        &self,
        a: &BlockGrid,
        b: &BlockGrid,
    ) -> (Vec<Vec<bfp_arith::bfp::WideBlock>>, SystemStats) {
        let mb = a.len();
        let arrays = self.cfg.total_arrays().max(1);
        // Contiguous shards of block-rows, one per array (empty for spares).
        let per = mb.div_ceil(arrays);
        let results = Mutex::new(vec![None; arrays]);
        let faults_before = bfp_faults::counters();

        crossbeam::thread::scope(|scope| {
            for t in 0..arrays {
                let lo = (t * per).min(mb);
                let hi = ((t + 1) * per).min(mb);
                let results = &results;
                let unit_cfg = self.unit_cfg;
                let a = &a;
                let b = &b;
                scope.spawn(move |_| {
                    if lo >= hi {
                        results.lock()[t] = Some((Vec::new(), CycleStats::default()));
                        return;
                    }
                    let shard: BlockGrid = a[lo..hi].to_vec();
                    let mut unit = ProcessingUnit::new(unit_cfg);
                    let grid = unit.matmul_grid(&shard, b);
                    results.lock()[t] = Some((grid, unit.take_stats()));
                });
            }
        })
        .expect("array simulation thread panicked");

        let mut grid = Vec::with_capacity(mb);
        let mut stats = SystemStats::default();
        let mut passes = 0f64;
        for (t, slot) in results.into_inner().into_iter().enumerate() {
            let (g, s) = slot.expect("every shard completes");
            let _ = t;
            // Count memory overhead per pass executed on this array.
            let nb = b.first().map(|r| r.len()).unwrap_or(0);
            let kb = b.len();
            let shard_rows = g.len();
            if shard_rows > 0 {
                let n_pairs = nb.div_ceil(2);
                let chunks = shard_rows.div_ceil(bfp_pu::MAX_X_BLOCKS);
                passes = passes.max(
                    (n_pairs * kb * chunks) as f64
                        * self
                            .mem
                            .bfp_pass_overhead(shard_rows.min(bfp_pu::MAX_X_BLOCKS)),
                );
            }
            stats.per_array.push(s);
            grid.extend(g);
        }
        stats.mem_overhead_cycles = passes;
        stats.faults.counters = bfp_faults::counters() - faults_before;
        (grid, stats)
    }

    /// Measured (memory-inclusive) system bfp8 throughput for Fig. 7-style
    /// microbenchmarks at stream length `n_x`.
    pub fn measured_bfp_gops(&self, n_x: usize) -> f64 {
        self.mem.measured_bfp_ops(n_x, self.freq_hz) * self.cfg.total_arrays() as f64 / 1e9
    }

    /// Measured system fp32 throughput (GFLOPS) at per-lane stream length
    /// `l`.
    pub fn measured_fp32_gflops(&self, l: usize) -> f64 {
        self.mem.measured_fp32_flops(l, self.freq_hz) * self.cfg.total_arrays() as f64 / 1e9
    }

    /// Theoretical (Eqn. 9) system bfp8 throughput in GOPS.
    pub fn theoretical_bfp_gops(&self, n_x: usize) -> f64 {
        bfp_pu::throughput::bfp_throughput(n_x, self.freq_hz) * self.cfg.total_arrays() as f64 / 1e9
    }

    /// Theoretical (Eqn. 10) system fp32 throughput in GFLOPS.
    pub fn theoretical_fp32_gflops(&self, l: usize) -> f64 {
        bfp_pu::throughput::fp32_throughput(l, self.freq_hz) * self.cfg.total_arrays() as f64 / 1e9
    }

    /// Modelled whole-card resource usage: 15 units (each two arrays
    /// sharing one buffer/interface set) plus the platform shell.
    pub fn resources(&self) -> ResourceVec {
        let p = ArrayParams::default();
        let array_level = PuCostModel::pe_array(p).usage
            + PuCostModel::shifter_acc(p).usage
            + PuCostModel::exponent_unit(p).usage;
        let shared = PuCostModel::buffer_layout(p).usage
            + PuCostModel::quantizer(p).usage
            + PuCostModel::misc(p).usage
            + PuCostModel::memory_interface(p).usage
            + PuCostModel::controller(p).usage;
        let per_unit = array_level * self.cfg.arrays_per_unit as f64 + shared;
        per_unit * self.cfg.units as f64 + SHELL
    }

    /// Our computed Table III row.
    pub fn table3_row(&self) -> RelatedWork {
        let r = self.resources();
        RelatedWork {
            work: "Ours (modelled)",
            data_format: "bfp8 & fp32",
            application: "Transformer",
            needs_retraining: false,
            platform: "Alveo U280",
            lut_k: r.lut / 1e3,
            ff_k: Some(r.ff / 1e3),
            bram: Some(r.bram),
            dsp: r.dsp as u32,
            freq_mhz: (self.freq_hz / 1e6) as u32,
            gops: self.measured_bfp_gops(64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::related::paper_ours_row;

    fn ramp(rows: usize, cols: usize) -> MatF32 {
        MatF32::from_fn(rows, cols, |i, j| ((i * cols + j) % 17) as f32 - 8.0)
    }

    #[test]
    fn parallel_matmul_matches_single_unit() {
        let a = ramp(48, 24);
        let b = ramp(24, 16);
        let sys = System::paper();
        let (got, stats) = sys.matmul_f32(&a, &b);
        assert_eq!(got, a.matmul(&b), "exact integer inputs stay exact");
        assert_eq!(stats.per_array.len(), 30);
        assert!(stats.total_bfp_ops() > 0);
    }

    #[test]
    fn sharding_covers_all_rows_for_odd_sizes() {
        let a = ramp(72, 8); // 9 block rows over 30 arrays
        let b = ramp(8, 8);
        let sys = System::paper();
        let (got, _) = sys.matmul_f32(&a, &b);
        assert_eq!(got, a.matmul(&b));
    }

    #[test]
    fn single_array_system_works() {
        let sys = System {
            cfg: SystemConfig {
                units: 1,
                arrays_per_unit: 1,
            },
            ..System::paper()
        };
        let a = ramp(16, 16);
        let b = ramp(16, 16);
        let (got, stats) = sys.matmul_f32(&a, &b);
        assert_eq!(got, a.matmul(&b));
        assert_eq!(stats.per_array.len(), 1);
    }

    #[test]
    fn parallelism_reduces_critical_path() {
        let a = ramp(8 * 60, 16);
        let b = ramp(16, 16);
        let one = System {
            cfg: SystemConfig {
                units: 1,
                arrays_per_unit: 1,
            },
            ..System::paper()
        };
        let many = System::paper();
        let (_, s1) = one.matmul_f32(&a, &b);
        let (_, s30) = many.matmul_f32(&a, &b);
        // Fixed per-pass overheads (preload, triangle, AXI setup) bound the
        // speedup well below 30x at this size; 5x is the conservative floor.
        assert!(
            s30.critical_cycles() < s1.critical_cycles() / 5.0,
            "30 arrays should cut the critical path: {} vs {}",
            s30.critical_cycles(),
            s1.critical_cycles()
        );
    }

    #[test]
    fn try_matmul_reports_typed_errors() {
        let sys = System::paper();
        let mut a = ramp(16, 16);
        let b = ramp(16, 16);

        // Mismatched inner dimensions.
        let skinny = ramp(8, 8);
        assert!(matches!(
            sys.try_matmul_f32(&a, &skinny),
            Err(bfp_arith::ArithError::DimensionMismatch { .. })
        ));

        // Non-finite input is a typed error, not a panic.
        a.set(3, 3, f32::NAN);
        assert!(matches!(
            sys.try_matmul_f32(&a, &b),
            Err(bfp_arith::ArithError::NonFinite { at: (3, 3) })
        ));

        // Clean inputs report a clean fault record.
        let (out, stats) = sys.try_matmul_f32(&ramp(16, 16), &b).unwrap();
        assert_eq!(out, ramp(16, 16).matmul(&b));
        assert!(stats.faults.is_clean());
    }

    #[test]
    fn table3_row_lands_near_paper() {
        let ours = System::paper().table3_row();
        let paper = paper_ours_row();
        assert!(
            (ours.gops - paper.gops).abs() / paper.gops < 0.01,
            "GOPS {}",
            ours.gops
        );
        assert_eq!(ours.dsp, paper.dsp);
        assert!((ours.lut_k - paper.lut_k).abs() < 0.5);
        assert!((ours.ff_k.unwrap() - paper.ff_k.unwrap()).abs() < 0.5);
        assert!((ours.bram.unwrap() - paper.bram.unwrap()).abs() < 0.5);
        // Efficiency ~0.95 GOPS/DSP.
        assert!((ours.gops_per_dsp() - 0.95).abs() < 0.01);
    }

    #[test]
    fn stats_display_and_publish_cover_the_execution() {
        let sys = System::paper();
        let (_, stats) = sys.matmul_f32(&ramp(48, 24), &ramp(24, 16));
        let text = stats.to_string();
        assert!(text.contains("system execution"), "{text}");
        assert!(text.contains("30"), "{text}");

        let reg = bfp_telemetry::Registry::new();
        stats.publish(&reg);
        let prom = reg.snapshot().to_prometheus_text();
        assert!(prom.contains("system_arrays 30"), "{prom}");
        assert!(prom.contains("faults_injected 0"), "{prom}");
        let bfp_ops = reg.gauge("system_bfp_ops").get();
        assert_eq!(bfp_ops, stats.total_bfp_ops() as f64);

        // With a serving snapshot attached, one publish covers both.
        let mut with_serve = stats.clone();
        with_serve.serve = Some(crate::serving::ServeStats {
            admitted: 5,
            ..Default::default()
        });
        with_serve.publish(&reg);
        assert!(reg
            .snapshot()
            .to_prometheus_text()
            .contains("serve_admitted 5"));
        assert!(with_serve.to_string().contains("serve: 0 submitted"));
    }

    #[test]
    fn headline_throughputs() {
        let sys = System::paper();
        // 2.052 TOPS measured bfp8; 33.88 GFLOPS theoretical fp32.
        assert!((sys.measured_bfp_gops(64) - 2052.06).abs() / 2052.06 < 0.01);
        assert!((sys.theoretical_fp32_gflops(128) - 33.88).abs() < 0.01);
        // >95% of the 8-bit theoretical maximum of the *allocated* DSPs at
        // the Eqn.9 level (the paper's abstract claim).
        let frac = sys.theoretical_bfp_gops(64) / (sys.theoretical_bfp_gops(64) / 0.9715);
        assert!(frac > 0.95);
    }
}
