//! # bfp-platform — Alveo U280 platform model
//!
//! Everything around the processing units that the paper's evaluation
//! depends on but that Rust cannot synthesise: device resource totals,
//! an analytical utilisation model calibrated to the published synthesis
//! results (Table II, Fig. 6), the HBM/AXI timing model that separates
//! measured from theoretical throughput (Fig. 7), a first-order power
//! model, the multi-array card-level simulator, and the Table III
//! related-work dataset.

pub mod axi;
pub mod energy;
pub mod hbm;
pub mod nonlinear;
pub mod related;
pub mod resources;
pub mod roofline;
pub mod serving;
pub mod system;
pub mod u280;

pub use axi::AxiParams;
pub use energy::{PowerMode, PowerModel};
pub use hbm::MemParams;
pub use nonlinear::{MulLane, NonlinearUnit, VpuOpMix};
pub use related::{paper_ours_row, prior_works, RelatedWork};
pub use resources::{ArrayParams, Component, DesignVariant, PuCostModel, ResourceVec};
pub use roofline::{bfp8_pass_intensity, fp32_stream_intensity, Roofline};
pub use serving::{
    ArrayHealth, ArrayServeStats, BrownoutStats, HealthEvent, Priority, PriorityServeStats,
    ServeStats, TenantId, TenantServeStats,
};
pub use system::{System, SystemStats, SHELL};
pub use u280::{SystemConfig, U280};
