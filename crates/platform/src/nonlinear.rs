//! Analytical cycle/resource pricing of the fast nonlinear VPU unit —
//! the LUT/polynomial GELU–exp–rsqrt pipeline the paper's future-work
//! section motivates ("the vector processing unit is also being optimized
//! to improve non-linear function performance", §V).
//!
//! The simulation side of that unit lives in `bfp-transformer`'s
//! `vpu::fast` module; this module prices its hardware op mix on the U280
//! platform model. Two multiplier lane technologies are compared:
//!
//! * **DSP fp32 lanes** — the conventional choice, ~3 DSP48E2 per lane
//!   (Vivado's full-precision fp32 multiplier), exact to IEEE rounding.
//! * **L-Mul lanes** — the addition-based approximate multiplier
//!   ("Addition is All You Need"): one 32-bit integer addition on packed
//!   bit patterns, **zero DSPs**, but up to ~9.5 % relative error per
//!   multiply (the measured bound pinned in `bfp_arith::lmul`). Through a
//!   multi-multiply polynomial pipeline that error compounds to tens of
//!   percent on GELU (pinned in the transformer crate's envelope tests) —
//!   which is why [`NonlinearUnit::recommended`] keeps the multiplies on
//!   DSPs and treats L-Mul as a priced-but-rejected design point for
//!   inference-quality serving.
//!
//! `bfp-core::vpucost` cross-checks this model against the live engine's
//! op census: the cycles priced here for an analytical census equal the
//! cycles priced for the measured one.

use crate::resources::ResourceVec;
use crate::u280::U280;

/// Hardware op mix of a nonlinear workload, one field per resource class
/// of the unit. Mirrors (field for field) the transformer crate's VPU
/// `OpCount`, but lives here so the platform model depends on no
/// simulation code; `bfp-core` converts between the two.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VpuOpMix {
    /// fp32 multiplies (DSP or L-Mul lanes).
    pub fp_mul: u64,
    /// fp32 additions/subtractions.
    pub fp_add: u64,
    /// Exponent-unit integer exponent adjustments (2^k scales).
    pub exp_adjust: u64,
    /// Comparator operations (max reductions).
    pub cmp: u64,
    /// ROM lookups (exp2 table, NR seeds).
    pub lut: u64,
    /// Divisions escaping to the host CPU.
    pub host_div: u64,
    /// Square roots escaping to the host CPU.
    pub host_sqrt: u64,
}

impl VpuOpMix {
    /// On-array operations (everything that does not round-trip the host).
    pub fn array_ops(&self) -> u64 {
        self.fp_mul + self.fp_add + self.exp_adjust + self.cmp + self.lut
    }

    /// Host round-trips.
    pub fn host_ops(&self) -> u64 {
        self.host_div + self.host_sqrt
    }
}

/// Multiplier lane technology of the nonlinear unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MulLane {
    /// Full fp32 multiplier on DSP48E2 slices: exact, DSP-hungry.
    DspFp32,
    /// L-Mul integer-addition approximate multiplier: no DSPs, ≤ ~9.5 %
    /// relative error per multiply.
    LMul,
}

impl MulLane {
    /// Per-lane utilisation. The DSP figure (3 DSP + small LUT/FF glue)
    /// is the standard Vivado full fp32 multiplier; the L-Mul lane is the
    /// packed-field 32-bit adder plus special-case gating from "A
    /// Power-Efficient Hardware Implementation of L-Mul" — carry chain
    /// and gates in fabric, zero DSPs.
    pub fn lane_usage(&self) -> ResourceVec {
        match self {
            MulLane::DspFp32 => ResourceVec::new(84.0, 183.0, 0.0, 3.0),
            MulLane::LMul => ResourceVec::new(126.0, 70.0, 0.0, 0.0),
        }
    }

    /// Measured worst-case relative error of one multiply on this lane
    /// (the `bfp_arith::lmul` sweep bound; DSP lanes are IEEE-exact).
    pub fn per_mul_rel_error(&self) -> f64 {
        match self {
            MulLane::DspFp32 => 0.0,
            MulLane::LMul => 0.096,
        }
    }
}

/// Cycles one host division/square-root round-trip costs the array. The
/// paper offloads fp32 division to the host CPU (§III-B); at PCIe/driver
/// batch granularity the amortised per-op cost is hundreds of kernel
/// cycles — the reason Table IV's nonlinear rows dominate latency and the
/// host-free NR kernels exist at all.
pub const HOST_ROUNDTRIP_CYCLES: f64 = 240.0;

/// The fast nonlinear unit: a fixed-function pipeline of multiplier
/// lanes, adder lanes, the exponent unit, comparators, and the `2^(j/64)`
/// ROM + NR seed tables.
#[derive(Debug, Clone, Copy)]
pub struct NonlinearUnit {
    /// Multiplier lane technology.
    pub mul_lane: MulLane,
    /// Parallel lanes per op class (the unit issues this many of each
    /// class per cycle when the pipeline is full).
    pub lanes: usize,
    /// Kernel clock in Hz.
    pub freq_hz: f64,
}

impl NonlinearUnit {
    /// The recommended serving configuration: 4 exact DSP fp32 lanes (the
    /// fp32 mode of the multi-mode array drives 4 FPU columns) at the
    /// paper's 300 MHz kernel clock. L-Mul is rejected for serving: its
    /// compounded polynomial error (tens of percent on GELU) dwarfs the
    /// fast kernels' proven sub-ulp-scale envelopes.
    pub fn recommended() -> Self {
        NonlinearUnit {
            mul_lane: MulLane::DspFp32,
            lanes: 4,
            freq_hz: U280::FREQ_HZ,
        }
    }

    /// The same unit with L-Mul multiplier lanes (the priced alternative).
    pub fn with_lmul(self) -> Self {
        NonlinearUnit {
            mul_lane: MulLane::LMul,
            ..self
        }
    }

    /// Utilisation of the whole unit: multiplier + adder lanes, the
    /// exponent unit (Table II row), comparators, and the ROMs. The
    /// 64-entry × 32-bit exp2 table plus NR seeds fit distributed LUTRAM
    /// (no BRAM), one copy per lane.
    pub fn usage(&self) -> ResourceVec {
        let lanes = self.lanes as f64;
        let mul = self.mul_lane.lane_usage() * lanes;
        // fp32 adder lane: align/add/normalise in fabric, ~2 DSP-free
        // configurations are common; the paper's adder is fabric-only.
        let add = ResourceVec::new(210.0, 227.0, 0.0, 0.0) * lanes;
        // Exponent unit (Table II) + comparator tree + per-lane ROMs.
        let eu = ResourceVec::new(269.0, 195.0, 0.0, 0.0);
        let cmp_rom = ResourceVec::new(96.0, 40.0, 0.0, 0.0) * lanes;
        mul + add + eu + cmp_rom
    }

    /// Pipeline cycles to drain `mix`. Each op class has its own lanes,
    /// so on-array classes overlap: the pipeline is limited by its widest
    /// class, not their sum. Host escapes serialise the array and charge
    /// the full round-trip each.
    pub fn cycles(&self, mix: &VpuOpMix) -> f64 {
        let lanes = self.lanes as f64;
        let widest = [mix.fp_mul, mix.fp_add, mix.exp_adjust, mix.cmp, mix.lut]
            .into_iter()
            .max()
            .unwrap_or(0) as f64;
        widest / lanes + mix.host_ops() as f64 * HOST_ROUNDTRIP_CYCLES
    }

    /// Wall-clock seconds to drain `mix` at the unit's kernel clock.
    pub fn latency_s(&self, mix: &VpuOpMix) -> f64 {
        self.cycles(mix) / self.freq_hz
    }

    /// Effective FLOPS when draining `mix` (adds + muls per second).
    pub fn effective_flops(&self, mix: &VpuOpMix) -> f64 {
        let s = self.latency_s(mix);
        if s == 0.0 {
            0.0
        } else {
            (mix.fp_mul + mix.fp_add) as f64 / s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The fast-GELU per-element mix (mirrors `vpu::fast::cost::gelu`).
    fn fast_gelu() -> VpuOpMix {
        VpuOpMix {
            fp_mul: 13,
            fp_add: 12,
            exp_adjust: 6,
            cmp: 0,
            lut: 2,
            host_div: 0,
            host_sqrt: 0,
        }
    }

    /// The exact-path GELU mix with the host division (mirrors
    /// `vpu::cost::gelu`).
    fn exact_gelu() -> VpuOpMix {
        VpuOpMix {
            fp_mul: 13,
            fp_add: 13,
            exp_adjust: 1,
            cmp: 0,
            lut: 0,
            host_div: 1,
            host_sqrt: 0,
        }
    }

    #[test]
    fn lmul_lanes_use_no_dsps_and_fewer_than_dsp_lanes() {
        let dsp = NonlinearUnit::recommended();
        let lm = dsp.with_lmul();
        assert_eq!(lm.usage().dsp, 0.0, "L-Mul is DSP-free");
        assert!(dsp.usage().dsp >= 12.0, "4 fp32 lanes cost DSPs");
        // The saving is real but the error is too: the rejection reason.
        assert_eq!(MulLane::LMul.per_mul_rel_error(), 0.096);
        assert_eq!(MulLane::DspFp32.per_mul_rel_error(), 0.0);
    }

    #[test]
    fn host_escapes_dominate_the_exact_kernel_cycles() {
        let u = NonlinearUnit::recommended();
        let fast = u.cycles(&fast_gelu());
        let exact = u.cycles(&exact_gelu());
        assert!(
            exact > 50.0 * fast,
            "one host division outweighs the whole fast pipeline: {exact} vs {fast}"
        );
    }

    #[test]
    fn on_array_classes_overlap_in_the_pipeline() {
        let u = NonlinearUnit::recommended();
        let mix = fast_gelu();
        let c = u.cycles(&mix);
        // Bounded by the widest class / lanes, not the sum of classes.
        assert!((c - 13.0 / 4.0).abs() < 1e-12, "cycles {c}");
        assert!(c < mix.array_ops() as f64 / 4.0);
    }

    #[test]
    fn latency_scales_with_clock_and_mix() {
        let u = NonlinearUnit::recommended();
        let slow = NonlinearUnit {
            freq_hz: u.freq_hz / 2.0,
            ..u
        };
        let mix = fast_gelu();
        assert!((slow.latency_s(&mix) / u.latency_s(&mix) - 2.0).abs() < 1e-9);
        assert!(u.effective_flops(&mix) > 1e9, "GFLOPS-scale unit");
    }

    #[test]
    fn op_mix_totals() {
        let m = fast_gelu();
        assert_eq!(m.array_ops(), 13 + 12 + 6 + 2);
        assert_eq!(m.host_ops(), 0);
        assert_eq!(exact_gelu().host_ops(), 1);
    }
}
