//! Roofline analysis of the two execution modes: *why* bfp8 MatMul sits
//! near its compute peak while fp32 vector mode is memory-starved (the
//! structural explanation behind Fig. 7's asymmetric gaps).
//!
//! Arithmetic intensity is computed from the actual datapath traffic: a
//! bfp8 pass re-uses every loaded Y mantissa 8·N_X times and every X
//! mantissa 16 times (two lanes), while fp32 element-wise ops touch three
//! words of traffic per operation — there is no reuse for the crossbar to
//! exploit, exactly the "more random memory access" the paper laments.

use crate::u280::{SystemConfig, U280};

/// A machine roofline: compute ceiling + memory slope.
#[derive(Debug, Clone, Copy)]
pub struct Roofline {
    /// Peak operations per second (mode-specific).
    pub peak_ops_per_sec: f64,
    /// Memory bandwidth available to the unit(s), bytes per second.
    pub mem_bytes_per_sec: f64,
}

impl Roofline {
    /// bfp8-mode roofline for `cfg` at `freq`: Eqn. 7 peak per array, one
    /// HBM channel's bandwidth per array.
    pub fn bfp8(cfg: SystemConfig, freq: f64) -> Self {
        let arrays = cfg.total_arrays() as f64;
        Roofline {
            peak_ops_per_sec: arrays * 256.0 * freq,
            mem_bytes_per_sec: arrays / U280::HBM_CHANNELS as f64 * U280::HBM_BW_BYTES_PER_SEC,
        }
    }

    /// fp32-mode roofline: Eqn. 8 peak per array, same memory system.
    pub fn fp32(cfg: SystemConfig, freq: f64) -> Self {
        let arrays = cfg.total_arrays() as f64;
        Roofline {
            peak_ops_per_sec: arrays * 4.0 * freq,
            mem_bytes_per_sec: arrays / U280::HBM_CHANNELS as f64 * U280::HBM_BW_BYTES_PER_SEC,
        }
    }

    /// Attainable throughput at arithmetic intensity `ops_per_byte`.
    pub fn attainable(&self, ops_per_byte: f64) -> f64 {
        self.peak_ops_per_sec
            .min(self.mem_bytes_per_sec * ops_per_byte)
    }

    /// The ridge point: intensity above which the mode is compute bound.
    pub fn ridge(&self) -> f64 {
        self.peak_ops_per_sec / self.mem_bytes_per_sec
    }
}

/// Arithmetic intensity (ops/byte) of a bfp8 Y-stationary pass with `n_x`
/// streamed blocks: `2048·N_X` ops over X-in + Y-in + Z-out traffic.
pub fn bfp8_pass_intensity(n_x: usize) -> f64 {
    let ops = (n_x * 8 * 8 * 8 * 2 * 2) as f64;
    // One block = 64 mantissas + 1 exponent byte. Outputs are two lanes of
    // requantized blocks.
    let bytes = (n_x as f64 + 2.0) * 65.0 + (2 * n_x) as f64 * 65.0;
    ops / bytes
}

/// Arithmetic intensity of element-wise fp32 streams: one FLOP per two
/// 4-byte reads and one 4-byte write.
pub fn fp32_stream_intensity() -> f64 {
    1.0 / 12.0
}

#[cfg(test)]
mod tests {
    use super::*;

    const F300: f64 = 300.0e6;

    fn cfg() -> SystemConfig {
        SystemConfig::paper()
    }

    #[test]
    fn bfp8_is_compute_bound_at_long_streams() {
        let r = Roofline::bfp8(cfg(), F300);
        let i = bfp8_pass_intensity(64);
        assert!(
            i > r.ridge(),
            "N_X=64 intensity {i:.2} ops/B must clear the ridge {:.2}",
            r.ridge()
        );
        // Attainable equals the compute peak: memory is not the limiter.
        assert_eq!(r.attainable(i), r.peak_ops_per_sec);
    }

    #[test]
    fn fp32_is_memory_bound() {
        let r = Roofline::fp32(cfg(), F300);
        let i = fp32_stream_intensity();
        // 1/12 ops per byte is far below the fp32 ridge.
        assert!(i < r.ridge(), "fp32 intensity {i} vs ridge {}", r.ridge());
        assert!(
            r.attainable(i) < r.peak_ops_per_sec,
            "memory bandwidth caps fp32 mode"
        );
    }

    #[test]
    fn fp32_memory_bound_explains_the_measured_ceiling() {
        // The bandwidth-derived ceiling sits in the same regime as the
        // 15 GFLOPS Table IV implies (same order, not 33.88).
        let r = Roofline::fp32(cfg(), F300);
        let cap = r.attainable(fp32_stream_intensity());
        assert!(
            cap > 5.0e9 && cap < 40.0e9,
            "fp32 roofline cap {:.1} GFLOPS should bracket the measured 15",
            cap / 1e9
        );
    }

    #[test]
    fn intensity_grows_with_stream_length() {
        assert!(bfp8_pass_intensity(64) > bfp8_pass_intensity(8));
    }

    #[test]
    fn ridge_points_differ_by_the_mode_peak_ratio() {
        let rb = Roofline::bfp8(cfg(), F300);
        let rf = Roofline::fp32(cfg(), F300);
        // Same memory system, 64x peak ratio (256 vs 4 ops/cycle).
        let ratio = rb.ridge() / rf.ridge();
        assert!((ratio - 64.0).abs() < 1e-9);
    }
}
