//! First-order power/energy estimates for the processing system.
//!
//! The paper evaluates "utilization, throughput, and energy consumption"
//! but prints no absolute power table, so this model is deliberately
//! simple and clearly labelled an estimate: a static floor per unit plus
//! dynamic power proportional to the number of *active* PE columns —
//! which is exactly the lever the paper pulls when it puts the unused 4
//! columns to sleep in fp32 mode ("keeping the remaining PEs idle to save
//! power", §II-C).

use crate::u280::SystemConfig;

/// Power model parameters (Watts), representative of DSP-heavy 300 MHz
/// designs on 16 nm UltraScale+ parts.
#[derive(Debug, Clone, Copy)]
pub struct PowerModel {
    /// Static + clocking power per processing array.
    pub static_per_array_w: f64,
    /// Dynamic power of one active PE column in bfp8 mode.
    pub dynamic_per_column_w: f64,
    /// Dynamic power of the memory interface per array while streaming.
    pub mem_per_array_w: f64,
    /// Shell / HBM controller baseline for the whole card.
    pub shell_w: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            static_per_array_w: 0.35,
            dynamic_per_column_w: 0.11,
            mem_per_array_w: 0.25,
            shell_w: 20.0,
        }
    }
}

/// Which execution mode the array is in (determines active columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerMode {
    /// bfp8 MatMul: all 8 columns busy.
    Bfp8,
    /// fp32 mode: 4 FPU columns busy, 4 asleep.
    Fp32,
    /// Clocked but idle.
    Idle,
}

impl PowerModel {
    /// Estimated card power (W) with every array of `cfg` in `mode`.
    pub fn system_power_w(&self, cfg: SystemConfig, mode: PowerMode) -> f64 {
        let arrays = cfg.total_arrays() as f64;
        let cols = match mode {
            PowerMode::Bfp8 => 8.0,
            PowerMode::Fp32 => 4.0,
            PowerMode::Idle => 0.0,
        };
        let mem = match mode {
            PowerMode::Idle => 0.0,
            _ => self.mem_per_array_w,
        };
        self.shell_w + arrays * (self.static_per_array_w + cols * self.dynamic_per_column_w + mem)
    }

    /// Energy (J) to run for `seconds` in `mode`.
    pub fn energy_j(&self, cfg: SystemConfig, mode: PowerMode, seconds: f64) -> f64 {
        self.system_power_w(cfg, mode) * seconds
    }

    /// Energy efficiency in GOPS/W for a measured throughput.
    pub fn gops_per_watt(&self, cfg: SystemConfig, mode: PowerMode, ops_per_sec: f64) -> f64 {
        ops_per_sec / 1e9 / self.system_power_w(cfg, mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp32_mode_draws_less_than_bfp8() {
        let p = PowerModel::default();
        let cfg = SystemConfig::paper();
        assert!(
            p.system_power_w(cfg, PowerMode::Fp32) < p.system_power_w(cfg, PowerMode::Bfp8),
            "sleeping half the columns must save power"
        );
    }

    #[test]
    fn idle_draws_least() {
        let p = PowerModel::default();
        let cfg = SystemConfig::paper();
        let idle = p.system_power_w(cfg, PowerMode::Idle);
        assert!(idle < p.system_power_w(cfg, PowerMode::Fp32));
        assert!(idle > p.shell_w, "static array power remains");
    }

    #[test]
    fn power_is_plausible_for_the_card() {
        // The U280 is a 225 W card; a 30-array design should sit well
        // inside that and above the bare shell.
        let p = PowerModel::default();
        let w = p.system_power_w(SystemConfig::paper(), PowerMode::Bfp8);
        assert!(w > 25.0 && w < 225.0, "card power {w} W");
    }

    #[test]
    fn energy_scales_linearly_with_time() {
        let p = PowerModel::default();
        let cfg = SystemConfig::paper();
        let e1 = p.energy_j(cfg, PowerMode::Bfp8, 1.0);
        let e2 = p.energy_j(cfg, PowerMode::Bfp8, 2.0);
        assert!((e2 - 2.0 * e1).abs() < 1e-9);
    }

    #[test]
    fn efficiency_metric() {
        let p = PowerModel::default();
        let cfg = SystemConfig::paper();
        let eff = p.gops_per_watt(cfg, PowerMode::Bfp8, 2052.06e9);
        assert!(eff > 10.0 && eff < 100.0, "GOPS/W {eff}");
    }
}
