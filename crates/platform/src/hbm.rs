//! HBM/AXI memory-system model: the gap between theoretical (Eqns. 9–10)
//! and *measured* throughput in Fig. 7.
//!
//! The paper measures throughput "by latency based on going through the
//! whole FPGA system ... including the memory I/O latency". Two effects
//! separate measured from theoretical:
//!
//! * **bfp8 MatMul** streams long, sequential bursts over two 256-bit AXI
//!   channels, so only a small per-pass transaction overhead remains
//!   (measured ≈ 89 % of peak at `N_X = 64` versus Eqn. 9's 97.15 %).
//! * **fp32 vector mode** issues short, "more random" accesses that the
//!   unoptimised compilation does not coalesce into large bursts, so the
//!   measured curve sits far below Eqn. 10 (≈ 15 GFLOPS system-wide versus
//!   33.88 theoretical — the ratio implied by Table IV's latency rows).
//!
//! The model charges a fixed setup latency per AXI transaction plus a
//! bandwidth term, with transaction granularity chosen per mode. The two
//! setup constants are **calibrated to the paper's two published operating
//! points** (documented in EXPERIMENTS.md); the *shape* across stream
//! lengths then follows from the model, which is what Fig. 7 plots.

use bfp_pu::throughput::{bfp_pass_cycles, fp32_burst_cycles};

/// Memory-system timing parameters (cycles at the kernel clock).
#[derive(Debug, Clone, Copy)]
pub struct MemParams {
    /// Setup/latency cycles charged per AXI read transaction in bfp8 mode
    /// (long sequential bursts, one per operand stream).
    pub bfp_setup_cycles: f64,
    /// Setup cycles per fp32-mode transaction (short bursts).
    pub fp_setup_cycles: f64,
    /// fp32 elements fetched per transaction ("burst length" the compiler
    /// achieves; the paper leaves this unoptimised).
    pub fp_elems_per_txn: usize,
    /// AXI payload bytes per cycle per channel.
    pub bytes_per_cycle: f64,
}

impl Default for MemParams {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

impl MemParams {
    /// Constants fitted to the two published operating points:
    /// 2052.06 GOPS bfp8 (N_X = 64, 30 arrays) and ≈ 15 GFLOPS fp32
    /// (L = 128, Table IV's effective non-linear throughput).
    pub fn paper_calibrated() -> Self {
        MemParams {
            bfp_setup_cycles: 22.6,
            fp_setup_cycles: 21.4,
            fp_elems_per_txn: 32,
            bytes_per_cycle: 32.0,
        }
    }

    /// An idealised memory system (measured == theoretical); useful as an
    /// ablation baseline.
    pub fn ideal() -> Self {
        MemParams {
            bfp_setup_cycles: 0.0,
            fp_setup_cycles: 0.0,
            fp_elems_per_txn: usize::MAX,
            bytes_per_cycle: f64::INFINITY,
        }
    }

    /// Memory overhead cycles for one bfp8 Y-stationary pass streaming
    /// `n_x` blocks: one transaction per operand stream (X and Y), plus the
    /// non-overlapped tail of the data transfer.
    pub fn bfp_pass_overhead(&self, n_x: usize) -> f64 {
        let txns = 2.0; // X stream + Y pair, one burst each (2 channels)
                        // One bfp8 block = 64 mantissas + 1 exponent byte.
        let bytes = (n_x as f64) * 65.0 + 2.0 * 65.0;
        // Sequential bursts overlap compute almost entirely; only the
        // setup plus a small fraction of the transfer is exposed.
        txns * self.bfp_setup_cycles + 0.02 * bytes / self.bytes_per_cycle
    }

    /// Memory overhead cycles for one fp32 burst of per-lane length `l`:
    /// two operand streams fetched in `fp_elems_per_txn`-element bursts.
    pub fn fp_burst_overhead(&self, l: usize) -> f64 {
        if self.fp_elems_per_txn == usize::MAX {
            return 0.0;
        }
        let txns = 2.0 * (l as f64 / self.fp_elems_per_txn as f64).ceil();
        txns * self.fp_setup_cycles
    }

    /// *Measured* bfp8 throughput (OPS) of one array for passes of `n_x`
    /// blocks at `freq` Hz: useful ops over compute + memory cycles.
    pub fn measured_bfp_ops(&self, n_x: usize, freq: f64) -> f64 {
        let ops = (n_x * 8 * 8 * 8 * 2 * 2) as f64; // both lanes, mul+add
        let cycles = bfp_pass_cycles(n_x) as f64 + self.bfp_pass_overhead(n_x);
        ops / cycles * freq
    }

    /// *Measured* fp32 throughput (FLOPS) of one array for bursts of
    /// per-lane length `l` at `freq` Hz.
    pub fn measured_fp32_flops(&self, l: usize, freq: f64) -> f64 {
        let flops = (4 * l) as f64;
        let cycles = fp32_burst_cycles(l) as f64 + self.fp_burst_overhead(l);
        flops / cycles * freq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfp_pu::throughput::{bfp_throughput, fp32_throughput};

    const F300: f64 = 300.0e6;

    #[test]
    fn bfp_operating_point_reproduces_2052_gops() {
        // 30 arrays at Nx = 64 should land on the paper's 2052.06 GOPS
        // within a percent.
        let sys = MemParams::paper_calibrated().measured_bfp_ops(64, F300) * 30.0;
        let rel = (sys - 2052.06e9).abs() / 2052.06e9;
        assert!(rel < 0.01, "system bfp8 = {} GOPS", sys / 1e9);
    }

    #[test]
    fn fp32_operating_point_reproduces_15_gflops() {
        let sys = MemParams::paper_calibrated().measured_fp32_flops(128, F300) * 30.0;
        let rel = (sys - 15.0e9).abs() / 15.0e9;
        assert!(rel < 0.02, "system fp32 = {} GFLOPS", sys / 1e9);
    }

    #[test]
    fn measured_never_exceeds_theoretical() {
        let m = MemParams::paper_calibrated();
        for nx in [8, 16, 32, 64] {
            assert!(m.measured_bfp_ops(nx, F300) <= bfp_throughput(nx, F300));
        }
        for l in [8, 16, 32, 64, 128] {
            assert!(m.measured_fp32_flops(l, F300) <= fp32_throughput(l, F300));
        }
    }

    #[test]
    fn measured_improves_with_stream_length() {
        let m = MemParams::paper_calibrated();
        let b: Vec<f64> = [8, 16, 32, 64]
            .iter()
            .map(|&nx| m.measured_bfp_ops(nx, F300))
            .collect();
        assert!(
            b.windows(2).all(|w| w[0] < w[1]),
            "bfp8 curve must rise: {b:?}"
        );
        let f: Vec<f64> = [8, 16, 32, 64, 128]
            .iter()
            .map(|&l| m.measured_fp32_flops(l, F300))
            .collect();
        assert!(
            f.windows(2).all(|w| w[0] < w[1]),
            "fp32 curve must rise: {f:?}"
        );
    }

    #[test]
    fn fp32_gap_is_much_larger_than_bfp8_gap() {
        // The paper's central observation: fp32 is "still far from the
        // theoretical value" while bfp8 is close.
        let m = MemParams::paper_calibrated();
        let bfp_ratio = m.measured_bfp_ops(64, F300) / bfp_throughput(64, F300);
        let fp_ratio = m.measured_fp32_flops(128, F300) / fp32_throughput(128, F300);
        assert!(bfp_ratio > 0.85, "bfp8 ratio {bfp_ratio}");
        assert!(fp_ratio < 0.55, "fp32 ratio {fp_ratio}");
    }

    #[test]
    fn ideal_memory_recovers_theoretical() {
        let m = MemParams::ideal();
        for nx in [8, 64] {
            let meas = m.measured_bfp_ops(nx, F300);
            let theo = bfp_throughput(nx, F300);
            assert!((meas - theo).abs() / theo < 1e-12);
        }
        let meas = m.measured_fp32_flops(128, F300);
        let theo = fp32_throughput(128, F300);
        assert!((meas - theo).abs() / theo < 1e-12);
    }
}
