//! Analytical FPGA resource model, calibrated to the paper's synthesis
//! results (Table II) and design-variant comparison (Fig. 6).
//!
//! We cannot run Vivado from Rust, so resource numbers are *modelled*:
//! every component's cost is a function of its architectural parameters
//! (array rows/columns, lane counts, buffer sizes), with the constants
//! anchored to the published 8×8 numbers. The table-II binary reproduces the
//! paper's per-component breakdown; the fig-6 binary reproduces the
//! normalised four-way design comparison, whose ratios
//! (bfp8 ≈ int8 in DSP, 1.19× FF; multi-mode ≈ 2.94× bfp8 LUT;
//! individual = +25 % DSP, +158 % FF, +77 % LUT over multi-mode) come
//! straight from the paper's text.

use std::fmt;
use std::ops::{Add, AddAssign, Mul};

/// A LUT/FF/BRAM/DSP utilisation vector. BRAM is counted in BRAM18 units
/// (the paper's "50.0"/"4.5" fractional entries are BRAM36-equivalents of
/// odd BRAM18 counts; we keep f64 to round-trip the published values).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceVec {
    /// Look-up tables.
    pub lut: f64,
    /// Flip-flops.
    pub ff: f64,
    /// Block RAM (BRAM18-equivalent count as the paper reports it).
    pub bram: f64,
    /// DSP48E2 slices.
    pub dsp: f64,
}

impl ResourceVec {
    /// A named constructor for readability at call sites.
    pub const fn new(lut: f64, ff: f64, bram: f64, dsp: f64) -> Self {
        ResourceVec { lut, ff, bram, dsp }
    }

    /// Element-wise ratio against a baseline (for the Fig. 6 normalised
    /// plot). Zero baseline entries yield 0 rather than NaN so that absent
    /// resource classes normalise cleanly.
    pub fn normalized_to(&self, base: &ResourceVec) -> ResourceVec {
        let r = |x: f64, b: f64| if b == 0.0 { 0.0 } else { x / b };
        ResourceVec {
            lut: r(self.lut, base.lut),
            ff: r(self.ff, base.ff),
            bram: r(self.bram, base.bram),
            dsp: r(self.dsp, base.dsp),
        }
    }
}

impl Add for ResourceVec {
    type Output = ResourceVec;
    fn add(self, o: ResourceVec) -> ResourceVec {
        ResourceVec::new(
            self.lut + o.lut,
            self.ff + o.ff,
            self.bram + o.bram,
            self.dsp + o.dsp,
        )
    }
}

impl AddAssign for ResourceVec {
    fn add_assign(&mut self, o: ResourceVec) {
        *self = *self + o;
    }
}

impl Mul<f64> for ResourceVec {
    type Output = ResourceVec;
    fn mul(self, k: f64) -> ResourceVec {
        ResourceVec::new(self.lut * k, self.ff * k, self.bram * k, self.dsp * k)
    }
}

impl fmt::Display for ResourceVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LUT {:>8.0}  FF {:>8.0}  BRAM {:>6.1}  DSP {:>5.0}",
            self.lut, self.ff, self.bram, self.dsp
        )
    }
}

/// One named component of the processing unit (a Table II row).
#[derive(Debug, Clone)]
pub struct Component {
    /// Component name as the paper prints it.
    pub name: &'static str,
    /// Its utilisation.
    pub usage: ResourceVec,
}

/// Architectural parameters the cost model scales with.
#[derive(Debug, Clone, Copy)]
pub struct ArrayParams {
    /// Systolic rows.
    pub rows: usize,
    /// Systolic columns.
    pub cols: usize,
}

impl Default for ArrayParams {
    fn default() -> Self {
        ArrayParams { rows: 8, cols: 8 }
    }
}

impl ArrayParams {
    fn pes(&self) -> f64 {
        (self.rows * self.cols) as f64
    }
}

/// Per-unit cost model for the paper's multi-mode processing unit.
///
/// Constants are the Table II values at the 8×8 design point, scaled
/// linearly in PE count (array-shaped components) or column count (per-
/// column shifters/ACC).
pub struct PuCostModel;

impl PuCostModel {
    /// The PE array: registers, pre-shifters, one DSP48E2 per PE.
    pub fn pe_array(p: ArrayParams) -> Component {
        let s = p.pes() / 64.0;
        Component {
            name: "PE Array",
            usage: ResourceVec::new(1317.0 * s, 1536.0 * s, 0.0, 64.0 * s),
        }
    }

    /// Bottom-of-column shifters and the PSU accumulators.
    pub fn shifter_acc(p: ArrayParams) -> Component {
        let s = p.cols as f64 / 8.0;
        Component {
            name: "Shifter & ACC",
            usage: ResourceVec::new(768.0 * s, 644.0 * s, 0.0, 8.0 * s),
        }
    }

    /// X/Y buffers plus the fp32 layout converter / crossbar.
    pub fn buffer_layout(p: ArrayParams) -> Component {
        let s = p.cols as f64 / 8.0;
        Component {
            name: "Buffer & Layout Converter",
            usage: ResourceVec::new(752.0 * s, 764.0 * s, 50.0 * s, 0.0),
        }
    }

    /// The exponent unit.
    pub fn exponent_unit(_p: ArrayParams) -> Component {
        Component {
            name: "Exponent Unit",
            usage: ResourceVec::new(269.0, 195.0, 0.0, 0.0),
        }
    }

    /// The output quantizer (wide mantissas back to bfp8).
    pub fn quantizer(p: ArrayParams) -> Component {
        let s = p.cols as f64 / 8.0;
        Component {
            name: "Quantizer",
            usage: ResourceVec::new(348.0 * s, 524.0 * s, 0.0, 0.0),
        }
    }

    /// Delay chains, AXI-Stream register slices, etc.
    pub fn misc(_p: ArrayParams) -> Component {
        Component {
            name: "Misc.",
            usage: ResourceVec::new(483.0, 1944.0, 3.0, 0.0),
        }
    }

    /// AXI/HBM memory interface. The paper's table reports FF/BRAM per
    /// component but merges the LUT figure of this row with the controller
    /// into the 7348 total; we split the residual (3411 LUTs) 2959/452 in
    /// proportion to typical interface-vs-FSM weight and preserve the total.
    pub fn memory_interface(_p: ArrayParams) -> Component {
        Component {
            name: "Memory Interface",
            usage: ResourceVec::new(2959.0, 4270.0, 4.5, 0.0),
        }
    }

    /// The run-time mode controller.
    pub fn controller(_p: ArrayParams) -> Component {
        Component {
            name: "Controller",
            usage: ResourceVec::new(452.0, 452.0, 0.0, 0.0),
        }
    }

    /// All Table II rows at the given design point.
    pub fn components(p: ArrayParams) -> Vec<Component> {
        vec![
            Self::pe_array(p),
            Self::shifter_acc(p),
            Self::buffer_layout(p),
            Self::exponent_unit(p),
            Self::quantizer(p),
            Self::misc(p),
            Self::memory_interface(p),
            Self::controller(p),
        ]
    }

    /// Total utilisation of one processing unit with its support modules.
    pub fn unit_total(p: ArrayParams) -> ResourceVec {
        Self::components(p)
            .into_iter()
            .fold(ResourceVec::default(), |acc, c| acc + c.usage)
    }
}

/// The four PE-array design points compared in Fig. 6. The "assessed
/// hardware design only comprises the PE array, the exponent unit, the
/// mantissa shifters, and the runtime controller" (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesignVariant {
    /// Plain int8 systolic MatMul array.
    Int8,
    /// bfp8-only array (adds the mantissa shifters and EU).
    Bfp8Only,
    /// The paper's unified bfp8 + fp32 multi-mode array.
    MultiMode,
    /// Separate bfp8 array + standalone 4-lane fp32 IP cores ("indiv").
    Individual,
}

impl DesignVariant {
    /// All variants in the order Fig. 6 plots them.
    pub const ALL: [DesignVariant; 4] = [
        DesignVariant::Int8,
        DesignVariant::Bfp8Only,
        DesignVariant::MultiMode,
        DesignVariant::Individual,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            DesignVariant::Int8 => "int8",
            DesignVariant::Bfp8Only => "bfp8-only",
            DesignVariant::MultiMode => "multi-mode (ours)",
            DesignVariant::Individual => "individual bfp8+fp32",
        }
    }

    /// Utilisation of the assessed subset (array + EU + shifters +
    /// controller) at the 8×8 design point.
    ///
    /// Absolute anchors: the multi-mode subset comes from Table II
    /// (1317+768+269+452 LUT, 1536+644+195+452 FF, 72 DSP). The other
    /// variants are derived from the paper's stated ratios:
    /// * multi-mode LUT ≈ 2.94× the bfp8-only array (pre-shifters);
    /// * bfp8 FF = 1.19× int8, same DSP count;
    /// * individual units cost +77.3 % LUT, +157.7 % FF, +25 % DSP over
    ///   multi-mode (the "saves 20.0 % DSPs, 61.2 % FFs, 43.6 % LUTs"
    ///   claim, inverted).
    pub fn assessed_usage(&self) -> ResourceVec {
        let multi = ResourceVec::new(2806.0, 2827.0, 0.0, 72.0);
        match self {
            DesignVariant::MultiMode => multi,
            DesignVariant::Bfp8Only => ResourceVec::new(multi.lut / 2.94, 2800.0, 0.0, 72.0),
            DesignVariant::Int8 => {
                ResourceVec::new(multi.lut / 2.94 / 1.45, 2800.0 / 1.19, 0.0, 72.0)
            }
            DesignVariant::Individual => ResourceVec::new(
                multi.lut / (1.0 - 0.436),
                multi.ff / (1.0 - 0.612),
                0.0,
                multi.dsp / (1.0 - 0.200),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_totals_match_paper() {
        let t = PuCostModel::unit_total(ArrayParams::default());
        assert_eq!(t.lut, 7348.0);
        assert_eq!(t.ff, 10329.0);
        assert_eq!(t.bram, 57.5);
        assert_eq!(t.dsp, 72.0);
    }

    #[test]
    fn table2_rows_match_paper_values() {
        let p = ArrayParams::default();
        let pe = PuCostModel::pe_array(p);
        assert_eq!(pe.usage, ResourceVec::new(1317.0, 1536.0, 0.0, 64.0));
        let sh = PuCostModel::shifter_acc(p);
        assert_eq!(sh.usage, ResourceVec::new(768.0, 644.0, 0.0, 8.0));
        let bu = PuCostModel::buffer_layout(p);
        assert_eq!(bu.usage.bram, 50.0);
        let eu = PuCostModel::exponent_unit(p);
        assert_eq!(eu.usage, ResourceVec::new(269.0, 195.0, 0.0, 0.0));
    }

    #[test]
    fn cost_scales_with_array_size() {
        let small = ArrayParams { rows: 4, cols: 4 };
        let pe = PuCostModel::pe_array(small);
        assert_eq!(pe.usage.dsp, 16.0);
        assert!(pe.usage.lut < 1317.0 / 2.0);
        let big = ArrayParams { rows: 16, cols: 16 };
        assert_eq!(PuCostModel::pe_array(big).usage.dsp, 256.0);
    }

    #[test]
    fn fig6_dsp_ratios() {
        let int8 = DesignVariant::Int8.assessed_usage();
        let bfp = DesignVariant::Bfp8Only.assessed_usage();
        let multi = DesignVariant::MultiMode.assessed_usage();
        let indiv = DesignVariant::Individual.assessed_usage();
        // "consumes the same number of DSPs" across int8/bfp8/multi-mode.
        assert_eq!(int8.dsp, bfp.dsp);
        assert_eq!(bfp.dsp, multi.dsp);
        // indiv = 1.25x DSP (saving 20.0%).
        assert!((indiv.dsp / multi.dsp - 1.25).abs() < 1e-9);
    }

    #[test]
    fn fig6_ff_ratios() {
        let int8 = DesignVariant::Int8.assessed_usage();
        let bfp = DesignVariant::Bfp8Only.assessed_usage();
        let multi = DesignVariant::MultiMode.assessed_usage();
        let indiv = DesignVariant::Individual.assessed_usage();
        // bfp8 uses 1.19x the FFs of int8.
        assert!((bfp.ff / int8.ff - 1.19).abs() < 1e-2);
        // multi-mode FF ~ bfp8 FF ("nearly identical").
        assert!((multi.ff / bfp.ff - 1.0).abs() < 0.02);
        // indiv = 2.58x FF.
        assert!((indiv.ff / multi.ff - 2.58).abs() < 0.01);
    }

    #[test]
    fn fig6_lut_ratios() {
        let bfp = DesignVariant::Bfp8Only.assessed_usage();
        let multi = DesignVariant::MultiMode.assessed_usage();
        let indiv = DesignVariant::Individual.assessed_usage();
        assert!((multi.lut / bfp.lut - 2.94).abs() < 0.01);
        // Saving 43.6% LUT vs individual.
        assert!((1.0 - multi.lut / indiv.lut - 0.436).abs() < 1e-3);
    }

    #[test]
    fn normalization_helper() {
        let a = ResourceVec::new(2.0, 4.0, 0.0, 8.0);
        let b = ResourceVec::new(1.0, 2.0, 0.0, 4.0);
        let n = a.normalized_to(&b);
        assert_eq!(n, ResourceVec::new(2.0, 2.0, 0.0, 2.0));
    }

    #[test]
    fn vector_arithmetic() {
        let a = ResourceVec::new(1.0, 2.0, 3.0, 4.0);
        let b = a * 2.0;
        assert_eq!(b, ResourceVec::new(2.0, 4.0, 6.0, 8.0));
        assert_eq!(a + a, b);
        let mut c = a;
        c += a;
        assert_eq!(c, b);
    }

    #[test]
    fn display_renders_columns() {
        let s = format!("{}", ResourceVec::new(7348.0, 10329.0, 57.5, 72.0));
        assert!(s.contains("7348"));
        assert!(s.contains("57.5"));
    }
}
