//! Static description of the AMD Alveo U280 target platform.

/// Device resource totals and platform parameters of the Alveo U280
/// (XCU280, `xilinx_u280_xdma` shells).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct U280;

impl U280 {
    /// Total LUTs on the device.
    pub const LUT: u64 = 1_303_680;
    /// Total flip-flops.
    pub const FF: u64 = 2_607_360;
    /// Total BRAM18 blocks (2016 BRAM36 tiles × 2).
    pub const BRAM18: u64 = 4032;
    /// Total DSP48E2 slices.
    pub const DSP: u64 = 9024;
    /// HBM2 pseudo-channels.
    pub const HBM_CHANNELS: usize = 32;
    /// Aggregate HBM bandwidth in bytes per second (460 GB/s).
    pub const HBM_BW_BYTES_PER_SEC: f64 = 460.0e9;
    /// AXI data width per channel in bits.
    pub const AXI_BITS: usize = 256;
    /// Kernel clock of the paper's prototype, in Hz.
    pub const FREQ_HZ: f64 = 300.0e6;

    /// AXI bytes per cycle per channel.
    pub const fn axi_bytes_per_cycle() -> usize {
        Self::AXI_BITS / 8
    }
}

/// The paper's system configuration: 15 processing units, each with two
/// PE arrays and two 256-bit AXI channels into HBM ("we implemented 15
/// processing units ... to fully utilize the HBM channels"; each unit has 2
/// AXI channels, and the reported DSP total of 2163 ≈ 30 arrays × 72).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemConfig {
    /// Number of processing units instantiated.
    pub units: usize,
    /// PE arrays per unit (one per AXI channel).
    pub arrays_per_unit: usize,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper()
    }
}

impl SystemConfig {
    /// The paper's deployment: 15 units × 2 arrays = 30 arrays.
    pub const fn paper() -> Self {
        SystemConfig {
            units: 15,
            arrays_per_unit: 2,
        }
    }

    /// Total independent PE arrays.
    pub const fn total_arrays(&self) -> usize {
        self.units * self.arrays_per_unit
    }

    /// AXI channels consumed (one per array).
    pub const fn axi_channels(&self) -> usize {
        self.total_arrays()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_uses_30_arrays_on_30_channels() {
        let c = SystemConfig::paper();
        assert_eq!(c.total_arrays(), 30);
        assert!(c.axi_channels() <= U280::HBM_CHANNELS);
    }

    #[test]
    fn dsp_budget_fits_30_arrays() {
        // 30 arrays × 72 DSP = 2160 ≈ the 2163 reported in Table III,
        // a fraction of the device's 9024.
        let used = 30 * 72;
        assert!(used as u64 <= U280::DSP);
        assert_eq!(used, 2160);
    }

    #[test]
    fn axi_width() {
        assert_eq!(U280::axi_bytes_per_cycle(), 32);
    }
}
