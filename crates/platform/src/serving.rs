//! Serving-fleet observability types: array health and runtime counters.
//!
//! The serving runtime (`bfp-serve`) owns the policy — when an array is
//! degraded, quarantined, probed, or re-admitted — but the *vocabulary*
//! lives here, next to [`crate::SystemStats`], so that platform-level
//! reports can carry a serving snapshot without depending on the runtime
//! crate (which sits above this one in the dependency graph).

use std::fmt;

use bfp_faults::FaultReport;
use bfp_telemetry::{series, Registry, Table};

/// Identity of a serving tenant. The runtime keys quotas, weighted-fair
/// scheduling deficits, circuit breakers, and the per-tenant counters on
/// this id; tenant `0` is the implicit default for requests that never
/// set one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TenantId(pub u64);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// Request priority class. Classes are served in strict order (all
/// runnable `Critical` work dispatches before any `Standard`, which
/// dispatches before any `Bulk`); weighted fairness applies *between
/// tenants inside one class*. Shedding walks the ladder bottom-up —
/// `Bulk` first, then `Standard` — and `Critical` is never shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Best-effort background work: first to be shed under pressure,
    /// refused outright at brownout tier 2.
    Bulk,
    /// The default class for ordinary traffic.
    #[default]
    Standard,
    /// Latency-critical work. Never shed, dispatched first.
    Critical,
}

impl Priority {
    /// All classes, lowest first (the shed order).
    pub const ALL: [Priority; 3] = [Priority::Bulk, Priority::Standard, Priority::Critical];

    /// Dense index: `Bulk` = 0, `Standard` = 1, `Critical` = 2.
    pub fn index(self) -> usize {
        match self {
            Priority::Bulk => 0,
            Priority::Standard => 1,
            Priority::Critical => 2,
        }
    }

    /// Stable lowercase label for telemetry and bench reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::Bulk => "bulk",
            Priority::Standard => "standard",
            Priority::Critical => "critical",
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Health state of one accelerator array, as driven by the serving
/// runtime's strike/probe state machine:
///
/// ```text
///            detected-fault strikes            strikes past threshold
/// Healthy ───────────────────────▶ Degraded ───────────────────────▶ Quarantined
///    ▲                               │  clean streak                     │ probe
///    │                               ▼                                   ▼ timer
///    └───────────────────────────── Healthy          Probing ◀───────────┘
///    └── consecutive probe passes ◀────┘ (golden GEMM bit-checked vs softfp)
/// ```
///
/// `Degraded` arrays still serve (requests prefer healthier peers);
/// `Quarantined` arrays are drained and receive no user work; `Probing`
/// is the transient state while a quarantined array runs the golden
/// self-test GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrayHealth {
    /// Serving normally.
    Healthy,
    /// Recent detected faults: still serving, but deprioritised and one
    /// step from quarantine.
    Degraded,
    /// Drained; receives no user requests until a probe passes.
    Quarantined,
    /// Running the golden self-test GEMM.
    Probing,
}

impl ArrayHealth {
    /// Whether user requests may be dispatched to an array in this state.
    pub fn serves(&self) -> bool {
        matches!(self, ArrayHealth::Healthy | ArrayHealth::Degraded)
    }
}

impl fmt::Display for ArrayHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArrayHealth::Healthy => "healthy",
            ArrayHealth::Degraded => "degraded",
            ArrayHealth::Quarantined => "quarantined",
            ArrayHealth::Probing => "probing",
        })
    }
}

/// One transition in an array's health history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthEvent {
    /// Runtime-wide sequence number (monotonic across all arrays), so
    /// per-array histories interleave into one fleet timeline.
    pub seq: u64,
    /// State before the transition.
    pub from: ArrayHealth,
    /// State after the transition.
    pub to: ArrayHealth,
}

impl fmt::Display for HealthEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}: {} -> {}", self.seq, self.from, self.to)
    }
}

/// Serving statistics for one array.
#[derive(Debug, Clone)]
pub struct ArrayServeStats {
    /// Current health.
    pub health: ArrayHealth,
    /// Requests completed successfully on this array.
    pub completed: u64,
    /// Executions on which a fault was detected mid-request. Outputs
    /// with *uncorrected* detections are discarded and re-routed;
    /// ABFT-corrected executions (see `faults.abft_corrections`) are
    /// bit-exact and served, but still count here for health tracking.
    pub faulted_executions: u64,
    /// Golden self-test probes run while quarantined.
    pub probes_run: u64,
    /// Probes that passed the bit-exact check.
    pub probes_passed: u64,
    /// Modelled busy time (seconds of array occupancy at the calibrated
    /// operating point), independent of host scheduling noise.
    pub modelled_busy_s: f64,
    /// Every health transition, in order.
    pub history: Vec<HealthEvent>,
    /// Cumulative fault events attributed to this array.
    pub faults: FaultReport,
}

impl ArrayServeStats {
    /// A fresh, healthy array.
    pub fn new() -> Self {
        ArrayServeStats {
            health: ArrayHealth::Healthy,
            completed: 0,
            faulted_executions: 0,
            probes_run: 0,
            probes_passed: 0,
            modelled_busy_s: 0.0,
            history: Vec::new(),
            faults: FaultReport::default(),
        }
    }

    /// How many times this array entered `state`.
    pub fn times_entered(&self, state: ArrayHealth) -> usize {
        self.history.iter().filter(|e| e.to == state).count()
    }
}

impl Default for ArrayServeStats {
    fn default() -> Self {
        Self::new()
    }
}

/// Serving counters for one tenant. The admission identity
/// `admitted == completed + failed + queued + in_flight` holds per
/// tenant in every snapshot, exactly as it does fleet-wide.
#[derive(Debug, Clone, Default)]
pub struct TenantServeStats {
    /// Which tenant.
    pub tenant: TenantId,
    /// Scheduling weight in force (deficit-weighted round robin).
    pub weight: u32,
    /// Requests this tenant offered to `submit`.
    pub submitted: u64,
    /// Requests accepted into the scheduler.
    pub admitted: u64,
    /// Requests refused at admission, for any reason (queue full, quota,
    /// open breaker, unmeetable deadline, brownout).
    pub rejected: u64,
    /// Rejections charged specifically to an empty token bucket.
    pub quota_rejected: u64,
    /// Rejections charged to this tenant's open circuit breaker.
    pub breaker_rejected: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Admitted requests that ended in a typed error.
    pub failed: u64,
    /// Admitted requests evicted from the queue (backpressure or
    /// brownout shedding); a subset of `failed`.
    pub shed: u64,
    /// Requests waiting in the scheduler at snapshot time.
    pub queued: usize,
    /// Requests executing at snapshot time.
    pub in_flight: usize,
    /// Whether the tenant's circuit breaker is currently refusing work.
    pub breaker_open: bool,
}

/// Serving counters for one priority class (fleet-wide). The same
/// admission identity holds per class in every snapshot.
#[derive(Debug, Clone, Default)]
pub struct PriorityServeStats {
    /// Requests admitted at this priority.
    pub admitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Admitted requests that ended in a typed error.
    pub failed: u64,
    /// Admitted requests evicted from the queue; for
    /// [`Priority::Critical`] this must be 0 — criticals are never shed.
    pub shed: u64,
    /// Requests waiting in the scheduler at snapshot time.
    pub queued: usize,
    /// Requests executing at snapshot time.
    pub in_flight: usize,
}

/// Brownout-ladder state and accounting: the runtime sheds *quality*
/// before it sheds *work* (tier 1 switches the nonlinear kernels to the
/// fast LUT/polynomial family with proven ULP envelopes; tier 2 starts
/// refusing and shedding `Bulk` work), driven by queue-depth/latency
/// pressure with hysteresis so the ladder does not flap.
#[derive(Debug, Clone, Default)]
pub struct BrownoutStats {
    /// Ladder tier at snapshot time (0 = exact, 1 = fast nonlinear,
    /// 2 = fast nonlinear + `Bulk` shedding).
    pub tier: u8,
    /// Highest tier reached so far.
    pub max_tier: u8,
    /// Tier transitions (each one-step move counts once).
    pub transitions: u64,
    /// Queued `Bulk` requests shed by tier-2 entry or while at tier 2.
    pub sheds: u64,
}

/// Snapshot of the serving runtime's counters, surfaced through
/// [`crate::SystemStats::serve`].
///
/// Accounting identities (checked by the runtime's tests):
/// `admitted + rejected == submitted` and, in *every* snapshot,
/// `admitted == completed + failed + queued + in_flight` — fleet-wide,
/// per tenant, and per priority class (shed requests were admitted
/// first and count under `failed` as well as `shed`).
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Requests offered to `submit`.
    pub submitted: u64,
    /// Requests accepted into the queue.
    pub admitted: u64,
    /// Requests refused at admission (queue full under `Reject` /
    /// `BlockWithTimeout` backpressure).
    pub rejected: u64,
    /// Admitted requests evicted by `ShedOldest` backpressure.
    pub shed: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Admitted requests that ended in an error (deadline, shed,
    /// shutdown, exhausted retries).
    pub failed: u64,
    /// Requests that missed their deadline — failed after admission, or
    /// (under `Block` backpressure) refused at the gate because the
    /// budget expired while blocked. The latter also count as `rejected`.
    pub deadline_missed: u64,
    /// Rejections charged to empty per-tenant token buckets.
    pub quota_rejected: u64,
    /// Rejections charged to open per-tenant circuit breakers.
    pub breaker_rejected: u64,
    /// Rejections by the early-deadline admission check (remaining
    /// budget below the calibrated service estimate: queueing the work
    /// is doomed, so it is refused up front).
    pub deadline_rejected: u64,
    /// Admissions refused because the brownout ladder is at tier 2 and
    /// the request was `Bulk`.
    pub brownout_rejected: u64,
    /// Executions retried on a different array after a detected fault.
    pub retries: u64,
    /// Executions discarded due to detected faults (fleet-wide sum of
    /// per-array `faulted_executions`).
    pub degraded_executions: u64,
    /// Highest queue depth observed.
    pub queue_depth_high_water: usize,
    /// Requests waiting in the queue at snapshot time.
    pub queued: usize,
    /// Requests being executed at snapshot time.
    pub in_flight: usize,
    /// Brownout-ladder state and accounting.
    pub brownout: BrownoutStats,
    /// Per-tenant counters, sorted by tenant id.
    pub per_tenant: Vec<TenantServeStats>,
    /// Per-priority-class counters, indexed by [`Priority::index`].
    pub per_priority: [PriorityServeStats; 3],
    /// Per-array health and counters.
    pub per_array: Vec<ArrayServeStats>,
}

impl ServeStats {
    /// Arrays currently willing to take user work.
    pub fn serving_arrays(&self) -> usize {
        self.per_array.iter().filter(|a| a.health.serves()).count()
    }

    /// Fleet-wide modelled busy seconds.
    pub fn modelled_busy_s(&self) -> f64 {
        self.per_array.iter().map(|a| a.modelled_busy_s).sum()
    }

    /// The counters for one tenant, if it has been seen.
    pub fn tenant(&self, id: TenantId) -> Option<&TenantServeStats> {
        self.per_tenant.iter().find(|t| t.tenant == id)
    }

    /// The counters for one priority class.
    pub fn priority(&self, p: Priority) -> &PriorityServeStats {
        &self.per_priority[p.index()]
    }

    /// Publish the snapshot into a metrics [`Registry`] as gauges
    /// (idempotent: re-publishing a newer snapshot overwrites).
    pub fn publish(&self, reg: &Registry) {
        reg.gauge("serve_submitted").set(self.submitted as f64);
        reg.gauge("serve_admitted").set(self.admitted as f64);
        reg.gauge("serve_rejected").set(self.rejected as f64);
        reg.gauge("serve_shed").set(self.shed as f64);
        reg.gauge("serve_completed").set(self.completed as f64);
        reg.gauge("serve_failed").set(self.failed as f64);
        reg.gauge("serve_deadline_missed")
            .set(self.deadline_missed as f64);
        reg.gauge("serve_retries").set(self.retries as f64);
        reg.gauge("serve_degraded_executions")
            .set(self.degraded_executions as f64);
        reg.gauge("serve_queue_depth_high_water")
            .set(self.queue_depth_high_water as f64);
        reg.gauge("serve_queued").set(self.queued as f64);
        reg.gauge("serve_in_flight").set(self.in_flight as f64);
        reg.gauge("serve_serving_arrays")
            .set(self.serving_arrays() as f64);
        reg.gauge("serve_modelled_busy_s").set(self.modelled_busy_s());
        reg.gauge("serve_quota_rejected")
            .set(self.quota_rejected as f64);
        reg.gauge("serve_breaker_rejected")
            .set(self.breaker_rejected as f64);
        reg.gauge("serve_deadline_rejected")
            .set(self.deadline_rejected as f64);
        reg.gauge("serve_brownout_rejected")
            .set(self.brownout_rejected as f64);
        reg.gauge("serve_brownout_tier").set(self.brownout.tier as f64);
        reg.gauge("serve_brownout_transitions")
            .set(self.brownout.transitions as f64);
        reg.gauge("serve_brownout_sheds")
            .set(self.brownout.sheds as f64);
        for t in &self.per_tenant {
            let id = t.tenant.0.to_string();
            let labels = [("tenant", id.as_str())];
            reg.gauge(&series("serve_tenant_submitted", &labels))
                .set(t.submitted as f64);
            reg.gauge(&series("serve_tenant_admitted", &labels))
                .set(t.admitted as f64);
            reg.gauge(&series("serve_tenant_rejected", &labels))
                .set(t.rejected as f64);
            reg.gauge(&series("serve_tenant_quota_rejected", &labels))
                .set(t.quota_rejected as f64);
            reg.gauge(&series("serve_tenant_completed", &labels))
                .set(t.completed as f64);
            reg.gauge(&series("serve_tenant_failed", &labels))
                .set(t.failed as f64);
            reg.gauge(&series("serve_tenant_shed", &labels))
                .set(t.shed as f64);
            reg.gauge(&series("serve_tenant_queued", &labels))
                .set(t.queued as f64);
            reg.gauge(&series("serve_tenant_in_flight", &labels))
                .set(t.in_flight as f64);
            reg.gauge(&series("serve_tenant_breaker_open", &labels))
                .set(if t.breaker_open { 1.0 } else { 0.0 });
        }
        for (p, c) in Priority::ALL.iter().zip(self.per_priority.iter()) {
            let labels = [("priority", p.as_str())];
            reg.gauge(&series("serve_class_admitted", &labels))
                .set(c.admitted as f64);
            reg.gauge(&series("serve_class_completed", &labels))
                .set(c.completed as f64);
            reg.gauge(&series("serve_class_failed", &labels))
                .set(c.failed as f64);
            reg.gauge(&series("serve_class_shed", &labels))
                .set(c.shed as f64);
            reg.gauge(&series("serve_class_queued", &labels))
                .set(c.queued as f64);
            reg.gauge(&series("serve_class_in_flight", &labels))
                .set(c.in_flight as f64);
        }
        for (i, a) in self.per_array.iter().enumerate() {
            reg.gauge(&format!("serve_array{i}_completed"))
                .set(a.completed as f64);
            reg.gauge(&format!("serve_array{i}_faulted_executions"))
                .set(a.faulted_executions as f64);
            reg.gauge(&format!("serve_array{i}_serving"))
                .set(if a.health.serves() { 1.0 } else { 0.0 });
            reg.gauge(&format!("serve_array{i}_abft_detections"))
                .set(a.faults.abft_detections as f64);
            reg.gauge(&format!("serve_array{i}_abft_corrections"))
                .set(a.faults.abft_corrections as f64);
        }
    }
}

impl fmt::Display for ServeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "serve: {} submitted | {} admitted, {} rejected, {} shed | \
             {} completed, {} failed ({} deadline-missed) | \
             {} retries, {} faulted executions discarded | \
             queue high-water {} | {} queued, {} in-flight",
            self.submitted,
            self.admitted,
            self.rejected,
            self.shed,
            self.completed,
            self.failed,
            self.deadline_missed,
            self.retries,
            self.degraded_executions,
            self.queue_depth_high_water,
            self.queued,
            self.in_flight,
        )?;
        if self.brownout.max_tier > 0 || self.quota_rejected > 0 || self.breaker_rejected > 0 {
            writeln!(
                f,
                "overload: brownout tier {} (max {}, {} transitions, {} sheds) | \
                 {} quota-rejected, {} breaker-rejected, {} deadline-rejected, {} brownout-rejected",
                self.brownout.tier,
                self.brownout.max_tier,
                self.brownout.transitions,
                self.brownout.sheds,
                self.quota_rejected,
                self.breaker_rejected,
                self.deadline_rejected,
                self.brownout_rejected,
            )?;
        }
        if !self.per_tenant.is_empty() {
            let mut t = Table::new(
                "per-tenant serving state",
                &[
                    "tenant", "weight", "admitted", "rejected", "completed", "failed", "shed",
                    "queued", "breaker",
                ],
            );
            for ts in &self.per_tenant {
                t.row(&[
                    ts.tenant.0.to_string(),
                    ts.weight.to_string(),
                    ts.admitted.to_string(),
                    ts.rejected.to_string(),
                    ts.completed.to_string(),
                    ts.failed.to_string(),
                    ts.shed.to_string(),
                    format!("{}+{}", ts.queued, ts.in_flight),
                    if ts.breaker_open { "open" } else { "closed" }.to_string(),
                ]);
            }
            write!(f, "{}", t.render())?;
        }
        if self.per_array.is_empty() {
            return Ok(());
        }
        let mut t = Table::new(
            "per-array serving state",
            &["array", "health", "completed", "faulted", "probes", "history"],
        );
        for (i, a) in self.per_array.iter().enumerate() {
            let hist: Vec<String> = a.history.iter().map(|e| e.to_string()).collect();
            t.row(&[
                i.to_string(),
                a.health.to_string(),
                a.completed.to_string(),
                a.faulted_executions.to_string(),
                format!("{}/{}", a.probes_passed, a.probes_run),
                hist.join(", "),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_order_and_labels() {
        assert!(Priority::Bulk < Priority::Standard);
        assert!(Priority::Standard < Priority::Critical);
        assert_eq!(Priority::default(), Priority::Standard);
        for (i, p) in Priority::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert_eq!(Priority::Critical.as_str(), "critical");
        assert_eq!(TenantId(7).to_string(), "tenant7");
    }

    #[test]
    fn tenant_and_priority_accessors() {
        let mut s = ServeStats::default();
        s.per_tenant.push(TenantServeStats {
            tenant: TenantId(3),
            completed: 5,
            ..Default::default()
        });
        s.per_priority[Priority::Critical.index()].admitted = 2;
        assert_eq!(s.tenant(TenantId(3)).unwrap().completed, 5);
        assert!(s.tenant(TenantId(4)).is_none());
        assert_eq!(s.priority(Priority::Critical).admitted, 2);
    }

    #[test]
    fn publish_lands_tenant_and_class_series() {
        let mut s = ServeStats::default();
        s.per_tenant.push(TenantServeStats {
            tenant: TenantId(2),
            admitted: 9,
            quota_rejected: 3,
            breaker_open: true,
            ..Default::default()
        });
        s.per_priority[Priority::Bulk.index()].shed = 4;
        s.brownout = BrownoutStats {
            tier: 1,
            max_tier: 2,
            transitions: 5,
            sheds: 4,
        };
        let reg = bfp_telemetry::Registry::new();
        s.publish(&reg);
        let text = reg.snapshot().to_prometheus_text();
        assert!(
            text.contains("serve_tenant_admitted{tenant=\"2\"} 9"),
            "{text}"
        );
        assert!(
            text.contains("serve_tenant_quota_rejected{tenant=\"2\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("serve_tenant_breaker_open{tenant=\"2\"} 1"),
            "{text}"
        );
        assert!(text.contains("serve_class_shed{priority=\"bulk\"} 4"), "{text}");
        assert!(text.contains("serve_brownout_tier 1"), "{text}");
        assert!(text.contains("serve_brownout_transitions 5"), "{text}");
    }

    #[test]
    fn display_includes_overload_and_tenant_tables() {
        let mut s = ServeStats::default();
        s.brownout.max_tier = 2;
        s.brownout.tier = 1;
        s.quota_rejected = 6;
        s.per_tenant.push(TenantServeStats {
            tenant: TenantId(1),
            weight: 4,
            admitted: 10,
            completed: 8,
            ..Default::default()
        });
        let text = s.to_string();
        assert!(text.contains("brownout tier 1 (max 2"), "{text}");
        assert!(text.contains("6 quota-rejected"), "{text}");
        assert!(text.contains("per-tenant serving state"), "{text}");
    }

    #[test]
    fn health_serving_predicate() {
        assert!(ArrayHealth::Healthy.serves());
        assert!(ArrayHealth::Degraded.serves());
        assert!(!ArrayHealth::Quarantined.serves());
        assert!(!ArrayHealth::Probing.serves());
    }

    #[test]
    fn stats_display_and_rollups() {
        let mut s = ServeStats {
            submitted: 10,
            admitted: 8,
            rejected: 2,
            completed: 7,
            failed: 1,
            deadline_missed: 1,
            queue_depth_high_water: 4,
            ..Default::default()
        };
        let mut a0 = ArrayServeStats::new();
        a0.completed = 7;
        a0.modelled_busy_s = 0.5;
        let mut a1 = ArrayServeStats::new();
        a1.health = ArrayHealth::Quarantined;
        a1.history.push(HealthEvent {
            seq: 0,
            from: ArrayHealth::Healthy,
            to: ArrayHealth::Quarantined,
        });
        s.per_array = vec![a0, a1];

        assert_eq!(s.serving_arrays(), 1);
        assert!((s.modelled_busy_s() - 0.5).abs() < 1e-12);
        assert_eq!(s.per_array[1].times_entered(ArrayHealth::Quarantined), 1);
        let text = s.to_string();
        assert!(text.contains("8 admitted"));
        assert!(text.contains("0 queued, 0 in-flight"));
        assert!(text.contains("per-array serving state"));
        // Array 1's table row carries its health and history.
        let row1 = text
            .lines()
            .find(|l| l.trim_start().starts_with("1 |"))
            .expect("array 1 row");
        assert!(row1.contains("quarantined"), "{text}");
        assert!(row1.contains("healthy -> quarantined"), "{text}");
    }

    #[test]
    fn publish_lands_counters_and_per_array_gauges() {
        let mut s = ServeStats {
            submitted: 10,
            admitted: 8,
            rejected: 2,
            completed: 7,
            queued: 1,
            in_flight: 2,
            ..Default::default()
        };
        let mut a1 = ArrayServeStats::new();
        a1.health = ArrayHealth::Quarantined;
        a1.completed = 3;
        a1.faults.abft_detections = 5;
        a1.faults.abft_corrections = 4;
        s.per_array = vec![ArrayServeStats::new(), a1];

        let reg = bfp_telemetry::Registry::new();
        s.publish(&reg);
        s.publish(&reg); // idempotent
        let text = reg.snapshot().to_prometheus_text();
        assert!(text.contains("serve_admitted 8"), "{text}");
        assert!(text.contains("serve_in_flight 2"), "{text}");
        assert!(text.contains("serve_serving_arrays 1"), "{text}");
        assert!(text.contains("serve_array1_completed 3"), "{text}");
        assert!(text.contains("serve_array1_serving 0"), "{text}");
        assert!(text.contains("serve_array1_abft_detections 5"), "{text}");
        assert!(text.contains("serve_array1_abft_corrections 4"), "{text}");
    }
}
