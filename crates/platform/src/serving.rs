//! Serving-fleet observability types: array health and runtime counters.
//!
//! The serving runtime (`bfp-serve`) owns the policy — when an array is
//! degraded, quarantined, probed, or re-admitted — but the *vocabulary*
//! lives here, next to [`crate::SystemStats`], so that platform-level
//! reports can carry a serving snapshot without depending on the runtime
//! crate (which sits above this one in the dependency graph).

use std::fmt;

use bfp_faults::FaultReport;
use bfp_telemetry::{Registry, Table};

/// Health state of one accelerator array, as driven by the serving
/// runtime's strike/probe state machine:
///
/// ```text
///            detected-fault strikes            strikes past threshold
/// Healthy ───────────────────────▶ Degraded ───────────────────────▶ Quarantined
///    ▲                               │  clean streak                     │ probe
///    │                               ▼                                   ▼ timer
///    └───────────────────────────── Healthy          Probing ◀───────────┘
///    └── consecutive probe passes ◀────┘ (golden GEMM bit-checked vs softfp)
/// ```
///
/// `Degraded` arrays still serve (requests prefer healthier peers);
/// `Quarantined` arrays are drained and receive no user work; `Probing`
/// is the transient state while a quarantined array runs the golden
/// self-test GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrayHealth {
    /// Serving normally.
    Healthy,
    /// Recent detected faults: still serving, but deprioritised and one
    /// step from quarantine.
    Degraded,
    /// Drained; receives no user requests until a probe passes.
    Quarantined,
    /// Running the golden self-test GEMM.
    Probing,
}

impl ArrayHealth {
    /// Whether user requests may be dispatched to an array in this state.
    pub fn serves(&self) -> bool {
        matches!(self, ArrayHealth::Healthy | ArrayHealth::Degraded)
    }
}

impl fmt::Display for ArrayHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArrayHealth::Healthy => "healthy",
            ArrayHealth::Degraded => "degraded",
            ArrayHealth::Quarantined => "quarantined",
            ArrayHealth::Probing => "probing",
        })
    }
}

/// One transition in an array's health history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthEvent {
    /// Runtime-wide sequence number (monotonic across all arrays), so
    /// per-array histories interleave into one fleet timeline.
    pub seq: u64,
    /// State before the transition.
    pub from: ArrayHealth,
    /// State after the transition.
    pub to: ArrayHealth,
}

impl fmt::Display for HealthEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}: {} -> {}", self.seq, self.from, self.to)
    }
}

/// Serving statistics for one array.
#[derive(Debug, Clone)]
pub struct ArrayServeStats {
    /// Current health.
    pub health: ArrayHealth,
    /// Requests completed successfully on this array.
    pub completed: u64,
    /// Executions on which a fault was detected mid-request. Outputs
    /// with *uncorrected* detections are discarded and re-routed;
    /// ABFT-corrected executions (see `faults.abft_corrections`) are
    /// bit-exact and served, but still count here for health tracking.
    pub faulted_executions: u64,
    /// Golden self-test probes run while quarantined.
    pub probes_run: u64,
    /// Probes that passed the bit-exact check.
    pub probes_passed: u64,
    /// Modelled busy time (seconds of array occupancy at the calibrated
    /// operating point), independent of host scheduling noise.
    pub modelled_busy_s: f64,
    /// Every health transition, in order.
    pub history: Vec<HealthEvent>,
    /// Cumulative fault events attributed to this array.
    pub faults: FaultReport,
}

impl ArrayServeStats {
    /// A fresh, healthy array.
    pub fn new() -> Self {
        ArrayServeStats {
            health: ArrayHealth::Healthy,
            completed: 0,
            faulted_executions: 0,
            probes_run: 0,
            probes_passed: 0,
            modelled_busy_s: 0.0,
            history: Vec::new(),
            faults: FaultReport::default(),
        }
    }

    /// How many times this array entered `state`.
    pub fn times_entered(&self, state: ArrayHealth) -> usize {
        self.history.iter().filter(|e| e.to == state).count()
    }
}

impl Default for ArrayServeStats {
    fn default() -> Self {
        Self::new()
    }
}

/// Snapshot of the serving runtime's counters, surfaced through
/// [`crate::SystemStats::serve`].
///
/// Accounting identities (checked by the runtime's tests):
/// `admitted + rejected == submitted` and, once drained,
/// `completed + failed == admitted` (shed requests were admitted first
/// and count under `failed` as well as `shed`).
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Requests offered to `submit`.
    pub submitted: u64,
    /// Requests accepted into the queue.
    pub admitted: u64,
    /// Requests refused at admission (queue full under `Reject` /
    /// `BlockWithTimeout` backpressure).
    pub rejected: u64,
    /// Admitted requests evicted by `ShedOldest` backpressure.
    pub shed: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Admitted requests that ended in an error (deadline, shed,
    /// shutdown, exhausted retries).
    pub failed: u64,
    /// Requests that failed specifically because their deadline passed.
    pub deadline_missed: u64,
    /// Executions retried on a different array after a detected fault.
    pub retries: u64,
    /// Executions discarded due to detected faults (fleet-wide sum of
    /// per-array `faulted_executions`).
    pub degraded_executions: u64,
    /// Highest queue depth observed.
    pub queue_depth_high_water: usize,
    /// Requests waiting in the queue at snapshot time.
    pub queued: usize,
    /// Requests being executed at snapshot time.
    pub in_flight: usize,
    /// Per-array health and counters.
    pub per_array: Vec<ArrayServeStats>,
}

impl ServeStats {
    /// Arrays currently willing to take user work.
    pub fn serving_arrays(&self) -> usize {
        self.per_array.iter().filter(|a| a.health.serves()).count()
    }

    /// Fleet-wide modelled busy seconds.
    pub fn modelled_busy_s(&self) -> f64 {
        self.per_array.iter().map(|a| a.modelled_busy_s).sum()
    }

    /// Publish the snapshot into a metrics [`Registry`] as gauges
    /// (idempotent: re-publishing a newer snapshot overwrites).
    pub fn publish(&self, reg: &Registry) {
        reg.gauge("serve_submitted").set(self.submitted as f64);
        reg.gauge("serve_admitted").set(self.admitted as f64);
        reg.gauge("serve_rejected").set(self.rejected as f64);
        reg.gauge("serve_shed").set(self.shed as f64);
        reg.gauge("serve_completed").set(self.completed as f64);
        reg.gauge("serve_failed").set(self.failed as f64);
        reg.gauge("serve_deadline_missed")
            .set(self.deadline_missed as f64);
        reg.gauge("serve_retries").set(self.retries as f64);
        reg.gauge("serve_degraded_executions")
            .set(self.degraded_executions as f64);
        reg.gauge("serve_queue_depth_high_water")
            .set(self.queue_depth_high_water as f64);
        reg.gauge("serve_queued").set(self.queued as f64);
        reg.gauge("serve_in_flight").set(self.in_flight as f64);
        reg.gauge("serve_serving_arrays")
            .set(self.serving_arrays() as f64);
        reg.gauge("serve_modelled_busy_s").set(self.modelled_busy_s());
        for (i, a) in self.per_array.iter().enumerate() {
            reg.gauge(&format!("serve_array{i}_completed"))
                .set(a.completed as f64);
            reg.gauge(&format!("serve_array{i}_faulted_executions"))
                .set(a.faulted_executions as f64);
            reg.gauge(&format!("serve_array{i}_serving"))
                .set(if a.health.serves() { 1.0 } else { 0.0 });
            reg.gauge(&format!("serve_array{i}_abft_detections"))
                .set(a.faults.abft_detections as f64);
            reg.gauge(&format!("serve_array{i}_abft_corrections"))
                .set(a.faults.abft_corrections as f64);
        }
    }
}

impl fmt::Display for ServeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "serve: {} submitted | {} admitted, {} rejected, {} shed | \
             {} completed, {} failed ({} deadline-missed) | \
             {} retries, {} faulted executions discarded | \
             queue high-water {} | {} queued, {} in-flight",
            self.submitted,
            self.admitted,
            self.rejected,
            self.shed,
            self.completed,
            self.failed,
            self.deadline_missed,
            self.retries,
            self.degraded_executions,
            self.queue_depth_high_water,
            self.queued,
            self.in_flight,
        )?;
        if self.per_array.is_empty() {
            return Ok(());
        }
        let mut t = Table::new(
            "per-array serving state",
            &["array", "health", "completed", "faulted", "probes", "history"],
        );
        for (i, a) in self.per_array.iter().enumerate() {
            let hist: Vec<String> = a.history.iter().map(|e| e.to_string()).collect();
            t.row(&[
                i.to_string(),
                a.health.to_string(),
                a.completed.to_string(),
                a.faulted_executions.to_string(),
                format!("{}/{}", a.probes_passed, a.probes_run),
                hist.join(", "),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_serving_predicate() {
        assert!(ArrayHealth::Healthy.serves());
        assert!(ArrayHealth::Degraded.serves());
        assert!(!ArrayHealth::Quarantined.serves());
        assert!(!ArrayHealth::Probing.serves());
    }

    #[test]
    fn stats_display_and_rollups() {
        let mut s = ServeStats {
            submitted: 10,
            admitted: 8,
            rejected: 2,
            completed: 7,
            failed: 1,
            deadline_missed: 1,
            queue_depth_high_water: 4,
            ..Default::default()
        };
        let mut a0 = ArrayServeStats::new();
        a0.completed = 7;
        a0.modelled_busy_s = 0.5;
        let mut a1 = ArrayServeStats::new();
        a1.health = ArrayHealth::Quarantined;
        a1.history.push(HealthEvent {
            seq: 0,
            from: ArrayHealth::Healthy,
            to: ArrayHealth::Quarantined,
        });
        s.per_array = vec![a0, a1];

        assert_eq!(s.serving_arrays(), 1);
        assert!((s.modelled_busy_s() - 0.5).abs() < 1e-12);
        assert_eq!(s.per_array[1].times_entered(ArrayHealth::Quarantined), 1);
        let text = s.to_string();
        assert!(text.contains("8 admitted"));
        assert!(text.contains("0 queued, 0 in-flight"));
        assert!(text.contains("per-array serving state"));
        // Array 1's table row carries its health and history.
        let row1 = text
            .lines()
            .find(|l| l.trim_start().starts_with("1 |"))
            .expect("array 1 row");
        assert!(row1.contains("quarantined"), "{text}");
        assert!(row1.contains("healthy -> quarantined"), "{text}");
    }

    #[test]
    fn publish_lands_counters_and_per_array_gauges() {
        let mut s = ServeStats {
            submitted: 10,
            admitted: 8,
            rejected: 2,
            completed: 7,
            queued: 1,
            in_flight: 2,
            ..Default::default()
        };
        let mut a1 = ArrayServeStats::new();
        a1.health = ArrayHealth::Quarantined;
        a1.completed = 3;
        a1.faults.abft_detections = 5;
        a1.faults.abft_corrections = 4;
        s.per_array = vec![ArrayServeStats::new(), a1];

        let reg = bfp_telemetry::Registry::new();
        s.publish(&reg);
        s.publish(&reg); // idempotent
        let text = reg.snapshot().to_prometheus_text();
        assert!(text.contains("serve_admitted 8"), "{text}");
        assert!(text.contains("serve_in_flight 2"), "{text}");
        assert!(text.contains("serve_serving_arrays 1"), "{text}");
        assert!(text.contains("serve_array1_completed 3"), "{text}");
        assert!(text.contains("serve_array1_serving 0"), "{text}");
        assert!(text.contains("serve_array1_abft_detections 5"), "{text}");
        assert!(text.contains("serve_array1_abft_corrections 4"), "{text}");
    }
}
