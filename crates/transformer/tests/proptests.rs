//! Property tests for the VPU kernels and the mixed-precision engine.

use bfp_arith::matrix::MatF32;
use bfp_arith::stats::ErrorStats;
use bfp_transformer::{Engine, MixedEngine, RefEngine, Vpu};
use proptest::prelude::*;

fn moderate_f32() -> impl Strategy<Value = f32> {
    (-50.0f32..50.0).prop_map(|v| v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exp_is_positive_and_monotone(a in -80.0f32..80.0, b in -80.0f32..80.0) {
        let mut vpu = Vpu::new();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (elo, ehi) = (vpu.exp(lo), vpu.exp(hi));
        prop_assert!(elo >= 0.0);
        // Truncating hardware can tie at adjacent representables but must
        // never invert the order by more than an ulp-scale wobble.
        prop_assert!(ehi >= elo * 0.999_999, "exp({lo})={elo} > exp({hi})={ehi}");
    }

    #[test]
    fn softmax_rows_are_distributions(
        row in proptest::collection::vec(-20.0f32..20.0, 1..80)
    ) {
        let mut vpu = Vpu::new();
        let mut v = row.clone();
        vpu.softmax_row(&mut v);
        let sum: f64 = v.iter().map(|&x| x as f64).sum();
        prop_assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
        prop_assert!(v.iter().all(|&x| (0.0..=1.0001).contains(&x)));
        // Order preservation: argmax of the logits stays argmax.
        let argmax_in = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let max_out = v
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        prop_assert!((v[argmax_in] - v[max_out]).abs() < 1e-6);
    }

    #[test]
    fn onchip_and_host_softmax_agree(
        row in proptest::collection::vec(-15.0f32..15.0, 2..60)
    ) {
        let mut v1 = row.clone();
        let mut v2 = row.clone();
        Vpu::new().softmax_row(&mut v1);
        Vpu::new().softmax_row_onchip(&mut v2);
        for (a, b) in v1.iter().zip(&v2) {
            prop_assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn gelu_is_monotone_above_one(a in 1.0f32..40.0, d in 0.01f32..10.0) {
        // GELU is monotone for x >= ~-0.75; check the clean region.
        let mut vpu = Vpu::new();
        let lo = vpu.gelu(a);
        let hi = vpu.gelu(a + d);
        prop_assert!(hi >= lo - 1e-4, "gelu({a})={lo} vs gelu({})={hi}", a + d);
    }

    #[test]
    fn recip_inverts_mul(x in moderate_f32()) {
        prop_assume!(x.abs() > 1e-3);
        let mut vpu = Vpu::new();
        let r = vpu.recip(x, 3);
        let prod = vpu.m(x, r);
        prop_assert!((prod - 1.0).abs() < 1e-5, "x*recip(x) = {prod}");
    }

    #[test]
    fn layernorm_output_is_normalised(
        row in proptest::collection::vec(-30.0f32..30.0, 8..96)
    ) {
        // Constant rows have zero variance; eps keeps them finite but not
        // unit-variance, so require some spread.
        let spread = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
            - row.iter().cloned().fold(f32::INFINITY, f32::min);
        prop_assume!(spread > 0.5);
        let n = row.len();
        let gamma = vec![1.0f32; n];
        let beta = vec![0.0f32; n];
        let mut v = row.clone();
        Vpu::new().layernorm_row(&mut v, &gamma, &beta, 1e-6);
        let mean: f64 = v.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        let var: f64 = v.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n as f64;
        prop_assert!(mean.abs() < 1e-3, "mean {mean}");
        prop_assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn engine_matmul_keeps_sqnr_on_smooth_inputs(
        seed in 0u64..500,
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
    ) {
        let a = MatF32::from_fn(m, k, |i, j| ((seed as f32) * 0.01 + i as f32 * 0.3 + j as f32 * 0.7).sin());
        let b = MatF32::from_fn(k, n, |i, j| ((seed as f32) * 0.02 - i as f32 * 0.5 + j as f32 * 0.2).cos());
        let got = MixedEngine::new().matmul(&a, &b);
        let want = RefEngine.matmul(&a, &b);
        let mut s = ErrorStats::new();
        s.push_slices(got.data(), want.data());
        if s.signal_energy > 1e-3 {
            prop_assert!(s.sqnr_db() > 25.0, "SQNR {}", s.sqnr_db());
        }
    }
}

// The sharded-kernel equivalence cases run matrices big enough to actually
// fork worker threads (the engine only shards batches past its break-even
// size), so they get a smaller case budget than the scalar properties.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn parallel_batched_kernels_bit_match_scalar_kernels(
        rows in 52usize..72,
        cols in 80usize..112,
        seed in 0u64..1_000_000,
    ) {
        // Scalar oracle: the per-row / per-element Vpu kernels, exactly as
        // the engine called them before batching and sharding existed.
        let src = MatF32::from_fn(rows, cols, |i, j| {
            ((seed as f32) * 1e-5 + i as f32 * 0.83 + j as f32 * 0.29).sin() * 4.0
        });
        let gamma: Vec<f32> = (0..cols).map(|j| 1.0 + (j as f32 * 0.13).cos() * 0.2).collect();
        let beta: Vec<f32> = (0..cols).map(|j| (j as f32 * 0.21).sin() * 0.1).collect();
        let eps = 1e-5f32;

        let mut vpu = Vpu::new();
        let mut want_sm = src.clone();
        for r in 0..rows {
            let row = &mut want_sm.data_mut()[r * cols..(r + 1) * cols];
            vpu.softmax_row(row);
        }
        let mut want_gelu = src.clone();
        for v in want_gelu.data_mut().iter_mut() {
            *v = vpu.gelu(*v);
        }
        let mut want_ln = src.clone();
        for r in 0..rows {
            let row = &mut want_ln.data_mut()[r * cols..(r + 1) * cols];
            vpu.layernorm_row(row, &gamma, &beta, eps);
        }

        let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        for threads in [1usize, 3, host] {
            let mut e = MixedEngine::new().with_threads(threads);
            let mut sm = src.clone();
            e.softmax_rows(&mut sm);
            let mut ge = src.clone();
            e.gelu(&mut ge);
            let mut ln = src.clone();
            e.layernorm(&mut ln, &gamma, &beta, eps);
            for (got, want) in [(&sm, &want_sm), (&ge, &want_gelu), (&ln, &want_ln)] {
                for (p, q) in got.data().iter().zip(want.data()) {
                    prop_assert_eq!(p.to_bits(), q.to_bits(), "threads={}", threads);
                }
            }
        }
    }
}
