//! The fast nonlinear kernels' error contract, in two halves:
//!
//! 1. **Oracle-twin goldens** — the `NonlinearMode::Exact` path must stay
//!    bit-identical to the pre-fast-path implementation. The hex vectors
//!    below were captured from the exact kernels before the fast path
//!    existed (`examples/golden_dump.rs`); any drift here is a silent
//!    change to the bit-level hardware model and fails the suite.
//!
//! 2. **Envelope sweeps** — every fast kernel carries a pinned
//!    [`UlpEnvelope`] against the exact oracle, and the envelope must
//!    hold across *every* oracle datapath rounding configuration
//!    (multiplier `Exact`/`DropLsp` × adder `Exact48`/`Truncate24`),
//!    including subnormals, ±0, clamp boundaries, and near-overflow.
//!    The pinned constants come from `examples/envelope_probe.rs`
//!    measurements with headroom; the documented table lives in
//!    DESIGN.md. Quick sweeps sample a strict subset of the probe grid;
//!    the `#[ignore]`d heavy sweeps (run in release in CI) use denser
//!    grids against 2x-relaxed envelopes.

use bfp_arith::ulp::{EnvelopeStats, UlpEnvelope};
use bfp_arith::{AddVariant, MulVariant};
use bfp_transformer::engine::DivisionPolicy;
use bfp_transformer::vpu::fast;
use bfp_transformer::{NonlinearMode, Vpu};

const DATAPATHS: [(MulVariant, AddVariant); 4] = [
    (MulVariant::DropLsp, AddVariant::Exact48),
    (MulVariant::Exact, AddVariant::Exact48),
    (MulVariant::DropLsp, AddVariant::Truncate24),
    (MulVariant::Exact, AddVariant::Truncate24),
];

// ---------------------------------------------------------------------------
// Pinned envelopes (see DESIGN.md "Fast nonlinear kernels" table).
// Measured worst cases in parentheses; pins carry ~1.5-2x headroom.
// The adder variant dominates the oracle's own rounding, so envelopes key
// on it; the multiplier variant measured no difference.
// ---------------------------------------------------------------------------

fn env_exp(add: AddVariant) -> UlpEnvelope {
    match add {
        AddVariant::Exact48 => UlpEnvelope::new(192, 0.0), // (92 ulp)
        AddVariant::Truncate24 => UlpEnvelope::new(256, 2.0e-3), // (256, 1.46e-3)
    }
}

fn env_tanh(add: AddVariant) -> UlpEnvelope {
    match add {
        AddVariant::Exact48 => UlpEnvelope::new(16, 2.0e-6), // (4, 1.44e-6)
        AddVariant::Truncate24 => UlpEnvelope::new(16, 2.0e-3), // (4, 1.59e-3)
    }
}

fn env_gelu(add: AddVariant) -> UlpEnvelope {
    match add {
        AddVariant::Exact48 => UlpEnvelope::new(16, 1.5e-6), // (4, 7.8e-7)
        AddVariant::Truncate24 => UlpEnvelope::new(16, 8.0e-4), // (4, 5.42e-4)
    }
}

fn env_rsqrt(_add: AddVariant) -> UlpEnvelope {
    UlpEnvelope::new(8, 1.0e-18) // (4, 2.7e-19): identical algorithm, subnormal tail only
}

fn env_softmax(add: AddVariant) -> UlpEnvelope {
    match add {
        AddVariant::Exact48 => UlpEnvelope::new(512, 5.0e-7), // (256, 4.2e-7)
        AddVariant::Truncate24 => UlpEnvelope::new(64, 8.0e-4), // (16, 3.6e-4)
    }
}

fn env_layernorm(_add: AddVariant) -> UlpEnvelope {
    UlpEnvelope::new(4096, 1.0e-4) // (1024, 5.3e-5) on either adder
}

/// Heavy sweeps run denser grids than the probe measured; give the pinned
/// envelope 2x slack there so the tight pins stay meaningful in the docs.
fn relax(env: UlpEnvelope) -> UlpEnvelope {
    UlpEnvelope::new(env.max_ulp * 2, env.abs_floor * 2.0)
}

// ---------------------------------------------------------------------------
// Sweep machinery
// ---------------------------------------------------------------------------

/// Stratified magnitudes: `per_binade` mantissa samples in every binade of
/// `[2^lo_exp, 2^hi_exp]`. With `per_binade` 16 this is a strict subset of
/// the 64-sample probe grid that measured the pinned envelopes.
fn grid(lo_exp: i32, hi_exp: i32, per_binade: u32) -> Vec<f32> {
    let stride = 0x0002_0821u32 * (64 / per_binade);
    let mut out = Vec::new();
    for e in lo_exp..=hi_exp {
        for m in 0..per_binade {
            out.push(f32::from_bits(
                (((e + 127) as u32) << 23) | ((m * stride) & 0x007f_ffff),
            ));
        }
    }
    out
}

fn check_scalar(
    name: &str,
    inputs: &[f32],
    env_of: impl Fn(AddVariant) -> UlpEnvelope,
    heavy: bool,
    f: impl Fn(&mut Vpu, f32) -> (f32, f32),
) {
    for (mv, av) in DATAPATHS {
        let mut vpu = Vpu::with_datapath(mv, av);
        let env = if heavy { relax(env_of(av)) } else { env_of(av) };
        let mut stats = EnvelopeStats::new();
        for &x in inputs {
            let (got, want) = f(&mut vpu, x);
            assert!(
                stats.record(got, want, &env),
                "{name} {mv:?}/{av:?} x={x:e} ({:#010x}): fast {got:e} ({:#010x}) \
                 vs exact {want:e} ({:#010x}) outside {env:?}",
                x.to_bits(),
                got.to_bits(),
                want.to_bits(),
            );
        }
        assert_eq!(stats.violations, 0);
        assert!(stats.samples as usize == inputs.len());
    }
}

fn with_signs(mags: Vec<f32>) -> Vec<f32> {
    let mut v: Vec<f32> = mags.iter().flat_map(|&m| [m, -m]).collect();
    v.extend([0.0, -0.0]);
    v
}

// ---------------------------------------------------------------------------
// Envelope sweeps: scalar kernels, quick (every datapath, subnormals to
// near-overflow, clamp boundaries, ±0)
// ---------------------------------------------------------------------------

#[test]
fn exp_envelope_holds_across_round_modes() {
    let mut xs = with_signs(grid(-126, 6, 16));
    xs.extend([
        87.99, 88.0, 88.01, 100.0, -86.99, -87.0, -87.01, -100.0,
        f32::from_bits(1), // smallest subnormal: e^x rounds to 1
        f32::MAX,          // clamp to +inf
        f32::MIN,          // clamp to 0
    ]);
    check_scalar("exp", &xs, env_exp, false, |v, x| (fast::exp(x), v.exp(x)));
}

#[test]
fn tanh_envelope_holds_across_round_modes() {
    let mut xs = with_signs(grid(-126, 4, 16));
    xs.extend([14.99, 15.0, 15.01, -14.99, -15.0, -15.01, f32::MAX, f32::MIN]);
    // Both the on-chip oracle (NR reciprocal) and the host-division oracle.
    check_scalar("tanh/onchip", &xs, env_tanh, false, |v, x| {
        (fast::tanh(x), v.tanh_onchip(x))
    });
    check_scalar("tanh/host", &xs, env_tanh, false, |v, x| {
        (fast::tanh(x), v.tanh(x))
    });
}

#[test]
fn gelu_envelope_holds_across_round_modes() {
    let mut xs = with_signs(grid(-126, 5, 16));
    xs.extend([f32::MAX, f32::MIN, f32::from_bits(1), -f32::from_bits(1)]);
    check_scalar("gelu/onchip", &xs, env_gelu, false, |v, x| {
        (fast::gelu(x), v.gelu_onchip(x))
    });
    check_scalar("gelu/host", &xs, env_gelu, false, |v, x| {
        (fast::gelu(x), v.gelu(x))
    });
}

#[test]
fn rsqrt_envelope_holds_across_round_modes() {
    let mut xs = grid(-126, 127, 16);
    xs.extend([0.0, f32::from_bits(1), f32::MAX]);
    check_scalar("rsqrt", &xs, env_rsqrt, false, |v, x| {
        (fast::rsqrt(x), v.rsqrt_onchip(x, 3))
    });
}

// ---------------------------------------------------------------------------
// Envelope sweeps: row kernels
// ---------------------------------------------------------------------------

fn softmax_rows_within(seeds: std::ops::Range<usize>, sizes: &[usize], scales: &[f32], heavy: bool) {
    for (mv, av) in DATAPATHS {
        let mut vpu = Vpu::with_datapath(mv, av);
        let base = env_softmax(av);
        let env = if heavy { relax(base) } else { base };
        for &n in sizes {
            for seed in seeds.clone() {
                for &scale in scales {
                    let row: Vec<f32> = (0..n)
                        .map(|k| ((k + seed * 31) as f32 * 0.61).sin() * scale)
                        .collect();
                    let mut a = row.clone();
                    let mut b = row.clone();
                    fast::softmax_row(&mut a);
                    vpu.softmax_rows_batch(&mut b, n, DivisionPolicy::OnChip, NonlinearMode::Exact);
                    for (g, w) in a.iter().zip(&b) {
                        assert!(
                            env.admits(*g, *w),
                            "softmax {mv:?}/{av:?} n={n} seed={seed} scale={scale}: \
                             {g:e} vs {w:e} outside {env:?}"
                        );
                    }
                }
            }
        }
    }
}

fn layernorm_rows_within(seeds: std::ops::Range<usize>, sizes: &[usize], heavy: bool) {
    for (mv, av) in DATAPATHS {
        let mut vpu = Vpu::with_datapath(mv, av);
        let base = env_layernorm(av);
        let env = if heavy { relax(base) } else { base };
        for &n in sizes {
            for seed in seeds.clone() {
                let gamma: Vec<f32> = (0..n).map(|j| 1.0 + j as f32 * 0.01).collect();
                let beta: Vec<f32> = (0..n).map(|j| (j as f32 * 0.3).cos()).collect();
                let row: Vec<f32> = (0..n)
                    .map(|k| ((k + seed * 17) as f32 * 0.37).sin() * 5.0 + 2.0)
                    .collect();
                let mut a = row.clone();
                let mut b = row.clone();
                fast::layernorm_row(&mut a, &gamma, &beta, 1e-6);
                vpu.layernorm_rows_batch(
                    &mut b,
                    n,
                    &gamma,
                    &beta,
                    1e-6,
                    DivisionPolicy::OnChip,
                    NonlinearMode::Exact,
                );
                for (g, w) in a.iter().zip(&b) {
                    assert!(
                        env.admits(*g, *w),
                        "layernorm {mv:?}/{av:?} n={n} seed={seed}: \
                         {g:e} vs {w:e} outside {env:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn softmax_row_envelope_holds_across_round_modes() {
    softmax_rows_within(0..8, &[7, 33, 197], &[0.5, 4.0, 20.0], false);
}

#[test]
fn layernorm_row_envelope_holds_across_round_modes() {
    layernorm_rows_within(0..8, &[8, 48, 384], false);
}

// ---------------------------------------------------------------------------
// Clamp-region contract: the fast kernels must agree with the exact path
// *bit for bit* where the hardware saturates (the envelope treats any
// non-finite mismatch as a violation, but the saturated finite regions
// deserve an explicit pin too).
// ---------------------------------------------------------------------------

#[test]
fn clamp_regions_are_bit_identical_to_exact() {
    let mut vpu = Vpu::new();
    for x in [88.001f32, 200.0, f32::MAX] {
        assert_eq!(fast::exp(x).to_bits(), vpu.exp(x).to_bits());
        assert_eq!(fast::exp(x), f32::INFINITY);
    }
    for x in [-87.001f32, -200.0, f32::MIN] {
        assert_eq!(fast::exp(x).to_bits(), vpu.exp(x).to_bits());
        assert_eq!(fast::exp(x), 0.0);
    }
    for x in [15.001f32, 1.0e4, f32::MAX] {
        assert_eq!(fast::tanh(x).to_bits(), vpu.tanh_onchip(x).to_bits());
        assert_eq!(fast::tanh(-x).to_bits(), vpu.tanh_onchip(-x).to_bits());
    }
    // GELU passes large positives through and flushes large negatives to
    // a signed zero; both ends must match the oracle exactly.
    for x in [9.1f32, 64.0, f32::MAX] {
        assert_eq!(fast::gelu(x).to_bits(), vpu.gelu_onchip(x).to_bits());
        assert_eq!(fast::gelu(-x).to_bits(), vpu.gelu_onchip(-x).to_bits());
    }
    assert_eq!(fast::rsqrt(0.0), f32::INFINITY);
    assert_eq!(vpu.rsqrt_onchip(0.0, 3), f32::INFINITY);
}

// ---------------------------------------------------------------------------
// Heavy sweeps (release CI): dense stratified grids + a deterministic LCG
// walk over raw bit patterns. 2x-relaxed envelopes (see `relax`).
// ---------------------------------------------------------------------------

#[test]
#[ignore = "heavy sweep: run in release (CI ulp-suite job)"]
fn heavy_exp_envelope_dense_grid() {
    let xs = with_signs(grid(-126, 6, 64));
    check_scalar("exp", &xs, env_exp, true, |v, x| (fast::exp(x), v.exp(x)));
}

#[test]
#[ignore = "heavy sweep: run in release (CI ulp-suite job)"]
fn heavy_tanh_gelu_envelope_dense_grid() {
    let mut xs = with_signs(grid(-126, 4, 64));
    xs.extend([14.999f32, -14.999]);
    check_scalar("tanh/onchip", &xs, env_tanh, true, |v, x| {
        (fast::tanh(x), v.tanh_onchip(x))
    });
    let xs = with_signs(grid(-126, 5, 64));
    check_scalar("gelu/onchip", &xs, env_gelu, true, |v, x| {
        (fast::gelu(x), v.gelu_onchip(x))
    });
}

#[test]
#[ignore = "heavy sweep: run in release (CI ulp-suite job)"]
fn heavy_rsqrt_envelope_dense_grid() {
    let xs = grid(-126, 127, 64);
    check_scalar("rsqrt", &xs, env_rsqrt, true, |v, x| {
        (fast::rsqrt(x), v.rsqrt_onchip(x, 3))
    });
}

#[test]
#[ignore = "heavy sweep: run in release (CI ulp-suite job)"]
fn heavy_exp_gelu_lcg_bit_patterns() {
    // Deterministic LCG over raw f32 bit patterns: catches anything the
    // stratified grids' fixed mantissa stride could systematically miss.
    let mut state = 0x243f_6a88u32; // pi fraction bits; fixed seed
    let mut n = 0u32;
    for (mv, av) in DATAPATHS {
        let mut vpu = Vpu::with_datapath(mv, av);
        let (eexp, egelu) = (relax(env_exp(av)), relax(env_gelu(av)));
        while n < 200_000 {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            let x = f32::from_bits(state);
            if x.is_nan() {
                continue; // NaN propagation is outside the kernel contract
            }
            n += 1;
            let (g, w) = (fast::exp(x), vpu.exp(x));
            assert!(eexp.admits(g, w), "exp {mv:?}/{av:?} x={x:e}: {g:e} vs {w:e}");
            let (g, w) = (fast::gelu(x), vpu.gelu_onchip(x));
            assert!(egelu.admits(g, w), "gelu {mv:?}/{av:?} x={x:e}: {g:e} vs {w:e}");
        }
        n = 0;
    }
}

#[test]
#[ignore = "heavy sweep: run in release (CI ulp-suite job)"]
fn heavy_row_kernel_envelopes() {
    softmax_rows_within(0..32, &[3, 7, 33, 64, 197, 384], &[0.25, 1.0, 4.0, 20.0, 64.0], true);
    layernorm_rows_within(0..32, &[3, 8, 48, 197, 384], true);
}

// ---------------------------------------------------------------------------
// Oracle-twin goldens: Exact mode vs pre-PR captured bits
// ---------------------------------------------------------------------------

const GOLDEN_XS: [f32; 16] = [
    -8.5,
    -3.2,
    -1.0,
    -0.125,
    -1.0e-6,
    -0.0,
    0.0,
    1.0e-6,
    0.33,
    1.0,
    2.7,
    5.0,
    9.1,
    f32::from_bits(0x0000_0001), // smallest subnormal
    f32::from_bits(0x7f7f_ffff), // f32::MAX
    -87.2,
];

const GOLDEN_GELU_HOST: [u32; 16] = [
    0x80000000, 0xbaf50000, 0xbe229e8c, 0xbd6688ca, 0xb50637b5, 0x80000000, 0x00000000,
    0x350637c3, 0x3e54a63c, 0x3f57585a, 0x402c3b2f, 0x409fffff, 0x4111999a, 0x00000000,
    0x7f7fffff, 0x80000000,
];

const GOLDEN_GELU_ONCHIP: [u32; 16] = [
    0x80000000, 0xbaf50666, 0xbe229e8c, 0xbd6688cc, 0xb50637b6, 0x80000000, 0x00000000,
    0x350637c3, 0x3e54a63c, 0x3f57585a, 0x402c3b2f, 0x409fffff, 0x4111999a, 0x00000000,
    0x7f7fffff, 0x80000000,
];

const GOLDEN_EXP: [u32; 16] = [
    0x39555a27, 0x3d26f642, 0x3ebc5aa0, 0x3f61eb51, 0x3f7fffef, 0x3f800000, 0x3f800000,
    0x3f800008, 0x3fb20b2e, 0x402df849, 0x416e1361, 0x431469c1, 0x460bed2b, 0x3f800000,
    0x7f800000, 0x00000000,
];

const GOLDEN_TANH: [u32; 16] = [
    0xbf800000, 0xbf7f2694, 0xbf42f7d8, 0xbdfeace0, 0xb5900000, 0x00000000, 0x00000000,
    0x35800000, 0x3ea31528, 0x3f42f7d5, 0x3f7db2aa, 0x3f7ffa0c, 0x3f7fffff, 0x00000000,
    0x3f800000, 0xbf800000,
];

/// `None` marks negative inputs, where rsqrt is undefined (the exact
/// kernel host-escapes them; the fast kernel panics by contract).
const GOLDEN_RSQRT: [Option<u32>; 16] = [
    None, None, None, None, None,
    Some(0x7f800000), // -0.0 -> +inf (rsqrt treats both zeros as zero)
    Some(0x7f800000),
    Some(0x447a0000),
    Some(0x3fded1c3),
    Some(0x3f7ffffe),
    Some(0x3f1bcbf0),
    Some(0x3ee4f92e),
    Some(0x3ea9b9f2),
    Some(0x7f800000),
    Some(0x9ff02cf4), // NR seed overshoots at the range edge; pinned as-is
    None,
];

const GOLDEN_SOFTMAX_HOST: [u32; 11] = [
    0x3c0c3a34, 0x3dad58c4, 0x3ebb871e, 0x3ed1543a, 0x3de7ba58, 0x3c4a2c45, 0x3a9a94ad,
    0x397195e0, 0x392dda21, 0x3a01bbf9, 0x3b875623,
];

const GOLDEN_SOFTMAX_CHIP: [u32; 11] = [
    0x3c0c3a33, 0x3dad58c3, 0x3ebb871d, 0x3ed15439, 0x3de7ba57, 0x3c4a2c44, 0x3a9a94ac,
    0x397195de, 0x392dda20, 0x3a01bbf9, 0x3b875622,
];

const GOLDEN_LAYERNORM: [u32; 11] = [
    0x3f8118ff, 0x3fe7b051, 0x400f068d, 0x40058598, 0x3fad29bc, 0x3e6175b1, 0xbf7c73d4,
    0xbff4709b, 0xc01241c8, 0xc001f3f6, 0xbfa30450,
];

fn golden_row() -> Vec<f32> {
    (0..11).map(|k| (k as f32 * 0.61).sin() * 4.0).collect()
}

#[test]
fn exact_scalar_kernels_match_pre_fast_path_goldens() {
    let mut vpu = Vpu::new();
    for (i, &x) in GOLDEN_XS.iter().enumerate() {
        assert_eq!(vpu.gelu(x).to_bits(), GOLDEN_GELU_HOST[i], "gelu x={x:e}");
        assert_eq!(
            vpu.gelu_onchip(x).to_bits(),
            GOLDEN_GELU_ONCHIP[i],
            "gelu_onchip x={x:e}"
        );
        assert_eq!(vpu.exp(x).to_bits(), GOLDEN_EXP[i], "exp x={x:e}");
        assert_eq!(vpu.tanh(x).to_bits(), GOLDEN_TANH[i], "tanh x={x:e}");
        if let Some(bits) = GOLDEN_RSQRT[i] {
            assert_eq!(vpu.rsqrt_onchip(x, 3).to_bits(), bits, "rsqrt x={x:e}");
        }
    }
}

#[test]
fn exact_batched_kernels_match_pre_fast_path_goldens() {
    // The batched entry points in Exact mode must hit the same scalar
    // kernels — byte for byte — regardless of how dispatch was hoisted.
    let mut vpu = Vpu::new();
    for (div, golden) in [
        (DivisionPolicy::Host, &GOLDEN_SOFTMAX_HOST),
        (DivisionPolicy::OnChip, &GOLDEN_SOFTMAX_CHIP),
    ] {
        let mut r = golden_row();
        vpu.softmax_rows_batch(&mut r, 11, div, NonlinearMode::Exact);
        let bits: Vec<u32> = r.iter().map(|v| v.to_bits()).collect();
        assert_eq!(&bits[..], &golden[..], "softmax {div:?}");
    }
    let gamma: Vec<f32> = (0..11).map(|j| 1.0 + j as f32 * 0.01).collect();
    let beta: Vec<f32> = (0..11).map(|j| (j as f32 * 0.3).cos()).collect();
    for div in [DivisionPolicy::Host, DivisionPolicy::OnChip] {
        let mut r = golden_row();
        vpu.layernorm_rows_batch(&mut r, 11, &gamma, &beta, 1e-6, div, NonlinearMode::Exact);
        let bits: Vec<u32> = r.iter().map(|v| v.to_bits()).collect();
        // Host and OnChip layernorm agreed bitwise on this row at capture.
        assert_eq!(&bits[..], &GOLDEN_LAYERNORM[..], "layernorm {div:?}");
    }
    let mut g = GOLDEN_XS.to_vec();
    vpu.gelu_slice(&mut g, DivisionPolicy::Host, NonlinearMode::Exact);
    let bits: Vec<u32> = g.iter().map(|v| v.to_bits()).collect();
    assert_eq!(&bits[..], &GOLDEN_GELU_HOST[..], "gelu_slice host");
    let mut g = GOLDEN_XS.to_vec();
    vpu.gelu_slice(&mut g, DivisionPolicy::OnChip, NonlinearMode::Exact);
    let bits: Vec<u32> = g.iter().map(|v| v.to_bits()).collect();
    assert_eq!(&bits[..], &GOLDEN_GELU_ONCHIP[..], "gelu_slice onchip");
}

// ---------------------------------------------------------------------------
// L-Mul lane: the approximate-multiplier kernels obey a loose documented
// bound (characterized, not served; see DESIGN.md).
// ---------------------------------------------------------------------------

#[test]
fn lmul_gelu_stays_within_characterized_relative_bound() {
    let mut vpu = Vpu::new();
    let mut worst = 0.0f64;
    for x in with_signs(grid(-8, 2, 16)) {
        let got = fast::gelu_lmul(x);
        let want = vpu.gelu_onchip(x);
        if want.abs() > 1e-3 {
            worst = worst.max(bfp_arith::ulp::rel_error(got, want));
        }
    }
    // ~0.096 per multiply compounds through the tanh-form polynomial;
    // characterization caps the tail at well under 60% while confirming
    // the lane is genuinely lossy (>2%).
    assert!(worst < 0.60, "lmul gelu rel error {worst}");
    assert!(worst > 0.02, "lmul lane suspiciously exact: {worst}");
}
