//! One-shot measurement of fast-vs-exact kernel envelopes (tuning aid for
//! the pinned bounds in `tests/nonlinear_ulp.rs` and `DESIGN.md`).
//!
//! For each kernel × oracle datapath it prints the *envelope frontier*:
//! for candidate `max_ulp` caps, the smallest `abs_floor` that admits
//! every sample. Pick a (max_ulp, abs_floor) pair on the frontier and pin
//! it with headroom.
use bfp_arith::ulp::ulp_distance;
use bfp_arith::{AddVariant, MulVariant};
use bfp_transformer::engine::DivisionPolicy;
use bfp_transformer::vpu::fast;
use bfp_transformer::{NonlinearMode, Vpu};

const DATAPATHS: [(MulVariant, AddVariant); 4] = [
    (MulVariant::DropLsp, AddVariant::Exact48),
    (MulVariant::Exact, AddVariant::Exact48),
    (MulVariant::DropLsp, AddVariant::Truncate24),
    (MulVariant::Exact, AddVariant::Truncate24),
];

const CAND_ULP: [u64; 7] = [4, 16, 64, 256, 1024, 16384, 262144];

fn frontier(name: &str, pairs: &[(u64, f64)]) {
    print!("{name}: n={}", pairs.len());
    for cap in CAND_ULP {
        let floor = pairs
            .iter()
            .filter(|(u, _)| *u > cap)
            .map(|(_, a)| *a)
            .fold(0.0f64, f64::max);
        print!("  ulp<={cap}->floor {floor:.3e}");
    }
    println!();
}

fn sweep(
    name: &str,
    lo_exp: i32,
    hi_exp: i32,
    both_signs: bool,
    f: impl Fn(&mut Vpu, f32) -> (f32, f32),
) {
    for (mv, av) in DATAPATHS {
        let mut vpu = Vpu::with_datapath(mv, av);
        let mut pairs = Vec::new();
        let mut record = |vpu: &mut Vpu, x: f32| {
            let (got, want) = f(vpu, x);
            if got.is_finite() || want.is_finite() {
                pairs.push((ulp_distance(got, want), (got as f64 - want as f64).abs()));
            } else {
                assert_eq!(got.to_bits(), want.to_bits(), "nonfinite mismatch at {x:e}");
            }
        };
        for e in lo_exp..=hi_exp {
            for m in 0..64u32 {
                let mag =
                    f32::from_bits((((e + 127) as u32) << 23) | ((m * 0x0002_0821) & 0x007f_ffff));
                record(&mut vpu, mag);
                if both_signs {
                    record(&mut vpu, -mag);
                }
            }
        }
        let mut specials = vec![0.0f32, f32::from_bits(1), f32::MAX];
        if both_signs {
            specials.extend([-0.0, f32::from_bits(0x8000_0001), f32::MIN]);
        }
        for x in specials {
            record(&mut vpu, x);
        }
        frontier(&format!("{name} {mv:?}/{av:?}"), &pairs);
    }
}

fn main() {
    sweep("exp  ", -126, 6, true, |v, x| (fast::exp(x), v.exp(x)));
    sweep("tanh ", -126, 4, true, |v, x| (fast::tanh(x), v.tanh_onchip(x)));
    sweep("tanhH", -126, 4, true, |v, x| (fast::tanh(x), v.tanh(x)));
    sweep("gelu ", -126, 5, true, |v, x| (fast::gelu(x), v.gelu_onchip(x)));
    sweep("geluH", -126, 5, true, |v, x| (fast::gelu(x), v.gelu(x)));
    sweep("rsqrt", -126, 127, false, |v, x| {
        (fast::rsqrt(x), v.rsqrt_onchip(x, 3))
    });

    // Row kernels: softmax + layernorm over synthetic rows.
    for (mv, av) in DATAPATHS {
        let mut vpu = Vpu::with_datapath(mv, av);
        let mut pairs = Vec::new();
        for n in [7usize, 33, 197] {
            for seed in 0..8 {
                for scale in [0.5f32, 4.0, 20.0] {
                    let row: Vec<f32> = (0..n)
                        .map(|k| ((k + seed * 31) as f32 * 0.61).sin() * scale)
                        .collect();
                    let mut a = row.clone();
                    let mut b = row.clone();
                    fast::softmax_row(&mut a);
                    vpu.softmax_rows_batch(&mut b, n, DivisionPolicy::OnChip, NonlinearMode::Exact);
                    for (g, w) in a.iter().zip(&b) {
                        pairs.push((ulp_distance(*g, *w), (*g as f64 - *w as f64).abs()));
                    }
                }
            }
        }
        frontier(&format!("softmax {mv:?}/{av:?}"), &pairs);
        let mut pairs = Vec::new();
        for n in [8usize, 48, 384] {
            for seed in 0..8 {
                let gamma: Vec<f32> = (0..n).map(|j| 1.0 + j as f32 * 0.01).collect();
                let beta: Vec<f32> = (0..n).map(|j| (j as f32 * 0.3).cos()).collect();
                let row: Vec<f32> = (0..n)
                    .map(|k| ((k + seed * 17) as f32 * 0.37).sin() * 5.0 + 2.0)
                    .collect();
                let mut a = row.clone();
                let mut b = row.clone();
                fast::layernorm_row(&mut a, &gamma, &beta, 1e-6);
                vpu.layernorm_rows_batch(
                    &mut b,
                    n,
                    &gamma,
                    &beta,
                    1e-6,
                    DivisionPolicy::OnChip,
                    NonlinearMode::Exact,
                );
                for (g, w) in a.iter().zip(&b) {
                    pairs.push((ulp_distance(*g, *w), (*g as f64 - *w as f64).abs()));
                }
            }
        }
        frontier(&format!("layernorm {mv:?}/{av:?}"), &pairs);
    }
}
