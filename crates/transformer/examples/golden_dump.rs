//! One-shot dump of exact-path VPU output bits (golden capture).
use bfp_transformer::engine::DivisionPolicy;
use bfp_transformer::{NonlinearMode, Vpu};

fn main() {
    let xs: [f32; 16] = [
        -8.5,
        -3.2,
        -1.0,
        -0.125,
        -1.0e-6,
        -0.0,
        0.0,
        1.0e-6,
        0.33,
        1.0,
        2.7,
        5.0,
        9.1,
        f32::from_bits(0x0000_0001), // smallest subnormal
        f32::from_bits(0x7f7f_ffff), // f32::MAX
        -87.2,
    ];
    let mut vpu = Vpu::new();
    print!("gelu: ");
    for &x in &xs {
        print!("0x{:08x},", vpu.gelu(x).to_bits());
    }
    println!();
    print!("gelu_onchip: ");
    for &x in &xs {
        print!("0x{:08x},", vpu.gelu_onchip(x).to_bits());
    }
    println!();
    print!("exp: ");
    for &x in &xs {
        print!("0x{:08x},", vpu.exp(x).to_bits());
    }
    println!();
    print!("tanh: ");
    for &x in &xs {
        print!("0x{:08x},", vpu.tanh(x).to_bits());
    }
    println!();
    print!("rsqrt: ");
    for &x in &xs {
        if x >= 0.0 {
            print!("0x{:08x},", vpu.rsqrt_onchip(x, 3).to_bits());
        } else {
            print!("skip,");
        }
    }
    println!();
    // A softmax row and a layernorm row, both division policies.
    let row: Vec<f32> = (0..11).map(|k| (k as f32 * 0.61).sin() * 4.0).collect();
    for (name, div) in [("host", DivisionPolicy::Host), ("chip", DivisionPolicy::OnChip)] {
        let mut r = row.clone();
        vpu.softmax_rows_batch(&mut r, 11, div, NonlinearMode::Exact);
        print!("softmax_{name}: ");
        for v in &r {
            print!("0x{:08x},", v.to_bits());
        }
        println!();
    }
    let gamma: Vec<f32> = (0..11).map(|j| 1.0 + j as f32 * 0.01).collect();
    let beta: Vec<f32> = (0..11).map(|j| (j as f32 * 0.3).cos()).collect();
    for (name, div) in [("host", DivisionPolicy::Host), ("chip", DivisionPolicy::OnChip)] {
        let mut r = row.clone();
        vpu.layernorm_rows_batch(&mut r, 11, &gamma, &beta, 1e-6, div, NonlinearMode::Exact);
        print!("layernorm_{name}: ");
        for v in &r {
            print!("0x{:08x},", v.to_bits());
        }
        println!();
    }
}
