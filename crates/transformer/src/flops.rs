//! Analytical operation census (the inputs to Table IV), derived from the
//! architecture alone and cross-checked against the live counts of
//! [`crate::engine::MixedEngine`].

use crate::config::VitConfig;
use crate::engine::OpCensus;
use crate::vpu::{cost, fast, NonlinearMode};

/// Exact operation census of a forward pass through all encoder blocks of
/// `cfg` — the same accounting [`crate::engine::MixedEngine`] performs live
/// (in its default [`NonlinearMode::Exact`] configuration).
pub fn analytical_census(cfg: &VitConfig) -> OpCensus {
    analytical_census_mode(cfg, NonlinearMode::Exact)
}

/// The census for either nonlinear kernel family. `Fast` swaps in the
/// LUT/polynomial unit's per-element mixes ([`fast::cost`]): host
/// divisions and square roots vanish, ROM lookups appear, and the live
/// engine's counts match this *exactly* in both modes — the fast batched
/// kernels charge these very formulas.
pub fn analytical_census_mode(cfg: &VitConfig, mode: NonlinearMode) -> OpCensus {
    let s = cfg.seq as u64;
    let d = cfg.dim as u64;
    let h = cfg.heads as u64;
    let hidden = cfg.hidden() as u64;
    let depth = cfg.depth as u64;

    // GEMM MACs per block: QKV + output projections (4·S·D²), attention
    // scores and weighted sum (2·S²·D), and the MLP (2·S·D·hidden).
    let macs_per_block = 4 * s * d * d + 2 * s * s * d + 2 * s * d * hidden;

    let (sm, g, ln) = match mode {
        NonlinearMode::Exact => (cost::softmax_row(s), cost::gelu(), cost::layernorm_row(d)),
        NonlinearMode::Fast => (
            fast::cost::softmax_row(s),
            fast::cost::gelu(),
            fast::cost::layernorm_row(d),
        ),
    };
    // Softmax: one row of length S per (head, query row). GELU: every
    // element of the MLP hidden activation. LayerNorm: two per block, one
    // row of length D per token.
    let softmax = sm.times(h * s);
    let gelu = g.times(s * hidden);
    let layernorm = ln.times(2 * s);

    let mut census = OpCensus::default();
    for _ in 0..depth {
        census.matmul_macs += macs_per_block;
        census.softmax.merge(&softmax);
        census.gelu.merge(&gelu);
        census.layernorm.merge(&layernorm);
    }
    census
}

/// The numbers Table IV prints for DeiT-Small, kept verbatim so the
/// reproduction binary can show paper-vs-ours side by side.
pub mod paper_table4 {
    /// bfp8 MatMul OPs ("2465M").
    pub const BFP8_MATMUL_OPS: f64 = 2465.0e6;
    /// fp32 LayerNorm FLOPs ("6.383M").
    pub const LAYERNORM_FLOPS: f64 = 6.383e6;
    /// fp32 SoftMax FLOPs ("145.3M").
    pub const SOFTMAX_FLOPS: f64 = 145.3e6;
    /// fp32 GELU FLOPs ("50.84M").
    pub const GELU_FLOPS: f64 = 50.84e6;
    /// Latencies in milliseconds, same row order.
    pub const LATENCY_MS: [f64; 4] = [1.201, 0.425, 9.686, 3.389];
    /// Operation proportions (%), same row order.
    pub const OPS_PERCENT: [f64; 4] = [98.649, 0.043, 0.969, 0.339];
    /// Latency proportions (%).
    pub const LATENCY_PERCENT: [f64; 4] = [8.170, 2.891, 65.887, 23.053];

    /// Effective bfp8 throughput implied by the table (OPs / latency):
    /// 2465 M / 1.201 ms = 2052 GOPS — the measured system throughput.
    pub fn implied_bfp_gops() -> f64 {
        BFP8_MATMUL_OPS / (LATENCY_MS[0] * 1e-3) / 1e9
    }

    /// Effective fp32 throughput implied by each non-linear row (≈15
    /// GFLOPS for all three).
    pub fn implied_fp32_gflops() -> [f64; 3] {
        [
            LAYERNORM_FLOPS / (LATENCY_MS[1] * 1e-3) / 1e9,
            SOFTMAX_FLOPS / (LATENCY_MS[2] * 1e-3) / 1e9,
            GELU_FLOPS / (LATENCY_MS[3] * 1e-3) / 1e9,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::MixedEngine;
    use crate::model::VitModel;

    #[test]
    fn analytical_census_matches_live_execution() {
        let cfg = VitConfig::tiny_test();
        let model = VitModel::new_random(cfg, 3);
        let x = model.synthetic_input(4);
        let mut e = MixedEngine::new();
        let _ = model.forward(&mut e, &x);
        let live = e.census();
        let analytic = analytical_census(&cfg);
        assert_eq!(live.matmul_macs, analytic.matmul_macs, "GEMM MACs");
        assert_eq!(live.softmax, analytic.softmax, "softmax ops");
        assert_eq!(live.gelu, analytic.gelu, "gelu ops");
        assert_eq!(live.layernorm, analytic.layernorm, "layernorm ops");
    }

    #[test]
    fn fast_analytical_census_matches_live_fast_execution() {
        use crate::vpu::NonlinearMode;
        let cfg = VitConfig::tiny_test();
        let model = VitModel::new_random(cfg, 3);
        let x = model.synthetic_input(4);
        let mut e = MixedEngine::fast_nonlinear();
        let _ = model.forward(&mut e, &x);
        let live = e.census();
        let analytic = analytical_census_mode(&cfg, NonlinearMode::Fast);
        assert_eq!(live.softmax, analytic.softmax, "softmax ops");
        assert_eq!(live.gelu, analytic.gelu, "gelu ops");
        assert_eq!(live.layernorm, analytic.layernorm, "layernorm ops");
        // The fast unit never leaves the array and does use its ROMs.
        assert_eq!(live.host_ops(), 0);
        assert!(live.gelu.lut > 0 && live.softmax.lut > 0);
    }

    #[test]
    fn deit_small_macs_match_architecture_arithmetic() {
        let c = analytical_census(&VitConfig::deit_small());
        // 12 × (4·197·384² + 2·197²·384 + 2·197·384·1536) MACs.
        let per_block: u64 = 4 * 197 * 384 * 384 + 2 * 197 * 197 * 384 + 2 * 197 * 384 * 1536;
        assert_eq!(c.matmul_macs, 12 * per_block);
        // ≈ 4.54 G MACs ≈ 9.08 G OPs. (The paper prints 2465 M OPs for the
        // same partition; EXPERIMENTS.md discusses the discrepancy. The
        // *proportions* conclusion is insensitive to it.)
        assert!((c.matmul_macs as f64 - 4.54e9).abs() / 4.54e9 < 0.01);
    }

    #[test]
    fn fp32_fraction_is_percent_scale_for_deit_small() {
        let c = analytical_census(&VitConfig::deit_small());
        let f = c.fp32_fraction();
        // The paper reports 1.35%; our richer kernels land in the same
        // low-percent band.
        assert!(f > 0.005 && f < 0.05, "fp32 fraction {f}");
    }

    #[test]
    fn layernorm_is_the_cheapest_fp32_kind() {
        // Table IV's ordering is softmax > gelu > layernorm; with our
        // kernel decompositions GELU's tanh costs more per element than the
        // paper's (unpublished) kernel, so gelu and softmax swap while
        // LayerNorm stays firmly smallest. EXPERIMENTS.md discusses this.
        let c = analytical_census(&VitConfig::deit_small());
        assert!(c.softmax.flops() > c.layernorm.flops());
        assert!(c.gelu.flops() > c.layernorm.flops());
        // And every attention weight still costs one host division.
        assert_eq!(c.softmax.host_div, 12 * 6 * 197 * 197);
    }

    #[test]
    fn paper_implied_throughputs() {
        assert!((paper_table4::implied_bfp_gops() - 2052.46).abs() < 1.0);
        for g in paper_table4::implied_fp32_gflops() {
            assert!((g - 15.0).abs() < 0.05, "implied fp32 {g}");
        }
    }

    #[test]
    fn census_scales_linearly_with_depth() {
        let base = VitConfig::tiny_test();
        let double = VitConfig {
            depth: base.depth * 2,
            ..base
        };
        let c1 = analytical_census(&base);
        let c2 = analytical_census(&double);
        assert_eq!(c2.matmul_macs, 2 * c1.matmul_macs);
        assert_eq!(c2.softmax.flops(), 2 * c1.softmax.flops());
    }
}
