//! The complete DeiT pipeline around the encoder: patch embedding
//! (convolution as im2col + GEMM, so it runs on the bfp8 array like every
//! other linear layer), class token, positional embeddings, final
//! LayerNorm, and the classification head.
//!
//! Table IV counts only the encoder blocks, so [`crate::model::VitModel`]
//! stays the census unit; this module completes the model a user would
//! actually deploy end to end.

use bfp_arith::cancel::CancelToken;
use bfp_arith::error::ArithError;
use bfp_arith::matrix::MatF32;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::VitConfig;
use crate::engine::Engine;
use crate::layers::{LayerNormParams, Linear};
use crate::model::VitModel;

/// A CHW image.
#[derive(Debug, Clone)]
pub struct Image {
    /// Channels (3 for RGB).
    pub channels: usize,
    /// Height in pixels.
    pub height: usize,
    /// Width in pixels.
    pub width: usize,
    /// CHW-ordered pixel data.
    pub data: Vec<f32>,
}

impl Image {
    /// A deterministic synthetic image in the post-normalisation range
    /// (≈ N(0,1) per channel), standing in for an ImageNet sample.
    pub fn synthetic(channels: usize, height: usize, width: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..channels * height * width)
            .map(|_| {
                // Sum of uniforms ~ roughly normal.
                (0..4).map(|_| rng.gen_range(-0.5f32..0.5)).sum::<f32>()
            })
            .collect();
        Image {
            channels,
            height,
            width,
            data,
        }
    }

    /// Pixel accessor (channel, row, col).
    #[inline]
    pub fn get(&self, c: usize, y: usize, x: usize) -> f32 {
        self.data[(c * self.height + y) * self.width + x]
    }

    /// Unfold into patch rows: one row per patch of `patch × patch`
    /// pixels, `channels × patch × patch` wide (im2col for a stride-P
    /// convolution).
    ///
    /// # Panics
    /// Panics if the image is not a whole number of patches.
    pub fn to_patches(&self, patch: usize) -> MatF32 {
        assert_eq!(
            self.height % patch,
            0,
            "height must be a multiple of the patch size"
        );
        assert_eq!(
            self.width % patch,
            0,
            "width must be a multiple of the patch size"
        );
        let (ph, pw) = (self.height / patch, self.width / patch);
        let row_len = self.channels * patch * patch;
        MatF32::from_fn(ph * pw, row_len, |p, k| {
            let (py, px) = (p / pw, p % pw);
            let c = k / (patch * patch);
            let dy = (k % (patch * patch)) / patch;
            let dx = k % patch;
            self.get(c, py * patch + dy, px * patch + dx)
        })
    }
}

/// DeiT deployment configuration: the encoder config plus the image-side
/// hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct DeitConfig {
    /// The encoder architecture.
    pub vit: VitConfig,
    /// Square patch size (16 in DeiT).
    pub patch: usize,
    /// Input channels.
    pub channels: usize,
    /// Square input resolution (224 in DeiT).
    pub img: usize,
    /// Classifier classes (1000 for ImageNet).
    pub classes: usize,
}

impl DeitConfig {
    /// DeiT-Small at 224²/16 with 1000 classes.
    pub const fn deit_small() -> Self {
        DeitConfig {
            vit: VitConfig::deit_small(),
            patch: 16,
            channels: 3,
            img: 224,
            classes: 1000,
        }
    }

    /// DeiT-Tiny at 224²/16.
    pub const fn deit_tiny() -> Self {
        DeitConfig {
            vit: VitConfig::deit_tiny(),
            patch: 16,
            channels: 3,
            img: 224,
            classes: 1000,
        }
    }

    /// A miniature configuration for fast tests: 24² images, 8² patches.
    pub const fn tiny_test() -> Self {
        DeitConfig {
            vit: VitConfig {
                dim: 32,
                depth: 2,
                heads: 2,
                mlp_ratio: 2,
                seq: 10,
            },
            patch: 8,
            channels: 3,
            img: 24,
            classes: 7,
        }
    }

    /// Patches per image.
    pub const fn num_patches(&self) -> usize {
        (self.img / self.patch) * (self.img / self.patch)
    }

    /// Consistency checks (`seq == patches + 1`, divisibility, the encoder
    /// config's own constraints).
    pub fn validate(&self) -> Result<(), String> {
        self.vit.validate()?;
        if !self.img.is_multiple_of(self.patch) {
            return Err(format!(
                "image {} not divisible by patch {}",
                self.img, self.patch
            ));
        }
        if self.vit.seq != self.num_patches() + 1 {
            return Err(format!(
                "seq {} must equal patches {} + 1 (class token)",
                self.vit.seq,
                self.num_patches()
            ));
        }
        Ok(())
    }
}

/// The deployable model: embedding → encoder → head.
#[derive(Debug, Clone)]
pub struct DeitModel {
    /// Deployment configuration.
    pub cfg: DeitConfig,
    /// Patch projection (`C·P² × dim`), i.e. the stride-P convolution.
    pub patch_proj: Linear,
    /// Learnable class token (`dim`).
    pub cls_token: Vec<f32>,
    /// Positional embeddings (`seq × dim`).
    pub pos_embed: MatF32,
    /// The encoder (the Table IV census unit).
    pub encoder: VitModel,
    /// Final LayerNorm before the head.
    pub final_norm: LayerNormParams,
    /// Classification head (`dim × classes`).
    pub head: Linear,
}

impl DeitModel {
    /// Random-initialised model.
    ///
    /// # Panics
    /// Panics on an inconsistent configuration.
    pub fn new_random(cfg: DeitConfig, seed: u64) -> Self {
        cfg.validate().expect("valid DeiT configuration");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdeadbeef);
        let dim = cfg.vit.dim;
        let in_features = cfg.channels * cfg.patch * cfg.patch;
        DeitModel {
            cfg,
            patch_proj: Linear::new_random(in_features, dim, &mut rng),
            cls_token: (0..dim).map(|_| rng.gen_range(-0.02f32..0.02)).collect(),
            pos_embed: MatF32::from_fn(cfg.vit.seq, dim, |_, _| rng.gen_range(-0.02f32..0.02)),
            encoder: VitModel::new_random(cfg.vit, seed),
            final_norm: LayerNormParams::new_random(dim, &mut rng),
            head: Linear::new_random(dim, cfg.classes, &mut rng),
        }
    }

    /// Embed an image into the encoder's token space: patchify → project
    /// (bfp8 GEMM) → prepend class token → add positional embeddings.
    ///
    /// # Panics
    /// Panics if the image shape disagrees with the configuration.
    pub fn embed<E: Engine>(&self, e: &mut E, img: &Image) -> MatF32 {
        assert_eq!(img.channels, self.cfg.channels, "channels");
        assert_eq!(img.height, self.cfg.img, "height");
        assert_eq!(img.width, self.cfg.img, "width");
        let patches = img.to_patches(self.cfg.patch);
        let projected = self.patch_proj.forward(e, &patches);
        let dim = self.cfg.vit.dim;
        MatF32::from_fn(self.cfg.vit.seq, dim, |i, j| {
            let tok = if i == 0 {
                self.cls_token[j]
            } else {
                projected.get(i - 1, j)
            };
            tok + self.pos_embed.get(i, j)
        })
    }

    /// Full forward pass: logits for one image.
    pub fn forward<E: Engine>(&self, e: &mut E, img: &Image) -> Vec<f32> {
        self.try_forward(e, img, &CancelToken::new())
            .expect("unbounded token never cancels")
    }

    /// Deadline-aware [`DeitModel::forward`]: polls `cancel` before the
    /// embedding, between encoder blocks (via
    /// [`crate::model::VitModel::try_forward`]), and before the head, so a
    /// serving runtime can abandon an inference whose deadline has passed.
    pub fn try_forward<E: Engine>(
        &self,
        e: &mut E,
        img: &Image,
        cancel: &CancelToken,
    ) -> Result<Vec<f32>, ArithError> {
        cancel.check()?;
        let tokens = self.embed(e, img);
        let encoded = self.encoder.try_forward(e, &tokens, cancel)?;
        cancel.check()?;
        // Classify from the class token.
        let mut cls = MatF32::from_fn(1, self.cfg.vit.dim, |_, j| encoded.get(0, j));
        self.final_norm.forward(e, &mut cls);
        let logits = self.head.forward(e, &cls);
        Ok(logits.row(0).to_vec())
    }

    /// Argmax class prediction.
    pub fn predict<E: Engine>(&self, e: &mut E, img: &Image) -> usize {
        self.try_predict(e, img, &CancelToken::new())
            .expect("unbounded token never cancels")
    }

    /// Deadline-aware [`DeitModel::predict`].
    pub fn try_predict<E: Engine>(
        &self,
        e: &mut E,
        img: &Image,
        cancel: &CancelToken,
    ) -> Result<usize, ArithError> {
        let logits = self.try_forward(e, img, cancel)?;
        Ok(logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .expect("non-empty logits")
            .0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{MixedEngine, RefEngine};

    #[test]
    fn config_validation() {
        DeitConfig::deit_small().validate().unwrap();
        DeitConfig::deit_tiny().validate().unwrap();
        DeitConfig::tiny_test().validate().unwrap();
        let bad = DeitConfig {
            img: 225,
            ..DeitConfig::deit_small()
        };
        assert!(bad.validate().is_err());
        let bad_seq = DeitConfig {
            vit: VitConfig {
                seq: 100,
                ..VitConfig::deit_small()
            },
            ..DeitConfig::deit_small()
        };
        assert!(bad_seq.validate().is_err());
    }

    #[test]
    fn deit_small_has_197_tokens() {
        let c = DeitConfig::deit_small();
        assert_eq!(c.num_patches(), 196);
        assert_eq!(c.vit.seq, 197);
    }

    #[test]
    fn patchify_shapes_and_content() {
        let img = Image::synthetic(3, 24, 24, 1);
        let p = img.to_patches(8);
        assert_eq!((p.rows(), p.cols()), (9, 3 * 64));
        // Patch (1,2) pixel (c=2, dy=3, dx=5) maps to row 5, col 2*64+3*8+5.
        assert_eq!(p.get(5, 2 * 64 + 3 * 8 + 5), img.get(2, 8 + 3, 16 + 5));
    }

    #[test]
    #[should_panic(expected = "multiple of the patch")]
    fn patchify_rejects_ragged_images() {
        Image::synthetic(3, 25, 24, 0).to_patches(8);
    }

    #[test]
    fn forward_produces_class_logits() {
        let model = DeitModel::new_random(DeitConfig::tiny_test(), 4);
        let img = Image::synthetic(3, 24, 24, 9);
        let logits = model.forward(&mut RefEngine, &img);
        assert_eq!(logits.len(), 7);
        assert!(logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn prediction_is_deterministic() {
        let model = DeitModel::new_random(DeitConfig::tiny_test(), 8);
        let img = Image::synthetic(3, 24, 24, 3);
        assert_eq!(
            model.predict(&mut RefEngine, &img),
            model.predict(&mut RefEngine, &img)
        );
    }

    #[test]
    fn mixed_precision_agrees_with_reference_on_predictions() {
        // The deployment claim end to end: same top-1 on (almost) every
        // input without retraining.
        let model = DeitModel::new_random(DeitConfig::tiny_test(), 21);
        let mut agree = 0;
        let total = 12;
        for seed in 0..total {
            let img = Image::synthetic(3, 24, 24, seed);
            let r = model.predict(&mut RefEngine, &img);
            let m = model.predict(&mut MixedEngine::new(), &img);
            if r == m {
                agree += 1;
            }
        }
        assert!(agree >= total - 1, "top-1 agreement {agree}/{total}");
    }

    #[test]
    fn embedding_census_counts_the_patch_gemm() {
        let cfg = DeitConfig::tiny_test();
        let model = DeitModel::new_random(cfg, 5);
        let img = Image::synthetic(3, 24, 24, 5);
        let mut e = MixedEngine::new();
        let _ = model.embed(&mut e, &img);
        let macs = e.census().matmul_macs;
        let want = (cfg.num_patches() * cfg.channels * cfg.patch * cfg.patch * cfg.vit.dim) as u64;
        assert_eq!(macs, want, "patch projection runs on the bfp8 array");
    }
}
