//! The programmable fp32 vector-unit kernels for the Transformer's
//! non-linear layers, built **only** from the operations the reconfigured
//! array supports: hardware fp32 multiply (sliced, LSP-dropped, truncating),
//! hardware fp32 add (48-bit align path), the exponent unit's integer
//! exponent adjustment, and — exactly as the paper concedes — **division on
//! the host CPU** ("the division operations in fp32 ... are executed on the
//! host CPU due to lack of support", §III-B). Square roots ride the same
//! host escape hatch.
//!
//! Every kernel counts its operations; those counts drive the Table IV
//! latency split and are cross-checked against the analytical census in
//! [`crate::flops`].

use bfp_arith::fpadd::{AddVariant, HwFp32Add};
use bfp_arith::fpmul::{HwFp32Mul, MulVariant};

use crate::engine::DivisionPolicy;

pub mod fast;

/// Selects which nonlinear kernel family the batched VPU entry points
/// run.
///
/// `Exact` is the bit-level emulated hardware datapath — every multiply
/// and add goes through `HwFp32Mul`/`HwFp32Add`, and it is the oracle the
/// [`fast`] kernels' ULP envelopes are proven against. `Fast` models the
/// optimised LUT/polynomial nonlinear unit (range reduction + 64-entry
/// `2^f` ROM + degree-2 residual polynomial + NR reciprocal/rsqrt), which
/// in simulation evaluates in native f32 — the kernels themselves live in
/// [`fast`], and their per-element hardware op mixes in [`fast::cost`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum NonlinearMode {
    /// Bit-exact emulated hardware kernels (the oracle path).
    #[default]
    Exact,
    /// LUT/polynomial fast kernels with tested ULP envelopes.
    Fast,
}

impl NonlinearMode {
    /// Stable lowercase label for telemetry and bench reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            NonlinearMode::Exact => "exact",
            NonlinearMode::Fast => "fast",
        }
    }
}

/// Operation counters for VPU execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCount {
    /// Hardware fp32 multiplies.
    pub fp_mul: u64,
    /// Hardware fp32 adds (incl. subtractions).
    pub fp_add: u64,
    /// Exponent-unit integer adjustments (2^k scaling; not FLOPs).
    pub exp_adjust: u64,
    /// Comparator operations (max reductions; not FLOPs).
    pub cmp: u64,
    /// ROM/LUT lookups of the fast nonlinear unit (not FLOPs).
    pub lut: u64,
    /// Divisions delegated to the host CPU.
    pub host_div: u64,
    /// Square roots delegated to the host CPU.
    pub host_sqrt: u64,
}

impl OpCount {
    /// Floating-point operations executed on the array.
    pub fn flops(&self) -> u64 {
        self.fp_mul + self.fp_add
    }

    /// Operations delegated to the host.
    pub fn host_ops(&self) -> u64 {
        self.host_div + self.host_sqrt
    }

    /// Accumulate another counter.
    pub fn merge(&mut self, o: &OpCount) {
        self.fp_mul += o.fp_mul;
        self.fp_add += o.fp_add;
        self.exp_adjust += o.exp_adjust;
        self.cmp += o.cmp;
        self.lut += o.lut;
        self.host_div += o.host_div;
        self.host_sqrt += o.host_sqrt;
    }

    /// This mix repeated `k` times (per-element formula × element count).
    pub const fn times(&self, k: u64) -> OpCount {
        OpCount {
            fp_mul: self.fp_mul * k,
            fp_add: self.fp_add * k,
            exp_adjust: self.exp_adjust * k,
            cmp: self.cmp * k,
            lut: self.lut * k,
            host_div: self.host_div * k,
            host_sqrt: self.host_sqrt * k,
        }
    }
}

/// The vector processing unit: hardware-faithful scalar kernels with
/// operation accounting.
///
/// ```
/// use bfp_transformer::Vpu;
///
/// let mut vpu = Vpu::new();
/// let mut row = vec![1.0f32, 2.0, 3.0];
/// vpu.softmax_row(&mut row);
/// let sum: f32 = row.iter().sum();
/// assert!((sum - 1.0).abs() < 1e-5);
/// assert_eq!(vpu.count.host_div, 3);  // the prototype divides on the host
///
/// // The future-work kernel keeps everything on the array:
/// let mut row = vec![1.0f32, 2.0, 3.0];
/// vpu.take_count();
/// vpu.softmax_row_onchip(&mut row);
/// assert_eq!(vpu.count.host_div, 0);
/// ```
#[derive(Debug, Clone)]
pub struct Vpu {
    mul: HwFp32Mul,
    add: HwFp32Add,
    /// Route multiplies through the partial-product enumeration reference
    /// path instead of the closed-form fast path (baseline measurements).
    via_partials: bool,
    /// Cumulative operation counts.
    pub count: OpCount,
}

impl Default for Vpu {
    fn default() -> Self {
        Self::new()
    }
}

/// Magic constant: adding then subtracting `1.5 × 2^23` rounds an fp32 with
/// |x| < 2^22 to the nearest integer using only the adder.
const ROUND_MAGIC: f32 = 12_582_912.0;

/// Degree-5 Taylor coefficients of `2^f` (accurate to ~3e-9 on |f| ≤ 0.5).
const EXP2_POLY: [f32; 6] = [
    1.0,
    std::f32::consts::LN_2,
    0.240_226_5,
    0.055_504_11,
    0.009_618_13,
    0.001_333_36,
];

impl Vpu {
    /// A VPU with the paper's datapath settings (LSP-dropped truncating
    /// multiplier, 48-bit-aligned truncating adder).
    pub fn new() -> Self {
        Vpu {
            mul: HwFp32Mul::new(MulVariant::DropLsp),
            add: HwFp32Add::new(AddVariant::Exact48),
            via_partials: false,
            count: OpCount::default(),
        }
    }

    /// A VPU with an explicit datapath rounding selection (the multiplier
    /// variant and adder alignment width). The envelope tests verify the
    /// fast kernels' documented bounds against **every** oracle rounding
    /// configuration, not only the paper default.
    pub fn with_datapath(mul: MulVariant, add: AddVariant) -> Self {
        Vpu {
            mul: HwFp32Mul::new(mul),
            add: HwFp32Add::new(add),
            ..Self::new()
        }
    }

    /// The same datapath, but every multiply runs the explicit
    /// partial-product *enumeration* ([`HwFp32Mul::mul_via_partials`])
    /// instead of the closed-form fast path. Bit-identical outputs, much
    /// slower — this is the measured "before" baseline of the e2e bench.
    pub fn via_partials() -> Self {
        Vpu {
            via_partials: true,
            ..Self::new()
        }
    }

    /// A worker clone: identical datapath configuration, zeroed counters.
    /// The sharded batch kernels give one to each thread and merge the
    /// resulting [`OpCount`]s deterministically in shard order.
    pub fn fresh(&self) -> Vpu {
        Vpu {
            count: OpCount::default(),
            ..self.clone()
        }
    }

    /// Reset the counters, returning the previous values.
    pub fn take_count(&mut self) -> OpCount {
        std::mem::take(&mut self.count)
    }

    /// Hardware multiply.
    #[inline]
    pub fn m(&mut self, a: f32, b: f32) -> f32 {
        self.count.fp_mul += 1;
        if self.via_partials {
            self.mul.mul_via_partials(a, b)
        } else {
            self.mul.mul(a, b)
        }
    }

    /// Hardware add.
    #[inline]
    pub fn a(&mut self, a: f32, b: f32) -> f32 {
        self.count.fp_add += 1;
        self.add.add(a, b)
    }

    /// Hardware subtract (sign flip through the XOR gate + add).
    #[inline]
    pub fn s(&mut self, a: f32, b: f32) -> f32 {
        self.count.fp_add += 1;
        self.add.sub(a, b)
    }

    /// Host division.
    #[inline]
    pub fn div_host(&mut self, a: f32, b: f32) -> f32 {
        self.count.host_div += 1;
        a / b
    }

    /// Host square root.
    #[inline]
    pub fn sqrt_host(&mut self, a: f32) -> f32 {
        self.count.host_sqrt += 1;
        a.sqrt()
    }

    /// Scale by `2^k` through the exponent unit (an int8 add on the
    /// exponent field — free of the multiplier array).
    #[inline]
    pub fn scale_exp2(&mut self, x: f32, k: i32) -> f32 {
        self.count.exp_adjust += 1;
        if x == 0.0 {
            return x;
        }
        let bits = x.to_bits();
        let e = ((bits >> 23) & 0xff) as i32 + k;
        if e <= 0 {
            return 0.0; // FTZ underflow
        }
        if e >= 255 {
            return if x > 0.0 {
                f32::INFINITY
            } else {
                f32::NEG_INFINITY
            };
        }
        f32::from_bits((bits & 0x807f_ffff) | ((e as u32) << 23))
    }

    /// `e^x` by range reduction (`x = k ln2 + f ln2`) and a degree-5
    /// polynomial for `2^f`: 6 multiplies, 9 adds, 1 exponent adjust.
    pub fn exp(&mut self, x: f32) -> f32 {
        // Control logic clamps the representable range.
        if x > 88.0 {
            return f32::INFINITY;
        }
        if x < -87.0 {
            return 0.0;
        }
        let t = self.m(x, std::f32::consts::LOG2_E);
        // floor(t + 0.5) = round(t) with the *truncating* adder: the magic
        // constant pushes the fraction off the mantissa, and truncation
        // floors it.
        let th = self.a(t, 0.5);
        let shifted = self.a(th, ROUND_MAGIC);
        let kf = self.s(shifted, ROUND_MAGIC);
        let f = self.s(t, kf);
        // Horner: 2^f ≈ Σ c_i f^i.
        let mut p = EXP2_POLY[5];
        for c in EXP2_POLY[..5].iter().rev() {
            let pf = self.m(p, f);
            p = self.a(pf, *c);
        }
        self.scale_exp2(p, kf as i32)
    }

    /// `tanh(u) = 1 − 2 / (e^{2u} + 1)`: one exp, plus 1 mul, 2 adds, and a
    /// host division.
    pub fn tanh(&mut self, u: f32) -> f32 {
        if u > 15.0 {
            return 1.0;
        }
        if u < -15.0 {
            return -1.0;
        }
        let two_u = self.m(u, 2.0);
        let e = self.exp(two_u);
        let d = self.a(e, 1.0);
        let q = self.div_host(2.0, d);
        self.s(1.0, q)
    }

    /// Tanh-form GELU on the VPU.
    pub fn gelu(&mut self, x: f32) -> f32 {
        const C: f32 = 0.797_884_6; // √(2/π)
        const A: f32 = 0.044_715;
        let x2 = self.m(x, x);
        let x3 = self.m(x2, x);
        let ax3 = self.m(x3, A);
        let inner = self.a(x, ax3);
        let u = self.m(inner, C);
        let t = self.tanh(u);
        let one_t = self.a(1.0, t);
        let hx = self.m(x, 0.5);
        self.m(hx, one_t)
    }

    // ------------------------------------------------------------------
    // Future-work extension (paper §V: "The vector processing unit is
    // also being optimized to improve non-linear function performance"):
    // division and reciprocal square root *on the array*, via
    // Newton–Raphson iterations built only from hardware multiply/add —
    // eliminating the host round-trip the prototype needed.
    // ------------------------------------------------------------------

    /// Reciprocal `1/x` on the array: exponent-negation initial guess
    /// (an EU operation) refined by `iters` Newton–Raphson steps
    /// `y ← y·(2 − x·y)`. Three iterations reach < 1e-6 relative error
    /// over the full normal range.
    ///
    /// Cost: `2·iters` muls and `iters` adds, plus one exponent adjust.
    pub fn recip(&mut self, x: f32, iters: u32) -> f32 {
        if x == 0.0 {
            return if x.is_sign_negative() {
                f32::NEG_INFINITY
            } else {
                f32::INFINITY
            };
        }
        // Initial guess: flip the exponent around 2^0 and seed the
        // mantissa via the classic bit trick (exponent-field arithmetic,
        // done by the EU — not a multiplier op).
        self.count.exp_adjust += 1;
        let mut y = f32::from_bits(0x7EEF_311Du32.wrapping_sub(x.abs().to_bits()));
        if x < 0.0 {
            y = -y;
        }
        for _ in 0..iters {
            let xy = self.m(x, y);
            let e = self.s(2.0, xy);
            y = self.m(y, e);
        }
        y
    }

    /// Division on the array: `a × recip(b)`.
    pub fn div_onchip(&mut self, a: f32, b: f32) -> f32 {
        let r = self.recip(b, 3);
        self.m(a, r)
    }

    /// Reciprocal square root on the array: magic-constant seed +
    /// Newton–Raphson `y ← y·(1.5 − 0.5·x·y²)`.
    ///
    /// # Panics
    /// Panics on negative input (LayerNorm variances are non-negative).
    pub fn rsqrt_onchip(&mut self, x: f32, iters: u32) -> f32 {
        assert!(x >= 0.0, "rsqrt of a negative value");
        if x == 0.0 {
            return f32::INFINITY;
        }
        self.count.exp_adjust += 1;
        let mut y = f32::from_bits(0x5f37_59dfu32.wrapping_sub(x.to_bits() >> 1));
        for _ in 0..iters {
            let y2 = self.m(y, y);
            let xy2 = self.m(x, y2);
            let h = self.m(xy2, 0.5);
            let e = self.s(1.5, h);
            y = self.m(y, e);
        }
        y
    }

    /// `tanh` with the Newton–Raphson reciprocal instead of the host
    /// division.
    pub fn tanh_onchip(&mut self, u: f32) -> f32 {
        if u > 15.0 {
            return 1.0;
        }
        if u < -15.0 {
            return -1.0;
        }
        let two_u = self.m(u, 2.0);
        let e = self.exp(two_u);
        let d = self.a(e, 1.0);
        let r = self.recip(d, 3);
        let q = self.m(2.0, r);
        self.s(1.0, q)
    }

    /// Tanh-form GELU computed entirely on the array.
    pub fn gelu_onchip(&mut self, x: f32) -> f32 {
        const C: f32 = 0.797_884_6; // √(2/π)
        const A: f32 = 0.044_715;
        let x2 = self.m(x, x);
        let x3 = self.m(x2, x);
        let ax3 = self.m(x3, A);
        let inner = self.a(x, ax3);
        let u = self.m(inner, C);
        let t = self.tanh_onchip(u);
        let one_t = self.a(1.0, t);
        let hx = self.m(x, 0.5);
        self.m(hx, one_t)
    }

    /// Row-wise softmax with **on-chip** normalisation: one reciprocal per
    /// row instead of N host divisions — the optimised kernel the paper's
    /// future-work section points at.
    pub fn softmax_row_onchip(&mut self, row: &mut [f32]) {
        if row.is_empty() {
            return;
        }
        let mut max = row[0];
        for &v in &row[1..] {
            self.count.cmp += 1;
            if v > max {
                max = v;
            }
        }
        let mut sum = 0f32;
        for v in row.iter_mut() {
            let shifted = self.s(*v, max);
            *v = self.exp(shifted);
            sum = self.a(sum, *v);
        }
        let inv = self.recip(sum, 3);
        for v in row.iter_mut() {
            *v = self.m(*v, inv);
        }
    }

    /// Row-wise LayerNorm fully on the array (NR reciprocal square root
    /// instead of the host sqrt + division).
    ///
    /// # Panics
    /// Panics if `gamma`/`beta` lengths differ from the row length.
    pub fn layernorm_row_onchip(&mut self, row: &mut [f32], gamma: &[f32], beta: &[f32], eps: f32) {
        let n = row.len();
        assert_eq!(gamma.len(), n, "gamma length");
        assert_eq!(beta.len(), n, "beta length");
        if n == 0 {
            return;
        }
        let inv_n = 1.0 / n as f32;
        let mut sum = 0f32;
        for &v in row.iter() {
            sum = self.a(sum, v);
        }
        let mean = self.m(sum, inv_n);
        let mut var_sum = 0f32;
        for v in row.iter_mut() {
            let d = self.s(*v, mean);
            *v = d;
            let d2 = self.m(d, d);
            var_sum = self.a(var_sum, d2);
        }
        let var = self.m(var_sum, inv_n);
        let ve = self.a(var, eps);
        let inv = self.rsqrt_onchip(ve, 3);
        for (j, v) in row.iter_mut().enumerate() {
            let nrm = self.m(*v, inv);
            let g = self.m(nrm, gamma[j]);
            *v = self.a(g, beta[j]);
        }
    }

    /// Row-wise softmax: comparator max-reduction, subtract, exp, sum, and
    /// the **host-side divisions** the paper calls out.
    pub fn softmax_row(&mut self, row: &mut [f32]) {
        if row.is_empty() {
            return;
        }
        let mut max = row[0];
        for &v in &row[1..] {
            self.count.cmp += 1;
            if v > max {
                max = v;
            }
        }
        let mut sum = 0f32;
        for v in row.iter_mut() {
            let shifted = self.s(*v, max);
            *v = self.exp(shifted);
            sum = self.a(sum, *v);
        }
        for v in row.iter_mut() {
            *v = self.div_host(*v, sum);
        }
    }

    /// Row-wise LayerNorm: mean/variance on the adder tree, 1/√· on the
    /// host, affine on the multiplier.
    ///
    /// # Panics
    /// Panics if `gamma`/`beta` lengths differ from the row length.
    pub fn layernorm_row(&mut self, row: &mut [f32], gamma: &[f32], beta: &[f32], eps: f32) {
        let n = row.len();
        assert_eq!(gamma.len(), n, "gamma length");
        assert_eq!(beta.len(), n, "beta length");
        if n == 0 {
            return;
        }
        let inv_n = 1.0 / n as f32; // compile-time constant in hardware
        let mut sum = 0f32;
        for &v in row.iter() {
            sum = self.a(sum, v);
        }
        let mean = self.m(sum, inv_n);
        let mut var_sum = 0f32;
        for v in row.iter_mut() {
            let d = self.s(*v, mean);
            *v = d;
            let d2 = self.m(d, d);
            var_sum = self.a(var_sum, d2);
        }
        let var = self.m(var_sum, inv_n);
        let ve = self.a(var, eps);
        let sd = self.sqrt_host(ve);
        let inv = self.div_host(1.0, sd);
        for (j, v) in row.iter_mut().enumerate() {
            let nrm = self.m(*v, inv);
            let g = self.m(nrm, gamma[j]);
            *v = self.a(g, beta[j]);
        }
    }

    // ------------------------------------------------------------------
    // Batched slice kernels: the per-batch entry points the engine (and
    // its row-sharded parallel path) drives. The `(NonlinearMode,
    // DivisionPolicy)` match happens once per batch here — not once per
    // row or per element as the engine's old loops did — so each arm is a
    // monomorphized straight loop over one scalar kernel, and the
    // multiplier/adder rounding-path configuration is a fixed field of
    // `self`, resolved once when the VPU is built. The `Exact` arms are
    // bit-identical to calling the scalar kernels directly (oracle
    // contract); the `Fast` arms run the [`fast`] kernels and charge
    // their analytic per-element op mixes in one merge, since the fast
    // unit is a pipeline whose cost is data-independent.
    // ------------------------------------------------------------------

    /// Softmax over every `cols`-wide row of `data` (a whole matrix or a
    /// disjoint row-shard of one).
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `cols`.
    pub fn softmax_rows_batch(
        &mut self,
        data: &mut [f32],
        cols: usize,
        division: DivisionPolicy,
        mode: NonlinearMode,
    ) {
        if cols == 0 {
            return;
        }
        assert_eq!(data.len() % cols, 0, "batch must hold whole rows");
        match (mode, division) {
            (NonlinearMode::Exact, DivisionPolicy::Host) => {
                for row in data.chunks_exact_mut(cols) {
                    self.softmax_row(row);
                }
            }
            (NonlinearMode::Exact, DivisionPolicy::OnChip) => {
                for row in data.chunks_exact_mut(cols) {
                    self.softmax_row_onchip(row);
                }
            }
            // The fast unit never leaves the array; DivisionPolicy is moot.
            (NonlinearMode::Fast, _) => {
                let rows = (data.len() / cols) as u64;
                for row in data.chunks_exact_mut(cols) {
                    fast::softmax_row(row);
                }
                self.count.merge(&fast::cost::softmax_row(cols as u64).times(rows));
            }
        }
    }

    /// Element-wise GELU over a slice (any tile of a matrix; GELU has no
    /// row structure, so shards may cut anywhere).
    pub fn gelu_slice(&mut self, data: &mut [f32], division: DivisionPolicy, mode: NonlinearMode) {
        match (mode, division) {
            (NonlinearMode::Exact, DivisionPolicy::Host) => {
                for v in data.iter_mut() {
                    *v = self.gelu(*v);
                }
            }
            (NonlinearMode::Exact, DivisionPolicy::OnChip) => {
                for v in data.iter_mut() {
                    *v = self.gelu_onchip(*v);
                }
            }
            (NonlinearMode::Fast, _) => {
                for v in data.iter_mut() {
                    *v = fast::gelu(*v);
                }
                self.count.merge(&fast::cost::gelu().times(data.len() as u64));
            }
        }
    }

    /// LayerNorm over every `cols`-wide row of `data`.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `cols`, or if
    /// `gamma`/`beta` lengths differ from `cols`.
    #[allow(clippy::too_many_arguments)]
    pub fn layernorm_rows_batch(
        &mut self,
        data: &mut [f32],
        cols: usize,
        gamma: &[f32],
        beta: &[f32],
        eps: f32,
        division: DivisionPolicy,
        mode: NonlinearMode,
    ) {
        if cols == 0 {
            return;
        }
        assert_eq!(data.len() % cols, 0, "batch must hold whole rows");
        match (mode, division) {
            (NonlinearMode::Exact, DivisionPolicy::Host) => {
                for row in data.chunks_exact_mut(cols) {
                    self.layernorm_row(row, gamma, beta, eps);
                }
            }
            (NonlinearMode::Exact, DivisionPolicy::OnChip) => {
                for row in data.chunks_exact_mut(cols) {
                    self.layernorm_row_onchip(row, gamma, beta, eps);
                }
            }
            (NonlinearMode::Fast, _) => {
                let rows = (data.len() / cols) as u64;
                for row in data.chunks_exact_mut(cols) {
                    fast::layernorm_row(row, gamma, beta, eps);
                }
                self.count
                    .merge(&fast::cost::layernorm_row(cols as u64).times(rows));
            }
        }
    }
}

/// Per-element / per-row operation-count formulas for the kernels above
/// (used by the analytical census and verified against live counts).
pub mod cost {
    use super::OpCount;

    /// Cost of one [`super::Vpu::exp`] call (in range): 1 range-reduction
    /// multiply + 5 Horner multiplies; 4 rounding adds + 5 Horner adds.
    pub const fn exp() -> OpCount {
        OpCount {
            fp_mul: 6,
            fp_add: 9,
            exp_adjust: 1,
            cmp: 0,
            lut: 0,
            host_div: 0,
            host_sqrt: 0,
        }
    }

    /// Cost of one [`super::Vpu::gelu`] call: 6 own muls + 2 own adds, plus
    /// tanh (1 mul, 2 adds, 1 host div) around one exp.
    pub const fn gelu() -> OpCount {
        OpCount {
            fp_mul: 6 + 1 + exp().fp_mul,
            fp_add: 2 + 2 + exp().fp_add,
            exp_adjust: 1,
            cmp: 0,
            lut: 0,
            host_div: 1,
            host_sqrt: 0,
        }
    }

    /// Cost of one softmax over a length-`n` row.
    pub const fn softmax_row(n: u64) -> OpCount {
        OpCount {
            fp_mul: n * exp().fp_mul,
            fp_add: n * (exp().fp_add + 2), // subtract max + running sum
            exp_adjust: n,
            cmp: n.saturating_sub(1),
            lut: 0,
            host_div: n,
            host_sqrt: 0,
        }
    }

    /// Cost of one LayerNorm over a length-`n` row: sum (n adds), mean
    /// (1 mul), centre (n adds), squares (n muls), variance sum (n adds),
    /// variance (1 mul), +eps (1 add), affine (2n muls + n adds).
    pub const fn layernorm_row(n: u64) -> OpCount {
        OpCount {
            fp_mul: 3 * n + 2,
            fp_add: 4 * n + 1,
            exp_adjust: 0,
            cmp: 0,
            lut: 0,
            host_div: 1,
            host_sqrt: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use bfp_arith::matrix::MatF32;

    #[test]
    fn exp_tracks_reference() {
        let mut vpu = Vpu::new();
        for k in -500..=440 {
            let x = k as f32 * 0.17;
            let got = vpu.exp(x) as f64;
            let want = (x as f64).exp();
            let rel = ((got - want) / want).abs();
            // ~10 truncating hardware ops at ≤2 ulp each bound the error.
            assert!(rel < 1e-5, "exp({x}): {got} vs {want} rel {rel}");
        }
    }

    #[test]
    fn exp_cost_formula_matches_live_count() {
        let mut vpu = Vpu::new();
        let _ = vpu.exp(1.234);
        assert_eq!(vpu.take_count(), cost::exp());
    }

    #[test]
    fn exp_extremes_clamp() {
        let mut vpu = Vpu::new();
        assert_eq!(vpu.exp(1000.0), f32::INFINITY);
        assert_eq!(vpu.exp(-1000.0), 0.0);
    }

    #[test]
    fn tanh_tracks_reference() {
        let mut vpu = Vpu::new();
        for k in -60..=60 {
            let x = k as f32 * 0.25;
            let got = vpu.tanh(x) as f64;
            let want = (x as f64).tanh();
            assert!((got - want).abs() < 2e-6, "tanh({x}): {got} vs {want}");
        }
    }

    #[test]
    fn gelu_tracks_reference_kernel() {
        let mut vpu = Vpu::new();
        for k in -50..=50 {
            let x = k as f32 * 0.1;
            let got = vpu.gelu(x);
            let want = reference::gelu_tanh(x);
            assert!((got - want).abs() < 1e-4, "gelu({x}): {got} vs {want}");
        }
    }

    #[test]
    fn gelu_cost_formula_matches_live_count() {
        let mut vpu = Vpu::new();
        let _ = vpu.gelu(0.7);
        assert_eq!(vpu.take_count(), cost::gelu());
    }

    #[test]
    fn softmax_matches_reference() {
        let mut vpu = Vpu::new();
        let mut row: Vec<f32> = (0..17).map(|k| (k as f32 * 0.61).sin() * 4.0).collect();
        let mut want = MatF32::from_vec(1, 17, row.clone());
        reference::softmax_rows(&mut want);
        vpu.softmax_row(&mut row);
        for j in 0..17 {
            assert!(
                (row[j] - want.get(0, j)).abs() < 1e-5,
                "j={j}: {} vs {}",
                row[j],
                want.get(0, j)
            );
        }
        let s: f32 = row.iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
    }

    #[test]
    fn softmax_cost_formula_matches_live_count() {
        let mut vpu = Vpu::new();
        let mut row = vec![0.3f32; 23];
        vpu.softmax_row(&mut row);
        assert_eq!(vpu.take_count(), cost::softmax_row(23));
    }

    #[test]
    fn layernorm_matches_reference() {
        let mut vpu = Vpu::new();
        let n = 48;
        let gamma: Vec<f32> = (0..n).map(|j| 1.0 + j as f32 * 0.01).collect();
        let beta: Vec<f32> = (0..n).map(|j| (j as f32 * 0.3).cos()).collect();
        let src: Vec<f32> = (0..n)
            .map(|j| (j as f32 * 0.37).sin() * 5.0 + 2.0)
            .collect();
        let mut got = src.clone();
        vpu.layernorm_row(&mut got, &gamma, &beta, 1e-6);
        let mut want = MatF32::from_vec(1, n, src);
        reference::layernorm_rows(&mut want, &gamma, &beta, 1e-6);
        for j in 0..n {
            assert!(
                (got[j] - want.get(0, j)).abs() < 2e-4,
                "j={j}: {} vs {}",
                got[j],
                want.get(0, j)
            );
        }
    }

    #[test]
    fn layernorm_cost_formula_matches_live_count() {
        let mut vpu = Vpu::new();
        let n = 31;
        let mut row = vec![1.0f32; n];
        let gamma = vec![1.0f32; n];
        let beta = vec![0.0f32; n];
        vpu.layernorm_row(&mut row, &gamma, &beta, 1e-6);
        assert_eq!(vpu.take_count(), cost::layernorm_row(n as u64));
    }

    #[test]
    fn scale_exp2_is_exact() {
        let mut vpu = Vpu::new();
        assert_eq!(vpu.scale_exp2(1.5, 3), 12.0);
        assert_eq!(vpu.scale_exp2(-0.75, -1), -0.375);
        assert_eq!(vpu.scale_exp2(1.0, 300), f32::INFINITY);
        assert_eq!(vpu.scale_exp2(1.0, -300), 0.0);
        assert_eq!(vpu.scale_exp2(0.0, 10), 0.0);
    }

    #[test]
    fn recip_converges_over_the_normal_range() {
        let mut vpu = Vpu::new();
        for k in -60..=60 {
            if k == 0 {
                continue;
            }
            let x = (k as f32 * 0.77).exp2() * if k % 2 == 0 { 1.0 } else { -1.3 };
            let got = vpu.recip(x, 3) as f64;
            let want = 1.0 / x as f64;
            let rel = ((got - want) / want).abs();
            assert!(rel < 2e-6, "recip({x}): {got} vs {want} rel {rel}");
        }
        assert_eq!(vpu.recip(0.0, 3), f32::INFINITY);
        assert_eq!(vpu.recip(-0.0, 3), f32::NEG_INFINITY);
    }

    #[test]
    fn div_onchip_matches_host_division() {
        let mut vpu = Vpu::new();
        for k in 1..200 {
            let a = (k as f32 * 0.37).sin() * 40.0;
            let b = (k as f32 * 0.53).cos() * 7.0 + 8.0;
            let got = vpu.div_onchip(a, b) as f64;
            let want = (a / b) as f64;
            assert!(
                (got - want).abs() <= want.abs() * 3e-6 + 1e-9,
                "{a}/{b}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn rsqrt_onchip_converges() {
        let mut vpu = Vpu::new();
        for k in -40..=40 {
            let x = (k as f32 * 0.61).exp2();
            let got = vpu.rsqrt_onchip(x, 3) as f64;
            let want = 1.0 / (x as f64).sqrt();
            let rel = ((got - want) / want).abs();
            assert!(rel < 2e-6, "rsqrt({x}): {got} vs {want} rel {rel}");
        }
        assert_eq!(vpu.rsqrt_onchip(0.0, 3), f32::INFINITY);
    }

    #[test]
    fn onchip_softmax_matches_host_softmax_and_needs_no_host() {
        let mut host = Vpu::new();
        let mut chip = Vpu::new();
        let src: Vec<f32> = (0..33).map(|k| (k as f32 * 0.47).sin() * 6.0).collect();
        let mut a = src.clone();
        let mut b = src.clone();
        host.softmax_row(&mut a);
        chip.softmax_row_onchip(&mut b);
        for j in 0..33 {
            assert!((a[j] - b[j]).abs() < 1e-5, "j={j}: {} vs {}", a[j], b[j]);
        }
        assert_eq!(host.count.host_div, 33);
        assert_eq!(
            chip.count.host_div, 0,
            "on-chip kernel must not touch the host"
        );
        // And it is cheaper in total off-array work while adding only a
        // handful of multiplies.
        assert!(chip.count.fp_mul > host.count.fp_mul);
        assert!(chip.count.fp_mul < host.count.fp_mul + 40);
    }

    #[test]
    fn onchip_layernorm_matches_host_variant() {
        let n = 48;
        let gamma: Vec<f32> = (0..n).map(|j| 1.0 + j as f32 * 0.002).collect();
        let beta: Vec<f32> = (0..n).map(|j| (j as f32 * 0.1).sin() * 0.1).collect();
        let src: Vec<f32> = (0..n)
            .map(|j| (j as f32 * 0.29).cos() * 4.0 - 1.0)
            .collect();
        let mut host = Vpu::new();
        let mut chip = Vpu::new();
        let mut a = src.clone();
        let mut b = src.clone();
        host.layernorm_row(&mut a, &gamma, &beta, 1e-6);
        chip.layernorm_row_onchip(&mut b, &gamma, &beta, 1e-6);
        for j in 0..n {
            assert!((a[j] - b[j]).abs() < 5e-5, "j={j}: {} vs {}", a[j], b[j]);
        }
        assert_eq!(chip.count.host_sqrt + chip.count.host_div, 0);
    }

    #[test]
    fn division_goes_to_host() {
        let mut vpu = Vpu::new();
        let mut row = vec![1.0f32, 2.0, 3.0];
        vpu.softmax_row(&mut row);
        assert_eq!(
            vpu.count.host_div, 3,
            "every softmax output is a host division"
        );
    }
}
