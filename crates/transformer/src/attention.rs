//! Multi-head self-attention, generic over the execution [`Engine`].
//!
//! Engine mapping follows the paper's case study: every GEMM (Q/K/V
//! projections, QKᵀ, the attention-weighted sum, and the output projection)
//! runs as bfp8 MatMul; the softmax runs as an fp32 VPU program. The
//! `1/√d_h` scale is folded into the Q projection weights (standard
//! practice, and it keeps the accelerator's op stream exactly at
//! "GEMM + softmax").

use bfp_arith::matrix::MatF32;
use rand::rngs::StdRng;

use crate::config::VitConfig;
use crate::engine::Engine;
use crate::layers::Linear;

/// Multi-head self-attention weights.
#[derive(Debug, Clone)]
pub struct Attention {
    heads: usize,
    head_dim: usize,
    /// Query projection (scale pre-folded).
    pub wq: Linear,
    /// Key projection.
    pub wk: Linear,
    /// Value projection.
    pub wv: Linear,
    /// Output projection.
    pub wo: Linear,
}

impl Attention {
    /// Random-initialised attention for `cfg`, with the softmax scale
    /// folded into `wq`.
    pub fn new_random(cfg: &VitConfig, rng: &mut StdRng) -> Self {
        let mut wq = Linear::new_random(cfg.dim, cfg.dim, rng);
        let scale = 1.0 / (cfg.head_dim() as f32).sqrt();
        for v in wq.w.data_mut() {
            *v *= scale;
        }
        for v in wq.b.iter_mut() {
            *v *= scale;
        }
        Attention {
            heads: cfg.heads,
            head_dim: cfg.head_dim(),
            wq,
            wk: Linear::new_random(cfg.dim, cfg.dim, rng),
            wv: Linear::new_random(cfg.dim, cfg.dim, rng),
            wo: Linear::new_random(cfg.dim, cfg.dim, rng),
        }
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Per-head feature width.
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Self-attention over `x` (`seq × dim`).
    pub fn forward<E: Engine>(&self, e: &mut E, x: &MatF32) -> MatF32 {
        let seq = x.rows();
        let q = self.wq.forward(e, x);
        let k = self.wk.forward(e, x);
        let v = self.wv.forward(e, x);

        let mut concat = MatF32::zeros(seq, self.heads * self.head_dim);
        for h in 0..self.heads {
            let qh = slice_cols(&q, h * self.head_dim, self.head_dim);
            let kh = slice_cols(&k, h * self.head_dim, self.head_dim);
            let vh = slice_cols(&v, h * self.head_dim, self.head_dim);
            // scores = Qh · Khᵀ  (seq × seq), bfp8 GEMM.
            let mut scores = e.matmul(&qh, &kh.transpose());
            // fp32 softmax on the VPU.
            e.softmax_rows(&mut scores);
            // context = scores · Vh, bfp8 GEMM.
            let ctx = e.matmul(&scores, &vh);
            for i in 0..seq {
                for j in 0..self.head_dim {
                    concat.set(i, h * self.head_dim + j, ctx.get(i, j));
                }
            }
        }
        self.wo.forward(e, &concat)
    }
}

/// Copy a column range out of a matrix.
pub(crate) fn slice_cols(m: &MatF32, start: usize, width: usize) -> MatF32 {
    MatF32::from_fn(m.rows(), width, |i, j| m.get(i, start + j))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{MixedEngine, RefEngine};
    use bfp_arith::stats::ErrorStats;
    use rand::SeedableRng;

    fn cfg() -> VitConfig {
        VitConfig::tiny_test()
    }

    #[test]
    fn output_shape_matches_input() {
        let mut rng = StdRng::seed_from_u64(42);
        let c = cfg();
        let attn = Attention::new_random(&c, &mut rng);
        let x = MatF32::from_fn(c.seq, c.dim, |i, j| ((i * 31 + j) as f32 * 0.03).sin());
        let y = attn.forward(&mut RefEngine, &x);
        assert_eq!((y.rows(), y.cols()), (c.seq, c.dim));
    }

    #[test]
    fn attention_rows_are_convex_mixtures() {
        // With the output projection set to identity and V = input, each
        // output row must lie inside the convex hull of input rows: check
        // the max-abs bound.
        let mut rng = StdRng::seed_from_u64(1);
        let c = cfg();
        let attn = Attention::new_random(&c, &mut rng);
        let x = MatF32::from_fn(c.seq, c.dim, |i, j| ((i + j) as f32 * 0.1).cos());
        let y = attn.forward(&mut RefEngine, &x);
        assert!(y.max_abs().is_finite());
    }

    #[test]
    fn mixed_engine_tracks_reference_through_attention() {
        let mut rng = StdRng::seed_from_u64(9);
        let c = cfg();
        let attn = Attention::new_random(&c, &mut rng);
        let x = MatF32::from_fn(c.seq, c.dim, |i, j| ((i * 7 + j * 3) as f32 * 0.05).sin());
        let want = attn.forward(&mut RefEngine, &x);
        let mut mixed = MixedEngine::new();
        let got = attn.forward(&mut mixed, &x);
        let mut s = ErrorStats::new();
        s.push_slices(got.data(), want.data());
        assert!(s.sqnr_db() > 18.0, "attention fidelity: {s}");
    }

    #[test]
    fn census_counts_all_five_gemm_groups() {
        let mut rng = StdRng::seed_from_u64(3);
        let c = cfg();
        let attn = Attention::new_random(&c, &mut rng);
        let x = MatF32::from_fn(c.seq, c.dim, |_, _| 0.1);
        let mut mixed = MixedEngine::new();
        let _ = attn.forward(&mut mixed, &x);
        let macs = mixed.census().matmul_macs;
        let s = c.seq as u64;
        let d = c.dim as u64;
        let want = 4 * s * d * d + 2 * s * s * d; // qkv+o, scores+ctx
        assert_eq!(macs, want);
        // Softmax ran once per head per row.
        assert_eq!(
            mixed.census().softmax.host_div,
            (c.heads * c.seq * c.seq) as u64,
            "one division per attention weight"
        );
    }
}
