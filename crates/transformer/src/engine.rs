//! Execution engines: the mixed-precision accelerator path versus the f32
//! reference, behind one trait so the same model code runs on both.

use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};

use bfp_arith::error::ArithError;
use bfp_arith::int8quant::Int8Tensor;
use bfp_arith::matrix::MatF32;
use bfp_arith::packed::{EpilogueCtx, PackedBfp};
use bfp_arith::quant::Quantizer;
use bfp_telemetry::{Registry, Table};
#[cfg(feature = "telemetry")]
use bfp_telemetry::{Counter, Histogram, Tracer};

use crate::attention::slice_cols;
use crate::layers::Linear;
use crate::model::{residual_add, Block};
use crate::plan::CompiledVitPlan;
use crate::reference;
use crate::vpu::{NonlinearMode, OpCount, Vpu};

/// Operation census of an inference pass, split the way Table IV splits it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCensus {
    /// bfp8 MAC count of every GEMM (linear layers + attention matmuls).
    pub matmul_macs: u64,
    /// VPU operations attributable to softmax.
    pub softmax: OpCount,
    /// VPU operations attributable to GELU.
    pub gelu: OpCount,
    /// VPU operations attributable to LayerNorm.
    pub layernorm: OpCount,
    /// GEMMs that could not be quantized (non-finite operands) and were
    /// degraded to the fp32 reference path instead of panicking.
    pub fp32_fallbacks: u64,
}

impl OpCensus {
    /// bfp8 operations (2 per MAC: multiply + accumulate), the paper's
    /// "OPs" unit for the linear partition.
    pub fn bfp_ops(&self) -> u64 {
        2 * self.matmul_macs
    }

    /// Total fp32 FLOPs across the three non-linear kinds.
    pub fn fp32_flops(&self) -> u64 {
        self.softmax.flops() + self.gelu.flops() + self.layernorm.flops()
    }

    /// Total host-delegated operations (divisions, square roots).
    pub fn host_ops(&self) -> u64 {
        self.softmax.host_ops() + self.gelu.host_ops() + self.layernorm.host_ops()
    }

    /// Fraction of all counted operations that are fp32 (the paper's
    /// "1.35 % of workloads" figure for DeiT-Small).
    pub fn fp32_fraction(&self) -> f64 {
        let total = (self.bfp_ops() + self.fp32_flops()) as f64;
        if total == 0.0 {
            0.0
        } else {
            self.fp32_flops() as f64 / total
        }
    }

    /// Accumulate another census.
    pub fn merge(&mut self, o: &OpCensus) {
        self.matmul_macs += o.matmul_macs;
        self.softmax.merge(&o.softmax);
        self.gelu.merge(&o.gelu);
        self.layernorm.merge(&o.layernorm);
        self.fp32_fallbacks += o.fp32_fallbacks;
    }
}

/// The operations a model needs from its execution substrate.
pub trait Engine {
    /// General matrix multiply.
    fn matmul(&mut self, a: &MatF32, b: &MatF32) -> MatF32;
    /// Row-wise softmax in place.
    fn softmax_rows(&mut self, m: &mut MatF32);
    /// Element-wise GELU in place.
    fn gelu(&mut self, m: &mut MatF32);
    /// Row-wise LayerNorm in place.
    fn layernorm(&mut self, m: &mut MatF32, gamma: &[f32], beta: &[f32], eps: f32);
    /// Run one encoder block through a compiled execution plan, if this
    /// engine carries one. `None` (the default for every engine without
    /// plan support) routes the caller to the hand-wired oracle sequence;
    /// `Some` must be bit-identical to that sequence.
    fn forward_block_planned(&mut self, _block: &Block, _x: &MatF32) -> Option<MatF32> {
        None
    }
}

/// Pure f32/f64 reference engine (the "fp32 model as trained" baseline).
#[derive(Debug, Default, Clone, Copy)]
pub struct RefEngine;

impl Engine for RefEngine {
    fn matmul(&mut self, a: &MatF32, b: &MatF32) -> MatF32 {
        a.matmul(b)
    }

    fn softmax_rows(&mut self, m: &mut MatF32) {
        reference::softmax_rows(m);
    }

    fn gelu(&mut self, m: &mut MatF32) {
        reference::gelu_rows(m);
    }

    fn layernorm(&mut self, m: &mut MatF32, gamma: &[f32], beta: &[f32], eps: f32) {
        reference::layernorm_rows(m, gamma, beta, eps);
    }
}

/// Content key of a weight-plan cache entry: shape plus an FNV-1a hash of
/// the operand's exact `f32` bit patterns. Two matrices collide only if
/// they agree in shape *and* 64-bit content hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PlanKey {
    rows: usize,
    cols: usize,
    hash: u64,
}

impl PlanKey {
    fn of(m: &MatF32, epilogue: Epilogue) -> PlanKey {
        match epilogue {
            Epilogue::Fused => Self::of_fast(m),
            Epilogue::Reference => Self::of_fnv(m),
        }
    }

    fn of_fast(m: &MatF32) -> PlanKey {
        // `MatF32::content_hash` is the word-at-a-time mixer, *memoized in
        // the matrix*: a weight hashed once stays hashed until mutated, so
        // steady-state lookups cost six u64 loads instead of a full rescan
        // of the weight bytes per GEMM (which showed up in the
        // quantize/pack phase). Still bit-exact and NaN-payload sensitive;
        // the key only gates the plan cache, so the hash choice can never
        // affect output bits.
        PlanKey {
            rows: m.rows(),
            cols: m.cols(),
            hash: m.content_hash(),
        }
    }

    /// The pre-optimisation byte-wise FNV-1a hash, kept runnable so the
    /// e2e baseline engine replays the engine it measures against. Either
    /// key scheme is bit-exact and content-complete; within one engine a
    /// single scheme is used, so keys never mix.
    fn of_fnv(m: &MatF32) -> PlanKey {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(m.rows() as u64);
        eat(m.cols() as u64);
        let mut chunks = m.data().chunks_exact(2);
        for pair in &mut chunks {
            eat((pair[0].to_bits() as u64) << 32 | pair[1].to_bits() as u64);
        }
        if let [last] = chunks.remainder() {
            eat(last.to_bits() as u64);
        }
        PlanKey {
            rows: m.rows(),
            cols: m.cols(),
            hash: h,
        }
    }
}

/// Which f32 → packed-bfp8 epilogue a [`MixedEngine`] runs. The two are
/// bit-identical end to end (pinned in `bfp_arith::packed` and
/// `bfp_arith::quant` tests); [`Epilogue::Reference`] exists so the e2e
/// bench's baseline is the real pre-optimisation engine, not a hybrid that
/// already enjoys the fast scan and hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Epilogue {
    /// Fused single-pass quantize-and-pack, word-at-a-time plan hash.
    Fused,
    /// Composed quantize → pack with the per-element reference tile scan
    /// and the byte-wise FNV plan hash (the pre-optimisation engine).
    Reference,
}

/// One cached, executable quantization of a weight matrix: the bfp8 tiles
/// already packed in the kernel-ready block-transposed RHS layout.
#[derive(Debug, Clone)]
struct WeightPlan {
    packed: PackedBfp,
    /// Hits since the last eviction sweep (decides survival).
    hits: u64,
}

/// Observability counters for the [`MixedEngine`] weight-plan cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// GEMMs whose RHS was served from a cached plan.
    pub hits: u64,
    /// GEMMs that quantized + packed their RHS (and cached the plan).
    pub misses: u64,
    /// Entries dropped by eviction sweeps (cold, typically activations).
    pub evictions: u64,
    /// Plans currently resident.
    pub entries: usize,
    /// Approximate resident bytes across all plans.
    pub bytes: usize,
}

impl PlanCacheStats {
    /// Publish the counters into a metrics [`Registry`] as gauges
    /// (idempotent: re-publishing overwrites, so periodic snapshots of
    /// the same engine do not double-count).
    pub fn publish(&self, reg: &Registry) {
        reg.gauge("plan_cache_hits").set(self.hits as f64);
        reg.gauge("plan_cache_misses").set(self.misses as f64);
        reg.gauge("plan_cache_evictions").set(self.evictions as f64);
        reg.gauge("plan_cache_entries").set(self.entries as f64);
        reg.gauge("plan_cache_resident_bytes").set(self.bytes as f64);
    }
}

impl fmt::Display for PlanCacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "weight-plan cache",
            &["hits", "misses", "evictions", "entries", "resident B"],
        );
        t.row(&[
            self.hits.to_string(),
            self.misses.to_string(),
            self.evictions.to_string(),
            self.entries.to_string(),
            self.bytes.to_string(),
        ]);
        write!(f, "{}", t.render().trim_end())
    }
}

/// Everything a [`MixedEngine`] records about itself when tracing is
/// attached: the span tracer plus registered hot-path instruments.
/// Only exists with the `telemetry` cargo feature; without it the
/// engine carries no field and no instrumentation code at all.
#[cfg(feature = "telemetry")]
#[derive(Debug, Clone)]
pub struct EngineTelemetry {
    tracer: Tracer,
    gemms: Counter,
    macs: Counter,
    fallbacks: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    saturated: Counter,
    gemm_ns: Histogram,
    quantize_pack_ns: Histogram,
    fast_mul: Counter,
    fast_add: Counter,
    fast_exp_adjust: Counter,
    fast_lut: Counter,
    fusion_hits: Counter,
    fusion_misses: Counter,
}

#[cfg(feature = "telemetry")]
impl EngineTelemetry {
    /// Bind a tracer and register the engine's instruments in `reg`.
    pub fn new(tracer: Tracer, reg: &Registry) -> Self {
        EngineTelemetry {
            tracer,
            gemms: reg.counter("engine_gemms_total"),
            macs: reg.counter("engine_macs_total"),
            fallbacks: reg.counter("engine_fp32_fallbacks_total"),
            cache_hits: reg.counter("engine_plan_cache_hits_total"),
            cache_misses: reg.counter("engine_plan_cache_misses_total"),
            saturated: reg.counter("engine_quantize_saturated_total"),
            gemm_ns: reg.histogram("engine_gemm_ns"),
            quantize_pack_ns: reg.histogram("engine_quantize_pack_ns"),
            // The fast nonlinear unit's op mix, one counter per hardware
            // resource class. Cross-checkable against the analytic cycle
            // model: `bfp_core::vpucost` prices exactly these four counts.
            fast_mul: reg.counter("engine_fast_nl_fp_mul_total"),
            fast_add: reg.counter("engine_fast_nl_fp_add_total"),
            fast_exp_adjust: reg.counter("engine_fast_nl_exp_adjust_total"),
            fast_lut: reg.counter("engine_fast_nl_lut_total"),
            // Compiled-plan routing: GEMMs drained through a fused
            // epilogue kernel vs GEMMs a plan had to run composed.
            fusion_hits: reg.counter("engine_fusion_hits_total"),
            fusion_misses: reg.counter("engine_fusion_misses_total"),
        }
    }

    /// The bound tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }
}

/// Soft capacity of the weight-plan cache. A full DeiT model holds well
/// under a hundred distinct weight matrices; the headroom absorbs
/// activation churn between eviction sweeps.
const PLAN_CACHE_CAP: usize = 256;

/// Wall-clock accumulated per execution phase by [`MixedEngine`], the
/// breakdown the `e2e` bench reports (the paper's Table IV split, measured
/// on the host simulation). Residual adds and copies are not engine calls,
/// so "misc" is derived by the bench as `wall − accounted()`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// f32 → packed bfp8 quantization (LHS fused pass + RHS plan misses).
    pub quantize_pack: Duration,
    /// Packed int8 GEMM kernel (including shard fork/join).
    pub gemm: Duration,
    /// Softmax rows on the VPU.
    pub softmax: Duration,
    /// Element-wise GELU on the VPU.
    pub gelu: Duration,
    /// LayerNorm rows on the VPU.
    pub layernorm: Duration,
}

impl PhaseTimes {
    /// Total time attributed to a phase (everything the engine saw).
    pub fn accounted(&self) -> Duration {
        self.quantize_pack + self.gemm + self.softmax + self.gelu + self.layernorm
    }

    /// Accumulate another breakdown.
    pub fn merge(&mut self, o: &PhaseTimes) {
        self.quantize_pack += o.quantize_pack;
        self.gemm += o.gemm;
        self.softmax += o.softmax;
        self.gelu += o.gelu;
        self.layernorm += o.layernorm;
    }
}

/// Accumulated wall-clock for one named node of a compiled plan, the
/// measured side of drift attribution (predictions come from
/// `bfp_core::planner`). Collected only when node timing is enabled at
/// runtime — the accumulator is independent of the `telemetry` feature
/// so benches can attribute drift in default builds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NodeTime {
    /// Total measured seconds across executions.
    pub seconds: f64,
    /// Number of executions folded into `seconds`.
    pub samples: u64,
}

/// Below this many scalar MACs the engine's GEMM stays on one thread —
/// fork/join costs more than the kernel (same rationale and value as
/// `bfp_core::fastgemm::PARALLEL_MAC_THRESHOLD`).
const GEMM_PARALLEL_MACS: u64 = 2_000_000;

/// Minimum f32 elements per worker shard of an **exact-mode** non-linear
/// kernel: below this, a shard's work does not amortise its thread's
/// fork/join cost (measured break-even on the e2e model — a VPU op is
/// bit-level emulation, so the batch is far smaller than the GEMM
/// threshold).
const VPU_PARALLEL_ELEMS: usize = 4_096;

/// Minimum elements per shard in **fast** nonlinear mode. A fast-kernel
/// element costs tens of native flops instead of thousands of emulation
/// instructions, so the fork/join break-even sits ~16× higher; sharding
/// small fast batches is how the thread sweep went non-monotone.
const VPU_PARALLEL_ELEMS_FAST: usize = 65_536;

/// Where fp32 divisions and square roots execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DivisionPolicy {
    /// The paper's prototype: ship them to the host CPU (§III-B).
    #[default]
    Host,
    /// The future-work extension: Newton–Raphson on the array — no host
    /// round-trips at all.
    OnChip,
}

/// The accelerator's execution model: GEMMs in bfp8 (quantize → int8 block
/// MatMul → aligned accumulate → dequantize), non-linear layers on the fp32
/// VPU kernels, with a full operation census.
#[derive(Debug, Clone)]
pub struct MixedEngine {
    quantizer: Quantizer,
    vpu: Vpu,
    census: OpCensus,
    division: DivisionPolicy,
    /// Which nonlinear kernel family the VPU runs (exact oracle vs the
    /// fast LUT/polynomial unit with tested ULP envelopes).
    nonlinear: NonlinearMode,
    /// Content-keyed quantize-and-pack cache for RHS operands. Weight
    /// matrices are constant across tokens, layers, images, and batches,
    /// so their plans are built once and reused; activation operands churn
    /// and are swept out by the eviction pass.
    plans: HashMap<PlanKey, WeightPlan>,
    plan_stats: PlanCacheStats,
    cache_enabled: bool,
    /// Thread budget shared by the sharded GEMM and the sharded VPU
    /// kernels. Sharding is bit-invariant, so this trades wall-clock only.
    threads: usize,
    /// Threads the host actually has. The effective parallelism is
    /// `min(threads, host_cap)`: a budget above the core count cannot buy
    /// wall-clock, only fork/join overhead — the regression that made the
    /// e2e thread sweep non-monotone on small hosts.
    host_cap: usize,
    /// Which quantize epilogue (and plan-key hash) this engine runs; see
    /// [`Epilogue`].
    epilogue: Epilogue,
    /// Compiled block plan; `None` (the default) keeps `Block::forward`
    /// on the hand-wired oracle path.
    vit_plan: Option<CompiledVitPlan>,
    /// GEMMs drained through a fused epilogue kernel under the plan.
    fusion_hits: u64,
    /// GEMMs a plan ran through the composed passes (per-head attention
    /// GEMMs, disabled patterns, and fused-kernel error replays).
    fusion_misses: u64,
    phase: PhaseTimes,
    /// Per-node wall-clock accumulators for drift attribution; `None`
    /// (the default) keeps the compiled-plan hot path free of clock
    /// reads and map lookups.
    node_times: Option<HashMap<String, NodeTime>>,
    /// Attached observability (spans + registered counters); `None`
    /// until [`Self::attach_telemetry`] is called.
    #[cfg(feature = "telemetry")]
    tel: Option<EngineTelemetry>,
}

impl Default for MixedEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl MixedEngine {
    /// Paper-configured engine (8×8 blocks, RNE quantization, host-side
    /// division).
    pub fn new() -> Self {
        MixedEngine {
            quantizer: Quantizer::paper(),
            vpu: Vpu::new(),
            census: OpCensus::default(),
            division: DivisionPolicy::Host,
            nonlinear: NonlinearMode::Exact,
            plans: HashMap::new(),
            plan_stats: PlanCacheStats::default(),
            cache_enabled: true,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            host_cap: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            epilogue: Epilogue::Fused,
            vit_plan: None,
            fusion_hits: 0,
            fusion_misses: 0,
            phase: PhaseTimes::default(),
            node_times: None,
            #[cfg(feature = "telemetry")]
            tel: None,
        }
    }

    /// Attach a tracer and metrics registry: subsequent engine calls
    /// emit phase spans and update the registered instruments.
    #[cfg(feature = "telemetry")]
    pub fn attach_telemetry(&mut self, tracer: Tracer, reg: &Registry) {
        self.tel = Some(EngineTelemetry::new(tracer, reg));
    }

    /// Note a GEMM degraded to the fp32 reference path (no-op unless
    /// telemetry is compiled in and attached).
    #[inline]
    fn tel_fallback(&self) {
        #[cfg(feature = "telemetry")]
        if let Some(tel) = &self.tel {
            tel.fallbacks.inc();
            tel.tracer.instant("engine.fp32_fallback", "engine");
        }
    }

    /// Record a completed VPU phase span (no-op unless telemetry is
    /// compiled in and attached).
    #[inline]
    fn tel_phase(&self, name: &'static str, t0: Instant) {
        #[cfg(feature = "telemetry")]
        if let Some(tel) = &self.tel {
            tel.tracer.complete_between(name, "engine", t0, Instant::now());
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = (name, t0);
    }

    /// The pre-optimisation execution model, kept runnable as the measured
    /// baseline of the e2e bench: single-threaded everywhere, the composed
    /// quantize→pack epilogue with the reference tile scan and byte-wise
    /// FNV plan hash, and every VPU multiply through the explicit
    /// partial-product enumeration. Bit-identical outputs to [`Self::new`].
    pub fn baseline_scalar() -> Self {
        MixedEngine {
            vpu: Vpu::via_partials(),
            threads: 1,
            epilogue: Epilogue::Reference,
            ..Self::new()
        }
    }

    /// Set the thread budget for the sharded GEMM and VPU kernels
    /// (`0` is clamped to 1). Outputs are bit-identical for any value;
    /// the effective parallelism additionally never exceeds the host's
    /// core count.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Select the nonlinear kernel family for subsequent VPU calls.
    /// [`NonlinearMode::Exact`] is bit-identical to the pre-knob engine;
    /// [`NonlinearMode::Fast`] trades a tested ULP envelope for the
    /// LUT/polynomial unit's throughput.
    pub fn set_nonlinear_mode(&mut self, mode: NonlinearMode) {
        self.nonlinear = mode;
    }

    /// Builder form of [`Self::set_nonlinear_mode`].
    pub fn with_nonlinear(mut self, mode: NonlinearMode) -> Self {
        self.set_nonlinear_mode(mode);
        self
    }

    /// The configured nonlinear kernel family.
    pub fn nonlinear_mode(&self) -> NonlinearMode {
        self.nonlinear
    }

    /// The paper-configured engine with the fast nonlinear unit enabled.
    pub fn fast_nonlinear() -> Self {
        MixedEngine {
            nonlinear: NonlinearMode::Fast,
            ..Self::new()
        }
    }

    /// Builder form of [`Self::set_threads`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.set_threads(threads);
        self
    }

    /// The configured thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Return and reset the accumulated per-phase wall-clock breakdown.
    pub fn take_phase_times(&mut self) -> PhaseTimes {
        std::mem::take(&mut self.phase)
    }

    /// Start accumulating per-node wall-clock on the compiled-plan path
    /// (for drift attribution against the planner's cycle predictions).
    /// Off by default; independent of the `telemetry` cargo feature.
    pub fn enable_node_timing(&mut self) {
        if self.node_times.is_none() {
            self.node_times = Some(HashMap::new());
        }
    }

    /// Whether per-node timing is currently accumulating.
    pub fn node_timing_enabled(&self) -> bool {
        self.node_times.is_some()
    }

    /// Drain the per-node wall-clock accumulators (empty when node
    /// timing was never enabled). Timing stays enabled afterwards.
    pub fn take_node_times(&mut self) -> HashMap<String, NodeTime> {
        match &mut self.node_times {
            Some(m) => std::mem::take(m),
            None => HashMap::new(),
        }
    }

    /// The per-phase wall-clock breakdown accumulated so far.
    pub fn phase_times(&self) -> PhaseTimes {
        self.phase
    }

    /// An engine with the weight-plan cache disabled: every GEMM
    /// re-quantizes both operands, as the pre-cache engine did. Results
    /// are bit-identical either way; this exists for A/B benchmarking and
    /// for memory-constrained embedders.
    pub fn without_weight_cache() -> Self {
        MixedEngine {
            cache_enabled: false,
            ..Self::new()
        }
    }

    /// An engine with a custom quantizer (block-size ablations).
    pub fn with_quantizer(quantizer: Quantizer) -> Self {
        MixedEngine {
            quantizer,
            ..Self::new()
        }
    }

    /// The future-work configuration: every operation on the array,
    /// divisions included (Newton–Raphson kernels).
    pub fn host_free() -> Self {
        MixedEngine {
            division: DivisionPolicy::OnChip,
            ..Self::new()
        }
    }

    /// The census so far.
    pub fn census(&self) -> OpCensus {
        self.census
    }

    /// Return and reset the census.
    pub fn take_census(&mut self) -> OpCensus {
        std::mem::take(&mut self.census)
    }

    /// Weight-plan cache counters (hits, misses, evictions, footprint).
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        let mut s = self.plan_stats;
        s.entries = self.plans.len();
        s.bytes = self.plans.values().map(|p| p.packed.bytes()).sum();
        s
    }

    /// Drop every cached weight plan (counters are kept).
    pub fn clear_weight_cache(&mut self) {
        self.plans.clear();
    }

    /// Quantize + pack an RHS operand on the configured epilogue: fused
    /// single pass normally, the composed reference path in baseline mode.
    /// The two are bit-identical (pinned in `bfp_arith::packed` tests).
    fn pack_rhs_fresh(&self, b: &MatF32) -> Result<PackedBfp, ArithError> {
        match self.epilogue {
            Epilogue::Fused => PackedBfp::quantize_pack_rhs(&self.quantizer, b),
            Epilogue::Reference => Ok(PackedBfp::pack_rhs(&self.quantizer.quantize_reference(b)?)),
        }
    }

    /// Resolve the RHS operand to a packed plan: cached when enabled and
    /// previously seen, freshly quantized + packed otherwise.
    fn rhs_plan(&mut self, b: &MatF32) -> Result<&PackedBfp, ArithError> {
        if !self.cache_enabled {
            // Stash under a reserved slot so the borrow can be returned
            // uniformly; a disabled cache holds at most this one entry.
            let packed = self.pack_rhs_fresh(b)?;
            self.plans.clear();
            let key = PlanKey {
                rows: 0,
                cols: 0,
                hash: 0,
            };
            return Ok(&self
                .plans
                .entry(key)
                .or_insert(WeightPlan { packed, hits: 0 })
                .packed);
        }
        let key = PlanKey::of(b, self.epilogue);
        if self.plans.contains_key(&key) {
            self.plan_stats.hits += 1;
            #[cfg(feature = "telemetry")]
            if let Some(tel) = &self.tel {
                tel.cache_hits.inc();
            }
            let plan = self.plans.get_mut(&key).expect("checked");
            plan.hits += 1;
            return Ok(&plan.packed);
        }
        let packed = self.pack_rhs_fresh(b)?;
        self.plan_stats.misses += 1;
        #[cfg(feature = "telemetry")]
        if let Some(tel) = &self.tel {
            tel.cache_misses.inc();
        }
        if self.plans.len() >= PLAN_CACHE_CAP {
            // Sweep: keep plans that were re-used since the last sweep
            // (weights), drop one-shot entries (activations).
            let before = self.plans.len();
            self.plans.retain(|_, p| p.hits > 0);
            // If the sweep alone cannot make room (everything resident is
            // hot), evict the least-used plans in content-key order. The
            // sort key is a total order over (hits, content hash, shape) —
            // independent of the HashMap's per-instance seeding — so
            // concurrent engines fed the same workload evict identically.
            if self.plans.len() >= PLAN_CACHE_CAP {
                let mut order: Vec<(u64, PlanKey)> =
                    self.plans.iter().map(|(k, p)| (p.hits, *k)).collect();
                order.sort_unstable_by_key(|&(hits, k)| (hits, k.hash, k.rows, k.cols));
                let excess = self.plans.len() - (PLAN_CACHE_CAP - 1);
                for (_, k) in order.iter().take(excess) {
                    self.plans.remove(k);
                }
            }
            self.plan_stats.evictions += (before - self.plans.len()) as u64;
            for p in self.plans.values_mut() {
                p.hits = 0;
            }
        }
        Ok(&self
            .plans
            .entry(key)
            .or_insert(WeightPlan { packed, hits: 0 })
            .packed)
    }

    fn vpu_delta(&mut self, f: impl FnOnce(&mut Vpu)) -> OpCount {
        let before = self.vpu.count;
        f(&mut self.vpu);
        let after = self.vpu.count;
        OpCount {
            fp_mul: after.fp_mul - before.fp_mul,
            fp_add: after.fp_add - before.fp_add,
            exp_adjust: after.exp_adjust - before.exp_adjust,
            cmp: after.cmp - before.cmp,
            lut: after.lut - before.lut,
            host_div: after.host_div - before.host_div,
            host_sqrt: after.host_sqrt - before.host_sqrt,
        }
    }

    /// The thread budget clamped at the host's core count: oversubscribing
    /// buys nothing and costs fork/join per kernel call.
    fn effective_threads(&self) -> usize {
        self.threads.min(self.host_cap).max(1)
    }

    /// How many threads a non-linear kernel over `elems` f32 values gets:
    /// the (host-capped) budget, capped so every shard carries at least
    /// the break-even batch for the active kernel family (one shard → no
    /// fork at all).
    fn vpu_threads_for(&self, elems: usize) -> usize {
        let min_shard = match self.nonlinear {
            NonlinearMode::Exact => VPU_PARALLEL_ELEMS,
            NonlinearMode::Fast => VPU_PARALLEL_ELEMS_FAST,
        };
        self.effective_threads().min(elems / min_shard).max(1)
    }

    /// Publish a fast-mode nonlinear op-mix delta to the registered
    /// counters (no-op unless telemetry is compiled in and attached).
    #[inline]
    fn tel_fast_mix(&self, delta: &OpCount) {
        #[cfg(feature = "telemetry")]
        if let Some(tel) = &self.tel {
            tel.fast_mul.add(delta.fp_mul);
            tel.fast_add.add(delta.fp_add);
            tel.fast_exp_adjust.add(delta.exp_adjust);
            tel.fast_lut.add(delta.lut);
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = delta;
    }

    /// Run a batched VPU kernel over `data` split into `threads` disjoint
    /// shards of whole `unit`-element groups (rows, or single elements for
    /// GELU). Each worker thread gets a fresh VPU with the same datapath
    /// configuration; shards touch disjoint data, so outputs are
    /// bit-identical to the serial kernel for any thread count, and the
    /// per-shard [`OpCount`]s are merged in shard order — deterministic —
    /// into both the live VPU counter and the returned delta.
    fn vpu_parallel(
        &mut self,
        data: &mut [f32],
        unit: usize,
        threads: usize,
        f: impl Fn(&mut Vpu, &mut [f32]) + Sync,
    ) -> OpCount {
        debug_assert!(unit > 0 && data.len().is_multiple_of(unit));
        let units = data.len() / unit;
        let threads = threads.min(units.max(1));
        if threads <= 1 {
            return self.vpu_delta(|vpu| f(vpu, data));
        }
        let per = units.div_ceil(threads) * unit;
        let proto = &self.vpu;
        let f = &f;
        let deltas: Vec<OpCount> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks_mut(per)
                .map(|shard| {
                    let mut vpu = proto.fresh();
                    scope.spawn(move |_| {
                        f(&mut vpu, shard);
                        vpu.count
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("VPU shard thread panicked"))
                .collect()
        })
        .expect("VPU shard scope panicked");
        let mut total = OpCount::default();
        for d in &deltas {
            total.merge(d);
        }
        self.vpu.count.merge(&total);
        total
    }

    // ------------------------------------------------------------------
    // Compiled-plan execution: the graph planner's fused kernels.
    // ------------------------------------------------------------------

    /// Install a compiled block plan: subsequent `Block::forward` calls on
    /// this engine route through the fused packed kernels. Outputs are
    /// bit-identical to the hand-wired path for any plan (pinned by the
    /// tests below and by `bfp_arith::packed`); the plan trades wall-clock
    /// only.
    pub fn install_vit_plan(&mut self, plan: CompiledVitPlan) {
        self.vit_plan = Some(plan);
    }

    /// Builder form of [`Self::install_vit_plan`].
    pub fn with_vit_plan(mut self, plan: CompiledVitPlan) -> Self {
        self.install_vit_plan(plan);
        self
    }

    /// Remove the compiled plan: back to the hand-wired oracle path.
    pub fn clear_vit_plan(&mut self) {
        self.vit_plan = None;
    }

    /// The installed compiled plan, if any.
    pub fn vit_plan(&self) -> Option<CompiledVitPlan> {
        self.vit_plan
    }

    /// Fusion routing counters as `(hits, misses)`: GEMMs drained through
    /// a fused epilogue kernel vs GEMMs a plan ran composed.
    pub fn fusion_stats(&self) -> (u64, u64) {
        (self.fusion_hits, self.fusion_misses)
    }

    #[inline]
    fn note_fusion_hit(&mut self) {
        self.fusion_hits += 1;
        #[cfg(feature = "telemetry")]
        if let Some(tel) = &self.tel {
            tel.fusion_hits.inc();
        }
    }

    #[inline]
    fn note_fusion_miss(&mut self) {
        self.fusion_misses += 1;
        #[cfg(feature = "telemetry")]
        if let Some(tel) = &self.tel {
            tel.fusion_misses.inc();
        }
    }

    /// Record a completed `plan.node.<name>` span for one graph node of
    /// the compiled plan, and fold its wall-clock into the node-timing
    /// accumulators when enabled (no-op otherwise).
    #[inline]
    fn tel_node(&mut self, name: &str, t0: Instant) {
        if let Some(times) = &mut self.node_times {
            let entry = times.entry(name.to_string()).or_default();
            entry.seconds += t0.elapsed().as_secs_f64();
            entry.samples += 1;
        }
        #[cfg(feature = "telemetry")]
        if let Some(tel) = &self.tel {
            tel.tracer
                .complete_between(format!("plan.node.{name}"), "plan", t0, Instant::now());
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = (name, t0);
    }

    /// Process-wide saturation tally mark, for attributing a fused GEMM's
    /// share (mirrors the hand-wired `matmul` instrumentation).
    #[inline]
    fn sat_mark(&self) -> u64 {
        #[cfg(feature = "telemetry")]
        {
            bfp_arith::telemetry::saturation_count()
        }
        #[cfg(not(feature = "telemetry"))]
        {
            0
        }
    }

    /// Record a fused GEMM's counters, histograms, and phase spans —
    /// the same instruments the hand-wired `matmul` updates, so fused
    /// and composed GEMMs are indistinguishable to dashboards except
    /// through the fusion counters.
    #[inline]
    fn tel_fused_gemm(&self, macs: u64, t0: Instant, t1: Instant, t2: Instant, sat0: u64) {
        #[cfg(feature = "telemetry")]
        if let Some(tel) = &self.tel {
            tel.tracer.complete_between("quantize_pack", "engine", t0, t1);
            tel.tracer
                .complete_between_with("gemm", "engine", t1, t2, vec![("macs", macs)]);
            tel.gemms.inc();
            tel.macs.add(macs);
            tel.quantize_pack_ns.record_duration(t1.duration_since(t0));
            tel.gemm_ns.record_duration(t2.duration_since(t1));
            tel.saturated
                .add(bfp_arith::telemetry::saturation_count().saturating_sub(sat0));
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = (macs, t0, t1, t2, sat0);
    }

    /// GEMM thread budget for `macs` scalar MACs (same rule as `matmul`).
    #[inline]
    fn gemm_threads_for(&self, macs: u64) -> usize {
        if macs < GEMM_PARALLEL_MACS {
            1
        } else {
            self.effective_threads()
        }
    }

    /// Quantize-pack an LHS operand, billing the time to the
    /// quantize_pack phase.
    fn pack_lhs_timed(&mut self, m: &MatF32) -> Result<PackedBfp, ArithError> {
        let t0 = Instant::now();
        let r = PackedBfp::quantize_pack_lhs(&self.quantizer, m);
        self.phase.quantize_pack += t0.elapsed();
        r
    }

    /// Fused GEMM + bias drain over an already-packed LHS. Accounting on
    /// success mirrors `Engine::matmul`: RHS plan resolution bills
    /// quantize_pack, the fused kernel bills gemm, MACs land in the
    /// census. On error nothing is recorded — the caller replays the
    /// composed oracle ops, which do their own accounting.
    fn fused_linear_bias(&mut self, ph: &PackedBfp, lin: &Linear) -> Result<MatF32, ArithError> {
        let macs = (ph.rows() * ph.cols() * lin.w.cols()) as u64;
        let threads = self.gemm_threads_for(macs);
        let sat0 = self.sat_mark();
        let t0 = Instant::now();
        let pb = self.rhs_plan(&lin.w)?;
        let t1 = Instant::now();
        let bias = lin.b.as_slice();
        let out = if threads <= 1 {
            ph.matmul_epilogue(pb, |tile, ctx| bias_epi(tile, ctx, bias))?
        } else {
            let mut epis: Vec<_> = (0..threads)
                .map(|_| |tile: &mut [f32], ctx: &EpilogueCtx| bias_epi(tile, ctx, bias))
                .collect();
            ph.matmul_epilogue_parallel(pb, threads, &mut epis)?
        };
        let t2 = Instant::now();
        self.phase.quantize_pack += t1.duration_since(t0);
        self.phase.gemm += t2.duration_since(t1);
        self.census.matmul_macs += macs;
        self.note_fusion_hit();
        self.tel_fused_gemm(macs, t0, t1, t2, sat0);
        Ok(out)
    }

    /// Fused GEMM + bias + residual drain: produces
    /// `skip + (GEMM + bias)` with exactly the element order of the
    /// composed `Linear::forward` + `residual_add` sequence.
    fn fused_linear_bias_residual(
        &mut self,
        ph: &PackedBfp,
        lin: &Linear,
        skip: &MatF32,
    ) -> Result<MatF32, ArithError> {
        let macs = (ph.rows() * ph.cols() * lin.w.cols()) as u64;
        let threads = self.gemm_threads_for(macs);
        let sat0 = self.sat_mark();
        let t0 = Instant::now();
        let pb = self.rhs_plan(&lin.w)?;
        let t1 = Instant::now();
        let bias = lin.b.as_slice();
        let out = if threads <= 1 {
            ph.matmul_epilogue(pb, |tile, ctx| bias_residual_epi(tile, ctx, bias, skip))?
        } else {
            let mut epis: Vec<_> = (0..threads)
                .map(|_| {
                    |tile: &mut [f32], ctx: &EpilogueCtx| bias_residual_epi(tile, ctx, bias, skip)
                })
                .collect();
            ph.matmul_epilogue_parallel(pb, threads, &mut epis)?
        };
        let t2 = Instant::now();
        self.phase.quantize_pack += t1.duration_since(t0);
        self.phase.gemm += t2.duration_since(t1);
        self.census.matmul_macs += macs;
        self.note_fusion_hit();
        self.tel_fused_gemm(macs, t0, t1, t2, sat0);
        Ok(out)
    }

    /// Fused GEMM + bias + GELU drain to f32. The GELU runs per tile row
    /// on a per-shard VPU while the tile is hot; counts merge in shard
    /// order into the live VPU and the gelu census, exactly matching the
    /// composed `Linear::forward` + `Engine::gelu` totals (GELU is
    /// element-independent, so tile order cannot change bits or counts).
    fn fused_linear_bias_gelu(
        &mut self,
        ph: &PackedBfp,
        lin: &Linear,
    ) -> Result<MatF32, ArithError> {
        let macs = (ph.rows() * ph.cols() * lin.w.cols()) as u64;
        let threads = self.gemm_threads_for(macs);
        let division = self.division;
        let mode = self.nonlinear;
        let mut vpus: Vec<Vpu> = (0..threads.max(1)).map(|_| self.vpu.fresh()).collect();
        let sat0 = self.sat_mark();
        let t0 = Instant::now();
        let pb = self.rhs_plan(&lin.w)?;
        let t1 = Instant::now();
        let bias = lin.b.as_slice();
        let out = if threads <= 1 {
            let vpu = &mut vpus[0];
            ph.matmul_epilogue(pb, |tile, ctx| {
                bias_epi(tile, ctx, bias);
                gelu_epi(vpu, tile, ctx, division, mode);
            })?
        } else {
            let mut epis: Vec<_> = vpus
                .iter_mut()
                .map(|vpu| {
                    move |tile: &mut [f32], ctx: &EpilogueCtx| {
                        bias_epi(tile, ctx, bias);
                        gelu_epi(vpu, tile, ctx, division, mode);
                    }
                })
                .collect();
            ph.matmul_epilogue_parallel(pb, threads, &mut epis)?
        };
        let t2 = Instant::now();
        let mut delta = OpCount::default();
        for v in &vpus {
            delta.merge(&v.count);
        }
        self.vpu.count.merge(&delta);
        self.census.gelu.merge(&delta);
        if mode == NonlinearMode::Fast {
            self.tel_fast_mix(&delta);
        }
        self.phase.quantize_pack += t1.duration_since(t0);
        self.phase.gemm += t2.duration_since(t1);
        self.census.matmul_macs += macs;
        self.note_fusion_hit();
        self.tel_fused_gemm(macs, t0, t1, t2, sat0);
        Ok(out)
    }

    /// [`Self::fused_linear_bias_gelu`] with the drain **requantized in
    /// place** into the next GEMM's packed block-major LHS: the f32
    /// intermediate never materialises, its scan never runs, and its
    /// repack never happens — the round trip the fused edge eliminates.
    /// Bit-identical to the composed pipeline including first-error
    /// semantics (pinned in `bfp_arith::packed`).
    fn fused_linear_bias_gelu_requant(
        &mut self,
        ph: &PackedBfp,
        lin: &Linear,
    ) -> Result<PackedBfp, ArithError> {
        let macs = (ph.rows() * ph.cols() * lin.w.cols()) as u64;
        let threads = self.gemm_threads_for(macs);
        let division = self.division;
        let mode = self.nonlinear;
        let qz = self.quantizer;
        let mut vpus: Vec<Vpu> = (0..threads.max(1)).map(|_| self.vpu.fresh()).collect();
        let sat0 = self.sat_mark();
        let t0 = Instant::now();
        let pb = self.rhs_plan(&lin.w)?;
        let t1 = Instant::now();
        let bias = lin.b.as_slice();
        let packed = if threads <= 1 {
            let vpu = &mut vpus[0];
            ph.matmul_epilogue_requant(pb, &qz, |tile, ctx| {
                bias_epi(tile, ctx, bias);
                gelu_epi(vpu, tile, ctx, division, mode);
            })?
        } else {
            let mut epis: Vec<_> = vpus
                .iter_mut()
                .map(|vpu| {
                    move |tile: &mut [f32], ctx: &EpilogueCtx| {
                        bias_epi(tile, ctx, bias);
                        gelu_epi(vpu, tile, ctx, division, mode);
                    }
                })
                .collect();
            ph.matmul_epilogue_requant_parallel(pb, &qz, threads, &mut epis)?
        };
        let t2 = Instant::now();
        let mut delta = OpCount::default();
        for v in &vpus {
            delta.merge(&v.count);
        }
        self.vpu.count.merge(&delta);
        self.census.gelu.merge(&delta);
        if mode == NonlinearMode::Fast {
            self.tel_fast_mix(&delta);
        }
        self.phase.quantize_pack += t1.duration_since(t0);
        self.phase.gemm += t2.duration_since(t1);
        self.census.matmul_macs += macs;
        self.note_fusion_hit();
        self.tel_fused_gemm(macs, t0, t1, t2, sat0);
        Ok(packed)
    }

    /// The composed bias-linear exactly as `Linear::forward` runs it —
    /// the replay target when a fused attempt reports an error.
    fn linear_composed(&mut self, lin: &Linear, x: &MatF32) -> MatF32 {
        let mut y = self.matmul(x, &lin.w);
        for i in 0..y.rows() {
            for j in 0..y.cols() {
                y.set(i, j, y.get(i, j) + lin.b[j]);
            }
        }
        y
    }

    /// A composed bias-linear under a plan: counted as a fusion miss and
    /// wrapped in its `plan.node` span.
    fn miss_linear(&mut self, lin: &Linear, x: &MatF32, node: &str) -> MatF32 {
        let t = Instant::now();
        self.note_fusion_miss();
        let out = self.linear_composed(lin, x);
        self.tel_node(node, t);
        out
    }

    /// A fused bias-linear over a shared packed LHS, replaying composed
    /// on error.
    fn planned_linear(&mut self, ph: &PackedBfp, lin: &Linear, x: &MatF32, node: &str) -> MatF32 {
        let t = Instant::now();
        let out = match self.fused_linear_bias(ph, lin) {
            Ok(out) => out,
            Err(_) => {
                self.note_fusion_miss();
                self.linear_composed(lin, x)
            }
        };
        self.tel_node(node, t);
        out
    }

    /// The composed MLP (fc1 → GELU → fc2 → residual), the replay target
    /// when a fused MLP attempt reports an error before committing any
    /// accounting.
    fn mlp_composed(&mut self, blk: &Block, res1: &MatF32, h2: &MatF32) -> MatF32 {
        let mut mid = self.linear_composed(&blk.fc1, h2);
        self.gelu(&mut mid);
        let mlp = self.linear_composed(&blk.fc2, &mid);
        residual_add(res1, &mlp)
    }

    /// Double-buffered weight prefetch: quantize-pack the plans for
    /// weights this block needs *after* the attention GEMMs on a spare
    /// host thread, overlapping pack with compute. Plans are a pure
    /// function of (quantizer, weight), so a prefetched plan is
    /// bit-identical to one built inline; an errored pack is dropped and
    /// the inline path re-derives (and re-encounters) the error.
    #[allow(clippy::type_complexity)]
    fn spawn_weight_prefetch(
        &self,
        weights: &[&MatF32],
    ) -> Option<std::thread::JoinHandle<Vec<(PlanKey, Result<PackedBfp, ArithError>)>>> {
        if !self.cache_enabled || self.effective_threads() < 2 || self.epilogue != Epilogue::Fused
        {
            return None;
        }
        let missing: Vec<(PlanKey, MatF32)> = weights
            .iter()
            .map(|w| (PlanKey::of(w, self.epilogue), (*w).clone()))
            .filter(|(k, _)| !self.plans.contains_key(k))
            .collect();
        if missing.is_empty() {
            return None;
        }
        let qz = self.quantizer;
        Some(std::thread::spawn(move || {
            missing
                .into_iter()
                .map(|(k, w)| (k, PackedBfp::quantize_pack_rhs(&qz, &w)))
                .collect()
        }))
    }

    /// Join a prefetch and install its plans, counted as plan-cache
    /// misses exactly as inline resolution would have counted them.
    #[allow(clippy::type_complexity)]
    fn absorb_weight_prefetch(
        &mut self,
        handle: Option<std::thread::JoinHandle<Vec<(PlanKey, Result<PackedBfp, ArithError>)>>>,
    ) {
        let Some(h) = handle else { return };
        for (key, packed) in h.join().unwrap_or_default() {
            if let Ok(packed) = packed {
                if !self.plans.contains_key(&key) {
                    self.plan_stats.misses += 1;
                    #[cfg(feature = "telemetry")]
                    if let Some(tel) = &self.tel {
                        tel.cache_misses.inc();
                    }
                    self.plans.insert(key, WeightPlan { packed, hits: 0 });
                }
            }
        }
    }

    /// Execute one encoder block through the compiled plan. Every fused
    /// kernel is bit-identical to the hand-wired sequence; any fused
    /// error replays the composed oracle ops (which do their own census
    /// and fallback accounting), so error behaviour matches the
    /// hand-wired path too.
    fn forward_block_compiled(&mut self, blk: &Block, x: &MatF32, plan: CompiledVitPlan) -> MatF32 {
        let heads = blk.attn.heads();
        let hd = blk.attn.head_dim();
        let seq = x.rows();

        let t = Instant::now();
        let mut h = x.clone();
        self.layernorm(&mut h, &blk.ln1.gamma, &blk.ln1.beta, blk.ln1.eps);
        self.tel_node("ln1", t);

        // Double-buffer: pack the weight plans needed after the attention
        // GEMMs while those GEMMs run.
        let prefetch = if plan.prefetch_weights {
            self.spawn_weight_prefetch(&[&blk.attn.wo.w, &blk.fc1.w, &blk.fc2.w])
        } else {
            None
        };

        // q/k/v: one shared packed LHS (the CSE the planner finds on
        // three MatMuls with an identical LayerNorm dep), fused bias
        // drains.
        let (q, k, v) = if plan.fuse_qkv {
            match self.pack_lhs_timed(&h) {
                Ok(ph) => (
                    self.planned_linear(&ph, &blk.attn.wq, &h, "wq"),
                    self.planned_linear(&ph, &blk.attn.wk, &h, "wk"),
                    self.planned_linear(&ph, &blk.attn.wv, &h, "wv"),
                ),
                Err(_) => (
                    self.miss_linear(&blk.attn.wq, &h, "wq"),
                    self.miss_linear(&blk.attn.wk, &h, "wk"),
                    self.miss_linear(&blk.attn.wv, &h, "wv"),
                ),
            }
        } else {
            (
                self.miss_linear(&blk.attn.wq, &h, "wq"),
                self.miss_linear(&blk.attn.wk, &h, "wk"),
                self.miss_linear(&blk.attn.wv, &h, "wv"),
            )
        };

        // Per-head attention: composed GEMMs (the planner prices these
        // unfused — softmax consumes the whole scores matrix, so there is
        // no elementwise epilogue to fold).
        let mut concat = MatF32::zeros(seq, heads * hd);
        for hi in 0..heads {
            let qh = slice_cols(&q, hi * hd, hd);
            let kh = slice_cols(&k, hi * hd, hd);
            let vh = slice_cols(&v, hi * hd, hd);
            let t = Instant::now();
            let mut scores = self.matmul(&qh, &kh.transpose());
            self.note_fusion_miss();
            self.tel_node(&format!("h{hi}.scores"), t);
            let t = Instant::now();
            self.softmax_rows(&mut scores);
            self.tel_node(&format!("h{hi}.softmax"), t);
            let t = Instant::now();
            let ctx = self.matmul(&scores, &vh);
            self.note_fusion_miss();
            self.tel_node(&format!("h{hi}.ctx"), t);
            for i in 0..seq {
                for j in 0..hd {
                    concat.set(i, hi * hd + j, ctx.get(i, j));
                }
            }
        }

        self.absorb_weight_prefetch(prefetch);

        // Output projection + first residual.
        let t = Instant::now();
        let res1 = if plan.fuse_wo_residual {
            let pc = self.pack_lhs_timed(&concat);
            let fused = match pc {
                Ok(pc) => self.fused_linear_bias_residual(&pc, &blk.attn.wo, x),
                Err(e) => Err(e),
            };
            match fused {
                Ok(r) => r,
                Err(_) => {
                    self.note_fusion_miss();
                    let wo = self.linear_composed(&blk.attn.wo, &concat);
                    residual_add(x, &wo)
                }
            }
        } else {
            self.note_fusion_miss();
            let wo = self.linear_composed(&blk.attn.wo, &concat);
            residual_add(x, &wo)
        };
        self.tel_node("wo", t);

        let t = Instant::now();
        let mut h2 = res1.clone();
        self.layernorm(&mut h2, &blk.ln2.gamma, &blk.ln2.beta, blk.ln2.eps);
        self.tel_node("ln2", t);

        self.planned_mlp(blk, &res1, &h2, plan)
    }

    /// The MLP half of the compiled block: fc1 (+bias+GELU fused, with
    /// requantize-into-packed when fc2 is also fused) then fc2
    /// (+bias+residual fused).
    fn planned_mlp(
        &mut self,
        blk: &Block,
        res1: &MatF32,
        h2: &MatF32,
        plan: CompiledVitPlan,
    ) -> MatF32 {
        if !plan.fuse_fc1_gelu {
            // Composed fc1 + GELU; fc2 may still fuse its drain.
            let t = Instant::now();
            self.note_fusion_miss();
            let mut mid = self.linear_composed(&blk.fc1, h2);
            self.tel_node("fc1", t);
            let t = Instant::now();
            self.gelu(&mut mid);
            self.tel_node("gelu", t);
            return self.planned_fc2(blk, res1, &mid, plan);
        }

        let Ok(p2) = self.pack_lhs_timed(h2) else {
            self.note_fusion_miss();
            self.note_fusion_miss();
            return self.mlp_composed(blk, res1, h2);
        };

        if plan.fuse_fc2_residual && blk.fc1.w.cols() == blk.fc2.w.rows() {
            // Pre-resolve fc2's weight plan: after this, the fused fc2
            // over the requantized intermediate cannot fail (shapes
            // pre-checked, plan content-cached), so it is safe for the
            // intermediate to exist only in packed form.
            let tq = Instant::now();
            let fc2_ready = self.rhs_plan(&blk.fc2.w).is_ok();
            self.phase.quantize_pack += tq.elapsed();
            if fc2_ready {
                let t = Instant::now();
                match self.fused_linear_bias_gelu_requant(&p2, &blk.fc1) {
                    Ok(pmid) => {
                        self.tel_node("fc1+gelu", t);
                        let t = Instant::now();
                        match self.fused_linear_bias_residual(&pmid, &blk.fc2, res1) {
                            Ok(o) => {
                                self.tel_node("fc2", t);
                                return o;
                            }
                            Err(_) => {
                                // Unreachable given the pre-checks; replay
                                // the composed oracle for safety.
                                self.note_fusion_miss();
                                self.tel_node("fc2", t);
                                return self.mlp_composed(blk, res1, h2);
                            }
                        }
                    }
                    Err(_) => {
                        // Requant refused (e.g. non-finite GELU output
                        // under a strict saturation policy). Nothing was
                        // committed; the composed replay reproduces the
                        // hand-wired accounting including fc2's fallback.
                        self.note_fusion_miss();
                        self.note_fusion_miss();
                        self.tel_node("fc1+gelu", t);
                        return self.mlp_composed(blk, res1, h2);
                    }
                }
            }
            // fc2's weights cannot quantize: fall through to the f32-out
            // fused fc1; the composed fc2 will count its own fallback.
        }

        let t = Instant::now();
        let mid = match self.fused_linear_bias_gelu(&p2, &blk.fc1) {
            Ok(mid) => {
                self.tel_node("fc1+gelu", t);
                mid
            }
            Err(_) => {
                self.note_fusion_miss();
                self.tel_node("fc1+gelu", t);
                let mut mid = self.linear_composed(&blk.fc1, h2);
                let tg = Instant::now();
                self.gelu(&mut mid);
                self.tel_node("gelu", tg);
                mid
            }
        };
        self.planned_fc2(blk, res1, &mid, plan)
    }

    /// fc2 over an f32 intermediate: fused bias+residual drain when the
    /// plan asks for it, composed otherwise.
    fn planned_fc2(&mut self, blk: &Block, res1: &MatF32, mid: &MatF32, plan: CompiledVitPlan) -> MatF32 {
        let t = Instant::now();
        let out = if plan.fuse_fc2_residual {
            let pm = self.pack_lhs_timed(mid);
            let fused = match pm {
                Ok(pm) => self.fused_linear_bias_residual(&pm, &blk.fc2, res1),
                Err(e) => Err(e),
            };
            match fused {
                Ok(o) => o,
                Err(_) => {
                    self.note_fusion_miss();
                    let y = self.linear_composed(&blk.fc2, mid);
                    residual_add(res1, &y)
                }
            }
        } else {
            self.note_fusion_miss();
            let y = self.linear_composed(&blk.fc2, mid);
            residual_add(res1, &y)
        };
        self.tel_node("fc2", t);
        out
    }
}

/// Bias-add drain over one hot output tile: the element order of the
/// composed `Linear::forward` bias loop restricted to the tile.
#[inline]
fn bias_epi(tile: &mut [f32], ctx: &EpilogueCtx, bias: &[f32]) {
    for i in 0..ctx.imax {
        let row = &mut tile[i * ctx.b..][..ctx.jmax];
        for (j, v) in row.iter_mut().enumerate() {
            *v += bias[ctx.c0 + j];
        }
    }
}

/// Bias + residual drain: `skip + (y + bias)`, the exact operand order of
/// `Linear::forward` followed by `residual_add(skip, y)`.
#[inline]
fn bias_residual_epi(tile: &mut [f32], ctx: &EpilogueCtx, bias: &[f32], skip: &MatF32) {
    for i in 0..ctx.imax {
        let r = ctx.r0 + i;
        let row = &mut tile[i * ctx.b..][..ctx.jmax];
        for (j, v) in row.iter_mut().enumerate() {
            let y = *v + bias[ctx.c0 + j];
            *v = skip.get(r, ctx.c0 + j) + y;
        }
    }
}

/// GELU drain over one hot tile. Full-width tiles (the common case —
/// every model dimension here is a multiple of the block) take a single
/// VPU slice call over the contiguous valid region; only right-edge
/// partial tiles pay one call per row. GELU is element-independent and
/// the VPU op cost is per-element, so tile-order evaluation is bit- and
/// count-identical to the composed whole-matrix pass either way.
#[inline]
fn gelu_epi(
    vpu: &mut Vpu,
    tile: &mut [f32],
    ctx: &EpilogueCtx,
    division: DivisionPolicy,
    mode: NonlinearMode,
) {
    if ctx.jmax == ctx.b {
        vpu.gelu_slice(&mut tile[..ctx.imax * ctx.b], division, mode);
    } else {
        for i in 0..ctx.imax {
            vpu.gelu_slice(&mut tile[i * ctx.b..][..ctx.jmax], division, mode);
        }
    }
}

impl Engine for MixedEngine {
    fn matmul(&mut self, a: &MatF32, b: &MatF32) -> MatF32 {
        // Packed fast path: fused-quantize the activation side, resolve
        // the RHS through the weight-plan cache, and run the (sharded)
        // packed kernel — bit-identical to `BfpMatrix::try_matmul`, so
        // caching, fusing, and threading change wall-clock only, never a
        // single output bit.
        #[cfg(feature = "telemetry")]
        let _mm_span = self.tel.as_ref().map(|tel| {
            let mut sp = tel.tracer.span("engine.matmul", "engine");
            sp.set_arg("m", a.rows() as u64);
            sp.set_arg("k", a.cols() as u64);
            sp.set_arg("n", b.cols() as u64);
            sp
        });
        #[cfg(feature = "telemetry")]
        let sat0 = bfp_arith::telemetry::saturation_count();
        let t0 = Instant::now();
        let pa = match self.epilogue {
            Epilogue::Fused => PackedBfp::quantize_pack_lhs(&self.quantizer, a),
            Epilogue::Reference => self
                .quantizer
                .quantize_reference(a)
                .map(|qa| PackedBfp::pack_lhs(&qa)),
        };
        let pa = match pa {
            Ok(pa) => pa,
            // A non-finite operand cannot be expressed in bfp8; degrade
            // this GEMM to the fp32 reference path and count it, matching
            // the per-layer fallback policy of the scheduler.
            Err(_) => {
                self.census.fp32_fallbacks += 1;
                self.tel_fallback();
                return a.matmul(b);
            }
        };
        let macs = (a.rows() * a.cols() * b.cols()) as u64;
        let threads = if macs < GEMM_PARALLEL_MACS {
            1
        } else {
            self.effective_threads()
        };
        let gemm = match self.rhs_plan(b) {
            Ok(pb) => {
                let t1 = Instant::now();
                Some((pa.matmul_parallel(pb, threads), t1))
            }
            Err(_) => None,
        };
        // Any failure past quantization (operand shape/side/block errors)
        // degrades to the counted fp32 fallback — same contract as the
        // quantization arms above, never a panic of this layer's making.
        let Some((result, t1)) = gemm else {
            self.census.fp32_fallbacks += 1;
            self.tel_fallback();
            return a.matmul(b);
        };
        let out = match result {
            Ok(out) => out,
            Err(_) => {
                self.census.fp32_fallbacks += 1;
                self.tel_fallback();
                return a.matmul(b);
            }
        };
        self.phase.quantize_pack += t1.duration_since(t0);
        self.phase.gemm += t1.elapsed();
        self.census.matmul_macs += macs;
        #[cfg(feature = "telemetry")]
        if let Some(tel) = &self.tel {
            let t2 = Instant::now();
            // The gemm interval covers the packed kernel end to end:
            // int8 MACs, aligned accumulate, and the dequantize epilogue.
            tel.tracer.complete_between("quantize_pack", "engine", t0, t1);
            tel.tracer
                .complete_between_with("gemm", "engine", t1, t2, vec![("macs", macs)]);
            tel.gemms.inc();
            tel.macs.add(macs);
            tel.quantize_pack_ns
                .record_duration(t1.duration_since(t0));
            tel.gemm_ns.record_duration(t2.duration_since(t1));
            // Saturation is a process-wide tally (the quantizer is deep
            // below this crate); the delta attributes this GEMM's share,
            // exactly under single-engine use and approximately when
            // several engines quantize concurrently.
            tel.saturated
                .add(bfp_arith::telemetry::saturation_count().saturating_sub(sat0));
        }
        out
    }

    fn softmax_rows(&mut self, m: &mut MatF32) {
        let t0 = Instant::now();
        let cols = m.cols();
        if cols == 0 {
            return;
        }
        let division = self.division;
        let mode = self.nonlinear;
        let threads = self.vpu_threads_for(m.rows() * cols);
        let delta = self.vpu_parallel(m.data_mut(), cols, threads, |vpu, shard| {
            vpu.softmax_rows_batch(shard, cols, division, mode)
        });
        self.census.softmax.merge(&delta);
        if mode == NonlinearMode::Fast {
            self.tel_fast_mix(&delta);
        }
        self.phase.softmax += t0.elapsed();
        self.tel_phase("vpu.softmax", t0);
    }

    fn gelu(&mut self, m: &mut MatF32) {
        let t0 = Instant::now();
        let division = self.division;
        let mode = self.nonlinear;
        let threads = self.vpu_threads_for(m.rows() * m.cols());
        let delta = self.vpu_parallel(m.data_mut(), 1, threads, |vpu, shard| {
            vpu.gelu_slice(shard, division, mode)
        });
        self.census.gelu.merge(&delta);
        if mode == NonlinearMode::Fast {
            self.tel_fast_mix(&delta);
        }
        self.phase.gelu += t0.elapsed();
        self.tel_phase("vpu.gelu", t0);
    }

    fn layernorm(&mut self, m: &mut MatF32, gamma: &[f32], beta: &[f32], eps: f32) {
        let t0 = Instant::now();
        let cols = m.cols();
        if cols == 0 {
            return;
        }
        let division = self.division;
        let mode = self.nonlinear;
        let threads = self.vpu_threads_for(m.rows() * cols);
        let delta = self.vpu_parallel(m.data_mut(), cols, threads, |vpu, shard| {
            vpu.layernorm_rows_batch(shard, cols, gamma, beta, eps, division, mode)
        });
        self.census.layernorm.merge(&delta);
        if mode == NonlinearMode::Fast {
            self.tel_fast_mix(&delta);
        }
        self.phase.layernorm += t0.elapsed();
        self.tel_phase("vpu.layernorm", t0);
    }

    fn forward_block_planned(&mut self, block: &Block, x: &MatF32) -> Option<MatF32> {
        let plan = self.vit_plan?;
        // The reference epilogue *is* the oracle configuration; it never
        // routes through the compiled plan even if one is installed.
        if self.epilogue != Epilogue::Fused {
            return None;
        }
        Some(self.forward_block_compiled(block, x, plan))
    }
}

/// The comparison baseline: GEMMs in **per-tensor symmetric int8** (what
/// the Fig. 6 int8 design variant computes) with reference-precision
/// non-linear layers. Exists so model-level experiments can quantify the
/// accuracy cost of per-tensor scaling against bfp8's per-block exponents
/// — the paper's motivation for choosing block floating point.
#[derive(Debug, Default, Clone)]
pub struct Int8Engine {
    macs: u64,
    fallbacks: u64,
}

impl Int8Engine {
    /// A fresh engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// int8 MACs executed so far.
    pub fn macs(&self) -> u64 {
        self.macs
    }

    /// GEMMs degraded to the fp32 reference path (non-finite operands).
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }
}

impl Engine for Int8Engine {
    fn matmul(&mut self, a: &MatF32, b: &MatF32) -> MatF32 {
        match (Int8Tensor::quantize(a), Int8Tensor::quantize(b)) {
            (Ok(qa), Ok(qb)) => {
                self.macs += (a.rows() * a.cols() * b.cols()) as u64;
                qa.matmul(&qb)
            }
            _ => {
                self.fallbacks += 1;
                a.matmul(b)
            }
        }
    }

    fn softmax_rows(&mut self, m: &mut MatF32) {
        reference::softmax_rows(m);
    }

    fn gelu(&mut self, m: &mut MatF32) {
        reference::gelu_rows(m);
    }

    fn layernorm(&mut self, m: &mut MatF32, gamma: &[f32], beta: &[f32], eps: f32) {
        reference::layernorm_rows(m, gamma, beta, eps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vpu::cost;
    use bfp_arith::stats::ErrorStats;

    #[test]
    fn mixed_matmul_tracks_reference() {
        let a = MatF32::from_fn(16, 24, |i, j| ((i * 5 + j) as f32 * 0.11).sin());
        let b = MatF32::from_fn(24, 8, |i, j| ((i + j * 7) as f32 * 0.07).cos());
        let mut mixed = MixedEngine::new();
        let mut reference = RefEngine;
        let got = mixed.matmul(&a, &b);
        let want = reference.matmul(&a, &b);
        let mut s = ErrorStats::new();
        s.push_slices(got.data(), want.data());
        assert!(s.sqnr_db() > 28.0, "{s}");
        assert_eq!(mixed.census().matmul_macs, 16 * 24 * 8);
    }

    #[test]
    fn census_attribution_per_kind() {
        let mut e = MixedEngine::new();
        let mut m = MatF32::from_fn(3, 5, |i, j| (i as f32) - (j as f32) * 0.5);
        e.softmax_rows(&mut m);
        let c = e.census();
        assert_eq!(c.softmax, {
            let mut want = OpCount::default();
            for _ in 0..3 {
                want.merge(&cost::softmax_row(5));
            }
            want
        });
        assert_eq!(c.gelu, OpCount::default());
        assert_eq!(c.layernorm, OpCount::default());

        let mut g = MatF32::from_fn(2, 4, |i, j| (i + j) as f32 * 0.3 - 1.0);
        e.gelu(&mut g);
        let c = e.census();
        let mut want = OpCount::default();
        for _ in 0..8 {
            want.merge(&cost::gelu());
        }
        assert_eq!(c.gelu, want);
    }

    #[test]
    fn mixed_nonlinear_tracks_reference() {
        let src = MatF32::from_fn(4, 32, |i, j| ((i * 32 + j) as f32 * 0.1).sin() * 2.0);
        let mut a = src.clone();
        let mut b = src.clone();
        let mut mixed = MixedEngine::new();
        let mut rf = RefEngine;
        mixed.softmax_rows(&mut a);
        rf.softmax_rows(&mut b);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn fp32_fraction_is_small_for_gemm_heavy_workloads() {
        let mut e = MixedEngine::new();
        let a = MatF32::from_fn(64, 64, |i, j| ((i ^ j) as f32) * 0.01);
        let _ = e.matmul(&a, &a);
        let mut m = MatF32::from_fn(4, 16, |_, j| j as f32 * 0.2);
        e.softmax_rows(&mut m);
        let frac = e.census().fp32_fraction();
        assert!(frac > 0.0 && frac < 0.01, "fp32 fraction {frac}");
    }

    #[test]
    fn take_census_resets() {
        let mut e = MixedEngine::new();
        let a = MatF32::from_fn(8, 8, |_, _| 1.0);
        let _ = e.matmul(&a, &a);
        assert!(e.take_census().matmul_macs > 0);
        assert_eq!(e.census(), OpCensus::default());
    }

    #[test]
    fn host_free_engine_uses_no_host_ops_and_tracks_fp32() {
        use crate::config::VitConfig;
        use crate::model::VitModel;
        let model = VitModel::new_random(VitConfig::tiny_test(), 19);
        let x = model.synthetic_input(4);
        let want = model.forward(&mut RefEngine, &x);

        let mut chip = MixedEngine::host_free();
        let got = model.forward(&mut chip, &x);
        let census = chip.take_census();
        assert_eq!(census.host_ops(), 0, "host-free engine must never call out");

        let mut s = ErrorStats::new();
        s.push_slices(got.data(), want.data());
        assert!(s.sqnr_db() > 15.0, "host-free fidelity: {s}");

        // And it stays numerically close to the host-division engine.
        let host_out = model.forward(&mut MixedEngine::new(), &x);
        let mut d = ErrorStats::new();
        d.push_slices(got.data(), host_out.data());
        assert!(d.sqnr_db() > 40.0, "NR kernels track host division: {d}");
    }

    #[test]
    fn non_finite_gemm_degrades_to_fp32_and_is_counted() {
        let mut e = MixedEngine::new();
        let mut a = MatF32::from_fn(8, 8, |i, j| (i + j) as f32 * 0.1);
        a.set(2, 5, f32::INFINITY);
        let b = MatF32::from_fn(8, 8, |i, j| (i as f32 - j as f32) * 0.2);
        // NaN != NaN, so compare the fp32 results bit-for-bit.
        let bits_eq = |x: &MatF32, y: &MatF32| {
            x.data()
                .iter()
                .zip(y.data())
                .all(|(p, q)| p.to_bits() == q.to_bits())
        };
        let got = e.matmul(&a, &b);
        // Falls back to the reference fp32 path instead of panicking…
        assert!(bits_eq(&got, &a.matmul(&b)));
        // …and the census records the degradation, with no bfp8 MACs.
        assert_eq!(e.census().fp32_fallbacks, 1);
        assert_eq!(e.census().matmul_macs, 0);

        let mut i8e = Int8Engine::new();
        let got = i8e.matmul(&a, &b);
        assert!(bits_eq(&got, &a.matmul(&b)));
        assert_eq!(i8e.fallbacks(), 1);
        assert_eq!(i8e.macs(), 0);
    }

    #[test]
    fn int8_engine_runs_and_counts() {
        let mut e = Int8Engine::new();
        let a = MatF32::from_fn(8, 8, |i, j| (i + j) as f32 * 0.1);
        let out = e.matmul(&a, &a);
        assert_eq!(e.macs(), 512);
        assert_eq!((out.rows(), out.cols()), (8, 8));
    }

    #[test]
    fn bfp8_beats_int8_on_outlier_models() {
        // Model-level version of the motivation experiment: inject hot
        // channels into the activations via large weight columns; the
        // bfp8 engine tracks fp32 better than per-tensor int8.
        use crate::config::VitConfig;
        use crate::model::VitModel;
        let model = {
            let mut m = VitModel::new_random(VitConfig::tiny_test(), 13);
            // Make a few fc1 output channels hot: downstream activations
            // develop the outlier pattern real Transformers show.
            for blk in &mut m.blocks {
                let cols = blk.fc1.w.cols();
                for i in 0..blk.fc1.w.rows() {
                    for j in (0..cols).step_by(17) {
                        let v = blk.fc1.w.get(i, j);
                        blk.fc1.w.set(i, j, v * 24.0);
                    }
                }
            }
            m
        };
        let x = model.synthetic_input(3);
        let want = model.forward(&mut RefEngine, &x);
        let bfp = model.forward(&mut MixedEngine::new(), &x);
        let int8 = model.forward(&mut Int8Engine::new(), &x);
        let sqnr = |got: &MatF32| {
            let mut s = ErrorStats::new();
            s.push_slices(got.data(), want.data());
            s.sqnr_db()
        };
        let (sb, si) = (sqnr(&bfp), sqnr(&int8));
        assert!(
            sb > si,
            "bfp8 {sb:.1} dB must beat per-tensor int8 {si:.1} dB"
        );
    }

    #[test]
    fn cached_and_uncached_engines_are_bit_identical() {
        use crate::config::VitConfig;
        use crate::model::VitModel;
        let model = VitModel::new_random(VitConfig::tiny_test(), 29);
        let x = model.synthetic_input(5);

        let mut cached = MixedEngine::new();
        let mut uncached = MixedEngine::without_weight_cache();
        // Run the cached engine twice so the second pass is served from
        // the plan cache; all three outputs must agree bit-for-bit.
        let first = model.forward(&mut cached, &x);
        let warm = model.forward(&mut cached, &x);
        let cold = model.forward(&mut uncached, &x);
        let stats = cached.plan_cache_stats();
        assert!(stats.hits > 0, "second pass must hit the cache: {stats:?}");
        for ((a, b), c) in first.data().iter().zip(warm.data()).zip(cold.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
            assert_eq!(a.to_bits(), c.to_bits());
        }
    }

    #[test]
    fn engine_matmul_is_bit_identical_to_naive_kernel() {
        let q = Quantizer::paper();
        let a = MatF32::from_fn(21, 19, |i, j| ((i * 3 + j * 5) as f32 * 0.17).sin() * 40.0);
        let b = MatF32::from_fn(19, 11, |i, j| ((i as f32 - j as f32) * 0.23).cos() * 0.02);
        let want = q.quantize(&a).unwrap().matmul(&q.quantize(&b).unwrap());
        let mut e = MixedEngine::new();
        for _ in 0..2 {
            let got = e.matmul(&a, &b);
            for (x, y) in got.data().iter().zip(want.data()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert_eq!(e.plan_cache_stats().hits, 1);
        assert_eq!(e.plan_cache_stats().misses, 1);
    }

    #[test]
    fn weight_plans_are_reused_across_tokens_and_reported() {
        let mut e = MixedEngine::new();
        let w = MatF32::from_fn(16, 16, |i, j| ((i * j) as f32 * 0.01).sin());
        for t in 0..5 {
            let x = MatF32::from_fn(4, 16, |i, j| (i + j + t) as f32 * 0.1);
            let _ = e.matmul(&x, &w);
        }
        let s = e.plan_cache_stats();
        assert_eq!(s.misses, 1, "the constant weight quantizes once: {s:?}");
        assert_eq!(s.hits, 4);
        assert_eq!(s.entries, 1);
        assert!(s.bytes > 0);
        e.clear_weight_cache();
        assert_eq!(e.plan_cache_stats().entries, 0);
    }

    #[test]
    fn plan_cache_eviction_keeps_hot_entries_bounded() {
        let mut e = MixedEngine::new();
        let x = MatF32::from_fn(2, 8, |i, j| (i + j) as f32 * 0.3);
        let hot = MatF32::from_fn(8, 8, |i, j| (i * 8 + j) as f32 * 0.05);
        // Interleave one hot weight with a churn of one-shot matrices.
        for n in 0..(3 * PLAN_CACHE_CAP as u32) {
            let _ = e.matmul(&x, &hot);
            let churn = MatF32::from_fn(8, 8, |i, j| (i * 8 + j) as f32 + n as f32 * 0.7);
            let _ = e.matmul(&x, &churn);
        }
        let s = e.plan_cache_stats();
        assert!(
            s.entries <= PLAN_CACHE_CAP + 1,
            "cache stays bounded: {s:?}"
        );
        assert!(s.evictions > 0, "churn must be swept: {s:?}");
        assert!(
            s.hits >= 3 * PLAN_CACHE_CAP as u64 - 1,
            "hot weight survives sweeps: {s:?}"
        );
    }

    #[test]
    fn plan_cache_stats_display_reports_evictions() {
        let s = PlanCacheStats {
            hits: 9,
            misses: 4,
            evictions: 3,
            entries: 2,
            bytes: 640,
        };
        let text = s.to_string();
        assert!(text.contains("evictions"), "{text}");
        assert!(text.contains("weight-plan cache"), "{text}");
        // One data row carrying the counter values, in header order.
        let row = text.lines().nth(4).expect("data row");
        let cells: Vec<&str> = row.split('|').map(str::trim).collect();
        assert_eq!(cells, ["9", "4", "3", "2", "640"], "{text}");
    }

    #[test]
    fn plan_cache_stats_publish_lands_in_registry() {
        let s = PlanCacheStats {
            hits: 9,
            misses: 4,
            evictions: 3,
            entries: 2,
            bytes: 640,
        };
        let reg = Registry::new();
        s.publish(&reg);
        s.publish(&reg); // idempotent: gauges overwrite
        let text = reg.snapshot().to_prometheus_text();
        assert!(text.contains("plan_cache_hits 9"), "{text}");
        assert!(text.contains("plan_cache_resident_bytes 640"), "{text}");
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn attached_telemetry_records_spans_and_counters() {
        use bfp_telemetry::EventKind;
        let reg = Registry::new();
        let tracer = Tracer::new();
        let mut e = MixedEngine::new();
        e.attach_telemetry(tracer.clone(), &reg);
        let a = MatF32::from_fn(16, 16, |i, j| ((i * 16 + j) as f32 * 0.01).sin());
        let _ = e.matmul(&a, &a);
        let _ = e.matmul(&a, &a); // second RHS resolve hits the cache
        let mut m = MatF32::from_fn(4, 16, |i, j| (i + j) as f32 * 0.1);
        e.softmax_rows(&mut m);

        assert_eq!(reg.counter("engine_gemms_total").get(), 2);
        assert_eq!(reg.counter("engine_macs_total").get(), 2 * 16 * 16 * 16);
        assert_eq!(reg.counter("engine_plan_cache_hits_total").get(), 1);
        assert_eq!(reg.counter("engine_plan_cache_misses_total").get(), 1);
        assert_eq!(reg.histogram("engine_gemm_ns").count(), 2);

        let events = tracer.drain();
        let matmuls: Vec<_> = events.iter().filter(|e| e.name == "engine.matmul").collect();
        assert_eq!(matmuls.len(), 2);
        // Phase spans are children of their matmul span.
        let phases: Vec<_> = events
            .iter()
            .filter(|e| e.name == "quantize_pack" || e.name == "gemm")
            .collect();
        assert_eq!(phases.len(), 4);
        for p in &phases {
            let parent = p.parent.expect("phase has a parent");
            assert!(matmuls.iter().any(|m| m.id == parent));
            assert!(matches!(p.kind, EventKind::Span { .. }));
        }
        assert!(events.iter().any(|e| e.name == "vpu.softmax"));
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn fast_mix_counters_equal_census() {
        // The engine_fast_nl_* registry counters and the OpCensus are
        // accumulated by independent code paths (tel_fast_mix vs the
        // census merge); after any Fast-mode workload they must agree,
        // which is what lets operators cross-check live telemetry
        // against the modelled VPU cycle cost.
        let reg = Registry::new();
        let tracer = Tracer::new();
        let mut e = MixedEngine::fast_nonlinear().with_threads(3);
        e.attach_telemetry(tracer, &reg);
        let mut m = MatF32::from_fn(17, 33, |i, j| ((i * 33 + j) as f32 * 0.03).sin() * 4.0);
        e.softmax_rows(&mut m);
        e.gelu(&mut m);
        let gamma = vec![1.0; 33];
        let beta = vec![0.0; 33];
        e.layernorm(&mut m, &gamma, &beta, 1e-5);

        let c = e.take_census();
        let mut mix = c.softmax;
        mix.merge(&c.gelu);
        mix.merge(&c.layernorm);
        assert!(mix.lut > 0, "fast path must take LUT hits: {mix:?}");
        assert_eq!(reg.counter("engine_fast_nl_fp_mul_total").get(), mix.fp_mul);
        assert_eq!(reg.counter("engine_fast_nl_fp_add_total").get(), mix.fp_add);
        assert_eq!(
            reg.counter("engine_fast_nl_exp_adjust_total").get(),
            mix.exp_adjust
        );
        assert_eq!(reg.counter("engine_fast_nl_lut_total").get(), mix.lut);
    }

    #[test]
    fn eviction_under_all_hot_pressure_is_deterministic() {
        // Fill the cache past capacity with entries that are ALL hot at
        // sweep time: the sweep alone cannot make room and the engine
        // must choose victims. Two engines (distinct HashMap seeds) fed
        // the identical workload must evict the identical entries — the
        // content-key tie-break, observable through subsequent hit/miss
        // patterns.
        let weights: Vec<MatF32> = (0..PLAN_CACHE_CAP + 8)
            .map(|n| MatF32::from_fn(8, 8, |i, j| (i * 8 + j) as f32 * 0.01 + n as f32))
            .collect();
        let x = MatF32::from_fn(2, 8, |i, j| (i + j) as f32 * 0.1);
        let run = |e: &mut MixedEngine| -> Vec<u64> {
            // Touch every weight twice so every entry is hot, overflowing
            // the cap and forcing tie-break evictions along the way.
            for w in &weights {
                let _ = e.matmul(&x, w);
                let _ = e.matmul(&x, w);
            }
            // Probe: which of the first 16 weights survived?
            (0..16)
                .map(|i| {
                    let before = e.plan_cache_stats().hits;
                    let _ = e.matmul(&x, &weights[i]);
                    e.plan_cache_stats().hits - before
                })
                .collect()
        };
        let mut e1 = MixedEngine::new();
        let mut e2 = MixedEngine::new();
        let (p1, p2) = (run(&mut e1), run(&mut e2));
        assert_eq!(p1, p2, "survivor set must not depend on map seeding");
        let (s1, s2) = (e1.plan_cache_stats(), e2.plan_cache_stats());
        assert_eq!(s1, s2);
        assert!(s1.evictions > 0, "pressure must evict: {s1:?}");
        assert!(s1.entries < PLAN_CACHE_CAP + 1, "cache stays bounded");
    }

    #[test]
    fn shape_mismatched_matmul_falls_back_instead_of_engine_panicking() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        // Inner dimensions disagree: the packed kernel reports a typed
        // error. The engine must degrade to the counted fp32 fallback —
        // not panic with its own "matmul: …" message as it used to — so
        // the failure surface is exactly the one RefEngine has (the f32
        // matmul's own assertion).
        let a = MatF32::from_fn(8, 16, |i, j| (i + j) as f32 * 0.1);
        let b = MatF32::from_fn(24, 8, |i, j| (i as f32 - j as f32) * 0.2);
        let mut e = MixedEngine::new();
        let payload = catch_unwind(AssertUnwindSafe(|| {
            let _ = e.matmul(&a, &b);
        }))
        .expect_err("inner-dimension mismatch still fails, via the fp32 path");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| payload.downcast_ref::<&str>().unwrap_or(&"?").to_string());
        assert!(
            msg.contains("matmul inner dimensions"),
            "must be the f32 matmul's own panic, not the engine's: {msg}"
        );
        // The degradation was recorded before the fp32 path ran.
        assert_eq!(e.census().fp32_fallbacks, 1);
        assert_eq!(e.census().matmul_macs, 0);
        // And the engine stays usable afterwards.
        let ok = MatF32::from_fn(16, 8, |i, j| (i * 8 + j) as f32 * 0.01);
        let _ = e.matmul(&a, &ok);
        assert_eq!(e.census().matmul_macs, (8 * 16 * 8) as u64);
    }

    #[test]
    fn threaded_engines_are_bit_identical_to_serial() {
        use crate::config::VitConfig;
        use crate::model::VitModel;
        let model = VitModel::new_random(VitConfig::tiny_test(), 31);
        let x = model.synthetic_input(6);
        let want = model.forward(&mut MixedEngine::new().with_threads(1), &x);
        for threads in [2usize, 3, 8] {
            let mut e = MixedEngine::new().with_threads(threads);
            let got = model.forward(&mut e, &x);
            for (p, q) in got.data().iter().zip(want.data()) {
                assert_eq!(p.to_bits(), q.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn baseline_scalar_engine_is_bit_identical_and_serial() {
        use crate::config::VitConfig;
        use crate::model::VitModel;
        let model = VitModel::new_random(VitConfig::tiny_test(), 37);
        let x = model.synthetic_input(4);
        let mut base = MixedEngine::baseline_scalar();
        assert_eq!(base.threads(), 1);
        let want = model.forward(&mut MixedEngine::new(), &x);
        let got = model.forward(&mut base, &x);
        for (p, q) in got.data().iter().zip(want.data()) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn parallel_census_matches_serial_census() {
        // OpCounts are merged from per-shard VPUs in shard order; the
        // totals must agree exactly with the single-thread counts even
        // when the batch is large enough to actually fork.
        let src = MatF32::from_fn(64, 64, |i, j| ((i * 64 + j) as f32 * 0.003).sin() * 3.0);
        let gamma = vec![1.0f32; 64];
        let beta = vec![0.1f32; 64];
        let run = |threads: usize| -> (OpCensus, MatF32) {
            let mut e = MixedEngine::new().with_threads(threads);
            let mut m = src.clone();
            e.softmax_rows(&mut m);
            e.gelu(&mut m);
            e.layernorm(&mut m, &gamma, &beta, 1e-6);
            (e.take_census(), m)
        };
        let (c1, m1) = run(1);
        let (c4, m4) = run(4);
        assert_eq!(c1, c4);
        for (p, q) in m1.data().iter().zip(m4.data()) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn phase_times_cover_the_engine_calls() {
        let mut e = MixedEngine::new();
        let a = MatF32::from_fn(32, 32, |i, j| ((i ^ j) as f32) * 0.02);
        let _ = e.matmul(&a, &a);
        let mut m = MatF32::from_fn(8, 32, |i, j| (i + j) as f32 * 0.05);
        e.softmax_rows(&mut m);
        e.gelu(&mut m);
        let gamma = vec![1.0f32; 32];
        let beta = vec![0.0f32; 32];
        e.layernorm(&mut m, &gamma, &beta, 1e-6);
        let t = e.take_phase_times();
        assert!(t.softmax > Duration::ZERO);
        assert!(t.gelu > Duration::ZERO);
        assert!(t.layernorm > Duration::ZERO);
        assert!(t.accounted() >= t.softmax + t.gemm);
        // take_phase_times resets.
        assert_eq!(e.phase_times(), PhaseTimes::default());
    }

    #[test]
    fn compiled_plan_is_bit_identical_to_hand_wired_for_full_model() {
        // The tentpole invariant: routing `Block::forward` through the
        // compiled plan (shared q/k/v pack, fused bias / bias+GELU /
        // bias+residual drains, requantize-into-packed MLP edge) changes
        // wall-clock only — never an output bit, never a census count —
        // for either nonlinear family, any thread budget, and both the
        // all-on and all-off plans.
        use crate::config::VitConfig;
        use crate::model::VitModel;
        let model = VitModel::new_random(VitConfig::tiny_test(), 11);
        let x = model.synthetic_input(12);
        for mode in [NonlinearMode::Exact, NonlinearMode::Fast] {
            let mut oracle = MixedEngine::new().with_threads(1).with_nonlinear(mode);
            let want = model.forward(&mut oracle, &x);
            let want_census = oracle.census();
            for threads in [1usize, 2, 4] {
                for plan in [CompiledVitPlan::fuse_all(), CompiledVitPlan::unfused()] {
                    let mut e = MixedEngine::new()
                        .with_threads(threads)
                        .with_nonlinear(mode)
                        .with_vit_plan(plan);
                    let got = model.forward(&mut e, &x);
                    for (p, q) in got.data().iter().zip(want.data()) {
                        assert_eq!(
                            p.to_bits(),
                            q.to_bits(),
                            "mode {mode:?} threads {threads} plan {plan:?}"
                        );
                    }
                    assert_eq!(
                        e.census(),
                        want_census,
                        "census must not see the plan: mode {mode:?} threads {threads} plan {plan:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn node_timing_accumulates_only_when_enabled() {
        use crate::config::VitConfig;
        use crate::model::VitModel;
        let cfg = VitConfig::tiny_test();
        let model = VitModel::new_random(cfg, 31);
        let x = model.synthetic_input(5);

        // Off by default: the compiled path records nothing.
        let mut e = MixedEngine::new().with_vit_plan(CompiledVitPlan::fuse_all());
        assert!(!e.node_timing_enabled());
        let _ = model.forward(&mut e, &x);
        assert!(e.take_node_times().is_empty());

        e.enable_node_timing();
        let _ = model.forward(&mut e, &x);
        let times = e.take_node_times();
        for key in ["ln1", "wq", "wk", "wv", "h0.softmax", "wo", "ln2", "fc1+gelu", "fc2"] {
            let t = times.get(key).unwrap_or_else(|| panic!("missing node {key}"));
            assert_eq!(t.samples, cfg.depth as u64, "{key}");
            assert!(t.seconds > 0.0, "{key}");
        }
        // The fused plan never runs a standalone gelu node.
        assert!(!times.contains_key("gelu"));
        // take_ drains but leaves timing armed.
        assert!(e.node_timing_enabled());
        let _ = model.forward(&mut e, &x);
        assert!(!e.take_node_times().is_empty());
    }

    #[test]
    fn fusion_counters_split_hits_and_misses_per_plan() {
        use crate::config::VitConfig;
        use crate::model::VitModel;
        let cfg = VitConfig::tiny_test();
        let model = VitModel::new_random(cfg, 23);
        let x = model.synthetic_input(3);
        let blocks = cfg.depth as u64;
        let per_head = 2 * cfg.heads as u64; // scores + ctx per head

        let mut fused = MixedEngine::new().with_vit_plan(CompiledVitPlan::fuse_all());
        let _ = model.forward(&mut fused, &x);
        assert_eq!(
            fused.fusion_stats(),
            (
                CompiledVitPlan::fuse_all().fused_gemms_per_block() * blocks,
                per_head * blocks
            )
        );

        let mut unfused = MixedEngine::new().with_vit_plan(CompiledVitPlan::unfused());
        let _ = model.forward(&mut unfused, &x);
        // Every GEMM is a miss under the all-off plan: 6 projections plus
        // the per-head pairs, per block.
        assert_eq!(unfused.fusion_stats(), (0, (6 + per_head) * blocks));

        let mut planless = MixedEngine::new();
        let _ = model.forward(&mut planless, &x);
        assert_eq!(planless.fusion_stats(), (0, 0));
    }

    #[test]
    fn compiled_plan_handles_extreme_scales_bit_identically() {
        // Satellite property: fused drains agree with the composed oracle
        // under subnormal-range activations and near-overflow weights —
        // the regimes where a quantize/requant shortcut would first drift.
        use crate::config::VitConfig;
        use crate::model::VitModel;
        for (wscale, xscale) in [(1.0e3f32, 1.0f32), (1.0f32, 1.0e-38f32), (64.0, 1.0e-20)] {
            let mut model = VitModel::new_random(VitConfig::tiny_test(), 41);
            for blk in &mut model.blocks {
                for v in blk.fc1.w.data_mut() {
                    *v *= wscale;
                }
            }
            let mut x = model.synthetic_input(5);
            for v in x.data_mut() {
                *v *= xscale;
            }
            for mode in [NonlinearMode::Exact, NonlinearMode::Fast] {
                let mut oracle = MixedEngine::new().with_nonlinear(mode);
                let want = model.forward(&mut oracle, &x);
                let mut e = MixedEngine::new()
                    .with_nonlinear(mode)
                    .with_threads(2)
                    .with_vit_plan(CompiledVitPlan::fuse_all());
                let got = model.forward(&mut e, &x);
                for (p, q) in got.data().iter().zip(want.data()) {
                    assert_eq!(
                        p.to_bits(),
                        q.to_bits(),
                        "wscale {wscale:e} xscale {xscale:e} mode {mode:?}"
                    );
                }
                assert_eq!(e.census(), oracle.census());
            }
        }
    }

    #[test]
    fn compiled_plan_matches_hand_wired_on_nonfinite_fallbacks() {
        // A non-finite weight makes every GEMM against it unquantizable:
        // the planned path must replay the same counted fp32 fallbacks and
        // produce the same bits as the hand-wired path.
        use crate::config::VitConfig;
        use crate::model::VitModel;
        let mut model = VitModel::new_random(VitConfig::tiny_test(), 17);
        model.blocks[0].fc2.w.set(0, 0, f32::INFINITY);
        let x = model.synthetic_input(9);
        let mut oracle = MixedEngine::new();
        let want = model.forward(&mut oracle, &x);
        let mut e = MixedEngine::new().with_vit_plan(CompiledVitPlan::fuse_all());
        let got = model.forward(&mut e, &x);
        for (p, q) in got.data().iter().zip(want.data()) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
        let (oc, pc) = (oracle.census(), e.census());
        assert!(oc.fp32_fallbacks > 0, "the poisoned weight must fall back");
        assert_eq!(pc, oc, "fallback accounting must match the oracle");
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn compiled_plan_emits_node_spans_and_fusion_counters() {
        use crate::config::VitConfig;
        use crate::model::VitModel;
        let cfg = VitConfig::tiny_test();
        let model = VitModel::new_random(cfg, 7);
        let x = model.synthetic_input(2);
        let reg = Registry::new();
        let tracer = Tracer::new();
        let mut e = MixedEngine::new().with_vit_plan(CompiledVitPlan::fuse_all());
        e.attach_telemetry(tracer.clone(), &reg);
        let _ = model.forward(&mut e, &x);

        let (hits, misses) = e.fusion_stats();
        assert_eq!(reg.counter("engine_fusion_hits_total").get(), hits);
        assert_eq!(reg.counter("engine_fusion_misses_total").get(), misses);

        let events = tracer.drain();
        let node_names: Vec<&str> = events
            .iter()
            .filter(|ev| ev.name.starts_with("plan.node."))
            .map(|ev| ev.name.as_str())
            .collect();
        // Per block: ln1, wq, wk, wv, heads×(scores, softmax, ctx), wo,
        // ln2, fc1+gelu, fc2.
        let per_block = 8 + 3 * cfg.heads;
        assert_eq!(node_names.len(), per_block * cfg.depth);
        for want in ["plan.node.ln1", "plan.node.wq", "plan.node.fc1+gelu", "plan.node.fc2"] {
            assert_eq!(
                node_names.iter().filter(|n| **n == want).count(),
                cfg.depth,
                "{want} once per block"
            );
        }
        assert_eq!(
            node_names
                .iter()
                .filter(|n| n.ends_with(".softmax"))
                .count(),
            cfg.depth * cfg.heads
        );
    }

    #[test]
    fn census_merge_adds_fields() {
        let mut a = OpCensus {
            matmul_macs: 5,
            ..Default::default()
        };
        let b = OpCensus {
            matmul_macs: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.matmul_macs, 12);
        assert_eq!(a.bfp_ops(), 24);
    }
}
