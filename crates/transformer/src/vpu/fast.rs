//! The fast nonlinear kernel layer: LUT-seeded, range-reduced
//! GELU / exp / tanh / rsqrt selected by [`super::NonlinearMode::Fast`].
//!
//! The exact kernels in [`super::Vpu`] evaluate every fp32 operation
//! through the bit-level hardware emulation (`HwFp32Mul`/`HwFp32Add`) —
//! faithful, and the reason GELU dominated the fast path's wall clock
//! (~50 % in `BENCH_E2E.json` before this layer). The kernels here model
//! the *optimised* VPU the paper's future-work section points at: a
//! pipelined unit built from
//!
//! * **range reduction** on the exponent unit (`x·log2e` split into an
//!   integer scale `k` and a fraction `f ∈ [0, 1)`),
//! * a **64-entry `2^(j/64)` ROM** ([`EXP2_LUT`], contents pinned as bit
//!   patterns) addressed by the top 6 fraction bits,
//! * a **degree-2 polynomial** on the ≤ 2⁻⁶ residual (truncation error
//!   `(r·ln2)³/6 ≤ 2.1·10⁻¹⁰`, below half an fp32 ulp), and
//! * **LUT-seeded Newton–Raphson** reciprocal / reciprocal-square-root
//!   steps instead of host round-trips.
//!
//! In this simulation the arithmetic runs on native f32 (the pipelined
//! unit rounds once per op, like the host FPU) — which is also why the
//! fast path is fast in software: no per-op bit-level emulation. Every
//! kernel deliberately **mirrors the operation order of its exact
//! oracle**, so the divergence between the two paths is the accumulation
//! of per-op rounding differences, not of algorithmic differences; the
//! resulting envelopes are proven by sweep in
//! `crates/transformer/tests/nonlinear_ulp.rs` and documented in
//! `DESIGN.md`.
//!
//! [`cost`] carges each kernel's hardware op mix (multiplies, adds,
//! exponent-unit ops, table lookups). Multiplies by powers of two (2, ½,
//! 64) are exponent-unit ops, not multiplier ops — the same accounting
//! convention `Vpu::scale_exp2` established. The mix is priced in
//! `bfp_platform::nonlinear` and cross-checked against live engine
//! censuses in `bfp_core::vpucost`.

use bfp_arith::lmul::lmul;

/// `2^(j/64)` for `j ∈ 0..64`, pinned as IEEE-754 bit patterns: these are
/// the ROM contents a synthesised unit would carry, so the table cannot
/// drift with the host libm.
pub const EXP2_LUT: [f32; 64] = {
    const BITS: [u32; 64] = [
        0x3f800000, 0x3f8164d2, 0x3f82cd87, 0x3f843a29, 0x3f85aac3, 0x3f871f62, 0x3f88980f,
        0x3f8a14d5, 0x3f8b95c2, 0x3f8d1adf, 0x3f8ea43a, 0x3f9031dc, 0x3f91c3d3, 0x3f935a2b,
        0x3f94f4f0, 0x3f96942d, 0x3f9837f0, 0x3f99e046, 0x3f9b8d3a, 0x3f9d3eda, 0x3f9ef532,
        0x3fa0b051, 0x3fa27043, 0x3fa43516, 0x3fa5fed7, 0x3fa7cd94, 0x3fa9a15b, 0x3fab7a3a,
        0x3fad583f, 0x3faf3b79, 0x3fb123f6, 0x3fb311c4, 0x3fb504f3, 0x3fb6fd92, 0x3fb8fbaf,
        0x3fbaff5b, 0x3fbd08a4, 0x3fbf179a, 0x3fc12c4d, 0x3fc346cd, 0x3fc5672a, 0x3fc78d75,
        0x3fc9b9be, 0x3fcbec15, 0x3fce248c, 0x3fd06334, 0x3fd2a81e, 0x3fd4f35b, 0x3fd744fd,
        0x3fd99d16, 0x3fdbfbb8, 0x3fde60f5, 0x3fe0ccdf, 0x3fe33f89, 0x3fe5b907, 0x3fe8396a,
        0x3feac0c7, 0x3fed4f30, 0x3fefe4ba, 0x3ff28177, 0x3ff5257d, 0x3ff7d0df, 0x3ffa83b3,
        0x3ffd3e0c,
    ];
    let mut t = [0.0f32; 64];
    let mut j = 0;
    while j < 64 {
        t[j] = f32::from_bits(BITS[j]);
        j += 1;
    }
    t
};

/// `ln 2 / 64`: converts the ≤ 6-bit residual index fraction back to the
/// natural-log domain for the degree-2 polynomial.
const LN2_OVER_64: f32 = core::f32::consts::LN_2 / 64.0;

/// Exponent-unit scale by `2^k` with FTZ underflow and saturating
/// overflow — identical semantics to [`super::Vpu::scale_exp2`], minus
/// the op accounting (batched callers charge analytically).
#[inline]
fn scale2k(x: f32, k: i32) -> f32 {
    if x == 0.0 {
        return x;
    }
    let bits = x.to_bits();
    let e = ((bits >> 23) & 0xff) as i32 + k;
    if e <= 0 {
        return 0.0; // FTZ underflow
    }
    if e >= 255 {
        return if x > 0.0 {
            f32::INFINITY
        } else {
            f32::NEG_INFINITY
        };
    }
    f32::from_bits((bits & 0x807f_ffff) | ((e as u32) << 23))
}

/// `e^x` by range reduction + 64-entry ROM + degree-2 residual
/// polynomial. Clamp thresholds mirror the exact kernel exactly, so the
/// two paths agree bit-for-bit on the saturated regions.
#[inline]
pub fn exp(x: f32) -> f32 {
    if x > 88.0 {
        return f32::INFINITY;
    }
    if x < -87.0 {
        return 0.0;
    }
    let t = x * core::f32::consts::LOG2_E; // fp_mul
    let kf = t.floor(); // 2 fp_add (magic-constant round on hw)
    let f = t - kf; // fp_add; f ∈ [0, 1)
    let s = f * 64.0; // exp_adjust (power-of-two scale)
    // ROM address: top 6 fraction bits. For |x| below ½ulp(1), f rounds
    // up to exactly 1.0 and s to 64.0; the address saturates (the r term
    // then carries the final 1/64 step, still inside the poly's range).
    let j = (s as i32).min(63);
    let r = s - j as f32; // fp_add; r ∈ [0, 1) in 1/64 units
    let rl = r * LN2_OVER_64; // fp_mul
    let h = 0.5 * rl; // exp_adjust
    let p = (1.0 + rl) + h * rl; // fp_mul + 2 fp_add: 2^r to < 2⁻³¹
    scale2k(EXP2_LUT[j as usize] * p, kf as i32) // fp_mul + lut + exp_adjust
}

/// `tanh(u) = 1 − 2/(e^{2u} + 1)`, the exact oracle's formula with the
/// fast exp and an on-unit reciprocal (native division here; charged as
/// the LUT-seeded 2-step NR reciprocal the unit would run).
#[inline]
pub fn tanh(u: f32) -> f32 {
    if u > 15.0 {
        return 1.0;
    }
    if u < -15.0 {
        return -1.0;
    }
    let e = exp(2.0 * u); // exp_adjust + exp
    let d = e + 1.0; // fp_add
    let q = 2.0 / d; // recip: lut + 4 fp_mul + 2 fp_add, then exp_adjust
    1.0 - q // fp_add
}

/// Tanh-form GELU, operation order mirroring [`super::Vpu::gelu`].
#[inline]
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // √(2/π)
    const A: f32 = 0.044_715;
    let x2 = x * x; // fp_mul
    let x3 = x2 * x; // fp_mul
    let ax3 = x3 * A; // fp_mul
    let inner = x + ax3; // fp_add
    let u = inner * C; // fp_mul
    let t = tanh(u);
    let one_t = 1.0 + t; // fp_add
    let hx = 0.5 * x; // exp_adjust
    hx * one_t // fp_mul
}

/// Reciprocal square root: the exact oracle's magic seed (modelled as a
/// seed ROM) + 3 Newton–Raphson steps in the oracle's operation order.
///
/// # Panics
/// Panics on negative input (LayerNorm variances are non-negative).
#[inline]
pub fn rsqrt(x: f32) -> f32 {
    assert!(x >= 0.0, "rsqrt of a negative value");
    if x == 0.0 {
        return f32::INFINITY;
    }
    let mut y = f32::from_bits(0x5f37_59dfu32.wrapping_sub(x.to_bits() >> 1)); // lut (seed)
    for _ in 0..3 {
        let y2 = y * y; // fp_mul
        let xy2 = x * y2; // fp_mul
        let h = xy2 * 0.5; // exp_adjust
        let e = 1.5 - h; // fp_add
        y *= e; // fp_mul
    }
    y
}

/// Row-wise softmax: comparator max-reduction, fast exp, one reciprocal
/// (no host divisions, no per-element divisions).
pub fn softmax_row(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let mut max = row[0];
    for &v in &row[1..] {
        if v > max {
            max = v;
        }
    }
    let mut sum = 0f32;
    for v in row.iter_mut() {
        *v = exp(*v - max);
        sum += *v;
    }
    let inv = 1.0 / sum; // recip model: lut + 4 fp_mul + 2 fp_add
    for v in row.iter_mut() {
        *v *= inv;
    }
}

/// Row-wise LayerNorm with the fast reciprocal square root, operation
/// order mirroring [`super::Vpu::layernorm_row_onchip`].
///
/// # Panics
/// Panics if `gamma`/`beta` lengths differ from the row length.
pub fn layernorm_row(row: &mut [f32], gamma: &[f32], beta: &[f32], eps: f32) {
    let n = row.len();
    assert_eq!(gamma.len(), n, "gamma length");
    assert_eq!(beta.len(), n, "beta length");
    if n == 0 {
        return;
    }
    let inv_n = 1.0 / n as f32; // compile-time constant in hardware
    let mut sum = 0f32;
    for &v in row.iter() {
        sum += v;
    }
    let mean = sum * inv_n;
    let mut var_sum = 0f32;
    for v in row.iter_mut() {
        let d = *v - mean;
        *v = d;
        var_sum += d * d;
    }
    let var = var_sum * inv_n;
    let inv = rsqrt(var + eps);
    for (j, v) in row.iter_mut().enumerate() {
        *v = (*v * inv) * gamma[j] + beta[j];
    }
}

// ---------------------------------------------------------------------
// L-Mul lane variants: the same kernels with every *polynomial/NR*
// multiply routed through the addition-based approximate multiplier
// (`bfp_arith::lmul`). The range-reduction multiply `x·log2e` stays on a
// DSP fp32 lane — an approximate multiply there shifts the integer scale
// k itself and the output by whole powers of two. These exist to put a
// measured error figure next to the L-Mul resource/energy savings priced
// in `bfp_platform::nonlinear`; the envelope test pins the result (~10 %
// relative per multiply, compounding through the pipeline), which is why
// `NonlinearMode::Fast` keeps its multiplies exact.
// ---------------------------------------------------------------------

/// `e^x` with the residual polynomial and ROM product on L-Mul lanes.
pub fn exp_lmul(x: f32) -> f32 {
    if x > 88.0 {
        return f32::INFINITY;
    }
    if x < -87.0 {
        return 0.0;
    }
    let t = x * core::f32::consts::LOG2_E; // exact: range reduction
    let kf = t.floor();
    let f = t - kf;
    let s = f * 64.0;
    let j = s as i32;
    let r = s - j as f32;
    let rl = lmul(r, LN2_OVER_64);
    let h = 0.5 * rl; // exponent unit
    let p = (1.0 + rl) + lmul(h, rl);
    scale2k(lmul(EXP2_LUT[j as usize], p), kf as i32)
}

/// `tanh` on L-Mul lanes (reciprocal division stays native, as the NR
/// correction multiplies would otherwise compound further).
pub fn tanh_lmul(u: f32) -> f32 {
    if u > 15.0 {
        return 1.0;
    }
    if u < -15.0 {
        return -1.0;
    }
    let e = exp_lmul(2.0 * u);
    let d = e + 1.0;
    let q = 2.0 / d;
    1.0 - q
}

/// GELU on L-Mul lanes.
pub fn gelu_lmul(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    const A: f32 = 0.044_715;
    let x2 = lmul(x, x);
    let x3 = lmul(x2, x);
    let ax3 = lmul(x3, A);
    let inner = x + ax3;
    let u = lmul(inner, C);
    let t = tanh_lmul(u);
    let one_t = 1.0 + t;
    let hx = 0.5 * x;
    lmul(hx, one_t)
}

/// Per-element / per-row hardware op-mix formulas for the fast kernels.
///
/// The fast unit is a pipeline: every lane evaluates the full kernel and
/// the range clamps are output muxes, so **clamped elements are charged
/// the full mix too** — unlike the exact path, whose software early-outs
/// skip the ops they never executed. Batched callers charge these
/// formulas once per slice; the live census therefore matches the
/// analytical census *exactly* in Fast mode (pinned in `bfp_core`).
pub mod cost {
    use crate::vpu::OpCount;

    /// One [`super::exp`]: range reduction (1 mul + 3 adds), ROM lookup,
    /// degree-2 residual poly (2 muls + 2 adds), ROM product (1 mul),
    /// power-of-two scales on the exponent unit (3).
    pub const fn exp() -> OpCount {
        OpCount {
            fp_mul: 4,
            fp_add: 6,
            exp_adjust: 3,
            cmp: 0,
            lut: 1,
            host_div: 0,
            host_sqrt: 0,
        }
    }

    /// The LUT-seeded 2-step Newton–Raphson reciprocal the unit runs for
    /// every `1/x` (software uses the native divide, which is at least as
    /// accurate as two NR steps).
    pub const fn recip() -> OpCount {
        OpCount {
            fp_mul: 4,
            fp_add: 2,
            exp_adjust: 0,
            cmp: 0,
            lut: 1,
            host_div: 0,
            host_sqrt: 0,
        }
    }

    /// One [`super::tanh`]: exp + reciprocal + 2 adds + 2 exponent-unit
    /// doublings.
    pub const fn tanh() -> OpCount {
        OpCount {
            fp_mul: exp().fp_mul + recip().fp_mul,
            fp_add: exp().fp_add + recip().fp_add + 2,
            exp_adjust: exp().exp_adjust + 2,
            cmp: 0,
            lut: exp().lut + recip().lut,
            host_div: 0,
            host_sqrt: 0,
        }
    }

    /// One [`super::gelu`]: tanh + 5 own muls + 2 own adds + the ½x
    /// exponent-unit halving.
    pub const fn gelu() -> OpCount {
        OpCount {
            fp_mul: tanh().fp_mul + 5,
            fp_add: tanh().fp_add + 2,
            exp_adjust: tanh().exp_adjust + 1,
            cmp: 0,
            lut: tanh().lut,
            host_div: 0,
            host_sqrt: 0,
        }
    }

    /// One [`super::rsqrt`]: seed ROM + 3 NR steps of 3 muls, 1 add and
    /// one exponent-unit halving each.
    pub const fn rsqrt() -> OpCount {
        OpCount {
            fp_mul: 9,
            fp_add: 3,
            exp_adjust: 3,
            cmp: 0,
            lut: 1,
            host_div: 0,
            host_sqrt: 0,
        }
    }

    /// One fast softmax over a length-`n` row: max reduction, per-element
    /// shift + exp + accumulate, one reciprocal, `n` normalising muls.
    pub const fn softmax_row(n: u64) -> OpCount {
        OpCount {
            fp_mul: n * (exp().fp_mul + 1) + recip().fp_mul,
            fp_add: n * (exp().fp_add + 2) + recip().fp_add,
            exp_adjust: n * exp().exp_adjust,
            cmp: n.saturating_sub(1),
            lut: n * exp().lut + recip().lut,
            host_div: 0,
            host_sqrt: 0,
        }
    }

    /// One fast LayerNorm over a length-`n` row: the exact kernel's
    /// sum/centre/affine mix with the NR rsqrt replacing the host
    /// round-trip.
    pub const fn layernorm_row(n: u64) -> OpCount {
        OpCount {
            fp_mul: 3 * n + 2 + rsqrt().fp_mul,
            fp_add: 4 * n + 1 + rsqrt().fp_add,
            exp_adjust: rsqrt().exp_adjust,
            cmp: 0,
            lut: rsqrt().lut,
            host_div: 0,
            host_sqrt: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lut_is_the_rounded_exp2_lattice() {
        for (j, &v) in EXP2_LUT.iter().enumerate() {
            let want = (j as f64 / 64.0).exp2();
            let rel = ((v as f64 - want) / want).abs();
            assert!(rel < 6e-8, "LUT[{j}] = {v} vs {want}");
        }
        // Monotone, anchored at 1.0, just below 2.0.
        assert_eq!(EXP2_LUT[0], 1.0);
        assert!(EXP2_LUT.windows(2).all(|w| w[0] < w[1]));
        assert!(EXP2_LUT.iter().all(|&v| v < 2.0));
    }

    #[test]
    fn fast_exp_tracks_libm() {
        // The single-constant range reduction `x·log2e` rounds once at the
        // scale of |t|, so the relative error grows linearly with |x|:
        // tight (≲4 ulp) near zero, ~ln2·ulp(|t|) at the range edges —
        // the same profile the exact kernel shows (its bound is 1e-5).
        for k in -2000..=2000 {
            let x = k as f32 * 0.043;
            let got = exp(x) as f64;
            let want = (x as f64).exp();
            let rel = ((got - want) / want).abs();
            // worst case ln2 · ½ulp(t) with t = x·log2e: ≈ 1.2e-7·|x|.
            let bound = 5e-7 + 1.3e-7 * x.abs() as f64;
            assert!(rel < bound, "exp({x}): {got} vs {want} rel {rel}");
        }
        assert_eq!(exp(1000.0), f32::INFINITY);
        assert_eq!(exp(-1000.0), 0.0);
    }

    #[test]
    fn fast_tanh_and_gelu_track_libm() {
        for k in -400..=400 {
            let x = k as f32 * 0.04;
            let t = tanh(x) as f64;
            assert!((t - (x as f64).tanh()).abs() < 1e-6, "tanh({x}) = {t}");
            let g = gelu(x) as f64;
            let xx = x as f64;
            let want = 0.5 * xx * (1.0 + (0.7978845608 * (xx + 0.044715 * xx * xx * xx)).tanh());
            assert!((g - want).abs() < 1e-5, "gelu({x}) = {g} vs {want}");
        }
    }

    #[test]
    fn fast_rsqrt_tracks_libm_over_the_normal_range() {
        for k in -120..=120 {
            let x = (k as f32 * 0.7).exp2();
            let got = rsqrt(x) as f64;
            let want = 1.0 / (x as f64).sqrt();
            let rel = ((got - want) / want).abs();
            assert!(rel < 2e-6, "rsqrt({x}): {got} vs {want} rel {rel}");
        }
        assert_eq!(rsqrt(0.0), f32::INFINITY);
    }

    #[test]
    fn fast_softmax_row_normalises() {
        let mut row: Vec<f32> = (0..33).map(|k| (k as f32 * 0.47).sin() * 6.0).collect();
        softmax_row(&mut row);
        let s: f32 = row.iter().sum();
        assert!((s - 1.0).abs() < 1e-5, "sum {s}");
        assert!(row.iter().all(|v| *v >= 0.0));
    }

    #[test]
    fn lmul_lane_kernels_are_lossy_but_bounded() {
        // The priced-but-rejected configuration: compounding ~9.5 %
        // per-multiply error through the polynomial pipeline. The bound
        // here is the measured characterisation, NOT a serving envelope.
        let mut max_rel = 0.0f64;
        for k in -60..=60 {
            let x = k as f32 * 0.1;
            let want = gelu(x) as f64;
            let got = gelu_lmul(x) as f64;
            if want.abs() > 1e-3 {
                max_rel = max_rel.max(((got - want) / want).abs());
            }
        }
        assert!(max_rel < 0.60, "L-Mul GELU drift {max_rel}");
        assert!(
            max_rel > 0.02,
            "the characterisation must show real loss: {max_rel}"
        );
    }

    #[test]
    fn cost_formulas_are_consistent() {
        assert_eq!(cost::gelu().lut, 2);
        assert_eq!(cost::gelu().host_div + cost::gelu().host_sqrt, 0);
        let sm = cost::softmax_row(16);
        assert_eq!(sm.host_div, 0);
        assert_eq!(sm.lut, 17);
        let ln = cost::layernorm_row(16);
        assert_eq!(ln.host_div + ln.host_sqrt, 0);
        assert_eq!(ln.lut, 1);
    }
}
