//! Reference (IEEE f32/f64) implementations of the non-linear layers —
//! the ground truth the hardware VPU kernels are measured against.

use bfp_arith::matrix::MatF32;

/// Numerically careful row-wise softmax (max-subtracted, f64 accumulate).
pub fn softmax_rows(m: &mut MatF32) {
    let cols = m.cols();
    for i in 0..m.rows() {
        let row_max = m.row(i).iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let mut sum = 0f64;
        let mut exps = vec![0f32; cols];
        for (j, e) in exps.iter_mut().enumerate() {
            let v = ((m.get(i, j) - row_max) as f64).exp();
            *e = v as f32;
            sum += v;
        }
        for (j, &e) in exps.iter().enumerate() {
            m.set(i, j, (e as f64 / sum) as f32);
        }
    }
}

/// Exact GELU: `0.5 x (1 + erf(x / √2))`, with erf evaluated in f64 via the
/// Abramowitz–Stegun 7.1.26 rational approximation (|ε| < 1.5e-7, far below
/// f32 resolution).
pub fn gelu_exact(x: f32) -> f32 {
    let v = x as f64;
    (0.5 * v * (1.0 + erf(v / std::f64::consts::SQRT_2))) as f32
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// The tanh-form GELU used by most Transformer implementations (and the
/// form the VPU kernel implements):
/// `0.5 x (1 + tanh(√(2/π) (x + 0.044715 x³)))`.
pub fn gelu_tanh(x: f32) -> f32 {
    let v = x as f64;
    let inner = (2.0 / std::f64::consts::PI).sqrt() * (v + 0.044715 * v * v * v);
    (0.5 * v * (1.0 + inner.tanh())) as f32
}

/// Apply tanh-GELU element-wise.
pub fn gelu_rows(m: &mut MatF32) {
    for v in m.data_mut() {
        *v = gelu_tanh(*v);
    }
}

/// Row-wise LayerNorm with affine parameters.
///
/// # Panics
/// Panics if `gamma`/`beta` lengths differ from the column count.
pub fn layernorm_rows(m: &mut MatF32, gamma: &[f32], beta: &[f32], eps: f32) {
    let cols = m.cols();
    assert_eq!(gamma.len(), cols, "gamma length");
    assert_eq!(beta.len(), cols, "beta length");
    for i in 0..m.rows() {
        let mut mean = 0f64;
        for j in 0..cols {
            mean += m.get(i, j) as f64;
        }
        mean /= cols as f64;
        let mut var = 0f64;
        for j in 0..cols {
            let d = m.get(i, j) as f64 - mean;
            var += d * d;
        }
        var /= cols as f64;
        let inv = 1.0 / (var + eps as f64).sqrt();
        for j in 0..cols {
            let n = (m.get(i, j) as f64 - mean) * inv;
            m.set(i, j, (n * gamma[j] as f64 + beta[j] as f64) as f32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut m = MatF32::from_fn(3, 5, |i, j| (i * 5 + j) as f32 * 0.3 - 2.0);
        softmax_rows(&mut m);
        for i in 0..3 {
            let s: f32 = m.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {i} sums to {s}");
            assert!(m.row(i).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let mut a = MatF32::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let mut b = MatF32::from_vec(1, 3, vec![101.0, 102.0, 103.0]);
        softmax_rows(&mut a);
        softmax_rows(&mut b);
        for j in 0..3 {
            assert!((a.get(0, j) - b.get(0, j)).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_extreme_logits() {
        let mut m = MatF32::from_vec(1, 3, vec![-1e30, 0.0, 1e30]);
        softmax_rows(&mut m);
        assert!((m.get(0, 2) - 1.0).abs() < 1e-6);
        assert!(m.get(0, 0) >= 0.0);
    }

    #[test]
    fn gelu_known_values() {
        assert_eq!(gelu_exact(0.0), 0.0);
        assert!((gelu_exact(1.0) - 0.8413447).abs() < 1e-5);
        assert!((gelu_exact(-1.0) + 0.15865526).abs() < 1e-5);
        // Large positive ~ identity; large negative ~ 0.
        assert!((gelu_exact(10.0) - 10.0).abs() < 1e-4);
        assert!(gelu_exact(-10.0).abs() < 1e-4);
    }

    #[test]
    fn tanh_gelu_tracks_exact_gelu() {
        for k in -40..=40 {
            let x = k as f32 * 0.1;
            let d = (gelu_tanh(x) - gelu_exact(x)).abs();
            assert!(
                d < 2e-3,
                "x={x}: tanh {} vs exact {}",
                gelu_tanh(x),
                gelu_exact(x)
            );
        }
    }

    #[test]
    fn layernorm_zero_mean_unit_var() {
        let mut m = MatF32::from_fn(2, 64, |i, j| {
            (i as f32 + 1.0) * (j as f32 * 0.17).sin() * 3.0
        });
        let gamma = vec![1.0f32; 64];
        let beta = vec![0.0f32; 64];
        layernorm_rows(&mut m, &gamma, &beta, 1e-6);
        for i in 0..2 {
            let mean: f64 = m.row(i).iter().map(|&v| v as f64).sum::<f64>() / 64.0;
            let var: f64 = m
                .row(i)
                .iter()
                .map(|&v| (v as f64 - mean).powi(2))
                .sum::<f64>()
                / 64.0;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn layernorm_affine_params_apply() {
        let mut m = MatF32::from_fn(1, 4, |_, j| j as f32);
        let gamma = vec![2.0f32; 4];
        let beta = vec![10.0f32; 4];
        layernorm_rows(&mut m, &gamma, &beta, 1e-6);
        let mean: f32 = m.row(0).iter().sum::<f32>() / 4.0;
        assert!((mean - 10.0).abs() < 1e-4, "beta shifts the mean: {mean}");
    }

    #[test]
    #[should_panic(expected = "gamma length")]
    fn layernorm_checks_param_length() {
        let mut m = MatF32::zeros(1, 4);
        layernorm_rows(&mut m, &[1.0; 3], &[0.0; 4], 1e-6);
    }
}
