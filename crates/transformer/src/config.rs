//! Vision-Transformer model configurations (the DeiT family of the paper's
//! case study, §III-D).

/// Architecture hyper-parameters of a ViT/DeiT encoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VitConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Number of encoder blocks.
    pub depth: usize,
    /// Attention heads.
    pub heads: usize,
    /// MLP hidden dimension = `dim * mlp_ratio`.
    pub mlp_ratio: usize,
    /// Sequence length including the class token (197 for 224² images with
    /// 16² patches).
    pub seq: usize,
}

impl VitConfig {
    /// DeiT-Tiny: dim 192, 12 blocks, 3 heads.
    pub const fn deit_tiny() -> Self {
        VitConfig {
            dim: 192,
            depth: 12,
            heads: 3,
            mlp_ratio: 4,
            seq: 197,
        }
    }

    /// DeiT-Small — the paper's Table IV model: dim 384, 12 blocks, 6 heads.
    pub const fn deit_small() -> Self {
        VitConfig {
            dim: 384,
            depth: 12,
            heads: 6,
            mlp_ratio: 4,
            seq: 197,
        }
    }

    /// DeiT-Base: dim 768, 12 blocks, 12 heads.
    pub const fn deit_base() -> Self {
        VitConfig {
            dim: 768,
            depth: 12,
            heads: 12,
            mlp_ratio: 4,
            seq: 197,
        }
    }

    /// A miniature configuration for fast tests.
    pub const fn tiny_test() -> Self {
        VitConfig {
            dim: 32,
            depth: 2,
            heads: 2,
            mlp_ratio: 2,
            seq: 12,
        }
    }

    /// Per-head dimension.
    pub const fn head_dim(&self) -> usize {
        self.dim / self.heads
    }

    /// MLP hidden width.
    pub const fn hidden(&self) -> usize {
        self.dim * self.mlp_ratio
    }

    /// Sanity-check divisibility.
    pub fn validate(&self) -> Result<(), String> {
        if !self.dim.is_multiple_of(self.heads) {
            return Err(format!(
                "dim {} not divisible by heads {}",
                self.dim, self.heads
            ));
        }
        if self.dim == 0 || self.depth == 0 || self.seq == 0 {
            return Err("zero-sized configuration".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deit_small_matches_published_architecture() {
        let c = VitConfig::deit_small();
        assert_eq!(c.dim, 384);
        assert_eq!(c.depth, 12);
        assert_eq!(c.heads, 6);
        assert_eq!(c.head_dim(), 64);
        assert_eq!(c.hidden(), 1536);
        assert_eq!(c.seq, 197);
        c.validate().unwrap();
    }

    #[test]
    fn family_scales() {
        assert_eq!(VitConfig::deit_tiny().dim * 2, VitConfig::deit_small().dim);
        assert_eq!(VitConfig::deit_small().dim * 2, VitConfig::deit_base().dim);
        VitConfig::deit_tiny().validate().unwrap();
        VitConfig::deit_base().validate().unwrap();
        VitConfig::tiny_test().validate().unwrap();
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad = VitConfig {
            dim: 10,
            depth: 1,
            heads: 3,
            mlp_ratio: 4,
            seq: 4,
        };
        assert!(bad.validate().is_err());
        let zero = VitConfig {
            dim: 0,
            depth: 1,
            heads: 1,
            mlp_ratio: 1,
            seq: 1,
        };
        assert!(zero.validate().is_err());
    }
}
