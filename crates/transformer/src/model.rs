//! The ViT/DeiT encoder: pre-norm blocks of attention + MLP, generic over
//! the execution engine.
//!
//! The model covers exactly what Table IV counts — "all 12 blocks of a
//! DeiT-Small model": per block, LayerNorm → attention → residual,
//! LayerNorm → fc1 → GELU → fc2 → residual. Patch embedding and the
//! classifier head are outside the census, matching the paper; residual
//! adds are elementwise memory-side operations not charged to the array.

use bfp_arith::cancel::CancelToken;
use bfp_arith::error::ArithError;
use bfp_arith::matrix::MatF32;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::attention::Attention;
use crate::config::VitConfig;
use crate::engine::Engine;
use crate::layers::{LayerNormParams, Linear};

/// One pre-norm Transformer encoder block.
#[derive(Debug, Clone)]
pub struct Block {
    /// Pre-attention LayerNorm.
    pub ln1: LayerNormParams,
    /// Multi-head self-attention.
    pub attn: Attention,
    /// Pre-MLP LayerNorm.
    pub ln2: LayerNormParams,
    /// MLP expansion.
    pub fc1: Linear,
    /// MLP contraction.
    pub fc2: Linear,
}

impl Block {
    /// Random-initialised block.
    pub fn new_random(cfg: &VitConfig, rng: &mut StdRng) -> Self {
        Block {
            ln1: LayerNormParams::new_random(cfg.dim, rng),
            attn: Attention::new_random(cfg, rng),
            ln2: LayerNormParams::new_random(cfg.dim, rng),
            fc1: Linear::new_random(cfg.dim, cfg.hidden(), rng),
            fc2: Linear::new_random(cfg.hidden(), cfg.dim, rng),
        }
    }

    /// Forward one block.
    ///
    /// An engine carrying a compiled plan (see
    /// [`MixedEngine::install_vit_plan`](crate::MixedEngine::install_vit_plan))
    /// intercepts the block here and runs it through the fused kernels;
    /// the hand-wired sequence below is the bit-identity oracle and the
    /// path every plan-less engine takes.
    pub fn forward<E: Engine>(&self, e: &mut E, x: &MatF32) -> MatF32 {
        if let Some(y) = e.forward_block_planned(self, x) {
            return y;
        }
        // Attention branch.
        let mut h = x.clone();
        self.ln1.forward(e, &mut h);
        let attn_out = self.attn.forward(e, &h);
        let mut x = residual_add(x, &attn_out);
        // MLP branch.
        let mut h = x.clone();
        self.ln2.forward(e, &mut h);
        let mut mid = self.fc1.forward(e, &h);
        e.gelu(&mut mid);
        let mlp_out = self.fc2.forward(e, &mid);
        x = residual_add(&x, &mlp_out);
        x
    }
}

/// Elementwise residual add (memory-side, not an array operation).
pub(crate) fn residual_add(a: &MatF32, b: &MatF32) -> MatF32 {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
    MatF32::from_fn(a.rows(), a.cols(), |i, j| a.get(i, j) + b.get(i, j))
}

/// A stack of encoder blocks (the part of DeiT the paper's census covers).
#[derive(Debug, Clone)]
pub struct VitModel {
    /// Architecture.
    pub cfg: VitConfig,
    /// The encoder blocks.
    pub blocks: Vec<Block>,
}

impl VitModel {
    /// Build a model with reproducible random weights.
    ///
    /// # Panics
    /// Panics on an invalid configuration.
    pub fn new_random(cfg: VitConfig, seed: u64) -> Self {
        cfg.validate().expect("valid configuration");
        let mut rng = StdRng::seed_from_u64(seed);
        let blocks = (0..cfg.depth)
            .map(|_| Block::new_random(&cfg, &mut rng))
            .collect();
        VitModel { cfg, blocks }
    }

    /// Forward `x` (`seq × dim`) through every block.
    ///
    /// # Panics
    /// Panics if `x` does not match the configured sequence/width.
    pub fn forward<E: Engine>(&self, e: &mut E, x: &MatF32) -> MatF32 {
        self.try_forward(e, x, &CancelToken::new())
            .expect("unbounded token never cancels")
    }

    /// Deadline-aware [`VitModel::forward`]: polls `cancel` between encoder
    /// blocks (the natural preemption points of the pipelined schedule) and
    /// abandons the pass with [`ArithError::Cancelled`] once the token
    /// fires, so a serving runtime can stop a request that has already
    /// missed its deadline instead of finishing a useless inference.
    ///
    /// # Panics
    /// Panics if `x` does not match the configured sequence/width.
    pub fn try_forward<E: Engine>(
        &self,
        e: &mut E,
        x: &MatF32,
        cancel: &CancelToken,
    ) -> Result<MatF32, ArithError> {
        assert_eq!(x.rows(), self.cfg.seq, "sequence length");
        assert_eq!(x.cols(), self.cfg.dim, "embedding width");
        let mut h = x.clone();
        for b in &self.blocks {
            cancel.check()?;
            h = b.forward(e, &h);
        }
        Ok(h)
    }

    /// A deterministic synthetic input in the typical post-embedding
    /// activation range.
    pub fn synthetic_input(&self, seed: u64) -> MatF32 {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        MatF32::from_fn(self.cfg.seq, self.cfg.dim, |_, _| {
            rng.gen_range(-1.0..1.0f32)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{MixedEngine, RefEngine};
    use bfp_arith::stats::ErrorStats;

    #[test]
    fn forward_preserves_shape() {
        let model = VitModel::new_random(VitConfig::tiny_test(), 0);
        let x = model.synthetic_input(1);
        let y = model.forward(&mut RefEngine, &x);
        assert_eq!((y.rows(), y.cols()), (model.cfg.seq, model.cfg.dim));
        assert!(y.max_abs().is_finite());
    }

    #[test]
    fn forward_is_deterministic() {
        let model = VitModel::new_random(VitConfig::tiny_test(), 5);
        let x = model.synthetic_input(2);
        let a = model.forward(&mut RefEngine, &x);
        let b = model.forward(&mut RefEngine, &x);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_models() {
        let m1 = VitModel::new_random(VitConfig::tiny_test(), 1);
        let m2 = VitModel::new_random(VitConfig::tiny_test(), 2);
        let x = m1.synthetic_input(3);
        assert_ne!(
            m1.forward(&mut RefEngine, &x),
            m2.forward(&mut RefEngine, &x)
        );
    }

    #[test]
    fn mixed_precision_tracks_fp32_end_to_end() {
        // The paper's core accuracy claim: bfp8 linear + fp32 non-linear
        // preserves model behaviour without retraining. Through two full
        // blocks the outputs must stay strongly correlated with fp32.
        let model = VitModel::new_random(VitConfig::tiny_test(), 7);
        let x = model.synthetic_input(8);
        let want = model.forward(&mut RefEngine, &x);
        let mut mixed = MixedEngine::new();
        let got = model.forward(&mut mixed, &x);
        let mut s = ErrorStats::new();
        s.push_slices(got.data(), want.data());
        assert!(s.sqnr_db() > 15.0, "end-to-end fidelity: {s}");
        // Cosine similarity as a scale-free check.
        let dot: f64 = got
            .data()
            .iter()
            .zip(want.data())
            .map(|(&g, &w)| g as f64 * w as f64)
            .sum();
        let cos = dot / (got.frobenius() * want.frobenius());
        assert!(cos > 0.99, "cosine {cos}");
    }

    #[test]
    fn cancelled_token_aborts_forward() {
        use bfp_arith::error::ArithError;
        let model = VitModel::new_random(VitConfig::tiny_test(), 3);
        let x = model.synthetic_input(4);
        let token = CancelToken::new();
        token.cancel();
        let err = model
            .try_forward(&mut RefEngine, &x, &token)
            .expect_err("cancelled before the first block");
        assert_eq!(err, ArithError::Cancelled { expired: false });
        // A live token is transparent: same bits as the panicking path.
        let ok = model
            .try_forward(&mut RefEngine, &x, &CancelToken::new())
            .unwrap();
        assert_eq!(ok, model.forward(&mut RefEngine, &x));
    }

    #[test]
    #[should_panic(expected = "sequence length")]
    fn wrong_input_shape_panics() {
        let model = VitModel::new_random(VitConfig::tiny_test(), 0);
        let x = MatF32::zeros(1, model.cfg.dim);
        let _ = model.forward(&mut RefEngine, &x);
    }
}
