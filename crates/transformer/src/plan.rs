//! Compiled execution plans for the transformer block.
//!
//! The core crate's planner (`bfp_core::planner`) pattern-matches the
//! lowered graph IR and decides, per node, whether a GEMM should carry a
//! fused epilogue (bias, bias+GELU, bias+residual) and whether a group of
//! GEMMs sharing one normalized activation should share a single packed
//! LHS. The transformer crate cannot depend on `bfp-core` (the dependency
//! points the other way), so the engine consumes the planner's verdict in
//! this distilled form: a [`CompiledVitPlan`] of per-pattern switches.
//! Every block in a ViT/DeiT tower has the same shape, so the plan is
//! uniform across blocks; the per-node fused/standalone record stays with
//! the planner's `FusePlan` and is bridged into bench output by the e2e
//! harness.
//!
//! Installing a plan on [`MixedEngine`](crate::MixedEngine) reroutes
//! `Block::forward` through the fused kernels in `bfp_arith::packed`;
//! the hand-wired path stays untouched and serves as the bit-identity
//! oracle, exactly like the `Epilogue::Reference` selector does for the
//! scalar accumulator baseline.

/// Per-pattern fusion switches for one transformer block, uniform across
/// the tower. All-off ([`CompiledVitPlan::unfused`]) routes every operator
/// through the composed quantize→pack→GEMM→VPU passes (bit-identical to
/// the hand-wired path by construction — it *is* the hand-wired sequence,
/// driven from the planner loop); all-on ([`CompiledVitPlan::fuse_all`])
/// enables every fused kernel the arithmetic layer proves bit-exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompiledVitPlan {
    /// Quantize-pack the post-LN1 activation once and feed the same
    /// `PackedBfp` to the q/k/v projections, each with a fused bias
    /// epilogue (kills two of the three identical LHS packs).
    pub fuse_qkv: bool,
    /// Fold the attention-output projection's bias add and the first
    /// residual add into the GEMM drain.
    pub fuse_wo_residual: bool,
    /// Fold bias+GELU into the fc1 GEMM drain while the output tile is
    /// hot. When [`fuse_fc2_residual`](Self::fuse_fc2_residual) is also
    /// set, the epilogue re-quantizes straight into fc2's packed
    /// block-major LHS layout and the f32 intermediate never exists.
    pub fuse_fc1_gelu: bool,
    /// Fold fc2's bias add and the second residual add into its GEMM
    /// drain.
    pub fuse_fc2_residual: bool,
    /// Overlap quantize-pack of weight plans needed later in the block
    /// with the attention GEMMs on a spare host thread (double
    /// buffering). Only engages when the engine's effective thread count
    /// is ≥ 2; bit-identical by construction since weight plans are a
    /// pure function of (quantizer, weight).
    pub prefetch_weights: bool,
}

impl CompiledVitPlan {
    /// Every fusion the arithmetic layer supports, plus weight-plan
    /// prefetch. This is what the core planner emits for DeiT shapes.
    pub fn fuse_all() -> Self {
        Self {
            fuse_qkv: true,
            fuse_wo_residual: true,
            fuse_fc1_gelu: true,
            fuse_fc2_residual: true,
            prefetch_weights: true,
        }
    }

    /// A plan that fuses nothing: the planner loop drives the composed
    /// passes. Useful as the A in fused-vs-unfused A/B runs.
    pub fn unfused() -> Self {
        Self {
            fuse_qkv: false,
            fuse_wo_residual: false,
            fuse_fc1_gelu: false,
            fuse_fc2_residual: false,
            prefetch_weights: false,
        }
    }

    /// Number of GEMMs per block expected to run through a fused kernel
    /// under this plan (fusion "hits"); the per-head score/context GEMMs
    /// always run composed and count as misses.
    pub fn fused_gemms_per_block(&self) -> u64 {
        let mut n = 0;
        if self.fuse_qkv {
            n += 3;
        }
        if self.fuse_wo_residual {
            n += 1;
        }
        if self.fuse_fc1_gelu {
            n += 1;
        }
        if self.fuse_fc2_residual {
            n += 1;
        }
        n
    }
}

impl Default for CompiledVitPlan {
    fn default() -> Self {
        Self::fuse_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuse_all_counts_six_fused_gemms() {
        assert_eq!(CompiledVitPlan::fuse_all().fused_gemms_per_block(), 6);
        assert_eq!(CompiledVitPlan::unfused().fused_gemms_per_block(), 0);
    }

    #[test]
    fn default_is_fuse_all() {
        assert_eq!(CompiledVitPlan::default(), CompiledVitPlan::fuse_all());
    }
}
