//! # bfp-transformer — the Transformer inference substrate
//!
//! A from-scratch ViT/DeiT encoder whose every operation routes through a
//! pluggable [`engine::Engine`]:
//!
//! * [`engine::RefEngine`] — IEEE f32 reference (the "pre-trained fp32
//!   model" the paper deploys without retraining);
//! * [`engine::MixedEngine`] — the accelerator's execution model: GEMMs in
//!   bfp8 through the quantize → int8 block MatMul → aligned-accumulate
//!   path, non-linear layers (softmax, GELU, LayerNorm) as fp32 VPU
//!   programs built only from hardware multiply/add + host division.
//!
//! [`flops::analytical_census`] reproduces the operation accounting behind
//! the paper's Table IV and is cross-checked against live engine counts.

// Index-based loops mirror the paper's (i, j, k) matrix notation and are
// clearer than iterator chains for the hardware datapath descriptions.
#![allow(clippy::needless_range_loop)]

pub mod attention;
pub mod config;
pub mod deit;
pub mod engine;
pub mod flops;
pub mod layers;
pub mod model;
pub mod plan;
pub mod reference;
pub mod vpu;

pub use attention::Attention;
pub use config::VitConfig;
pub use deit::{DeitConfig, DeitModel, Image};
pub use engine::{
    DivisionPolicy, Engine, Int8Engine, MixedEngine, NodeTime, OpCensus, PhaseTimes,
    PlanCacheStats, RefEngine,
};
#[cfg(feature = "telemetry")]
pub use engine::EngineTelemetry;
pub use flops::{analytical_census, analytical_census_mode};
pub use layers::{LayerNormParams, Linear};
pub use model::{Block, VitModel};
pub use plan::CompiledVitPlan;
pub use vpu::{NonlinearMode, OpCount, Vpu};
