//! Parameterised layers: linear projections and LayerNorm parameters.

use bfp_arith::matrix::MatF32;
use rand::rngs::StdRng;
use rand::Rng;

use crate::engine::Engine;

/// A dense projection `y = x W + b` with `W: in × out`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix, `in_features × out_features`.
    pub w: MatF32,
    /// Bias, `out_features` long.
    pub b: Vec<f32>,
}

impl Linear {
    /// Random initialisation (uniform `±1/√in`, the usual fan-in scale) —
    /// the reproduction has no trained checkpoints, and Table IV's
    /// op/latency split depends only on shapes.
    pub fn new_random(in_features: usize, out_features: usize, rng: &mut StdRng) -> Self {
        let scale = 1.0 / (in_features as f32).sqrt();
        let w = MatF32::from_fn(in_features, out_features, |_, _| {
            rng.gen_range(-scale..scale)
        });
        let b = (0..out_features)
            .map(|_| rng.gen_range(-0.01..0.01))
            .collect();
        Linear { w, b }
    }

    /// Forward through an engine. The GEMM runs on the engine (bfp8 on the
    /// accelerator); the bias add is fused into the output DMA and is not
    /// part of the paper's op accounting.
    pub fn forward<E: Engine>(&self, e: &mut E, x: &MatF32) -> MatF32 {
        let mut y = e.matmul(x, &self.w);
        for i in 0..y.rows() {
            for j in 0..y.cols() {
                y.set(i, j, y.get(i, j) + self.b[j]);
            }
        }
        y
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.w.cols()
    }
}

/// LayerNorm affine parameters.
#[derive(Debug, Clone)]
pub struct LayerNormParams {
    /// Scale.
    pub gamma: Vec<f32>,
    /// Shift.
    pub beta: Vec<f32>,
    /// Stabiliser added to the variance.
    pub eps: f32,
}

impl LayerNormParams {
    /// Identity-ish initialisation (γ near 1, β near 0).
    pub fn new_random(dim: usize, rng: &mut StdRng) -> Self {
        LayerNormParams {
            gamma: (0..dim)
                .map(|_| 1.0 + rng.gen_range(-0.05..0.05f32))
                .collect(),
            beta: (0..dim).map(|_| rng.gen_range(-0.05..0.05f32)).collect(),
            eps: 1e-6,
        }
    }

    /// Apply through an engine.
    pub fn forward<E: Engine>(&self, e: &mut E, x: &mut MatF32) {
        e.layernorm(x, &self.gamma, &self.beta, self.eps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RefEngine;
    use rand::SeedableRng;

    #[test]
    fn linear_forward_shapes_and_bias() {
        let mut rng = StdRng::seed_from_u64(7);
        let lin = Linear::new_random(4, 6, &mut rng);
        let x = MatF32::from_fn(3, 4, |i, j| (i + j) as f32);
        let mut e = RefEngine;
        let y = lin.forward(&mut e, &x);
        assert_eq!((y.rows(), y.cols()), (3, 6));
        // Zero input leaves only the bias.
        let z = lin.forward(&mut e, &MatF32::zeros(2, 4));
        for j in 0..6 {
            assert!((z.get(0, j) - lin.b[j]).abs() < 1e-7);
        }
    }

    #[test]
    fn init_scale_is_fan_in_bounded() {
        let mut rng = StdRng::seed_from_u64(11);
        let lin = Linear::new_random(64, 64, &mut rng);
        let bound = 1.0 / 8.0;
        assert!(lin.w.max_abs() <= bound);
        assert!(lin.w.max_abs() > bound * 0.5, "init should fill the range");
    }

    #[test]
    fn layernorm_params_forward() {
        let mut rng = StdRng::seed_from_u64(3);
        let ln = LayerNormParams::new_random(16, &mut rng);
        let mut x = MatF32::from_fn(2, 16, |i, j| (i * 16 + j) as f32);
        let mut e = RefEngine;
        ln.forward(&mut e, &mut x);
        let mean: f64 = x.row(0).iter().map(|&v| v as f64).sum::<f64>() / 16.0;
        // gamma/beta are near identity, so the mean lands near beta's mean.
        assert!(mean.abs() < 0.2, "mean {mean}");
    }
}
