//! Fault plans: which upsets to inject, where, and when.

/// One targeted hardware fault.
///
/// `nth` fields are zero-based access indices *for that spec's site*:
/// the spec fires on the `nth` matching access since installation, so a
/// plan replays identically on every run of the same workload.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpec {
    /// Flip `bit` (0..48) of a DSP48 P pipeline register on the `nth`
    /// P-register commit anywhere in the fabric.
    DspPRegFlip {
        /// Zero-based P-register commit index.
        nth: u64,
        /// Bit position within the 48-bit accumulator.
        bit: u8,
    },
    /// Upset bits of the operand-BRAM byte at (`bram`, `addr`). `bits`
    /// are positions in the 13-bit SECDED codeword; one flipped bit is
    /// corrected by ECC, two are detected but uncorrected. Applies on
    /// every read of that word (the upset is in the stored cell).
    BramFlip {
        /// Mantissa BRAM index within the operand buffer.
        bram: usize,
        /// Byte address within the BRAM.
        addr: usize,
        /// Codeword bit positions (0..13) to flip.
        bits: Vec<u8>,
    },
    /// Upset bits of the shared-exponent BRAM byte at `addr`, with the
    /// same SECDED semantics as [`FaultSpec::BramFlip`].
    ExponentFlip {
        /// Byte address within the exponent BRAM.
        addr: usize,
        /// Codeword bit positions (0..13) to flip.
        bits: Vec<u8>,
    },
    /// XOR `mask` into the *payload* of the operand-BRAM byte at
    /// (`bram`, `addr`) with no SECDED in the path — models an
    /// unprotected memory so campaigns can measure the silent-corruption
    /// baseline. Applies on every read; counts only as injected.
    BramRawFlip {
        /// Mantissa BRAM index within the operand buffer.
        bram: usize,
        /// Byte address within the BRAM.
        addr: usize,
        /// Payload bits to XOR on every read.
        mask: u8,
    },
    /// XOR `mask` into the shared-exponent byte at `addr` with no SECDED
    /// in the path (unprotected exponent storage). Applies on every
    /// read; counts only as injected.
    ExponentRawFlip {
        /// Byte address within the exponent BRAM.
        addr: usize,
        /// Payload bits to XOR on every read.
        mask: u8,
    },
    /// Force one output lane of a systolic-array column to a constant
    /// (a stuck-at defect in the drain path). Applies to every access.
    StuckLane {
        /// Column index (0..8).
        col: usize,
        /// Packed-MAC lane within the column: 0 or 1.
        lane: u8,
        /// The stuck value driven onto the lane.
        value: i64,
    },
    /// Drop the cascade partial (PCIN forced to zero) entering slice
    /// `row` on its `nth` cascade step — a broken PCIN route.
    DroppedPartial {
        /// Zero-based cascade-step index for that row.
        nth: u64,
        /// Slice row within the cascade column.
        row: usize,
    },
    /// Flip `bit` of a PSU accumulator word on the `nth` read of cell
    /// (`row`, `col`).
    PsuFlip {
        /// Zero-based read index for that cell.
        nth: u64,
        /// PSU row (0..8).
        row: usize,
        /// PSU column (0..8).
        col: usize,
        /// Bit position within the 64-bit accumulator word.
        bit: u8,
    },
    /// Perturb the exponent unit's alignment result by `delta` on its
    /// `nth` alignment. The unit is TMR-protected: a transient glitch
    /// hits one replica and is voted out (corrected); a `persistent`
    /// defect corrupts all replicas and defeats the vote (uncorrected).
    ExponentUnitGlitch {
        /// Zero-based alignment index.
        nth: u64,
        /// Exponent offset applied when the fault lands.
        delta: i32,
        /// Whether the defect affects all TMR replicas.
        persistent: bool,
    },
}

/// A deterministic set of faults to inject. Install with
/// [`crate::install`]; the plan is live until the returned guard drops.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// The empty plan: hooks run but inject nothing. A run under
    /// `FaultPlan::none()` is bit-identical to an uninstrumented run.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Start an empty plan (alias of [`FaultPlan::none`] for builders).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Add one fault, builder style.
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Generate `n` pseudo-random faults from `seed`. The same seed
    /// always produces the same plan (SplitMix64 expansion).
    pub fn random(seed: u64, n: usize) -> Self {
        let mut state = seed;
        let mut next = move || -> u64 {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut plan = FaultPlan::default();
        for _ in 0..n {
            let spec = match next() % 7 {
                0 => FaultSpec::DspPRegFlip {
                    nth: next() % 256,
                    bit: (next() % 48) as u8,
                },
                1 => FaultSpec::BramFlip {
                    bram: (next() % 16) as usize,
                    addr: (next() % 512) as usize,
                    bits: vec![(next() % 13) as u8],
                },
                2 => FaultSpec::ExponentFlip {
                    addr: (next() % 64) as usize,
                    bits: vec![(next() % 13) as u8],
                },
                3 => FaultSpec::StuckLane {
                    col: (next() % 8) as usize,
                    lane: (next() % 2) as u8,
                    value: (next() % 255) as i64 - 127,
                },
                4 => FaultSpec::DroppedPartial {
                    nth: next() % 64,
                    row: (next() % 8) as usize,
                },
                5 => FaultSpec::PsuFlip {
                    nth: next() % 4,
                    row: (next() % 8) as usize,
                    col: (next() % 8) as usize,
                    bit: (next() % 48) as u8,
                },
                _ => FaultSpec::ExponentUnitGlitch {
                    nth: next() % 64,
                    delta: (next() % 17) as i32 - 8,
                    persistent: next() % 2 == 0,
                },
            };
            plan.specs.push(spec);
        }
        plan
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The planned faults, in insertion order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_deterministic() {
        assert_eq!(FaultPlan::random(7, 20), FaultPlan::random(7, 20));
        assert_ne!(FaultPlan::random(7, 20), FaultPlan::random(8, 20));
    }

    #[test]
    fn builder_accumulates() {
        let p = FaultPlan::new()
            .with(FaultSpec::DspPRegFlip { nth: 0, bit: 4 })
            .with(FaultSpec::StuckLane {
                col: 1,
                lane: 0,
                value: -3,
            });
        assert_eq!(p.specs().len(), 2);
        assert!(!p.is_empty());
        assert!(FaultPlan::none().is_empty());
    }
}
