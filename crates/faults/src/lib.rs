//! Deterministic fault injection and accounting for the bfp8 pipeline.
//!
//! The paper argues bfp8 numerics on a DSP48E2 array are robust enough
//! for production Transformer serving; this crate supplies the fault
//! model needed to demonstrate that claim end to end. It provides:
//!
//! * [`FaultPlan`] — a deterministic, seedable set of [`FaultSpec`]s
//!   (bit-flips in DSP48 P registers, BRAM operand/PSU words and
//!   shared-exponent fields, stuck-at systolic lanes, dropped cascade
//!   partials), installed for the duration of a [`FaultGuard`].
//! * [`ecc`] — a real SECDED Hamming(13,8) codec modelling the BRAM
//!   protection: single-bit upsets are corrected, double-bit upsets are
//!   detected but not corrected. The exponent unit is protected by TMR
//!   majority voting instead (see [`hook::eu_align_exp`]).
//! * [`hook`] — the injection points called from `bfp-dsp48` / `bfp-pu`
//!   behind their `faults` cargo feature. With the feature off the call
//!   sites do not exist; with it on but no plan installed, each hook is
//!   a single relaxed atomic load.
//! * [`FaultReport`] / [`FaultCounters`] — corrected vs. uncorrected
//!   event accounting plus the recovery counters (retries, stepped
//!   cross-checks, fp32 fallbacks) filled in by `bfp-core`.
//!
//! Injection is deterministic: every spec carries its own access
//! counter, so "the `nth` access of this site" always means the same
//! event in a single-threaded run, regardless of wall-clock timing.
//! Under the sharded multi-array executor the *count* of injected
//! events is still exact; only their thread attribution can vary.

mod ecc_impl;
mod plan;
mod report;
mod session;
mod telemetry;

pub mod hook;

pub use plan::{FaultPlan, FaultSpec};
pub use report::{FaultCounters, FaultReport, FleetLedger};
pub use session::{active, counters, install, FaultGuard};
#[cfg(feature = "telemetry")]
pub use telemetry::set_fault_tracer;

/// SECDED Hamming(13,8) codec used for the BRAM ECC model.
pub mod ecc {
    pub use crate::ecc_impl::{decode, encode, Decoded, CODEWORD_BITS};
}
