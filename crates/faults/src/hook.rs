//! Injection points called from the hardware model crates.
//!
//! Call sites in `bfp-dsp48` / `bfp-pu` are compiled only under their
//! `faults` cargo feature, so the default build carries zero overhead.
//! With the feature on but no session installed, every hook returns its
//! input after one relaxed atomic load.

use std::sync::atomic::Ordering;

use crate::ecc_impl::{decode, encode, Decoded};
use crate::plan::FaultSpec;
use crate::session::{active, with_state, FaultState};
use crate::telemetry::note_injection;

/// Flip `bit` in `v`, used for P-register and PSU word upsets.
fn flip(v: i64, bit: u8) -> i64 {
    v ^ (1i64 << (bit as u32 % 64))
}

/// Pass a stored byte through the SECDED model with `bits` upset in its
/// codeword. Single-bit upsets decode back to the stored value
/// (corrected); multi-bit upsets return the corrupted payload
/// (detected, uncorrected).
fn ecc_read(state: &FaultState, site: &'static str, byte: u8, bits: &[u8]) -> u8 {
    if bits.is_empty() {
        return byte;
    }
    let mut cw = encode(byte);
    for &b in bits {
        cw ^= 1 << (b as u16 % 13);
    }
    state.counters.injected.fetch_add(1, Ordering::Relaxed);
    note_injection(site);
    match decode(cw) {
        Decoded::Clean(v) => v,
        Decoded::Corrected(v) => {
            state.counters.ecc_corrected.fetch_add(1, Ordering::Relaxed);
            v
        }
        Decoded::Uncorrected(v) => {
            state
                .counters
                .ecc_uncorrected
                .fetch_add(1, Ordering::Relaxed);
            v
        }
    }
}

/// P-register commit in a DSP48 slice: may flip one accumulator bit.
#[inline]
pub fn dsp_p_commit(p: i64) -> i64 {
    if !active() {
        return p;
    }
    with_state(|state| {
        let mut out = p;
        for (i, spec) in state.specs.iter().enumerate() {
            if let FaultSpec::DspPRegFlip { nth, bit } = spec {
                let idx = state.hits[i].fetch_add(1, Ordering::Relaxed);
                if idx == *nth {
                    state.counters.injected.fetch_add(1, Ordering::Relaxed);
                    note_injection("dsp_p_flip");
                    out = flip(out, *bit);
                }
            }
        }
        out
    })
    .unwrap_or(p)
}

/// Cascade partial entering slice `row`: may be dropped (PCIN ⇒ 0).
#[inline]
pub fn cascade_pcin(row: usize, pcin: i64) -> i64 {
    if !active() {
        return pcin;
    }
    with_state(|state| {
        let mut out = pcin;
        for (i, spec) in state.specs.iter().enumerate() {
            if let FaultSpec::DroppedPartial { nth, row: r } = spec {
                if *r == row {
                    let idx = state.hits[i].fetch_add(1, Ordering::Relaxed);
                    if idx == *nth {
                        state.counters.injected.fetch_add(1, Ordering::Relaxed);
                        state
                            .counters
                            .dropped_partials
                            .fetch_add(1, Ordering::Relaxed);
                        note_injection("dropped_partial");
                        out = 0;
                    }
                }
            }
        }
        out
    })
    .unwrap_or(pcin)
}

/// Systolic column drain lane: may be stuck at a constant.
#[inline]
pub fn array_lane(col: usize, lane: u8, v: i64) -> i64 {
    if !active() {
        return v;
    }
    with_state(|state| {
        let mut out = v;
        for spec in &state.specs {
            if let FaultSpec::StuckLane {
                col: c,
                lane: l,
                value,
            } = spec
            {
                if *c == col && *l == lane {
                    state.counters.injected.fetch_add(1, Ordering::Relaxed);
                    state
                        .counters
                        .stuck_lane_hits
                        .fetch_add(1, Ordering::Relaxed);
                    note_injection("stuck_lane");
                    out = *value;
                }
            }
        }
        out
    })
    .unwrap_or(v)
}

/// Operand-BRAM byte read, through the SECDED ECC model.
#[inline]
pub fn bram_read(bram: usize, addr: usize, byte: u8) -> u8 {
    if !active() {
        return byte;
    }
    with_state(|state| {
        let mut out = byte;
        for spec in &state.specs {
            match spec {
                FaultSpec::BramFlip {
                    bram: b,
                    addr: a,
                    bits,
                } if *b == bram && *a == addr => {
                    out = ecc_read(state, "bram_ecc", out, bits);
                }
                FaultSpec::BramRawFlip {
                    bram: b,
                    addr: a,
                    mask,
                } if *b == bram && *a == addr && *mask != 0 => {
                    state.counters.injected.fetch_add(1, Ordering::Relaxed);
                    note_injection("bram_raw");
                    out ^= mask;
                }
                _ => {}
            }
        }
        out
    })
    .unwrap_or(byte)
}

/// Shared-exponent BRAM byte read, through the SECDED ECC model.
#[inline]
pub fn exp_read(addr: usize, byte: u8) -> u8 {
    if !active() {
        return byte;
    }
    with_state(|state| {
        let mut out = byte;
        for spec in &state.specs {
            match spec {
                FaultSpec::ExponentFlip { addr: a, bits } if *a == addr => {
                    out = ecc_read(state, "exp_ecc", out, bits);
                }
                FaultSpec::ExponentRawFlip { addr: a, mask } if *a == addr && *mask != 0 => {
                    state.counters.injected.fetch_add(1, Ordering::Relaxed);
                    note_injection("exp_raw");
                    out ^= mask;
                }
                _ => {}
            }
        }
        out
    })
    .unwrap_or(byte)
}

/// PSU accumulator word read: may flip one bit of cell (`row`, `col`).
#[inline]
pub fn psu_read(row: usize, col: usize, v: i64) -> i64 {
    if !active() {
        return v;
    }
    with_state(|state| {
        let mut out = v;
        for (i, spec) in state.specs.iter().enumerate() {
            if let FaultSpec::PsuFlip {
                nth,
                row: r,
                col: c,
                bit,
            } = spec
            {
                if *r == row && *c == col {
                    let idx = state.hits[i].fetch_add(1, Ordering::Relaxed);
                    if idx == *nth {
                        state.counters.injected.fetch_add(1, Ordering::Relaxed);
                        note_injection("psu_flip");
                        out = flip(out, *bit);
                    }
                }
            }
        }
        out
    })
    .unwrap_or(v)
}

/// Exponent-unit alignment result, protected by TMR majority voting.
/// A transient glitch perturbs one replica and is voted out; a
/// persistent defect corrupts all three and defeats the vote.
#[inline]
pub fn eu_align_exp(exp: i32) -> i32 {
    if !active() {
        return exp;
    }
    with_state(|state| {
        let mut out = exp;
        for (i, spec) in state.specs.iter().enumerate() {
            if let FaultSpec::ExponentUnitGlitch {
                nth,
                delta,
                persistent,
            } = spec
            {
                let idx = state.hits[i].fetch_add(1, Ordering::Relaxed);
                if idx == *nth {
                    state.counters.injected.fetch_add(1, Ordering::Relaxed);
                    note_injection("eu_glitch");
                    // TMR vote: replicas r0..r2 each recompute the
                    // alignment; the glitch lands on one replica, a
                    // persistent defect on all three.
                    let replicas = if *persistent {
                        [out + delta, out + delta, out + delta]
                    } else {
                        [out + delta, out, out]
                    };
                    let voted = majority3(replicas);
                    if voted == out {
                        state.counters.tmr_corrected.fetch_add(1, Ordering::Relaxed);
                    } else {
                        state
                            .counters
                            .tmr_uncorrected
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    out = voted;
                }
            }
        }
        out
    })
    .unwrap_or(exp)
}

/// Two-of-three majority vote; falls back to the first replica when all
/// three disagree (cannot happen with a single fault source).
fn majority3(r: [i32; 3]) -> i32 {
    if r[0] == r[1] || r[0] == r[2] {
        r[0]
    } else if r[1] == r[2] {
        r[1]
    } else {
        r[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultPlan, FaultSpec};
    use crate::session::{counters, install};

    #[test]
    fn hooks_are_identity_without_session() {
        assert_eq!(dsp_p_commit(42), 42);
        assert_eq!(cascade_pcin(3, -7), -7);
        assert_eq!(array_lane(0, 1, 99), 99);
        assert_eq!(bram_read(0, 0, 0xAB), 0xAB);
        assert_eq!(exp_read(5, 0x12), 0x12);
        assert_eq!(psu_read(1, 1, 1 << 40), 1 << 40);
        assert_eq!(eu_align_exp(-9), -9);
    }

    #[test]
    fn empty_plan_is_identity() {
        let _g = install(FaultPlan::none());
        assert_eq!(dsp_p_commit(42), 42);
        assert_eq!(bram_read(0, 0, 0xAB), 0xAB);
        assert!(!counters().any());
    }

    #[test]
    fn p_reg_flip_fires_once_at_nth() {
        let _g = install(FaultPlan::new().with(FaultSpec::DspPRegFlip { nth: 2, bit: 0 }));
        assert_eq!(dsp_p_commit(8), 8);
        assert_eq!(dsp_p_commit(8), 8);
        assert_eq!(dsp_p_commit(8), 9); // third access: bit 0 flipped
        assert_eq!(dsp_p_commit(8), 8);
        assert_eq!(counters().injected, 1);
    }

    #[test]
    fn single_bit_bram_upset_is_corrected() {
        let _g = install(FaultPlan::new().with(FaultSpec::BramFlip {
            bram: 2,
            addr: 7,
            bits: vec![5],
        }));
        assert_eq!(bram_read(2, 7, 0x5A), 0x5A); // corrected back
        assert_eq!(bram_read(2, 8, 0x5A), 0x5A); // other addr untouched
        let c = counters();
        assert_eq!(c.ecc_corrected, 1);
        assert_eq!(c.ecc_uncorrected, 0);
    }

    #[test]
    fn double_bit_bram_upset_is_detected_not_corrected() {
        let _g = install(FaultPlan::new().with(FaultSpec::BramFlip {
            bram: 0,
            addr: 0,
            bits: vec![3, 9],
        }));
        let got = bram_read(0, 0, 0x5A);
        assert_ne!(got, 0x5A);
        let c = counters();
        assert_eq!(c.ecc_uncorrected, 1);
        assert_eq!(c.uncorrected(), 1);
    }

    #[test]
    fn raw_flips_corrupt_without_ecc_counters() {
        let _g = install(
            FaultPlan::new()
                .with(FaultSpec::BramRawFlip {
                    bram: 1,
                    addr: 4,
                    mask: 0b0001_0100,
                })
                .with(FaultSpec::ExponentRawFlip { addr: 2, mask: 0x80 }),
        );
        assert_eq!(bram_read(1, 4, 0x0F), 0x0F ^ 0b0001_0100);
        assert_eq!(bram_read(1, 5, 0x0F), 0x0F); // other addr untouched
        assert_eq!(exp_read(2, 0x01), 0x81);
        let c = counters();
        // Raw upsets are invisible to the protection counters: injected
        // ticks, nothing is corrected or flagged.
        assert_eq!(c.injected, 2);
        assert_eq!(c.ecc_corrected + c.ecc_uncorrected, 0);
        assert_eq!(c.silent(), 2);
    }

    #[test]
    fn tmr_votes_out_transient_but_not_persistent() {
        {
            let _g = install(FaultPlan::new().with(FaultSpec::ExponentUnitGlitch {
                nth: 0,
                delta: 4,
                persistent: false,
            }));
            assert_eq!(eu_align_exp(10), 10);
            assert_eq!(counters().tmr_corrected, 1);
        }
        {
            let _g = install(FaultPlan::new().with(FaultSpec::ExponentUnitGlitch {
                nth: 0,
                delta: 4,
                persistent: true,
            }));
            assert_eq!(eu_align_exp(10), 14);
            assert_eq!(counters().tmr_uncorrected, 1);
        }
    }

    #[test]
    fn stuck_lane_and_dropped_partial() {
        let _g = install(
            FaultPlan::new()
                .with(FaultSpec::StuckLane {
                    col: 3,
                    lane: 1,
                    value: -5,
                })
                .with(FaultSpec::DroppedPartial { nth: 1, row: 2 }),
        );
        assert_eq!(array_lane(3, 1, 100), -5);
        assert_eq!(array_lane(3, 0, 100), 100);
        assert_eq!(cascade_pcin(2, 77), 77);
        assert_eq!(cascade_pcin(2, 77), 0); // second step dropped
        let c = counters();
        assert_eq!(c.stuck_lane_hits, 1);
        assert_eq!(c.dropped_partials, 1);
    }
}
