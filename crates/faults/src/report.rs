//! Fault-event accounting shared across the stack.

use std::fmt;
use std::ops::Sub;

/// Raw injection/protection event counts, as observed by the hardware
/// model hooks. Snapshots are cheap to take ([`crate::counters`]) and
/// subtract, so recovery code works in deltas around each tile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Total fault activations (every perturbation, corrected or not).
    pub injected: u64,
    /// BRAM single-bit upsets repaired by the SECDED model.
    pub ecc_corrected: u64,
    /// BRAM multi-bit upsets detected but not correctable.
    pub ecc_uncorrected: u64,
    /// Exponent-unit glitches voted out by TMR.
    pub tmr_corrected: u64,
    /// Persistent exponent-unit defects that defeated the TMR vote.
    pub tmr_uncorrected: u64,
    /// Values driven by a stuck-at lane.
    pub stuck_lane_hits: u64,
    /// Cascade partials dropped on a broken PCIN route.
    pub dropped_partials: u64,
}

impl FaultCounters {
    /// Events the protection layer flagged but could not repair. These
    /// are the *detected* faults recovery must act on.
    pub fn uncorrected(&self) -> u64 {
        self.ecc_uncorrected + self.tmr_uncorrected
    }

    /// Events that silently perturb data (no ECC/TMR coverage): P-reg
    /// and PSU flips, stuck lanes, dropped partials. These are caught
    /// by the numeric guardrails or the stepped cross-check instead.
    pub fn silent(&self) -> u64 {
        self.injected
            - self.ecc_corrected
            - self.ecc_uncorrected
            - self.tmr_corrected
            - self.tmr_uncorrected
    }

    /// Whether any event at all was recorded.
    pub fn any(&self) -> bool {
        self.injected != 0
    }

    /// Element-wise accumulate.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.injected += other.injected;
        self.ecc_corrected += other.ecc_corrected;
        self.ecc_uncorrected += other.ecc_uncorrected;
        self.tmr_corrected += other.tmr_corrected;
        self.tmr_uncorrected += other.tmr_uncorrected;
        self.stuck_lane_hits += other.stuck_lane_hits;
        self.dropped_partials += other.dropped_partials;
    }
}

impl FaultCounters {
    /// Element-wise saturating delta. Unlike [`Sub`], which panics in
    /// debug builds when a "later" snapshot is behind an "earlier" one,
    /// this clamps each field at zero — the right behaviour for fleet
    /// bookkeeping where a counter reset (array re-admission after
    /// quarantine) can legally move a baseline past a stale snapshot.
    pub fn saturating_delta(&self, earlier: &FaultCounters) -> FaultCounters {
        FaultCounters {
            injected: self.injected.saturating_sub(earlier.injected),
            ecc_corrected: self.ecc_corrected.saturating_sub(earlier.ecc_corrected),
            ecc_uncorrected: self.ecc_uncorrected.saturating_sub(earlier.ecc_uncorrected),
            tmr_corrected: self.tmr_corrected.saturating_sub(earlier.tmr_corrected),
            tmr_uncorrected: self.tmr_uncorrected.saturating_sub(earlier.tmr_uncorrected),
            stuck_lane_hits: self.stuck_lane_hits.saturating_sub(earlier.stuck_lane_hits),
            dropped_partials: self.dropped_partials.saturating_sub(earlier.dropped_partials),
        }
    }
}

impl Sub for FaultCounters {
    type Output = FaultCounters;

    fn sub(self, rhs: FaultCounters) -> FaultCounters {
        FaultCounters {
            injected: self.injected - rhs.injected,
            ecc_corrected: self.ecc_corrected - rhs.ecc_corrected,
            ecc_uncorrected: self.ecc_uncorrected - rhs.ecc_uncorrected,
            tmr_corrected: self.tmr_corrected - rhs.tmr_corrected,
            tmr_uncorrected: self.tmr_uncorrected - rhs.tmr_uncorrected,
            stuck_lane_hits: self.stuck_lane_hits - rhs.stuck_lane_hits,
            dropped_partials: self.dropped_partials - rhs.dropped_partials,
        }
    }
}

/// End-to-end fault story for one GEMM / inference: what the hardware
/// model saw plus what the recovery layer did about it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Hardware-level events during the covered execution.
    pub counters: FaultCounters,
    /// Faults the detection layer acted on (uncorrected events plus
    /// numeric-guardrail trips).
    pub detected: u64,
    /// Tile re-executions after a detected fault.
    pub retries: u64,
    /// Idle cycles spent in capped exponential backoff before retries.
    pub backoff_cycles: u64,
    /// Suspicious tiles re-run under `Fidelity::Stepped` as cross-check.
    pub stepped_crosschecks: u64,
    /// ABFT checksum mismatches observed (corrected or not). Distinct
    /// from `detected`, which also counts guardrail trips and hardware
    /// uncorrected events.
    pub abft_detections: u64,
    /// ABFT mismatches repaired algebraically in place (single-element
    /// row×column localization), with no retry and no fp32 degradation.
    pub abft_corrections: u64,
    /// Layers degraded from bfp8 to fp32 vector-program execution.
    pub fp32_fallbacks: u64,
}

impl FaultReport {
    /// Whether the execution was completely clean: nothing injected,
    /// nothing detected, no recovery taken.
    pub fn is_clean(&self) -> bool {
        *self == FaultReport::default()
    }

    /// Accumulate another report (e.g. per-layer into per-inference).
    pub fn merge(&mut self, other: &FaultReport) {
        self.counters.merge(&other.counters);
        self.detected += other.detected;
        self.retries += other.retries;
        self.backoff_cycles += other.backoff_cycles;
        self.stepped_crosschecks += other.stepped_crosschecks;
        self.abft_detections += other.abft_detections;
        self.abft_corrections += other.abft_corrections;
        self.fp32_fallbacks += other.fp32_fallbacks;
    }

    /// Field-wise saturating delta against an earlier snapshot (see
    /// [`FaultCounters::saturating_delta`]).
    pub fn saturating_delta(&self, earlier: &FaultReport) -> FaultReport {
        FaultReport {
            counters: self.counters.saturating_delta(&earlier.counters),
            detected: self.detected.saturating_sub(earlier.detected),
            retries: self.retries.saturating_sub(earlier.retries),
            backoff_cycles: self.backoff_cycles.saturating_sub(earlier.backoff_cycles),
            stepped_crosschecks: self
                .stepped_crosschecks
                .saturating_sub(earlier.stepped_crosschecks),
            abft_detections: self.abft_detections.saturating_sub(earlier.abft_detections),
            abft_corrections: self
                .abft_corrections
                .saturating_sub(earlier.abft_corrections),
            fp32_fallbacks: self.fp32_fallbacks.saturating_sub(earlier.fp32_fallbacks),
        }
    }

    /// Detected events still standing after in-place ABFT correction —
    /// the faults a caller must actually discard/retry over.
    pub fn uncorrected_detections(&self) -> u64 {
        self.detected.saturating_sub(self.abft_corrections)
    }
}

/// Per-array fault bookkeeping for a fleet of accelerator arrays.
///
/// The hardware counters are cumulative for the life of a process; a
/// serving runtime instead wants "what happened on array `i` since I
/// last looked" to drive its health state machine. The ledger keeps one
/// baseline [`FaultReport`] per array; [`FleetLedger::take_delta`]
/// returns the events since the previous call and advances the baseline,
/// and [`FleetLedger::reset`] re-zeros one array's history (used when an
/// array is re-admitted after quarantine so old strikes don't count
/// against it twice).
#[derive(Debug, Clone)]
pub struct FleetLedger {
    baselines: Vec<FaultReport>,
    totals: Vec<FaultReport>,
}

impl FleetLedger {
    /// A ledger for `arrays` arrays, all baselines zero.
    pub fn new(arrays: usize) -> Self {
        FleetLedger {
            baselines: vec![FaultReport::default(); arrays],
            totals: vec![FaultReport::default(); arrays],
        }
    }

    /// Number of arrays tracked.
    pub fn arrays(&self) -> usize {
        self.baselines.len()
    }

    /// Record `snapshot` (a cumulative report for array `array`) and
    /// return the saturating delta since the previous snapshot. The
    /// delta is also folded into the array's lifetime total.
    ///
    /// # Panics
    /// Panics if `array` is out of range.
    pub fn take_delta(&mut self, array: usize, snapshot: &FaultReport) -> FaultReport {
        let delta = snapshot.saturating_delta(&self.baselines[array]);
        self.baselines[array] = *snapshot;
        self.totals[array].merge(&delta);
        delta
    }

    /// Fold a per-execution delta (already relative, e.g. one GEMM's
    /// [`FaultReport`]) straight into array `array`'s lifetime total.
    ///
    /// # Panics
    /// Panics if `array` is out of range.
    pub fn record_delta(&mut self, array: usize, delta: &FaultReport) {
        self.totals[array].merge(delta);
    }

    /// Lifetime total for one array.
    ///
    /// # Panics
    /// Panics if `array` is out of range.
    pub fn total(&self, array: usize) -> &FaultReport {
        &self.totals[array]
    }

    /// Forget one array's history (baseline and total), e.g. on
    /// re-admission after a quarantine probe passes.
    ///
    /// # Panics
    /// Panics if `array` is out of range.
    pub fn reset(&mut self, array: usize) {
        self.baselines[array] = FaultReport::default();
        self.totals[array] = FaultReport::default();
    }

    /// Fleet-wide merged total across all arrays.
    pub fn fleet_total(&self) -> FaultReport {
        let mut all = FaultReport::default();
        for t in &self.totals {
            all.merge(t);
        }
        all
    }
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = &self.counters;
        write!(
            f,
            "faults: {} injected ({} ecc-corrected, {} ecc-uncorrected, \
             {} tmr-corrected, {} tmr-uncorrected, {} stuck, {} dropped) | \
             recovery: {} detected, {} retries ({} backoff cycles), \
             {} stepped cross-checks, {} abft detections \
             ({} abft-corrected), {} fp32 fallbacks",
            c.injected,
            c.ecc_corrected,
            c.ecc_uncorrected,
            c.tmr_corrected,
            c.tmr_uncorrected,
            c.stuck_lane_hits,
            c.dropped_partials,
            self.detected,
            self.retries,
            self.backoff_cycles,
            self.stepped_crosschecks,
            self.abft_detections,
            self.abft_corrections,
            self.fp32_fallbacks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_and_merge() {
        let a = FaultCounters {
            injected: 5,
            ecc_corrected: 2,
            ecc_uncorrected: 1,
            ..Default::default()
        };
        let b = FaultCounters {
            injected: 2,
            ecc_corrected: 1,
            ..Default::default()
        };
        let d = a - b;
        assert_eq!(d.injected, 3);
        assert_eq!(d.uncorrected(), 1);
        assert_eq!(d.silent(), 1);

        let mut r = FaultReport::default();
        assert!(r.is_clean());
        r.merge(&FaultReport {
            counters: a,
            detected: 1,
            retries: 1,
            ..Default::default()
        });
        assert!(!r.is_clean());
        assert_eq!(r.counters.injected, 5);
        assert_eq!(r.retries, 1);
    }

    #[test]
    fn saturating_delta_clamps_instead_of_panicking() {
        let behind = FaultCounters {
            injected: 3,
            ecc_corrected: 1,
            ..Default::default()
        };
        let ahead = FaultCounters {
            injected: 1,
            ecc_corrected: 4,
            ..Default::default()
        };
        // `behind - ahead` would underflow on ecc_corrected.
        let d = behind.saturating_delta(&ahead);
        assert_eq!(d.injected, 2);
        assert_eq!(d.ecc_corrected, 0);

        let r = FaultReport {
            counters: behind,
            detected: 2,
            ..Default::default()
        };
        let base = FaultReport {
            detected: 5,
            retries: 1,
            ..Default::default()
        };
        let rd = r.saturating_delta(&base);
        assert_eq!(rd.detected, 0);
        assert_eq!(rd.retries, 0);
        assert_eq!(rd.counters.injected, 3);
    }

    #[test]
    fn abft_fields_thread_through_merge_delta_and_display() {
        let mut r = FaultReport::default();
        r.merge(&FaultReport {
            detected: 3,
            abft_detections: 3,
            abft_corrections: 2,
            ..Default::default()
        });
        assert_eq!(r.abft_detections, 3);
        assert_eq!(r.abft_corrections, 2);
        assert_eq!(r.uncorrected_detections(), 1);
        assert!(!r.is_clean());

        let d = r.saturating_delta(&FaultReport {
            abft_detections: 1,
            abft_corrections: 5,
            ..Default::default()
        });
        assert_eq!(d.abft_detections, 2);
        assert_eq!(d.abft_corrections, 0);

        let s = r.to_string();
        assert!(s.contains("3 abft detections"), "{s}");
        assert!(s.contains("(2 abft-corrected)"), "{s}");
    }

    #[test]
    fn fleet_ledger_tracks_per_array_deltas() {
        let mut ledger = FleetLedger::new(2);
        assert_eq!(ledger.arrays(), 2);

        let snap1 = FaultReport {
            detected: 2,
            retries: 1,
            ..Default::default()
        };
        let d = ledger.take_delta(0, &snap1);
        assert_eq!(d.detected, 2);

        let snap2 = FaultReport {
            detected: 5,
            retries: 1,
            ..Default::default()
        };
        let d = ledger.take_delta(0, &snap2);
        assert_eq!(d.detected, 3);
        assert_eq!(d.retries, 0);
        assert_eq!(ledger.total(0).detected, 5);
        // Array 1 untouched.
        assert!(ledger.total(1).is_clean());

        ledger.record_delta(1, &FaultReport {
            fp32_fallbacks: 1,
            ..Default::default()
        });
        assert_eq!(ledger.fleet_total().fp32_fallbacks, 1);
        assert_eq!(ledger.fleet_total().detected, 5);

        // Reset forgives history and rebases: a stale cumulative snapshot
        // after reset yields the full snapshot as delta, not underflow.
        ledger.reset(0);
        assert!(ledger.total(0).is_clean());
        let d = ledger.take_delta(0, &snap1);
        assert_eq!(d.detected, 2);
    }
}
