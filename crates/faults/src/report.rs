//! Fault-event accounting shared across the stack.

use std::fmt;
use std::ops::Sub;

/// Raw injection/protection event counts, as observed by the hardware
/// model hooks. Snapshots are cheap to take ([`crate::counters`]) and
/// subtract, so recovery code works in deltas around each tile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Total fault activations (every perturbation, corrected or not).
    pub injected: u64,
    /// BRAM single-bit upsets repaired by the SECDED model.
    pub ecc_corrected: u64,
    /// BRAM multi-bit upsets detected but not correctable.
    pub ecc_uncorrected: u64,
    /// Exponent-unit glitches voted out by TMR.
    pub tmr_corrected: u64,
    /// Persistent exponent-unit defects that defeated the TMR vote.
    pub tmr_uncorrected: u64,
    /// Values driven by a stuck-at lane.
    pub stuck_lane_hits: u64,
    /// Cascade partials dropped on a broken PCIN route.
    pub dropped_partials: u64,
}

impl FaultCounters {
    /// Events the protection layer flagged but could not repair. These
    /// are the *detected* faults recovery must act on.
    pub fn uncorrected(&self) -> u64 {
        self.ecc_uncorrected + self.tmr_uncorrected
    }

    /// Events that silently perturb data (no ECC/TMR coverage): P-reg
    /// and PSU flips, stuck lanes, dropped partials. These are caught
    /// by the numeric guardrails or the stepped cross-check instead.
    pub fn silent(&self) -> u64 {
        self.injected
            - self.ecc_corrected
            - self.ecc_uncorrected
            - self.tmr_corrected
            - self.tmr_uncorrected
    }

    /// Whether any event at all was recorded.
    pub fn any(&self) -> bool {
        self.injected != 0
    }

    /// Element-wise accumulate.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.injected += other.injected;
        self.ecc_corrected += other.ecc_corrected;
        self.ecc_uncorrected += other.ecc_uncorrected;
        self.tmr_corrected += other.tmr_corrected;
        self.tmr_uncorrected += other.tmr_uncorrected;
        self.stuck_lane_hits += other.stuck_lane_hits;
        self.dropped_partials += other.dropped_partials;
    }
}

impl Sub for FaultCounters {
    type Output = FaultCounters;

    fn sub(self, rhs: FaultCounters) -> FaultCounters {
        FaultCounters {
            injected: self.injected - rhs.injected,
            ecc_corrected: self.ecc_corrected - rhs.ecc_corrected,
            ecc_uncorrected: self.ecc_uncorrected - rhs.ecc_uncorrected,
            tmr_corrected: self.tmr_corrected - rhs.tmr_corrected,
            tmr_uncorrected: self.tmr_uncorrected - rhs.tmr_uncorrected,
            stuck_lane_hits: self.stuck_lane_hits - rhs.stuck_lane_hits,
            dropped_partials: self.dropped_partials - rhs.dropped_partials,
        }
    }
}

/// End-to-end fault story for one GEMM / inference: what the hardware
/// model saw plus what the recovery layer did about it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Hardware-level events during the covered execution.
    pub counters: FaultCounters,
    /// Faults the detection layer acted on (uncorrected events plus
    /// numeric-guardrail trips).
    pub detected: u64,
    /// Tile re-executions after a detected fault.
    pub retries: u64,
    /// Idle cycles spent in capped exponential backoff before retries.
    pub backoff_cycles: u64,
    /// Suspicious tiles re-run under `Fidelity::Stepped` as cross-check.
    pub stepped_crosschecks: u64,
    /// Layers degraded from bfp8 to fp32 vector-program execution.
    pub fp32_fallbacks: u64,
}

impl FaultReport {
    /// Whether the execution was completely clean: nothing injected,
    /// nothing detected, no recovery taken.
    pub fn is_clean(&self) -> bool {
        *self == FaultReport::default()
    }

    /// Accumulate another report (e.g. per-layer into per-inference).
    pub fn merge(&mut self, other: &FaultReport) {
        self.counters.merge(&other.counters);
        self.detected += other.detected;
        self.retries += other.retries;
        self.backoff_cycles += other.backoff_cycles;
        self.stepped_crosschecks += other.stepped_crosschecks;
        self.fp32_fallbacks += other.fp32_fallbacks;
    }
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = &self.counters;
        write!(
            f,
            "faults: {} injected ({} ecc-corrected, {} ecc-uncorrected, \
             {} tmr-corrected, {} tmr-uncorrected, {} stuck, {} dropped) | \
             recovery: {} detected, {} retries ({} backoff cycles), \
             {} stepped cross-checks, {} fp32 fallbacks",
            c.injected,
            c.ecc_corrected,
            c.ecc_uncorrected,
            c.tmr_corrected,
            c.tmr_uncorrected,
            c.stuck_lane_hits,
            c.dropped_partials,
            self.detected,
            self.retries,
            self.backoff_cycles,
            self.stepped_crosschecks,
            self.fp32_fallbacks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_and_merge() {
        let a = FaultCounters {
            injected: 5,
            ecc_corrected: 2,
            ecc_uncorrected: 1,
            ..Default::default()
        };
        let b = FaultCounters {
            injected: 2,
            ecc_corrected: 1,
            ..Default::default()
        };
        let d = a - b;
        assert_eq!(d.injected, 3);
        assert_eq!(d.uncorrected(), 1);
        assert_eq!(d.silent(), 1);

        let mut r = FaultReport::default();
        assert!(r.is_clean());
        r.merge(&FaultReport {
            counters: a,
            detected: 1,
            retries: 1,
            ..Default::default()
        });
        assert!(!r.is_clean());
        assert_eq!(r.counters.injected, 5);
        assert_eq!(r.retries, 1);
    }
}
