//! SECDED Hamming(13,8) codec: 8 data bits, 4 Hamming check bits, one
//! overall parity bit. This is the standard BRAM36 ECC arrangement
//! scaled down to a byte: any single-bit upset in the 13-bit codeword
//! is corrected, any double-bit upset is detected but not correctable.

/// Codeword bit positions 1..=12 hold Hamming-coded payload; position 0
/// holds the overall parity bit. Data bits live at the non-power-of-two
/// positions.
const DATA_POS: [u16; 8] = [3, 5, 6, 7, 9, 10, 11, 12];
const CHECK_POS: [u16; 4] = [1, 2, 4, 8];

/// Number of bits in a codeword (valid fault-injection positions are
/// `0..CODEWORD_BITS`).
pub const CODEWORD_BITS: u8 = 13;

/// Encode one byte into a 13-bit SECDED codeword.
pub fn encode(data: u8) -> u16 {
    let mut cw: u16 = 0;
    for (i, &p) in DATA_POS.iter().enumerate() {
        if data >> i & 1 == 1 {
            cw |= 1 << p;
        }
    }
    for &p in &CHECK_POS {
        let mut parity = 0;
        for pos in 1..13 {
            if pos & p != 0 {
                parity ^= cw >> pos & 1;
            }
        }
        if parity == 1 {
            cw |= 1 << p;
        }
    }
    let mut overall = 0;
    for pos in 1..13 {
        overall ^= cw >> pos & 1;
    }
    if overall == 1 {
        cw |= 1;
    }
    cw
}

/// Outcome of decoding a (possibly upset) codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoded {
    /// No upset: the stored byte.
    Clean(u8),
    /// Single-bit upset corrected: the repaired byte.
    Corrected(u8),
    /// Double-bit upset detected: the (unreliable) raw data bits.
    Uncorrected(u8),
}

impl Decoded {
    /// The decoded byte, reliable or not.
    pub fn value(self) -> u8 {
        match self {
            Decoded::Clean(b) | Decoded::Corrected(b) | Decoded::Uncorrected(b) => b,
        }
    }
}

fn extract(cw: u16) -> u8 {
    let mut data = 0u8;
    for (i, &p) in DATA_POS.iter().enumerate() {
        if cw >> p & 1 == 1 {
            data |= 1 << i;
        }
    }
    data
}

/// Decode a 13-bit codeword, correcting a single upset bit if present.
pub fn decode(cw: u16) -> Decoded {
    let mut syndrome: u16 = 0;
    for &p in &CHECK_POS {
        let mut parity = 0;
        for pos in 1..13 {
            if pos & p != 0 {
                parity ^= cw >> pos & 1;
            }
        }
        if parity == 1 {
            syndrome |= p;
        }
    }
    let mut overall = 0;
    for pos in 0..13 {
        overall ^= cw >> pos & 1;
    }
    match (syndrome, overall) {
        (0, 0) => Decoded::Clean(extract(cw)),
        // Upset in the overall parity bit itself: data is intact.
        (0, 1) => Decoded::Corrected(extract(cw)),
        // Syndrome names the upset position and overall parity agrees a
        // single bit flipped: repair it.
        (s, 1) if s < 13 => Decoded::Corrected(extract(cw ^ (1 << s))),
        // Even number of upsets (or syndrome out of range): detected,
        // not correctable.
        _ => Decoded::Uncorrected(extract(cw)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_bytes() {
        for b in 0..=255u8 {
            assert_eq!(decode(encode(b)), Decoded::Clean(b));
        }
    }

    #[test]
    fn every_single_bit_upset_is_corrected() {
        for b in [0x00, 0x5A, 0xFF, 0x81] {
            let cw = encode(b);
            for bit in 0..CODEWORD_BITS {
                assert_eq!(
                    decode(cw ^ (1 << bit)),
                    Decoded::Corrected(b),
                    "byte {b:#04x} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn every_double_bit_upset_is_detected() {
        for b in [0x00, 0xA5, 0xFF] {
            let cw = encode(b);
            for i in 0..CODEWORD_BITS {
                for j in (i + 1)..CODEWORD_BITS {
                    let got = decode(cw ^ (1 << i) ^ (1 << j));
                    assert!(
                        matches!(got, Decoded::Uncorrected(_)),
                        "byte {b:#04x} bits {i},{j}: {got:?}"
                    );
                }
            }
        }
    }

    /// The SECDED promise, exhaustively: for *every* byte value and
    /// *every* pair of codeword positions, a double upset decodes as
    /// `Uncorrected` — never as `Clean`, never silently "corrected" to
    /// the wrong byte. 256 × C(13,2) = 19 968 cases.
    #[test]
    fn double_bit_detect_is_exhaustive_over_all_bytes() {
        for b in 0..=255u8 {
            let cw = encode(b);
            for i in 0..CODEWORD_BITS {
                for j in (i + 1)..CODEWORD_BITS {
                    let got = decode(cw ^ (1 << i) ^ (1 << j));
                    assert!(
                        matches!(got, Decoded::Uncorrected(_)),
                        "byte {b:#04x} bits {i},{j}: {got:?}"
                    );
                }
            }
        }
    }

    /// Double upsets may hand back garbage data bits, but the decoder
    /// must still say so: `value()` is only trusted on Clean/Corrected.
    /// Check that at least one double upset actually corrupts the
    /// payload (i.e. detection is doing real work, not vacuous).
    #[test]
    fn some_double_bit_upsets_corrupt_the_payload() {
        let b = 0x5Au8;
        let cw = encode(b);
        let mut corrupted = 0usize;
        for i in 0..CODEWORD_BITS {
            for j in (i + 1)..CODEWORD_BITS {
                if decode(cw ^ (1 << i) ^ (1 << j)).value() != b {
                    corrupted += 1;
                }
            }
        }
        assert!(corrupted > 0, "every double upset left the payload intact");
    }
}
