//! Process-wide fault session: install a plan, observe counters.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

use crate::plan::{FaultPlan, FaultSpec};
use crate::report::FaultCounters;

/// Lock-free event counters, updated by the hooks.
#[derive(Default)]
pub(crate) struct AtomicCounters {
    pub injected: AtomicU64,
    pub ecc_corrected: AtomicU64,
    pub ecc_uncorrected: AtomicU64,
    pub tmr_corrected: AtomicU64,
    pub tmr_uncorrected: AtomicU64,
    pub stuck_lane_hits: AtomicU64,
    pub dropped_partials: AtomicU64,
}

impl AtomicCounters {
    fn snapshot(&self) -> FaultCounters {
        FaultCounters {
            injected: self.injected.load(Ordering::Relaxed),
            ecc_corrected: self.ecc_corrected.load(Ordering::Relaxed),
            ecc_uncorrected: self.ecc_uncorrected.load(Ordering::Relaxed),
            tmr_corrected: self.tmr_corrected.load(Ordering::Relaxed),
            tmr_uncorrected: self.tmr_uncorrected.load(Ordering::Relaxed),
            stuck_lane_hits: self.stuck_lane_hits.load(Ordering::Relaxed),
            dropped_partials: self.dropped_partials.load(Ordering::Relaxed),
        }
    }
}

/// The installed plan plus its live accounting. Each spec gets its own
/// access counter so `nth`-style triggers are deterministic.
pub(crate) struct FaultState {
    pub specs: Vec<FaultSpec>,
    pub hits: Vec<AtomicU64>,
    pub counters: AtomicCounters,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static STATE: RwLock<Option<Arc<FaultState>>> = RwLock::new(None);
// Serialises fault sessions across threads: tests installing plans run
// one at a time instead of corrupting each other's counters.
static SESSION: Mutex<()> = Mutex::new(());

/// Whether a fault session is live. This is the hooks' fast path: one
/// relaxed atomic load when no plan is installed.
#[inline]
pub fn active() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Install `plan` for the lifetime of the returned guard. Sessions are
/// exclusive: a second `install` blocks until the first guard drops.
pub fn install(plan: FaultPlan) -> FaultGuard {
    let permit = SESSION.lock().unwrap_or_else(|e| e.into_inner());
    let specs = plan.specs().to_vec();
    let hits = specs.iter().map(|_| AtomicU64::new(0)).collect();
    let state = Arc::new(FaultState {
        specs,
        hits,
        counters: AtomicCounters::default(),
    });
    *STATE.write().unwrap_or_else(|e| e.into_inner()) = Some(state);
    ENABLED.store(true, Ordering::SeqCst);
    FaultGuard { _permit: permit }
}

/// Snapshot of the live session's event counters (zeros if none).
pub fn counters() -> FaultCounters {
    match &*STATE.read().unwrap_or_else(|e| e.into_inner()) {
        Some(state) => state.counters.snapshot(),
        None => FaultCounters::default(),
    }
}

pub(crate) fn with_state<R>(f: impl FnOnce(&FaultState) -> R) -> Option<R> {
    let guard = STATE.read().unwrap_or_else(|e| e.into_inner());
    guard.as_ref().map(|s| f(s))
}

/// RAII handle for a fault session; dropping it uninstalls the plan and
/// releases the session lock.
pub struct FaultGuard {
    _permit: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
        *STATE.write().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_install_and_clear() {
        assert!(!active());
        {
            let _g = install(FaultPlan::none());
            assert!(active());
            assert_eq!(counters(), FaultCounters::default());
        }
        assert!(!active());
        assert_eq!(counters(), FaultCounters::default());
    }
}
