//! Optional bridge from injection hooks to a span [`Tracer`]
//! (`telemetry` feature): every injected fault event becomes a trace
//! instant on the thread that hit it, so Perfetto shows *where inside a
//! request or engine phase* each upset landed.
//!
//! Without the feature the bridge compiles to an empty inline function;
//! with it but no tracer attached, each hook pays one relaxed atomic
//! load (the same discipline as [`crate::active`]).

#[cfg(feature = "telemetry")]
use std::sync::atomic::{AtomicBool, Ordering};
#[cfg(feature = "telemetry")]
use std::sync::Mutex;

#[cfg(feature = "telemetry")]
use bfp_telemetry::Tracer;

#[cfg(feature = "telemetry")]
static ATTACHED: AtomicBool = AtomicBool::new(false);
#[cfg(feature = "telemetry")]
static TRACER: Mutex<Option<Tracer>> = Mutex::new(None);

/// Attach (`Some`) or detach (`None`) the process-wide fault tracer.
/// Injection instants are recorded into it from every thread that runs
/// a hook while a fault session is live.
#[cfg(feature = "telemetry")]
pub fn set_fault_tracer(tracer: Option<Tracer>) {
    let mut slot = TRACER.lock().unwrap_or_else(|e| e.into_inner());
    ATTACHED.store(tracer.is_some(), Ordering::SeqCst);
    *slot = tracer;
}

/// Record one injected-fault instant named `fault.<site>`. Called from
/// the hooks at every point that books `counters.injected`.
#[inline]
pub(crate) fn note_injection(site: &'static str) {
    #[cfg(feature = "telemetry")]
    {
        if !ATTACHED.load(Ordering::Relaxed) {
            return;
        }
        if let Some(t) = &*TRACER.lock().unwrap_or_else(|e| e.into_inner()) {
            t.instant(format!("fault.{site}"), "faults");
        }
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = site;
}

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::*;
    use crate::plan::{FaultPlan, FaultSpec};
    use crate::session::install;

    #[test]
    fn attached_tracer_receives_injection_instants() {
        let tracer = Tracer::new();
        set_fault_tracer(Some(tracer.clone()));
        {
            let _g = install(FaultPlan::new().with(FaultSpec::DspPRegFlip { nth: 0, bit: 3 }));
            crate::hook::dsp_p_commit(17);
        }
        set_fault_tracer(None);
        // Detached: no further events recorded.
        {
            let _g = install(FaultPlan::new().with(FaultSpec::DspPRegFlip { nth: 0, bit: 3 }));
            crate::hook::dsp_p_commit(17);
        }
        let events = tracer.drain();
        let hits: Vec<_> = events.iter().filter(|e| e.name == "fault.dsp_p_flip").collect();
        assert_eq!(hits.len(), 1, "one instant while attached, none after");
        assert_eq!(hits[0].cat, "faults");
    }
}
