//! Property tests for the processing-unit simulator: systolic results equal
//! block arithmetic for arbitrary operands, fp pipelines equal the scalar
//! datapath models, and cycle accounting follows the paper's equations.

// (i, j, k) matrix notation reads better as index loops here.
#![allow(clippy::needless_range_loop)]

use bfp_arith::bfp::{BfpBlock, BLOCK};
use bfp_arith::fpmul::{HwFp32Mul, MulVariant};
use bfp_pu::array::{stream_pass, SystolicArray};
use bfp_pu::fpu::run_mul_stream;
use bfp_pu::throughput;
use bfp_pu::unit::{Fidelity, ProcessingUnit, UnitConfig};
use proptest::prelude::*;

fn block() -> impl Strategy<Value = BfpBlock> {
    (
        proptest::array::uniform8(proptest::array::uniform8(-127i8..=127)),
        -20i8..20,
    )
        .prop_map(|(man, exp)| BfpBlock { exp, man })
}

fn ref_product(x: &BfpBlock, y: &BfpBlock) -> [[i64; BLOCK]; BLOCK] {
    let mut out = [[0i64; BLOCK]; BLOCK];
    for i in 0..BLOCK {
        for j in 0..BLOCK {
            out[i][j] = (0..BLOCK)
                .map(|k| x.man[i][k] as i64 * y.man[k][j] as i64)
                .sum();
        }
    }
    out
}

fn normal_f32() -> impl Strategy<Value = f32> {
    (any::<u32>(), -20i32..20, any::<bool>()).prop_map(|(frac, e, neg)| {
        let v = f32::from_bits((((e + 127) as u32) << 23) | (frac & 0x7f_ffff));
        if neg {
            -v
        } else {
            v
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn systolic_stream_equals_block_matmul(
        xs in proptest::collection::vec(block(), 1..6),
        y1 in block(),
        y2 in block(),
    ) {
        let mut arr = SystolicArray::new();
        arr.load_y(&y1, &y2);
        let (res, cycles) = stream_pass(&mut arr, &xs);
        prop_assert_eq!(cycles, (8 * xs.len() + 15) as u64);
        for (m, x) in xs.iter().enumerate() {
            prop_assert_eq!(res[m].0, ref_product(x, &y1));
            prop_assert_eq!(res[m].1, ref_product(x, &y2));
        }
    }

    #[test]
    fn stepped_and_functional_units_agree(
        xs in proptest::collection::vec(block(), 1..5),
        y1 in block(),
        y2 in block(),
    ) {
        let run = |fidelity| {
            let mut unit = ProcessingUnit::new(UnitConfig { fidelity, ..Default::default() });
            unit.load_y_pair(&y1, &y2);
            unit.stream_x(&xs);
            (unit.take_psu(xs.len()), unit.stats())
        };
        let (pf, sf) = run(Fidelity::Functional);
        let (ps, ss) = run(Fidelity::Stepped);
        prop_assert_eq!(pf, ps);
        prop_assert_eq!(sf, ss);
    }

    #[test]
    fn fp_mul_pipeline_equals_scalar_model(
        xs in proptest::collection::vec(normal_f32(), 1..40),
    ) {
        let ys: Vec<f32> = xs.iter().rev().cloned().collect();
        let hw = HwFp32Mul::new(MulVariant::DropLsp);
        let (got, cycles) = run_mul_stream(&xs, &ys);
        prop_assert_eq!(cycles, (xs.len() + 8) as u64);
        for k in 0..xs.len() {
            prop_assert_eq!(got[k].to_bits(), hw.mul(xs[k], ys[k]).to_bits());
        }
    }

    #[test]
    fn pass_cycles_follow_eqn9(nx in 1usize..=64) {
        let mut unit = ProcessingUnit::default();
        let xs = vec![BfpBlock::ZERO; nx];
        unit.load_y_pair(&BfpBlock::ZERO, &BfpBlock::ZERO);
        unit.stream_x(&xs);
        prop_assert_eq!(unit.stats().cycles, throughput::bfp_pass_cycles(nx));
    }

    #[test]
    fn fp_stream_cycles_follow_eqn10(l in 1usize..=128) {
        let mut unit = ProcessingUnit::default();
        let xs = vec![1.0f32; 4 * l];
        let _ = unit.fp_mul_stream(&xs, &xs);
        prop_assert_eq!(unit.stats().cycles, throughput::fp32_burst_cycles(l));
    }

    #[test]
    fn psu_accumulation_is_order_invariant_at_same_exponent(
        xs in proptest::collection::vec(block(), 2..5),
        y in block(),
    ) {
        // With one shared Y (both lanes identical) and a fixed exponent,
        // accumulating passes in either order gives the same PSU contents.
        let same_exp: Vec<BfpBlock> = xs.iter().map(|b| BfpBlock { exp: 0, ..*b }).collect();
        let mut u1 = ProcessingUnit::default();
        u1.load_y_pair(&y, &y);
        u1.stream_x(&same_exp);
        u1.load_y_pair(&y, &y);
        u1.stream_x(&same_exp);
        let forward = u1.take_psu(same_exp.len());

        let mut u2 = ProcessingUnit::default();
        u2.load_y_pair(&y, &y);
        u2.stream_x(&same_exp);
        u2.load_y_pair(&y, &y);
        u2.stream_x(&same_exp);
        let again = u2.take_psu(same_exp.len());
        prop_assert_eq!(forward, again);
    }
}
