//! The fp32 layout converter / crossbar (Fig. 2, "fp32 layout crossbar"):
//! "switches and duplicates the fp32 mantissa & exponent slices, to fit the
//! data mapping in Fig. 5(b)".
//!
//! In fp32 multiply mode there is no data reuse, so instead of systolic
//! flow the crossbar broadcasts each operand pair's slices directly to the
//! rows of an FPU column: row `r` receives the `(i_r, j_r)` slice pair of
//! [`RETAINED_TERMS`], pre-shifted by [`split_shift`] so the cascade sum
//! reproduces the shifted partial-product sum of Eqn. 5 (minus the dropped
//! least-significant product, scaled by the common 2⁻⁸ the normaliser
//! restores).

use bfp_arith::softfp::SoftFp32;
use bfp_dsp48::cascade::ColumnInput;

use crate::fpu::{split_shift, FP_PIPE_DEPTH, RETAINED_TERMS};

/// The wiring pattern the crossbar applies to one operand pair: per PE row,
/// the pre-shifted A-port and B-port values.
pub type RowInputs = [ColumnInput; FP_PIPE_DEPTH];

/// The fp32 layout converter.
#[derive(Debug, Clone, Copy, Default)]
pub struct LayoutConverter;

impl LayoutConverter {
    /// Map one unpacked operand pair onto the 8 rows of an FPU column.
    pub fn map_pair(&self, x: SoftFp32, y: SoftFp32) -> RowInputs {
        self.map_slices(x.slices(), y.slices())
    }

    /// Slice-level entry point (what the buffer bytes feed directly).
    pub fn map_slices(&self, xs: [u8; 3], ys: [u8; 3]) -> RowInputs {
        let mut rows = [ColumnInput::default(); FP_PIPE_DEPTH];
        for (r, row) in rows.iter_mut().enumerate() {
            let (i, j) = RETAINED_TERMS[r];
            let (sa, sb) = split_shift(i, j);
            *row = ColumnInput {
                a: (xs[i] as i64) << sa,
                d: 0,
                b: (ys[j] as i64) << sb,
            };
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_row_gets_a_distinct_slice_pair() {
        let x = SoftFp32::unpack(1.2345);
        let y = SoftFp32::unpack(6.789);
        let rows = LayoutConverter.map_pair(x, y);
        assert_eq!(rows.len(), 8);
        // The mapped terms reconstruct the LSP-dropped product when the
        // shifts are undone.
        let mut sum = 0i64;
        for (r, row) in rows.iter().enumerate() {
            let (i, j) = RETAINED_TERMS[r];
            let (sa, sb) = split_shift(i, j);
            let raw = (row.a >> sa) * (row.b >> sb);
            assert_eq!(raw, (x.slices()[i] as i64) * (y.slices()[j] as i64));
            sum += (row.a * row.b) << 8; // restore the common 2^8
        }
        let xs = x.slices();
        let ys = y.slices();
        let full = x.man as i64 * y.man as i64;
        assert_eq!(sum, full - (xs[0] as i64) * (ys[0] as i64));
    }

    #[test]
    fn port_widths_are_respected_for_extreme_mantissas() {
        // All-ones mantissas produce the largest pre-shifted operands; they
        // must stay inside the 27-bit A and 18-bit B ports.
        let x = SoftFp32 {
            sign: false,
            exp: 127,
            man: 0xFF_FFFF,
        };
        let rows = LayoutConverter.map_pair(x, x);
        for row in rows {
            assert!(row.a.unsigned_abs() < 1 << 26, "A port: {:#x}", row.a);
            assert!(row.b.unsigned_abs() < 1 << 17, "B port: {:#x}", row.b);
        }
    }

    #[test]
    fn broadcast_is_stateless_and_deterministic() {
        let x = SoftFp32::unpack(-3.25);
        let y = SoftFp32::unpack(0.875);
        let a = LayoutConverter.map_pair(x, y);
        let b = LayoutConverter.map_pair(x, y);
        for r in 0..8 {
            assert_eq!(a[r].a, b[r].a);
            assert_eq!(a[r].b, b[r].b);
        }
    }
}
