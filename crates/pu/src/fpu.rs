//! fp32 execution on the reconfigured array (paper Fig. 5 b and Eqn. 6).
//!
//! * [`FpMulPipeline`] — one PE column acting as a floating-point
//!   multiplier: each of the 8 rows computes one pre-shifted partial product
//!   of the sliced 24-bit mantissas (the least-significant product is
//!   dropped), the DSP cascade sums them on the way down, and a normaliser
//!   at the bottom truncates back to fp32. A new multiply enters every
//!   cycle; results emerge [`FP_PIPE_DEPTH`] cycles later. Four such columns
//!   run in parallel (buffer bandwidth limit), the other four PE columns
//!   sleep.
//! * [`FpAddPath`] — the fpadd mode: DSPs idle; the exponent unit, shifter
//!   and PSU accumulator implement align–add–normalise.
//!
//! Both are cross-checked bit-for-bit against the functional models in
//! `bfp-arith` (`HwFp32Mul` with `MulVariant::DropLsp` and `HwFp32Add`).

use std::collections::VecDeque;

use bfp_arith::fpadd::{AddVariant, HwFp32Add};
use bfp_arith::softfp::{SoftFp32, FRAC_BITS};
use bfp_dsp48::cascade::{ColumnInput, DspColumn};

use crate::exponent::ExponentUnit;

/// Pipeline depth of the fp32 multiplier column (8 rows = 8 partial
/// products; this is the "+8" in the paper's Eqn. 10).
pub const FP_PIPE_DEPTH: usize = 8;

/// Parallel fp32 lanes (4 columns active; §II-C's bandwidth argument).
pub const FP_LANES: usize = 4;

/// The eight retained `(i, j)` slice-product terms, in the row order they
/// occupy the column (least shift first — the dropped term is `(0, 0)`).
pub const RETAINED_TERMS: [(usize, usize); FP_PIPE_DEPTH] = [
    (0, 1),
    (1, 0),
    (0, 2),
    (1, 1),
    (2, 0),
    (1, 2),
    (2, 1),
    (2, 2),
];

/// Split a partial product's total shift `8(i+j)` into pre-shifts for the
/// 27-bit and 18-bit multiplier ports. Shifts are applied relative to the
/// smallest retained term (8), so the maximum is 24 — "the 27-bit & 18-bit
/// input widths of DSP48E2 support such pre-shifting without encountering
/// overflow" (§II-D). The common factor 2^8 is restored by the normaliser.
#[inline]
pub fn split_shift(i: usize, j: usize) -> (u32, u32) {
    let rel = (8 * (i + j) - 8) as u32;
    let sb = (rel / 2).min(9); // B port: 8-bit slice + ≤9 shift ≤ 17 bits
    (rel - sb, sb)
}

/// Metadata that rides alongside a multiply in the pipeline (the mantissa
/// goes through the DSPs; sign/exponent/zero-ness through the EU and the
/// XOR gate).
#[derive(Debug, Clone, Copy)]
struct MulMeta {
    sign: bool,
    exp: i32,
    zero: bool,
}

/// One fp32 multiplier column (an "FPU" in the paper's terms).
#[derive(Debug)]
pub struct FpMulPipeline {
    col: DspColumn,
    /// Per-row pending jobs: `stage[r]` is the multiply whose `(i, j)` term
    /// row `r` computes this cycle (the delay chains of Table II "Misc").
    stages: VecDeque<Option<([u8; 3], [u8; 3])>>,
    meta: VecDeque<Option<MulMeta>>,
    eu: ExponentUnit,
    issued: u64,
    retired: u64,
}

impl Default for FpMulPipeline {
    fn default() -> Self {
        Self::new()
    }
}

impl FpMulPipeline {
    /// A fresh, empty pipeline.
    pub fn new() -> Self {
        FpMulPipeline {
            col: DspColumn::new(FP_PIPE_DEPTH),
            stages: VecDeque::from(vec![None; FP_PIPE_DEPTH]),
            meta: VecDeque::from(vec![None; FP_PIPE_DEPTH]),
            eu: ExponentUnit,
            issued: 0,
            retired: 0,
        }
    }

    /// Advance one clock, optionally issuing a new multiply at the top.
    /// Returns the multiply completing this cycle, if any.
    pub fn step(&mut self, issue: Option<(SoftFp32, SoftFp32)>) -> Option<f32> {
        // Shift the wavefront down one row.
        self.stages
            .push_front(issue.map(|(a, b)| (a.slices(), b.slices())));
        self.meta.push_front(issue.map(|(a, b)| MulMeta {
            sign: a.sign ^ b.sign, // the XOR gate
            exp: self.eu.fp_product_exp(a.exp, b.exp),
            zero: a.is_zero() || b.is_zero(),
        }));
        let done_job = self.stages.pop_back().expect("fixed-depth pipeline");
        let done_meta = self.meta.pop_back().expect("fixed-depth pipeline");
        if issue.is_some() {
            self.issued += 1;
        }

        // Drive the DSP column: row r works on the job at stage r, wired
        // through the fp32 layout converter (crate::xbar).
        let converter = crate::xbar::LayoutConverter;
        let mut inputs = vec![ColumnInput::default(); FP_PIPE_DEPTH];
        for (r, inp) in inputs.iter_mut().enumerate() {
            if let Some((xs, ys)) = self.stages[r] {
                *inp = converter.map_slices(xs, ys)[r];
            }
        }
        // The job retiring now had its final term summed at the bottom
        // slice *last* cycle; latch that value (the output register) before
        // the column advances.
        let bottom = self.col.bottom();
        self.col.step(&inputs);

        // The job leaving the pipeline has just had its last term added at
        // the bottom slice; normalise it.
        done_job?;
        let meta = done_meta.expect("meta travels with the job");
        self.retired += 1;
        if meta.zero {
            return Some(
                SoftFp32 {
                    sign: meta.sign,
                    exp: 0,
                    man: 0,
                }
                .pack(),
            );
        }
        Some(normalize_product(bottom, meta.sign, meta.exp))
    }

    /// Multiplies issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Multiplies completed so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }
}

/// Normalise the cascade's relative-scaled mantissa product (`Σ terms
/// >> 8`) into an fp32, truncating — identical maths to
/// `HwFp32Mul { DropLsp, Truncate }`.
fn normalize_product(rel_sum: i64, sign: bool, mut exp: i32) -> f32 {
    debug_assert!(rel_sum >= 0, "mantissa magnitudes are unsigned");
    let full = (rel_sum as u64) << 8; // restore the common 2^8
    debug_assert!((1 << 46..1 << 48).contains(&full));
    let shift = if full >> 47 != 0 {
        exp += 1;
        FRAC_BITS + 1
    } else {
        FRAC_BITS
    };
    SoftFp32 {
        sign,
        exp,
        man: (full >> shift) as u32,
    }
    .pack()
}

/// The fpadd datapath: per lane, one align–add–normalise per cycle with the
/// same pipeline-fill accounting as the multiplier.
#[derive(Debug, Default)]
pub struct FpAddPath {
    adder: HwFp32Add,
    pipe: VecDeque<Option<f32>>,
    issued: u64,
}

impl FpAddPath {
    /// A fresh adder path (48-bit accumulator alignment, truncation).
    pub fn new() -> Self {
        FpAddPath {
            adder: HwFp32Add::new(AddVariant::Exact48),
            pipe: VecDeque::from(vec![None; FP_PIPE_DEPTH]),
            issued: 0,
        }
    }

    /// Advance one clock; optionally issue `x + y`. Returns the addition
    /// completing this cycle.
    pub fn step(&mut self, issue: Option<(f32, f32)>) -> Option<f32> {
        self.pipe.push_front(issue.map(|(x, y)| {
            self.issued += 1;
            self.adder.add(x, y)
        }));
        self.pipe.pop_back().expect("fixed-depth pipeline")
    }

    /// Additions issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

/// Run a full multiply stream through one pipeline, returning the results
/// and the cycle count (`len + FP_PIPE_DEPTH`, the paper's Eqn. 10 shape).
pub fn run_mul_stream(xs: &[f32], ys: &[f32]) -> (Vec<f32>, u64) {
    assert_eq!(xs.len(), ys.len(), "operand streams must pair up");
    let mut pipe = FpMulPipeline::new();
    let mut out = Vec::with_capacity(xs.len());
    let total = xs.len() + FP_PIPE_DEPTH;
    for t in 0..total {
        let issue = if t < xs.len() {
            Some((SoftFp32::unpack(xs[t]), SoftFp32::unpack(ys[t])))
        } else {
            None
        };
        if let Some(v) = pipe.step(issue) {
            out.push(v);
        }
    }
    (out, total as u64)
}

/// Run a full addition stream through one lane.
pub fn run_add_stream(xs: &[f32], ys: &[f32]) -> (Vec<f32>, u64) {
    assert_eq!(xs.len(), ys.len(), "operand streams must pair up");
    let mut path = FpAddPath::new();
    let mut out = Vec::with_capacity(xs.len());
    let total = xs.len() + FP_PIPE_DEPTH;
    for t in 0..total {
        let issue = if t < xs.len() {
            Some((xs[t], ys[t]))
        } else {
            None
        };
        if let Some(v) = path.step(issue) {
            out.push(v);
        }
    }
    (out, total as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfp_arith::fpmul::{HwFp32Mul, MulVariant};

    #[test]
    fn retained_terms_cover_all_but_lsp() {
        let mut seen: Vec<(usize, usize)> = RETAINED_TERMS.to_vec();
        seen.sort();
        let mut want: Vec<(usize, usize)> = (0..3)
            .flat_map(|i| (0..3).map(move |j| (i, j)))
            .filter(|&(i, j)| (i, j) != (0, 0))
            .collect();
        want.sort();
        assert_eq!(seen, want);
    }

    #[test]
    fn split_shift_respects_port_widths() {
        for &(i, j) in &RETAINED_TERMS {
            let (sa, sb) = split_shift(i, j);
            assert_eq!((sa + sb + 8) as usize, 8 * (i + j));
            assert!(8 + sa <= 26, "A port: {}", 8 + sa);
            assert!(8 + sb <= 17, "B port: {}", 8 + sb);
        }
    }

    #[test]
    fn pipeline_matches_functional_model_bit_exactly() {
        let hw = HwFp32Mul::new(MulVariant::DropLsp);
        let mut state = 0xbeefu32;
        let mut next = || {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            f32::from_bits(
                0x3d00_0000u32.wrapping_add((state % 8) << 23) | ((state >> 9) & 0x7f_ffff),
            ) * if state & 1 == 0 { 1.0 } else { -1.0 }
        };
        let xs: Vec<f32> = (0..500).map(|_| next()).collect();
        let ys: Vec<f32> = (0..500).map(|_| next()).collect();
        let (got, cycles) = run_mul_stream(&xs, &ys);
        assert_eq!(got.len(), 500);
        assert_eq!(cycles, 500 + 8);
        for k in 0..500 {
            assert_eq!(
                got[k].to_bits(),
                hw.mul(xs[k], ys[k]).to_bits(),
                "stream position {k}: {} * {}",
                xs[k],
                ys[k]
            );
        }
    }

    #[test]
    fn zero_operands_flow_through() {
        let (got, _) = run_mul_stream(&[0.0, 2.0, -3.0], &[5.0, 0.0, -0.0]);
        assert_eq!(got[0], 0.0);
        assert_eq!(got[1], 0.0);
        assert_eq!(got[2].to_bits(), 0.0f32.to_bits()); // -3 * -0 = +0
    }

    #[test]
    fn results_keep_stream_order() {
        let xs = [1.0f32, 2.0, 3.0, 4.0];
        let ys = [10.0f32, 10.0, 10.0, 10.0];
        let (got, _) = run_mul_stream(&xs, &ys);
        assert_eq!(got, vec![10.0, 20.0, 30.0, 40.0]);
    }

    #[test]
    fn pipeline_latency_is_depth() {
        let mut pipe = FpMulPipeline::new();
        let one = SoftFp32::unpack(3.0);
        let two = SoftFp32::unpack(7.0);
        let mut first_done = None;
        for t in 0..FP_PIPE_DEPTH + 1 {
            let r = pipe.step(if t == 0 { Some((one, two)) } else { None });
            if let (Some(v), None) = (r, first_done) {
                first_done = Some(t);
                assert_eq!(v, 21.0);
            }
        }
        assert_eq!(
            first_done,
            Some(FP_PIPE_DEPTH),
            "result after exactly 8 cycles"
        );
    }

    #[test]
    fn add_stream_matches_functional_adder() {
        let adder = HwFp32Add::new(AddVariant::Exact48);
        let xs: Vec<f32> = (0..100).map(|k| (k as f32 - 50.0) * 1.37).collect();
        let ys: Vec<f32> = (0..100).map(|k| (k as f32) * -0.73 + 5.0).collect();
        let (got, cycles) = run_add_stream(&xs, &ys);
        assert_eq!(cycles, 108);
        for k in 0..100 {
            assert_eq!(got[k].to_bits(), adder.add(xs[k], ys[k]).to_bits());
        }
    }

    #[test]
    fn back_to_back_streams_are_independent() {
        let (a, _) = run_mul_stream(&[1.5], &[2.0]);
        let (b, _) = run_mul_stream(&[1.5], &[2.0]);
        assert_eq!(a, b);
        assert_eq!(a[0], 3.0);
    }
}
