//! The paper's analytical throughput model (Eqns. 7–10).
//!
//! All functions return operations per second for a *single* processing
//! array at clock `freq` (Hz). System-level scaling (15 units × 2 arrays on
//! the U280) lives in `bfp-platform`.

use crate::array::{COLS, ROWS};
use crate::fpu::{FP_LANES, FP_PIPE_DEPTH};

/// Eqn. 7 — peak bfp8 throughput (OPS) of one array:
/// `rows × columns × 2 (combined MAC) × 2 (mul+add per MAC) × freq`.
pub fn bfp_peak_ops(freq: f64) -> f64 {
    (ROWS * COLS * 2 * 2) as f64 * freq
}

/// Eqn. 9 — sustained bfp8 throughput with `n_x` streamed X blocks per
/// Y-stationary pass: `peak × 8·N_X / (8·N_X + 15)`.
///
/// # Panics
/// Panics if `n_x` is zero.
pub fn bfp_throughput(n_x: usize, freq: f64) -> f64 {
    assert!(n_x > 0, "a pass needs at least one X block");
    let useful = (8 * n_x) as f64;
    bfp_peak_ops(freq) * useful / (useful + 15.0)
}

/// Eqn. 8 — peak fp32 throughput (FLOPS) of one array: `4 × freq` (only 4
/// PE columns have buffer bandwidth).
pub fn fp32_peak_flops(freq: f64) -> f64 {
    FP_LANES as f64 * freq
}

/// Eqn. 10 — sustained fp32 throughput with per-lane stream length `l_fp`:
/// `peak × L / (L + 8)` (no Y preload, so the 15 becomes the 8-deep
/// pipeline fill).
///
/// # Panics
/// Panics if `l_fp` is zero.
pub fn fp32_throughput(l_fp: usize, freq: f64) -> f64 {
    assert!(l_fp > 0, "stream length must be positive");
    let l = l_fp as f64;
    fp32_peak_flops(freq) * l / (l + FP_PIPE_DEPTH as f64)
}

/// Cycles of one bfp8 pass (Y preload + stream + triangle): `8·N_X + 15`.
pub fn bfp_pass_cycles(n_x: usize) -> u64 {
    (8 * n_x + 15) as u64
}

/// Cycles of one fp32 stream burst: `L + 8`.
pub fn fp32_burst_cycles(l_fp: usize) -> u64 {
    (l_fp + FP_PIPE_DEPTH) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    const F300: f64 = 300.0e6;

    #[test]
    fn peak_matches_paper_headline() {
        // 8×8×2×2×300 MHz = 76.8 GOPS per array; ×30 arrays = 2.304 TOPS,
        // the denominator of the paper's "over 95% of theoretical maximum".
        assert_eq!(bfp_peak_ops(F300), 76.8e9);
    }

    #[test]
    fn eqn9_utilization_at_nx64() {
        // 8·64/(8·64+15) = 512/527 = 97.15% — quoted verbatim in §II-D.
        let u = bfp_throughput(64, F300) / bfp_peak_ops(F300);
        assert!((u - 0.9715).abs() < 5e-4, "utilization {u}");
    }

    #[test]
    fn eqn9_monotone_in_stream_length() {
        let t8 = bfp_throughput(8, F300);
        let t16 = bfp_throughput(16, F300);
        let t32 = bfp_throughput(32, F300);
        let t64 = bfp_throughput(64, F300);
        assert!(t8 < t16 && t16 < t32 && t32 < t64);
        assert!(t64 < bfp_peak_ops(F300));
    }

    #[test]
    fn fp32_peak_is_1p2_gflops() {
        assert_eq!(fp32_peak_flops(F300), 1.2e9);
    }

    #[test]
    fn fp32_at_l128_reproduces_33_88_gflops_system() {
        // 1.2 GFLOPS × 128/136 × 30 arrays = 33.88 GFLOPS — the paper's
        // headline fp32 number falls out exactly.
        let sys = fp32_throughput(128, F300) * 30.0;
        assert!(
            (sys / 1e9 - 33.88).abs() < 0.005,
            "got {} GFLOPS",
            sys / 1e9
        );
    }

    #[test]
    fn cycle_helpers_match_denominators() {
        assert_eq!(bfp_pass_cycles(64), 527);
        assert_eq!(fp32_burst_cycles(128), 136);
    }

    #[test]
    #[should_panic(expected = "at least one X block")]
    fn zero_stream_rejected() {
        bfp_throughput(0, F300);
    }
}
