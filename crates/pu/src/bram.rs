//! BRAM18 buffer model and the Fig. 4 data layout.
//!
//! Each X/Y buffer is built from byte-wide BRAM18 blocks (one BRAM18 per
//! "column" of the layout figure):
//!
//! * **bfp8 mode** — 16 mantissa BRAMs hold two block slots (8 BRAMs per
//!   block, one BRAM per block column, addressed by row), plus one exponent
//!   BRAM. The Y buffer replicates its outputs so both resident blocks feed
//!   the array every cycle (combined-MAC optimisation).
//! * **fp32 mode** — the same 16 mantissa BRAMs are repurposed: each fp32
//!   number owns 4 consecutive BRAMs (3 mantissa slices + 1 exponent byte),
//!   so the output bandwidth is 4 fp32 values per cycle — which is why only
//!   4 PE columns (4 FPUs) can run in parallel (§II-C).
//!
//! Capacity limits from the paper: at most 64 continuous X blocks per pass
//! (so the PSU buffer is 512 deep) and fp32 streams of at most 128 per lane.

use bfp_arith::bfp::{BfpBlock, BLOCK};
use bfp_arith::softfp::SoftFp32;

/// Bytes stored in one byte-wide BRAM18 (18 kib ≈ 2048 × 9; we use 8 data
/// bits per entry, as the paper's layout does).
pub const BRAM18_BYTES: usize = 2048;

/// Mantissa BRAMs per buffer (Fig. 4 indexes them 0‥15).
pub const MANTISSA_BRAMS: usize = 16;

/// Maximum number of continuous X blocks per pass ("we set the maximum
/// number of continuous X blocks as 64 due to the BRAM18 architecture").
pub const MAX_X_BLOCKS: usize = 64;

/// PSU buffer depth: 64 blocks × 8 rows.
pub const PSU_DEPTH: usize = MAX_X_BLOCKS * BLOCK;

/// Maximum fp32 stream length per lane ("set to a maximum of 128 due to the
/// memory capacity of a single BRAM18 block").
pub const MAX_FP_STREAM: usize = 128;

/// fp32 lanes per buffer: 16 BRAMs / 4 BRAMs-per-number.
pub const FP_LANES: usize = 4;

/// One byte-wide BRAM18.
#[derive(Debug, Clone)]
pub struct Bram18 {
    data: Vec<u8>,
}

impl Default for Bram18 {
    fn default() -> Self {
        Self::new()
    }
}

impl Bram18 {
    /// A zeroed BRAM.
    pub fn new() -> Self {
        Bram18 {
            data: vec![0; BRAM18_BYTES],
        }
    }

    /// Read one byte.
    ///
    /// # Panics
    /// Panics when `addr` exceeds the physical depth — the controller must
    /// never generate such an address.
    #[inline]
    pub fn read(&self, addr: usize) -> u8 {
        self.data[addr]
    }

    /// Write one byte.
    #[inline]
    pub fn write(&mut self, addr: usize, byte: u8) {
        self.data[addr] = byte;
    }
}

/// An X or Y operand buffer: 16 mantissa BRAMs + 1 exponent BRAM, with both
/// layouts of Fig. 4.
#[derive(Debug, Clone)]
pub struct OperandBuffer {
    mantissa: Vec<Bram18>,
    exponent: Bram18,
}

impl Default for OperandBuffer {
    fn default() -> Self {
        Self::new()
    }
}

impl OperandBuffer {
    /// A zeroed buffer.
    pub fn new() -> Self {
        OperandBuffer {
            mantissa: vec![Bram18::new(); MANTISSA_BRAMS],
            exponent: Bram18::new(),
        }
    }

    /// Total BRAM18 count (for the resource model): 16 mantissa + 1 exp.
    pub const BRAM_COUNT: usize = MANTISSA_BRAMS + 1;

    // ------------------------------------------------------------------
    // bfp8 layout
    // ------------------------------------------------------------------

    /// Store a bfp8 block in slot parity `slot` (0 or 1: which half of the
    /// mantissa BRAMs) at block index `idx` within that half.
    ///
    /// Column `j` of the block lands in BRAM `slot*8 + j`; rows are
    /// consecutive addresses starting at `idx * 8`.
    ///
    /// # Panics
    /// Panics if `slot > 1` or the block index exceeds the BRAM depth.
    pub fn store_block(&mut self, slot: usize, idx: usize, block: &BfpBlock) {
        assert!(slot < 2, "two block slots per buffer");
        assert!(
            idx < MAX_X_BLOCKS,
            "at most {MAX_X_BLOCKS} continuous blocks"
        );
        let base = idx * BLOCK;
        for j in 0..BLOCK {
            let bram = &mut self.mantissa[slot * BLOCK + j];
            for i in 0..BLOCK {
                bram.write(base + i, block.man[i][j] as u8);
            }
        }
        // Exponent BRAM: one byte per (slot, idx).
        self.exponent
            .write(slot * MAX_X_BLOCKS + idx, block.exp as u8);
    }

    /// Load a bfp8 block back (the per-cycle hardware reads one row of it;
    /// the block view is what the controller reasons about).
    pub fn load_block(&self, slot: usize, idx: usize) -> BfpBlock {
        assert!(slot < 2 && idx < MAX_X_BLOCKS);
        let base = idx * BLOCK;
        let mut man = [[0i8; BLOCK]; BLOCK];
        for j in 0..BLOCK {
            let bram = &self.mantissa[slot * BLOCK + j];
            for i in 0..BLOCK {
                let byte = bram.read(base + i);
                // Fault model: stored-cell upsets surface at read time,
                // filtered through the SECDED ECC.
                #[cfg(feature = "faults")]
                let byte = bfp_faults::hook::bram_read(slot * BLOCK + j, base + i, byte);
                man[i][j] = byte as i8;
            }
        }
        let exp_byte = self.exponent.read(slot * MAX_X_BLOCKS + idx);
        #[cfg(feature = "faults")]
        let exp_byte = bfp_faults::hook::exp_read(slot * MAX_X_BLOCKS + idx, exp_byte);
        BfpBlock {
            exp: exp_byte as i8,
            man,
        }
    }

    /// One cycle's worth of bfp8 reads: row `row` of block `idx` from slot
    /// `slot` — 8 bytes, one from each of the slot's BRAMs.
    pub fn read_row(&self, slot: usize, idx: usize, row: usize) -> [i8; BLOCK] {
        assert!(slot < 2 && idx < MAX_X_BLOCKS && row < BLOCK);
        let mut out = [0i8; BLOCK];
        for (j, v) in out.iter_mut().enumerate() {
            let byte = self.mantissa[slot * BLOCK + j].read(idx * BLOCK + row);
            #[cfg(feature = "faults")]
            let byte = bfp_faults::hook::bram_read(slot * BLOCK + j, idx * BLOCK + row, byte);
            *v = byte as i8;
        }
        out
    }

    // ------------------------------------------------------------------
    // fp32 layout
    // ------------------------------------------------------------------

    /// Store an fp32 value at stream position `pos` of lane `lane`
    /// (0‥3). BRAMs `4*lane .. 4*lane+2` take the three mantissa slices and
    /// BRAM `4*lane + 3` the exponent byte; the separate exponent BRAM
    /// stays inactive, as in Fig. 4.
    ///
    /// # Panics
    /// Panics if the value is not finite (control logic filters specials
    /// before they reach the buffers), or lane/pos exceed the layout.
    pub fn store_fp32(&mut self, lane: usize, pos: usize, value: f32, sign_bank: &mut SignBank) {
        assert!(lane < FP_LANES, "4 fp32 lanes per buffer");
        assert!(
            pos < MAX_FP_STREAM,
            "fp32 stream limited to {MAX_FP_STREAM}"
        );
        let u = SoftFp32::unpack(value);
        let s = u.slices();
        for (k, &byte) in s.iter().enumerate() {
            self.mantissa[4 * lane + k].write(pos, byte);
        }
        self.mantissa[4 * lane + 3].write(pos, u.exp as u8);
        sign_bank.set(lane, pos, u.sign);
    }

    /// Load an fp32 value back from the lane layout.
    pub fn load_fp32(&self, lane: usize, pos: usize, sign_bank: &SignBank) -> SoftFp32 {
        assert!(lane < FP_LANES && pos < MAX_FP_STREAM);
        #[cfg(feature = "faults")]
        let rd = |k: usize| {
            bfp_faults::hook::bram_read(4 * lane + k, pos, self.mantissa[4 * lane + k].read(pos))
        };
        #[cfg(not(feature = "faults"))]
        let rd = |k: usize| self.mantissa[4 * lane + k].read(pos);
        let s = [rd(0), rd(1), rd(2)];
        let exp = rd(3) as i32;
        SoftFp32::from_slices(sign_bank.get(lane, pos), exp, s)
    }
}

/// Sign bits of buffered fp32 values. The paper fuses the sign into the
/// signed-magnitude mantissa and processes it with "a simple XOR gate";
/// physically it rides in the 9th (parity) bit of the BRAM18s, which the
/// byte-oriented model above doesn't carry — so it gets its own tiny bank.
#[derive(Debug, Clone, Default)]
pub struct SignBank {
    bits: Vec<u64>,
}

impl SignBank {
    /// An empty (all-positive) bank.
    pub fn new() -> Self {
        SignBank {
            bits: vec![0; FP_LANES * MAX_FP_STREAM / 64 + 1],
        }
    }

    fn index(lane: usize, pos: usize) -> (usize, u32) {
        let bit = lane * MAX_FP_STREAM + pos;
        (bit / 64, (bit % 64) as u32)
    }

    /// Set the sign of `(lane, pos)`.
    pub fn set(&mut self, lane: usize, pos: usize, sign: bool) {
        if self.bits.is_empty() {
            *self = Self::new();
        }
        let (w, b) = Self::index(lane, pos);
        if sign {
            self.bits[w] |= 1 << b;
        } else {
            self.bits[w] &= !(1 << b);
        }
    }

    /// Read the sign of `(lane, pos)`.
    pub fn get(&self, lane: usize, pos: usize) -> bool {
        if self.bits.is_empty() {
            return false;
        }
        let (w, b) = Self::index(lane, pos);
        self.bits[w] >> b & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(seed: i8) -> BfpBlock {
        let mut man = [[0i8; BLOCK]; BLOCK];
        for i in 0..BLOCK {
            for j in 0..BLOCK {
                man[i][j] = seed.wrapping_mul(7).wrapping_add((i * 8 + j) as i8);
            }
        }
        BfpBlock { exp: seed, man }
    }

    #[test]
    fn bram_roundtrip() {
        let mut b = Bram18::new();
        b.write(0, 0xAB);
        b.write(BRAM18_BYTES - 1, 0xCD);
        assert_eq!(b.read(0), 0xAB);
        assert_eq!(b.read(BRAM18_BYTES - 1), 0xCD);
        assert_eq!(b.read(1), 0);
    }

    #[test]
    #[should_panic]
    fn bram_bounds_checked() {
        let b = Bram18::new();
        b.read(BRAM18_BYTES);
    }

    #[test]
    fn block_roundtrip_both_slots() {
        let mut buf = OperandBuffer::new();
        let b0 = block(3);
        let b1 = block(-5);
        buf.store_block(0, 0, &b0);
        buf.store_block(1, 0, &b1);
        assert_eq!(buf.load_block(0, 0), b0);
        assert_eq!(buf.load_block(1, 0), b1);
    }

    #[test]
    fn blocks_at_max_index() {
        let mut buf = OperandBuffer::new();
        let b = block(9);
        buf.store_block(0, MAX_X_BLOCKS - 1, &b);
        assert_eq!(buf.load_block(0, MAX_X_BLOCKS - 1), b);
    }

    #[test]
    #[should_panic(expected = "continuous blocks")]
    fn block_index_limit_enforced() {
        let mut buf = OperandBuffer::new();
        buf.store_block(0, MAX_X_BLOCKS, &block(1));
    }

    #[test]
    fn read_row_matches_block_row() {
        let mut buf = OperandBuffer::new();
        let b = block(11);
        buf.store_block(1, 7, &b);
        for r in 0..BLOCK {
            let row = buf.read_row(1, 7, r);
            for j in 0..BLOCK {
                assert_eq!(row[j], b.man[r][j]);
            }
        }
    }

    #[test]
    fn fp32_roundtrip() {
        let mut buf = OperandBuffer::new();
        let mut signs = SignBank::new();
        let vals = [1.5f32, -2.25e10, 3.1425926, -1e-20];
        for (lane, &v) in vals.iter().enumerate() {
            buf.store_fp32(lane, 0, v, &mut signs);
        }
        for (lane, &v) in vals.iter().enumerate() {
            assert_eq!(buf.load_fp32(lane, 0, &signs).pack(), v);
        }
    }

    #[test]
    fn fp32_full_stream_depth() {
        let mut buf = OperandBuffer::new();
        let mut signs = SignBank::new();
        for pos in 0..MAX_FP_STREAM {
            let v = (pos as f32 + 1.0) * if pos % 2 == 0 { 1.25 } else { -0.75 };
            buf.store_fp32(2, pos, v, &mut signs);
        }
        for pos in 0..MAX_FP_STREAM {
            let want = (pos as f32 + 1.0) * if pos % 2 == 0 { 1.25 } else { -0.75 };
            assert_eq!(buf.load_fp32(2, pos, &signs).pack(), want);
        }
    }

    #[test]
    #[should_panic(expected = "4 fp32 lanes")]
    fn fp32_lane_limit() {
        let mut buf = OperandBuffer::new();
        let mut signs = SignBank::new();
        buf.store_fp32(4, 0, 1.0, &mut signs);
    }

    #[test]
    fn fp32_layout_reuses_block_brams() {
        // Storing a block then an fp32 in overlapping BRAMs overwrites the
        // shared bytes: the two layouts really do share storage.
        let mut buf = OperandBuffer::new();
        let mut signs = SignBank::new();
        buf.store_block(0, 0, &block(1));
        let before = buf.load_block(0, 0);
        buf.store_fp32(0, 0, -123.456, &mut signs);
        let after = buf.load_block(0, 0);
        assert_ne!(before, after, "fp32 store must clobber block bytes");
    }

    #[test]
    fn sign_bank_isolated_per_position() {
        let mut s = SignBank::new();
        s.set(1, 5, true);
        assert!(s.get(1, 5));
        assert!(!s.get(1, 4));
        assert!(!s.get(0, 5));
        s.set(1, 5, false);
        assert!(!s.get(1, 5));
    }

    #[test]
    fn capacity_constants_match_paper() {
        assert_eq!(PSU_DEPTH, 512);
        assert_eq!(MAX_X_BLOCKS, 64);
        assert_eq!(MAX_FP_STREAM, 128);
        assert_eq!(FP_LANES, 4);
        assert_eq!(OperandBuffer::BRAM_COUNT, 17);
    }
}
