//! The unit's instruction set: the run-time programmability that lets one
//! hardware block serve bfp8 GEMMs and arbitrary fp32 vector programs.
//!
//! The paper argues that because non-linear functions keep changing (GELU,
//! SiLU/GLU variants, …), the accelerator must be *programmable* rather
//! than hard-wired. This module is the contract between the compiler in
//! `bfp-core` and the controller: a [`Program`] is a flat list of
//! [`Instr`]uctions over operand registers, interpreted by
//! [`Interpreter::run`] with the same cycle accounting as the high-level
//! API (it *is* the high-level API underneath — one execution path).

use bfp_arith::bfp::{BfpBlock, WideBlock};

use crate::unit::{CycleStats, ProcessingUnit};

/// Identifier of a block buffer in the interpreter's register file.
pub type BlockReg = usize;
/// Identifier of an fp32 vector in the interpreter's register file.
pub type VecReg = usize;

/// One controller instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Load two Y blocks into the stationary registers (8 cycles).
    LoadY {
        /// First resident block.
        y1: BlockReg,
        /// Second resident block (combined-MAC lane 2).
        y2: BlockReg,
    },
    /// Stream X blocks `xs` against the resident pair, accumulating in PSU.
    StreamX {
        /// The streamed blocks, in order.
        xs: Vec<BlockReg>,
    },
    /// Drain the first `n` PSU slots into the wide-block output list.
    Drain {
        /// Slots to read.
        n: usize,
    },
    /// Drain the first `n` PSU slots **through the quantizer unit** into
    /// block registers: lane-1 results land in `dst1..dst1+n`, lane-2 in
    /// `dst2..dst2+n`. This keeps chained GEMMs on-chip (result of one
    /// layer feeds the X stream of the next without a host round-trip).
    DrainRequant {
        /// Slots to read.
        n: usize,
        /// First destination register for lane-1 blocks.
        dst1: BlockReg,
        /// First destination register for lane-2 blocks.
        dst2: BlockReg,
    },
    /// Element-wise fp32 multiply of two vector registers into a third.
    FpMul {
        /// Left operand vector.
        a: VecReg,
        /// Right operand vector.
        b: VecReg,
        /// Destination vector.
        dst: VecReg,
    },
    /// Element-wise fp32 add of two vector registers into a third.
    FpAdd {
        /// Left operand vector.
        a: VecReg,
        /// Right operand vector.
        b: VecReg,
        /// Destination vector.
        dst: VecReg,
    },
    /// Element-wise fp32 division — executed on the **host CPU** ("division
    /// operations in fp32 ... are executed on the host CPU due to lack of
    /// support", §III-B). Counted separately, costs no array cycles.
    HostDiv {
        /// Numerator vector.
        a: VecReg,
        /// Denominator vector.
        b: VecReg,
        /// Destination vector.
        dst: VecReg,
    },
}

/// A program plus its operand environment.
#[derive(Debug, Default, Clone)]
pub struct Program {
    /// Instruction list, executed in order.
    pub code: Vec<Instr>,
}

/// Execution environment: block and vector register files.
#[derive(Debug, Default, Clone)]
pub struct Env {
    /// bfp8 block registers.
    pub blocks: Vec<BfpBlock>,
    /// fp32 vector registers.
    pub vectors: Vec<Vec<f32>>,
}

impl Env {
    /// Register a block, returning its id.
    pub fn push_block(&mut self, b: BfpBlock) -> BlockReg {
        self.blocks.push(b);
        self.blocks.len() - 1
    }

    /// Register a vector, returning its id.
    pub fn push_vector(&mut self, v: Vec<f32>) -> VecReg {
        self.vectors.push(v);
        self.vectors.len() - 1
    }
}

/// What a program run produced.
#[derive(Debug, Default)]
pub struct RunResult {
    /// Wide blocks drained from the PSU, in drain order.
    pub drained: Vec<(WideBlock, WideBlock)>,
    /// Cycle statistics of the run.
    pub stats: CycleStats,
    /// Number of fp32 divisions delegated to the host.
    pub host_divs: u64,
}

/// Interprets programs on a processing unit.
#[derive(Debug, Default)]
pub struct Interpreter {
    unit: ProcessingUnit,
}

impl Interpreter {
    /// An interpreter around a default-configured unit.
    pub fn new(unit: ProcessingUnit) -> Self {
        Interpreter { unit }
    }

    /// Execute `prog` against `env`.
    ///
    /// # Panics
    /// Panics on out-of-range register ids or operand-length mismatches —
    /// programs are compiler-generated and must be well formed.
    pub fn run(&mut self, prog: &Program, env: &mut Env) -> RunResult {
        let mut result = RunResult::default();
        self.unit.take_stats();
        for instr in &prog.code {
            match instr {
                Instr::LoadY { y1, y2 } => {
                    let (a, b) = (env.blocks[*y1], env.blocks[*y2]);
                    self.unit.load_y_pair(&a, &b);
                }
                Instr::StreamX { xs } => {
                    let blocks: Vec<BfpBlock> = xs.iter().map(|&r| env.blocks[r]).collect();
                    self.unit.stream_x(&blocks);
                }
                Instr::Drain { n } => {
                    result.drained.extend(self.unit.take_psu(*n));
                }
                Instr::DrainRequant { n, dst1, dst2 } => {
                    let (n, dst1, dst2) = (*n, *dst1, *dst2);
                    let blocks = self.unit.take_psu_requantized(n);
                    let need = dst1.max(dst2) + n;
                    if env.blocks.len() < need {
                        env.blocks.resize(need, BfpBlock::ZERO);
                    }
                    for (k, (b1, b2)) in blocks.into_iter().enumerate() {
                        env.blocks[dst1 + k] = b1;
                        env.blocks[dst2 + k] = b2;
                    }
                }
                Instr::FpMul { a, b, dst } => {
                    let out = self
                        .unit
                        .fp_mul_stream(&env.vectors[*a].clone(), &env.vectors[*b].clone());
                    set_vec(env, *dst, out);
                }
                Instr::FpAdd { a, b, dst } => {
                    let out = self
                        .unit
                        .fp_add_stream(&env.vectors[*a].clone(), &env.vectors[*b].clone());
                    set_vec(env, *dst, out);
                }
                Instr::HostDiv { a, b, dst } => {
                    let (va, vb) = (env.vectors[*a].clone(), env.vectors[*b].clone());
                    assert_eq!(va.len(), vb.len(), "HostDiv length mismatch");
                    result.host_divs += va.len() as u64;
                    let out = va.iter().zip(&vb).map(|(&x, &y)| x / y).collect();
                    set_vec(env, *dst, out);
                }
            }
        }
        result.stats = self.unit.take_stats();
        result
    }
}

fn set_vec(env: &mut Env, reg: VecReg, v: Vec<f32>) {
    if reg >= env.vectors.len() {
        env.vectors.resize(reg + 1, Vec::new());
    }
    env.vectors[reg] = v;
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfp_arith::bfp::BLOCK;

    fn block(f: impl Fn(usize, usize) -> i8) -> BfpBlock {
        let mut man = [[0i8; BLOCK]; BLOCK];
        for (i, row) in man.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = f(i, j);
            }
        }
        BfpBlock { exp: 0, man }
    }

    #[test]
    fn matmul_program_reproduces_high_level_api() {
        let x = block(|i, j| (i * 3 + j) as i8 - 10);
        let y1 = block(|i, j| (i + j * 2) as i8 - 7);
        let y2 = block(|i, j| (2 * i + j) as i8 - 5);

        let mut env = Env::default();
        let rx = env.push_block(x);
        let r1 = env.push_block(y1);
        let r2 = env.push_block(y2);
        let prog = Program {
            code: vec![
                Instr::LoadY { y1: r1, y2: r2 },
                Instr::StreamX { xs: vec![rx] },
                Instr::Drain { n: 1 },
            ],
        };
        let mut interp = Interpreter::default();
        let res = interp.run(&prog, &mut env);
        assert_eq!(res.drained.len(), 1);
        assert_eq!(res.drained[0].0, x.matmul(&y1));
        assert_eq!(res.drained[0].1, x.matmul(&y2));
        assert_eq!(res.stats.cycles, 8 + 8 + 7); // LoadY + one-block pass
    }

    #[test]
    fn vector_program_with_host_division() {
        // Compute (a*b + a) / b element-wise — a GELU-ish shape of ops.
        let mut env = Env::default();
        let a = env.push_vector(vec![1.0, 2.0, 3.0, 4.0]);
        let b = env.push_vector(vec![2.0, 4.0, 8.0, 16.0]);
        let prog = Program {
            code: vec![
                Instr::FpMul { a, b, dst: 2 },
                Instr::FpAdd { a: 2, b: a, dst: 3 },
                Instr::HostDiv { a: 3, b, dst: 4 },
            ],
        };
        let mut interp = Interpreter::default();
        let res = interp.run(&prog, &mut env);
        assert_eq!(res.host_divs, 4);
        assert_eq!(env.vectors[4], vec![1.5, 2.5, 3.375, 4.25]);
        // Two vector ops of length 4: each one burst of lane length 1.
        assert_eq!(res.stats.flops, 8);
        assert!(res.stats.cycles >= 2 * 9);
    }

    #[test]
    fn drain_requant_feeds_a_chained_gemm() {
        // Compute (X*Y)*Y entirely on-chip: the first product is
        // requantized into block registers and streamed back as X.
        let x = block(|i, j| (i * 2 + j) as i8 - 7);
        let y = block(|i, j| (i + j * 3) as i8 - 11);
        let mut env = Env::default();
        let rx = env.push_block(x);
        let ry = env.push_block(y);
        let mid1 = env.push_block(BfpBlock::ZERO); // destination registers
        let _mid2 = env.push_block(BfpBlock::ZERO);
        let prog = Program {
            code: vec![
                Instr::LoadY { y1: ry, y2: ry },
                Instr::StreamX { xs: vec![rx] },
                Instr::DrainRequant {
                    n: 1,
                    dst1: mid1,
                    dst2: _mid2,
                },
                Instr::LoadY { y1: ry, y2: ry },
                Instr::StreamX { xs: vec![mid1] },
                Instr::Drain { n: 1 },
            ],
        };
        let mut interp = Interpreter::default();
        let res = interp.run(&prog, &mut env);
        // Reference: requantize the first product, then multiply.
        let mid_ref = x.matmul(&y).requantize();
        assert_eq!(res.drained[0].0, mid_ref.matmul(&y));
    }

    #[test]
    fn drain_without_stream_returns_zeros() {
        let prog = Program {
            code: vec![Instr::Drain { n: 2 }],
        };
        let mut interp = Interpreter::default();
        let mut env = Env::default();
        let res = interp.run(&prog, &mut env);
        assert_eq!(res.drained.len(), 2);
        assert_eq!(res.drained[0].0, WideBlock::ZERO);
    }

    #[test]
    fn mixed_mode_program_switches_cleanly() {
        let x = block(|i, j| (i + j) as i8);
        let mut env = Env::default();
        let rx = env.push_block(x);
        let va = env.push_vector(vec![1.5f32; 16]);
        let prog = Program {
            code: vec![
                Instr::LoadY { y1: rx, y2: rx },
                Instr::StreamX { xs: vec![rx] },
                Instr::FpMul {
                    a: va,
                    b: va,
                    dst: 2,
                },
                Instr::Drain { n: 1 },
            ],
        };
        let mut interp = Interpreter::default();
        let res = interp.run(&prog, &mut env);
        assert_eq!(res.drained[0].0, x.matmul(&x));
        assert_eq!(env.vectors[2], vec![2.25f32; 16]);
    }
}
