//! The multi-mode processing unit: array + buffers + exponent unit + PSU
//! accumulators + controller, with cycle accounting.
//!
//! The unit executes the three workload shapes of the paper:
//!
//! * **bfp8 MatMul** — Y-stationary passes over a grid of 8×8 blocks
//!   ([`ProcessingUnit::matmul_grid`]), accumulating K-partial products in
//!   the PSU bank with exponent alignment;
//! * **fp32 multiply streams** ([`ProcessingUnit::fp_mul_stream`]) on the 4
//!   reconfigured FPU columns;
//! * **fp32 add streams** ([`ProcessingUnit::fp_add_stream`]) on the
//!   shifter + accumulator path.
//!
//! Two execution fidelities produce *identical* numerics: `Stepped` clocks
//! every DSP48 through the systolic wavefront; `Functional` uses the
//! value-level models of `bfp-arith`. The equivalence is pinned by tests;
//! `Functional` exists so model-scale workloads (a whole DeiT forward pass)
//! finish in reasonable wall time.

use bfp_arith::bfp::{BfpBlock, BlockAcc, WideBlock, BLOCK};
use bfp_arith::quant::BfpMatrix;

use crate::array::{stream_pass, SystolicArray, COLS, ROWS};
use crate::bram::{OperandBuffer, MAX_FP_STREAM, MAX_X_BLOCKS};
use crate::fpu::{run_add_stream, run_mul_stream, FP_LANES};
use crate::throughput;

/// How faithfully to execute the datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fidelity {
    /// Clock every DSP48 (slow, bit-exact by construction).
    Stepped,
    /// Value-level models from `bfp-arith` (fast, proven equivalent).
    #[default]
    Functional,
}

/// Unit configuration.
#[derive(Debug, Clone, Copy)]
pub struct UnitConfig {
    /// Execution fidelity.
    pub fidelity: Fidelity,
    /// Clock frequency in Hz (300 MHz on the U280 prototype).
    pub freq_hz: f64,
}

impl Default for UnitConfig {
    fn default() -> Self {
        UnitConfig {
            fidelity: Fidelity::Functional,
            freq_hz: 300.0e6,
        }
    }
}

/// Cycle and operation counters for one workload execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CycleStats {
    /// Total clock cycles, including preload and pipeline fill.
    pub cycles: u64,
    /// Cycles spent preloading Y blocks.
    pub preload_cycles: u64,
    /// bfp8 operations performed (2 ops per MAC, both lanes).
    pub bfp_ops: u64,
    /// fp32 operations performed.
    pub flops: u64,
}

impl CycleStats {
    /// Wall-clock seconds at frequency `freq_hz`.
    pub fn seconds(&self, freq_hz: f64) -> f64 {
        self.cycles as f64 / freq_hz
    }

    /// Achieved bfp8 throughput in OPS.
    pub fn bfp_ops_per_sec(&self, freq_hz: f64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.bfp_ops as f64 / self.seconds(freq_hz)
    }

    /// Achieved fp32 throughput in FLOPS.
    pub fn flops_per_sec(&self, freq_hz: f64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.flops as f64 / self.seconds(freq_hz)
    }

    /// Accumulate another stat block (sequential composition).
    pub fn merge(&mut self, other: &CycleStats) {
        self.cycles += other.cycles;
        self.preload_cycles += other.preload_cycles;
        self.bfp_ops += other.bfp_ops;
        self.flops += other.flops;
    }
}

/// A grid of 8×8 bfp blocks (row-major tiles of a matrix).
pub type BlockGrid = Vec<Vec<BfpBlock>>;

/// One per-lane fp32 stream executor: results plus cycles consumed.
type LaneFn = fn(&[f32], &[f32]) -> (Vec<f32>, u64);

/// Convert a quantized matrix (block = 8) into the unit's tile grid.
///
/// # Panics
/// Panics if `m` was not quantized with 8×8 blocks.
pub fn grid_from_matrix(m: &BfpMatrix) -> BlockGrid {
    let (br, bc) = m.grid();
    (0..br)
        .map(|bi| (0..bc).map(|bj| m.block8_at(bi, bj)).collect())
        .collect()
}

/// The multi-mode processing unit.
///
/// ```
/// use bfp_arith::bfp::BfpBlock;
/// use bfp_pu::unit::ProcessingUnit;
///
/// let mut unit = ProcessingUnit::default();
/// let y = BfpBlock { exp: 0, man: [[2; 8]; 8] };
/// let x = BfpBlock { exp: 0, man: [[3; 8]; 8] };
/// unit.load_y_pair(&y, &y);
/// unit.stream_x(&[x]);
/// let (z1, _z2) = unit.take_psu(1)[0];
/// assert_eq!(z1.man[0][0], 8 * 3 * 2);        // one 8-term dot product
/// assert_eq!(unit.stats().cycles, 8 + 8 + 7); // Eqn. 9: preload + pass
/// ```
#[derive(Debug)]
pub struct ProcessingUnit {
    cfg: UnitConfig,
    array: SystolicArray,
    resident_y: Option<(BfpBlock, BfpBlock)>,
    /// PSU bank: per streamed-X slot, one accumulator per combined-MAC lane.
    psu: Vec<[BlockAcc; 2]>,
    /// X operand buffer (only routed through in `Stepped` fidelity, where
    /// the Fig. 4 BRAM layout is part of the modelled datapath).
    x_buf: OperandBuffer,
    /// Y operand buffer.
    y_buf: OperandBuffer,
    stats: CycleStats,
}

impl Default for ProcessingUnit {
    fn default() -> Self {
        Self::new(UnitConfig::default())
    }
}

impl ProcessingUnit {
    /// A unit with the given configuration.
    pub fn new(cfg: UnitConfig) -> Self {
        ProcessingUnit {
            cfg,
            array: SystolicArray::new(),
            resident_y: None,
            psu: vec![[BlockAcc::new(), BlockAcc::new()]; MAX_X_BLOCKS],
            x_buf: OperandBuffer::new(),
            y_buf: OperandBuffer::new(),
            stats: CycleStats::default(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> UnitConfig {
        self.cfg
    }

    /// Cumulative statistics since the last [`ProcessingUnit::take_stats`].
    pub fn stats(&self) -> CycleStats {
        self.stats
    }

    /// Return and reset the statistics.
    pub fn take_stats(&mut self) -> CycleStats {
        std::mem::take(&mut self.stats)
    }

    // ------------------------------------------------------------------
    // bfp8 MatMul mode
    // ------------------------------------------------------------------

    /// Load a stationary Y pair (8 preload cycles; Fig. 5 a step 1).
    ///
    /// In `Stepped` fidelity the pair round-trips through the Y operand
    /// buffer's Fig. 4 layout (slot 0 / slot 1) before reaching the array
    /// registers, exactly like the hardware preload path.
    pub fn load_y_pair(&mut self, y1: &BfpBlock, y2: &BfpBlock) {
        self.array.flush();
        if self.cfg.fidelity == Fidelity::Stepped {
            self.y_buf.store_block(0, 0, y1);
            self.y_buf.store_block(1, 0, y2);
            let b1 = self.y_buf.load_block(0, 0);
            let b2 = self.y_buf.load_block(1, 0);
            self.array.load_y(&b1, &b2);
            self.resident_y = Some((b1, b2));
        } else {
            self.array.load_y(y1, y2);
            self.resident_y = Some((*y1, *y2));
        }
        self.stats.cycles += ROWS as u64;
        self.stats.preload_cycles += ROWS as u64;
    }

    /// Stream X blocks against the resident Y pair, accumulating each
    /// block's pair of products into PSU slots `0..xs.len()`.
    ///
    /// # Panics
    /// Panics if no Y pair is resident or more than [`MAX_X_BLOCKS`] blocks
    /// are streamed (the PSU buffer depth).
    pub fn stream_x(&mut self, xs: &[BfpBlock]) {
        let (y1, y2) = self.resident_y.expect("load_y_pair before stream_x");
        assert!(!xs.is_empty(), "empty X stream");
        assert!(
            xs.len() <= MAX_X_BLOCKS,
            "PSU depth limits a pass to {MAX_X_BLOCKS} blocks"
        );

        match self.cfg.fidelity {
            Fidelity::Stepped => {
                self.array.flush();
                self.array.load_y(&y1, &y2); // registers survive, reload is free
                                             // Route the X stream through the operand buffer's Fig. 4
                                             // layout: two block slots side by side, read back row by
                                             // row as the systolic feed.
                for (m, x) in xs.iter().enumerate() {
                    self.x_buf.store_block(m % 2, m / 2, x);
                }
                let from_buf: Vec<BfpBlock> = (0..xs.len())
                    .map(|m| self.x_buf.load_block(m % 2, m / 2))
                    .collect();
                // The layout is lossless unless a fault session is
                // deliberately upsetting the stored cells.
                #[cfg(feature = "faults")]
                let pristine = !bfp_faults::active();
                #[cfg(not(feature = "faults"))]
                let pristine = true;
                if pristine {
                    debug_assert_eq!(from_buf, xs, "buffer layout must be lossless");
                }
                let (products, _) = stream_pass(&mut self.array, &from_buf);
                for (m, (p1, p2)) in products.into_iter().enumerate() {
                    let e1 = xs[m].exp as i32 + y1.exp as i32;
                    let e2 = xs[m].exp as i32 + y2.exp as i32;
                    self.psu[m][0]
                        .add(&WideBlock { exp: e1, man: p1 })
                        .expect("PSU accumulator overflow");
                    self.psu[m][1]
                        .add(&WideBlock { exp: e2, man: p2 })
                        .expect("PSU accumulator overflow");
                }
            }
            Fidelity::Functional => {
                for (m, x) in xs.iter().enumerate() {
                    self.psu[m][0]
                        .add(&x.matmul(&y1))
                        .expect("PSU accumulator overflow");
                    self.psu[m][1]
                        .add(&x.matmul(&y2))
                        .expect("PSU accumulator overflow");
                }
            }
        }

        // Eqn. 9 accounting: 8 cycles per block + 7 triangle (preload is
        // charged by load_y_pair, completing the "+15").
        self.stats.cycles += (8 * xs.len() + 7) as u64;
        // 2 lanes × 8×8×8 MACs × 2 ops per streamed block.
        self.stats.bfp_ops += (xs.len() * 2 * ROWS * COLS * BLOCK * 2) as u64;
    }

    /// Drain the PSU bank: the accumulated `(lane1, lane2)` wide blocks for
    /// the first `n` slots, clearing them for the next output tile.
    pub fn take_psu(&mut self, n: usize) -> Vec<(WideBlock, WideBlock)> {
        assert!(n <= MAX_X_BLOCKS);
        // Fault model: PSU words are read out through the drain port,
        // where stored-bit upsets become visible.
        #[cfg(feature = "faults")]
        fn drain(mut w: WideBlock) -> WideBlock {
            if bfp_faults::active() {
                for (r, row) in w.man.iter_mut().enumerate() {
                    for (c, v) in row.iter_mut().enumerate() {
                        *v = bfp_faults::hook::psu_read(r, c, *v);
                    }
                }
            }
            w
        }
        #[cfg(not(feature = "faults"))]
        fn drain(w: WideBlock) -> WideBlock {
            w
        }
        let mut out = Vec::with_capacity(n);
        for slot in self.psu.iter_mut().take(n) {
            out.push((drain(slot[0].value()), drain(slot[1].value())));
            slot[0].clear();
            slot[1].clear();
        }
        out
    }

    /// Drain the PSU bank through the quantizer unit: results re-enter the
    /// bfp8 domain so they can feed the X buffer of a *chained* GEMM
    /// without leaving the chip (the on-chip path a compiler uses between
    /// back-to-back linear layers).
    pub fn take_psu_requantized(&mut self, n: usize) -> Vec<(BfpBlock, BfpBlock)> {
        self.take_psu(n)
            .into_iter()
            .map(|(a, b)| (a.requantize(), b.requantize()))
            .collect()
    }

    /// Full blocked GEMM: `X (Mb×Kb) · Y (Kb×Nb)` over 8×8 tiles.
    ///
    /// Iterates Y pairs over the N dimension (two output column-tiles per
    /// pass thanks to the combined MAC), keeps each pair stationary across
    /// the whole K reduction, and streams M tiles in PSU-sized chunks.
    /// Returns the `Mb×Nb` grid of wide output blocks.
    ///
    /// # Panics
    /// Panics on ragged or mismatched grids.
    pub fn matmul_grid(&mut self, x: &BlockGrid, y: &BlockGrid) -> Vec<Vec<WideBlock>> {
        let mb = x.len();
        assert!(mb > 0, "empty X grid");
        let kb = x[0].len();
        assert!(x.iter().all(|r| r.len() == kb), "ragged X grid");
        assert_eq!(y.len(), kb, "inner tile dimension mismatch");
        let nb = y[0].len();
        assert!(y.iter().all(|r| r.len() == nb), "ragged Y grid");

        let mut out = vec![vec![WideBlock::ZERO; nb]; mb];
        for n0 in (0..nb).step_by(2) {
            let n1 = n0 + 1;
            for m0 in (0..mb).step_by(MAX_X_BLOCKS) {
                let chunk = (mb - m0).min(MAX_X_BLOCKS);
                for k in 0..kb {
                    let y1 = y[k][n0];
                    let y2 = if n1 < nb { y[k][n1] } else { BfpBlock::ZERO };
                    self.load_y_pair(&y1, &y2);
                    let xs: Vec<BfpBlock> = (0..chunk).map(|dm| x[m0 + dm][k]).collect();
                    self.stream_x(&xs);
                }
                for (dm, (z1, z2)) in self.take_psu(chunk).into_iter().enumerate() {
                    out[m0 + dm][n0] = z1;
                    if n1 < nb {
                        out[m0 + dm][n1] = z2;
                    }
                }
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // fp32 modes
    // ------------------------------------------------------------------

    /// Element-wise fp32 multiply of two equal-length streams on the 4 FPU
    /// lanes. Streams longer than one burst (4 lanes × 128) are split into
    /// bursts, each paying the 8-cycle pipeline fill (Eqn. 10).
    pub fn fp_mul_stream(&mut self, xs: &[f32], ys: &[f32]) -> Vec<f32> {
        self.fp_stream(xs, ys, run_mul_stream)
    }

    /// Element-wise fp32 addition of two equal-length streams.
    pub fn fp_add_stream(&mut self, xs: &[f32], ys: &[f32]) -> Vec<f32> {
        self.fp_stream(xs, ys, run_add_stream)
    }

    fn fp_stream(&mut self, xs: &[f32], ys: &[f32], lane_fn: LaneFn) -> Vec<f32> {
        assert_eq!(xs.len(), ys.len(), "operand streams must pair up");
        let mut out = vec![0f32; xs.len()];
        // Burst = what the buffers hold: 4 lanes × MAX_FP_STREAM.
        let burst = FP_LANES * MAX_FP_STREAM;
        for (b, chunk) in xs.chunks(burst).enumerate() {
            let base = b * burst;
            let lane_len = chunk.len().div_ceil(FP_LANES);
            // Interleave round-robin across lanes, as the crossbar does.
            let mut lane_cycles = 0u64;
            for lane in 0..FP_LANES {
                let idx: Vec<usize> = (0..lane_len)
                    .map(|p| base + p * FP_LANES + lane)
                    .filter(|&i| i < xs.len())
                    .collect();
                if idx.is_empty() {
                    continue;
                }
                let lx: Vec<f32> = idx.iter().map(|&i| xs[i]).collect();
                let ly: Vec<f32> = idx.iter().map(|&i| ys[i]).collect();
                let (res, cyc) = lane_fn(&lx, &ly);
                lane_cycles = lane_cycles.max(cyc);
                for (&i, &v) in idx.iter().zip(&res) {
                    out[i] = v;
                }
            }
            // Lanes run in lockstep: the burst costs the longest lane.
            self.stats.cycles += lane_cycles;
            self.stats.flops += chunk.len() as u64;
        }
        out
    }
}

/// Sanity helper: sustained throughput predicted by Eqn. 9 for the stats of
/// a pure matmul workload (used by benches to plot measured vs theoretical).
pub fn theoretical_bfp_ops(n_x: usize, passes: u64, freq: f64) -> f64 {
    let _ = passes;
    throughput::bfp_throughput(n_x, freq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfp_arith::matrix::MatF32;
    use bfp_arith::quant::Quantizer;
    use bfp_arith::stats::ErrorStats;

    fn quantize(m: &MatF32) -> BfpMatrix {
        Quantizer::paper().quantize(m).unwrap()
    }

    fn wide_grid_to_mat(grid: &[Vec<WideBlock>], rows: usize, cols: usize) -> MatF32 {
        MatF32::from_fn(rows, cols, |i, j| {
            let w = &grid[i / 8][j / 8];
            (w.man[i % 8][j % 8] as f64 * (w.exp as f64).exp2()) as f32
        })
    }

    #[test]
    fn matmul_grid_matches_functional_bfp_matmul() {
        let a = MatF32::from_fn(24, 32, |i, j| ((i * 7 + j * 3) % 19) as f32 - 9.0);
        let b = MatF32::from_fn(32, 16, |i, j| ((i * 5 + j * 11) % 17) as f32 - 8.0);
        let (qa, qb) = (quantize(&a), quantize(&b));
        let mut unit = ProcessingUnit::default();
        let grid = unit.matmul_grid(&grid_from_matrix(&qa), &grid_from_matrix(&qb));
        let got = wide_grid_to_mat(&grid, 24, 16);
        let want = qa.matmul(&qb);
        assert_eq!(
            got, want,
            "unit result must equal the functional block matmul"
        );
        // And for these exact integer inputs, also the float reference.
        assert_eq!(got, a.matmul(&b));
    }

    #[test]
    fn stepped_and_functional_agree_bit_exactly() {
        let a = MatF32::from_fn(16, 16, |i, j| {
            ((i as f32 * 0.9 - j as f32 * 1.3).sin()) * 4.0
        });
        let b = MatF32::from_fn(16, 24, |i, j| {
            ((i as f32 * 0.3 + j as f32 * 0.7).cos()) * 2.0
        });
        let (qa, qb) = (quantize(&a), quantize(&b));
        let (ga, gb) = (grid_from_matrix(&qa), grid_from_matrix(&qb));

        let mut f_unit = ProcessingUnit::new(UnitConfig {
            fidelity: Fidelity::Functional,
            ..Default::default()
        });
        let mut s_unit = ProcessingUnit::new(UnitConfig {
            fidelity: Fidelity::Stepped,
            ..Default::default()
        });
        let gf = f_unit.matmul_grid(&ga, &gb);
        let gs = s_unit.matmul_grid(&ga, &gb);
        assert_eq!(gf, gs);
        assert_eq!(
            f_unit.stats(),
            s_unit.stats(),
            "cycle accounting must not depend on fidelity"
        );
    }

    #[test]
    fn odd_tile_counts_use_zero_lane() {
        // Nb = 3: the second lane of the last pass multiplies a zero block
        // and must not corrupt anything.
        let a = MatF32::from_fn(8, 8, |i, j| (i + j) as f32);
        let b = MatF32::from_fn(8, 24, |i, j| (i * 24 + j) as f32 % 13.0 - 6.0);
        let (qa, qb) = (quantize(&a), quantize(&b));
        let mut unit = ProcessingUnit::default();
        let grid = unit.matmul_grid(&grid_from_matrix(&qa), &grid_from_matrix(&qb));
        let got = wide_grid_to_mat(&grid, 8, 24);
        assert_eq!(got, a.matmul(&b));
    }

    #[test]
    fn cycle_accounting_matches_eqn9() {
        // One Y pair, one pass of Nx blocks: 8 (preload) + 8*Nx + 7 cycles.
        for nx in [1usize, 8, 32, 64] {
            let mut unit = ProcessingUnit::default();
            let xs = vec![BfpBlock::ZERO; nx];
            unit.load_y_pair(&BfpBlock::ZERO, &BfpBlock::ZERO);
            unit.stream_x(&xs);
            assert_eq!(
                unit.stats().cycles,
                throughput::bfp_pass_cycles(nx),
                "nx={nx}"
            );
        }
    }

    #[test]
    fn measured_throughput_approaches_eqn9() {
        let mut unit = ProcessingUnit::default();
        let xs = vec![BfpBlock::ZERO; 64];
        unit.load_y_pair(&BfpBlock::ZERO, &BfpBlock::ZERO);
        unit.stream_x(&xs);
        let stats = unit.stats();
        let freq = unit.config().freq_hz;
        let measured = stats.bfp_ops_per_sec(freq);
        let theory = throughput::bfp_throughput(64, freq);
        let rel = (measured - theory).abs() / theory;
        assert!(rel < 1e-9, "measured {measured} vs theory {theory}");
    }

    #[test]
    fn psu_depth_limit_is_enforced() {
        let mut unit = ProcessingUnit::default();
        unit.load_y_pair(&BfpBlock::ZERO, &BfpBlock::ZERO);
        let xs = vec![BfpBlock::ZERO; MAX_X_BLOCKS + 1];
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unit.stream_x(&xs)));
        assert!(r.is_err());
    }

    #[test]
    fn fp_mul_stream_matches_scalar_model() {
        use bfp_arith::fpmul::{HwFp32Mul, MulVariant};
        let hw = HwFp32Mul::new(MulVariant::DropLsp);
        let xs: Vec<f32> = (0..300).map(|k| (k as f32 * 0.37 - 50.0) * 1.01).collect();
        let ys: Vec<f32> = (0..300).map(|k| (k as f32 * -0.53 + 70.0) * 0.99).collect();
        let mut unit = ProcessingUnit::default();
        let got = unit.fp_mul_stream(&xs, &ys);
        for k in 0..300 {
            assert_eq!(got[k].to_bits(), hw.mul(xs[k], ys[k]).to_bits(), "at {k}");
        }
        assert!(unit.stats().flops == 300);
    }

    #[test]
    fn fp_mul_cycles_match_eqn10_shape() {
        // 300 muls over 4 lanes: lane length 75, one burst -> 75 + 8 cycles.
        let xs = vec![1.5f32; 300];
        let mut unit = ProcessingUnit::default();
        let _ = unit.fp_mul_stream(&xs, &xs);
        assert_eq!(unit.stats().cycles, 75 + 8);

        // 4*128 = 512 is exactly one full burst: 128 + 8.
        let xs = vec![1.5f32; 512];
        let mut unit = ProcessingUnit::default();
        let _ = unit.fp_mul_stream(&xs, &xs);
        assert_eq!(unit.stats().cycles, 136);

        // 513 spills into a second burst.
        let xs = vec![1.5f32; 513];
        let mut unit = ProcessingUnit::default();
        let _ = unit.fp_mul_stream(&xs, &xs);
        assert_eq!(unit.stats().cycles, 136 + 9);
    }

    #[test]
    fn fp_add_stream_matches_scalar_model() {
        use bfp_arith::fpadd::{AddVariant, HwFp32Add};
        let adder = HwFp32Add::new(AddVariant::Exact48);
        let xs: Vec<f32> = (0..97).map(|k| k as f32 * 1.1 - 40.0).collect();
        let ys: Vec<f32> = (0..97).map(|k| k as f32 * -0.9 + 11.0).collect();
        let mut unit = ProcessingUnit::default();
        let got = unit.fp_add_stream(&xs, &ys);
        for k in 0..97 {
            assert_eq!(got[k].to_bits(), adder.add(xs[k], ys[k]).to_bits());
        }
    }

    #[test]
    fn quantization_noise_survives_unit_path() {
        // End-to-end through the unit: SQNR stays in the 8-bit envelope.
        let a = MatF32::from_fn(32, 40, |i, j| ((i * j) as f32 * 0.01).sin());
        let b = MatF32::from_fn(40, 24, |i, j| ((i + 2 * j) as f32 * 0.05).cos());
        let (qa, qb) = (quantize(&a), quantize(&b));
        let mut unit = ProcessingUnit::default();
        let grid = unit.matmul_grid(&grid_from_matrix(&qa), &grid_from_matrix(&qb));
        let got = wide_grid_to_mat(&grid, 32, 24);
        let want = a.matmul(&b);
        let mut s = ErrorStats::new();
        s.push_slices(got.data(), want.data());
        assert!(s.sqnr_db() > 30.0, "{s}");
    }

    #[test]
    fn take_stats_resets() {
        let mut unit = ProcessingUnit::default();
        unit.load_y_pair(&BfpBlock::ZERO, &BfpBlock::ZERO);
        assert!(unit.take_stats().cycles > 0);
        assert_eq!(unit.stats().cycles, 0);
    }
}
