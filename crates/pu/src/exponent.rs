//! The exponent unit (EU): shared-exponent bookkeeping for both modes.
//!
//! In bfp8 MatMul mode the EU adds the X-block exponent to each resident
//! Y-block exponent (paper Eqn. 2) and hands the alignment shift to the
//! column shifters; in fp32 mode it adds biased operand exponents
//! (Eqn. 4) and compares exponents for the fpadd alignment (Eqn. 6).

/// Result of aligning two exponents: which operand shifts, and by how much.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Alignment {
    /// The surviving (larger) exponent.
    pub exp: i32,
    /// Right-shift applied to the *first* operand's mantissa.
    pub shift_a: u32,
    /// Right-shift applied to the *second* operand's mantissa.
    pub shift_b: u32,
}

/// The exponent unit.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExponentUnit;

impl ExponentUnit {
    /// bfp8 product exponent: `exp_Z = exp_X + exp_Y` (int8 addition in
    /// hardware; we keep the wide value and let the requantizer clamp).
    #[inline]
    pub fn product_exp(&self, exp_x: i8, exp_y: i8) -> i32 {
        let exp = exp_x as i32 + exp_y as i32;
        // Fault model: the EU adder is TMR-protected; the hook votes.
        #[cfg(feature = "faults")]
        let exp = bfp_faults::hook::eu_align_exp(exp);
        exp
    }

    /// fp32 product exponent with re-biasing: `E = Ex + Ey − 127`.
    #[inline]
    pub fn fp_product_exp(&self, ex: i32, ey: i32) -> i32 {
        ex + ey - 127
    }

    /// The comparator + subtractor for additions (Eqn. 3 / Eqn. 6): keep
    /// the larger exponent and shift the other operand's mantissa right.
    #[inline]
    pub fn align(&self, exp_a: i32, exp_b: i32) -> Alignment {
        // Fault model: comparator glitches go through the same TMR vote
        // as the product-exponent adder.
        #[cfg(feature = "faults")]
        let (exp_a, exp_b) = (
            bfp_faults::hook::eu_align_exp(exp_a),
            bfp_faults::hook::eu_align_exp(exp_b),
        );
        if exp_a >= exp_b {
            Alignment {
                exp: exp_a,
                shift_a: 0,
                shift_b: (exp_a - exp_b) as u32,
            }
        } else {
            Alignment {
                exp: exp_b,
                shift_a: (exp_b - exp_a) as u32,
                shift_b: 0,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn product_exponent_adds() {
        let eu = ExponentUnit;
        assert_eq!(eu.product_exp(3, -5), -2);
        assert_eq!(eu.product_exp(127, 127), 254);
        assert_eq!(eu.product_exp(-128, -128), -256);
    }

    #[test]
    fn fp_product_rebiases() {
        let eu = ExponentUnit;
        // 1.0 * 1.0: E = 127 + 127 - 127 = 127.
        assert_eq!(eu.fp_product_exp(127, 127), 127);
        // 2.0 * 0.5: 128 + 126 - 127 = 127.
        assert_eq!(eu.fp_product_exp(128, 126), 127);
    }

    #[test]
    fn align_picks_larger_exponent() {
        let eu = ExponentUnit;
        assert_eq!(
            eu.align(5, 2),
            Alignment {
                exp: 5,
                shift_a: 0,
                shift_b: 3
            }
        );
        assert_eq!(
            eu.align(2, 5),
            Alignment {
                exp: 5,
                shift_a: 3,
                shift_b: 0
            }
        );
        assert_eq!(
            eu.align(4, 4),
            Alignment {
                exp: 4,
                shift_a: 0,
                shift_b: 0
            }
        );
    }

    #[test]
    fn align_is_symmetric_in_outcome() {
        let eu = ExponentUnit;
        let ab = eu.align(-7, 9);
        let ba = eu.align(9, -7);
        assert_eq!(ab.exp, ba.exp);
        assert_eq!(ab.shift_a, ba.shift_b);
    }
}
