//! The 8×8 systolic PE array in bfp8 MatMul mode (paper Fig. 2 / Fig. 5 a).
//!
//! Dataflow is **Y-stationary**: each PE holds a *pair* of Y mantissas (the
//! combined-MAC optimisation packs both into the DSP pre-adder), X mantissas
//! flow left→right one column per cycle, and partial sums flow top→bottom on
//! the DSP cascade, one row per cycle. The controller feeds X rows with a
//! one-cycle-per-row skew so that by the time a partial sum reaches the
//! bottom of column `c` it has accumulated all eight `x[i][k] · y[k][c]`
//! terms of one output element — for *both* resident Y blocks at once.
//!
//! Everything here is mantissa arithmetic; exponents ride on the side
//! through the [`crate::exponent::ExponentUnit`].

use bfp_arith::bfp::{BfpBlock, BLOCK};
use bfp_dsp48::packed::unpack;
use bfp_dsp48::slice::{Dsp48, ZMux};

/// Rows in the PE array (= bfp block rows).
pub const ROWS: usize = BLOCK;
/// Columns in the PE array (= bfp block columns).
pub const COLS: usize = BLOCK;

/// One processing element: stationary Y pair, X pipeline register, DSP.
#[derive(Debug, Clone, Default)]
struct Pe {
    /// Stationary mantissa of the first resident Y block.
    y1: i8,
    /// Stationary mantissa of the second resident Y block.
    y2: i8,
    /// Horizontal pipeline register for the streaming X mantissa.
    x: i8,
    dsp: Dsp48,
}

/// Mantissa outputs of one array column for one cycle: the two combined-MAC
/// lanes unpacked from the bottom-of-column accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ColumnOut {
    /// `Σ x·y1` — partial-sum lane of the first Y block.
    pub lane1: i64,
    /// `Σ x·y2` — partial-sum lane of the second Y block.
    pub lane2: i64,
}

/// The systolic array (mantissa datapath only).
#[derive(Debug, Clone)]
pub struct SystolicArray {
    pe: Vec<Pe>, // ROWS × COLS, row-major
}

impl Default for SystolicArray {
    fn default() -> Self {
        Self::new()
    }
}

impl SystolicArray {
    /// A fresh array with zero Y registers.
    pub fn new() -> Self {
        SystolicArray {
            pe: vec![Pe::default(); ROWS * COLS],
        }
    }

    #[inline]
    fn idx(r: usize, c: usize) -> usize {
        r * COLS + c
    }

    /// Load the stationary Y pair. PE `(r, c)` receives `Y[r][c]` of each
    /// block: row index is the contraction (K) dimension, column index the
    /// output (N) dimension. In hardware this drains down the array over 8
    /// cycles; the caller accounts those preload cycles.
    pub fn load_y(&mut self, y1: &BfpBlock, y2: &BfpBlock) {
        for r in 0..ROWS {
            for c in 0..COLS {
                let pe = &mut self.pe[Self::idx(r, c)];
                pe.y1 = y1.man[r][c];
                pe.y2 = y2.man[r][c];
            }
        }
    }

    /// Clear X pipeline registers and accumulators (between passes).
    pub fn flush(&mut self) {
        for pe in &mut self.pe {
            pe.x = 0;
            pe.dsp.reset();
        }
    }

    /// Advance one clock in bfp8 MatMul mode.
    ///
    /// `left[r]` is the X mantissa entering row `r` from the left edge this
    /// cycle (the controller applies the systolic skew). Returns the
    /// bottom-of-column lane sums *after* this clock edge.
    pub fn step_bfp(&mut self, left: [i8; ROWS]) -> [ColumnOut; COLS] {
        // Snapshot last cycle's state: X registers and cascade outputs.
        let prev_x: Vec<i8> = self.pe.iter().map(|p| p.x).collect();
        let prev_p: Vec<i64> = self.pe.iter().map(|p| p.dsp.p()).collect();

        for r in 0..ROWS {
            for c in 0..COLS {
                let i = Self::idx(r, c);
                // X operand: from the left edge or the left neighbour's
                // register as of the previous cycle.
                let x_in = if c == 0 { left[r] } else { prev_x[i - 1] };
                let (pcin, z) = if r == 0 {
                    (0, ZMux::Zero)
                } else {
                    (prev_p[Self::idx(r - 1, c)], ZMux::Pcin)
                };
                let pe = &mut self.pe[i];
                // Combined MAC: pre-adder packs (y1 << 18) + y2, multiplied
                // by the streaming x (B port).
                pe.dsp
                    .step((pe.y1 as i64) << 18, pe.y2 as i64, x_in as i64, 0, pcin, z);
                pe.x = x_in;
            }
        }

        let mut out = [ColumnOut::default(); COLS];
        for (c, o) in out.iter_mut().enumerate() {
            let (lane1, lane2) = unpack(self.pe[Self::idx(ROWS - 1, c)].dsp.p());
            // Fault model: stuck-at defects in the column drain path.
            #[cfg(feature = "faults")]
            let (lane1, lane2) = (
                bfp_faults::hook::array_lane(c, 0, lane1),
                bfp_faults::hook::array_lane(c, 1, lane2),
            );
            *o = ColumnOut { lane1, lane2 };
        }
        out
    }

    /// Cycles from the first X row entering to the last result of an
    /// `n_rows`-row stream leaving the bottom-right corner:
    /// `n_rows + (ROWS - 1) + (COLS - 1) + 1` (skew in, skew across, output
    /// register). With the 8-cycle Y preload this is the "15" of Eqn. 9
    /// amortised over the stream.
    pub fn drain_latency() -> usize {
        ROWS - 1 + COLS - 1 + 1
    }
}

/// The per-block pair of wide mantissa products `(X·Y1, X·Y2)`.
pub type LanePair = ([[i64; COLS]; ROWS], [[i64; COLS]; ROWS]);

/// Run a whole X block stream through a fresh array pass and collect the
/// wide mantissa products for both lanes. This is the reference harness the
/// unit-level controller builds on; it performs the skewed feeding and
/// output collection that hardware control logic does.
///
/// `x_blocks[m]` are the streamed blocks; the return value is, per streamed
/// block, the pair of 8×8 wide mantissa products `(X·Y1, X·Y2)` along with
/// the number of clock cycles the pass took (excluding Y preload).
pub fn stream_pass(array: &mut SystolicArray, x_blocks: &[BfpBlock]) -> (Vec<LanePair>, u64) {
    let n_rows = x_blocks.len() * ROWS;
    let total = n_rows + SystolicArray::drain_latency();
    let mut results: Vec<LanePair> =
        vec![([[0i64; COLS]; ROWS], [[0i64; COLS]; ROWS]); x_blocks.len()];

    for t in 0..total {
        // Row r receives X row (t - r) this cycle, if that row exists.
        let mut left = [0i8; ROWS];
        for (r, l) in left.iter_mut().enumerate() {
            if let Some(i) = t.checked_sub(r) {
                if i < n_rows {
                    let blk = &x_blocks[i / ROWS];
                    // X row i: element k of that row feeds array row k.
                    // Row r of the array needs x[i][r].
                    *l = blk.man[i % ROWS][r];
                }
            }
        }
        let cols = array.step_bfp(left);
        // Column c emits the finished sum for X row i at cycle
        // t = i + (ROWS-1) + c + ... : the wavefront for row i hits the
        // bottom of column c exactly when the bottom PE has just processed
        // x[i][7]; with our registered model that is t = i + (ROWS-1) + c.
        for (c, col) in cols.iter().enumerate() {
            if let Some(i) = t.checked_sub(ROWS - 1 + c) {
                if i < n_rows {
                    let (m, row) = (i / ROWS, i % ROWS);
                    results[m].0[row][c] = col.lane1;
                    results[m].1[row][c] = col.lane2;
                }
            }
        }
    }
    (results, total as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(f: impl Fn(usize, usize) -> i8) -> BfpBlock {
        let mut man = [[0i8; BLOCK]; BLOCK];
        for (i, row) in man.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = f(i, j);
            }
        }
        BfpBlock { exp: 0, man }
    }

    fn ref_product(x: &BfpBlock, y: &BfpBlock) -> [[i64; 8]; 8] {
        let mut out = [[0i64; 8]; 8];
        for i in 0..8 {
            for j in 0..8 {
                out[i][j] = (0..8)
                    .map(|k| x.man[i][k] as i64 * y.man[k][j] as i64)
                    .sum();
            }
        }
        out
    }

    #[test]
    fn single_block_matches_reference_both_lanes() {
        let x = block(|i, j| ((i * 13 + j * 7) % 255) as i8);
        let y1 = block(|i, j| ((i * 5 + j * 11) % 251) as i8);
        let y2 = block(|i, j| ((i * 3 + j * 17) % 253) as i8);
        let mut arr = SystolicArray::new();
        arr.load_y(&y1, &y2);
        let (res, cycles) = stream_pass(&mut arr, &[x]);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].0, ref_product(&x, &y1), "lane 1");
        assert_eq!(res[0].1, ref_product(&x, &y2), "lane 2");
        assert_eq!(cycles, 8 + 15);
    }

    #[test]
    fn multi_block_stream_is_continuous() {
        let y1 = block(|i, j| (i as i8) - (j as i8) * 3);
        let y2 = block(|i, j| (j as i8) * 2 - (i as i8));
        let xs: Vec<BfpBlock> = (0..5)
            .map(|m| block(move |i, j| ((m * 31 + i * 7 + j) % 127) as i8 - 63))
            .collect();
        let mut arr = SystolicArray::new();
        arr.load_y(&y1, &y2);
        let (res, cycles) = stream_pass(&mut arr, &xs);
        for (m, x) in xs.iter().enumerate() {
            assert_eq!(res[m].0, ref_product(x, &y1), "block {m} lane 1");
            assert_eq!(res[m].1, ref_product(x, &y2), "block {m} lane 2");
        }
        // Continuous streaming: 8 cycles per block + constant drain.
        assert_eq!(cycles, 8 * 5 + 15);
    }

    #[test]
    fn extreme_symmetric_mantissas_are_exact() {
        let x = block(|i, _| if i % 2 == 0 { 127 } else { -127 });
        let y1 = block(|_, j| if j % 2 == 0 { -127 } else { 127 });
        let y2 = block(|_, _| 127);
        let mut arr = SystolicArray::new();
        arr.load_y(&y1, &y2);
        let (res, _) = stream_pass(&mut arr, &[x]);
        assert_eq!(res[0].0, ref_product(&x, &y1));
        assert_eq!(res[0].1, ref_product(&x, &y2));
    }

    #[test]
    fn reloading_y_changes_results() {
        let x = block(|i, j| (i + j) as i8);
        let y1 = block(|_, _| 1);
        let y2 = block(|_, _| 2);
        let mut arr = SystolicArray::new();
        arr.load_y(&y1, &y2);
        let (r1, _) = stream_pass(&mut arr, &[x]);
        arr.flush();
        arr.load_y(&y2, &y1);
        let (r2, _) = stream_pass(&mut arr, &[x]);
        assert_eq!(r1[0].0, r2[0].1);
        assert_eq!(r1[0].1, r2[0].0);
    }

    #[test]
    fn flush_clears_pipeline_state() {
        let x = block(|i, j| (i * j) as i8);
        let y = block(|_, _| 3);
        let mut arr = SystolicArray::new();
        arr.load_y(&y, &y);
        let _ = stream_pass(&mut arr, &[x]);
        arr.flush();
        // A stream of zero blocks after a flush yields zero outputs.
        let (res, _) = stream_pass(&mut arr, &[BfpBlock::ZERO]);
        assert_eq!(res[0].0, [[0; 8]; 8]);
        assert_eq!(res[0].1, [[0; 8]; 8]);
    }

    #[test]
    fn drain_latency_matches_eqn9_constant() {
        // 15 = 8 (Y preload) + 7 (skew) -- our drain covers the skew (15)
        // and the preload is charged separately by the controller: the
        // paper's Eqn. 9 denominator is 8*Nx + 15 in total.
        assert_eq!(SystolicArray::drain_latency(), 15);
    }
}
