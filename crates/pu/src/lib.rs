//! # bfp-pu — cycle-level simulator of the multi-mode processing unit
//!
//! This crate is the reproduction's stand-in for the paper's Verilog
//! implementation: a behavioural, cycle-steppable model of the 8×8 systolic
//! array that runs **bfp8 MatMul** and reconfigures at run time into a
//! 4-lane **fp32 vector unit** (multiply on the sliced DSP cascade, add on
//! the shifter/accumulator path).
//!
//! Module map (mirrors Fig. 2 of the paper):
//!
//! | paper component            | module |
//! |----------------------------|--------|
//! | X/Y buffers, Fig. 4 layout | [`bram`] |
//! | exponent unit (EU)         | [`exponent`] |
//! | 8×8 PE array, bfp8 mode    | [`mod@array`] |
//! | fp32 FPU columns + fpadd   | [`fpu`] |
//! | controller + PSU + modes   | [`mod@unit`] |
//! | fp32 layout crossbar       | [`xbar`] |
//! | instruction set            | [`isa`] |
//! | Eqns. 7–10                 | [`throughput`] |
//! | cycle-trace tooling        | [`mod@trace`] |
//!
//! ## Example
//!
//! ```
//! use bfp_arith::matrix::MatF32;
//! use bfp_arith::quant::Quantizer;
//! use bfp_pu::unit::{grid_from_matrix, ProcessingUnit};
//!
//! let a = MatF32::from_fn(16, 16, |i, j| (i as f32 - j as f32) * 0.5);
//! let b = MatF32::from_fn(16, 16, |i, j| ((i + j) % 5) as f32);
//! let q = Quantizer::paper();
//! let (qa, qb) = (q.quantize(&a).unwrap(), q.quantize(&b).unwrap());
//!
//! let mut unit = ProcessingUnit::default();
//! let out = unit.matmul_grid(&grid_from_matrix(&qa), &grid_from_matrix(&qb));
//! assert_eq!(out.len(), 2); // 16/8 block rows
//! let stats = unit.stats();
//! assert!(stats.bfp_ops > 0 && stats.cycles > 0);
//! ```

// Index-based loops mirror the paper's (i, j, k) matrix notation and are
// clearer than iterator chains for the hardware datapath descriptions.
#![allow(clippy::needless_range_loop)]

pub mod array;
pub mod bram;
pub mod exponent;
pub mod fpu;
pub mod isa;
pub mod throughput;
pub mod trace;
pub mod unit;
pub mod xbar;

pub use array::SystolicArray;
pub use bram::{OperandBuffer, MAX_FP_STREAM, MAX_X_BLOCKS, PSU_DEPTH};
pub use exponent::ExponentUnit;
pub use fpu::{FpAddPath, FpMulPipeline, FP_LANES, FP_PIPE_DEPTH};
pub use isa::{Env, Instr, Interpreter, Program, RunResult};
pub use throughput::{bfp_peak_ops, bfp_throughput, fp32_peak_flops, fp32_throughput};
pub use trace::{trace_pass, Trace, TraceCycle};
pub use unit::{grid_from_matrix, BlockGrid, CycleStats, Fidelity, ProcessingUnit, UnitConfig};
pub use xbar::LayoutConverter;
