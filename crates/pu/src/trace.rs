//! Cycle-trace capture for the stepped simulator — the "waveform view" a
//! hardware team would read when debugging the dataflow.
//!
//! [`trace_pass`] re-runs a Y-stationary pass while recording, per clock
//! cycle, the left-edge X operands entering each row and the two unpacked
//! lanes leaving the bottom of each column. The trace renders to a compact
//! text table (one line per cycle) that makes the systolic skew and the
//! 15-cycle fill visible — the textual equivalent of Fig. 5(a).

use std::fmt::Write as _;

use bfp_arith::bfp::BfpBlock;
use bfp_telemetry::ChromeTraceBuilder;

use crate::array::{ColumnOut, SystolicArray, COLS, ROWS};

/// One recorded clock cycle.
#[derive(Debug, Clone)]
pub struct TraceCycle {
    /// Cycle index from the start of the pass.
    pub t: u64,
    /// X mantissas entering at the left edge this cycle.
    pub left: [i8; ROWS],
    /// Bottom-of-column lane outputs after this cycle.
    pub bottom: [ColumnOut; COLS],
}

/// A captured pass.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Recorded cycles, in order.
    pub cycles: Vec<TraceCycle>,
}

impl Trace {
    /// Render the trace as a text table (`cycle | left edge | lane1 of
    /// bottom columns`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>5} | {:^40} | {:^56}",
            "cycle", "left-edge X (rows 0..7)", "bottom lane1 per column (0..7)"
        );
        let _ = writeln!(out, "{}", "-".repeat(108));
        for c in &self.cycles {
            let left: Vec<String> = c.left.iter().map(|v| format!("{v:4}")).collect();
            let bot: Vec<String> = c.bottom.iter().map(|o| format!("{:6}", o.lane1)).collect();
            let _ = writeln!(out, "{:>5} | {} | {}", c.t, left.join(" "), bot.join(" "));
        }
        out
    }

    /// The first cycle at which any bottom column produced a non-zero
    /// lane-1 value (pipeline fill depth for non-degenerate operands).
    pub fn first_output_cycle(&self) -> Option<u64> {
        self.cycles
            .iter()
            .find(|c| c.bottom.iter().any(|o| o.lane1 != 0 || o.lane2 != 0))
            .map(|c| c.t)
    }

    /// Export the waveform as Chrome Trace Event JSON so the
    /// cycle-level systolic activity lands in the same Perfetto
    /// timeline as the software spans (1 clock cycle mapped to 1 µs).
    ///
    /// Layout: one span covering the whole pass, one counter track per
    /// column and lane sampling the bottom-of-column outputs, and a
    /// counter track for the number of active left-edge rows (the
    /// skewed wavefront of Fig. 5(a)).
    pub fn to_chrome_json(&self) -> String {
        let mut b = ChromeTraceBuilder::new();
        // Distinct pid keeps the hardware timebase (cycles) in its own
        // process lane, visually separate from wall-clock software spans.
        b.process_name(2, "systolic-array (1 cycle = 1us)");
        b.thread_name(2, 0, "pass");
        b.complete(
            "systolic_pass",
            "pu",
            0.0,
            self.cycles.len() as f64,
            2,
            0,
            &[("cycles", self.cycles.len() as u64)],
        );
        if let Some(t) = self.first_output_cycle() {
            b.instant("first_output", "pu", t as f64, 2, 0, &[("cycle", t)]);
        }
        for c in &self.cycles {
            let active = c.left.iter().filter(|&&v| v != 0).count();
            b.counter("left_active_rows", "pu", c.t as f64, 2, active as f64);
            for (col, out) in c.bottom.iter().enumerate() {
                b.counter(&format!("col{col}.lane1"), "pu", c.t as f64, 2, out.lane1 as f64);
                b.counter(&format!("col{col}.lane2"), "pu", c.t as f64, 2, out.lane2 as f64);
            }
        }
        b.finish()
    }
}

/// Run one traced pass: load the Y pair, stream `xs`, and record every
/// cycle. Numerics are identical to `stream_pass` (same array model); this
/// variant just keeps the per-cycle observations.
pub fn trace_pass(y1: &BfpBlock, y2: &BfpBlock, xs: &[BfpBlock]) -> Trace {
    let mut array = SystolicArray::new();
    array.load_y(y1, y2);
    let n_rows = xs.len() * ROWS;
    let total = n_rows + SystolicArray::drain_latency();
    let mut trace = Trace::default();
    for t in 0..total {
        let mut left = [0i8; ROWS];
        for (r, l) in left.iter_mut().enumerate() {
            if let Some(i) = t.checked_sub(r) {
                if i < n_rows {
                    *l = xs[i / ROWS].man[i % ROWS][r];
                }
            }
        }
        let bottom = array.step_bfp(left);
        trace.cycles.push(TraceCycle {
            t: t as u64,
            left,
            bottom,
        });
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfp_arith::bfp::BLOCK;

    fn ones() -> BfpBlock {
        BfpBlock {
            exp: 0,
            man: [[1; BLOCK]; BLOCK],
        }
    }

    #[test]
    fn trace_length_matches_pass_cycles() {
        let tr = trace_pass(&ones(), &ones(), &[ones(), ones()]);
        assert_eq!(tr.cycles.len(), 2 * 8 + 15);
    }

    #[test]
    fn skew_is_visible_in_the_left_edge() {
        let tr = trace_pass(&ones(), &ones(), &[ones()]);
        // Cycle 0: only row 0 is fed; cycle 7: all rows are fed.
        assert_eq!(tr.cycles[0].left[0], 1);
        assert_eq!(tr.cycles[0].left[7], 0);
        assert!(tr.cycles[7].left.iter().all(|&v| v == 1));
    }

    #[test]
    fn first_output_appears_after_the_column_fill() {
        let tr = trace_pass(&ones(), &ones(), &[ones()]);
        // The first complete column-0 sum lands at t = 0 + 7 + 0 = 7, but
        // partial sums trickle to the bottom earlier; the very first
        // non-zero bottom value appears once the wavefront reaches row 7.
        let first = tr.first_output_cycle().expect("outputs must appear");
        assert!((1..=7).contains(&first), "first output at cycle {first}");
    }

    #[test]
    fn steady_state_bottom_equals_block_product() {
        let x = ones();
        let tr = trace_pass(&ones(), &ones(), &[x]);
        // At t = 7 (i=0, c=0) the bottom of column 0 holds the complete
        // dot product: 8 × 1 × 1 = 8.
        assert_eq!(tr.cycles[7].bottom[0].lane1, 8);
        assert_eq!(tr.cycles[7].bottom[0].lane2, 8);
    }

    #[test]
    fn chrome_export_covers_the_pass() {
        let tr = trace_pass(&ones(), &ones(), &[ones()]);
        let json = tr.to_chrome_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"systolic_pass\""));
        assert!(json.contains(&format!("\"cycles\": {}", tr.cycles.len())));
        assert!(json.contains("\"first_output\""));
        assert!(json.contains("\"col0.lane1\""));
        assert!(json.contains("\"col7.lane2\""));
        assert!(json.contains("\"left_active_rows\""));
    }

    #[test]
    fn render_is_one_line_per_cycle() {
        let tr = trace_pass(&ones(), &ones(), &[ones()]);
        let text = tr.render();
        // Header + separator + one line per cycle.
        assert_eq!(text.lines().count(), 2 + tr.cycles.len());
        assert!(text.contains("cycle"));
    }
}
