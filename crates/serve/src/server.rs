//! The serving runtime: tenancy-aware weighted-fair admission,
//! per-request deadlines, a priority brownout ladder, retry/re-route of
//! faulted executions, and the array-health state machine with
//! golden-probe re-admission.
//!
//! Concurrency shape: one `Mutex<Inner>` holds the scheduler, tenant
//! table, health states and every counter; three condvars signal
//! workers (`work_cv`), blocked submitters (`space_cv`) and drainers
//! (`idle_cv`). Each array is one OS worker thread owning its
//! [`ArrayBackend`]; executions and probes run outside the lock.
//!
//! Scheduling shape: three strict priority classes (`Critical` >
//! `Standard` > `Bulk`), each a deficit-weighted round robin across
//! tenant FIFOs. Retries live in a separate queue scanned first — they
//! were already admitted, charged, and partially served, so finishing
//! them frees capacity fastest. The brownout ladder watches queue depth
//! and queue-wait EWMA: tier 1 flips nonlinear epilogues to the fast
//! kernels, tier 2 additionally sheds `Bulk` work; escalation is
//! immediate, de-escalation waits out a dwell (hysteresis).

use std::collections::{BTreeMap, VecDeque};
use std::ops::Bound;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bfp_arith::cancel::CancelToken;
use bfp_arith::error::ArithError;
use bfp_arith::matrix::MatF32;
use bfp_arith::quant::Quantizer;
use bfp_arith::{AddVariant, HwFp32Add, HwFp32Mul, MulVariant};
use bfp_core::prelude::NonlinearMode;
use bfp_faults::FleetLedger;
use bfp_platform::{
    ArrayHealth, ArrayServeStats, BrownoutStats, HealthEvent, Priority, PriorityServeStats,
    ServeStats, System, SystemStats, TenantId, TenantServeStats,
};
use bfp_telemetry::recorder::{FlightAttempt, FlightDump, FlightRecord, TriggerReason};
use bfp_telemetry::{Registry, ShadowSample, Tracer};

use crate::backend::{ArrayBackend, ArrayFaultPlan, ServeOp, SimArrayBackend, Telemetry};
use crate::config::{Backpressure, ServeConfig, TenantQuota};
use crate::error::ServeError;
use crate::observatory::Observatory;
use crate::ticket::{AttemptRecord, RequestTimeline, ServeResponse, Ticket, TicketInner};

/// Executions that calibrate the service estimate before the
/// early-deadline admission gate activates.
const SVC_CALIBRATION_MIN: u64 = 16;
/// EWMA smoothing for the service estimate and queue-wait signals.
const EWMA_ALPHA: f64 = 0.2;

/// One request. The deadline budget (if any) starts counting when
/// `submit` is entered — time spent blocked at the admission gate
/// burns it.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Left operand.
    pub a: MatF32,
    /// Right operand.
    pub b: MatF32,
    /// Per-request deadline budget; `None` uses the config default.
    pub budget: Option<Duration>,
    /// Tenant the request is charged to (quota, weight, breaker).
    pub tenant: TenantId,
    /// Priority class (scheduling strictness and shed eligibility).
    pub priority: Priority,
    /// What to compute.
    pub op: ServeOp,
}

impl ServeRequest {
    /// A request with the config-default deadline, tenant 0,
    /// `Standard` priority, and the bare GEMM op.
    pub fn new(a: MatF32, b: MatF32) -> Self {
        ServeRequest {
            a,
            b,
            budget: None,
            tenant: TenantId::default(),
            priority: Priority::default(),
            op: ServeOp::default(),
        }
    }

    /// A request with an explicit deadline budget.
    pub fn with_budget(a: MatF32, b: MatF32, budget: Duration) -> Self {
        ServeRequest {
            budget: Some(budget),
            ..ServeRequest::new(a, b)
        }
    }

    /// Builder: charge the request to `tenant`.
    pub fn for_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// Builder: run at `priority`.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Builder: compute `op`.
    pub fn with_op(mut self, op: ServeOp) -> Self {
        self.op = op;
        self
    }

    /// Builder: replace the deadline budget.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.budget = Some(budget);
        self
    }
}

struct Job {
    id: u64,
    a: MatF32,
    b: MatF32,
    op: ServeOp,
    tenant: TenantId,
    priority: Priority,
    deadline: Option<Instant>,
    cancel: CancelToken,
    submitted_at: Instant,
    first_dispatch: Option<Instant>,
    attempts: u32,
    attempt_log: Vec<AttemptRecord>,
    not_before: Instant,
    /// Most recent shadow-lane sample for this request (fast-mode
    /// completions re-run through the exact oracle by the observatory).
    shadow: Option<ShadowSample>,
    /// Until this instant a retry prefers a *different* array than the
    /// one that faulted on it; after it, any serving array (including
    /// the faulting one) may run it — so a fleet of one, or a fleet
    /// with every other array quarantined, never starves a retry.
    avoid_until: Instant,
    last_array: Option<usize>,
    ticket: Arc<TicketInner>,
}

struct ArrayState {
    health: ArrayHealth,
    strikes: u32,
    clean_run: u32,
    probe_due: Instant,
    probe_backoff: Duration,
    probe_streak: u32,
    stats: ArrayServeStats,
}

impl ArrayState {
    fn new(now: Instant) -> Self {
        ArrayState {
            health: ArrayHealth::Healthy,
            strikes: 0,
            clean_run: 0,
            probe_due: now,
            probe_backoff: Duration::ZERO,
            probe_streak: 0,
            stats: ArrayServeStats::new(),
        }
    }
}

/// One priority class's deficit-weighted round robin across tenant
/// FIFOs. The cursor rests on one tenant with a credit of its weight;
/// each pop spends one credit, and an exhausted credit (or drained
/// queue) moves the cursor to the next tenant in id order, wrapping.
/// Over a full rotation every backlogged tenant is served in
/// proportion to its weight.
#[derive(Default)]
struct ClassSched {
    queues: BTreeMap<u64, VecDeque<Job>>,
    cursor: Option<u64>,
    credit: u32,
}

impl ClassSched {
    fn push(&mut self, job: Job) {
        self.queues.entry(job.tenant.0).or_default().push_back(job);
    }

    fn len(&self) -> usize {
        self.queues.values().map(|q| q.len()).sum()
    }

    fn next_tenant_after(&self, t: Option<u64>) -> Option<u64> {
        let first = self.queues.keys().next().copied();
        match t {
            Some(t) => self
                .queues
                .range((Bound::Excluded(t), Bound::Unbounded))
                .next()
                .map(|(k, _)| *k)
                .or(first),
            None => first,
        }
    }

    fn pop(&mut self, weight_of: impl Fn(u64) -> u32) -> Option<Job> {
        let cur = match self.cursor {
            Some(t) if self.credit > 0 && self.queues.contains_key(&t) => t,
            prev => {
                let t = self.next_tenant_after(prev)?;
                self.cursor = Some(t);
                self.credit = weight_of(t).max(1);
                t
            }
        };
        self.credit -= 1;
        let q = self.queues.get_mut(&cur).expect("cursor tenant queued");
        let job = q.pop_front().expect("cursor queue non-empty");
        if q.is_empty() {
            self.queues.remove(&cur);
            self.credit = 0;
        }
        Some(job)
    }

    /// Pop the oldest queued job in this class (shed victim selection).
    fn pop_oldest(&mut self) -> Option<Job> {
        let (&t, _) = self
            .queues
            .iter()
            .min_by_key(|(_, q)| q.front().map(|j| j.submitted_at))?;
        let q = self.queues.get_mut(&t).unwrap();
        let job = q.pop_front()?;
        if q.is_empty() {
            self.queues.remove(&t);
        }
        Some(job)
    }
}

enum Breaker {
    Closed,
    Open { until: Instant },
    HalfOpen { probes_left: u32 },
}

struct TenantState {
    quota: TenantQuota,
    tokens: f64,
    last_refill: Instant,
    breaker: Breaker,
    consec_bad: u32,
    in_flight: usize,
    stats: TenantServeStats,
}

impl TenantState {
    fn new(tenant: TenantId, quota: TenantQuota, now: Instant) -> Self {
        TenantState {
            quota,
            tokens: quota.burst.max(1.0),
            last_refill: now,
            breaker: Breaker::Closed,
            consec_bad: 0,
            in_flight: 0,
            stats: TenantServeStats {
                tenant,
                weight: quota.weight.max(1),
                ..TenantServeStats::default()
            },
        }
    }

    /// Refill the token bucket and try to take one token. `true` when
    /// the request is within quota (always, for unlimited tenants).
    fn take_token(&mut self, now: Instant) -> bool {
        if self.quota.rate_rps <= 0.0 {
            return true;
        }
        let dt = now.saturating_duration_since(self.last_refill).as_secs_f64();
        self.last_refill = now;
        self.tokens = (self.tokens + dt * self.quota.rate_rps).min(self.quota.burst.max(1.0));
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    fn refusing(&self, now: Instant) -> bool {
        match self.breaker {
            Breaker::Open { until } => now < until,
            Breaker::HalfOpen { probes_left } => probes_left == 0,
            Breaker::Closed => false,
        }
    }
}

#[derive(Default)]
struct PrioCounters {
    admitted: u64,
    completed: u64,
    failed: u64,
    shed: u64,
    in_flight: usize,
}

#[derive(Default)]
struct Counters {
    submitted: u64,
    admitted: u64,
    rejected: u64,
    shed: u64,
    completed: u64,
    failed: u64,
    deadline_missed: u64,
    retries: u64,
    degraded_executions: u64,
    queue_depth_high_water: usize,
    quota_rejected: u64,
    breaker_rejected: u64,
    deadline_rejected: u64,
    brownout_rejected: u64,
    prio: [PrioCounters; 3],
}

#[derive(Default)]
struct BrownoutState {
    tier: u8,
    since: Option<Instant>,
    max_tier: u8,
    transitions: u64,
    sheds: u64,
}

struct Inner {
    classes: [ClassSched; 3],
    retryq: VecDeque<Job>,
    inflight: usize,
    shutdown: bool,
    next_id: u64,
    seq: u64,
    counters: Counters,
    arrays: Vec<ArrayState>,
    ledger: FleetLedger,
    tenants: BTreeMap<u64, TenantState>,
    brownout: BrownoutState,
    /// EWMA of first-dispatch queue wait, seconds (pressure signal).
    wait_ewma_s: f64,
    /// EWMA of clean execution wall time, seconds (service estimate).
    svc_ewma_s: f64,
    svc_samples: u64,
}

impl Inner {
    fn queued_len(&self) -> usize {
        self.classes.iter().map(|c| c.len()).sum::<usize>() + self.retryq.len()
    }
}

struct Shared {
    m: Mutex<Inner>,
    work_cv: Condvar,
    space_cv: Condvar,
    idle_cv: Condvar,
    cfg: ServeConfig,
    golden: Golden,
    /// Optional span tracer ([`Server::attach_tracer`]); absent, every
    /// emission site is a branch on an unset `OnceLock` and nothing else.
    tracer: OnceLock<Tracer>,
    /// The serve-time observatory: flight recorder, burn-rate trackers,
    /// and the shadow-execution lane.
    obs: Observatory,
}

/// The attached tracer, if any.
fn tr(shared: &Shared) -> Option<&Tracer> {
    shared.tracer.get()
}

/// The golden self-test GEMM: small integer matrices on which bfp8 is
/// exact, with the expected bits cross-checked at startup against a
/// scalar softfp reference ([`HwFp32Mul`]/[`HwFp32Add`] exact variants).
struct Golden {
    a: MatF32,
    b: MatF32,
    expected: MatF32,
}

impl Golden {
    fn build() -> Self {
        let a = MatF32::from_fn(16, 16, |i, j| ((i * 7 + j * 5) % 3) as f32 - 1.0);
        let b = MatF32::from_fn(16, 16, |i, j| ((i * 3 + j * 11) % 3) as f32 - 1.0);
        let q = Quantizer::paper();
        let expected = q
            .quantize(&a)
            .expect("golden operand quantizes")
            .try_matmul(&q.quantize(&b).expect("golden operand quantizes"))
            .expect("golden GEMM executes");
        // Cross-check: on these integer inputs bfp8 must agree bit-for-
        // bit with the scalar softfp reference, so a probe pass really
        // certifies exact arithmetic, not just self-consistency.
        let mul = HwFp32Mul::new(MulVariant::Exact);
        let add = HwFp32Add::new(AddVariant::Exact48);
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0f32;
                for k in 0..a.cols() {
                    acc = add.add(acc, mul.mul(a.get(i, k), b.get(k, j)));
                }
                assert_eq!(
                    acc.to_bits(),
                    expected.get(i, j).to_bits(),
                    "golden GEMM must be bfp8-exact at ({i},{j})"
                );
            }
        }
        Golden { a, b, expected }
    }
}

/// The serving runtime. See the crate docs for the full lifecycle; in
/// short: [`Server::submit`] → [`Ticket::wait`], [`Server::drain`] for
/// graceful quiesce, [`Server::stats`] for the observability snapshot.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Start a runtime over caller-supplied backends (one per array;
    /// `cfg.arrays` is overridden by `backends.len()`).
    ///
    /// # Panics
    /// Panics if `backends` is empty.
    pub fn new(mut cfg: ServeConfig, backends: Vec<Box<dyn ArrayBackend>>) -> Self {
        assert!(!backends.is_empty(), "a fleet needs at least one array");
        cfg.arrays = backends.len();
        let now = Instant::now();
        let arrays = backends.len();
        let shared = Arc::new(Shared {
            m: Mutex::new(Inner {
                classes: [ClassSched::default(), ClassSched::default(), ClassSched::default()],
                retryq: VecDeque::new(),
                inflight: 0,
                shutdown: false,
                next_id: 0,
                seq: 0,
                counters: Counters::default(),
                arrays: (0..arrays).map(|_| ArrayState::new(now)).collect(),
                ledger: FleetLedger::new(arrays),
                tenants: BTreeMap::new(),
                brownout: BrownoutState::default(),
                wait_ewma_s: 0.0,
                svc_ewma_s: 0.0,
                svc_samples: 0,
            }),
            work_cv: Condvar::new(),
            space_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            obs: Observatory::new(cfg.observatory.clone(), now),
            cfg,
            golden: Golden::build(),
            tracer: OnceLock::new(),
        });
        let workers = backends
            .into_iter()
            .enumerate()
            .map(|(i, backend)| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("bfp-serve-{i}"))
                    .spawn(move || worker_loop(shared, i, backend))
                    .expect("spawn worker")
            })
            .collect();
        Server { shared, workers }
    }

    /// A fleet of [`SimArrayBackend`]s at the paper's calibrated
    /// operating point, its measured card throughput split evenly across
    /// `plans.len()` arrays.
    ///
    /// # Panics
    /// Panics if `plans` is empty.
    pub fn simulated(cfg: ServeConfig, plans: Vec<ArrayFaultPlan>) -> Self {
        let sys = System::paper();
        let per_array_gops = sys.measured_bfp_gops(64) / sys.cfg.total_arrays().max(1) as f64;
        let backends: Vec<Box<dyn ArrayBackend>> = plans
            .into_iter()
            .map(|p| Box::new(SimArrayBackend::new(per_array_gops, p)) as Box<dyn ArrayBackend>)
            .collect();
        Server::new(cfg, backends)
    }

    /// Attach a span [`Tracer`]: per-request lifecycle events (queue
    /// wait, executions, retries, faults, deadline misses, admission
    /// refusals, brownout transitions) are recorded into it from here
    /// on. One tracer per server lifetime; returns `false` if one was
    /// already attached.
    pub fn attach_tracer(&self, tracer: Tracer) -> bool {
        self.shared.tracer.set(tracer).is_ok()
    }

    /// Offer a request. `Ok(Ticket)` means admitted; the typed errors
    /// are the admission-time refusals, applied in order: shutdown,
    /// circuit breaker, quota, brownout (tier 2 refuses `Bulk`),
    /// early-deadline gate, then queue capacity under the configured
    /// [`Backpressure`].
    pub fn submit(&self, req: ServeRequest) -> Result<Ticket, ServeError> {
        let cfg = &self.shared.cfg;
        let t_submit = Instant::now();
        let budget = req.budget.or(cfg.default_budget);
        let deadline = budget.map(|b| t_submit + b);
        let tenant = req.tenant;
        let priority = req.priority;

        let mut inner = self.shared.m.lock().unwrap();
        inner.counters.submitted += 1;
        let quota = cfg.quota_for(tenant);
        let ts = inner
            .tenants
            .entry(tenant.0)
            .or_insert_with(|| TenantState::new(tenant, quota, t_submit));
        ts.stats.submitted += 1;
        if inner.shutdown {
            return Err(self.refuse(&mut inner, tenant, ServeError::Shutdown, false));
        }

        // Circuit breaker: open refuses outright; an elapsed cooldown
        // moves to half-open, where a limited number of probe
        // admissions decide whether to close or re-open.
        if cfg.breaker.trip_after > 0 {
            let ts = inner.tenants.get_mut(&tenant.0).unwrap();
            if let Breaker::Open { until } = ts.breaker {
                if t_submit >= until {
                    ts.breaker = Breaker::HalfOpen {
                        probes_left: cfg.breaker.half_open_probes.max(1),
                    };
                }
            }
            if ts.refusing(t_submit) {
                return Err(self.refuse(&mut inner, tenant, ServeError::CircuitOpen, false));
            }
            if let Breaker::HalfOpen { ref mut probes_left } = ts.breaker {
                *probes_left -= 1;
            }
        }

        // Token-bucket quota.
        if !inner
            .tenants
            .get_mut(&tenant.0)
            .unwrap()
            .take_token(t_submit)
        {
            return Err(self.refuse(&mut inner, tenant, ServeError::QuotaExceeded, true));
        }

        // Brownout tier 2 refuses Bulk work at the door.
        update_brownout(&mut inner, &self.shared, t_submit);
        if inner.brownout.tier >= 2 && priority == Priority::Bulk {
            return Err(self.refuse(&mut inner, tenant, ServeError::Brownout, true));
        }

        // Early-deadline gate: once calibrated, a budget below the
        // service estimate can only produce a deadline miss — refuse it
        // now instead of queueing doomed work.
        if cfg.deadline_gate && inner.svc_samples >= SVC_CALIBRATION_MIN {
            if let Some(b) = budget {
                if b.as_secs_f64() < inner.svc_ewma_s {
                    return Err(self.refuse(
                        &mut inner,
                        tenant,
                        ServeError::DeadlineUnmeetable,
                        true,
                    ));
                }
            }
        }

        if inner.queued_len() >= cfg.queue_capacity {
            match cfg.backpressure {
                Backpressure::Reject => {
                    return Err(self.refuse(&mut inner, tenant, ServeError::QueueFull, true));
                }
                Backpressure::ShedOldest => {
                    // Shed from the lowest non-Critical class at or
                    // below the incoming priority; Critical is never a
                    // victim. No eligible victim → refuse the newcomer.
                    let ceiling = priority.index().min(Priority::Standard.index());
                    let victim = (0..=ceiling).find_map(|c| inner.classes[c].pop_oldest());
                    match victim {
                        Some(victim) => {
                            victim.cancel.cancel();
                            if let Some(t) = tr(&self.shared) {
                                t.instant_with("serve.shed", "serve", vec![("req", victim.id)]);
                            }
                            resolve(&mut inner, &self.shared, &victim, Err(ServeError::Shed));
                        }
                        None => {
                            return Err(self.refuse(
                                &mut inner,
                                tenant,
                                ServeError::QueueFull,
                                true,
                            ));
                        }
                    }
                }
                Backpressure::Block { timeout } => {
                    // The wait is capped by the request's own remaining
                    // deadline: burning the whole budget at the gate is
                    // a deadline miss, not an admission timeout.
                    let timeout_gate = t_submit + timeout;
                    let gate = match deadline {
                        Some(d) => timeout_gate.min(d),
                        None => timeout_gate,
                    };
                    while inner.queued_len() >= cfg.queue_capacity && !inner.shutdown {
                        let now = Instant::now();
                        if now >= gate {
                            let (err, is_reason) = if deadline.is_some_and(|d| gate == d) {
                                (ServeError::DeadlineExceeded, true)
                            } else {
                                (ServeError::AdmissionTimeout, true)
                            };
                            return Err(self.refuse(&mut inner, tenant, err, is_reason));
                        }
                        let (guard, _) = self
                            .shared
                            .space_cv
                            .wait_timeout(inner, gate - now)
                            .unwrap();
                        inner = guard;
                    }
                    if inner.shutdown {
                        return Err(self.refuse(&mut inner, tenant, ServeError::Shutdown, false));
                    }
                }
            }
        }

        let now = Instant::now();
        let cancel = match deadline {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::new(),
        };
        let id = inner.next_id;
        inner.next_id += 1;
        let ticket_inner = TicketInner::new();
        let job = Job {
            id,
            a: req.a,
            b: req.b,
            op: req.op,
            tenant,
            priority,
            deadline,
            cancel,
            submitted_at: now,
            first_dispatch: None,
            attempts: 0,
            attempt_log: Vec::new(),
            not_before: now,
            shadow: None,
            avoid_until: now,
            last_array: None,
            ticket: ticket_inner.clone(),
        };
        inner.counters.admitted += 1;
        inner.counters.prio[priority.index()].admitted += 1;
        inner.tenants.get_mut(&tenant.0).unwrap().stats.admitted += 1;
        inner.classes[priority.index()].push(job);
        let depth = inner.queued_len();
        if depth > inner.counters.queue_depth_high_water {
            inner.counters.queue_depth_high_water = depth;
        }
        if let Some(t) = tr(&self.shared) {
            t.counter("serve.queue_depth", "serve", depth as f64);
        }
        drop(inner);
        self.shared.work_cv.notify_all();
        Ok(Ticket::new(id, ticket_inner))
    }

    /// Book an admission refusal: fleet + tenant counters, the typed
    /// reason counter, the breaker's consecutive-bad feed (skipped for
    /// refusals that are not the tenant's doing), and the trace
    /// instant. Returns the error for the caller to propagate.
    fn refuse(
        &self,
        inner: &mut Inner,
        tenant: TenantId,
        err: ServeError,
        counts_as_bad: bool,
    ) -> ServeError {
        inner.counters.rejected += 1;
        match err {
            ServeError::QuotaExceeded => inner.counters.quota_rejected += 1,
            ServeError::CircuitOpen => inner.counters.breaker_rejected += 1,
            ServeError::DeadlineUnmeetable => inner.counters.deadline_rejected += 1,
            ServeError::Brownout => inner.counters.brownout_rejected += 1,
            ServeError::DeadlineExceeded => inner.counters.deadline_missed += 1,
            _ => {}
        }
        if let Some(ts) = inner.tenants.get_mut(&tenant.0) {
            ts.stats.rejected += 1;
            match err {
                ServeError::QuotaExceeded => ts.stats.quota_rejected += 1,
                ServeError::CircuitOpen => ts.stats.breaker_rejected += 1,
                _ => {}
            }
        }
        if counts_as_bad {
            breaker_note_bad(inner, &self.shared, tenant);
        }
        if let Some(t) = tr(&self.shared) {
            t.instant_with("serve.reject", "serve", vec![("tenant", tenant.0)]);
        }
        err
    }

    /// Block until every admitted request has resolved (the scheduler
    /// is empty and no execution is in flight). New submissions during
    /// the wait extend it.
    pub fn drain(&self) {
        let mut inner = self.shared.m.lock().unwrap();
        while !(inner.queued_len() == 0 && inner.inflight == 0) {
            inner = self.shared.idle_cv.wait(inner).unwrap();
        }
    }

    /// Stop accepting work, fail everything still queued with
    /// [`ServeError::Shutdown`], let in-flight executions finish, and
    /// join the workers. Called automatically on drop.
    pub fn shutdown(&mut self) {
        {
            let mut inner = self.shared.m.lock().unwrap();
            if inner.shutdown && self.workers.is_empty() {
                return;
            }
            inner.shutdown = true;
            let victims = take_all_queued(&mut inner);
            for job in victims {
                job.cancel.cancel();
                resolve(&mut inner, &self.shared, &job, Err(ServeError::Shutdown));
            }
            if inner.inflight == 0 {
                self.shared.idle_cv.notify_all();
            }
        }
        self.shared.work_cv.notify_all();
        self.shared.space_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// Snapshot of the runtime counters, per-tenant and per-priority
    /// rollups, brownout state, and per-array health — taken under one
    /// lock acquisition so the accounting identity
    /// `admitted == completed + failed + queued + in_flight` holds in
    /// every snapshot (fleet-wide, per tenant, and per priority), not
    /// just at quiescence.
    pub fn stats(&self) -> ServeStats {
        let now = Instant::now();
        let inner = self.shared.m.lock().unwrap();
        let c = &inner.counters;

        // Queued rollups are derived from the scheduler itself — the
        // ground truth — rather than shadow counters.
        let mut tenant_queued: BTreeMap<u64, usize> = BTreeMap::new();
        let mut prio_queued = [0usize; 3];
        for (ci, cls) in inner.classes.iter().enumerate() {
            for (t, q) in &cls.queues {
                *tenant_queued.entry(*t).or_default() += q.len();
                prio_queued[ci] += q.len();
            }
        }
        for job in &inner.retryq {
            *tenant_queued.entry(job.tenant.0).or_default() += 1;
            prio_queued[job.priority.index()] += 1;
        }

        let per_tenant = inner
            .tenants
            .values()
            .map(|ts| {
                let mut s = ts.stats.clone();
                s.queued = tenant_queued.get(&s.tenant.0).copied().unwrap_or(0);
                s.in_flight = ts.in_flight;
                s.breaker_open = ts.refusing(now);
                s
            })
            .collect();
        let per_priority = std::array::from_fn(|i| PriorityServeStats {
            admitted: c.prio[i].admitted,
            completed: c.prio[i].completed,
            failed: c.prio[i].failed,
            shed: c.prio[i].shed,
            queued: prio_queued[i],
            in_flight: c.prio[i].in_flight,
        });

        ServeStats {
            submitted: c.submitted,
            admitted: c.admitted,
            rejected: c.rejected,
            shed: c.shed,
            completed: c.completed,
            failed: c.failed,
            deadline_missed: c.deadline_missed,
            retries: c.retries,
            degraded_executions: c.degraded_executions,
            queue_depth_high_water: c.queue_depth_high_water,
            quota_rejected: c.quota_rejected,
            breaker_rejected: c.breaker_rejected,
            deadline_rejected: c.deadline_rejected,
            brownout_rejected: c.brownout_rejected,
            queued: inner.queued_len(),
            in_flight: inner.inflight,
            brownout: BrownoutStats {
                tier: inner.brownout.tier,
                max_tier: inner.brownout.max_tier,
                transitions: inner.brownout.transitions,
                sheds: inner.brownout.sheds,
            },
            per_tenant,
            per_priority,
            per_array: inner
                .arrays
                .iter()
                .enumerate()
                .map(|(i, a)| {
                    let mut s = a.stats.clone();
                    s.health = a.health;
                    s.faults = *inner.ledger.total(i);
                    s
                })
                .collect(),
        }
    }

    /// The serving snapshot in platform clothing: a [`SystemStats`]
    /// whose `serve` field is populated and whose `faults` is the
    /// fleet-wide merged report.
    pub fn system_stats(&self) -> SystemStats {
        let serve = self.stats();
        let faults = self.shared.m.lock().unwrap().ledger.fleet_total();
        SystemStats {
            faults,
            serve: Some(serve),
            ..SystemStats::default()
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.cfg
    }

    /// The serve-time observatory (burn trackers, shadow lane, flight
    /// recorder).
    pub fn observatory(&self) -> &Observatory {
        &self.shared.obs
    }

    /// Drain the flight-recorder dumps triggered so far (burn-rate over
    /// budget, envelope violations, brownout escalations). Each dump
    /// renders as JSON (`flight_recorder/v1`) and as a Perfetto-loadable
    /// Chrome trace.
    pub fn take_flight_dumps(&self) -> Vec<FlightDump> {
        self.shared.obs.take_dumps()
    }

    /// Publish the observatory's gauges and counters through `reg`
    /// (multi-window SLO burn rates per tenant/priority, shadow-lane
    /// error statistics, recorder health).
    pub fn publish_observatory(&self, reg: &Registry) {
        self.shared.obs.publish(reg);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Fill a ticket and book the outcome into the fleet, tenant, and
/// priority counters, feeding the tenant's circuit breaker. No-op on a
/// ticket that already resolved (e.g. shed racing completion).
fn resolve(inner: &mut Inner, shared: &Shared, job: &Job, result: Result<ServeResponse, ServeError>) {
    let failure = match &result {
        Ok(_) => None,
        Err(e) => Some(e.clone()),
    };
    if !job.ticket.resolve(result) {
        return;
    }
    observe_resolution(shared, job, &failure);
    let pi = job.priority.index();
    match failure {
        None => {
            inner.counters.completed += 1;
            inner.counters.prio[pi].completed += 1;
            if let Some(ts) = inner.tenants.get_mut(&job.tenant.0) {
                ts.stats.completed += 1;
                ts.consec_bad = 0;
                if matches!(ts.breaker, Breaker::HalfOpen { .. }) {
                    ts.breaker = Breaker::Closed;
                }
            }
        }
        Some(e) => {
            inner.counters.failed += 1;
            inner.counters.prio[pi].failed += 1;
            if let Some(ts) = inner.tenants.get_mut(&job.tenant.0) {
                ts.stats.failed += 1;
            }
            match e {
                ServeError::DeadlineExceeded => {
                    inner.counters.deadline_missed += 1;
                    breaker_note_bad(inner, shared, job.tenant);
                }
                ServeError::Shed => {
                    inner.counters.shed += 1;
                    inner.counters.prio[pi].shed += 1;
                    if let Some(ts) = inner.tenants.get_mut(&job.tenant.0) {
                        ts.stats.shed += 1;
                    }
                }
                ServeError::FaultsExhausted { .. } => breaker_note_bad(inner, shared, job.tenant),
                _ => {}
            }
        }
    }
}

/// Feed a resolved request into the observatory: one flight-recorder
/// ring push plus its stream's SLO burn-rate update. Deadline misses,
/// sheds, and fault exhaustion all consume error budget — shutdown
/// doesn't (the operator chose it, the stream didn't fail). No-op when
/// the observatory is disabled.
fn observe_resolution(shared: &Shared, job: &Job, failure: &Option<ServeError>) {
    if !shared.obs.enabled() {
        return;
    }
    let missed = matches!(failure, Some(ServeError::DeadlineExceeded));
    let bad = matches!(failure, Some(e) if !matches!(e, ServeError::Shutdown));
    let outcome = match failure {
        None => "ok",
        Some(ServeError::DeadlineExceeded) => "deadline_miss",
        Some(ServeError::Shed) => "shed",
        Some(ServeError::FaultsExhausted { .. }) => "faults_exhausted",
        Some(ServeError::Shutdown) => "shutdown",
        Some(_) => "error",
    };
    let record = FlightRecord {
        id: job.id,
        tenant: job.tenant.0 as usize,
        priority: job.priority.as_str().to_string(),
        start_s: shared.obs.rel_s(job.submitted_at),
        queue_wait_s: job
            .first_dispatch
            .map_or(0.0, |d| (d - job.submitted_at).as_secs_f64()),
        total_s: job.submitted_at.elapsed().as_secs_f64(),
        deadline_missed: missed,
        outcome: outcome.to_string(),
        attempts: job
            .attempt_log
            .iter()
            .map(|a| FlightAttempt {
                array: a.array,
                modelled_s: a.modelled_s,
                faulted: a.faulted,
                mode: mode_str(a.mode).to_string(),
            })
            .collect(),
        shadow: job.shadow.clone(),
    };
    shared.obs.record_completion(record, bad);
}

/// Stable lowercase label for a nonlinear mode.
fn mode_str(mode: NonlinearMode) -> &'static str {
    match mode {
        NonlinearMode::Exact => "exact",
        NonlinearMode::Fast => "fast",
    }
}

/// Feed one bad outcome (rejection or failure) into a tenant's breaker.
fn breaker_note_bad(inner: &mut Inner, shared: &Shared, tenant: TenantId) {
    let policy = &shared.cfg.breaker;
    if policy.trip_after == 0 {
        return;
    }
    let Some(ts) = inner.tenants.get_mut(&tenant.0) else {
        return;
    };
    ts.consec_bad = ts.consec_bad.saturating_add(1);
    let trip = match ts.breaker {
        Breaker::Closed => ts.consec_bad >= policy.trip_after,
        // A failed half-open probe re-opens immediately.
        Breaker::HalfOpen { .. } => true,
        Breaker::Open { .. } => false,
    };
    if trip {
        ts.breaker = Breaker::Open {
            until: Instant::now() + policy.cooldown,
        };
        ts.consec_bad = 0;
    }
}

/// Re-evaluate the brownout ladder from the pressure signals. Escalates
/// immediately; de-escalates one decision at a time only after
/// `min_dwell` at the current tier. Entering tier 2 sheds queued `Bulk`
/// work on the spot.
fn update_brownout(inner: &mut Inner, shared: &Shared, now: Instant) {
    let policy = &shared.cfg.brownout;
    let cap = shared.cfg.queue_capacity.max(1) as f64;
    let depth_pressure = inner.queued_len() as f64 / cap;
    let latency_target = policy.latency_target.as_secs_f64();
    let wait_pressure = if latency_target > 0.0 {
        inner.wait_ewma_s / latency_target
    } else {
        0.0
    };
    let pressure = depth_pressure.max(wait_pressure);
    let target: u8 = if pressure >= policy.tier2_pressure {
        2
    } else if pressure >= policy.tier1_pressure {
        1
    } else {
        0
    };
    let tier = inner.brownout.tier;
    let next = if target > tier {
        target
    } else if target < tier {
        // Hysteresis: hold the tier until it has dwelt long enough.
        let dwelt = inner
            .brownout
            .since
            .is_none_or(|s| now.saturating_duration_since(s) >= policy.min_dwell);
        if dwelt {
            target
        } else {
            tier
        }
    } else {
        tier
    };
    if next == tier {
        return;
    }
    inner.brownout.tier = next;
    inner.brownout.since = Some(now);
    inner.brownout.transitions += 1;
    inner.brownout.max_tier = inner.brownout.max_tier.max(next);
    if next > tier {
        shared.obs.trigger(
            TriggerReason::BrownoutEscalation,
            format!("tier {tier} -> {next} (pressure {:.0}%)", pressure * 100.0),
        );
    }
    if let Some(t) = tr(shared) {
        t.instant_with(
            "serve.brownout",
            "serve",
            vec![
                ("from", tier as u64),
                ("to", next as u64),
                ("pressure_pct", (pressure * 100.0) as u64),
            ],
        );
        t.counter("serve.brownout_tier", "serve", next as f64);
    }
    if next >= 2 && tier < 2 {
        shed_bulk(inner, shared);
    }
}

/// Shed every queued `Bulk` request (tier-2 brownout entry).
fn shed_bulk(inner: &mut Inner, shared: &Shared) {
    let bulk = Priority::Bulk.index();
    let mut victims: Vec<Job> = Vec::new();
    let queues = std::mem::take(&mut inner.classes[bulk].queues);
    for (_, mut q) in queues {
        victims.extend(q.drain(..));
    }
    inner.classes[bulk].cursor = None;
    inner.classes[bulk].credit = 0;
    let mut i = 0;
    while i < inner.retryq.len() {
        if inner.retryq[i].priority == Priority::Bulk {
            victims.push(inner.retryq.remove(i).unwrap());
        } else {
            i += 1;
        }
    }
    for job in victims {
        job.cancel.cancel();
        inner.brownout.sheds += 1;
        if let Some(t) = tr(shared) {
            t.instant_with("serve.shed", "serve", vec![("req", job.id), ("brownout", 1)]);
        }
        resolve(inner, shared, &job, Err(ServeError::Shed));
        shared.space_cv.notify_one();
    }
}

/// Record a health transition.
fn transition(inner: &mut Inner, array: usize, to: ArrayHealth) {
    let from = inner.arrays[array].health;
    if from == to {
        return;
    }
    let seq = inner.seq;
    inner.seq += 1;
    let st = &mut inner.arrays[array];
    st.health = to;
    st.stats.history.push(HealthEvent { seq, from, to });
    st.stats.health = to;
}

/// Apply one user-execution outcome to the strike machine.
fn note_execution(inner: &mut Inner, array: usize, faulted: bool, shared: &Shared) {
    let policy = &shared.cfg.health;
    let st = &mut inner.arrays[array];
    if faulted {
        st.strikes = st.strikes.saturating_add(1);
        st.clean_run = 0;
        st.stats.faulted_executions += 1;
        inner.counters.degraded_executions += 1;
    } else {
        st.clean_run += 1;
        if st.clean_run >= policy.clean_streak && st.strikes > 0 {
            st.strikes -= 1;
            st.clean_run = 0;
        }
    }
    let strikes = inner.arrays[array].strikes;
    let target = if strikes >= policy.quarantine_strikes {
        ArrayHealth::Quarantined
    } else if strikes >= policy.degrade_strikes {
        ArrayHealth::Degraded
    } else {
        ArrayHealth::Healthy
    };
    let current = inner.arrays[array].health;
    if target == ArrayHealth::Quarantined && current != ArrayHealth::Quarantined {
        transition(inner, array, ArrayHealth::Quarantined);
        let st = &mut inner.arrays[array];
        st.probe_backoff = policy.probe_interval;
        st.probe_due = Instant::now() + policy.probe_interval;
        st.probe_streak = 0;
    } else if target != ArrayHealth::Quarantined && current.serves() && target != current {
        transition(inner, array, target);
    }
}

/// Pull every queued job (all classes + retries) out of the scheduler.
fn take_all_queued(inner: &mut Inner) -> Vec<Job> {
    let mut out = Vec::new();
    for cls in inner.classes.iter_mut() {
        let queues = std::mem::take(&mut cls.queues);
        for (_, mut q) in queues {
            out.extend(q.drain(..));
        }
        cls.cursor = None;
        cls.credit = 0;
    }
    out.extend(inner.retryq.drain(..));
    out
}

/// Resolve every queued job whose deadline has already passed. Runs on
/// each worker wake-up so expired requests clear even when no array can
/// serve (e.g. the whole fleet quarantined).
fn sweep_expired(inner: &mut Inner, shared: &Shared, now: Instant) {
    let mut expired: Vec<Job> = Vec::new();
    for cls in inner.classes.iter_mut() {
        let mut drained: Vec<u64> = Vec::new();
        for (t, q) in cls.queues.iter_mut() {
            let mut i = 0;
            while i < q.len() {
                if q[i].deadline.is_some_and(|d| now >= d) {
                    expired.push(q.remove(i).unwrap());
                } else {
                    i += 1;
                }
            }
            if q.is_empty() {
                drained.push(*t);
            }
        }
        for t in drained {
            cls.queues.remove(&t);
        }
    }
    let mut i = 0;
    while i < inner.retryq.len() {
        if inner.retryq[i].deadline.is_some_and(|d| now >= d) {
            expired.push(inner.retryq.remove(i).unwrap());
        } else {
            i += 1;
        }
    }
    for job in expired {
        job.cancel.cancel();
        if let Some(t) = tr(shared) {
            t.instant_with("serve.deadline_miss", "serve", vec![("req", job.id)]);
        }
        resolve(inner, shared, &job, Err(ServeError::DeadlineExceeded));
        shared.space_cv.notify_one();
    }
    if inner.queued_len() == 0 && inner.inflight == 0 {
        shared.idle_cv.notify_all();
    }
}

/// Pick the next job for `array`: runnable retries first (oldest
/// admitted work; finishing it frees capacity fastest), then the
/// highest non-empty priority class under its DWRR. Returns the job or
/// the soonest instant a backoff expires.
fn pick_job(inner: &mut Inner, array: usize, now: Instant) -> Result<Job, Option<Instant>> {
    let serving = inner.arrays.iter().filter(|a| a.health.serves()).count();
    let mut soonest: Option<Instant> = None;
    let mut pick: Option<usize> = None;
    for (i, job) in inner.retryq.iter().enumerate() {
        if job.not_before > now {
            soonest = Some(soonest.map_or(job.not_before, |s| s.min(job.not_before)));
            continue;
        }
        // Prefer a different array than the one that faulted on the
        // job — but only until `avoid_until`: with one serving array
        // (or after the grace), the same array may retry it rather
        // than starving the request.
        if job.last_array == Some(array) && serving > 1 && now < job.avoid_until {
            soonest = Some(soonest.map_or(job.avoid_until, |s| s.min(job.avoid_until)));
            continue;
        }
        pick = Some(i);
        break;
    }
    if let Some(i) = pick {
        return Ok(inner.retryq.remove(i).unwrap());
    }
    let Inner {
        classes, tenants, ..
    } = inner;
    for cls in classes.iter_mut().rev() {
        let weight_of = |t: u64| {
            tenants
                .get(&t)
                .map(|ts| ts.quota.weight)
                .unwrap_or(1)
                .max(1)
        };
        if let Some(job) = cls.pop(weight_of) {
            return Ok(job);
        }
    }
    Err(soonest)
}

fn worker_loop(shared: Arc<Shared>, array: usize, mut backend: Box<dyn ArrayBackend>) {
    let mut inner = shared.m.lock().unwrap();
    loop {
        let now = Instant::now();
        sweep_expired(&mut inner, &shared, now);
        update_brownout(&mut inner, &shared, now);
        if inner.shutdown && inner.queued_len() == 0 {
            return;
        }

        match inner.arrays[array].health {
            ArrayHealth::Quarantined | ArrayHealth::Probing => {
                let due = inner.arrays[array].probe_due;
                if now < due {
                    let (guard, _) = shared.work_cv.wait_timeout(inner, due - now).unwrap();
                    inner = guard;
                    continue;
                }
                transition(&mut inner, array, ArrayHealth::Probing);
                inner.arrays[array].stats.probes_run += 1;
                drop(inner);
                let t0 = Instant::now();
                let probe = backend.execute(
                    &shared.golden.a,
                    &shared.golden.b,
                    ServeOp::Gemm,
                    NonlinearMode::Exact,
                    &CancelToken::new(),
                );
                let t1 = Instant::now();
                inner = shared.m.lock().unwrap();
                let policy = &shared.cfg.health;
                let passed = match probe {
                    Ok((out, t)) => {
                        inner.arrays[array].stats.modelled_busy_s += t.modelled_s;
                        let ledger = &mut inner.ledger;
                        ledger.record_delta(array, &t.faults);
                        t.faults.detected == 0 && out == shared.golden.expected
                    }
                    Err(_) => false,
                };
                if let Some(t) = tr(&shared) {
                    t.complete_between_with(
                        "serve.probe",
                        "serve",
                        t0,
                        t1,
                        vec![("array", array as u64), ("passed", passed as u64)],
                    );
                }
                if passed {
                    inner.arrays[array].stats.probes_passed += 1;
                    inner.arrays[array].probe_streak += 1;
                    if inner.arrays[array].probe_streak >= policy.probes_to_readmit {
                        // Re-admission forgives history: strikes and the
                        // fault ledger restart from zero.
                        let st = &mut inner.arrays[array];
                        st.strikes = 0;
                        st.clean_run = 0;
                        inner.ledger.reset(array);
                        transition(&mut inner, array, ArrayHealth::Healthy);
                        shared.work_cv.notify_all();
                    } else {
                        let st = &mut inner.arrays[array];
                        st.probe_due = Instant::now() + policy.probe_interval;
                        transition(&mut inner, array, ArrayHealth::Quarantined);
                    }
                } else {
                    let st = &mut inner.arrays[array];
                    st.probe_streak = 0;
                    st.probe_backoff = (st.probe_backoff * 2)
                        .max(policy.probe_interval)
                        .min(policy.probe_interval_cap);
                    st.probe_due = Instant::now() + st.probe_backoff;
                    transition(&mut inner, array, ArrayHealth::Quarantined);
                }
                continue;
            }
            ArrayHealth::Healthy | ArrayHealth::Degraded => {}
        }

        let mut job = match pick_job(&mut inner, array, now) {
            Ok(job) => job,
            Err(soonest) => {
                if inner.shutdown {
                    return;
                }
                let wait = soonest
                    .map(|s| s.saturating_duration_since(now))
                    .unwrap_or(Duration::from_millis(20));
                let (guard, _) = shared
                    .work_cv
                    .wait_timeout(inner, wait.max(Duration::from_micros(100)))
                    .unwrap();
                inner = guard;
                continue;
            }
        };

        inner.inflight += 1;
        inner.counters.prio[job.priority.index()].in_flight += 1;
        if let Some(ts) = inner.tenants.get_mut(&job.tenant.0) {
            ts.in_flight += 1;
        }
        // The dispatch tier decides the nonlinear mode of this attempt.
        let mode = if inner.brownout.tier >= 1 {
            NonlinearMode::Fast
        } else {
            NonlinearMode::Exact
        };
        shared.space_cv.notify_one();

        let dispatched = Instant::now();
        if job.first_dispatch.is_none() {
            job.first_dispatch = Some(dispatched);
            let wait_s = (dispatched - job.submitted_at).as_secs_f64();
            inner.wait_ewma_s = (1.0 - EWMA_ALPHA) * inner.wait_ewma_s + EWMA_ALPHA * wait_s;
            if let Some(t) = tr(&shared) {
                t.complete_between_with(
                    "serve.queue_wait",
                    "serve",
                    job.submitted_at,
                    dispatched,
                    vec![("req", job.id)],
                );
            }
        }
        drop(inner);
        job.attempts += 1;
        let outcome = backend.execute(&job.a, &job.b, job.op, mode, &job.cancel);
        let finished = Instant::now();
        // Shadow lane: off the lock, re-run a sampled clean fast-mode
        // output through the exact oracle and bound it by the pinned
        // fast-kernel envelope.
        let shadow = match &outcome {
            Ok((out, t))
                if t.faults.uncorrected_detections() == 0 && shared.obs.should_shadow(mode) =>
            {
                Some(shared.obs.shadow_sample(&job.a, &job.b, job.op, out))
            }
            _ => None,
        };
        if let Some(s) = &shadow {
            job.shadow = Some(s.clone());
        }
        if let Some(t) = tr(&shared) {
            t.complete_between_with(
                "serve.execute",
                "serve",
                dispatched,
                finished,
                vec![
                    ("req", job.id),
                    ("array", array as u64),
                    ("attempt", job.attempts as u64),
                    ("tenant", job.tenant.0),
                    ("tier", (mode == NonlinearMode::Fast) as u64),
                ],
            );
        }

        inner = shared.m.lock().unwrap();
        let (job_tenant, job_priority) = (job.tenant, job.priority);
        let wall_s = job.submitted_at.elapsed().as_secs_f64();
        let queue_wait_s = job
            .first_dispatch
            .map_or(0.0, |d| (d - job.submitted_at).as_secs_f64());
        match outcome {
            Ok((out, Telemetry { faults, modelled_s })) => {
                inner.arrays[array].stats.modelled_busy_s += modelled_s;
                inner.ledger.record_delta(array, &faults);
                // Two severities: any detection strikes the array's
                // health, but only *uncorrected* detections poison the
                // output — an ABFT-corrected execution is bit-exact and
                // servable.
                let flagged = faults.detected > 0;
                let faulted = faults.uncorrected_detections() > 0;
                job.attempt_log.push(AttemptRecord {
                    array,
                    modelled_s,
                    faulted,
                    mode,
                });
                if flagged {
                    if let Some(t) = tr(&shared) {
                        t.instant_with(
                            "serve.fault",
                            "serve",
                            vec![
                                ("req", job.id),
                                ("array", array as u64),
                                ("detected", faults.detected),
                                ("corrected", faults.abft_corrections),
                            ],
                        );
                    }
                }
                note_execution(&mut inner, array, flagged, &shared);
                // An envelope violation is numeric evidence against the
                // array, fed into health exactly like an ABFT detection,
                // and always worth a flight-recorder dump.
                if shadow.as_ref().is_some_and(|s| s.violation) {
                    let s = shadow.as_ref().unwrap();
                    note_execution(&mut inner, array, true, &shared);
                    if let Some(t) = tr(&shared) {
                        t.instant_with(
                            "serve.envelope_violation",
                            "serve",
                            vec![
                                ("req", job.id),
                                ("array", array as u64),
                                ("max_ulp", s.max_ulp),
                            ],
                        );
                    }
                }
                if !faulted {
                    // Clean execution: fold its wall time into the
                    // service estimate the deadline gate consults.
                    let svc_s = (finished - dispatched).as_secs_f64();
                    inner.svc_ewma_s = if inner.svc_samples == 0 {
                        svc_s
                    } else {
                        (1.0 - EWMA_ALPHA) * inner.svc_ewma_s + EWMA_ALPHA * svc_s
                    };
                    inner.svc_samples += 1;
                    inner.arrays[array].stats.completed += 1;
                    let resp = ServeResponse {
                        out,
                        array,
                        tenant: job.tenant,
                        priority: job.priority,
                        mode,
                        attempts: job.attempts,
                        modelled_s,
                        wall_s,
                        // Cloned, not taken: the observatory reads the
                        // attempt log again when `resolve` books the
                        // flight record.
                        timeline: RequestTimeline {
                            queue_wait_s,
                            attempts: job.attempt_log.clone(),
                            total_s: wall_s,
                        },
                    };
                    resolve(&mut inner, &shared, &job, Ok(resp));
                    // Trigger *after* resolve so the flight record of
                    // the offending request is already in the ring and
                    // lands in the dump.
                    if let Some(s) = shadow.as_ref().filter(|s| s.violation) {
                        shared.obs.trigger(
                            TriggerReason::EnvelopeViolation,
                            format!("req {} array {array} max_ulp {}", job.id, s.max_ulp),
                        );
                    }
                } else if job.attempts >= shared.cfg.max_attempts {
                    resolve(
                        &mut inner,
                        &shared,
                        &job,
                        Err(ServeError::FaultsExhausted {
                            attempts: job.attempts,
                        }),
                    );
                } else if inner.shutdown {
                    resolve(&mut inner, &shared, &job, Err(ServeError::Shutdown));
                } else if inner.brownout.tier >= 2 && job.priority == Priority::Bulk {
                    // Tier 2 is shedding Bulk: don't requeue a Bulk
                    // retry into a scheduler that just evicted its
                    // peers.
                    inner.brownout.sheds += 1;
                    if let Some(t) = tr(&shared) {
                        t.instant_with("serve.shed", "serve", vec![("req", job.id), ("brownout", 1)]);
                    }
                    resolve(&mut inner, &shared, &job, Err(ServeError::Shed));
                } else {
                    // Discard the suspect output; retry later, elsewhere
                    // if possible. Requeue and notify without releasing
                    // the lock: the whole post-execution section is one
                    // critical section, so a concurrent `stats()` never
                    // sees the job double-counted as both queued and
                    // in-flight.
                    inner.counters.retries += 1;
                    let backoff = shared.cfg.retry_backoff(job.attempts);
                    let now = Instant::now();
                    job.not_before = now + backoff;
                    // Grace window for preferring a different array: one
                    // further backoff past `not_before` (at least 1ms),
                    // after which the faulting array itself may retry.
                    job.avoid_until = job.not_before + backoff.max(Duration::from_millis(1));
                    job.last_array = Some(array);
                    inner.retryq.push_back(job);
                    shared.work_cv.notify_all();
                }
            }
            Err(ArithError::Cancelled { expired }) => {
                let err = if expired || job.deadline.is_some_and(|d| Instant::now() >= d) {
                    ServeError::DeadlineExceeded
                } else {
                    ServeError::Shutdown
                };
                if err == ServeError::DeadlineExceeded {
                    if let Some(t) = tr(&shared) {
                        t.instant_with("serve.deadline_miss", "serve", vec![("req", job.id)]);
                    }
                }
                resolve(&mut inner, &shared, &job, Err(err));
            }
            Err(_) => {
                // Guardrail errors (shape/finite) are deterministic: a
                // retry cannot help, so fail the request as exhausted.
                resolve(
                    &mut inner,
                    &shared,
                    &job,
                    Err(ServeError::FaultsExhausted {
                        attempts: job.attempts,
                    }),
                );
            }
        }
        inner.inflight -= 1;
        inner.counters.prio[job_priority.index()].in_flight -= 1;
        if let Some(ts) = inner.tenants.get_mut(&job_tenant.0) {
            ts.in_flight -= 1;
        }
        update_brownout(&mut inner, &shared, Instant::now());
        if inner.queued_len() == 0 && inner.inflight == 0 {
            shared.idle_cv.notify_all();
        }
    }
}
